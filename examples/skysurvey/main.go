// Skysurvey: the astronomy scenario of the demonstration proposal
// ("we will use a few domain-specific databases, covering topics
// such as history and astronomy"). Charles summarizes a sky-survey
// catalogue, discovering that object class drives the photometric
// attributes, then the example shows the lazy stream (Section 5.2):
// first answers immediately, more on request.
package main

import (
	"fmt"
	"log"

	"charles"
)

func main() {
	tab := charles.GenerateSkySurvey(40000, 7)
	adv := charles.NewAdvisor(tab, charles.DefaultConfig())

	ctx, err := charles.ContextOn(tab, "class", "magnitude", "redshift", "dec")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== eager advice ===")
	res, err := adv.Advise(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(charles.RenderRanked(res, 3))

	// Lazy generation: take answers one at a time — what an
	// interactive UI would do while the user is already reading.
	fmt.Println("\n=== lazy stream, first three answers ===")
	st, err := adv.Stream(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		sc, ok, err := st.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		fmt.Printf("\nanswer %d, entropy %.3f bits:\n%s",
			i+1, sc.Metrics.Entropy, charles.RenderSegmentation(sc.Seg))
	}
}
