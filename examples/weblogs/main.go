// Weblogs: the Section 1 motivation — an analyst "grinding the data
// of ... web-logs" without knowing what to look for. Charles
// summarizes a year of requests, and the example contrasts three
// generation strategies on the same context: HB-cuts, the quantile
// extension (tertile cuts), and adaptive per-piece cuts.
package main

import (
	"fmt"
	"log"

	"charles"
)

func main() {
	tab := charles.GenerateWebLog(60000, 3)

	ctx := "(section:, status:, bytes:, device:)"

	fmt.Println("=== HB-cuts (paper defaults) ===")
	adv := charles.NewAdvisor(tab, charles.DefaultConfig())
	res, err := adv.AdviseString(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(charles.RenderRanked(res, 2))

	fmt.Println("\n=== tertile cuts (Section 5.2 quantile extension) ===")
	cfg := charles.DefaultConfig()
	cfg.Cut.Arity = 3
	adv3 := charles.NewAdvisor(tab, cfg)
	res3, err := adv3.AdviseString(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(charles.RenderRanked(res3, 1))

	fmt.Println("\n=== adaptive per-piece cuts (Section 5.2 extension) ===")
	q, err := adv.ParseContext(ctx)
	if err != nil {
		log.Fatal(err)
	}
	scored, err := adv.Adaptive(q)
	if err != nil {
		log.Fatal(err)
	}
	best := scored[0]
	fmt.Printf("deepest adaptive answer (depth %d, entropy %.3f bits):\n%s",
		best.Metrics.Depth, best.Metrics.Entropy, charles.RenderSegmentation(best.Seg))
}
