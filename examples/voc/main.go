// VOC: the Figure 1 session of the paper. A historian faces 50k
// Dutch East India Company voyages and asks Charles what the data
// looks like, starting from the columns of the Figure 1 screenshot,
// then zooming into the Cape-bound heavy ships the way the figure's
// user picks a pie slice.
package main

import (
	"fmt"
	"log"

	"charles"
)

func main() {
	tab := charles.GenerateVOC(50000, 1)
	adv := charles.NewAdvisor(tab, charles.DefaultConfig())

	// The context of Figure 1: tonnage constrained to the big ships,
	// the other columns open.
	ctx, err := charles.ParseQuery(
		"(type_of_boat:, tonnage: [300, 1300], departure_harbour:, built:, trip:)", tab)
	if err != nil {
		log.Fatal(err)
	}
	n, err := adv.Count(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(charles.RenderContext(ctx, n))

	res, err := adv.Advise(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(charles.RenderRanked(res, 3))

	// The user opens the top answer and zooms into its largest
	// segment: the segment's query becomes the next context.
	best := res.Segmentations[0].Seg
	largest := 0
	for i, c := range best.Counts {
		if c > best.Counts[largest] {
			largest = i
		}
	}
	sub, err := adv.Zoom(res, 0, largest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== zoomed into:", sub, "===")
	res2, err := adv.Advise(sub)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(charles.RenderRanked(res2, 2))
	fmt.Println("\nSQL for further exploration:")
	fmt.Println(" ", charles.SQLSelect(sub, tab.Name()))
}
