// Quickstart: ask Charles for segmentations of a small table and
// print the ranked answers. This is the smallest end-to-end use of
// the public API: generate (or load) a table, build an advisor,
// advise on a context, render the results.
package main

import (
	"fmt"
	"log"

	"charles"
)

func main() {
	// A small VOC voyages table; LoadCSV works the same way for your
	// own data.
	tab := charles.GenerateVOC(10000, 1)

	adv := charles.NewAdvisor(tab, charles.DefaultConfig())

	// The context is an SDL query: the columns you care about, with
	// optional constraints. Unconstrained columns end with ':'.
	res, err := adv.AdviseString("(type_of_boat:, tonnage:, departure_harbour:)")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(charles.RenderRanked(res, 3))

	// Every segment is itself a query: pick one and keep exploring,
	// or hand its SQL to any database.
	q, err := adv.Zoom(res, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDrill into the first segment with:")
	fmt.Println(" ", charles.SQLSelect(q, tab.Name()))
}
