package charles

import (
	"context"
	"testing"

	"charles/internal/obs"
)

// TestAdviseByteIdenticalWithTracing pins the tracing contract: the
// stage spans the core records are observational only, so an advise
// run under a live Trace renders byte-identically to the same advise
// without one. Two independent advisors over identical data isolate
// the comparison from evaluator cache state.
func TestAdviseByteIdenticalWithTracing(t *testing.T) {
	const ctxStr = "(type_of_boat:, tonnage:, departure_harbour:)"

	advPlain := NewAdvisor(GenerateVOC(3000, 3), DefaultConfig())
	qPlain, err := advPlain.ParseContext(ctxStr)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := advPlain.AdviseCtx(context.Background(), qPlain, nil)
	if err != nil {
		t.Fatal(err)
	}

	advTraced := NewAdvisor(GenerateVOC(3000, 3), DefaultConfig())
	qTraced, err := advTraced.ParseContext(ctxStr)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	traced, err := advTraced.AdviseCtx(obs.ContextWithTrace(context.Background(), tr), qTraced, nil)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := RenderRanked(traced, 10), RenderRanked(plain, 10); got != want {
		t.Errorf("traced advise rendered differently:\n--- traced ---\n%s\n--- plain ---\n%s", got, want)
	}
	if traced.Iterations != plain.Iterations || traced.IndepEvals != plain.IndepEvals {
		t.Errorf("traced advise did different work: iterations %d vs %d, indep evals %d vs %d",
			traced.Iterations, plain.Iterations, traced.IndepEvals, plain.IndepEvals)
	}

	// The trace must actually have recorded the core stages — an
	// empty summary would make the identity above vacuous.
	stages := map[string]bool{}
	for _, st := range tr.Summary() {
		stages[st.Name] = true
	}
	for _, want := range []string{"initial_cuts", "indep_pairs"} {
		if !stages[want] {
			t.Errorf("trace missing stage %q (got %v)", want, tr.Summary())
		}
	}
}
