// Tests for the parallel advisor core: one shared Advisor serving
// many goroutines must produce exactly the ranked output of a
// sequential run, for any worker count. Run with -race.
package charles_test

import (
	"fmt"
	"sync"
	"testing"

	"charles"
)

// rankedFingerprint serializes a result's ranked segmentations so
// runs can be compared exactly: canonical key, score and counts per
// rank.
func rankedFingerprint(res *charles.Result) string {
	out := ""
	for i, sc := range res.Segmentations {
		out += fmt.Sprintf("%d: %s score=%.12f counts=%v\n", i, sc.Seg.Key(), sc.Score, sc.Seg.Counts)
	}
	return out
}

func concurrencyFixture(t *testing.T, workers int) (*charles.Advisor, charles.Query) {
	t.Helper()
	tab := charles.GenerateVOC(5000, 1)
	cfg := charles.DefaultConfig()
	cfg.Workers = workers
	adv := charles.NewAdvisor(tab, cfg)
	ctx, err := charles.ContextOn(tab, "type_of_boat", "tonnage", "built", "departure_harbour", "trip")
	if err != nil {
		t.Fatal(err)
	}
	return adv, ctx
}

// TestWorkersDeterministic pins the tentpole guarantee: the ranked
// output is bit-identical across worker counts.
func TestWorkersDeterministic(t *testing.T) {
	advSeq, ctx := concurrencyFixture(t, 1)
	baseline, err := advSeq.Advise(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.Segmentations) < 2 {
		t.Fatalf("baseline produced only %d segmentations, test is vacuous", len(baseline.Segmentations))
	}
	want := rankedFingerprint(baseline)
	for _, workers := range []int{2, 4, 8} {
		adv, ctx := concurrencyFixture(t, workers)
		res, err := adv.Advise(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got := rankedFingerprint(res); got != want {
			t.Fatalf("Workers=%d ranked output differs from sequential:\n--- got ---\n%s--- want ---\n%s", workers, got, want)
		}
		// The instrumentation counters must match too: parallelism
		// reorders work, it must not change how much is done.
		if res.IndepEvals != baseline.IndepEvals || res.IndepCacheHits != baseline.IndepCacheHits {
			t.Fatalf("Workers=%d INDEP counters (%d evals, %d hits) differ from sequential (%d, %d)",
				workers, res.IndepEvals, res.IndepCacheHits, baseline.IndepEvals, baseline.IndepCacheHits)
		}
	}
}

// TestConcurrentAdviseOnSharedAdvisor exercises the sharded caches:
// N goroutines advise, count and stream on one Advisor at once, each
// getting the sequential answer.
func TestConcurrentAdviseOnSharedAdvisor(t *testing.T) {
	advSeq, _ := concurrencyFixture(t, 1)
	_, ctx := concurrencyFixture(t, 1)
	baseline, err := advSeq.Advise(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := rankedFingerprint(baseline)
	wantCount, err := advSeq.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}

	adv, ctx := concurrencyFixture(t, 4)
	const goroutines = 8
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			res, err := adv.Advise(ctx)
			if err != nil {
				t.Errorf("goroutine %d: advise: %v", g, err)
				return
			}
			if got := rankedFingerprint(res); got != want {
				t.Errorf("goroutine %d: ranked output differs from sequential run", g)
			}
			n, err := adv.Count(ctx)
			if err != nil || n != wantCount {
				t.Errorf("goroutine %d: count = %d (%v), want %d", g, n, err, wantCount)
			}
			// Streams are per-caller cursors over the shared advisor.
			st, err := adv.Stream(ctx)
			if err != nil {
				t.Errorf("goroutine %d: stream: %v", g, err)
				return
			}
			drained, err := st.Drain()
			if err != nil {
				t.Errorf("goroutine %d: drain: %v", g, err)
				return
			}
			if len(drained) != len(baseline.Segmentations) {
				t.Errorf("goroutine %d: stream drained %d segmentations, want %d",
					g, len(drained), len(baseline.Segmentations))
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentAdaptive covers the AdaptiveCuts fan-out under
// shared-advisor concurrency.
func TestConcurrentAdaptive(t *testing.T) {
	advSeq, ctx := concurrencyFixture(t, 1)
	baseline, err := advSeq.Adaptive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	adv, ctx := concurrencyFixture(t, 4)
	const goroutines = 4
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			defer wg.Done()
			got, err := adv.Adaptive(ctx)
			if err != nil {
				t.Errorf("goroutine %d: adaptive: %v", g, err)
				return
			}
			if len(got) != len(baseline) {
				t.Errorf("goroutine %d: %d segmentations, want %d", g, len(got), len(baseline))
				return
			}
			for i := range got {
				if got[i].Seg.Key() != baseline[i].Seg.Key() {
					t.Errorf("goroutine %d: rank %d = %s, want %s", g, i, got[i].Seg.Key(), baseline[i].Seg.Key())
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestSelectionRepDeterministic pins the representation half of the
// determinism guarantee: the ranked advisor output is bit-identical
// whether segment intersections run on sorted row-id vectors,
// word-packed bitmaps, or the density-picked mix — at every worker
// count.
func TestSelectionRepDeterministic(t *testing.T) {
	advSeq, ctx := concurrencyFixture(t, 1)
	baseline, err := advSeq.Advise(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.Segmentations) < 2 {
		t.Fatalf("baseline produced only %d segmentations, test is vacuous", len(baseline.Segmentations))
	}
	want := rankedFingerprint(baseline)
	for _, rep := range []charles.SelectionRep{charles.RepVector, charles.RepBitmap, charles.RepAuto} {
		for _, workers := range []int{1, 4} {
			tab := charles.GenerateVOC(5000, 1)
			cfg := charles.DefaultConfig()
			cfg.Workers = workers
			cfg.Selection = rep
			adv := charles.NewAdvisor(tab, cfg)
			res, err := adv.Advise(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if got := rankedFingerprint(res); got != want {
				t.Fatalf("Selection=%v Workers=%d ranked output differs from vector/sequential:\n--- got ---\n%s--- want ---\n%s",
					rep, workers, got, want)
			}
			if res.IndepEvals != baseline.IndepEvals || res.IndepCacheHits != baseline.IndepCacheHits {
				t.Fatalf("Selection=%v Workers=%d INDEP counters (%d evals, %d hits) differ from baseline (%d, %d)",
					rep, workers, res.IndepEvals, res.IndepCacheHits, baseline.IndepEvals, baseline.IndepCacheHits)
			}
		}
	}
}
