// Pinning tests for the documented query-semantics corner cases in
// README.md ("Semantics notes"). These intentionally freeze observable
// behaviour that is surprising but deliberate; if one fails, either a
// semantics change slipped in or the README needs rewriting first.
package charles_test

import (
	"math"
	"testing"

	"charles"
	"charles/internal/engine"
)

// TestNaNPiecesUnderCoverFloatFallback pins the NaN under-coverage
// note from README.md: when the nominal fallback cuts a skewed float
// column that contains NaN rows, NaN is counted as one nominal value
// and lands in some piece's set constraint — but set constraints
// never match NaN at evaluation time, so the pieces cover exactly
// the non-NaN extent and their counts sum to strictly less than the
// parent context's count.
func TestNaNPiecesUnderCoverFloatFallback(t *testing.T) {
	const n = 2000
	vals := make([]float64, n)
	nan := 0
	for i := range vals {
		switch {
		case i%40 == 0: // ~2.5% NaN rows
			vals[i] = math.NaN()
			nan++
		case i%25 == 0: // rare tail value
			vals[i] = 4.25
		default: // ~92% majority value: collapses the equi-depth cut
			vals[i] = 2.0
		}
	}
	tab := engine.MustNewTable("pings",
		engine.NewFloatColumn("latency", vals),
	)
	adv := charles.NewAdvisor(tab, charles.DefaultConfig())
	res, err := adv.AdviseString("(latency:)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segmentations) == 0 {
		t.Fatal("no segmentation produced for skewed float column")
	}
	seg := res.Segmentations[0].Seg
	if len(seg.CutAttrs) != 1 || seg.CutAttrs[0] != "latency" {
		t.Fatalf("first answer cut on %v, want [latency]", seg.CutAttrs)
	}
	covered := 0
	for _, c := range seg.Counts {
		covered += c
	}
	if covered >= tab.NumRows() {
		t.Fatalf("pieces cover %d of %d rows; expected NaN rows to be excluded", covered, tab.NumRows())
	}
	if got, want := tab.NumRows()-covered, nan; got != want {
		t.Fatalf("under-coverage is %d rows, want exactly the %d NaN rows", got, want)
	}
}
