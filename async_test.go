// Tests for the cancellable, progress-reporting advise path
// (AdviseCtx): it must return byte-identical ranked output to
// Advise, stream deterministic progress, and — when cancelled — stop
// mid-advise, release its workers and go quiet. Run with -race.
package charles_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"charles"
)

// progressRecorder collects the report stream. ProgressFunc calls
// are serialized by the advisor, so plain appends are race-free.
type progressRecorder struct {
	reports []charles.Progress
	n       atomic.Int64
	cancel  context.CancelFunc // when set, fires after cancelAt reports
	calls   int
	atCall  int
}

func (p *progressRecorder) record(pr charles.Progress) {
	p.reports = append(p.reports, pr)
	p.n.Add(1)
	p.calls++
	if p.cancel != nil && p.calls == p.atCall {
		p.cancel()
	}
}

func (p *progressRecorder) sequence() string {
	out := ""
	for _, r := range p.reports {
		out += fmt.Sprintf("%s %d/%d\n", r.Phase, r.Done, r.Total)
	}
	return out
}

// TestAdviseCtxMatchesAdvise pins the acceptance property: the async
// entry point returns byte-identical ranked results to the sync one
// at every worker count, and the progress stream is well-formed —
// every initial cut reported with the known total, pairs monotone.
func TestAdviseCtxMatchesAdvise(t *testing.T) {
	advRef, ctxRef := concurrencyFixture(t, 1)
	ref, err := advRef.Advise(ctxRef)
	if err != nil {
		t.Fatal(err)
	}
	want := rankedFingerprint(ref)
	attrs := len(ctxRef.Attrs())
	for _, workers := range []int{1, 4} {
		adv, ctx := concurrencyFixture(t, workers)
		rec := &progressRecorder{}
		res, err := adv.AdviseCtx(context.Background(), ctx, rec.record)
		if err != nil {
			t.Fatal(err)
		}
		if got := rankedFingerprint(res); got != want {
			t.Fatalf("Workers=%d AdviseCtx ranked output differs from Advise:\n--- got ---\n%s--- want ---\n%s", workers, got, want)
		}
		cuts, pairs := 0, 0
		lastDone := map[string]int{}
		for _, r := range rec.reports {
			if r.Done != lastDone[r.Phase]+1 {
				t.Fatalf("Workers=%d phase %s jumped from %d to %d: not monotone",
					workers, r.Phase, lastDone[r.Phase], r.Done)
			}
			lastDone[r.Phase] = r.Done
			switch r.Phase {
			case charles.PhaseCuts:
				cuts++
				if r.Total != attrs {
					t.Fatalf("cuts total = %d, want %d", r.Total, attrs)
				}
			case charles.PhasePairs:
				pairs++
			}
		}
		if cuts != attrs {
			t.Fatalf("Workers=%d reported %d cut completions, want %d", workers, cuts, attrs)
		}
		if pairs != res.IndepEvals {
			t.Fatalf("Workers=%d reported %d pair completions, want IndepEvals=%d", workers, pairs, res.IndepEvals)
		}
	}
}

// TestProgressStreamDeterministic pins the tentpole's determinism
// claim: the full (phase, done, total) report sequence is identical
// at every worker count, because tallies are serialized and
// monotone no matter which goroutine finishes first.
func TestProgressStreamDeterministic(t *testing.T) {
	var want string
	for i, workers := range []int{1, 2, 8} {
		adv, ctx := concurrencyFixture(t, workers)
		rec := &progressRecorder{}
		if _, err := adv.AdviseCtx(context.Background(), ctx, rec.record); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = rec.sequence()
			if want == "" {
				t.Fatal("no progress reported, test is vacuous")
			}
			continue
		}
		if got := rec.sequence(); got != want {
			t.Fatalf("Workers=%d progress stream differs from Workers=1:\n--- got ---\n%s--- want ---\n%s", workers, got, want)
		}
	}
}

// TestAdviseCtxCancelMidway pins cancellation end to end: cancelling
// from inside a progress callback stops the advise (it returns
// context.Canceled, not a result), and after it returns the progress
// stream stays silent — every par worker has been released, so
// nothing is left running to report.
func TestAdviseCtxCancelMidway(t *testing.T) {
	tab := charles.GenerateVOC(20000, 1)
	cfg := charles.DefaultConfig()
	cfg.Workers = 4
	adv := charles.NewAdvisor(tab, cfg)
	ctx, err := charles.ContextOn(tab, "type_of_boat", "tonnage", "built", "departure_harbour", "trip")
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := &progressRecorder{cancel: cancel, atCall: 2}
	res, err := adv.AdviseCtx(cctx, ctx, rec.record)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled advise returned a result")
	}
	// Progress must stall: with every worker released before
	// AdviseCtx returned, no goroutine is left to report.
	at := rec.n.Load()
	time.Sleep(50 * time.Millisecond)
	if after := rec.n.Load(); after != at {
		t.Fatalf("progress kept streaming after cancelled advise returned (%d → %d reports): workers not released", at, after)
	}
}

// TestAdviseCtxPreCancelled: a context cancelled before submission
// never starts the advise.
func TestAdviseCtxPreCancelled(t *testing.T) {
	adv, ctx := concurrencyFixture(t, 4)
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec := &progressRecorder{}
	if _, err := adv.AdviseCtx(cctx, ctx, rec.record); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rec.n.Load() != 0 {
		t.Fatalf("pre-cancelled advise reported %d progress updates", rec.n.Load())
	}
}

// TestAdaptiveCtxMatchesAdaptive extends the equivalence to the
// adaptive-cuts extension and its PhaseTrials stream.
func TestAdaptiveCtxMatchesAdaptive(t *testing.T) {
	adv, ctx := concurrencyFixture(t, 1)
	ref, err := adv.Adaptive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		adv2, ctx2 := concurrencyFixture(t, workers)
		rec := &progressRecorder{}
		got, err := adv2.AdaptiveCtx(context.Background(), ctx2, rec.record)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("Workers=%d adaptive returned %d segmentations, want %d", workers, len(got), len(ref))
		}
		for i := range got {
			if got[i].Seg.Key() != ref[i].Seg.Key() || got[i].Score != ref[i].Score {
				t.Fatalf("Workers=%d adaptive rank %d differs", workers, i)
			}
		}
		trials := 0
		for _, r := range rec.reports {
			if r.Phase == charles.PhaseTrials {
				trials++
			}
		}
		if trials == 0 {
			t.Fatal("no trial progress reported")
		}
	}
}

// TestAdaptiveCtxCancel: the greedy loop honors cancellation too.
func TestAdaptiveCtxCancel(t *testing.T) {
	adv, ctx := concurrencyFixture(t, 4)
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := &progressRecorder{cancel: cancel, atCall: 1}
	if _, err := adv.AdaptiveCtx(cctx, ctx, rec.record); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
