// Chaos acceptance: graceful degradation of the persisted-summary
// fast path. When the engine cannot consult the column file's
// precomputed zone maps (the engine.backendSummary failpoint), it
// falls back to building summaries from a scan — slower, but the
// ranked advise output must stay byte-identical. A fault in an
// optimization must never change an answer.
package charles_test

import (
	"path/filepath"
	"testing"

	"charles"
	"charles/internal/fault"
)

func TestChaosBackendSummaryFaultKeepsOutputByteIdentical(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)

	const rows = 8000
	path := filepath.Join(t.TempDir(), "voc.chc")
	src := charles.GenerateVOC(rows, 1)
	if err := charles.SaveColumnFile(path, src, charles.ColumnFileOptions{ChunkRows: 1024}); err != nil {
		t.Fatal(err)
	}
	context := "(type_of_boat:, tonnage:, departure_harbour:)"

	pristine := adviseChc(t, path, context, 4, 1024)

	if err := fault.Enable("engine.backendSummary", "error(zone maps unreadable)"); err != nil {
		t.Fatal(err)
	}
	degraded := adviseChc(t, path, context, 4, 1024)
	if fault.Triggered("engine.backendSummary") == 0 {
		t.Fatal("fault never fired: the degraded advise did not exercise the backend-summary path")
	}
	if degraded != pristine {
		t.Errorf("advise output diverged under a summary fault:\n--- pristine ---\n%s\n--- degraded ---\n%s", pristine, degraded)
	}

	// Disarmed, the fast path is back and the bytes still agree.
	fault.Reset()
	if again := adviseChc(t, path, context, 4, 1024); again != pristine {
		t.Error("advise output diverged after the fault was disarmed")
	}
}
