// Out-of-core acceptance tests: advise output over a table reopened
// from the mmap'd columnar format (internal/colfile, specified in
// docs/FORMAT.md) must be byte-identical to the same table held in
// memory, at every worker count and chunk width, clustered or not.
// The format's value pages (FORMAT.md §5), dictionary encoding (§6)
// and persisted zone maps (§7) are all on the hot path of these
// advises, so a mis-encoded page or summary surfaces as diverging
// ranked output here even when the unit round-trip tests pass.
package charles_test

import (
	"path/filepath"
	"testing"

	"charles"
)

// adviseChc renders the ranked answer list for a table loaded from
// path with the given knobs.
func adviseChc(t *testing.T, path, context string, workers, chunkRows int) string {
	t.Helper()
	tab, err := charles.OpenColumnFile(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer tab.Close()
	cfg := charles.DefaultConfig()
	cfg.Workers = workers
	cfg.ChunkRows = chunkRows
	adv := charles.NewAdvisor(tab, cfg)
	res, err := adv.AdviseString(context)
	if err != nil {
		t.Fatalf("advise on %s (workers=%d chunkRows=%d): %v", path, workers, chunkRows, err)
	}
	return charles.RenderRanked(res, 0)
}

// adviseMem is the in-memory reference rendering.
func adviseMem(t *testing.T, rows int, context string) string {
	t.Helper()
	tab := charles.GenerateVOC(rows, 1)
	adv := charles.NewAdvisor(tab, charles.DefaultConfig())
	res, err := adv.AdviseString(context)
	if err != nil {
		t.Fatal(err)
	}
	return charles.RenderRanked(res, 0)
}

// TestColumnFileAdviseByteIdentical is the thorough small matrix:
// several contexts, both selection-shaping knobs, a source-order and
// a clustered file. Clustering reorders rows (FORMAT.md §8 records
// the column), and advise output is row-order independent, so every
// cell must render the reference bytes.
func TestColumnFileAdviseByteIdentical(t *testing.T) {
	const rows = 20000
	dir := t.TempDir()
	src := charles.GenerateVOC(rows, 1)
	plain := filepath.Join(dir, "voc.chc")
	clustered := filepath.Join(dir, "voc-clustered.chc")
	if err := charles.SaveColumnFile(plain, src, charles.ColumnFileOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := charles.SaveColumnFile(clustered, src, charles.ColumnFileOptions{
		ChunkRows: 1024, ClusterBy: "departure_harbour",
	}); err != nil {
		t.Fatal(err)
	}
	contexts := []string{
		"(type_of_boat:, tonnage:, departure_harbour:)",
		"(type_of_boat: {fluit, jacht}, tonnage: [100, 900])",
	}
	for _, context := range contexts {
		want := adviseMem(t, rows, context)
		if want == "" {
			t.Fatalf("empty reference rendering for context %q", context)
		}
		for _, path := range []string{plain, clustered} {
			for _, workers := range []int{1, 4} {
				for _, chunkRows := range []int{0, 512} {
					if got := adviseChc(t, path, context, workers, chunkRows); got != want {
						t.Errorf("context %q file=%s workers=%d chunkRows=%d: output diverged from in-memory reference",
							context, filepath.Base(path), workers, chunkRows)
					}
				}
			}
		}
	}
}

// TestColumnFileAdvise1M is the acceptance criterion at scale: a
// 1M-row table written to the columnar format and reopened via mmap
// produces byte-identical advise output to the in-memory backend
// across Workers × ChunkRows. chunkRows=0 advises at the file's
// native width, where the persisted summaries (FORMAT.md §7) are
// served; 8192 forces a re-shard, where zone maps rebuild by
// scanning the mapping — both must be invisible in the output.
func TestColumnFileAdvise1M(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row acceptance matrix; run without -short")
	}
	const rows = 1_000_000
	const context = "(type_of_boat:, tonnage:, departure_harbour:)"
	path := filepath.Join(t.TempDir(), "voc1m.chc")
	if err := charles.SaveColumnFile(path, charles.GenerateVOC(rows, 1), charles.ColumnFileOptions{}); err != nil {
		t.Fatal(err)
	}
	want := adviseMem(t, rows, context)
	if want == "" {
		t.Fatal("empty reference rendering")
	}
	for _, workers := range []int{1, 4} {
		for _, chunkRows := range []int{0, 8192} {
			if got := adviseChc(t, path, context, workers, chunkRows); got != want {
				t.Errorf("workers=%d chunkRows=%d: mmap-backed advise diverged from in-memory reference",
					workers, chunkRows)
			}
		}
	}
}
