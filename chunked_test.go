package charles_test

import (
	"testing"

	"charles"
)

// TestAdviseByteIdenticalAcrossWorkersAndChunkRows is the PR's
// acceptance matrix: the fully rendered ranked answer list must be
// byte-identical at every combination of worker count and chunk
// width. Workers moves the fan-out, ChunkRows moves the storage
// sharding — neither may move the output. Each cell builds its own
// table because the chunk layout is physical design shared by every
// advisor over one table.
func TestAdviseByteIdenticalAcrossWorkersAndChunkRows(t *testing.T) {
	const rows = 6000
	contexts := []string{
		"", // all columns
		"(type_of_boat:, tonnage:, departure_harbour:)",
		"(type_of_boat: {fluit, jacht}, tonnage: [100, 900])",
	}
	render := func(workers, chunkRows int, context string) string {
		tab := charles.GenerateVOC(rows, 1)
		cfg := charles.DefaultConfig()
		cfg.Workers = workers
		cfg.ChunkRows = chunkRows
		adv := charles.NewAdvisor(tab, cfg)
		res, err := adv.AdviseString(context)
		if err != nil {
			t.Fatalf("workers=%d chunkRows=%d: %v", workers, chunkRows, err)
		}
		return charles.RenderRanked(res, 0)
	}
	for _, context := range contexts {
		// Reference: sequential advise on the automatic layout.
		want := render(1, 0, context)
		if want == "" {
			t.Fatalf("empty reference rendering for context %q", context)
		}
		for _, workers := range []int{1, 4, 8} {
			// 512 shards the 6000-row table into 12 chunks with a
			// partial tail; 0 is the automatic single-chunk-ish layout.
			for _, chunkRows := range []int{512, 0} {
				if workers == 1 && chunkRows == 0 {
					continue
				}
				got := render(workers, chunkRows, context)
				if got != want {
					t.Errorf("context %q: workers=%d chunkRows=%d output diverged from sequential reference",
						context, workers, chunkRows)
				}
			}
		}
	}
}

// TestAdaptiveAndStreamStableAcrossChunkRows extends the matrix to
// the two other advisory paths: adaptive per-piece cuts and the lazy
// stream must also be layout-independent.
func TestAdaptiveAndStreamStableAcrossChunkRows(t *testing.T) {
	run := func(chunkRows int) (adaptive []string, stream []string) {
		tab := charles.GenerateVOC(3000, 2)
		cfg := charles.DefaultConfig()
		cfg.Workers = 4
		cfg.ChunkRows = chunkRows
		adv := charles.NewAdvisor(tab, cfg)
		ctx, err := adv.ParseContext("(type_of_boat:, tonnage:, departure_harbour:)")
		if err != nil {
			t.Fatal(err)
		}
		scored, err := adv.Adaptive(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range scored {
			adaptive = append(adaptive, s.Seg.Key())
		}
		st, err := adv.Stream(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			s, ok, err := st.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			stream = append(stream, s.Seg.Key())
		}
		return adaptive, stream
	}
	wantA, wantS := run(0)
	gotA, gotS := run(512)
	if len(gotA) != len(wantA) {
		t.Fatalf("adaptive count %d != %d across layouts", len(gotA), len(wantA))
	}
	for i := range wantA {
		if gotA[i] != wantA[i] {
			t.Fatalf("adaptive[%d] diverged across layouts", i)
		}
	}
	if len(gotS) != len(wantS) {
		t.Fatalf("stream count %d != %d across layouts", len(gotS), len(wantS))
	}
	for i := range wantS {
		if gotS[i] != wantS[i] {
			t.Fatalf("stream[%d] diverged across layouts", i)
		}
	}
}

// TestAdvisorsSurviveTableReShard is the regression test for the
// stale-layout hazard: a second NewAdvisor re-sharding the shared
// table must not panic or corrupt the first advisor's cached
// selections — evaluators re-chunk stale-layout selections on use —
// and both advisors must render the same ranked answers.
func TestAdvisorsSurviveTableReShard(t *testing.T) {
	tab := charles.GenerateVOC(4000, 1)
	cfgA := charles.DefaultConfig()
	cfgA.ChunkRows = 512
	advA := charles.NewAdvisor(tab, cfgA)
	const ctx1 = "(type_of_boat:, tonnage:)"
	const ctx2 = "(departure_harbour:, tonnage: [100, 900])"
	resA1, err := advA.AdviseString(ctx1)
	if err != nil {
		t.Fatal(err)
	}
	// Re-shard the shared table to the automatic width.
	cfgB := charles.DefaultConfig()
	cfgB.ChunkRows = charles.DefaultChunkRows
	advB := charles.NewAdvisor(tab, cfgB)
	// The first advisor keeps working on fresh contexts (its cached
	// selections carry the old layout) and agrees with the second.
	resA2, err := advA.AdviseString(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	resB2, err := advB.AdviseString(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	if charles.RenderRanked(resA2, 0) != charles.RenderRanked(resB2, 0) {
		t.Fatal("advisors disagree after re-shard")
	}
	resB1, err := advB.AdviseString(ctx1)
	if err != nil {
		t.Fatal(err)
	}
	if charles.RenderRanked(resA1, 0) != charles.RenderRanked(resB1, 0) {
		t.Fatal("pre- and post-re-shard advice diverged")
	}
}
