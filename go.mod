module charles

go 1.24
