// Benchmarks regenerating every figure and quantitative claim of the
// paper (experiment ids from DESIGN.md). Each BenchmarkE* pairs with
// the same-named experiment in internal/harness; `charles-bench`
// prints the tables, these measure the steady-state cost. Engine
// micro-benchmarks at the bottom isolate the two back-end operations
// Section 5.1 identifies: medians and counts over predicates.
package charles_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"charles"
	"charles/internal/baseline"
	"charles/internal/core"
	"charles/internal/dataset"
	"charles/internal/engine"
	"charles/internal/sdl"
	"charles/internal/seg"
)

// memoTable caches generated tables across benchmarks in one run.
var (
	memoMu     sync.Mutex
	memoTables = map[string]*engine.Table{}
)

func table(b *testing.B, name string, n int, seed int64) *engine.Table {
	b.Helper()
	key := fmt.Sprintf("%s/%d/%d", name, n, seed)
	memoMu.Lock()
	defer memoMu.Unlock()
	if t, ok := memoTables[key]; ok {
		return t
	}
	t, err := dataset.Named(name, n, seed)
	if err != nil {
		b.Fatal(err)
	}
	memoTables[key] = t
	return t
}

func contextOn(b *testing.B, tab *engine.Table, cols ...string) sdl.Query {
	b.Helper()
	q, err := sdl.ContextOn(tab, cols...)
	if err != nil {
		b.Fatal(err)
	}
	return q
}

// BenchmarkE1Fig1EndToEnd measures the full Figure 1 advisory
// round: parse-free context over the VOC table, HB-cuts, ranking.
func BenchmarkE1Fig1EndToEnd(b *testing.B) {
	tab := table(b, "voc", 20000, 1)
	ctx := contextOn(b, tab, "type_of_boat", "tonnage", "built", "departure_harbour", "trip")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := seg.NewEvaluator(tab)
		if _, err := core.HBCuts(ev, ctx, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2Primitives measures the three Section 4.1 operators in
// isolation on a 10k-row variant of the Figure 2 table.
func BenchmarkE2Primitives(b *testing.B) {
	tab := table(b, "voc", 10000, 2)
	ctx := contextOn(b, tab, "type_of_boat", "tonnage", "departure_date")
	prep := func(b *testing.B) (*seg.Evaluator, *seg.Segmentation, *seg.Segmentation) {
		ev := seg.NewEvaluator(tab)
		a, ok, err := seg.InitialCut(ev, ctx, "type_of_boat", seg.DefaultCutOptions())
		if err != nil || !ok {
			b.Fatal(err)
		}
		d, ok, err := seg.InitialCut(ev, ctx, "departure_date", seg.DefaultCutOptions())
		if err != nil || !ok {
			b.Fatal(err)
		}
		return ev, a, d
	}
	b.Run("Cut", func(b *testing.B) {
		ev, a, _ := prep(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := seg.Cut(ev, a, "tonnage", seg.DefaultCutOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Compose", func(b *testing.B) {
		ev, a, d := prep(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := seg.Compose(ev, a, d, seg.DefaultCutOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Product", func(b *testing.B) {
		ev, a, d := prep(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := seg.Product(ev, a, d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Indep", func(b *testing.B) {
		ev, a, d := prep(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := seg.Indep(ev, a, d); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE3HBCutsFiveAttrs measures the Figure 3 execution.
func BenchmarkE3HBCutsFiveAttrs(b *testing.B) {
	tab := table(b, "figure3", 20000, 1)
	ctx := sdl.ContextAll(tab)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := seg.NewEvaluator(tab)
		if _, err := core.HBCuts(ev, ctx, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4StoppingSweep measures the cost of each stopping
// configuration of Figure 4.
func BenchmarkE4StoppingSweep(b *testing.B) {
	tab := table(b, "voc", 20000, 1)
	ctx := contextOn(b, tab, "type_of_boat", "tonnage", "built", "departure_harbour", "trip")
	for _, maxIndep := range []float64{0.90, 0.99} {
		for _, maxDepth := range []int{8, 16} {
			name := fmt.Sprintf("indep=%.2f/depth=%d", maxIndep, maxDepth)
			b.Run(name, func(b *testing.B) {
				cfg := core.DefaultConfig()
				cfg.MaxIndep = maxIndep
				cfg.MaxDepth = maxDepth
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ev := seg.NewEvaluator(tab)
					if _, err := core.HBCuts(ev, ctx, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE5Independence measures the Proposition 1 INDEP check at
// two dependence levels.
func BenchmarkE5Independence(b *testing.B) {
	for _, rho := range []float64{0, 0.95} {
		b.Run(fmt.Sprintf("rho=%.2f", rho), func(b *testing.B) {
			tab := dataset.CorrelatedPair(50000, rho, 1)
			ev := seg.NewEvaluator(tab)
			ctx := sdl.ContextAll(tab)
			sx, _, err := seg.InitialCut(ev, ctx, "x", seg.DefaultCutOptions())
			if err != nil {
				b.Fatal(err)
			}
			sy, _, err := seg.InitialCut(ev, ctx, "y", seg.DefaultCutOptions())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := seg.Indep(ev, sx, sy); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6Horizontal measures advise time versus attribute count
// on the all-dependent chain workload.
func BenchmarkE6Horizontal(b *testing.B) {
	for _, attrs := range []int{2, 4, 8, 12} {
		b.Run(fmt.Sprintf("attrs=%d", attrs), func(b *testing.B) {
			tab := dataset.Chain(20000, attrs, 150, 1)
			ctx := sdl.ContextAll(tab)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := seg.NewEvaluator(tab)
				if _, err := core.HBCuts(ev, ctx, core.DefaultConfig()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7Vertical measures advise time versus row count.
func BenchmarkE7Vertical(b *testing.B) {
	for _, rows := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			tab := table(b, "voc", rows, 1)
			ctx := contextOn(b, tab, "type_of_boat", "tonnage", "departure_harbour", "trip")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := seg.NewEvaluator(tab)
				if _, err := core.HBCuts(ev, ctx, core.DefaultConfig()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7ColumnVsRow isolates the Section 5.1 claim: the two
// back-end operations on a column store versus a row store.
func BenchmarkE7ColumnVsRow(b *testing.B) {
	tab := table(b, "voc", 100000, 1)
	ton := tab.MustColumn("tonnage").(*engine.IntColumn)
	all := tab.All()
	r := engine.IntRange{Lo: 200, Hi: 600, LoIncl: true, HiIncl: true}
	rt := engine.NewRowTable(tab)
	tonIdx := rt.ColumnIndex("tonnage")
	b.Run("CountColumn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = engine.FilterIntRange(ton, all, r)
		}
	})
	b.Run("CountRow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = rt.CountIntRange(tonIdx, r)
		}
	})
	b.Run("MedianColumn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := engine.IntMedian(ton, all); !ok {
				b.Fatal("median failed")
			}
		}
	})
	b.Run("MedianRow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := rt.MedianInt(tonIdx); !ok {
				b.Fatal("median failed")
			}
		}
	})
}

// BenchmarkE8Sampling measures the Section 5.2 sampled-median
// strategy.
func BenchmarkE8Sampling(b *testing.B) {
	tab := table(b, "voc", 200000, 1)
	ctx := contextOn(b, tab, "type_of_boat", "tonnage", "built", "trip")
	for _, sample := range []int{0, 16384, 1024} {
		name := "exact"
		if sample > 0 {
			name = fmt.Sprintf("sample=%d", sample)
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Cut.SampleSize = sample
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := seg.NewEvaluator(tab)
				if _, err := core.HBCuts(ev, ctx, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9Baselines measures each Section 6 comparator on the
// same context.
func BenchmarkE9Baselines(b *testing.B) {
	tab := table(b, "voc", 20000, 1)
	ctx := contextOn(b, tab, "type_of_boat", "tonnage", "departure_harbour", "trip")
	b.Run("HBCuts", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev := seg.NewEvaluator(tab)
			if _, err := core.HBCuts(ev, ctx, core.DefaultConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Adaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev := seg.NewEvaluator(tab)
			if _, err := core.AdaptiveCuts(ev, ctx, core.DefaultConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RandomComposition", func(b *testing.B) {
		cfg := core.DefaultConfig()
		cfg.Pairing = core.PairRandom
		for i := 0; i < b.N; i++ {
			ev := seg.NewEvaluator(tab)
			if _, err := core.HBCuts(ev, ctx, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Facets", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev := seg.NewEvaluator(tab)
			if _, err := baseline.Facets(ev, ctx, 12); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CLIQUE", func(b *testing.B) {
		attrs := []string{"type_of_boat", "tonnage", "departure_harbour", "trip"}
		for i := 0; i < b.N; i++ {
			if _, err := baseline.Clique(tab, tab.All(), attrs, baseline.DefaultCliqueConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("KMeans", func(b *testing.B) {
		gm := table(b, "gaussian", 20000, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := baseline.KMeans(gm, gm.All(), []string{"x0", "x1"}, 8, 50, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE10Quantiles measures cut cost versus arity.
func BenchmarkE10Quantiles(b *testing.B) {
	tab := table(b, "gaussian", 100000, 1)
	ctx := contextOn(b, tab, "x0")
	for _, arity := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("arity=%d", arity), func(b *testing.B) {
			opt := seg.DefaultCutOptions()
			opt.Arity = arity
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := seg.NewEvaluator(tab)
				if _, ok, err := seg.InitialCut(ev, ctx, "x0", opt); err != nil || !ok {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE11Lazy compares eager total cost against time-to-first-
// answer of the lazy stream.
func BenchmarkE11Lazy(b *testing.B) {
	tab := table(b, "voc", 50000, 1)
	ctx := contextOn(b, tab, "type_of_boat", "tonnage", "built", "departure_harbour", "trip")
	b.Run("EagerAll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev := seg.NewEvaluator(tab)
			if _, err := core.HBCuts(ev, ctx, core.DefaultConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("LazyFirstAnswer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev := seg.NewEvaluator(tab)
			st, err := core.NewStream(ev, ctx, core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			if _, ok, err := st.Next(); err != nil || !ok {
				b.Fatal(err)
			}
		}
	})
}

// --- engine micro-benchmarks: the two Section 5.1 operations ---

func BenchmarkEngineFilterIntRange(b *testing.B) {
	tab := table(b, "voc", 100000, 1)
	ton := tab.MustColumn("tonnage").(*engine.IntColumn)
	all := tab.All()
	r := engine.IntRange{Lo: 200, Hi: 600, LoIncl: true, HiIncl: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = engine.FilterIntRange(ton, all, r)
	}
}

func BenchmarkEngineMedianInt(b *testing.B) {
	tab := table(b, "voc", 100000, 1)
	ton := tab.MustColumn("tonnage").(*engine.IntColumn)
	all := tab.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := engine.IntMedian(ton, all); !ok {
			b.Fatal("median failed")
		}
	}
}

func BenchmarkEngineIntersectCount(b *testing.B) {
	n := 200000
	a := make(engine.Selection, 0, n/2)
	c := make(engine.Selection, 0, n/3)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			a = append(a, int32(i))
		}
		if i%3 == 0 {
			c = append(c, int32(i))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = engine.IntersectCount(a, c)
	}
}

func BenchmarkEngineStringFilter(b *testing.B) {
	tab := table(b, "voc", 100000, 1)
	col := tab.MustColumn("type_of_boat").(*engine.StringColumn)
	all := tab.All()
	want := []string{"fluit", "jacht"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = engine.FilterStringSet(col, all, want)
	}
}

func BenchmarkSDLParse(b *testing.B) {
	input := "(date: [1550-01-01, 1650-12-31], tonnage: [1000, 5000), type: {'jacht', 'fluit', pinas})"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sdl.Parse(input); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12WorkersScaling measures the tentpole claim: advise
// over VOC 50k with the fan-out bounded at 1, 2, 4 and all-CPU
// workers. The ranked output is identical at every width (pinned by
// TestWorkersDeterministic); only the wall-clock should move. On a
// multi-core machine Workers=4 must beat Workers=1 clearly; on a
// single core the widths tie, which is the degenerate check that
// the fan-out adds no meaningful overhead.
func BenchmarkE12WorkersScaling(b *testing.B) {
	tab := table(b, "voc", 50000, 1)
	ctx := contextOn(b, tab, "type_of_boat", "tonnage", "built", "departure_harbour", "trip")
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := seg.NewEvaluator(tab)
				if _, err := core.HBCuts(ev, ctx, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE13ConcurrentSessions measures the multi-session story:
// b.RunParallel advising goroutines sharing one evaluator, the
// server's deployment shape.
func BenchmarkE13ConcurrentSessions(b *testing.B) {
	tab := table(b, "voc", 50000, 1)
	ctx := contextOn(b, tab, "type_of_boat", "tonnage", "built", "departure_harbour", "trip")
	ev := seg.NewEvaluator(tab)
	cfg := core.DefaultConfig()
	cfg.Workers = 1 // parallelism across sessions, not within one
	engine.SetScanWorkers(1)
	defer engine.SetScanWorkers(0)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := core.HBCuts(ev, ctx, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAdvisorFacade(b *testing.B) {
	tab := charles.GenerateVOC(10000, 1)
	adv := charles.NewAdvisor(tab, charles.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adv.AdviseString("(type_of_boat:, tonnage:)"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14BitmapIntersect isolates the tentpole claim: on dense
// selections (≥ 1/8 density here, far above the 1/64 crossover) the
// word-packed AND+popcount intersection count must beat the sorted-
// merge IntersectCount by ≥ 5×. BitmapBuildAndCount includes the
// one-time packing cost the pairwise operators amortize over a whole
// contingency row; MixedProbe is the sparse-against-dense path.
func BenchmarkE14BitmapIntersect(b *testing.B) {
	const nRows = 200000
	mk := func(stride int) engine.Selection {
		out := make(engine.Selection, 0, nRows/stride+1)
		for i := 0; i < nRows; i += stride {
			out = append(out, int32(i))
		}
		return out
	}
	dense2, dense3 := mk(2), mk(3) // densities 1/2 and 1/3
	b.Run("SortedMerge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = engine.IntersectCount(dense2, dense3)
		}
	})
	ba, bc := engine.NewBitmap(dense2, nRows), engine.NewBitmap(dense3, nRows)
	b.Run("BitmapAndCount", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = ba.AndCount(bc)
		}
	})
	b.Run("BitmapBuildAndCount", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x, y := engine.NewBitmap(dense2, nRows), engine.NewBitmap(dense3, nRows)
			_ = x.AndCount(y)
		}
	})
	sparse := mk(1024)
	b.Run("MixedProbe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = engine.AndCountSelection(ba, sparse)
		}
	})
}

// BenchmarkE15ParallelCells measures the parallel contingency-table
// fan-out on an 8×8 cell grid over VOC 100k: representation × worker
// count. The cell values are identical in every configuration
// (TestCellCountsParallelMatchesSequential pins this); only the
// wall-clock moves. On the single-core CI container the widths tie;
// run on multi-core hardware to see the scaling.
func BenchmarkE15ParallelCells(b *testing.B) {
	tab := table(b, "voc", 100000, 1)
	ctx := contextOn(b, tab, "tonnage", "built")
	ev := seg.NewEvaluator(tab)
	opt := seg.DefaultCutOptions()
	opt.Arity = 8
	s1, ok, err := seg.InitialCut(ev, ctx, "tonnage", opt)
	if err != nil || !ok {
		b.Fatalf("InitialCut(tonnage): %v ok=%v", err, ok)
	}
	s2, ok, err := seg.InitialCut(ev, ctx, "built", opt)
	if err != nil || !ok {
		b.Fatalf("InitialCut(built): %v ok=%v", err, ok)
	}
	for _, rep := range []seg.SelectionRep{seg.RepVector, seg.RepAuto} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("rep=%s/workers=%d", rep, workers), func(b *testing.B) {
				po := seg.PairOptions{Workers: workers, Rep: rep}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := seg.CellCountsOpt(ev, s1, s2, po); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE16ChunkedScan measures the chunked storage path on a
// 1M-row table: full-selection range filter, median cut point and
// bitmap pack, each iterating 64K-row chunks through the scan worker
// pool. The outputs are identical at every width (the chunked
// equivalence property tests pin this); the wall-clock should fall
// as workers rise on multi-core hardware. The single-width flat
// subbenchmark is the pre-chunking baseline for the same scan.
func BenchmarkE16ChunkedScan(b *testing.B) {
	const nRows = 1_000_000
	tab := table(b, "voc", nRows, 1)
	col, ok := tab.ColumnByName("tonnage")
	if !ok {
		b.Fatal("no tonnage column")
	}
	ton := col.(engine.IntValued)
	sum := tab.SummaryByName("tonnage")
	all := tab.AllChunked()
	r := engine.IntRange{Lo: 150, Hi: 800, LoIncl: true, HiIncl: false}
	b.Run("flat/workers=1", func(b *testing.B) {
		engine.SetScanWorkers(1)
		defer engine.SetScanWorkers(0)
		flat := tab.All()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sel := engine.FilterIntRange(ton, flat, r)
			if _, ok := engine.IntMedian(ton, sel); !ok {
				b.Fatal("empty selection")
			}
			// Pack like the chunked loop does, so the two compare
			// the same filter+median+pack pipeline.
			_ = engine.NewBitmap(sel, nRows)
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("chunked/workers=%d", workers), func(b *testing.B) {
			engine.SetScanWorkers(workers)
			defer engine.SetScanWorkers(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cs := engine.FilterIntRangeChunked(ton, all, r, sum)
				if _, ok := engine.IntMedianChunked(ton, cs); !ok {
					b.Fatal("empty selection")
				}
				_ = engine.NewBitmapChunked(cs)
			}
		})
	}
}

// BenchmarkE19NominalPrune isolates the nominal zone-map claim: a
// selective string predicate on a 1M-row table whose values are
// clustered by region (the natural shape of time- or load-ordered
// ingest) must run several times faster with the presence summaries
// consulted than with every chunk scanned — the wanted value lives
// in 1 of 16 chunks, so pruning skips ~94% of the rows. The pruned
// and unpruned selections are identical (the nominal equivalence
// property tests pin this); only the chunks touched differ. Fused
// measures the same pruned predicate straight into a bitmap.
func BenchmarkE19NominalPrune(b *testing.B) {
	const nRows = 1_000_000
	const values = 64 // 15625 rows per value, clustered: ~4 values per 64K chunk
	vals := make([]string, nRows)
	for i := range vals {
		vals[i] = fmt.Sprintf("region-%02d", i/(nRows/values))
	}
	tab := engine.MustNewTable("clustered", engine.NewStringColumn("region", vals))
	col := tab.MustColumn("region").(*engine.StringColumn)
	sum := tab.SummaryByName("region")
	if sum == nil {
		b.Fatal("no nominal summary")
	}
	all := tab.AllChunked()
	want := []string{"region-17"}
	b.Run("unpruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if cs := engine.FilterStringSetChunked(col, all, want, nil); cs.Len() == 0 {
				b.Fatal("empty selection")
			}
		}
	})
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if cs := engine.FilterStringSetChunked(col, all, want, sum); cs.Len() == 0 {
				b.Fatal("empty selection")
			}
		}
	})
	b.Run("pruned-fused-bitmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if bm := engine.FilterStringSetChunkedBitmap(col, all, want, sum); bm.Count() == 0 {
				b.Fatal("empty bitmap")
			}
		}
	})
}

// BenchmarkE17ScaleAdvise is the 10M-row end-to-end comparison the
// chunked storage layer exists for; it generates a ~10M-row VOC
// table (several hundred MB of columns), so it only runs when
// CHARLES_SCALE=1 — `make bench-scale` sets it. The advise must
// complete without exhausting memory; wall-clock across worker
// counts is the scaling measurement.
func BenchmarkE17ScaleAdvise(b *testing.B) {
	if os.Getenv("CHARLES_SCALE") == "" {
		b.Skip("10M-row scale run; set CHARLES_SCALE=1 (make bench-scale) to enable")
	}
	const nRows = 10_000_000
	tab := table(b, "voc", nRows, 1)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Workers = workers
			ctx := contextOn(b, tab, "type_of_boat", "tonnage", "departure_harbour")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := seg.NewEvaluator(tab)
				if _, err := core.HBCuts(ev, ctx, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE20ColdStart measures the out-of-core start-up path: open
// a 1M-row .chc columnar file via mmap (docs/FORMAT.md) and warm
// every zone map from the persisted summary regions. This is the
// charles-server boot sequence with -table, and the number the
// format exists for — milliseconds instead of the seconds a CSV
// parse or generator run costs at the same scale.
func BenchmarkE20ColdStart(b *testing.B) {
	const nRows = 1_000_000
	path := filepath.Join(b.TempDir(), "voc1m.chc")
	if err := charles.SaveColumnFile(path, table(b, "voc", nRows, 1), charles.ColumnFileOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := charles.OpenColumnFile(path)
		if err != nil {
			b.Fatal(err)
		}
		if warmed := tab.WarmSummaries(); warmed != tab.NumCols() {
			b.Fatalf("warmed %d zone maps, want %d", warmed, tab.NumCols())
		}
		if err := tab.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE21DeltaAdvise measures the incremental-advise claim
// (chunk-epoch invalidation): after appending 1% more rows to a
// 1M-row table, a warm advisor — selection caches, packed bitmaps
// and cut-point runs all primed and epoch-stamped — re-advises ≥10×
// faster than a cold advisor over the same mutated data, answering
// byte-identically (TestE21DeltaAdviseGate pins both properties; the
// `make bench-delta` CI smoke re-checks the ratio).
func BenchmarkE21DeltaAdvise(b *testing.B) {
	const nRows = 1_000_000
	const context = "(type_of_boat:, tonnage:, departure_harbour:)"
	src := table(b, "voc", nRows, 1)
	appendDelta := func(b *testing.B, tab *engine.Table, round int) {
		b.Helper()
		rows := make([][]engine.Value, nRows/100)
		for i := range rows {
			r := (i*97 + round) % nRows
			row := make([]engine.Value, src.NumCols())
			for c := 0; c < src.NumCols(); c++ {
				row[c] = src.Column(c).Value(r)
			}
			rows[i] = row
		}
		if err := tab.AppendRows(rows...); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("cold", func(b *testing.B) {
		tab := cloneTable(b, src)
		appendDelta(b, tab, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			adv := charles.NewAdvisor(tab, charles.DefaultConfig())
			if _, err := adv.AdviseString(context); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		tab := cloneTable(b, src)
		adv := charles.NewAdvisor(tab, charles.DefaultConfig())
		if _, err := adv.AdviseString(context); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			appendDelta(b, tab, i+1)
			b.StartTimer()
			if _, err := adv.AdviseString(context); err != nil {
				b.Fatal(err)
			}
		}
	})
}
