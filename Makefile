# Single source of truth for the build-and-verify loop: CI runs
# exactly these targets, so "works in CI" and "works locally" mean
# the same commands.

GO ?= go

.PHONY: all build test test-race bench bench-smoke fmt fmt-check vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Full benchmark sweep (slow; regenerates every paper experiment).
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# One iteration per benchmark: proves they still run, in CI time.
# -bench=. sweeps everything, including the E14 bitmap-intersect and
# E15 parallel-cells pair guarding the selection-representation work.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt-check vet build test-race bench-smoke
