# Single source of truth for the build-and-verify loop: CI runs
# exactly these targets, so "works in CI" and "works locally" mean
# the same commands.

GO ?= go

# Perf-trajectory artifact name; tracks the PR sequence so successive
# baselines never overwrite each other in the artifact history.
BENCH_OUT ?= BENCH_10.json

.PHONY: all build test test-race bench bench-smoke bench-json bench-scale bench-delta fmt fmt-check vet lint fuzz-smoke chaos metrics-smoke docs-check ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Full benchmark sweep (slow; regenerates every paper experiment).
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# One iteration per benchmark: proves they still run, in CI time.
# -bench=. sweeps everything, including the E14 bitmap-intersect /
# E15 parallel-cells pair guarding the selection-representation work
# and the E16 chunked-scan benchmark guarding the chunked storage
# path. (E17 self-skips without CHARLES_SCALE.)
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Perf trajectory: the bench-smoke set with -benchmem, recorded as
# op → ns/op + B/op + allocs/op JSON. CI uploads $(BENCH_OUT) as an
# artifact so future PRs have a baseline to diff against. Two steps,
# not a pipe: a pipe would report the converter's exit status and let
# a failing benchmark slip through the CI gate.
bench-json:
	$(GO) test -run=NONE -bench=. -benchtime=1x -benchmem ./... > bench-smoke.out
	$(GO) run ./cmd/charles-benchjson < bench-smoke.out > $(BENCH_OUT)
	@rm -f bench-smoke.out

# Incremental-advise smoke: one E21 delta benchmark iteration proves
# the cold/warm pair still runs, and the env-gated E21 test enforces
# the conservative CI-safe floor (warm re-advise after a 1% append at
# least 5x faster than cold). CHARLES_DELTA_GATE=10 checks the
# paper-facing 10x claim on a quiet machine.
bench-delta:
	$(GO) test -run=NONE -bench=BenchmarkE21DeltaAdvise -benchtime=1x .
	CHARLES_DELTA_GATE=1 $(GO) test -run='TestE21DeltaAdviseGate' -v -timeout=15m .

# The 10M-row scale comparison (E17) plus the 1M-row chunked scan
# (E16), locally: generates ~10M rows of VOC (several hundred MB),
# so it is not part of CI. Expect minutes on first run.
bench-scale:
	CHARLES_SCALE=1 $(GO) test -run=NONE -bench='E16ChunkedScan|E17ScaleAdvise' -benchtime=1x -timeout=30m .

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Invariant lint: the repo's own analyzers (internal/lint, run via
# cmd/charles-lint) machine-check the engine's load-bearing
# guarantees — see docs/ARCHITECTURE.md for the analyzer ↔ invariant
# table. staticcheck and govulncheck join the gate when installed;
# they are optional so the target works in offline sandboxes where
# only the toolchain itself is available.
lint:
	$(GO) run ./cmd/charles-lint
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else echo "staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "govulncheck ./..."; govulncheck ./...; \
	else echo "govulncheck not installed; skipping"; fi

# Short native-fuzz pass over the .chc parsers: enough budget to
# exercise the mutators on every seed class, small enough for CI.
# The exec-denominated minimize budget keeps a newly found
# interesting input from eating the wall-clock budget.
fuzz-smoke:
	$(GO) test ./internal/colfile -run=NONE -fuzz=FuzzReadPage -fuzztime=20s -fuzzminimizetime=30x
	$(GO) test ./internal/colfile -run=NONE -fuzz=FuzzOpenColumnFile -fuzztime=20s -fuzzminimizetime=30x

# Chaos gate: the failpoint suite under the race detector. Every
# TestChaos* test arms an internal/fault failpoint (catalogue in
# docs/ROBUSTNESS.md) and requires a descriptive error or a contained
# panic — never a crash — plus byte-identical advise output once the
# fault is disarmed.
chaos:
	$(GO) test -race -run 'TestChaos' ./...

# Observability gate: boot a real charles-server, run one advise, and
# require /healthz + /metrics to answer 200 with every layer's metric
# families present (scripts/metrics_smoke.sh).
metrics-smoke:
	sh scripts/metrics_smoke.sh

# Documentation gate: relative markdown links in README + docs/ must
# resolve, and every §N the colfile code cites must be a heading in
# docs/FORMAT.md (the spec's numbering is load-bearing).
docs-check:
	$(GO) test -run='TestDocs' .

ci: fmt-check vet lint build test-race chaos fuzz-smoke metrics-smoke docs-check bench-json bench-delta
