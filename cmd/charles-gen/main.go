// Command charles-gen writes a built-in synthetic dataset to CSV or
// to the Charles columnar format, so the advisor (or any other tool)
// can load it back. It is the stand-in for the proprietary VOC
// shipping and astronomy databases the paper demonstrates on.
//
// The output format follows the -out suffix: .chc (docs/FORMAT.md)
// writes the mmap-ready columnar file, anything else writes CSV.
//
// Usage:
//
//	charles-gen -dataset voc -rows 100000 -seed 1 -out voyages.csv
//	charles-gen -dataset voc -rows 1000000 -out voc.chc -cluster-by tonnage
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"charles"
	"charles/internal/colfile"
)

func main() {
	var (
		dsName    = flag.String("dataset", "voc", "dataset: voc, sky, weblog, gaussian, uniform, figure3")
		rows      = flag.Int("rows", 100000, "rows to generate")
		seed      = flag.Int64("seed", 1, "generator seed")
		out       = flag.String("out", "", "output path; a .chc suffix writes the columnar format (default <dataset>.csv)")
		chunkRows = flag.Int("chunk-rows", 0, ".chc output: chunk width to persist pages and zone maps at (0 = auto)")
		clusterBy = flag.String("cluster-by", "", ".chc output: sort rows by this column while writing")
	)
	flag.Parse()
	path := *out
	if path == "" {
		path = *dsName + ".csv"
	}
	tab, err := charles.GenerateDataset(*dsName, *rows, *seed)
	if err != nil {
		fatal(err)
	}
	if strings.HasSuffix(path, colfile.Extension) {
		err = charles.SaveColumnFile(path, tab, charles.ColumnFileOptions{
			ChunkRows: *chunkRows,
			ClusterBy: *clusterBy,
		})
	} else {
		err = charles.WriteCSV(path, tab)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d rows x %d columns to %s\n", tab.NumRows(), tab.NumCols(), path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "charles-gen:", err)
	os.Exit(1)
}
