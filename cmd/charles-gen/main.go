// Command charles-gen writes a built-in synthetic dataset to CSV, so
// the advisor (or any other tool) can load it back. It is the
// stand-in for the proprietary VOC shipping and astronomy databases
// the paper demonstrates on.
//
// Usage:
//
//	charles-gen -dataset voc -rows 100000 -seed 1 -out voyages.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"charles"
)

func main() {
	var (
		dsName = flag.String("dataset", "voc", "dataset: voc, sky, weblog, gaussian, uniform, figure3")
		rows   = flag.Int("rows", 100000, "rows to generate")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("out", "", "output CSV path (default <dataset>.csv)")
	)
	flag.Parse()
	path := *out
	if path == "" {
		path = *dsName + ".csv"
	}
	tab, err := charles.GenerateDataset(*dsName, *rows, *seed)
	if err != nil {
		fatal(err)
	}
	if err := charles.WriteCSV(path, tab); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d rows x %d columns to %s\n", tab.NumRows(), tab.NumCols(), path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "charles-gen:", err)
	os.Exit(1)
}
