// Command charles is the terminal front-end of the query advisor —
// the text rendering of the Figure 1 interface. It loads a CSV file
// or generates a built-in dataset, takes an SDL context, prints the
// ranked segmentations, and (in interactive mode) lets the user open
// answers and zoom into segments, answering queries with queries.
//
// Usage:
//
//	charles -dataset voc -rows 50000 -context "(type_of_boat:, tonnage:)"
//	charles -csv voyages.csv -interactive
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"charles"
)

func main() {
	var (
		csvPath  = flag.String("csv", "", "load this CSV file (headered; kinds inferred)")
		dsName   = flag.String("dataset", "voc", "built-in dataset: voc, sky, weblog, gaussian, uniform, figure3")
		rows     = flag.Int("rows", 50000, "rows to generate for built-in datasets")
		seed     = flag.Int64("seed", 1, "generator seed")
		context  = flag.String("context", "", "SDL context query; empty means all columns")
		top      = flag.Int("top", 5, "answers to print (0 = all)")
		maxDepth = flag.Int("max-depth", 12, "maximum segments per answer")
		maxIndep = flag.Float64("max-indep", 0.99, "INDEP stopping threshold")
		arity    = flag.Int("arity", 2, "pieces per cut (2 = paper's median cuts)")
		sample   = flag.Int("sample", 0, "sample size for cut-point estimation (0 = exact)")
		chi2     = flag.Bool("chi2", false, "use the chi-squared stopping rule instead of max-indep")
		adaptive = flag.Bool("adaptive", false, "use adaptive per-piece cuts instead of HB-cuts")
		interact = flag.Bool("interactive", false, "enter the interactive explore loop")
	)
	flag.Parse()

	tab, err := loadTable(*csvPath, *dsName, *rows, *seed)
	if err != nil {
		fatal(err)
	}
	cfg := charles.DefaultConfig()
	cfg.MaxDepth = *maxDepth
	cfg.MaxIndep = *maxIndep
	cfg.Cut.Arity = *arity
	cfg.Cut.SampleSize = *sample
	cfg.UseChiSquare = *chi2
	adv := charles.NewAdvisor(tab, cfg)

	ctx, err := adv.ParseContext(*context)
	if err != nil {
		fatal(err)
	}
	if *adaptive {
		scored, err := adv.Adaptive(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("adaptive cuts produced %d segmentations\n", len(scored))
		for i, sc := range scored {
			if *top > 0 && i >= *top {
				break
			}
			fmt.Printf("\n#%d  depth=%d entropy=%.3f\n%s", i+1,
				sc.Metrics.Depth, sc.Metrics.Entropy, charles.RenderSegmentation(sc.Seg))
		}
		return
	}
	if !*interact {
		res, err := adv.Advise(ctx)
		if err != nil {
			fatal(err)
		}
		n, _ := adv.Count(ctx)
		fmt.Print(charles.RenderContext(ctx, n))
		fmt.Print(charles.RenderRanked(res, *top))
		return
	}
	explore(adv, ctx, *top)
}

func loadTable(csvPath, dsName string, rows int, seed int64) (*charles.Table, error) {
	if csvPath != "" {
		return charles.LoadCSV(csvPath)
	}
	return charles.GenerateDataset(dsName, rows, seed)
}

// explore runs the interactive loop: show ranked answers, open one,
// zoom into a segment (the segment's query becomes the context),
// back out, or quit.
func explore(adv *charles.Advisor, ctx charles.Query, top int) {
	stack := []charles.Query{ctx}
	sc := bufio.NewScanner(os.Stdin)
	for {
		cur := stack[len(stack)-1]
		res, err := adv.Advise(cur)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			if len(stack) > 1 {
				stack = stack[:len(stack)-1]
				continue
			}
			return
		}
		n, _ := adv.Count(cur)
		fmt.Print("\n", charles.RenderContext(cur, n))
		fmt.Print(charles.RenderRanked(res, top))
		fmt.Print("\ncommands: zoom <answer> <segment> | detail <answer> <segment> | sql <answer> <segment> | back | quit\n> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "q", "exit":
			return
		case "back", "b":
			if len(stack) > 1 {
				stack = stack[:len(stack)-1]
			} else {
				fmt.Println("already at the root context")
			}
		case "zoom", "z", "sql", "detail", "d":
			if len(fields) != 3 {
				fmt.Println("usage:", fields[0], "<answer> <segment> (1-based answer as printed)")
				continue
			}
			ai, err1 := strconv.Atoi(fields[1])
			si, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				fmt.Println("indexes must be numbers")
				continue
			}
			q, err := adv.Zoom(res, ai-1, si)
			if err != nil {
				fmt.Println(err)
				continue
			}
			switch fields[0] {
			case "sql":
				fmt.Println(charles.SQLSelect(q, adv.Table().Name()))
			case "detail", "d":
				out, err := adv.DescribeSegment(q, cur.Attrs())
				if err != nil {
					fmt.Println(err)
					continue
				}
				fmt.Print(out)
			default:
				stack = append(stack, q)
			}
		default:
			fmt.Println("unknown command:", fields[0])
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "charles:", err)
	os.Exit(1)
}
