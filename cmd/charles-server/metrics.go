// Metrics and exposition: every layer's instrumentation hooks wired
// into one obs.Registry, served as Prometheus text at GET /metrics.
// The hooks are observational only — installing them cannot change
// advise output (pinned by TestAdviseByteIdenticalWithTracing at the
// facade) — and /healthz reads the same counters, so the two
// endpoints can never disagree.
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"time"

	"charles/internal/engine"
	"charles/internal/jobs"
	"charles/internal/obs"
	"charles/internal/seg"
)

// serverMetrics owns the registry and the families the server
// updates directly. Library families (engine, seg, jobs) live behind
// their packages' hooks and only their registration happens here.
type serverMetrics struct {
	reg *obs.Registry

	// HTTP plane, updated by the access-log middleware.
	httpRequests *obs.Counter
	httpSeconds  *obs.Histogram

	// Advise accounting: advises counts executions that actually ran
	// HB-cuts; the result-LRU counters are shared with resultCache
	// (one source of truth for /healthz and /metrics alike).
	advises      *obs.Counter
	resultHits   *obs.Counter
	resultMisses *obs.Counter

	// Survivability counters. panicsRecovered is shared with the job
	// manager (jobMetrics.PanicsRecovered is the same counter): one
	// family counts containment events wherever they happen. The
	// admission counters keep 429 and 503 distinguishable in
	// dashboards, not just in status codes.
	panicsRecovered *obs.Counter
	overQuota       *obs.Counter
	queueFull       *obs.Counter
	bodyTooLarge    *obs.Counter

	// Job queue histograms, handed to the jobs.Manager.
	jobMetrics *jobs.Metrics
}

// newServerMetrics registers every metric family and installs the
// engine and evaluator hooks. Call once per process: the engine hook
// is global, and re-registering a family name panics by design.
func newServerMetrics(ev *seg.Evaluator) *serverMetrics {
	reg := obs.NewRegistry()

	// Engine: zone-map verdicts and kernel picks.
	engine.SetMetrics(&engine.Metrics{
		ZoneSkip:      reg.NewCounter("charles_engine_zone_skip_total", "chunks skipped whole by a zone-map verdict"),
		ZoneTake:      reg.NewCounter("charles_engine_zone_take_total", "chunks passed through whole by a zone-map verdict"),
		ZoneScan:      reg.NewCounter("charles_engine_zone_scan_total", "chunks scanned row by row"),
		VectorKernels: reg.NewCounter("charles_engine_vector_kernels_total", "chunked filters answered with row-id selections"),
		FusedKernels:  reg.NewCounter("charles_engine_fused_kernels_total", "chunked filters fused straight into bitmap words"),
	})

	// Evaluator: cache effectiveness and the incremental-advise
	// splice paths (charles_delta_refreshes_total is the counter that
	// proves the PR 8 epoch-splice path engaged in production).
	ev.SetEvalMetrics(&seg.EvalMetrics{
		FullEvals:      reg.NewCounter("charles_seg_full_evals_total", "full constraint-chain query evaluations (selection cache misses)"),
		NarrowEvals:    reg.NewCounter("charles_seg_narrow_evals_total", "incremental parent-to-child evaluations"),
		CacheHits:      reg.NewCounter("charles_seg_cache_hits_total", "selections and bitmaps served from the evaluator cache"),
		CutPointCalcs:  reg.NewCounter("charles_seg_cut_point_calcs_total", "median/quantile cut-point computations"),
		CutCacheHits:   reg.NewCounter("charles_seg_cut_cache_hits_total", "cut-point sets served from the cut cache"),
		DeltaRefreshes: reg.NewCounter("charles_delta_refreshes_total", "cached selections spliced up to date after a mutation"),
		CutRefreshes:   reg.NewCounter("charles_delta_cut_refreshes_total", "cached cut points spliced up to date after a mutation"),
		PairMemoHits:   reg.NewCounter("charles_seg_pair_memo_hits_total", "pairwise operand sides reused from a PairMemo"),
		PairMemoMisses: reg.NewCounter("charles_seg_pair_memo_misses_total", "pairwise operand sides built fresh"),
	})

	panicsRecovered := reg.NewCounter("charles_panics_recovered_total",
		"panics contained into a failed job or a 500 instead of killing the process")
	return &serverMetrics{
		reg: reg,
		httpRequests: reg.NewCounter("charles_http_requests_total",
			"HTTP requests served"),
		httpSeconds: reg.NewHistogram("charles_http_request_seconds",
			"HTTP request latency in seconds", obs.DefaultLatencyBuckets()),
		advises: reg.NewCounter("charles_advises_total",
			"advise executions that actually ran the advisor core"),
		resultHits: reg.NewCounter("charles_result_cache_hits_total",
			"advise results served from the cross-session LRU"),
		resultMisses: reg.NewCounter("charles_result_cache_misses_total",
			"advise requests that missed the cross-session LRU"),
		panicsRecovered: panicsRecovered,
		overQuota: reg.NewCounter("charles_http_over_quota_total",
			"submissions refused 429: the client exceeded its token bucket"),
		queueFull: reg.NewCounter("charles_http_queue_full_total",
			"submissions refused 503: the job queue was saturated"),
		bodyTooLarge: reg.NewCounter("charles_http_body_too_large_total",
			"requests refused 413: body over the -max-body-bytes bound"),
		jobMetrics: &jobs.Metrics{
			QueueWait: reg.NewHistogram("charles_jobs_queue_wait_seconds",
				"time a job waited for a worker", obs.DefaultLatencyBuckets()),
			Run: reg.NewHistogram("charles_jobs_run_seconds",
				"time a job's advise executed", obs.DefaultLatencyBuckets()),
			PanicsRecovered: panicsRecovered,
		},
	}
}

// registerServerGauges exposes values the server and job manager
// already track, read at scrape time so nothing is double-counted.
// Separate from newServerMetrics because they close over the server,
// which is built after its metrics.
func (sv *server) registerServerGauges() {
	reg := sv.metrics.reg
	reg.NewGaugeFunc("charles_sessions", "live exploration sessions", func() int64 {
		sv.mu.Lock()
		defer sv.mu.Unlock()
		return int64(len(sv.sessions))
	})
	reg.NewGaugeFunc("charles_result_cache_size", "entries in the cross-session result LRU", func() int64 {
		size, _, _ := sv.results.stats()
		return int64(size)
	})
	reg.NewGaugeFunc("charles_jobs_queued", "jobs waiting for a worker", func() int64 {
		return int64(sv.jobs.Stats().Queued)
	})
	reg.NewGaugeFunc("charles_jobs_running", "jobs currently executing", func() int64 {
		return int64(sv.jobs.Stats().Running)
	})
	reg.NewGaugeFunc("charles_jobs_retained", "jobs tracked, terminal ones included", func() int64 {
		return int64(sv.jobs.Stats().Retained)
	})
	reg.NewCounterFunc("charles_jobs_submitted_total", "submissions that created a new job", func() int64 {
		return int64(sv.jobs.Stats().Submitted)
	})
	reg.NewCounterFunc("charles_jobs_coalesced_total", "submissions answered by an existing job", func() int64 {
		return int64(sv.jobs.Stats().Coalesced)
	})
}

// handleMetrics serves the registry in the Prometheus text format.
func (sv *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := sv.metrics.reg.WritePrometheus(w); err != nil {
		log.Printf("charles-server: metrics: %v", err)
	}
}

// statusRecorder captures the status an inner handler wrote so the
// access log can report it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// withAccessLogs wraps the mux with structured (key=value) access
// logging and the HTTP metric families.
func (sv *server) withAccessLogs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sr, r)
		dur := time.Since(start)
		sv.metrics.httpRequests.Inc()
		sv.metrics.httpSeconds.Observe(dur.Seconds())
		log.Printf("charles-server: access method=%s path=%s status=%d dur=%s remote=%s",
			r.Method, r.URL.Path, sr.status, dur.Round(time.Microsecond), r.RemoteAddr)
	})
}

// withRecover contains a panicking handler into a 500 and a counter
// bump: one broken request must never take the process (and every
// other user's session) down with it. http.ErrAbortHandler is
// re-raised — it is net/http's own sanctioned way to abort a
// response, not a bug to contain. The JSON 500 is best-effort: if the
// handler already wrote a partial body, the error text simply lands
// after it.
func (sv *server) withRecover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			sv.metrics.panicsRecovered.Inc()
			log.Printf("charles-server: panic recovered serving %s %s: %v\n%s",
				r.Method, r.URL.Path, rec, debug.Stack())
			jsonError(w, http.StatusInternalServerError, fmt.Sprintf("panic recovered: %v", rec))
		}()
		next.ServeHTTP(w, r)
	})
}

// servePprof exposes net/http/pprof on its own listener, opt-in via
// -pprof-addr: profiling endpoints leak implementation detail and do
// not belong on the serving port.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		log.Printf("charles-server: pprof at http://%s/debug/pprof/", addr)
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("charles-server: pprof: %v", err)
		}
	}()
}
