package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"charles"
	"charles/internal/jobs"
)

// Prometheus text-format grammar, per the exposition spec: metadata
// comments name a family and its kind; samples are a metric name, an
// optional {le="..."} label set (the only labels this server emits),
// and a number.
var (
	rxHelp   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	rxType   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	rxSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="[^"]+"\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]?Inf|NaN)$`)
)

// baseFamily strips the histogram sample suffixes so a sample line
// can be matched to its # TYPE declaration.
func baseFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// TestMetricsPrometheusGrammar drives one sync advise and one async
// job through the server, then parses GET /metrics line by line:
// every line must be well-formed, every sample must follow its
// family's # HELP/# TYPE metadata, histogram buckets must be
// cumulative and agree with _count, and the families from every
// layer (engine, seg, jobs, server) must be present.
func TestMetricsPrometheusGrammar(t *testing.T) {
	sv := testServer(t)
	c := newClient(t, sv)
	// Sync advise: populates the advise counter and the engine/seg
	// families. Async advise on a distinct context: populates the
	// jobs histograms and trace machinery.
	if _, body := c.get("/"); !strings.Contains(body, "Proposed segmentations") {
		t.Fatal("sync advise did not render")
	}
	if code, job := c.submitAdvise("(tonnage:)"); code == http.StatusAccepted {
		c.pollJob(job.ID)
	} else if code != http.StatusOK {
		t.Fatalf("async submit: %d", code)
	}

	resp, body := c.get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 text format", ct)
	}

	helpSeen := map[string]bool{}
	typeOf := map[string]string{}
	sampleValues := map[string]float64{}
	var bucketOrder []string // histogram bucket sample names in emission order
	bucketVals := map[string][]float64{}
	for i, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Errorf("line %d: empty line in exposition", i+1)
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			m := rxHelp.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("line %d: malformed HELP: %q", i+1, line)
				continue
			}
			if helpSeen[m[1]] {
				t.Errorf("line %d: duplicate HELP for %s", i+1, m[1])
			}
			helpSeen[m[1]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			m := rxType.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("line %d: malformed TYPE: %q", i+1, line)
				continue
			}
			if !helpSeen[m[1]] {
				t.Errorf("line %d: TYPE for %s precedes its HELP", i+1, m[1])
			}
			if _, dup := typeOf[m[1]]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", i+1, m[1])
			}
			typeOf[m[1]] = m[2]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("line %d: unknown comment %q", i+1, line)
			continue
		}
		m := rxSample.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d: malformed sample: %q", i+1, line)
			continue
		}
		name, labels, valStr := m[1], m[2], m[3]
		fam := baseFamily(name)
		kind, declared := typeOf[fam]
		if !declared {
			// A non-suffixed name (plain counter/gauge) declares
			// itself.
			kind, declared = typeOf[name], typeOf[name] != ""
			fam = name
		}
		if !declared {
			t.Errorf("line %d: sample %s has no preceding # TYPE", i+1, name)
			continue
		}
		if labels != "" && kind != "histogram" {
			t.Errorf("line %d: le label on non-histogram %s", i+1, name)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Errorf("line %d: bad value %q: %v", i+1, valStr, err)
			continue
		}
		sampleValues[name] = val
		if strings.HasSuffix(name, "_bucket") {
			if len(bucketVals[name]) == 0 {
				bucketOrder = append(bucketOrder, name)
			}
			bucketVals[name] = append(bucketVals[name], val)
		}
	}

	// Buckets are cumulative: non-decreasing within a family, and the
	// last (+Inf) bucket equals _count.
	for _, name := range bucketOrder {
		vals := bucketVals[name]
		for i := 1; i < len(vals); i++ {
			if vals[i] < vals[i-1] {
				t.Errorf("%s buckets not cumulative: %v", name, vals)
				break
			}
		}
		fam := strings.TrimSuffix(name, "_bucket")
		if count, ok := sampleValues[fam+"_count"]; !ok || vals[len(vals)-1] != count {
			t.Errorf("%s: +Inf bucket %v != _count %v", fam, vals[len(vals)-1], count)
		}
	}

	// Every serving-plane layer must expose its families.
	required := []string{
		"charles_engine_zone_skip_total",
		"charles_engine_zone_take_total",
		"charles_engine_zone_scan_total",
		"charles_engine_vector_kernels_total",
		"charles_engine_fused_kernels_total",
		"charles_seg_full_evals_total",
		"charles_seg_cache_hits_total",
		"charles_seg_pair_memo_hits_total",
		"charles_delta_refreshes_total",
		"charles_jobs_queue_wait_seconds",
		"charles_jobs_run_seconds",
		"charles_jobs_submitted_total",
		"charles_http_requests_total",
		"charles_http_request_seconds",
		"charles_advises_total",
		"charles_sessions",
		"charles_result_cache_hits_total",
		"charles_result_cache_misses_total",
		"charles_result_cache_size",
	}
	for _, fam := range required {
		if _, ok := typeOf[fam]; !ok {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}

	// The traffic above must be visible: the advise counter and the
	// jobs run histogram both saw work.
	if sampleValues["charles_advises_total"] < 1 {
		t.Errorf("charles_advises_total = %v after an advise", sampleValues["charles_advises_total"])
	}
	if sampleValues["charles_jobs_run_seconds_count"] < 1 {
		t.Errorf("charles_jobs_run_seconds_count = %v after an async job", sampleValues["charles_jobs_run_seconds_count"])
	}
	if sampleValues["charles_http_requests_total"] != 0 {
		// The test client calls the mux directly, not through the
		// access-log middleware, so this stays 0 here — the middleware
		// is exercised by TestAccessLogMiddleware.
		t.Errorf("charles_http_requests_total = %v without the middleware", sampleValues["charles_http_requests_total"])
	}
}

// TestAdviseTraceOptIn pins the response-shape contract: an advise
// response carries the per-stage trace only when asked, and a job
// poll always carries it once the job ran.
func TestAdviseTraceOptIn(t *testing.T) {
	sv := testServer(t)
	c := newClient(t, sv)
	code, job := c.submitAdvise("(tonnage:)")
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: %d", code)
	}
	if len(job.Trace) != 0 {
		t.Errorf("untraced advise response carried a trace: %+v", job.Trace)
	}
	done := c.pollJob(job.ID)
	stages := map[string]bool{}
	for _, st := range done.Trace {
		stages[st.Name] = true
	}
	for _, want := range []string{"queue_wait", "run"} {
		if !stages[want] {
			t.Errorf("job poll missing stage %q: %+v", want, done.Trace)
		}
	}
}

// TestAdviseTraceRequested pins the positive opt-in: with the result
// cache out of the way (custom ScoreFunc), a repeat advise is a
// jobs-layer hot hit answering 200 with the finished snapshot — and
// trace=1 includes its stage breakdown.
func TestAdviseTraceRequested(t *testing.T) {
	cfg := charles.DefaultConfig()
	cfg.Score = func(m charles.Metrics) float64 { return m.Entropy }
	sv := testServerOpts(t, cfg, jobs.Options{})
	c := newClient(t, sv)
	code, job := c.submitAdvise("(tonnage:)")
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: %d", code)
	}
	c.pollJob(job.ID)
	resp, body := c.doForm(http.MethodPost, "/advise",
		url.Values{"context": {"(tonnage:)"}, "trace": {"1"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hot-hit advise: %d (%s)", resp.StatusCode, body)
	}
	var jj jsonJob
	if err := json.Unmarshal([]byte(body), &jj); err != nil {
		t.Fatal(err)
	}
	if len(jj.Trace) == 0 {
		t.Fatalf("trace=1 advise response has no trace: %s", body)
	}
}

// TestAccessLogMiddleware pins the wrapped handler: requests through
// withAccessLogs land in the HTTP families.
func TestAccessLogMiddleware(t *testing.T) {
	sv := testServer(t)
	h := sv.withAccessLogs(sv.mux())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz through middleware: %d", rec.Code)
	}
	if got := sv.metrics.httpRequests.Value(); got != 1 {
		t.Errorf("charles_http_requests_total = %d after one request", got)
	}
	if got := sv.metrics.httpSeconds.Count(); got != 1 {
		t.Errorf("latency histogram saw %d requests", got)
	}
}
