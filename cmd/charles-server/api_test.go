// Tests for the async advise API: job lifecycle over HTTP, the
// async==sync equivalence matrix, coalescing of identical
// submissions, queue backpressure, cancellation, the /healthz
// gauges, and the never-cache-errors regression.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"charles"
	"charles/internal/jobs"
	"charles/internal/obs"
)

// doForm drives a request with a form body through the mux.
func (c *client) doForm(method, target string, form url.Values) (*http.Response, string) {
	c.t.Helper()
	req := httptest.NewRequest(method, target, strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	if c.session != nil {
		req.AddCookie(c.session)
	}
	rec := httptest.NewRecorder()
	c.mux.ServeHTTP(rec, req)
	res := rec.Result()
	body := rec.Body.String()
	return res, body
}

// submitAdvise posts one async advise and decodes the job envelope.
func (c *client) submitAdvise(sdl string) (int, jsonJob) {
	c.t.Helper()
	res, body := c.doForm(http.MethodPost, "/advise", url.Values{"context": {sdl}})
	var jj jsonJob
	if err := json.Unmarshal([]byte(body), &jj); err != nil {
		c.t.Fatalf("submit response not JSON: %v\n%s", err, body)
	}
	return res.StatusCode, jj
}

// pollJob polls until the job reaches a terminal state.
func (c *client) pollJob(id string) jsonJob {
	c.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		res, body := c.get("/jobs/" + id)
		if res.StatusCode != http.StatusOK {
			c.t.Fatalf("poll %s: status %d\n%s", id, res.StatusCode, body)
		}
		var jj jsonJob
		if err := json.Unmarshal([]byte(body), &jj); err != nil {
			c.t.Fatalf("poll response not JSON: %v", err)
		}
		switch jj.State {
		case "done", "failed", "cancelled", "timed_out":
			return jj
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.t.Fatalf("job %s never reached a terminal state", id)
	return jsonJob{}
}

// fetchHealthz decodes /healthz.
func (c *client) fetchHealthz() healthzPayload {
	c.t.Helper()
	res, body := c.get("/healthz")
	if res.StatusCode != http.StatusOK {
		c.t.Fatalf("healthz: status %d", res.StatusCode)
	}
	var h healthzPayload
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		c.t.Fatalf("healthz not JSON: %v", err)
	}
	return h
}

// occupyWorkers parks n white-box jobs in the manager so HTTP
// submissions queue behind them deterministically.
func occupyWorkers(t *testing.T, sv *server, n int) chan struct{} {
	t.Helper()
	release := make(chan struct{})
	for i := 0; i < n; i++ {
		_, err := sv.jobs.Submit(fmt.Sprintf("\x00block-%d", i),
			func(ctx context.Context, progress charles.ProgressFunc) (*charles.Result, error) {
				select {
				case <-release:
					return &charles.Result{}, nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			})
		if err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for sv.jobs.Stats().Running < n {
		if time.Now().After(deadline) {
			t.Fatal("blocking jobs never started")
		}
		time.Sleep(time.Millisecond)
	}
	return release
}

func TestAsyncAdviseLifecycle(t *testing.T) {
	sv := testServer(t)
	c := newClient(t, sv)
	status, jj := c.submitAdvise("(tonnage:, type_of_boat:)")
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("submit status = %d", status)
	}
	if jj.ID == "" {
		t.Fatalf("no job id in %+v", jj)
	}
	done := c.pollJob(jj.ID)
	if done.State != "done" {
		t.Fatalf("job ended %s (%s)", done.State, done.Error)
	}
	if done.Result == nil || len(done.Result.Segmentations) == 0 {
		t.Fatal("done job carries no result")
	}
	if done.Result.Segmentations[0].Segments[0].SQL == "" {
		t.Fatal("segments missing SQL drill-down")
	}
	if done.Finished == "" || done.Created == "" {
		t.Fatal("done job missing timestamps")
	}
	// The jobs index lists it (without the result payload).
	res, body := c.get("/jobs")
	if res.StatusCode != http.StatusOK || !strings.Contains(body, jj.ID) {
		t.Fatalf("jobs list missing %s: %s", jj.ID, body)
	}
	if strings.Contains(body, "segmentations") {
		t.Fatal("jobs list leaks result payloads")
	}
	// Resubmission is a cache hit: instant result, no second advise.
	status2, jj2 := c.submitAdvise("(tonnage:, type_of_boat:)")
	if status2 != http.StatusOK || !jj2.Cached || jj2.Result == nil {
		t.Fatalf("resubmission not served from cache: %d %+v", status2, jj2)
	}
	h := c.fetchHealthz()
	if h.Advises != 1 {
		t.Fatalf("advises = %d, want 1", h.Advises)
	}
	if h.JobsSubmitted != 1 {
		t.Fatalf("jobs_submitted = %d, want 1", h.JobsSubmitted)
	}
}

// TestAsyncMatchesSyncMatrix pins the acceptance property: for every
// (per-advise Workers × queue Workers) combination, the async path
// returns byte-identical ranked results — fingerprint and JSON
// rendering — to a sequential sync advise, and M identical
// concurrent submissions run exactly one advise.
func TestAsyncMatchesSyncMatrix(t *testing.T) {
	mkCtx := func(tab *charles.Table) charles.Query {
		q, err := charles.ContextOn(tab, "type_of_boat", "tonnage", "departure_harbour", "trip")
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	refTab := charles.GenerateVOC(3000, 1)
	refAdv := charles.NewAdvisor(refTab, charles.DefaultConfig())
	ref, err := refAdv.Advise(mkCtx(refTab))
	if err != nil {
		t.Fatal(err)
	}
	want := rankedFP(ref)
	for _, cw := range []int{1, 3} {
		for _, jw := range []int{1, 4} {
			t.Run(fmt.Sprintf("Workers=%d/JobWorkers=%d", cw, jw), func(t *testing.T) {
				tab := charles.GenerateVOC(3000, 1)
				cfg := charles.DefaultConfig()
				cfg.Workers = cw
				adv := charles.NewAdvisor(tab, cfg)
				sv := newServer(adv, mkCtx(tab), jobs.Options{Workers: jw, QueueDepth: 32})
				defer func() {
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					defer cancel()
					sv.jobs.Shutdown(ctx)
				}()
				// M identical concurrent submissions.
				const M = 4
				var wg sync.WaitGroup
				ids := make([]string, M)
				cached := make([]bool, M)
				wg.Add(M)
				for i := 0; i < M; i++ {
					go func(i int) {
						defer wg.Done()
						c := newClient(t, sv)
						status, jj := c.submitAdvise("(type_of_boat:, tonnage:, departure_harbour:, trip:)")
						if status != http.StatusAccepted && status != http.StatusOK {
							t.Errorf("submit %d: status %d", i, status)
							return
						}
						ids[i], cached[i] = jj.ID, jj.Cached
					}(i)
				}
				wg.Wait()
				first := ""
				for i := 0; i < M; i++ {
					if cached[i] {
						continue // raced in after completion: served from LRU
					}
					if first == "" {
						first = ids[i]
					}
					if ids[i] != first {
						t.Fatalf("identical submissions got jobs %s and %s", first, ids[i])
					}
				}
				if first == "" {
					t.Fatal("every submission claimed a cache hit on a cold cache")
				}
				c := newClient(t, sv)
				done := c.pollJob(first)
				if done.State != "done" {
					t.Fatalf("job ended %s (%s)", done.State, done.Error)
				}
				// Exactly one advise ran for M submissions.
				if got := sv.metrics.advises.Value(); got != 1 {
					t.Fatalf("%d identical concurrent submissions ran %d advises, want 1", M, got)
				}
				// Byte-identical ranked output, at the result level…
				snap, err := sv.jobs.Get(first)
				if err != nil {
					t.Fatal(err)
				}
				if got := rankedFP(snap.Result); got != want {
					t.Fatalf("async ranked output differs from sync:\n--- got ---\n%s--- want ---\n%s", got, want)
				}
				// …and at the JSON rendering level.
				wantJSON, _ := json.Marshal(sv.renderResult(ref))
				gotJSON, _ := json.Marshal(sv.renderResult(snap.Result))
				if string(gotJSON) != string(wantJSON) {
					t.Fatal("async JSON rendering differs from sync")
				}
			})
		}
	}
}

// rankedFP mirrors the root package's fingerprint helper: canonical
// key, score and counts per rank.
func rankedFP(res *charles.Result) string {
	out := ""
	for i, sc := range res.Segmentations {
		out += fmt.Sprintf("%d: %s score=%.12f counts=%v\n", i, sc.Seg.Key(), sc.Score, sc.Seg.Counts)
	}
	return out
}

func TestAsyncCancelQueuedJob(t *testing.T) {
	sv := testServerOpts(t, charles.DefaultConfig(), jobs.Options{Workers: 1, QueueDepth: 4})
	release := occupyWorkers(t, sv, 1)
	defer close(release)
	c := newClient(t, sv)
	status, jj := c.submitAdvise("(tonnage:)")
	if status != http.StatusAccepted || jj.State != "queued" {
		t.Fatalf("submit behind a busy worker: %d %+v", status, jj)
	}
	res, body := c.do(http.MethodDelete, "/jobs/"+jj.ID)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d\n%s", res.StatusCode, body)
	}
	done := c.pollJob(jj.ID)
	if done.State != "cancelled" {
		t.Fatalf("state = %s, want cancelled", done.State)
	}
	if h := c.fetchHealthz(); h.Advises != 0 {
		t.Fatalf("cancelled queued job still advised (%d)", h.Advises)
	}
}

func TestAsyncQueueFullRejects(t *testing.T) {
	sv := testServerOpts(t, charles.DefaultConfig(), jobs.Options{Workers: 1, QueueDepth: 1})
	release := occupyWorkers(t, sv, 1)
	defer close(release)
	// Fill the single queue slot with another white-box blocker.
	if _, err := sv.jobs.Submit("\x00fill", func(ctx context.Context, p charles.ProgressFunc) (*charles.Result, error) {
		<-release
		return &charles.Result{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	c := newClient(t, sv)
	res, body := c.doForm(http.MethodPost, "/advise", url.Values{"context": {"(tonnage:)"}})
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated queue: status = %d\n%s", res.StatusCode, body)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}
}

func TestAsyncBadRequests(t *testing.T) {
	sv := testServer(t)
	c := newClient(t, sv)
	if res, _ := c.get("/advise"); res.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /advise: %d, want 405", res.StatusCode)
	}
	if res, _ := c.doForm(http.MethodPost, "/advise", url.Values{"context": {"(ghost:)"}}); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("unbound context: %d, want 400", res.StatusCode)
	}
	if res, _ := c.get("/jobs/job-999"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", res.StatusCode)
	}
	if res, _ := c.do(http.MethodDelete, "/jobs/job-999"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown job: %d, want 404", res.StatusCode)
	}
}

func TestAsyncJSONSubmission(t *testing.T) {
	sv := testServer(t)
	c := newClient(t, sv)
	req := httptest.NewRequest(http.MethodPost, "/advise", strings.NewReader(`{"context": "(tonnage:)"}`))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	c.mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted && rec.Code != http.StatusOK {
		t.Fatalf("JSON submit: %d\n%s", rec.Code, rec.Body.String())
	}
	var jj jsonJob
	if err := json.Unmarshal(rec.Body.Bytes(), &jj); err != nil {
		t.Fatal(err)
	}
	if done := c.pollJob(jj.ID); done.State != "done" {
		t.Fatalf("JSON-submitted job ended %s", done.State)
	}
}

// TestHealthzCountersAndCache exercises the PR 3 cross-session
// result LRU through the new /healthz payload: a miss then a hit,
// visible sizes, and the sync single-flight sharing one advise
// across concurrent cold misses.
func TestHealthzCountersAndCache(t *testing.T) {
	sv := testServer(t)
	c := newClient(t, sv)
	h := c.fetchHealthz()
	if h.Status != "ok" || !h.ResultCache.Enabled {
		t.Fatalf("healthz baseline: %+v", h)
	}
	if h.ResultCache.Size != 0 || h.Advises != 0 {
		t.Fatalf("healthz not cold: %+v", h)
	}
	a, b := newClient(t, sv), newClient(t, sv)
	a.get("/") // miss + advise
	b.get("/") // hit
	h = a.fetchHealthz()
	if h.ResultCache.Misses != 1 || h.ResultCache.Hits != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", h.ResultCache.Hits, h.ResultCache.Misses)
	}
	if h.ResultCache.Size != 1 {
		t.Fatalf("cache size = %d, want 1", h.ResultCache.Size)
	}
	if h.Advises != 1 {
		t.Fatalf("advises = %d, want 1 (second request must hit the cache)", h.Advises)
	}
	if h.Sessions < 2 {
		t.Fatalf("sessions = %d, want ≥ 2", h.Sessions)
	}
	if h.QueueCap == 0 || h.JobWorkers == 0 {
		t.Fatalf("queue gauges missing: %+v", h)
	}
}

// TestSyncAdviseSingleFlight pins the satellite: concurrent
// synchronous misses on one (context, config) key run one advise,
// shared through the jobs-layer Group.
func TestSyncAdviseSingleFlight(t *testing.T) {
	tab := charles.GenerateVOC(50000, 1) // big enough that the advise outlives goroutine start skew
	adv := charles.NewAdvisor(tab, charles.DefaultConfig())
	q, err := charles.ContextOn(tab, "type_of_boat", "tonnage", "departure_harbour")
	if err != nil {
		t.Fatal(err)
	}
	sv := newServer(adv, q, jobs.Options{})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		sv.jobs.Shutdown(ctx)
	}()
	const N = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	var firstRes atomic.Pointer[charles.Result]
	wg.Add(N)
	for i := 0; i < N; i++ {
		go func() {
			defer wg.Done()
			<-start
			res, err := sv.advise(q)
			if err != nil {
				t.Errorf("advise: %v", err)
				return
			}
			firstRes.CompareAndSwap(nil, res)
			if res != firstRes.Load() {
				t.Error("concurrent advisers got different result objects")
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := sv.metrics.advises.Value(); got != 1 {
		t.Fatalf("%d concurrent cold misses ran %d advises, want 1", N, got)
	}
}

// TestSyncAdviseJoinsRunningAsyncJob pins cross-path coalescing: a
// synchronous (web UI) advise that misses the cache while an async
// job is already running the same key waits for that job and shares
// its result instead of advising a second time.
func TestSyncAdviseJoinsRunningAsyncJob(t *testing.T) {
	sv := testServer(t)
	q := sv.initialCtx
	release := make(chan struct{})
	want := &charles.Result{}
	j, err := sv.jobs.Submit(sv.cacheKey(q), func(ctx context.Context, p charles.ProgressFunc) (*charles.Result, error) {
		select {
		case <-release:
			return want, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for sv.jobs.Stats().Running < 1 {
		if time.Now().After(deadline) {
			t.Fatal("async job never started")
		}
		time.Sleep(time.Millisecond)
	}
	resCh := make(chan *charles.Result, 1)
	go func() {
		res, err := sv.advise(q)
		if err != nil {
			t.Errorf("sync advise: %v", err)
		}
		resCh <- res
	}()
	select {
	case <-resCh:
		t.Fatal("sync advise returned before the async job finished")
	case <-time.After(30 * time.Millisecond):
	}
	close(release)
	<-j.Done()
	if res := <-resCh; res != want {
		t.Fatal("sync advise did not share the async job's result")
	}
	if got := sv.metrics.advises.Value(); got != 0 {
		t.Fatalf("sync advise ran its own advise (%d) instead of joining the job", got)
	}
}

// TestFailedAdviseNeverCached is the regression test for the
// error-caching bug: a failed advise must leave the result cache
// untouched — on both the sync and the async path — so the failure
// can never be replayed as an empty result.
func TestFailedAdviseNeverCached(t *testing.T) {
	// A table whose only context attribute is constant cannot seed
	// any initial cut: Advise fails.
	tab, err := charles.LoadCSVReader(strings.NewReader("k\n1\n1\n1\n1\n"), "const")
	if err != nil {
		t.Fatal(err)
	}
	adv := charles.NewAdvisor(tab, charles.DefaultConfig())
	q, err := charles.ContextOn(tab, "k")
	if err != nil {
		t.Fatal(err)
	}
	sv := newServer(adv, q, jobs.Options{})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		sv.jobs.Shutdown(ctx)
	}()
	// Sync path: fails, caches nothing, fails again (no bogus hit).
	for i := 1; i <= 2; i++ {
		if _, err := sv.advise(q); err == nil {
			t.Fatalf("advise %d unexpectedly succeeded", i)
		}
		size, hits, misses := sv.results.stats()
		if size != 0 || hits != 0 {
			t.Fatalf("after failed advise %d: size=%d hits=%d — error was cached", i, size, hits)
		}
		if misses != i {
			t.Fatalf("after failed advise %d: misses=%d", i, misses)
		}
	}
	if got := sv.metrics.advises.Value(); got != 2 {
		t.Fatalf("advises = %d, want 2 (failures must not be served from cache)", got)
	}
	// Async path: the job fails, the cache stays empty, and the
	// failed job does not answer a resubmission.
	c := newClient(t, sv)
	status, jj := c.submitAdvise("(k:)")
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	done := c.pollJob(jj.ID)
	if done.State != "failed" || done.Error == "" {
		t.Fatalf("job = %+v, want failed with an error", done)
	}
	if size, _, _ := sv.results.stats(); size != 0 {
		t.Fatal("failed async advise was cached")
	}
	status2, jj2 := c.submitAdvise("(k:)")
	if status2 != http.StatusAccepted || jj2.ID == jj.ID {
		t.Fatalf("resubmission after failure: %d %+v", status2, jj2)
	}
	if c.pollJob(jj2.ID).State != "failed" {
		t.Fatal("resubmitted job should fail again")
	}
}

// TestConfigFingerprintKnobs pins the satellite's fingerprint
// semantics: output-equivalent knobs (Workers, Selection, ChunkRows)
// share a fingerprint; output-changing knobs do not.
func TestConfigFingerprintKnobs(t *testing.T) {
	base := charles.DefaultConfig()
	fp := configFingerprint(base)
	same := base
	same.Workers = 8
	same.Selection = charles.RepBitmap
	same.ChunkRows = 512
	if configFingerprint(same) != fp {
		t.Fatal("equivalence knobs fragmented the fingerprint")
	}
	for name, mutate := range map[string]func(*charles.Config){
		"MaxIndep":     func(c *charles.Config) { c.MaxIndep = 0.5 },
		"MaxDepth":     func(c *charles.Config) { c.MaxDepth = 4 },
		"UseChiSquare": func(c *charles.Config) { c.UseChiSquare = true },
		"Pairing":      func(c *charles.Config) { c.Pairing = 1 },
		"Seed":         func(c *charles.Config) { c.Seed = 42 },
	} {
		cfg := base
		mutate(&cfg)
		if configFingerprint(cfg) == fp {
			t.Fatalf("knob %s does not change the fingerprint", name)
		}
	}
}

// TestResultCacheEvictionOrder extends the PR 3 LRU coverage: a
// refreshed entry survives a full wave of inserts that evict
// everything older, in exact recency order.
func TestResultCacheEvictionOrder(t *testing.T) {
	rc := newResultCache(3, &obs.Counter{}, &obs.Counter{})
	r := &charles.Result{}
	rc.put("a", r)
	rc.put("b", r)
	rc.put("c", r)
	rc.get("a")    // order now a > c > b
	rc.put("d", r) // evicts b
	if _, ok := rc.peek("b"); ok {
		t.Fatal("b survived; eviction ignored recency")
	}
	rc.put("e", r) // evicts c
	if _, ok := rc.peek("c"); ok {
		t.Fatal("c survived; eviction ignored recency")
	}
	for _, k := range []string{"a", "d", "e"} {
		if _, ok := rc.peek(k); !ok {
			t.Fatalf("%s evicted out of order", k)
		}
	}
	// put of a nil result is refused outright.
	rc.put("nil", nil)
	if _, ok := rc.peek("nil"); ok {
		t.Fatal("nil result was cached")
	}
}

// BenchmarkE18AsyncThroughput measures the async API end to end:
// submit + poll to completion across concurrent clients, cycling a
// small context set so coalescing and the result cache both engage —
// exactly the multi-user serving pattern the subsystem exists for.
func BenchmarkE18AsyncThroughput(b *testing.B) {
	tab := charles.GenerateVOC(5000, 1)
	adv := charles.NewAdvisor(tab, charles.DefaultConfig())
	ictx, err := charles.ContextOn(tab, "type_of_boat", "tonnage", "departure_harbour")
	if err != nil {
		b.Fatal(err)
	}
	sv := newServer(adv, ictx, jobs.Options{Workers: 4, QueueDepth: 256})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		sv.jobs.Shutdown(ctx)
	}()
	mux := sv.mux()
	contexts := []string{
		"(type_of_boat:, tonnage:)",
		"(tonnage:, departure_harbour:)",
		"(type_of_boat:, departure_harbour:, trip:)",
		"(tonnage:, trip:)",
	}
	var idx atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sdl := contexts[int(idx.Add(1))%len(contexts)]
			form := url.Values{"context": {sdl}}
			req := httptest.NewRequest(http.MethodPost, "/advise", strings.NewReader(form.Encode()))
			req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
			rec := httptest.NewRecorder()
			mux.ServeHTTP(rec, req)
			if rec.Code == http.StatusServiceUnavailable {
				continue // backpressure: retry next iteration
			}
			var jj jsonJob
			if err := json.Unmarshal(rec.Body.Bytes(), &jj); err != nil {
				b.Fatal(err)
			}
			for jj.State != "done" && !jj.Cached {
				if jj.State == "failed" || jj.State == "cancelled" {
					b.Fatalf("job ended %s: %s", jj.State, jj.Error)
				}
				time.Sleep(500 * time.Microsecond)
				preq := httptest.NewRequest(http.MethodGet, "/jobs/"+jj.ID, nil)
				prec := httptest.NewRecorder()
				mux.ServeHTTP(prec, preq)
				if err := json.Unmarshal(prec.Body.Bytes(), &jj); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
