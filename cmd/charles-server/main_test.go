package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"charles"
	"charles/internal/jobs"
	"charles/internal/obs"
)

func testServer(t *testing.T) *server {
	t.Helper()
	return testServerOpts(t, charles.DefaultConfig(), jobs.Options{})
}

func testServerOpts(t *testing.T, cfg charles.Config, jopt jobs.Options) *server {
	t.Helper()
	tab := charles.GenerateVOC(2000, 1)
	adv := charles.NewAdvisor(tab, cfg)
	ctx, err := charles.ContextOn(tab, "type_of_boat", "tonnage", "departure_harbour")
	if err != nil {
		t.Fatal(err)
	}
	sv := newServer(adv, ctx, jopt)
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		sv.jobs.Shutdown(sctx)
	})
	return sv
}

// client drives the server's handler like one browser: it remembers
// the session cookie across requests.
type client struct {
	t       *testing.T
	mux     http.Handler
	session *http.Cookie
}

func newClient(t *testing.T, sv *server) *client {
	return &client{t: t, mux: sv.mux()}
}

// newHandlerClient drives the full middleware chain (recover +
// access logs), for tests that exercise panic containment.
func newHandlerClient(t *testing.T, sv *server) *client {
	return &client{t: t, mux: sv.handler()}
}

func (c *client) do(method, target string) (*http.Response, string) {
	c.t.Helper()
	req := httptest.NewRequest(method, target, nil)
	if c.session != nil {
		req.AddCookie(c.session)
	}
	rec := httptest.NewRecorder()
	c.mux.ServeHTTP(rec, req)
	res := rec.Result()
	for _, ck := range res.Cookies() {
		if ck.Name == sessionCookie {
			c.session = &http.Cookie{Name: ck.Name, Value: ck.Value}
		}
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	return res, string(body)
}

func (c *client) get(target string) (*http.Response, string) {
	c.t.Helper()
	return c.do(http.MethodGet, target)
}

// sessionState returns the client's server-side session for white-box
// assertions.
func (c *client) sessionState(sv *server) *session {
	c.t.Helper()
	if c.session == nil {
		c.t.Fatal("client has no session cookie yet")
	}
	sv.mu.Lock()
	defer sv.mu.Unlock()
	s, ok := sv.sessions[c.session.Value]
	if !ok {
		c.t.Fatal("session cookie unknown to server")
	}
	return s
}

func TestIndexRendersFigure1Panels(t *testing.T) {
	sv := testServer(t)
	res, body := newClient(t, sv).get("/")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	for _, want := range []string{
		"Charles — big data query advisor", // header
		"Context",                          // left panel
		"Proposed segmentations",           // top panel
		"<svg",                             // pies
		"SELECT * FROM",                    // drill-down SQL
		"explore ➜",                        // zoom links
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("page missing %q", want)
		}
	}
}

func TestIndexOpensRequestedAnswer(t *testing.T) {
	sv := testServer(t)
	_, body := newClient(t, sv).get("/?open=1")
	if !strings.Contains(body, "Segmentation on") {
		t.Fatal("detail panel missing")
	}
}

func TestIndexContextChangeReAdvises(t *testing.T) {
	sv := testServer(t)
	c := newClient(t, sv)
	c.get("/")
	firstCtx := c.sessionState(sv).ctx.String()
	newCtx := url.QueryEscape("(tonnage:, trip:)")
	_, body := c.get("/?context=" + newCtx)
	if c.sessionState(sv).ctx.String() == firstCtx {
		t.Fatal("context did not change")
	}
	if !strings.Contains(body, "trip") {
		t.Fatal("new context not rendered")
	}
}

func TestIndexBadContextShowsError(t *testing.T) {
	sv := testServer(t)
	c := newClient(t, sv)
	c.get("/") // prime a valid result
	_, body := c.get("/?context=" + url.QueryEscape("(ghost:)"))
	if !strings.Contains(body, "no column") {
		t.Fatal("bind error not surfaced")
	}
	// The session keeps serving the previous valid result.
	if !strings.Contains(body, "Proposed segmentations") {
		t.Fatal("page broke on bad context")
	}
}

func TestIndexNotFoundOnOtherPaths(t *testing.T) {
	sv := testServer(t)
	res, _ := newClient(t, sv).get("/favicon.ico")
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", res.StatusCode)
	}
}

func TestNonGetMethodsRejected(t *testing.T) {
	sv := testServer(t)
	c := newClient(t, sv)
	for _, target := range []string{"/", "/zoom"} {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			res, _ := c.do(method, target)
			if res.StatusCode != http.StatusMethodNotAllowed {
				t.Fatalf("%s %s: status = %d, want 405", method, target, res.StatusCode)
			}
			if allow := res.Header.Get("Allow"); !strings.Contains(allow, "GET") {
				t.Fatalf("%s %s: Allow = %q", method, target, allow)
			}
		}
	}
}

func TestZoomReRootsContext(t *testing.T) {
	sv := testServer(t)
	c := newClient(t, sv)
	c.get("/") // populate the session's result
	before := c.sessionState(sv).ctx.String()
	res, _ := c.get("/zoom?open=0&segment=0")
	if res.StatusCode != http.StatusSeeOther {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if c.sessionState(sv).ctx.String() == before {
		t.Fatal("zoom did not change the context")
	}
	// Follow the redirect: the page advises on the zoomed context.
	_, body := c.get("/")
	if !strings.Contains(body, "Proposed segmentations") {
		t.Fatal("post-zoom page broken")
	}
}

func TestZoomOutOfRangeKeepsContext(t *testing.T) {
	sv := testServer(t)
	c := newClient(t, sv)
	c.get("/")
	before := c.sessionState(sv).ctx.String()
	c.get("/zoom?open=99&segment=0")
	if c.sessionState(sv).ctx.String() != before {
		t.Fatal("invalid zoom changed the context")
	}
}

func TestSessionsAreIsolated(t *testing.T) {
	sv := testServer(t)
	alice, bob := newClient(t, sv), newClient(t, sv)
	alice.get("/")
	bob.get("/")
	if alice.session.Value == bob.session.Value {
		t.Fatal("two browsers got the same session id")
	}
	// Alice zooms; Bob's context must not move.
	bobCtx := bob.sessionState(sv).ctx.String()
	alice.get("/zoom?open=0&segment=0")
	if bob.sessionState(sv).ctx.String() != bobCtx {
		t.Fatal("alice's zoom changed bob's context")
	}
	if alice.sessionState(sv).ctx.String() == bobCtx {
		t.Fatal("alice's zoom did not change her own context")
	}
}

func TestSessionSurvivesAcrossRequests(t *testing.T) {
	sv := testServer(t)
	c := newClient(t, sv)
	c.get("/")
	first := c.session.Value
	c.get("/?open=1")
	if c.session.Value != first {
		t.Fatal("session id changed between requests")
	}
	sv.mu.Lock()
	n := len(sv.sessions)
	sv.mu.Unlock()
	if n != 1 {
		t.Fatalf("server holds %d sessions for one browser", n)
	}
}

func TestEvictionPrefersNeverRevisitedSessions(t *testing.T) {
	sv := testServer(t)
	now := time.Now()
	// An old returning browser and a flood of newer one-shot probes.
	sv.sessions["browser"] = &session{lastUsed: now.Add(-time.Hour), requests: 5}
	for i := 0; i < 3; i++ {
		sv.sessions[fmt.Sprintf("probe%d", i)] = &session{lastUsed: now.Add(-time.Duration(i) * time.Minute), requests: 1}
	}
	sv.evictLocked("keepme")
	if _, ok := sv.sessions["browser"]; !ok {
		t.Fatal("eviction dropped the returning browser instead of a probe")
	}
	if _, ok := sv.sessions["probe2"]; ok {
		t.Fatal("eviction spared the oldest never-revisited probe")
	}
	// Only returning browsers left: plain LRU applies.
	sv.sessions = map[string]*session{
		"old": {lastUsed: now.Add(-time.Hour), requests: 2},
		"new": {lastUsed: now, requests: 2},
	}
	sv.evictLocked("")
	if _, ok := sv.sessions["old"]; ok {
		t.Fatal("LRU among returning browsers did not drop the oldest")
	}
}

func TestConcurrentSessions(t *testing.T) {
	sv := testServer(t)
	const users = 8
	var wg sync.WaitGroup
	wg.Add(users)
	for u := 0; u < users; u++ {
		go func() {
			defer wg.Done()
			c := newClient(t, sv)
			if res, _ := c.get("/"); res.StatusCode != http.StatusOK {
				t.Errorf("status = %d", res.StatusCode)
				return
			}
			c.get("/zoom?open=0&segment=0")
			if res, body := c.get("/"); res.StatusCode != http.StatusOK ||
				!strings.Contains(body, "Proposed segmentations") {
				t.Errorf("post-zoom page broken for a concurrent user")
			}
		}()
	}
	wg.Wait()
}

// TestResultCacheSharedAcrossSessions pins the cross-session result
// cache: two different browsers advising on the same context cost
// one advise — the second is served from the (context, config) LRU.
func TestResultCacheSharedAcrossSessions(t *testing.T) {
	sv := testServer(t)
	a := newClient(t, sv)
	b := newClient(t, sv)
	if _, body := a.get("/"); !strings.Contains(body, "Proposed segmentations") {
		t.Fatal("first session did not render advice")
	}
	if sv.results.hits.Value() != 0 {
		t.Fatalf("first advise hit the cache (%d hits)", sv.results.hits)
	}
	if _, body := b.get("/"); !strings.Contains(body, "Proposed segmentations") {
		t.Fatal("second session did not render advice")
	}
	if sv.results.hits.Value() != 1 {
		t.Fatalf("second session's advise missed the cache (%d hits)", sv.results.hits)
	}
	if a.session.Value == b.session.Value {
		t.Fatal("clients unexpectedly shared a session")
	}
	// Both sessions hold the identical immutable result.
	ra, rb := a.sessionState(sv).res, b.sessionState(sv).res
	if ra == nil || ra != rb {
		t.Fatal("sessions do not share the cached result")
	}
	// A different context misses, then repeats hit.
	if _, _ = a.get("/?context=" + url.QueryEscape("(tonnage:)")); sv.results.hits.Value() != 1 {
		t.Fatalf("distinct context should miss (%d hits)", sv.results.hits)
	}
	if _, _ = b.get("/?context=" + url.QueryEscape("(tonnage:)")); sv.results.hits.Value() != 2 {
		t.Fatalf("repeated distinct context should hit (%d hits)", sv.results.hits)
	}
}

// TestResultCacheLRUBounded pins the eviction policy: the cache
// never exceeds its cap and drops the least recently used entry.
func TestResultCacheLRUBounded(t *testing.T) {
	rc := newResultCache(2, &obs.Counter{}, &obs.Counter{})
	r := &charles.Result{}
	rc.put("a", r)
	rc.put("b", r)
	if _, ok := rc.get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	rc.put("c", r)
	if rc.ll.Len() != 2 {
		t.Fatalf("cache grew to %d entries, cap 2", rc.ll.Len())
	}
	if _, ok := rc.get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := rc.get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	if _, ok := rc.get("c"); !ok {
		t.Fatal("new entry c missing")
	}
}
