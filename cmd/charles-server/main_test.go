package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"charles"
)

func testSession(t *testing.T) *session {
	t.Helper()
	tab := charles.GenerateVOC(2000, 1)
	adv := charles.NewAdvisor(tab, charles.DefaultConfig())
	ctx, err := charles.ContextOn(tab, "type_of_boat", "tonnage", "departure_harbour")
	if err != nil {
		t.Fatal(err)
	}
	return &session{adv: adv, ctx: ctx}
}

func get(t *testing.T, h http.HandlerFunc, target string) (*http.Response, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, target, nil)
	rec := httptest.NewRecorder()
	h(rec, req)
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, string(body)
}

func TestIndexRendersFigure1Panels(t *testing.T) {
	s := testSession(t)
	res, body := get(t, s.handleIndex, "/")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	for _, want := range []string{
		"Charles — big data query advisor", // header
		"Context",                          // left panel
		"Proposed segmentations",           // top panel
		"<svg",                             // pies
		"SELECT * FROM",                    // drill-down SQL
		"explore ➜",                        // zoom links
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("page missing %q", want)
		}
	}
}

func TestIndexOpensRequestedAnswer(t *testing.T) {
	s := testSession(t)
	_, body := get(t, s.handleIndex, "/?open=1")
	if !strings.Contains(body, "Segmentation on") {
		t.Fatal("detail panel missing")
	}
}

func TestIndexContextChangeReAdvises(t *testing.T) {
	s := testSession(t)
	get(t, s.handleIndex, "/")
	firstCtx := s.ctx.String()
	newCtx := url.QueryEscape("(tonnage:, trip:)")
	_, body := get(t, s.handleIndex, "/?context="+newCtx)
	if s.ctx.String() == firstCtx {
		t.Fatal("context did not change")
	}
	if !strings.Contains(body, "trip") {
		t.Fatal("new context not rendered")
	}
}

func TestIndexBadContextShowsError(t *testing.T) {
	s := testSession(t)
	get(t, s.handleIndex, "/") // prime a valid result
	_, body := get(t, s.handleIndex, "/?context="+url.QueryEscape("(ghost:)"))
	if !strings.Contains(body, "no column") {
		t.Fatal("bind error not surfaced")
	}
	// The session keeps serving the previous valid result.
	if !strings.Contains(body, "Proposed segmentations") {
		t.Fatal("page broke on bad context")
	}
}

func TestIndexNotFoundOnOtherPaths(t *testing.T) {
	s := testSession(t)
	res, _ := get(t, s.handleIndex, "/favicon.ico")
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", res.StatusCode)
	}
}

func TestZoomReRootsContext(t *testing.T) {
	s := testSession(t)
	get(t, s.handleIndex, "/") // populate s.res
	before := s.ctx.String()
	res, _ := get(t, s.handleZoom, "/zoom?open=0&segment=0")
	if res.StatusCode != http.StatusSeeOther {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if s.ctx.String() == before {
		t.Fatal("zoom did not change the context")
	}
	// Follow the redirect: the page advises on the zoomed context.
	_, body := get(t, s.handleIndex, "/")
	if !strings.Contains(body, "Proposed segmentations") {
		t.Fatal("post-zoom page broken")
	}
}

func TestZoomOutOfRangeKeepsContext(t *testing.T) {
	s := testSession(t)
	get(t, s.handleIndex, "/")
	before := s.ctx.String()
	get(t, s.handleZoom, "/zoom?open=99&segment=0")
	if s.ctx.String() != before {
		t.Fatal("invalid zoom changed the context")
	}
}
