// Chaos and survivability tests for the serving plane: with
// failpoints armed the server answers descriptive errors and keeps
// serving — never crashes, never leaks — and once faults are disabled
// its advise output is byte-identical to an unfaulted server's. Also
// here: the shutdown-ordering regression test, request-body bounds,
// the 429-vs-503 admission contract, and per-request deadlines.
//
// Everything named TestChaos* runs under `make chaos` (with -race);
// the rest rides the ordinary test gate.
package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"charles"
	"charles/internal/fault"
	"charles/internal/jobs"
	"charles/internal/leakcheck"
)

// armFault enables one failpoint for the duration of the test.
func armFault(t *testing.T, site, spec string) {
	t.Helper()
	fault.Reset()
	t.Cleanup(fault.Reset)
	if err := fault.Enable(site, spec); err != nil {
		t.Fatal(err)
	}
}

// doFormAs is doForm with a client identity header, for quota tests.
func (c *client) doFormAs(clientID, target string, form url.Values) (*http.Response, string) {
	c.t.Helper()
	req := httptest.NewRequest(http.MethodPost, target, strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("X-Charles-Client", clientID)
	rec := httptest.NewRecorder()
	c.mux.ServeHTTP(rec, req)
	return rec.Result(), rec.Body.String()
}

// resultJSON renders a job's result deterministically for
// byte-identity comparisons.
func resultJSON(t *testing.T, jj jsonJob) string {
	t.Helper()
	if jj.Result == nil {
		t.Fatalf("job carries no result: %+v", jj)
	}
	b, err := json.Marshal(jj.Result)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// recordedShutdowner logs the instant it was shut down.
type recordedShutdowner struct {
	name  string
	order *[]string
}

func (r *recordedShutdowner) Shutdown(ctx context.Context) error {
	*r.order = append(*r.order, r.name)
	return nil
}

// TestShutdownOrderListenerBeforeQueue is the regression test for
// the shutdown-ordering bug: the queue used to drain before the
// listener stopped accepting, so requests landing mid-drain hit a
// dying queue and answered "shutting down" from a server that still
// looked alive. The listener must always stop first.
func TestShutdownOrderListenerBeforeQueue(t *testing.T) {
	var order []string
	hs := &recordedShutdowner{name: "listener", order: &order}
	q := &recordedShutdowner{name: "queue", order: &order}
	if err := shutdownServing(context.Background(), hs, q); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "listener" || order[1] != "queue" {
		t.Fatalf("shutdown order = %v, want [listener queue]", order)
	}
}

// TestShutdownClosedQueueStillAnswers pins what a client sees if a
// submission does race the drain: a descriptive 503, not a hang or a
// crash.
func TestShutdownClosedQueueStillAnswers(t *testing.T) {
	sv := testServer(t)
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sv.jobs.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	c := newClient(t, sv)
	res, body := c.doForm(http.MethodPost, "/advise", url.Values{"context": {"(tonnage:)"}})
	if res.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "shutting down") {
		t.Fatalf("post-shutdown submit: %d %s, want 503 shutting down", res.StatusCode, body)
	}
}

func TestMaxBodyBytesAdvise413(t *testing.T) {
	sv := testServer(t)
	sv.maxBody = 128
	c := newClient(t, sv)
	big := url.Values{"context": {"(tonnage:" + strings.Repeat("x", 4096) + ")"}}
	res, body := c.doForm(http.MethodPost, "/advise", big)
	if res.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized form body: %d\n%s", res.StatusCode, body)
	}
	if !strings.Contains(body, "128-byte limit") || !strings.Contains(body, "max-body-bytes") {
		t.Fatalf("413 not descriptive: %s", body)
	}
	if got := sv.metrics.bodyTooLarge.Value(); got != 1 {
		t.Fatalf("charles_http_body_too_large_total = %d, want 1", got)
	}
	// A JSON body over the bound is refused identically.
	req := httptest.NewRequest(http.MethodPost, "/advise",
		strings.NewReader(`{"context": "(tonnage:`+strings.Repeat("x", 4096)+`)"}`))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	c.mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized JSON body: %d\n%s", rec.Code, rec.Body.String())
	}
	// Within the bound still works.
	if res, body := c.doForm(http.MethodPost, "/advise", url.Values{"context": {"(tonnage:)"}}); res.StatusCode >= 400 {
		t.Fatalf("small body refused: %d\n%s", res.StatusCode, body)
	}
}

func TestMaxBodyBytesAppend413(t *testing.T) {
	sv := testServer(t)
	sv.maxBody = 64
	c := newClient(t, sv)
	req := httptest.NewRequest(http.MethodPost, "/append",
		strings.NewReader(`{"rows": [{"pad": "`+strings.Repeat("x", 1024)+`"}]}`))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	c.mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge || !strings.Contains(rec.Body.String(), "64-byte limit") {
		t.Fatalf("oversized append: %d %s, want descriptive 413", rec.Code, rec.Body.String())
	}
	if got := sv.metrics.bodyTooLarge.Value(); got != 1 {
		t.Fatalf("charles_http_body_too_large_total = %d, want 1", got)
	}
}

// TestAdmission429Vs503 pins the status-code contract: an exhausted
// per-client bucket answers 429 "over quota", a saturated queue 503
// "queue full" — both with Retry-After, each on its own counter.
func TestAdmission429Vs503(t *testing.T) {
	// Queue depth 2: the occupied worker leaves room for both of
	// alice's burst submissions, so her third refusal is purely quota.
	sv := testServerOpts(t, charles.DefaultConfig(), jobs.Options{Workers: 1, QueueDepth: 2})
	sv.quota = jobs.NewQuota(0.01, 2) // 2 requests, then a long wait
	release := occupyWorkers(t, sv, 1)
	defer close(release)
	c := newClient(t, sv)

	// Distinct contexts so neither the result cache nor coalescing
	// answers before admission control runs.
	contexts := []string{"(tonnage:)", "(type_of_boat:)", "(departure_harbour:)"}
	for i, ctx := range contexts[:2] {
		res, body := c.doFormAs("alice", "/advise", url.Values{"context": {ctx}})
		if res.StatusCode != http.StatusAccepted {
			t.Fatalf("burst request %d: %d %s, want 202", i, res.StatusCode, body)
		}
	}
	// Third token does not exist: 429. The queue is also full at this
	// point — the quota verdict must win, because "you are over
	// quota" is actionable for this client where "server full" is
	// not.
	res, body := c.doFormAs("alice", "/advise", url.Values{"context": {contexts[2]}})
	if res.StatusCode != http.StatusTooManyRequests || !strings.Contains(body, "over quota") {
		t.Fatalf("over-quota submit: %d %s, want 429 over quota", res.StatusCode, body)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	// A different client is admitted past quota — and meets the full
	// queue: 503.
	res, body = c.doFormAs("bob", "/advise", url.Values{"context": {contexts[2]}})
	if res.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "queue full") {
		t.Fatalf("full-queue submit: %d %s, want 503 queue full", res.StatusCode, body)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}
	if oq, qf := sv.metrics.overQuota.Value(), sv.metrics.queueFull.Value(); oq != 1 || qf != 1 {
		t.Fatalf("overQuota=%d queueFull=%d, want 1 and 1", oq, qf)
	}
}

// TestAdviseTimeoutMsOverHTTP drives the per-request deadline end to
// end: a slow advise submitted with timeout_ms lands in timed_out —
// not cancelled, not failed — with a deadline in its error.
func TestAdviseTimeoutMsOverHTTP(t *testing.T) {
	armFault(t, "server.advise", "sleep(300ms)")
	sv := testServer(t)
	c := newClient(t, sv)
	res, body := c.doForm(http.MethodPost, "/advise",
		url.Values{"context": {"(tonnage:)"}, "timeout_ms": {"50"}})
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d\n%s", res.StatusCode, body)
	}
	var jj jsonJob
	if err := json.Unmarshal([]byte(body), &jj); err != nil {
		t.Fatal(err)
	}
	done := c.pollJob(jj.ID)
	if done.State != "timed_out" {
		t.Fatalf("state = %s, want timed_out", done.State)
	}
	if !strings.Contains(done.Error, "deadline") {
		t.Fatalf("timed_out error %q does not name its deadline", done.Error)
	}
	// Negative and malformed overrides are refused up front.
	if res, _ := c.doForm(http.MethodPost, "/advise",
		url.Values{"context": {"(tonnage:)"}, "timeout_ms": {"-1"}}); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("timeout_ms=-1: %d, want 400", res.StatusCode)
	}
	if res, _ := c.doForm(http.MethodPost, "/advise",
		url.Values{"context": {"(tonnage:)"}, "timeout_ms": {"soon"}}); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("timeout_ms=soon: %d, want 400", res.StatusCode)
	}
}

// TestChaosAdviseErrorFault: with an error failpoint on the advise
// path every submission fails descriptively, the server keeps
// serving, and once the fault is disabled the same context advises to
// output byte-identical to an unfaulted server's.
func TestChaosAdviseErrorFault(t *testing.T) {
	leakcheck.Check(t)
	armFault(t, "server.advise", "error(simulated advise failure)")
	sv := testServer(t)
	c := newClient(t, sv)

	status, jj := c.submitAdvise("(tonnage:)")
	if status != http.StatusOK && status != http.StatusAccepted {
		t.Fatalf("submit under fault: %d", status)
	}
	done := c.pollJob(jj.ID)
	if done.State != "failed" {
		t.Fatalf("state = %s, want failed", done.State)
	}
	for _, want := range []string{"injected fault at server.advise", "simulated advise failure"} {
		if !strings.Contains(done.Error, want) {
			t.Fatalf("error %q missing %q", done.Error, want)
		}
	}
	// Still serving: health and metrics answer normally.
	if h := c.fetchHealthz(); h.Status != "ok" {
		t.Fatalf("healthz under fault: %+v", h)
	}

	// Fault off: the advise runs clean and matches a never-faulted
	// server byte for byte.
	fault.Reset()
	_, jj = c.submitAdvise("(tonnage:)")
	got := resultJSON(t, c.pollJob(jj.ID))

	pristine := testServer(t)
	pc := newClient(t, pristine)
	_, pj := pc.submitAdvise("(tonnage:)")
	want := resultJSON(t, pc.pollJob(pj.ID))
	if got != want {
		t.Errorf("post-fault advise differs from pristine server:\n got: %s\nwant: %s", got, want)
	}
	if fault.Triggered("server.advise") != 0 {
		t.Error("Reset did not clear trigger counts")
	}
}

// TestChaosJobPanicContained: an injected panic inside an advise job
// marks that job failed with a descriptive error, increments
// charles_panics_recovered_total, and leaves the process serving.
func TestChaosJobPanicContained(t *testing.T) {
	leakcheck.Check(t)
	armFault(t, "server.advise", "panic(chaos monkey)")
	sv := testServer(t)
	c := newClient(t, sv)

	status, jj := c.submitAdvise("(tonnage:)")
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d", status)
	}
	done := c.pollJob(jj.ID)
	if done.State != "failed" {
		t.Fatalf("state = %s, want failed", done.State)
	}
	for _, want := range []string{"panic recovered", "chaos monkey"} {
		if !strings.Contains(done.Error, want) {
			t.Fatalf("error %q missing %q", done.Error, want)
		}
	}
	if got := sv.metrics.panicsRecovered.Value(); got != 1 {
		t.Fatalf("charles_panics_recovered_total = %d, want 1", got)
	}
	// The family is on /metrics, where the chaos drill's dashboard
	// reads it.
	if _, body := c.get("/metrics"); !strings.Contains(body, "charles_panics_recovered_total 1") {
		t.Fatal("/metrics does not expose the containment counter")
	}
	// The worker survived: the same pool runs the next advise.
	fault.Reset()
	_, jj = c.submitAdvise("(tonnage:)")
	if done := c.pollJob(jj.ID); done.State != "done" {
		t.Fatalf("advise after contained panic: %s (%s)", done.State, done.Error)
	}
}

// TestChaosSyncPanicRecovered: a panic on the synchronous render
// path is contained by the HTTP middleware into a counted 500; the
// next request is served normally.
func TestChaosSyncPanicRecovered(t *testing.T) {
	leakcheck.Check(t)
	armFault(t, "server.advise", "panic(sync chaos)")
	sv := testServer(t)
	c := newHandlerClient(t, sv)

	res, body := c.get("/")
	if res.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking sync advise: %d, want 500", res.StatusCode)
	}
	if !strings.Contains(body, "panic recovered") || !strings.Contains(body, "sync chaos") {
		t.Fatalf("500 body not descriptive: %s", body)
	}
	if got := sv.metrics.panicsRecovered.Value(); got != 1 {
		t.Fatalf("charles_panics_recovered_total = %d, want 1", got)
	}
	fault.Reset()
	if res, _ := c.get("/"); res.StatusCode != http.StatusOK {
		t.Fatalf("request after contained panic: %d, want 200", res.StatusCode)
	}
}

// TestChaosLatencyFault: a latency failpoint slows advises down but
// changes nothing else — the job completes with the usual result.
func TestChaosLatencyFault(t *testing.T) {
	armFault(t, "server.advise", "sleep(50ms)")
	sv := testServer(t)
	c := newClient(t, sv)
	start := time.Now()
	_, jj := c.submitAdvise("(tonnage:)")
	done := c.pollJob(jj.ID)
	if done.State != "done" {
		t.Fatalf("state = %s (%s), want done", done.State, done.Error)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("advise finished in %v, latency fault did not engage", d)
	}
	if fault.Triggered("server.advise") == 0 {
		t.Fatal("latency failpoint never fired")
	}
	_ = sv
}

// TestChaosFailpointFlagBoot pins the -failpoints/-CHARLES_FAILPOINTS
// spec format end to end through fault.Configure, including rejection
// of malformed specs at boot.
func TestChaosFailpointFlagBoot(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	if err := fault.Configure("server.advise=error(drill); colfile.readPage=2*sleep(1ms)"); err != nil {
		t.Fatal(err)
	}
	if got := fault.Enabled(); len(got) != 2 {
		t.Fatalf("Enabled() = %v", got)
	}
	if err := fault.Configure("server.advise=explode(now)"); err == nil {
		t.Fatal("malformed spec accepted — the server would boot with a typo'd drill silently disarmed")
	}
}

// TestChaosGoroutineHygiene floods a small server with mixed work —
// including contained panics — then shuts down and demands every
// goroutine back.
func TestChaosGoroutineHygiene(t *testing.T) {
	leakcheck.Check(t)
	armFault(t, "server.advise", "3*panic(intermittent)")
	sv := testServerOpts(t, charles.DefaultConfig(), jobs.Options{Workers: 2, QueueDepth: 8})
	c := newClient(t, sv)
	contexts := []string{"(tonnage:)", "(type_of_boat:)", "(departure_harbour:)", "(tonnage:)(type_of_boat:)"}
	for i := 0; i < 8; i++ {
		res, body := c.doForm(http.MethodPost, "/advise",
			url.Values{"context": {contexts[i%len(contexts)]}})
		if res.StatusCode >= 500 {
			t.Fatalf("submit %d: %d\n%s", i, res.StatusCode, body)
		}
		var jj jsonJob
		if err := json.Unmarshal([]byte(body), &jj); err != nil {
			t.Fatal(err)
		}
		if jj.ID != "" {
			c.pollJob(jj.ID)
		}
	}
	// The deferred cleanups shut the manager down; leakcheck then
	// holds the baseline.
}

// TestRetryAfterSecondsRounding pins the header math: waits round up
// to whole seconds and never read "retry immediately".
func TestRetryAfterSecondsRounding(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{300 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1100 * time.Millisecond, "2"},
		{90 * time.Second, "90"},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %s, want %s", c.d, got, c.want)
		}
	}
}

// TestClientID pins quota identity resolution.
func TestClientID(t *testing.T) {
	r := httptest.NewRequest(http.MethodPost, "/advise", nil)
	r.RemoteAddr = "10.1.2.3:5555"
	if got := clientID(r); got != "10.1.2.3" {
		t.Errorf("clientID by addr = %q", got)
	}
	r.Header.Set("X-Charles-Client", "tenant-7")
	if got := clientID(r); got != "tenant-7" {
		t.Errorf("clientID by header = %q", got)
	}
	r2 := httptest.NewRequest(http.MethodPost, "/advise", nil)
	r2.RemoteAddr = "bare-host"
	if got := clientID(r2); got != "bare-host" {
		t.Errorf("clientID fallback = %q", got)
	}
}
