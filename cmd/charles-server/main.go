// Command charles-server serves the web rendering of the Figure 1
// interface: the context panel on the left, the ranked answer list
// as SVG pie charts on top, and the selected segmentation's segments
// with their SDL and SQL forms in the main panel. Clicking "explore"
// on a segment re-roots the context on that segment's query — the
// interactive loop of the paper.
//
// The server is multi-session: every browser gets its own
// exploration state (current context + advice), identified by a
// cookie, while all sessions share one read-only table and one
// concurrency-safe advisor, so simultaneous users reuse each other's
// cached selections.
//
// Usage:
//
//	charles-server -dataset voc -rows 50000 -addr :8080
//	charles-server -csv voyages.csv
//	charles-server -table voyages.chc   # mmap'd columnar file: ms cold start
package main

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"charles"
	"charles/internal/engine"
	"charles/internal/fault"
	"charles/internal/jobs"
	"charles/internal/obs"
	"charles/internal/ui"
)

// maxSessions bounds the exploration states kept in memory; beyond
// it the least recently used session is evicted (its browser simply
// starts a fresh exploration on its next request).
const maxSessions = 1024

// sessionCookie names the cookie carrying the session id.
const sessionCookie = "charles_session"

// evaluatorCacheLimit bounds the shared evaluator's selection cache:
// users type arbitrary contexts, and without a cap each distinct
// query would pin rows-sized selections in memory forever.
const evaluatorCacheLimit = 1 << 16

// defaultMaxBodyBytes bounds POST bodies (-max-body-bytes): an SDL
// context is a few hundred bytes and even generous append batches fit
// in a megabyte; anything larger is a mistake or an attack, refused
// as 413 before it is read.
const defaultMaxBodyBytes = 1 << 20

// resultCacheCap bounds the cross-session result cache: advised
// results keyed by (canonical context, config fingerprint), so
// repeated advise calls on the same context — the common case when
// many users start from the same landing exploration — return
// instantly regardless of which session asked first.
const resultCacheCap = 256

// resultCache is a bounded LRU of advise results shared by every
// session. Results are immutable once computed, so cache hits hand
// out the same *charles.Result to concurrent sessions. Concurrent
// misses on one key single-flight through the jobs layer's
// coalescing Group (sv.flight), so they cost one advise, not N.
// Only successful advises are ever stored: a failed advise has no
// result, and caching its absence would be indistinguishable from a
// legitimate empty result on the read path.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
	// hits/misses live on the obs registry — the single source of
	// truth /healthz and /metrics both read.
	hits   *obs.Counter
	misses *obs.Counter
}

type resultEntry struct {
	key string
	res *charles.Result
}

func newResultCache(cap int, hits, misses *obs.Counter) *resultCache {
	return &resultCache{cap: cap, ll: list.New(), m: make(map[string]*list.Element), hits: hits, misses: misses}
}

// get returns the cached result for key, refreshing its recency.
func (rc *resultCache) get(key string) (*charles.Result, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	el, ok := rc.m[key]
	if !ok {
		rc.misses.Inc()
		return nil, false
	}
	rc.ll.MoveToFront(el)
	rc.hits.Inc()
	return el.Value.(*resultEntry).res, true
}

// put stores key → res, evicting the least recently used entry over
// the cap. A nil result is refused: only a successful advise may
// populate the cache (failures carry no result, and a cached nil
// would later read as a hit with nothing to serve).
func (rc *resultCache) put(key string, res *charles.Result) {
	if res == nil {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if el, ok := rc.m[key]; ok {
		el.Value.(*resultEntry).res = res
		rc.ll.MoveToFront(el)
		return
	}
	rc.m[key] = rc.ll.PushFront(&resultEntry{key: key, res: res})
	if rc.ll.Len() > rc.cap {
		oldest := rc.ll.Back()
		rc.ll.Remove(oldest)
		delete(rc.m, oldest.Value.(*resultEntry).key)
	}
}

// peek is get without the hit/miss accounting: the single-flight's
// in-flight double check would otherwise count every cold advise
// twice.
func (rc *resultCache) peek(key string) (*charles.Result, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	el, ok := rc.m[key]
	if !ok {
		return nil, false
	}
	rc.ll.MoveToFront(el)
	return el.Value.(*resultEntry).res, true
}

// stats returns size and hit/miss counters for /healthz, reading
// the same obs counters /metrics exposes.
func (rc *resultCache) stats() (size, hits, misses int) {
	if rc == nil {
		return 0, 0, 0
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.ll.Len(), int(rc.hits.Value()), int(rc.misses.Value())
}

// configFingerprint canonicalizes the knobs that shape advise
// output. Workers, Selection and ChunkRows are deliberately absent:
// ranked output is identical across them by design (and by test), so
// including them would only fragment the cache. Score does change
// ranked output but is a function value with no canonical form;
// newServer disables result caching entirely when one is set, so it
// never needs to appear here.
func configFingerprint(cfg charles.Config) string {
	return fmt.Sprintf("mi=%v|md=%d|cut=%+v|chi=%v|alpha=%v|pair=%d|seed=%d",
		cfg.MaxIndep, cfg.MaxDepth, cfg.Cut, cfg.UseChiSquare, cfg.ChiAlpha, cfg.Pairing, cfg.Seed)
}

// session holds one user's exploration state. Its mutex serializes
// that user's requests only; different sessions advise concurrently
// on the shared advisor.
type session struct {
	mu       sync.Mutex
	ctx      charles.Query
	res      *charles.Result
	lastUsed time.Time
	// requests counts how often the session's cookie came back; 1
	// means the client never returned it (crawlers, health checks),
	// which makes the session the preferred eviction victim.
	requests int
}

// server is the multi-session advisory service: one shared advisor
// over the read-only table, per-user sessions, a cross-session
// result cache so identical explorations cost one advise, and an
// async job queue so long advises can be submitted, watched and
// cancelled instead of holding a request open.
type server struct {
	adv        *charles.Advisor
	initialCtx charles.Query
	results    *resultCache
	cfgFP      string
	jobs       *jobs.Manager
	// flight single-flights the synchronous advise path: concurrent
	// cache misses on one (context, config) key run one advise and
	// share its result — the same coalescing the job queue applies
	// to submissions, via the same jobs-layer helper.
	flight jobs.Group
	// metrics owns the obs registry behind GET /metrics, plus the
	// families the server updates directly (HTTP plane, advise and
	// result-cache counters — the latter shared with /healthz).
	metrics *serverMetrics

	// quota is per-client admission control in front of the job
	// queue; nil (the default) admits everything. maxBody bounds
	// request bodies on the POST endpoints.
	quota   *jobs.Quota
	maxBody int64

	// tabMu enforces the engine's mutation contract at the service
	// boundary: AppendRows must not run concurrently with advises
	// (mutations serialize on the table's own mutex, but reads take
	// no lock — see docs/ARCHITECTURE.md). Advises and counts hold
	// the read side, POST /append holds the write side.
	tabMu sync.RWMutex

	mu       sync.Mutex
	sessions map[string]*session
}

func newServer(adv *charles.Advisor, initialCtx charles.Query, jopt jobs.Options) *server {
	adv.Evaluator().SetCacheLimit(evaluatorCacheLimit)
	// Wire instrumentation before anything runs: the registry must
	// exist for the job manager's histograms and the result cache's
	// counters, and the engine/evaluator hooks are installed inside.
	metrics := newServerMetrics(adv.Evaluator())
	jopt.Metrics = metrics.jobMetrics
	sv := &server{
		adv:        adv,
		initialCtx: initialCtx,
		cfgFP:      configFingerprint(adv.Config()),
		jobs:       jobs.NewManager(jopt),
		sessions:   make(map[string]*session),
		metrics:    metrics,
		maxBody:    defaultMaxBodyBytes,
	}
	// A custom ScoreFunc reorders results but cannot be
	// fingerprinted (it is an arbitrary function), so caching under
	// it could serve rankings computed for a different score. The
	// command line cannot set one today; this guards embedders.
	if adv.Config().Score == nil {
		sv.results = newResultCache(resultCacheCap, metrics.resultHits, metrics.resultMisses)
	}
	sv.registerServerGauges()
	return sv
}

// cacheKey is the (canonical context, config fingerprint, table
// fingerprint) identity shared by the result LRU, the sync
// single-flight and the job queue's coalescing. The table
// fingerprint moves on every mutation, so results advised before an
// append can never be served after it — stale entries simply stop
// being addressable and age out of the LRU.
func (sv *server) cacheKey(ctx charles.Query) string {
	return ctx.Key() + "\x00" + sv.cfgFP + "\x00" + sv.adv.Table().Fingerprint()
}

// runAdvise executes one real advise, counting it. The table read
// lock spans the whole advise — sync or async — so POST /append
// cannot mutate mid-computation.
func (sv *server) runAdvise(ctx context.Context, q charles.Query, progress charles.ProgressFunc) (*charles.Result, error) {
	// The failpoint sits on both front ends: an injected error here
	// surfaces as a failed job (async) or a 500 (sync); an injected
	// panic proves runContained on one path and withRecover on the
	// other.
	if err := fault.Inject("server.advise"); err != nil {
		return nil, fmt.Errorf("advise: %w", err)
	}
	sv.metrics.advises.Inc()
	sv.tabMu.RLock()
	defer sv.tabMu.RUnlock()
	return sv.adv.AdviseCtx(ctx, q, progress)
}

// invalidateSessions drops every session's rendered result after a
// table mutation. The result cache keys on the table fingerprint and
// misses naturally; sessions, however, pin their last result and
// would keep rendering pre-mutation advice forever.
func (sv *server) invalidateSessions() {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	for _, s := range sv.sessions {
		s.mu.Lock()
		s.res = nil
		s.mu.Unlock()
	}
}

// advise returns the ranked result for ctx, serving repeats — from
// any session — out of the result cache when caching is enabled.
// Concurrent misses on the same key are single-flighted: one caller
// advises, the rest wait and share. Failed advises are never cached,
// so a transient failure cannot masquerade as an empty result.
func (sv *server) advise(ctx charles.Query) (*charles.Result, error) {
	if sv.results == nil {
		return sv.runAdvise(context.Background(), ctx, nil)
	}
	key := sv.cacheKey(ctx)
	if res, ok := sv.results.get(key); ok {
		return res, nil
	}
	res, err, _ := sv.flight.Do(key, func() (*charles.Result, error) {
		// Re-check under the flight: a caller that missed just
		// before a previous flight stored would otherwise re-advise.
		if res, ok := sv.results.peek(key); ok {
			return res, nil
		}
		// Join an async job already executing this key instead of
		// advising the same context twice — the two front ends share
		// every advise. Queued jobs are not waited on (the queue may
		// be backed up far longer than advising here would take).
		if j, ok := sv.jobs.Peek(key); ok {
			snap := j.Snapshot()
			if snap.State == jobs.StateRunning || snap.State == jobs.StateDone {
				<-j.Done()
				if snap = j.Snapshot(); snap.State == jobs.StateDone && snap.Result != nil {
					return snap.Result, nil
				}
				// Cancelled or failed under us: advise ourselves.
			}
		}
		res, err := sv.runAdvise(context.Background(), ctx, nil)
		if err != nil {
			return nil, err
		}
		sv.results.put(key, res)
		return res, nil
	})
	return res, err
}

func main() {
	var (
		tablePath  = flag.String("table", "", "open this .chc columnar file via mmap (see docs/FORMAT.md)")
		csvPath    = flag.String("csv", "", "load this CSV file")
		dsName     = flag.String("dataset", "voc", "built-in dataset: voc, sky, weblog, gaussian, uniform, figure3")
		rows       = flag.Int("rows", 50000, "rows for built-in datasets")
		seed       = flag.Int64("seed", 1, "generator seed")
		addr       = flag.String("addr", ":8080", "listen address")
		initCtx    = flag.String("context", "", "initial SDL context (empty = all columns)")
		workers    = flag.Int("workers", 0, "advisor worker goroutines per advise (0 = all CPUs)")
		chunkRows  = flag.Int("chunk-rows", 0, "row-range chunk width of the storage layer (0 = auto, 64K)")
		queueDepth = flag.Int("queue-depth", 64, "async advise jobs the queue holds before rejecting (503)")
		jobWorkers = flag.Int("job-workers", 2, "advises executing concurrently (independent of -workers, the per-advise fan-out)")
		jobTTL     = flag.Duration("job-ttl", 5*time.Minute, "how long finished jobs stay pollable")
		jobTimeout = flag.Duration("job-timeout", 10*time.Minute, "deadline for one advise job; timed-out jobs report timed_out, not cancelled (0 = none)")
		maxBody    = flag.Int64("max-body-bytes", defaultMaxBodyBytes, "largest POST body accepted; larger requests answer 413")
		quotaRate  = flag.Float64("quota-rate", 0, "per-client advise submissions per second; exceeding clients answer 429 (0 = no quota)")
		quotaBurst = flag.Int("quota-burst", 8, "per-client token-bucket burst above -quota-rate")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this extra address (empty = disabled)")
		failpoints = flag.String("failpoints", os.Getenv("CHARLES_FAILPOINTS"),
			"arm fault-injection sites, \"site=spec;site=spec\" (see docs/ROBUSTNESS.md); default $CHARLES_FAILPOINTS")
	)
	flag.Parse()

	if err := fault.Configure(*failpoints); err != nil {
		fmt.Fprintln(os.Stderr, "charles-server:", err)
		os.Exit(1)
	}
	if armed := fault.Enabled(); len(armed) > 0 {
		log.Printf("charles-server: CHAOS: failpoints armed: %s — this process is deliberately unreliable", strings.Join(armed, ", "))
	}

	var tab *charles.Table
	var err error
	loadStart := time.Now()
	switch {
	case *tablePath != "":
		// A columnar file opens by mmap: cold start is O(metadata),
		// rows fault in from the page cache only when scanned.
		tab, err = charles.OpenColumnFile(*tablePath)
	case *csvPath != "":
		tab, err = charles.LoadCSV(*csvPath)
	default:
		tab, err = charles.GenerateDataset(*dsName, *rows, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "charles-server:", err)
		os.Exit(1)
	}
	loadDur := time.Since(loadStart)
	cfg := charles.DefaultConfig()
	cfg.Workers = *workers
	cfg.ChunkRows = *chunkRows
	if *tablePath != "" && *chunkRows > 0 && engine.NormalizeChunkRows(*chunkRows) != tab.ChunkRows() {
		// Informational: re-sharding a file-backed table away from
		// its native width discards the persisted zone maps; they
		// rebuild lazily by scanning the mapping.
		log.Printf("charles-server: -chunk-rows overrides the file's native width %d; persisted zone maps will be rebuilt",
			tab.ChunkRows())
	}
	adv := charles.NewAdvisor(tab, cfg)
	// Warm the zone maps after the advisor fixes the chunk layout.
	// Memory-backed tables build them by scanning (lazily per column
	// otherwise, inside a user-visible request); a file-backed table
	// at its native width just installs the summaries persisted at
	// ingest, so the warm-up stays within the millisecond cold-start
	// budget.
	warmStart := time.Now()
	warmed := tab.WarmSummaries()
	log.Printf("charles-server: loaded %q (%d rows) in %v; warmed %d zone maps (%d chunks/col) in %v",
		tab.Name(), tab.NumRows(), loadDur, warmed, tab.NumChunks(), time.Since(warmStart))
	ctx, err := adv.ParseContext(*initCtx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charles-server:", err)
		os.Exit(1)
	}
	srv := newServer(adv, ctx, jobs.Options{
		QueueDepth: *queueDepth,
		Workers:    *jobWorkers,
		TTL:        *jobTTL,
		Timeout:    *jobTimeout,
	})
	srv.maxBody = *maxBody
	srv.quota = jobs.NewQuota(*quotaRate, *quotaBurst)
	display := *addr
	if strings.HasPrefix(display, ":") {
		display = "localhost" + display
	}
	log.Printf("charles-server: advising on %q (%d rows) at http://%s/ (async API at POST /advise)",
		tab.Name(), tab.NumRows(), display)
	if *pprofAddr != "" {
		servePprof(*pprofAddr)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting work, let
	// in-flight HTTP requests finish, then drain the advise jobs
	// (queued ones are cancelled so their pollers see a terminal
	// state).
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("charles-server: %v — shutting down and draining jobs", sig)
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := shutdownServing(dctx, hs, srv.jobs); err != nil {
			log.Printf("charles-server: shutdown: %v", err)
		}
	}
}

// shutdowner is the graceful-stop surface http.Server and
// jobs.Manager share.
type shutdowner interface {
	Shutdown(ctx context.Context) error
}

// shutdownServing stops the serving plane in the only safe order:
// the listener first — it stops accepting and waits for in-flight
// requests, whose handlers may still submit to the queue — then the
// job queue drains. Draining the queue first would close it while
// requests are still landing: every late submission would answer
// "shutting down" even though the server looked alive from outside.
func shutdownServing(ctx context.Context, listener, queue shutdowner) error {
	lerr := listener.Shutdown(ctx)
	qerr := queue.Shutdown(ctx)
	return errors.Join(lerr, qerr)
}

// handler is the served handler chain: recover innermost so a panic
// in any route turns into a counted 500, access logs outermost so
// that 500 is logged like every other response.
func (sv *server) handler() http.Handler {
	return sv.withAccessLogs(sv.withRecover(sv.mux()))
}

// mux wires the handlers: the Figure 1 web UI plus the async job
// API.
func (sv *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", sv.handleIndex)
	mux.HandleFunc("/zoom", sv.handleZoom)
	mux.HandleFunc("/advise", sv.handleAdvise)
	mux.HandleFunc("/append", sv.handleAppend)
	mux.HandleFunc("/jobs", sv.handleJobs)
	mux.HandleFunc("/jobs/", sv.handleJob)
	mux.HandleFunc("/healthz", sv.handleHealthz)
	mux.HandleFunc("/metrics", sv.handleMetrics)
	return mux
}

// newSessionID returns a random 128-bit hex id.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// getSession resolves the request's session from its cookie,
// creating one (and setting the cookie) on first contact or after
// eviction. It also stamps lastUsed and evicts the stalest session
// over the cap.
func (sv *server) getSession(w http.ResponseWriter, r *http.Request) *session {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if c, err := r.Cookie(sessionCookie); err == nil {
		if s, ok := sv.sessions[c.Value]; ok {
			s.lastUsed = time.Now()
			s.requests++
			return s
		}
	}
	id := newSessionID()
	s := &session{ctx: sv.initialCtx, lastUsed: time.Now(), requests: 1}
	sv.sessions[id] = s
	if len(sv.sessions) > maxSessions {
		sv.evictLocked(id)
	}
	http.SetCookie(w, &http.Cookie{
		Name:     sessionCookie,
		Value:    id,
		Path:     "/",
		HttpOnly: true,
		SameSite: http.SameSiteLaxMode,
	})
	return s
}

// evictLocked drops one session to stay under the cap, sparing
// keep. Never-revisited sessions (cookie-less crawlers and health
// checks) go first, oldest of them; only when every session is a
// returning browser does true LRU apply, so probe floods cannot
// push real users' exploration state out.
func (sv *server) evictLocked(keep string) {
	victimID, victim := "", (*session)(nil)
	for sid, sess := range sv.sessions {
		if sid == keep {
			continue
		}
		if victim == nil {
			victimID, victim = sid, sess
			continue
		}
		vOnce, sOnce := victim.requests <= 1, sess.requests <= 1
		switch {
		case sOnce && !vOnce:
			victimID, victim = sid, sess
		case sOnce == vOnce && sess.lastUsed.Before(victim.lastUsed):
			victimID, victim = sid, sess
		}
	}
	if victim != nil {
		delete(sv.sessions, victimID)
	}
}

// requireGet answers 405 for every method but GET (and HEAD, which
// net/http treats as GET for handlers).
func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	w.Header().Set("Allow", "GET, HEAD")
	http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	return false
}

// handleIndex advises on ?context= (or the session's current
// context) and renders the page, optionally opening answer ?open=.
func (sv *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	if !requireGet(w, r) {
		return
	}
	s := sv.getSession(w, r)
	s.mu.Lock()
	defer s.mu.Unlock()
	errMsg := ""
	if qs := r.URL.Query().Get("context"); qs != "" {
		ctx, err := sv.adv.ParseContext(qs)
		if err != nil {
			errMsg = err.Error()
		} else if !ctx.Equal(s.ctx) {
			s.ctx = ctx
			s.res = nil
		}
	}
	if s.res == nil {
		res, err := sv.advise(s.ctx)
		if err != nil {
			sv.render(w, charles.Query{}, nil, -1, "advise: "+err.Error())
			return
		}
		s.res = res
	}
	open := -1
	if v := r.URL.Query().Get("open"); v != "" {
		if i, err := strconv.Atoi(v); err == nil {
			open = i
		}
	}
	if open < 0 && len(s.res.Segmentations) > 0 {
		open = 0
	}
	sv.render(w, s.ctx, s.res, open, errMsg)
}

// handleZoom re-roots the session's context on a segment of its
// current result.
func (sv *server) handleZoom(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	s := sv.getSession(w, r)
	s.mu.Lock()
	answer, _ := strconv.Atoi(r.URL.Query().Get("open"))
	segment, _ := strconv.Atoi(r.URL.Query().Get("segment"))
	if s.res != nil {
		sv.tabMu.RLock()
		q, err := sv.adv.Zoom(s.res, answer, segment)
		sv.tabMu.RUnlock()
		if err == nil {
			s.ctx = q
			s.res = nil
		}
	}
	s.mu.Unlock()
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (sv *server) render(w http.ResponseWriter, ctx charles.Query, res *charles.Result, open int, errMsg string) {
	rows := 0
	if res != nil {
		sv.tabMu.RLock()
		if n, err := sv.adv.Count(ctx); err == nil {
			rows = n
		}
		sv.tabMu.RUnlock()
	}
	var pd ui.PageData
	if res != nil {
		pd = ui.BuildPage(sv.adv.Table().Name(), ctx, rows, res, open)
	} else {
		pd = ui.PageData{Table: sv.adv.Table().Name(), Selected: -1}
	}
	pd.Error = errMsg
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := ui.PageTemplate.Execute(w, pd); err != nil {
		log.Printf("charles-server: render: %v", err)
	}
}
