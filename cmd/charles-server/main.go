// Command charles-server serves the web rendering of the Figure 1
// interface: the context panel on the left, the ranked answer list
// as SVG pie charts on top, and the selected segmentation's segments
// with their SDL and SQL forms in the main panel. Clicking "explore"
// on a segment re-roots the context on that segment's query — the
// interactive loop of the paper.
//
// Usage:
//
//	charles-server -dataset voc -rows 50000 -addr :8080
//	charles-server -csv voyages.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"sync"

	"charles"
	"charles/internal/ui"
)

// session holds the single-user exploration state: the current
// context and its advice. A mutex guards it because net/http serves
// concurrently while the evaluator is single-session.
type session struct {
	mu  sync.Mutex
	adv *charles.Advisor
	ctx charles.Query
	res *charles.Result
}

func main() {
	var (
		csvPath = flag.String("csv", "", "load this CSV file")
		dsName  = flag.String("dataset", "voc", "built-in dataset: voc, sky, weblog, gaussian, uniform, figure3")
		rows    = flag.Int("rows", 50000, "rows for built-in datasets")
		seed    = flag.Int64("seed", 1, "generator seed")
		addr    = flag.String("addr", ":8080", "listen address")
		context = flag.String("context", "", "initial SDL context (empty = all columns)")
	)
	flag.Parse()

	var tab *charles.Table
	var err error
	if *csvPath != "" {
		tab, err = charles.LoadCSV(*csvPath)
	} else {
		tab, err = charles.GenerateDataset(*dsName, *rows, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "charles-server:", err)
		os.Exit(1)
	}
	adv := charles.NewAdvisor(tab, charles.DefaultConfig())
	ctx, err := adv.ParseContext(*context)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charles-server:", err)
		os.Exit(1)
	}
	s := &session{adv: adv, ctx: ctx}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/zoom", s.handleZoom)
	log.Printf("charles-server: advising on %q (%d rows) at http://localhost%s/",
		tab.Name(), tab.NumRows(), *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// handleIndex advises on ?context= (or the current context) and
// renders the page, optionally opening answer ?open=.
func (s *session) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	errMsg := ""
	if qs := r.URL.Query().Get("context"); qs != "" {
		ctx, err := s.adv.ParseContext(qs)
		if err != nil {
			errMsg = err.Error()
		} else if !ctx.Equal(s.ctx) {
			s.ctx = ctx
			s.res = nil
		}
	}
	if s.res == nil {
		res, err := s.adv.Advise(s.ctx)
		if err != nil {
			s.render(w, charles.Query{}, nil, -1, "advise: "+err.Error())
			return
		}
		s.res = res
	}
	open := -1
	if v := r.URL.Query().Get("open"); v != "" {
		if i, err := strconv.Atoi(v); err == nil {
			open = i
		}
	}
	if open < 0 && len(s.res.Segmentations) > 0 {
		open = 0
	}
	s.render(w, s.ctx, s.res, open, errMsg)
}

// handleZoom re-roots the context on a segment of the current
// result.
func (s *session) handleZoom(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	answer, _ := strconv.Atoi(r.URL.Query().Get("open"))
	segment, _ := strconv.Atoi(r.URL.Query().Get("segment"))
	if s.res != nil {
		if q, err := s.adv.Zoom(s.res, answer, segment); err == nil {
			s.ctx = q
			s.res = nil
		}
	}
	s.mu.Unlock()
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (s *session) render(w http.ResponseWriter, ctx charles.Query, res *charles.Result, open int, errMsg string) {
	rows := 0
	if res != nil {
		if n, err := s.adv.Count(ctx); err == nil {
			rows = n
		}
	}
	var pd ui.PageData
	if res != nil {
		pd = ui.BuildPage(s.adv.Table().Name(), ctx, rows, res, open)
	} else {
		pd = ui.PageData{Table: s.adv.Table().Name(), Selected: -1}
	}
	pd.Error = errMsg
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := ui.PageTemplate.Execute(w, pd); err != nil {
		log.Printf("charles-server: render: %v", err)
	}
}
