// Tests for POST /append: the HTTP face of incremental advise.
// Beyond the row-validation matrix, these pin the invalidation
// contract — a successful append moves the table fingerprint, which
// re-keys the result cache (old entries become unaddressable) and
// sweeps every session's pinned result.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"charles"
	"charles/internal/engine"
)

// vocRowJSON is one well-formed /append row for the VOC schema.
func vocRowJSON(tonnage int64) string {
	return fmt.Sprintf(`{"type_of_boat": "fluit", "tonnage": %d, "built": 1710,
		"yard": "Amsterdam", "departure_date": "1712-03-04",
		"departure_harbour": "Texel", "cape_arrival": "1712-07-19",
		"trip": 137, "master": "Jan de Vries"}`, tonnage)
}

// postAppend drives one /append request with a raw JSON body.
func (c *client) postAppend(body string) (int, map[string]any) {
	c.t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/append", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	c.mux.ServeHTTP(rec, req)
	var payload map[string]any
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
			c.t.Fatalf("append response not JSON: %v\n%s", err, rec.Body.String())
		}
	}
	return rec.Code, payload
}

func TestAppendRowsOverHTTP(t *testing.T) {
	sv := testServer(t)
	c := newClient(t, sv)
	tab := sv.adv.Table()
	before, beforeFP := tab.NumRows(), tab.Fingerprint()

	code, payload := c.postAppend(fmt.Sprintf(`{"rows": [%s, %s]}`, vocRowJSON(400), vocRowJSON(850)))
	if code != http.StatusOK {
		t.Fatalf("append: status %d (%v)", code, payload)
	}
	if got := payload["appended"].(float64); got != 2 {
		t.Fatalf("appended = %v, want 2", got)
	}
	if got := payload["rows"].(float64); int(got) != before+2 {
		t.Fatalf("rows = %v, want %d", got, before+2)
	}
	if tab.NumRows() != before+2 {
		t.Fatalf("table has %d rows, want %d", tab.NumRows(), before+2)
	}
	if fp := payload["fingerprint"].(string); fp == beforeFP || fp != tab.Fingerprint() {
		t.Fatalf("fingerprint %q (before %q, table %q)", fp, beforeFP, tab.Fingerprint())
	}
}

// TestAppendValidationMatrix pins the all-or-nothing contract: every
// malformed request answers 4xx and leaves the table untouched.
func TestAppendValidationMatrix(t *testing.T) {
	sv := testServer(t)
	c := newClient(t, sv)
	tab := sv.adv.Table()
	before := tab.NumRows()

	cases := []struct {
		name, body string
		want       int
	}{
		{"empty rows", `{"rows": []}`, http.StatusBadRequest},
		{"bad JSON", `{"rows": [`, http.StatusBadRequest},
		{"missing column", `{"rows": [{"tonnage": 400}]}`, http.StatusBadRequest},
		{"unknown column", `{"rows": [` +
			strings.Replace(vocRowJSON(400), `"master"`, `"master": "x", "cargo"`, 1) + `]}`,
			http.StatusBadRequest},
		{"string for int", `{"rows": [` +
			strings.Replace(vocRowJSON(400), `"tonnage": 400`, `"tonnage": "heavy"`, 1) + `]}`,
			http.StatusBadRequest},
		{"fractional int", `{"rows": [` +
			strings.Replace(vocRowJSON(400), `"tonnage": 400`, `"tonnage": 400.5`, 1) + `]}`,
			http.StatusBadRequest},
		{"bad date", `{"rows": [` +
			strings.Replace(vocRowJSON(400), `"1712-03-04"`, `"last tuesday"`, 1) + `]}`,
			http.StatusBadRequest},
		{"second row bad", fmt.Sprintf(`{"rows": [%s, {"tonnage": 1}]}`, vocRowJSON(400)),
			http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, payload := c.postAppend(tc.body)
		if code != tc.want {
			t.Errorf("%s: status %d, want %d (%v)", tc.name, code, tc.want, payload)
		}
	}
	if tab.NumRows() != before {
		t.Fatalf("failed appends mutated the table: %d rows, want %d", tab.NumRows(), before)
	}

	req := httptest.NewRequest(http.MethodGet, "/append", nil)
	rec := httptest.NewRecorder()
	c.mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /append: status %d, want 405", rec.Code)
	}
}

// TestAppendInvalidatesCachesAndSessions pins the fingerprint re-key:
// a cached advise answers 200 before the append and misses (202)
// after it, and the append sweeps pinned session results.
func TestAppendInvalidatesCachesAndSessions(t *testing.T) {
	sv := testServer(t)
	c := newClient(t, sv)
	const sdl = "(tonnage:)"

	code, jj := c.submitAdvise(sdl)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	c.pollJob(jj.ID)
	if code, _ := c.submitAdvise(sdl); code != http.StatusOK {
		t.Fatalf("re-submit before append: status %d, want 200 cache hit", code)
	}

	c.get("/?context=" + sdl)
	s := c.sessionState(sv)
	s.mu.Lock()
	pinned := s.res != nil
	s.mu.Unlock()
	if !pinned {
		t.Fatal("session holds no result before append")
	}

	if code, payload := c.postAppend(fmt.Sprintf(`{"rows": [%s]}`, vocRowJSON(620))); code != http.StatusOK {
		t.Fatalf("append: status %d (%v)", code, payload)
	}

	s.mu.Lock()
	pinned = s.res != nil
	s.mu.Unlock()
	if pinned {
		t.Fatal("append left a stale result pinned in the session")
	}
	code, jj = c.submitAdvise(sdl)
	if code != http.StatusAccepted {
		t.Fatalf("submit after append: status %d, want 202 cache miss", code)
	}
	c.pollJob(jj.ID)
}

// TestCoerceValueKinds covers the float and bool arms the VOC schema
// has no columns for.
func TestCoerceValueKinds(t *testing.T) {
	if v, err := coerceValue(engine.KindFloat, 2.5); err != nil || v != charles.Float(2.5) {
		t.Fatalf("float: %v %v", v, err)
	}
	if _, err := coerceValue(engine.KindFloat, "2.5"); err == nil {
		t.Fatal("float accepted a string")
	}
	if v, err := coerceValue(engine.KindBool, true); err != nil || v != charles.Bool(true) {
		t.Fatalf("bool: %v %v", v, err)
	}
	if _, err := coerceValue(engine.KindBool, 1.0); err == nil {
		t.Fatal("bool accepted a number")
	}
	if _, err := coerceValue(engine.KindInt, float64(1<<54)); err == nil {
		t.Fatal("int accepted a value beyond exact float64 range")
	}
}
