// The async advise API: long advises run as queued jobs with
// progress and cancellation instead of holding an HTTP request (and
// its goroutine) open for the whole computation.
//
//	POST   /advise?context=…   submit; 200 + result on a cache hit,
//	                           202 + job id otherwise, 503 when the
//	                           queue is full
//	POST   /append             append rows to a memory-backed table;
//	                           every cache re-keys on the new table
//	                           fingerprint (incremental advise)
//	GET    /jobs/{id}          state + progress (+ result when done)
//	DELETE /jobs/{id}          cancel (queued or mid-advise)
//	GET    /jobs               list every retained job
//	GET    /healthz            queue, worker, session, cache gauges
//
// Identical submissions — same canonical context and config
// fingerprint — coalesce onto one job, and completed results land in
// the same cross-session LRU the web UI reads, so the two front ends
// share every advise.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"charles"
	"charles/internal/engine"
	"charles/internal/jobs"
	"charles/internal/obs"
)

// jsonSegment is one segment of a rendered segmentation: the SDL
// query, its SQL drill-down, and its extent size.
type jsonSegment struct {
	SDL   string `json:"sdl"`
	SQL   string `json:"sql"`
	Count int    `json:"count"`
}

// jsonSegmentation is one ranked answer.
type jsonSegmentation struct {
	Rank       int           `json:"rank"`
	Score      float64       `json:"score"`
	Entropy    float64       `json:"entropy"`
	Balance    float64       `json:"balance"`
	Breadth    int           `json:"breadth"`
	Simplicity int           `json:"simplicity"`
	CutAttrs   []string      `json:"cut_attrs"`
	Segments   []jsonSegment `json:"segments"`
}

// jsonResult is the API rendering of a ranked advise result.
type jsonResult struct {
	Context       string             `json:"context"`
	Segmentations []jsonSegmentation `json:"segmentations"`
	SkippedAttrs  []string           `json:"skipped_attrs,omitempty"`
	Iterations    int                `json:"iterations"`
	IndepEvals    int                `json:"indep_evals"`
	StopReason    string             `json:"stop_reason"`
}

// jsonJob is the API rendering of a job snapshot. Result appears
// only on done jobs (and only where the endpoint includes it).
type jsonJob struct {
	ID       string            `json:"id"`
	State    string            `json:"state"`
	Cached   bool              `json:"cached,omitempty"`
	Progress *charles.Progress `json:"progress,omitempty"`
	Error    string            `json:"error,omitempty"`
	Created  string            `json:"created,omitempty"`
	Started  string            `json:"started,omitempty"`
	Finished string            `json:"finished,omitempty"`
	Result   *jsonResult       `json:"result,omitempty"`
	// Trace is the per-advise stage breakdown (queue wait, run, and
	// the core stages inside it). Included on single-job views; the
	// advise endpoint adds it only when the request asks ("trace").
	Trace []obs.StageSummary `json:"trace,omitempty"`
}

// renderResult converts a ranked result for JSON transport. The
// ordering and every number comes straight from the result, so the
// async rendering is byte-identical to rendering the sync path's
// result for the same context.
func (sv *server) renderResult(res *charles.Result) *jsonResult {
	out := &jsonResult{
		Context:      res.Context.String(),
		SkippedAttrs: res.SkippedAttrs,
		Iterations:   res.Iterations,
		IndepEvals:   res.IndepEvals,
		StopReason:   res.StopReason.String(),
	}
	table := sv.adv.Table().Name()
	for rank, sc := range res.Segmentations {
		js := jsonSegmentation{
			Rank:       rank + 1,
			Score:      sc.Score,
			Entropy:    sc.Metrics.Entropy,
			Balance:    sc.Metrics.Balance,
			Breadth:    sc.Metrics.Breadth,
			Simplicity: sc.Metrics.Simplicity,
			CutAttrs:   sc.Seg.CutAttrs,
		}
		for i, q := range sc.Seg.Queries {
			js.Segments = append(js.Segments, jsonSegment{
				SDL:   q.String(),
				SQL:   charles.SQLSelect(q, table),
				Count: sc.Seg.Counts[i],
			})
		}
		out.Segmentations = append(out.Segmentations, js)
	}
	return out
}

// renderJob converts a job snapshot for JSON transport.
func (sv *server) renderJob(snap jobs.Snapshot, includeResult bool) jsonJob {
	jj := jsonJob{
		ID:      snap.ID,
		State:   snap.State.String(),
		Created: rfc3339(snap.Created),
		Started: rfc3339(snap.Started),
	}
	if snap.State.Terminal() {
		jj.Finished = rfc3339(snap.Finished)
	}
	if snap.Progress.Phase != "" {
		p := snap.Progress
		jj.Progress = &p
	}
	if snap.Err != nil {
		jj.Error = snap.Err.Error()
	}
	if includeResult && snap.State == jobs.StateDone && snap.Result != nil {
		jj.Result = sv.renderResult(snap.Result)
	}
	if includeResult {
		jj.Trace = snap.Trace
	}
	return jj
}

func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("charles-server: encode: %v", err)
	}
}

func jsonError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// adviseContext extracts the SDL context from a POST /advise
// request — a JSON body {"context": "…"} or the context form/query
// parameter — plus whether the caller opted into the stage trace
// ("trace": true in the body, or a truthy trace parameter) and an
// optional timeout_ms deadline override (the jobs layer clamps it to
// the server's -job-timeout; it can only tighten). Body reads go
// through the request's MaxBytesReader, so an oversized body surfaces
// here as *http.MaxBytesError — including on the form path, where
// FormValue alone would silently swallow it.
func adviseContext(r *http.Request) (ctx string, wantTrace bool, timeout time.Duration, err error) {
	parseTimeout := func(ms int64) (time.Duration, error) {
		if ms < 0 {
			return 0, fmt.Errorf("timeout_ms must be >= 0, got %d", ms)
		}
		return time.Duration(ms) * time.Millisecond, nil
	}
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		var body struct {
			Context   string `json:"context"`
			Trace     bool   `json:"trace"`
			TimeoutMS int64  `json:"timeout_ms"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				return "", false, 0, err
			}
			return "", false, 0, errors.New("bad JSON body: " + err.Error())
		}
		timeout, err := parseTimeout(body.TimeoutMS)
		if err != nil {
			return "", false, 0, err
		}
		return body.Context, body.Trace || truthy(r.URL.Query().Get("trace")), timeout, nil
	}
	if err := r.ParseForm(); err != nil {
		return "", false, 0, err
	}
	timeout = 0
	if v := r.FormValue("timeout_ms"); v != "" {
		ms, perr := strconv.ParseInt(v, 10, 64)
		if perr != nil {
			return "", false, 0, fmt.Errorf("bad timeout_ms %q", v)
		}
		if timeout, err = parseTimeout(ms); err != nil {
			return "", false, 0, err
		}
	}
	return r.FormValue("context"), truthy(r.FormValue("trace")), timeout, nil
}

// clientID identifies the requester for quota purposes: an explicit
// X-Charles-Client header (how a fleet of API clients shares one
// egress IP honestly) or, absent that, the remote host.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Charles-Client"); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// retryAfterSeconds renders a wait as a whole-second Retry-After
// value, rounding up so "retry after" is never "retry immediately".
func retryAfterSeconds(d time.Duration) string {
	s := int64((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return strconv.FormatInt(s, 10)
}

// refuseTooLarge answers 413 for a body over the -max-body-bytes
// bound, counted; reports whether err was that refusal.
func (sv *server) refuseTooLarge(w http.ResponseWriter, err error) bool {
	var mbe *http.MaxBytesError
	if !errors.As(err, &mbe) {
		return false
	}
	sv.metrics.bodyTooLarge.Inc()
	jsonError(w, http.StatusRequestEntityTooLarge,
		fmt.Sprintf("request body exceeds the %d-byte limit (-max-body-bytes)", mbe.Limit))
	return true
}

func truthy(s string) bool {
	return s != "" && s != "0" && !strings.EqualFold(s, "false")
}

// handleAdvise submits an advise job. A result-cache hit answers
// immediately (200, cached: true); a coalesced or fresh submission
// answers 202 with the job to poll — unless the hit job already
// finished, which answers 200 with the result inline. Refusals are
// distinct on purpose (docs/ROBUSTNESS.md): 413 body too large, 429
// over quota (your bucket — back off per its Retry-After), 503 queue
// full (the server — everyone backs off).
func (sv *server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		jsonError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, sv.maxBody)
	qs, wantTrace, timeout, err := adviseContext(r)
	if err != nil {
		if sv.refuseTooLarge(w, err) {
			return
		}
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	q, err := sv.adv.ParseContext(qs)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := sv.cacheKey(q)
	if sv.results != nil {
		if res, ok := sv.results.get(key); ok {
			writeJSON(w, http.StatusOK, jsonJob{
				State:  jobs.StateDone.String(),
				Cached: true,
				Result: sv.renderResult(res),
			})
			return
		}
	}
	// Admission control sits after the cache (hits cost the server
	// nothing worth rationing) and before the queue (a token spent on
	// a queue-full rejection would punish the client twice).
	if ok, retry := sv.quota.Allow(clientID(r)); !ok {
		sv.metrics.overQuota.Inc()
		w.Header().Set("Retry-After", retryAfterSeconds(retry))
		jsonError(w, http.StatusTooManyRequests, "over quota")
		return
	}
	run := func(ctx context.Context, progress charles.ProgressFunc) (*charles.Result, error) {
		res, err := sv.runAdvise(ctx, q, progress)
		if err == nil && sv.results != nil {
			// Job results feed the same LRU the web UI reads; a
			// failed advise is never stored (it has no result to
			// serve later).
			sv.results.put(key, res)
		}
		return res, err
	}
	j, err := sv.jobs.SubmitTimeout(key, run, timeout)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		sv.metrics.queueFull.Inc()
		w.Header().Set("Retry-After", "1")
		jsonError(w, http.StatusServiceUnavailable, "queue full")
		return
	case errors.Is(err, jobs.ErrClosed):
		jsonError(w, http.StatusServiceUnavailable, "shutting down")
		return
	case err != nil:
		jsonError(w, http.StatusInternalServerError, err.Error())
		return
	}
	snap := j.Snapshot()
	status := http.StatusAccepted
	if snap.State == jobs.StateDone {
		status = http.StatusOK // TTL'd hot hit: the job already ran
	}
	jj := sv.renderJob(snap, true)
	if !wantTrace {
		// The trace is opt-in here so default advise responses stay
		// exactly what pre-trace clients parsed.
		jj.Trace = nil
	}
	writeJSON(w, status, jj)
}

// handleJob serves one job: GET polls it, DELETE cancels it.
func (sv *server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	if id == "" || strings.Contains(id, "/") {
		http.NotFound(w, r)
		return
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		snap, err := sv.jobs.Get(id)
		if err != nil {
			jsonError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, sv.renderJob(snap, true))
	case http.MethodDelete:
		if err := sv.jobs.Cancel(id); err != nil {
			jsonError(w, http.StatusNotFound, err.Error())
			return
		}
		snap, err := sv.jobs.Get(id)
		if err != nil {
			jsonError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, sv.renderJob(snap, false))
	default:
		w.Header().Set("Allow", "GET, HEAD, DELETE")
		jsonError(w, http.StatusMethodNotAllowed, "method not allowed")
	}
}

// handleJobs lists every retained job, oldest first, without result
// payloads.
func (sv *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	snaps := sv.jobs.List()
	out := make([]jsonJob, len(snaps))
	for i, snap := range snaps {
		out[i] = sv.renderJob(snap, false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// healthzPayload is the /healthz body: queue and worker gauges, job
// counters, session count, and the result cache's size and hit/miss
// tallies.
type healthzPayload struct {
	Status        string           `json:"status"`
	QueueDepth    int              `json:"queue_depth"`
	QueueCap      int              `json:"queue_cap"`
	RunningJobs   int              `json:"running_jobs"`
	JobWorkers    int              `json:"job_workers"`
	JobsRetained  int              `json:"jobs_retained"`
	JobsSubmitted int              `json:"jobs_submitted"`
	JobsCoalesced int              `json:"jobs_coalesced"`
	Sessions      int              `json:"sessions"`
	Advises       int64            `json:"advises"`
	ResultCache   resultCacheStats `json:"result_cache"`
}

type resultCacheStats struct {
	Enabled bool `json:"enabled"`
	Size    int  `json:"size"`
	Hits    int  `json:"hits"`
	Misses  int  `json:"misses"`
}

// handleHealthz reports liveness plus the gauges an operator (or a
// load balancer) watches: queue saturation, running advises, cache
// effectiveness.
func (sv *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	st := sv.jobs.Stats()
	sv.mu.Lock()
	sessions := len(sv.sessions)
	sv.mu.Unlock()
	size, hits, misses := sv.results.stats()
	writeJSON(w, http.StatusOK, healthzPayload{
		Status:        "ok",
		QueueDepth:    st.Queued,
		QueueCap:      st.QueueCap,
		RunningJobs:   st.Running,
		JobWorkers:    st.Workers,
		JobsRetained:  st.Retained,
		JobsSubmitted: st.Submitted,
		JobsCoalesced: st.Coalesced,
		Sessions:      sessions,
		Advises:       sv.metrics.advises.Value(),
		ResultCache: resultCacheStats{
			Enabled: sv.results != nil,
			Size:    size,
			Hits:    hits,
			Misses:  misses,
		},
	})
}

// coerceValue converts one decoded JSON value to the engine value a
// column of the given kind accepts. JSON numbers arrive as float64;
// int columns additionally require them to be integral, and date
// columns take "YYYY-MM-DD" strings.
func coerceValue(kind engine.Kind, raw any) (charles.Value, error) {
	switch kind {
	case engine.KindInt:
		f, ok := raw.(float64)
		if !ok {
			return charles.Value{}, fmt.Errorf("want a number, got %T", raw)
		}
		if f != math.Trunc(f) || math.Abs(f) > 1<<53 {
			return charles.Value{}, fmt.Errorf("want an integer, got %v", f)
		}
		return charles.Int(int64(f)), nil
	case engine.KindFloat:
		f, ok := raw.(float64)
		if !ok {
			return charles.Value{}, fmt.Errorf("want a number, got %T", raw)
		}
		return charles.Float(f), nil
	case engine.KindString:
		s, ok := raw.(string)
		if !ok {
			return charles.Value{}, fmt.Errorf("want a string, got %T", raw)
		}
		return charles.Str(s), nil
	case engine.KindBool:
		b, ok := raw.(bool)
		if !ok {
			return charles.Value{}, fmt.Errorf("want a bool, got %T", raw)
		}
		return charles.Bool(b), nil
	case engine.KindDate:
		s, ok := raw.(string)
		if !ok {
			return charles.Value{}, fmt.Errorf("want a YYYY-MM-DD string, got %T", raw)
		}
		return charles.ParseDate(s)
	}
	return charles.Value{}, fmt.Errorf("unsupported column kind %v", kind)
}

// handleAppend appends rows to the served table — the HTTP face of
// the incremental-advise path. The body is {"rows": [{column:
// value, …}, …]}; every row must name every column exactly once.
// Validation is all-or-nothing (the engine applies nothing on error)
// and a file-backed table answers 409: .chc columns alias a
// read-only mapping and stay immutable. On success every layer
// re-keys automatically — the table fingerprint moved, so the result
// LRU, job coalescing and single-flight all miss, while the shared
// evaluator refreshes its epoch-stamped caches chunk-at-a-time on
// the next advise instead of recomputing from scratch.
func (sv *server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		jsonError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, sv.maxBody)
	var body struct {
		Rows []map[string]any `json:"rows"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		if sv.refuseTooLarge(w, err) {
			return
		}
		jsonError(w, http.StatusBadRequest, "bad JSON body: "+err.Error())
		return
	}
	if len(body.Rows) == 0 {
		jsonError(w, http.StatusBadRequest, "no rows to append")
		return
	}
	tab := sv.adv.Table()
	rows := make([][]charles.Value, 0, len(body.Rows))
	for i, jr := range body.Rows {
		row := make([]charles.Value, tab.NumCols())
		for c := 0; c < tab.NumCols(); c++ {
			col := tab.Column(c)
			raw, ok := jr[col.Name()]
			if !ok {
				jsonError(w, http.StatusBadRequest, fmt.Sprintf("row %d: missing column %q", i, col.Name()))
				return
			}
			v, err := coerceValue(col.Kind(), raw)
			if err != nil {
				jsonError(w, http.StatusBadRequest, fmt.Sprintf("row %d, column %q: %v", i, col.Name(), err))
				return
			}
			row[c] = v
		}
		if len(jr) != tab.NumCols() {
			for name := range jr {
				if _, ok := tab.ColumnByName(name); !ok {
					jsonError(w, http.StatusBadRequest, fmt.Sprintf("row %d: unknown column %q", i, name))
					return
				}
			}
		}
		rows = append(rows, row)
	}
	sv.tabMu.Lock()
	err := tab.AppendRows(rows...)
	sv.tabMu.Unlock()
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "read-only") {
			status = http.StatusConflict
		}
		jsonError(w, status, err.Error())
		return
	}
	sv.invalidateSessions()
	writeJSON(w, http.StatusOK, map[string]any{
		"appended":    len(rows),
		"rows":        tab.NumRows(),
		"fingerprint": tab.Fingerprint(),
	})
}
