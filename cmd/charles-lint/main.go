// Command charles-lint runs the repo's custom invariant analyzers
// (internal/lint) over the module: the stdlib-only equivalent of an
// x/tools multichecker. It exits 0 when the tree is clean, 1 when
// any analyzer reports a finding, and 2 on a usage or load error.
//
// Usage:
//
//	charles-lint [-C dir] [-list] [package/dir ...]
//
// With no package arguments it lints every package in the module.
// Arguments are module-relative directories (e.g. internal/seg).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"charles/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("charles-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "module root to lint (directory containing go.mod)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	root, err := moduleRoot(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "charles-lint:", err)
		return 2
	}
	pkgs, err := lint.ModulePackages(root)
	if err != nil {
		fmt.Fprintln(stderr, "charles-lint:", err)
		return 2
	}
	if fs.NArg() > 0 {
		keep := map[string]string{}
		for _, arg := range fs.Args() {
			d := filepath.Join(root, filepath.FromSlash(arg))
			ip, ok := pkgs[d]
			if !ok {
				fmt.Fprintf(stderr, "charles-lint: no package at %s\n", arg)
				return 2
			}
			keep[d] = ip
		}
		pkgs = keep
	}

	// Deterministic package order, so CI output diffs cleanly.
	dirs := make([]string, 0, len(pkgs))
	for d := range pkgs {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	loader := lint.NewLoader()
	findings := 0
	for _, d := range dirs {
		ip := pkgs[d]
		var applicable []*lint.Analyzer
		for _, a := range analyzers {
			if a.Applies == nil || a.Applies(ip) {
				applicable = append(applicable, a)
			}
		}
		if len(applicable) == 0 {
			continue
		}
		pkg, err := loader.Load(d, ip)
		if err != nil {
			fmt.Fprintln(stderr, "charles-lint:", err)
			return 2
		}
		for _, a := range applicable {
			diags, err := lint.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintln(stderr, "charles-lint:", err)
				return 2
			}
			for _, dg := range diags {
				rel, err := filepath.Rel(root, dg.Pos.Filename)
				if err == nil {
					dg.Pos.Filename = rel
				}
				fmt.Fprintln(stdout, dg)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "charles-lint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// moduleRoot resolves dir or the nearest ancestor holding go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod at or above %s", abs)
		}
		d = parent
	}
}
