package main

import (
	"bytes"
	"strings"
	"testing"

	"charles/internal/lint"
)

// TestRegistersAllAnalyzers pins the multichecker to the full suite:
// an analyzer added to internal/lint but missing from the binary
// would silently stop being enforced. The expected set doubles as
// the documented contract — extend it when a new invariant lands.
func TestRegistersAllAnalyzers(t *testing.T) {
	wanted := []string{"ctxflow", "nopanic", "pooledescape", "mapdeterminism", "mmaplife", "epochkey", "obsnames"}
	got := map[string]bool{}
	for _, a := range lint.All() {
		got[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Applies == nil {
			t.Errorf("analyzer %s has no package scope", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
	for _, name := range wanted {
		if !got[name] {
			t.Errorf("analyzer %s is not registered", name)
		}
	}
	if len(lint.All()) != len(wanted) {
		t.Errorf("registry has %d analyzers, want %d: update the pinned set alongside the suite", len(lint.All()), len(wanted))
	}
}

// TestListFlag checks the -list output names every analyzer, since
// that is what `make lint` surfaces to a developer debugging a
// finding.
func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, stderr.String())
	}
	for _, a := range lint.All() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output does not mention %s:\n%s", a.Name, stdout.String())
		}
	}
}

func TestModuleRootResolution(t *testing.T) {
	root, err := moduleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(root, "repo") && !strings.Contains(root, "/") {
		t.Errorf("unexpected module root %q", root)
	}
	if _, err := moduleRoot(t.TempDir()); err == nil {
		t.Error("moduleRoot outside any module should fail")
	}
}

func TestUnknownPackageArg(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Errorf("run(no/such/dir) = %d, want 2 (usage error)", code)
	}
}
