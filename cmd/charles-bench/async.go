// The async-API load mode: hammer a running charles-server's job
// queue (POST /advise + poll GET /jobs/{id}) from many concurrent
// clients and report throughput, latency, and how much work the
// coalescing and the result cache absorbed.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"charles/internal/obs"
)

// asyncOptions parameterizes one load run.
type asyncOptions struct {
	// URL is the base address of a running charles-server.
	URL string
	// Jobs is the total number of submissions.
	Jobs int
	// Concurrency is the number of concurrent clients.
	Concurrency int
	// Contexts are the SDL contexts to submit, cycled per job; empty
	// means one whole-table context ("") for every job — the
	// worst-case thundering herd the coalescing exists for.
	Contexts []string
	// PollEvery is the poll interval for pending jobs.
	PollEvery time.Duration
}

// asyncJob mirrors the server's job JSON.
type asyncJob struct {
	ID     string             `json:"id"`
	State  string             `json:"state"`
	Cached bool               `json:"cached"`
	Error  string             `json:"error"`
	Trace  []obs.StageSummary `json:"trace"`
}

// asyncStats aggregates one run. End-to-end latencies land in an
// obs.Histogram — the same fixed-bucket structure the server exports
// at /metrics — so the p50/p90/p99 here and a Prometheus view of the
// server agree on methodology.
type asyncStats struct {
	completed atomic.Int64
	cached    atomic.Int64
	rejected  atomic.Int64
	overQuota atomic.Int64
	failed    atomic.Int64

	hist *obs.Histogram

	// One advise's per-stage trace, sampled from the first job that
	// reports one: where did the time go inside the queue?
	mu    sync.Mutex
	trace []obs.StageSummary
}

func newAsyncStats() *asyncStats {
	return &asyncStats{hist: obs.NewHistogram(obs.DefaultLatencyBuckets())}
}

func (s *asyncStats) record(d time.Duration) {
	s.hist.Observe(d.Seconds())
}

func (s *asyncStats) sampleTrace(tr []obs.StageSummary) {
	if len(tr) == 0 {
		return
	}
	s.mu.Lock()
	if s.trace == nil {
		s.trace = tr
	}
	s.mu.Unlock()
}

// runAsync drives the load and writes a report to w.
func runAsync(w io.Writer, opt asyncOptions) error {
	if opt.Jobs <= 0 {
		opt.Jobs = 64
	}
	if opt.Concurrency <= 0 {
		opt.Concurrency = 8
	}
	if opt.PollEvery <= 0 {
		opt.PollEvery = 25 * time.Millisecond
	}
	if len(opt.Contexts) == 0 {
		opt.Contexts = []string{""}
	}
	base := strings.TrimRight(opt.URL, "/")
	client := &http.Client{Timeout: 2 * time.Minute}

	// Probe the server before unleashing the herd.
	if _, err := fetchHealthz(client, base); err != nil {
		return fmt.Errorf("async: server not reachable: %w", err)
	}

	st := newAsyncStats()
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(opt.Concurrency)
	for c := 0; c < opt.Concurrency; c++ {
		id := fmt.Sprintf("bench-%d", c)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= opt.Jobs {
					return
				}
				sdl := opt.Contexts[i%len(opt.Contexts)]
				if err := st.submitAndWait(client, base, id, sdl, opt.PollEvery); err != nil {
					st.failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	health, err := fetchHealthz(client, base)
	if err != nil {
		return err
	}
	return st.report(w, opt, wall, health)
}

// submitAndWait runs one client job: submit, then poll to a terminal
// state. Shed answers — 503 queue-full and 429 over-quota — back off
// and retry with jittered exponential delays, never shorter than the
// server's Retry-After. Honoring the hint matters for the report:
// clients that hammer a shedding server measure their own retry storm,
// not the serving policy.
func (st *asyncStats) submitAndWait(client *http.Client, base, clientID, sdl string, poll time.Duration) error {
	t0 := time.Now()
	var job asyncJob
	backoff := poll
	for {
		form := url.Values{"context": {sdl}}
		req, err := http.NewRequest(http.MethodPost, base+"/advise",
			strings.NewReader(form.Encode()))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		req.Header.Set("X-Charles-Client", clientID)
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		err = decodeJSON(resp, &job)
		if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests {
			if resp.StatusCode == http.StatusTooManyRequests {
				st.overQuota.Add(1)
			} else {
				st.rejected.Add(1)
			}
			time.Sleep(retryDelay(backoff, resp.Header.Get("Retry-After")))
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		backoff = poll
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("async: submit: %s (%s)", resp.Status, job.Error)
		}
		break
	}
	if job.Cached {
		st.cached.Add(1)
		st.completed.Add(1)
		st.record(time.Since(t0))
		return nil
	}
	for !terminalState(job.State) {
		time.Sleep(poll)
		resp, err := client.Get(base + "/jobs/" + job.ID)
		if err != nil {
			return err
		}
		if err := decodeJSON(resp, &job); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("async: poll %s: %s (%s)", job.ID, resp.Status, job.Error)
		}
	}
	if job.State != "done" {
		return fmt.Errorf("async: job %s ended %s: %s", job.ID, job.State, job.Error)
	}
	st.sampleTrace(job.Trace)
	st.completed.Add(1)
	st.record(time.Since(t0))
	return nil
}

func terminalState(s string) bool {
	return s == "done" || s == "failed" || s == "cancelled" || s == "timed_out"
}

// maxBackoff caps the exponential retry delay: long enough that a
// saturated queue drains between attempts, short enough that the
// bench notices capacity the moment it frees up.
const maxBackoff = 2 * time.Second

// retryDelay picks the sleep before the next submission attempt:
// full jitter in [cur/2, cur] to decorrelate the herd, floored by the
// server's Retry-After header when one was sent.
func retryDelay(cur time.Duration, retryAfter string) time.Duration {
	d := cur/2 + time.Duration(rand.Int63n(int64(cur/2)+1))
	if s, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && s > 0 {
		if floor := time.Duration(s) * time.Second; d < floor {
			d = floor
		}
	}
	return d
}

func decodeJSON(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// healthz is the subset of /healthz the report reads.
type healthz struct {
	Advises       int64 `json:"advises"`
	JobsSubmitted int   `json:"jobs_submitted"`
	JobsCoalesced int   `json:"jobs_coalesced"`
	ResultCache   struct {
		Hits   int `json:"hits"`
		Misses int `json:"misses"`
	} `json:"result_cache"`
}

func fetchHealthz(client *http.Client, base string) (healthz, error) {
	var h healthz
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return h, err
	}
	if err := decodeJSON(resp, &h); err != nil {
		return h, err
	}
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("healthz: %s", resp.Status)
	}
	return h, nil
}

// report prints the E18-style async throughput table. Quantiles come
// from the histogram (linear interpolation inside the owning bucket),
// not a sorted sample list — bounded memory no matter how many jobs.
func (st *asyncStats) report(w io.Writer, opt asyncOptions, wall time.Duration, h healthz) error {
	var mean, p50, p90, p99 time.Duration
	if n := st.hist.Count(); n > 0 {
		mean = secondsDur(st.hist.Sum() / float64(n))
		p50 = secondsDur(st.hist.Quantile(0.5))
		p90 = secondsDur(st.hist.Quantile(0.9))
		p99 = secondsDur(st.hist.Quantile(0.99))
	}
	fmt.Fprintf(w, "## Async advise API load (%d jobs, %d clients, %d distinct contexts)\n\n",
		opt.Jobs, opt.Concurrency, len(opt.Contexts))
	fmt.Fprintf(w, "| metric | value |\n|---|---|\n")
	fmt.Fprintf(w, "| wall time | %v |\n", wall.Round(time.Millisecond))
	fmt.Fprintf(w, "| completed | %d |\n", st.completed.Load())
	fmt.Fprintf(w, "| throughput | %.1f jobs/s |\n", float64(st.completed.Load())/wall.Seconds())
	fmt.Fprintf(w, "| latency mean / p50 / p90 / p99 | %v / %v / %v / %v |\n",
		mean.Round(time.Millisecond), p50.Round(time.Millisecond),
		p90.Round(time.Millisecond), p99.Round(time.Millisecond))
	fmt.Fprintf(w, "| served from result cache | %d |\n", st.cached.Load())
	fmt.Fprintf(w, "| queue-full rejections (retried) | %d |\n", st.rejected.Load())
	fmt.Fprintf(w, "| over-quota refusals (retried) | %d |\n", st.overQuota.Load())
	fmt.Fprintf(w, "| failed | %d |\n", st.failed.Load())
	fmt.Fprintf(w, "| server advises run (total) | %d |\n", h.Advises)
	fmt.Fprintf(w, "| server jobs submitted / coalesced | %d / %d |\n", h.JobsSubmitted, h.JobsCoalesced)
	fmt.Fprintf(w, "| server cache hits / misses | %d / %d |\n", h.ResultCache.Hits, h.ResultCache.Misses)
	st.mu.Lock()
	trace := st.trace
	st.mu.Unlock()
	if len(trace) > 0 {
		fmt.Fprintf(w, "\n### One advise, stage by stage (sampled)\n\n")
		fmt.Fprintf(w, "| stage | count | total |\n|---|---|---|\n")
		writeStages(w, trace, "")
	}
	if st.failed.Load() > 0 {
		return fmt.Errorf("async: %d jobs failed", st.failed.Load())
	}
	return nil
}

// writeStages renders a trace summary tree as indented table rows.
func writeStages(w io.Writer, stages []obs.StageSummary, indent string) {
	for _, st := range stages {
		fmt.Fprintf(w, "| %s%s | %d | %v |\n", indent, st.Name, st.Count,
			time.Duration(st.DurationNS).Round(time.Microsecond))
		writeStages(w, st.Children, indent+"&nbsp;&nbsp;")
	}
}

func secondsDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
