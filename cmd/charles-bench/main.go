// Command charles-bench regenerates the reproduction experiments of
// EXPERIMENTS.md: one per paper figure (E1–E4) and one per
// quantitative claim (E5–E12), each emitting a markdown table with
// the paper's expectation next to the measured numbers.
//
// Usage:
//
//	charles-bench                      # run everything at full scale
//	charles-bench -experiment E7       # one experiment
//	charles-bench -scale 0.1           # quick pass
//
// With -async-url it instead hammers a running charles-server's
// async advise API (POST /advise + poll) and reports throughput:
//
//	charles-bench -async-url http://localhost:8080 \
//	    -async-jobs 200 -async-concurrency 16 \
//	    -async-contexts '(tonnage:); (type_of_boat:, tonnage:)'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"charles/internal/harness"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id (E1..E12); empty runs all")
		scale      = flag.Float64("scale", 1, "row-count scale factor")
		seed       = flag.Int64("seed", 1, "generator seed")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		asyncURL   = flag.String("async-url", "", "base URL of a running charles-server; switches to async-API load mode")
		asyncJobs  = flag.Int("async-jobs", 64, "async mode: total submissions")
		asyncConc  = flag.Int("async-concurrency", 8, "async mode: concurrent clients")
		asyncCtxs  = flag.String("async-contexts", "", "async mode: semicolon-separated SDL contexts to cycle (SDL itself uses commas; empty = whole-table context)")
		asyncPoll  = flag.Duration("async-poll", 25*time.Millisecond, "async mode: poll interval")
		tablePath  = flag.String("table", "", "open this .chc columnar file and report cold-start + first-advise timings")
		tableCtx   = flag.String("table-context", "", "-table mode: SDL context to advise on (empty = all columns)")
		workers    = flag.Int("workers", 0, "-table mode: advisor worker goroutines (0 = all CPUs)")
	)
	flag.Parse()
	if *tablePath != "" {
		if err := runTable(os.Stdout, tableOptions{
			Path:    *tablePath,
			Context: *tableCtx,
			Workers: *workers,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "charles-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		fmt.Println(strings.Join(harness.Experiments(), "\n"))
		return
	}
	if *asyncURL != "" {
		var contexts []string
		if *asyncCtxs != "" {
			for _, c := range strings.Split(*asyncCtxs, ";") {
				contexts = append(contexts, strings.TrimSpace(c))
			}
		}
		err := runAsync(os.Stdout, asyncOptions{
			URL:         *asyncURL,
			Jobs:        *asyncJobs,
			Concurrency: *asyncConc,
			Contexts:    contexts,
			PollEvery:   *asyncPoll,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "charles-bench:", err)
			os.Exit(1)
		}
		return
	}
	opt := harness.Options{Scale: *scale, Seed: *seed}
	var ids []string
	if *experiment != "" {
		ids = strings.Split(*experiment, ",")
	}
	if err := harness.WriteReport(os.Stdout, opt, ids...); err != nil {
		fmt.Fprintln(os.Stderr, "charles-bench:", err)
		os.Exit(1)
	}
}
