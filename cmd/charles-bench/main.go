// Command charles-bench regenerates the reproduction experiments of
// EXPERIMENTS.md: one per paper figure (E1–E4) and one per
// quantitative claim (E5–E12), each emitting a markdown table with
// the paper's expectation next to the measured numbers.
//
// Usage:
//
//	charles-bench                      # run everything at full scale
//	charles-bench -experiment E7       # one experiment
//	charles-bench -scale 0.1           # quick pass
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"charles/internal/harness"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id (E1..E12); empty runs all")
		scale      = flag.Float64("scale", 1, "row-count scale factor")
		seed       = flag.Int64("seed", 1, "generator seed")
		list       = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(harness.Experiments(), "\n"))
		return
	}
	opt := harness.Options{Scale: *scale, Seed: *seed}
	var ids []string
	if *experiment != "" {
		ids = strings.Split(*experiment, ",")
	}
	if err := harness.WriteReport(os.Stdout, opt, ids...); err != nil {
		fmt.Fprintln(os.Stderr, "charles-bench:", err)
		os.Exit(1)
	}
}
