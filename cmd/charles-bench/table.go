package main

import (
	"fmt"
	"io"
	"time"

	"charles"
)

// tableOptions parameterizes the -table load mode: open a .chc
// columnar file the way charles-server does and report the cold
// start (mmap open + zone-map warm-up) next to a first advise, so
// the out-of-core claim — server start is O(metadata), not O(rows)
// — has a number attached.
type tableOptions struct {
	Path    string
	Context string
	Workers int
}

// runTable measures one cold open of a columnar file.
func runTable(w io.Writer, opt tableOptions) error {
	openStart := time.Now()
	tab, err := charles.OpenColumnFile(opt.Path)
	if err != nil {
		return err
	}
	defer tab.Close()
	openDur := time.Since(openStart)

	warmStart := time.Now()
	warmed := tab.WarmSummaries()
	warmDur := time.Since(warmStart)

	cfg := charles.DefaultConfig()
	cfg.Workers = opt.Workers
	adv := charles.NewAdvisor(tab, cfg)
	ctx, err := adv.ParseContext(opt.Context)
	if err != nil {
		return err
	}
	adviseStart := time.Now()
	res, err := adv.Advise(ctx)
	if err != nil {
		return err
	}
	adviseDur := time.Since(adviseStart)

	fmt.Fprintf(w, "## Columnar file cold start: %s\n\n", opt.Path)
	fmt.Fprintf(w, "| metric | value |\n|---|---|\n")
	fmt.Fprintf(w, "| rows x columns | %d x %d |\n", tab.NumRows(), tab.NumCols())
	fmt.Fprintf(w, "| chunks (width %d) | %d |\n", tab.ChunkRows(), tab.NumChunks())
	fmt.Fprintf(w, "| open (mmap + validate) | %v |\n", openDur)
	fmt.Fprintf(w, "| warm %d zone maps | %v |\n", warmed, warmDur)
	fmt.Fprintf(w, "| cold start total | %v |\n", openDur+warmDur)
	fmt.Fprintf(w, "| first advise (%d answers) | %v |\n", len(res.Segmentations), adviseDur)
	return nil
}
