package main

import (
	"testing"
	"time"
)

func TestRetryDelayJitterBounds(t *testing.T) {
	cur := 400 * time.Millisecond
	for i := 0; i < 200; i++ {
		d := retryDelay(cur, "")
		if d < cur/2 || d > cur {
			t.Fatalf("retryDelay(%v) = %v, want within [%v, %v]", cur, d, cur/2, cur)
		}
	}
}

func TestRetryDelayHonorsRetryAfter(t *testing.T) {
	for i := 0; i < 50; i++ {
		if d := retryDelay(100*time.Millisecond, "2"); d < 2*time.Second {
			t.Fatalf("retryDelay floored below Retry-After: %v", d)
		}
	}
	// Malformed or absent hints fall back to pure jitter.
	for _, h := range []string{"", "soon", "-3", "0"} {
		if d := retryDelay(100*time.Millisecond, h); d > 100*time.Millisecond {
			t.Fatalf("Retry-After %q inflated the delay to %v", h, d)
		}
	}
}

func TestTerminalState(t *testing.T) {
	for _, s := range []string{"done", "failed", "cancelled", "timed_out"} {
		if !terminalState(s) {
			t.Fatalf("%q must be terminal", s)
		}
	}
	for _, s := range []string{"queued", "running", ""} {
		if terminalState(s) {
			t.Fatalf("%q must not be terminal", s)
		}
	}
}
