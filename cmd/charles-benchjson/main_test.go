package main

import (
	"runtime"
	"strings"
	"testing"
)

func TestParseBenchLines(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"BenchmarkE15ParallelCells/rep=auto/workers=4-8   100  123456 ns/op  2345 B/op  12 allocs/op",
		"BenchmarkE21DeltaAdvise/warm-8                     5  1500000 ns/op",
		"PASS",
	}, "\n")
	results, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2: %v", len(results), results)
	}
	r, ok := results["E15ParallelCells/rep=auto/workers=4"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", results)
	}
	if r.Iterations != 100 || r.NsPerOp != 123456 || r.BytesPerOp == nil || *r.BytesPerOp != 2345 || r.AllocsPerOp == nil || *r.AllocsPerOp != 12 {
		t.Fatalf("bad parse: %+v", r)
	}
	if warm := results["E21DeltaAdvise/warm"]; warm.BytesPerOp != nil {
		t.Fatalf("missing -benchmem columns should be null, got %+v", warm)
	}
}

// TestCaptureEnv pins the provenance block: diffing BENCH_N.json
// across PRs is only honest when each file names its machine.
func TestCaptureEnv(t *testing.T) {
	env := captureEnv()
	if env.GoVersion != runtime.Version() || env.GOOS != runtime.GOOS || env.GOARCH != runtime.GOARCH {
		t.Fatalf("toolchain fields wrong: %+v", env)
	}
	if env.NumCPU < 1 || env.GOMAXPROCS < 1 {
		t.Fatalf("CPU fields wrong: %+v", env)
	}
	if env.GitSHA != "" && len(env.GitSHA) != 40 {
		t.Fatalf("git_sha is neither empty nor a full SHA: %q", env.GitSHA)
	}
}
