// Command charles-benchjson converts `go test -bench` output on
// stdin into a JSON perf-trajectory document: an "env" block naming
// the machine and revision the numbers came from, and a
// "benchmarks" block mapping benchmark name → ns/op, B/op and
// allocs/op. The Makefile's bench-json target pipes the bench-smoke
// sweep through it into BENCH_N.json, and CI uploads the file as an
// artifact, so every PR leaves a machine-readable baseline the next
// one can diff against — and the env block keeps cross-machine
// diffs honest: a 2× "regression" measured on half the cores is not
// a regression.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchtime=1x -benchmem ./... | charles-benchjson > BENCH_N.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// benchResult is one benchmark's measurements. Bytes and allocs are
// pointers so benchmarks run without -benchmem serialize as null
// rather than a misleading zero.
type benchResult struct {
	Iterations  int      `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// benchEnv records where the numbers came from. GitSHA is empty
// when the tree is not a git checkout (e.g. an exported tarball) —
// absent beats wrong.
type benchEnv struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GitSHA     string `json:"git_sha,omitempty"`
}

// benchDoc is the document shape: environment first, measurements
// second.
type benchDoc struct {
	Env        benchEnv               `json:"env"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

// benchLine matches one result line, e.g.
//
//	BenchmarkE15ParallelCells/rep=auto/workers=4-8   100  123456 ns/op  2345 B/op  12 allocs/op
//
// The trailing -N on the name is the GOMAXPROCS suffix and is
// stripped so the key is stable across machines.
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

// parseBench scans bench output into the name → result map.
func parseBench(in io.Reader) (map[string]benchResult, error) {
	results := make(map[string]benchResult)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.Atoi(m[2])
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := benchResult{Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			b, _ := strconv.ParseFloat(m[4], 64)
			r.BytesPerOp = &b
		}
		if m[5] != "" {
			a, _ := strconv.ParseFloat(m[5], 64)
			r.AllocsPerOp = &a
		}
		results[m[1]] = r
	}
	return results, sc.Err()
}

// captureEnv snapshots the measuring machine. The git SHA comes from
// the git binary so the tool needs no VCS library; any failure (no
// git, not a checkout) leaves the field empty.
func captureEnv() benchEnv {
	env := benchEnv{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		env.GitSHA = strings.TrimSpace(string(out))
	}
	return env
}

func main() {
	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charles-benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "charles-benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(benchDoc{Env: captureEnv(), Benchmarks: results}); err != nil {
		fmt.Fprintln(os.Stderr, "charles-benchjson:", err)
		os.Exit(1)
	}
}
