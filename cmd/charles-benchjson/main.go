// Command charles-benchjson converts `go test -bench` output on
// stdin into a JSON perf-trajectory document: benchmark name →
// ns/op, B/op and allocs/op. The Makefile's bench-json target pipes
// the bench-smoke sweep through it into BENCH_N.json, and CI uploads
// the file as an artifact, so every PR leaves a machine-readable
// baseline the next one can diff against.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchtime=1x -benchmem ./... | charles-benchjson > BENCH_N.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// benchResult is one benchmark's measurements. Bytes and allocs are
// pointers so benchmarks run without -benchmem serialize as null
// rather than a misleading zero.
type benchResult struct {
	Iterations  int      `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// benchLine matches one result line, e.g.
//
//	BenchmarkE15ParallelCells/rep=auto/workers=4-8   100  123456 ns/op  2345 B/op  12 allocs/op
//
// The trailing -N on the name is the GOMAXPROCS suffix and is
// stripped so the key is stable across machines.
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func main() {
	results := make(map[string]benchResult)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.Atoi(m[2])
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := benchResult{Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			b, _ := strconv.ParseFloat(m[4], 64)
			r.BytesPerOp = &b
		}
		if m[5] != "" {
			a, _ := strconv.ParseFloat(m[5], 64)
			r.AllocsPerOp = &a
		}
		results[m[1]] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "charles-benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "charles-benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "charles-benchjson:", err)
		os.Exit(1)
	}
}
