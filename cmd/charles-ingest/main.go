// Command charles-ingest converts a data source — a CSV file or a
// built-in synthetic dataset — into the Charles columnar format
// (.chc, docs/FORMAT.md): per-chunk value pages with precomputed
// zone-map and code-presence summaries, which charles-server then
// opens by mmap in milliseconds regardless of table size.
//
// Clustering: -cluster-by sorts rows by the named column while
// writing, so chunk skipping on that column (and anything
// correlated with it) prunes whole chunks at query time.
//
// Usage:
//
//	charles-ingest -csv voyages.csv -out voyages.chc -cluster-by tonnage
//	charles-ingest -dataset voc -rows 1000000 -out voc.chc
//	charles-ingest -verify voyages.chc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"charles"
	"charles/internal/colfile"
)

func main() {
	var (
		csvPath   = flag.String("csv", "", "source CSV file")
		dsName    = flag.String("dataset", "", "source built-in dataset: voc, sky, weblog, gaussian, uniform, figure3")
		rows      = flag.Int("rows", 100000, "rows for built-in datasets")
		seed      = flag.Int64("seed", 1, "generator seed")
		out       = flag.String("out", "", "output .chc path (default: source name with .chc)")
		chunkRows = flag.Int("chunk-rows", 0, "chunk width to persist pages and zone maps at (0 = auto, 64K)")
		clusterBy = flag.String("cluster-by", "", "sort rows by this column while writing")
		verify    = flag.String("verify", "", "verify an existing .chc file (checksums every page) and exit")
	)
	flag.Parse()

	if *verify != "" {
		if err := runVerify(*verify); err != nil {
			fatal(err)
		}
		return
	}

	var (
		tab *charles.Table
		err error
		src string
	)
	switch {
	case *csvPath != "" && *dsName != "":
		fatal(fmt.Errorf("-csv and -dataset are mutually exclusive"))
	case *csvPath != "":
		src = *csvPath
		tab, err = charles.LoadCSV(*csvPath)
	case *dsName != "":
		src = *dsName
		tab, err = charles.GenerateDataset(*dsName, *rows, *seed)
	default:
		fatal(fmt.Errorf("no source: pass -csv, -dataset or -verify"))
	}
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		base := strings.TrimSuffix(src, ".csv")
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		path = base + colfile.Extension
	}
	start := time.Now()
	err = charles.SaveColumnFile(path, tab, charles.ColumnFileOptions{
		ChunkRows: *chunkRows,
		ClusterBy: *clusterBy,
	})
	if err != nil {
		fatal(err)
	}
	wrote := time.Since(start)

	// Reopen what was written: proves the file loads, and reports
	// the cold-start the server will see.
	start = time.Now()
	f, err := colfile.Open(path)
	if err != nil {
		fatal(fmt.Errorf("reopening %s: %w", path, err))
	}
	defer f.Close()
	opened := time.Since(start)
	clustered := ""
	if f.ClusterBy() != "" {
		clustered = fmt.Sprintf(", clustered by %s", f.ClusterBy())
	}
	fmt.Printf("wrote %d rows x %d columns to %s (%.1f MB, %d-row chunks%s) in %v; reopens via mmap in %v\n",
		f.NumRows(), f.NumCols(), path, float64(f.Size())/(1<<20), f.NativeChunkRows(), clustered, wrote, opened)
}

func runVerify(path string) error {
	f, err := colfile.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	start := time.Now()
	if err := f.Verify(); err != nil {
		return err
	}
	fmt.Printf("%s: ok — %d rows x %d columns, every page checksum verified in %v\n",
		path, f.NumRows(), f.NumCols(), time.Since(start))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "charles-ingest:", err)
	os.Exit(1)
}
