package charles_test

import (
	"testing"

	"charles"
)

// TestAdviseByteIdenticalAcrossZonePruning is the nominal-pruning
// acceptance matrix: zone-map chunk pruning (numeric min/max and the
// new nominal presence summaries) decides which chunks are scanned,
// never what the scan produces — so the fully rendered ranked answer
// list must be byte-identical with summaries on and off, across
// worker counts and chunk widths, on contexts that exercise string,
// bool-free nominal, and numeric predicates together.
func TestAdviseByteIdenticalAcrossZonePruning(t *testing.T) {
	const rows = 6000
	contexts := []string{
		"", // all columns
		"(type_of_boat:, tonnage:, departure_harbour:)",
		"(type_of_boat: {fluit, jacht}, tonnage: [100, 900])",
		"(departure_harbour: {Texel, Goeree}, built:)",
	}
	render := func(workers, chunkRows int, pruning bool, context string) string {
		tab := charles.GenerateVOC(rows, 1)
		cfg := charles.DefaultConfig()
		cfg.Workers = workers
		cfg.ChunkRows = chunkRows
		adv := charles.NewAdvisor(tab, cfg)
		adv.Evaluator().SetZonePruning(pruning)
		res, err := adv.AdviseString(context)
		if err != nil {
			t.Fatalf("workers=%d chunkRows=%d pruning=%v: %v", workers, chunkRows, pruning, err)
		}
		return charles.RenderRanked(res, 0)
	}
	for _, context := range contexts {
		// Reference: sequential, summaries off — the pure scan path.
		want := render(1, 512, false, context)
		if want == "" {
			t.Fatalf("empty reference rendering for context %q", context)
		}
		for _, workers := range []int{1, 4} {
			for _, chunkRows := range []int{512, 0} {
				for _, pruning := range []bool{true, false} {
					if workers == 1 && chunkRows == 512 && !pruning {
						continue // the reference itself
					}
					got := render(workers, chunkRows, pruning, context)
					if got != want {
						t.Errorf("context %q: workers=%d chunkRows=%d pruning=%v diverged from unpruned sequential reference",
							context, workers, chunkRows, pruning)
					}
				}
			}
		}
	}
}
