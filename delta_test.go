// Incremental-advise acceptance tests: advise on a mutated table
// must be byte-identical to a cold advise over the same data — the
// chunk-epoch invalidation may only change what is recomputed, never
// what is answered — and the warm path must actually be cheap
// (TestE21DeltaAdviseGate pins the ratio BenchmarkE21DeltaAdvise
// measures).
package charles_test

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"charles"
	"charles/internal/engine"
)

// cloneTable deep-copies a memory-backed table's columns into a
// fresh table with the same chunk width: the from-scratch rebuild
// every delta test compares against, and the way benchmarks avoid
// mutating the memoized source tables.
func cloneTable(tb testing.TB, t *engine.Table) *engine.Table {
	tb.Helper()
	cols := make([]engine.Column, t.NumCols())
	for i := 0; i < t.NumCols(); i++ {
		switch c := t.Column(i).(type) {
		case *engine.IntColumn:
			cols[i] = engine.NewIntColumn(c.Name(), append([]int64(nil), c.Int64s()...))
		case *engine.DateColumn:
			cols[i] = engine.NewDateColumn(c.Name(), append([]int64(nil), c.Int64s()...))
		case *engine.FloatColumn:
			cols[i] = engine.NewFloatColumn(c.Name(), append([]float64(nil), c.Float64s()...))
		case *engine.BoolColumn:
			cols[i] = engine.NewBoolColumn(c.Name(), append([]bool(nil), c.Bools()...))
		case *engine.StringColumn:
			codes := append([]uint32(nil), c.Codes()...)
			dict := make([]string, c.Cardinality())
			for j := range dict {
				dict[j] = c.DictValue(uint32(j))
			}
			col, err := engine.NewStringColumnFromDict(c.Name(), codes, dict)
			if err != nil {
				tb.Fatal(err)
			}
			cols[i] = col
		default:
			tb.Fatalf("cloneTable: unsupported column type %T", c)
		}
	}
	out, err := engine.NewTable(t.Name(), cols...)
	if err != nil {
		tb.Fatal(err)
	}
	out.SetChunkRows(t.ChunkRows())
	return out
}

// valueRow reads row r of tab as a Value row AppendRows accepts.
func valueRow(tab *engine.Table, r int) []charles.Value {
	row := make([]charles.Value, tab.NumCols())
	for i := 0; i < tab.NumCols(); i++ {
		row[i] = tab.Column(i).Value(r)
	}
	return row
}

// adviseRendered runs one advise and renders the full ranked answer
// list — the byte-comparison form all equivalence tests use.
func adviseRendered(tb testing.TB, adv *charles.Advisor, context string) string {
	tb.Helper()
	res, err := adv.AdviseString(context)
	if err != nil {
		tb.Fatal(err)
	}
	return charles.RenderRanked(res, 0)
}

// TestDeltaAdviseByteIdentical is the always-on core guarantee: after
// appends and updates, a warm advisor (epoch-keyed caches primed
// before the mutations) answers byte-identically to a cold advisor
// over a from-scratch rebuild of the same data.
func TestDeltaAdviseByteIdentical(t *testing.T) {
	src := charles.GenerateVOC(20000, 7)
	src.SetChunkRows(1 << 10)
	const context = "(type_of_boat:, tonnage:, departure_harbour:)"

	tab := cloneTable(t, src)
	cfg := charles.DefaultConfig()
	cfg.ChunkRows = 1 << 10
	warm := charles.NewAdvisor(tab, cfg)
	_ = adviseRendered(t, warm, context) // prime every cache

	// Append 1%: rows sampled from the source so value distributions
	// stay realistic, plus one unseen harbour to grow a dictionary.
	var delta [][]charles.Value
	for i := 0; i < 200; i++ {
		delta = append(delta, valueRow(src, (i*97)%src.NumRows()))
	}
	novel := valueRow(src, 0)
	hIdx := -1
	for i := 0; i < src.NumCols(); i++ {
		if src.Column(i).Name() == "departure_harbour" {
			hIdx = i
		}
	}
	novel[hIdx] = charles.Str("Nieuw-Hoorn")
	delta = append(delta, novel)
	if err := tab.AppendRows(delta...); err != nil {
		t.Fatal(err)
	}
	// Update a scattering of tonnage values in-place.
	sel := charles.Selection{5, 1029, 2048, 9999}
	vals := []charles.Value{charles.Int(123), charles.Int(456), charles.Int(789), charles.Int(1011)}
	if err := tab.UpdateRows(sel, "tonnage", vals); err != nil {
		t.Fatal(err)
	}

	got := adviseRendered(t, warm, context)
	cold := charles.NewAdvisor(cloneTable(t, tab), cfg)
	want := adviseRendered(t, cold, context)
	if got != want {
		t.Fatalf("warm advise diverged from cold rebuild after mutation:\n--- warm ---\n%s\n--- cold ---\n%s", got, want)
	}
	if ctr := warm.Evaluator().Counters(); ctr.DeltaRefreshes == 0 {
		t.Fatal("warm advise took no delta-refresh path; the incremental machinery never engaged")
	}
}

// TestDeltaAdviseProperty drives randomized append/update sequences
// against a from-scratch rebuild at every step, across worker counts
// and chunk widths — the advise output must never diverge. Run under
// -race it also shakes out unsynchronized mutation of derived state.
func TestDeltaAdviseProperty(t *testing.T) {
	const context = "(type_of_boat:, tonnage:, departure_harbour:)"
	for _, workers := range []int{1, 4} {
		for _, chunkRows := range []int{1 << 10, 1 << 16} {
			t.Run(fmt.Sprintf("workers=%d/chunkRows=%d", workers, chunkRows), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(workers)*1000 + int64(chunkRows)))
				src := charles.GenerateVOC(8000, 3)
				tab := cloneTable(t, src)
				tab.SetChunkRows(chunkRows)
				cfg := charles.DefaultConfig()
				cfg.Workers = workers
				cfg.ChunkRows = chunkRows
				warm := charles.NewAdvisor(tab, cfg)
				_ = adviseRendered(t, warm, context)
				for step := 0; step < 6; step++ {
					if rng.Intn(2) == 0 {
						// Append a random batch; occasionally invent a
						// new string value to force dictionary growth.
						var rows [][]charles.Value
						for i := 0; i < 1+rng.Intn(64); i++ {
							row := valueRow(src, rng.Intn(src.NumRows()))
							if rng.Intn(8) == 0 {
								for ci := 0; ci < src.NumCols(); ci++ {
									if src.Column(ci).Name() == "type_of_boat" {
										row[ci] = charles.Str(fmt.Sprintf("prototype-%d", step))
									}
								}
							}
							rows = append(rows, row)
						}
						if err := tab.AppendRows(rows...); err != nil {
							t.Fatal(err)
						}
					} else {
						// Update a random scattering of one column.
						col := [2]string{"tonnage", "type_of_boat"}[rng.Intn(2)]
						n := 1 + rng.Intn(16)
						seen := map[int32]bool{}
						var sel charles.Selection
						for len(sel) < n {
							r := int32(rng.Intn(tab.NumRows()))
							if !seen[r] {
								seen[r] = true
								sel = append(sel, r)
							}
						}
						// UpdateRows does not require sorted rows, but
						// sorted keeps the test's intent obvious.
						for i := 1; i < len(sel); i++ {
							for j := i; j > 0 && sel[j] < sel[j-1]; j-- {
								sel[j], sel[j-1] = sel[j-1], sel[j]
							}
						}
						vals := make([]charles.Value, len(sel))
						for i := range vals {
							if col == "tonnage" {
								vals[i] = charles.Int(int64(100 + rng.Intn(900)))
							} else {
								vals[i] = charles.Str([3]string{"fluit", "jacht", "pinas"}[rng.Intn(3)])
							}
						}
						if err := tab.UpdateRows(sel, col, vals); err != nil {
							t.Fatal(err)
						}
					}
					got := adviseRendered(t, warm, context)
					cold := charles.NewAdvisor(cloneTable(t, tab), cfg)
					want := adviseRendered(t, cold, context)
					if got != want {
						t.Fatalf("step %d: warm advise diverged from rebuild:\n--- warm ---\n%s\n--- cold ---\n%s", step, got, want)
					}
				}
			})
		}
	}
}

// TestE21DeltaAdviseGate is the CI regression gate for the E21
// claim: on a 1M-row table, a warm re-advise after a 1% append must
// be at least 5× faster than a cold advise over the same mutated
// data (half the ≥10× the benchmark pins, so noise on shared CI
// hardware does not flake the gate), and byte-identical to it. It
// costs a 1M-row generation plus three advises, so it only runs when
// CHARLES_DELTA_GATE=1 — `make bench-delta` sets it.
func TestE21DeltaAdviseGate(t *testing.T) {
	gateEnv := os.Getenv("CHARLES_DELTA_GATE")
	if gateEnv == "" {
		t.Skip("1M-row delta gate; set CHARLES_DELTA_GATE=1 (make bench-delta) to enable")
	}
	// The CI-safe floor is 5×: shared runners are noisy and a flaky
	// perf gate trains people to ignore it. A numeric value >1 sets a
	// stricter multiplier — CHARLES_DELTA_GATE=10 checks the
	// paper-facing claim on a quiet machine.
	gate := int64(5)
	if v, err := strconv.ParseInt(gateEnv, 10, 64); err == nil && v > 1 {
		gate = v
	}
	const nRows = 1_000_000
	const context = "(type_of_boat:, tonnage:, departure_harbour:)"
	src := charles.GenerateVOC(nRows, 1)
	tab := cloneTable(t, src)
	cfg := charles.DefaultConfig()
	warm := charles.NewAdvisor(tab, cfg)
	_ = adviseRendered(t, warm, context) // prime

	delta := make([][]charles.Value, nRows/100)
	for i := range delta {
		delta[i] = valueRow(src, (i*97)%nRows)
	}
	if err := tab.AppendRows(delta...); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	got := adviseRendered(t, warm, context)
	warmDur := time.Since(start)

	coldDur := time.Duration(1 << 62)
	var want string
	for i := 0; i < 3; i++ {
		cold := charles.NewAdvisor(tab, cfg)
		start = time.Now()
		want = adviseRendered(t, cold, context)
		if d := time.Since(start); d < coldDur {
			coldDur = d
		}
	}
	if got != want {
		t.Fatalf("warm advise diverged from cold advise on mutated table:\n--- warm ---\n%s\n--- cold ---\n%s", got, want)
	}
	if warmDur*time.Duration(gate) > coldDur {
		t.Fatalf("warm re-advise after 1%% append not ≥%d× faster than cold: warm=%v cold=%v (ratio %.1fx)", gate, warmDur, coldDur, float64(coldDur)/float64(warmDur))
	}
	if ctr := warm.Evaluator().Counters(); ctr.DeltaRefreshes == 0 || ctr.CutRefreshes == 0 {
		t.Fatalf("incremental machinery did not engage: %+v", ctr)
	}
	t.Logf("delta advise: warm=%v cold=%v ratio=%.1fx", warmDur, coldDur, float64(coldDur)/float64(warmDur))
}
