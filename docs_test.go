// Documentation checks, run by `make docs-check` (and plain go
// test): every relative markdown link in README.md and docs/ must
// resolve to a file in the repository, and every spec section the
// colfile implementation cites (§N in comments, errors and tests)
// must exist as a numbered heading in docs/FORMAT.md — the spec's
// numbering is load-bearing, so this is what makes renumbering a
// section a test failure instead of silent doc rot.
package charles_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles returns the markdown files the link check covers.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md"}
	more, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	return append(files, more...)
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsLinksResolve fails on any relative markdown link whose
// target file does not exist.
func TestDocsLinksResolve(t *testing.T) {
	for _, file := range docFiles(t) {
		body, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") ||
				strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%v)", file, m[1], err)
			}
		}
	}
}

// TestDocsFormatSectionsExist cross-checks the §N citations in the
// colfile implementation and its tests against docs/FORMAT.md's
// numbered headings.
func TestDocsFormatSectionsExist(t *testing.T) {
	spec, err := os.ReadFile(filepath.Join("docs", "FORMAT.md"))
	if err != nil {
		t.Fatal(err)
	}
	heading := regexp.MustCompile(`(?m)^#{2,3} ([0-9]+(?:\.[0-9]+)?)[. ]`)
	sections := map[string]bool{}
	for _, m := range heading.FindAllStringSubmatch(string(spec), -1) {
		sections[m[1]] = true
	}
	if len(sections) == 0 {
		t.Fatal("no numbered headings found in docs/FORMAT.md")
	}

	var sources []string
	for _, pat := range []string{filepath.Join("internal", "colfile", "*.go"), "colfile_test.go"} {
		got, err := filepath.Glob(pat)
		if err != nil {
			t.Fatal(err)
		}
		sources = append(sources, got...)
	}
	if len(sources) < 2 {
		t.Fatalf("expected colfile sources, found %v", sources)
	}
	cite := regexp.MustCompile(`§([0-9]+(?:\.[0-9]+)?)`)
	for _, file := range sources {
		body, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range cite.FindAllStringSubmatch(string(body), -1) {
			if !sections[m[1]] {
				t.Errorf("%s cites §%s, which is not a heading in docs/FORMAT.md", file, m[1])
			}
		}
	}
}
