package charles

import "fmt"

// RangeError reports an out-of-range answer or segment index passed
// to Zoom.
type RangeError struct {
	What  string
	Index int
	Len   int
}

// Error implements the error interface.
func (e *RangeError) Error() string {
	return fmt.Sprintf("charles: %s index %d out of range [0, %d)", e.What, e.Index, e.Len)
}

func errOutOfRange(what string, index, n int) error {
	return &RangeError{What: what, Index: index, Len: n}
}
