#!/bin/sh
# metrics_smoke.sh — boot a real charles-server, run one advise
# through the async API, and verify the observability surface end to
# end: /healthz and /metrics answer 200, the scrape parses as
# non-empty Prometheus text, and the families every layer registers
# (engine, seg, jobs, server) are present with the advise visible in
# charles_advises_total. The in-process grammar test covers the
# format; this covers the wiring a unit test can't — flags, listener,
# middleware, a real HTTP round trip.
set -eu

ADDR="${METRICS_SMOKE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
LOG="$(mktemp)"
BIN="$(mktemp)"

go build -o "$BIN" ./cmd/charles-server

"$BIN" -rows 5000 -addr "$ADDR" >"$LOG" 2>&1 &
SRV=$!
trap 'kill "$SRV" 2>/dev/null; rm -f "$BIN"; rm -f "$LOG"' EXIT INT TERM

# Wait for the listener (the server warms summaries before serving).
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "metrics-smoke: server never came up; log follows" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.2
done

# One advise through the job queue, polled to a terminal state.
JOB=$(curl -fsS -X POST -d "context=(tonnage:)" "$BASE/advise")
ID=$(printf '%s' "$JOB" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
if [ -n "$ID" ]; then
    i=0
    while :; do
        STATE=$(curl -fsS "$BASE/jobs/$ID" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
        case "$STATE" in
        done) break ;;
        failed | cancelled | timed_out)
            echo "metrics-smoke: advise job ended $STATE" >&2
            exit 1
            ;;
        esac
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "metrics-smoke: advise job never finished" >&2
            exit 1
        fi
        sleep 0.2
    done
fi

HEALTH=$(curl -fsS "$BASE/healthz")
printf '%s' "$HEALTH" | grep -q '"status":"ok"' || {
    echo "metrics-smoke: bad /healthz payload: $HEALTH" >&2
    exit 1
}

METRICS=$(curl -fsS "$BASE/metrics")
if [ -z "$METRICS" ]; then
    echo "metrics-smoke: empty /metrics body" >&2
    exit 1
fi

for fam in \
    charles_engine_zone_skip_total \
    charles_seg_full_evals_total \
    charles_delta_refreshes_total \
    charles_jobs_run_seconds \
    charles_http_requests_total \
    charles_advises_total \
    charles_result_cache_hits_total \
    charles_panics_recovered_total \
    charles_http_over_quota_total \
    charles_http_queue_full_total \
    charles_http_body_too_large_total; do
    printf '%s\n' "$METRICS" | grep -q "^# TYPE $fam " || {
        echo "metrics-smoke: family $fam missing from /metrics" >&2
        exit 1
    }
done

ADVISES=$(printf '%s\n' "$METRICS" | sed -n 's/^charles_advises_total \([0-9]*\)$/\1/p')
if [ -z "$ADVISES" ] || [ "$ADVISES" -lt 1 ]; then
    echo "metrics-smoke: charles_advises_total = '$ADVISES' after an advise" >&2
    exit 1
fi

# The real listener goes through the access-log middleware, so the
# HTTP families must have moved too.
REQS=$(printf '%s\n' "$METRICS" | sed -n 's/^charles_http_requests_total \([0-9]*\)$/\1/p')
if [ -z "$REQS" ] || [ "$REQS" -lt 1 ]; then
    echo "metrics-smoke: charles_http_requests_total = '$REQS'" >&2
    exit 1
fi

echo "metrics-smoke: OK ($ADVISES advise(s), $REQS request(s) observed)"
