package charles

import (
	"errors"
	"strings"
	"testing"
)

func TestAdvisorEndToEndVOC(t *testing.T) {
	tab := GenerateVOC(5000, 1)
	adv := NewAdvisor(tab, DefaultConfig())
	res, err := adv.AdviseString("(type_of_boat:, tonnage:, departure_harbour:, trip:)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segmentations) < 4 {
		t.Fatalf("answers = %d, want at least the 4 initial cuts", len(res.Segmentations))
	}
	// The planted type↔tonnage dependence must produce at least one
	// multi-attribute segmentation (the Figure 1 story).
	multi := false
	for _, s := range res.Segmentations {
		if len(s.Seg.CutAttrs) >= 2 {
			multi = true
		}
	}
	if !multi {
		t.Fatal("no composed segmentation on VOC data")
	}
	out := RenderRanked(res, 3)
	if !strings.Contains(out, "#1") {
		t.Fatalf("render = %q", out)
	}
}

func TestAdvisorEmptyContextMeansAllColumns(t *testing.T) {
	tab := GenerateVOC(1000, 2)
	adv := NewAdvisor(tab, DefaultConfig())
	q, err := adv.ParseContext("")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Attrs()) != tab.NumCols() {
		t.Fatalf("attrs = %d, want %d", len(q.Attrs()), tab.NumCols())
	}
}

func TestAdvisorParseErrorsSurface(t *testing.T) {
	tab := GenerateVOC(100, 3)
	adv := NewAdvisor(tab, DefaultConfig())
	if _, err := adv.AdviseString("(((("); err == nil {
		t.Fatal("parse error swallowed")
	}
	if _, err := adv.AdviseString("(ghost_column:)"); err == nil {
		t.Fatal("bind error swallowed")
	}
}

func TestAdvisorZoomLoop(t *testing.T) {
	tab := GenerateVOC(3000, 4)
	adv := NewAdvisor(tab, DefaultConfig())
	ctx, err := ContextOn(tab, "type_of_boat", "tonnage")
	if err != nil {
		t.Fatal(err)
	}
	res, err := adv.Advise(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := adv.Zoom(res, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	n, err := adv.Count(sub)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || n >= tab.NumRows() {
		t.Fatalf("zoomed extent = %d", n)
	}
	// Zooming yields a valid next context.
	res2, err := adv.Advise(sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Segmentations) == 0 {
		t.Fatal("zoomed context produced no answers")
	}
}

func TestAdvisorZoomRangeErrors(t *testing.T) {
	tab := GenerateVOC(500, 5)
	adv := NewAdvisor(tab, DefaultConfig())
	res, err := adv.AdviseString("(tonnage:, type_of_boat:)")
	if err != nil {
		t.Fatal(err)
	}
	var re *RangeError
	if _, err := adv.Zoom(res, 99, 0); !errors.As(err, &re) || re.What != "answer" {
		t.Fatalf("err = %v", err)
	}
	if _, err := adv.Zoom(res, 0, 99); !errors.As(err, &re) || re.What != "segment" {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(re.Error(), "out of range") {
		t.Fatalf("message = %q", re.Error())
	}
}

func TestAdvisorStreamAndAdaptive(t *testing.T) {
	tab := GenerateVOC(2000, 6)
	adv := NewAdvisor(tab, DefaultConfig())
	ctx, err := ContextOn(tab, "type_of_boat", "tonnage", "trip")
	if err != nil {
		t.Fatal(err)
	}
	st, err := adv.Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	first, ok, err := st.Next()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if first.Seg.Depth() < 2 {
		t.Fatal("first streamed answer degenerate")
	}
	ad, err := adv.Adaptive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ad) == 0 {
		t.Fatal("no adaptive answers")
	}
}

func TestAdvisorFacets(t *testing.T) {
	tab := GenerateVOC(2000, 7)
	adv := NewAdvisor(tab, DefaultConfig())
	ctx, err := ContextOn(tab, "type_of_boat", "tonnage")
	if err != nil {
		t.Fatal(err)
	}
	facets, err := adv.Facets(ctx, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(facets) != 2 {
		t.Fatalf("facets = %d", len(facets))
	}
}

func TestCSVRoundTripThroughFacade(t *testing.T) {
	tab := GenerateVOC(200, 8)
	dir := t.TempDir()
	path := dir + "/voyages.csv"
	if err := WriteCSV(path, tab); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 200 || back.NumCols() != tab.NumCols() {
		t.Fatalf("shape = %d x %d", back.NumRows(), back.NumCols())
	}
	// Advising on the loaded table works identically.
	adv := NewAdvisor(back, DefaultConfig())
	if _, err := adv.AdviseString("(type_of_boat:, tonnage:)"); err != nil {
		t.Fatal(err)
	}
}

func TestSQLHelpers(t *testing.T) {
	tab := GenerateVOC(100, 9)
	q, err := ParseQuery("(tonnage: [100, 400])", tab)
	if err != nil {
		t.Fatal(err)
	}
	if got := SQLWhere(q); got != "tonnage >= 100 AND tonnage <= 400" {
		t.Fatalf("where = %q", got)
	}
	if got := SQLSelect(q, "voyages"); !strings.HasPrefix(got, "SELECT * FROM voyages WHERE") {
		t.Fatalf("select = %q", got)
	}
}

func TestGenerateDatasetDispatch(t *testing.T) {
	for _, name := range []string{"voc", "sky", "weblog", "gaussian", "uniform", "figure3"} {
		tab, err := GenerateDataset(name, 30, 1)
		if err != nil || tab.NumRows() != 30 {
			t.Fatalf("GenerateDataset(%s): %v", name, err)
		}
	}
	if _, err := GenerateDataset("bogus", 10, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRenderHelpers(t *testing.T) {
	tab := GenerateSkySurvey(500, 1)
	adv := NewAdvisor(tab, DefaultConfig())
	res, err := adv.AdviseString("(class:, magnitude:, redshift:)")
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderContext(res.Context, 500); !strings.Contains(out, "class") {
		t.Fatalf("context = %q", out)
	}
	if out := RenderSegmentation(res.Segmentations[0].Seg); !strings.Contains(out, "%") {
		t.Fatalf("segmentation = %q", out)
	}
}

func TestDescribeSegment(t *testing.T) {
	tab := GenerateVOC(2000, 10)
	adv := NewAdvisor(tab, DefaultConfig())
	ctx, err := ContextOn(tab, "type_of_boat", "tonnage")
	if err != nil {
		t.Fatal(err)
	}
	res, err := adv.Advise(ctx)
	if err != nil {
		t.Fatal(err)
	}
	q, err := adv.Zoom(res, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := adv.DescribeSegment(q, ctx.Attrs())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tonnage") || !strings.Contains(out, "rows") {
		t.Fatalf("detail = %q", out)
	}
	if _, err := adv.DescribeSegment(q, []string{"ghost"}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestWebLogAdvice(t *testing.T) {
	tab := GenerateWebLog(3000, 2)
	adv := NewAdvisor(tab, DefaultConfig())
	res, err := adv.AdviseString("(section:, status:, bytes:)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segmentations) < 3 {
		t.Fatalf("answers = %d", len(res.Segmentations))
	}
}
