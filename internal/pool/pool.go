// Package pool provides the typed scratch-buffer pool shared by the
// engine's chunked order statistics and the seg package's pairwise
// operators. A pool entry is a *[]T so Get/Put move one pointer and
// never re-box the slice header; capacity-starved entries are simply
// replaced (the old array falls to the GC like it always did).
//
// The contract is strictly scratch: callers must return buffers with
// Put and must not retain any view of them afterwards. Anything that
// escapes to a caller — filter results, bitmaps, cached selections —
// must never be pooled.
package pool

import "sync"

// Slice recycles []T scratch buffers of one element type.
type Slice[T any] struct{ p sync.Pool }

// Get returns a buffer of length n (reused when a pooled one has the
// capacity, freshly allocated otherwise). Contents are undefined
// unless every Put site of the pool clears first.
func (sp *Slice[T]) Get(n int) *[]T {
	if v := sp.p.Get(); v != nil {
		b := v.(*[]T)
		if cap(*b) >= n {
			*b = (*b)[:n]
			return b
		}
	}
	b := make([]T, n)
	return &b
}

// Put returns a buffer to the pool.
func (sp *Slice[T]) Put(b *[]T) { sp.p.Put(b) }
