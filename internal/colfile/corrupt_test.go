package colfile

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTestFile writes a small clean file and returns its bytes.
func writeTestFile(t *testing.T) (path string, raw []byte) {
	t.Helper()
	tab := testTable(t, 700, 7)
	path = filepath.Join(t.TempDir(), "corrupt"+Extension)
	if err := Write(path, tab, WriteOptions{ChunkRows: 128}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

// reopen writes raw under a fresh name and opens it, expecting an
// error mentioning every fragment in wants. The loader contract
// (§11) is: corrupt, truncated or wrong-version input fails with a
// descriptive error — never a panic, never a silent mis-read.
func expectOpenError(t *testing.T, raw []byte, wants ...string) {
	t.Helper()
	p := filepath.Join(t.TempDir(), "bad"+Extension)
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(p)
	if err == nil {
		f.Close()
		t.Fatalf("open succeeded on corrupt input, want error mentioning %q", wants)
	}
	for _, w := range wants {
		if !strings.Contains(err.Error(), w) {
			t.Fatalf("error %q does not mention %q", err, w)
		}
	}
}

// rewriteFooter parses raw's footer, applies mutate, and re-emits
// the file with a consistent footer length, checksum and trailer —
// so the corruption under test is the *semantic* one mutate applied,
// not a checksum mismatch masking it. It takes a testing.TB so the
// fuzz harness can use it to seed CRC-valid hostile footers.
func rewriteFooter(t testing.TB, raw []byte, mutate func(*footer)) []byte {
	t.Helper()
	tr := raw[len(raw)-trailerSize:]
	flen := int(binary.LittleEndian.Uint64(tr[0:8]))
	fstart := len(raw) - trailerSize - flen
	var ft footer
	if err := json.Unmarshal(raw[fstart:fstart+flen], &ft); err != nil {
		t.Fatal(err)
	}
	mutate(&ft)
	fj, err := json.Marshal(ft)
	if err != nil {
		t.Fatal(err)
	}
	out := append([]byte(nil), raw[:fstart]...)
	out = append(out, fj...)
	var ntr [trailerSize]byte
	binary.LittleEndian.PutUint64(ntr[0:8], uint64(len(fj)))
	binary.LittleEndian.PutUint32(ntr[8:12], crc32.ChecksumIEEE(fj))
	copy(ntr[16:24], Magic)
	return append(out, ntr[:]...)
}

func TestOpenRejectsNonColfile(t *testing.T) {
	expectOpenError(t, []byte("this is not a column file, just some text padding to pass the size gate........."),
		"magic", "not a colfile")
}

func TestOpenRejectsTruncatedFile(t *testing.T) {
	_, raw := writeTestFile(t)
	// Truncating anywhere inside the body chops the trailer off.
	expectOpenError(t, raw[:len(raw)/2], "trailer magic")
	// A file shorter than the fixed framing is reported as such.
	expectOpenError(t, raw[:10], "fixed framing")
}

func TestOpenRejectsWrongVersion(t *testing.T) {
	_, raw := writeTestFile(t)
	bad := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(bad[8:12], 99)
	expectOpenError(t, bad, "version 99", "supports only version 1")
}

func TestOpenRejectsUnknownFlags(t *testing.T) {
	_, raw := writeTestFile(t)
	bad := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(bad[12:16], 0x80)
	expectOpenError(t, bad, "flags")
}

func TestOpenRejectsFooterCorruption(t *testing.T) {
	_, raw := writeTestFile(t)
	// Flip one byte inside the footer JSON: the checksum must catch it.
	tr := raw[len(raw)-trailerSize:]
	flen := int(binary.LittleEndian.Uint64(tr[0:8]))
	bad := append([]byte(nil), raw...)
	bad[len(bad)-trailerSize-flen/2] ^= 0xFF
	expectOpenError(t, bad, "footer checksum mismatch")
	// A footer length pointing past the start of the file.
	bad = append([]byte(nil), raw...)
	binary.LittleEndian.PutUint64(bad[len(bad)-trailerSize:][0:8], uint64(len(raw)))
	expectOpenError(t, bad, "footer")
}

func TestOpenRejectsBadChunkRows(t *testing.T) {
	_, raw := writeTestFile(t)
	expectOpenError(t, rewriteFooter(t, raw, func(ft *footer) { ft.ChunkRows = 100 }),
		"chunk width 100", "power of two")
}

func TestOpenRejectsRegionViolations(t *testing.T) {
	_, raw := writeTestFile(t)
	// Data region running past the footer.
	expectOpenError(t, rewriteFooter(t, raw, func(ft *footer) { ft.Columns[0].Data.Offset = int64(len(raw)) }),
		"outside the file body")
	// Misaligned int64 region (§2).
	expectOpenError(t, rewriteFooter(t, raw, func(ft *footer) { ft.Columns[0].Data.Offset += 4 }),
		"aligned")
	// Region length disagreeing with rows × element size (§5).
	expectOpenError(t, rewriteFooter(t, raw, func(ft *footer) { ft.Rows += 64 }),
		"bytes, want")
	// Two columns aliasing the same pages (§3).
	expectOpenError(t, rewriteFooter(t, raw, func(ft *footer) { ft.Columns[1].Data = ft.Columns[0].Data }),
		"overlap")
	// Offset+Length wrapping past MaxInt64: the naive bound
	// `offset+length > footerStart` sees a negative sum and admits
	// the region, and slicing then panics. The dictionary region is
	// the nastiest target — it has no expected-length check to fall
	// back on — so that is the one pinned here.
	expectOpenError(t, rewriteFooter(t, raw, func(ft *footer) {
		ft.Columns[3].Dict.Offset = 1 << 62
		ft.Columns[3].Dict.Length = math.MaxInt64 - 1<<62 + 100
	}), "outside the file body")
	// Same wrap on a data region, and a negative length.
	expectOpenError(t, rewriteFooter(t, raw, func(ft *footer) {
		ft.Columns[0].Data.Offset = 1 << 62
		ft.Columns[0].Data.Length = math.MaxInt64 - 1<<62 + 100
	}), "outside the file body")
	expectOpenError(t, rewriteFooter(t, raw, func(ft *footer) { ft.Columns[0].Data.Length = -8 }),
		"outside the file body")
}

func TestOpenRejectsSchemaCorruption(t *testing.T) {
	_, raw := writeTestFile(t)
	expectOpenError(t, rewriteFooter(t, raw, func(ft *footer) { ft.Columns[1].Name = ft.Columns[0].Name }),
		"duplicate column")
	expectOpenError(t, rewriteFooter(t, raw, func(ft *footer) { ft.Columns[0].Kind = "decimal" }),
		"unknown kind")
	expectOpenError(t, rewriteFooter(t, raw, func(ft *footer) { ft.Columns = nil }),
		"no columns")
	expectOpenError(t, rewriteFooter(t, raw, func(ft *footer) { ft.Columns[0].PageCRCs = ft.Columns[0].PageCRCs[1:] }),
		"page checksums")
}

func TestOpenRejectsDictionaryCorruption(t *testing.T) {
	_, raw := writeTestFile(t)
	var dictOff int64
	rewriteFooter(t, raw, func(ft *footer) { dictOff = ft.Columns[3].Dict.Offset }) // harbour
	bad := append([]byte(nil), raw...)
	bad[dictOff+6] ^= 0xFF // a byte inside the first dictionary entry
	expectOpenError(t, bad, "dictionary checksum mismatch")
	expectOpenError(t, rewriteFooter(t, raw, func(ft *footer) { ft.Columns[3].DictCount++ }),
		"dictionary holds")
	expectOpenError(t, rewriteFooter(t, raw, func(ft *footer) { ft.Columns[3].Dict = nil }),
		"no dictionary region")
}

func TestOpenRejectsBadBooleanBytes(t *testing.T) {
	_, raw := writeTestFile(t)
	var boolOff int64
	rewriteFooter(t, raw, func(ft *footer) { boolOff = ft.Columns[5].Data.Offset }) // lost
	bad := append([]byte(nil), raw...)
	bad[boolOff+3] = 7
	expectOpenError(t, bad, "boolean byte 0x07", "want 0 or 1")
}

func TestOpenRejectsSummaryCorruption(t *testing.T) {
	_, raw := writeTestFile(t)
	var sumOff int64
	rewriteFooter(t, raw, func(ft *footer) { sumOff = ft.Columns[0].Summary.Offset })
	bad := append([]byte(nil), raw...)
	bad[sumOff] ^= 0xFF
	expectOpenError(t, bad, "summary checksum mismatch")
}

// TestVerifyCatchesPageCorruption pins the Open/Verify split (§9):
// a flipped byte inside a value page passes the structural checks at
// Open — by design, Open reads no pages — and Verify reports it.
func TestVerifyCatchesPageCorruption(t *testing.T) {
	_, raw := writeTestFile(t)
	var dataOff int64
	rewriteFooter(t, raw, func(ft *footer) { dataOff = ft.Columns[0].Data.Offset })
	bad := append([]byte(nil), raw...)
	bad[dataOff+999] ^= 0x01
	p := filepath.Join(t.TempDir(), "pagecorrupt"+Extension)
	if err := os.WriteFile(p, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(p)
	if err != nil {
		t.Fatalf("open should not read value pages, got: %v", err)
	}
	defer f.Close()
	err = f.Verify()
	if err == nil || !strings.Contains(err.Error(), "page") || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("verify error = %v, want a page checksum mismatch", err)
	}
}

// TestOpenRejectsOutOfRangeCodes pins §5.3: codes beyond the
// dictionary are caught eagerly at open — the engine indexes the
// dictionary by code without a bounds check, so admitting one would
// turn the first scan that touches the row into a panic. The page
// CRC is restored so only the range check can catch it: the write
// below is exactly the corruption a buggy writer would produce, with
// checksums agreeing with the bytes.
func TestOpenRejectsOutOfRangeCodes(t *testing.T) {
	_, raw := writeTestFile(t)
	var codeOff int64
	var ft0 footer
	rewriteFooter(t, raw, func(ft *footer) { codeOff, ft0 = ft.Columns[3].Data.Offset, *ft })
	bad := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(bad[codeOff+40:], 1<<30) // a code no dictionary has
	pageBytes := ft0.ChunkRows * 4
	page0 := bad[codeOff : codeOff+pageBytes]
	bad = rewriteFooter(t, bad, func(ft *footer) { ft.Columns[3].PageCRCs[0] = crc32.ChecksumIEEE(page0) })
	expectOpenError(t, bad, "beyond the", "dictionary")
}
