package colfile

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"charles/internal/engine"
)

// Native Go fuzz targets for the .chc parsers. The corruption suite
// (corrupt_test.go) pins descriptive errors for mutations someone
// thought of; fuzzing searches for the ones nobody did. The contract
// under fuzz is the §11 loader contract: corrupt, truncated or
// hostile input must produce an error or a valid File — never a
// panic — and anything Open accepts must survive Verify and Close.
//
// CI runs a short -fuzztime smoke (make fuzz-smoke); longer local
// runs just work: go test -fuzz=FuzzOpenColumnFile ./internal/colfile

// fuzzSeedFile writes a small valid file covering every storable
// kind and both code-presence summary forms, and returns its bytes.
// It is the fuzzer's anchor seed: mutations of a structurally valid
// file reach far deeper than random bytes.
func fuzzSeedFile(f *testing.F) []byte {
	f.Helper()
	const rows = 300
	ints := make([]int64, rows)
	floats := make([]float64, rows)
	small := make([]string, rows)
	wide := make([]string, rows)
	bools := make([]bool, rows)
	cities := []string{"amsterdam", "batavia", "galle"}
	for i := 0; i < rows; i++ {
		ints[i] = int64(i*37%501) - 200
		if i%17 == 0 {
			floats[i] = math.NaN()
		} else {
			floats[i] = float64(i%89) / 3
		}
		small[i] = cities[i%len(cities)]
		wide[i] = string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('0'+i%10))
		bools[i] = i%3 == 0
	}
	tab, err := engine.NewTable("fuzzseed",
		engine.NewIntColumn("ints", ints),
		engine.NewFloatColumn("floats", floats),
		engine.NewStringColumn("small", small),
		engine.NewStringColumn("wide", wide),
		engine.NewBoolColumn("bools", bools),
	)
	if err != nil {
		f.Fatal(err)
	}
	path := filepath.Join(f.TempDir(), "seed"+Extension)
	if err := Write(path, tab, WriteOptions{ChunkRows: 64}); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return raw
}

// FuzzOpenColumnFile drives the whole container path: header,
// trailer, checksummed footer, region table, dictionaries, summary
// regions, and — when Open accepts the input — the deep Verify pass
// and Close. The corruption-suite corpus is reproduced as seeds:
// the valid file plus the same classes of mutation the pinned tests
// apply (flipped magic, truncations, oversized footer length, bit
// flips in the footer JSON and in page data).
func FuzzOpenColumnFile(f *testing.F) {
	raw := fuzzSeedFile(f)
	f.Add(raw)
	// Seed the classic corruption classes so the fuzzer starts where
	// corrupt_test.go's mutation suite left off.
	trunc := raw[:len(raw)/2]
	f.Add(trunc)
	badMagic := append([]byte(nil), raw...)
	copy(badMagic, "NOTACOLF")
	f.Add(badMagic)
	badTrailerLen := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint64(badTrailerLen[len(badTrailerLen)-trailerSize:], uint64(len(raw))*2)
	f.Add(badTrailerLen)
	flipFooter := append([]byte(nil), raw...)
	flipFooter[len(flipFooter)-trailerSize-10] ^= 0x40
	f.Add(flipFooter)
	flipPage := append([]byte(nil), raw...)
	flipPage[headerSize+3] ^= 0x01
	f.Add(flipPage)
	// A CRC-valid footer whose region arithmetic overflows int64.
	// Random mutation almost never reaches the region checks — a
	// mutated footer dies at the trailer CRC first — so the hostile
	// footer classes must be seeded with their checksums recomputed.
	f.Add(rewriteFooter(f, raw, func(ft *footer) {
		ft.Columns[0].Data.Offset = 1 << 62
		ft.Columns[0].Data.Length = math.MaxInt64 - 1<<62 + 100
	}))
	f.Add([]byte{})
	f.Add([]byte(Magic))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz"+Extension)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		file, err := Open(path)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("Open returned an empty error: corrupt input must fail descriptively")
			}
			return
		}
		// Structurally valid: the deep integrity pass and the
		// column accessors must hold up without panicking too.
		for i := 0; i < file.NumCols(); i++ {
			col := file.Column(i)
			if col.Len() != file.NumRows() {
				t.Fatalf("column %d has %d rows, file says %d", i, col.Len(), file.NumRows())
			}
		}
		if err := file.Verify(); err != nil && err.Error() == "" {
			t.Fatal("Verify returned an empty error")
		}
		if err := file.Close(); err != nil {
			t.Fatalf("Close after successful Open: %v", err)
		}
	})
}

// FuzzReadPage drives the intra-region page parsers that Open and
// decodeSummary feed mapped bytes into: the dictionary decoder and
// the per-kind summary decoder (zone maps, float purity, dense and
// sparse code presence). These see raw attacker-controlled bytes
// bounded only by the footer's region table, so they must error —
// never panic or over-read — on any input.
func FuzzReadPage(f *testing.F) {
	f.Add(encodeDict([]string{"amsterdam", "batavia", ""}), uint8(2), 4)
	f.Add(encodeDict(nil), uint8(2), 1)
	intSum := encodeSummary(engine.KindInt, engine.SummaryData{
		IntMin: []int64{-5, 0}, IntMax: []int64{10, 7},
	})
	f.Add(intSum, uint8(0), 2)
	floatSum := encodeSummary(engine.KindFloat, engine.SummaryData{
		FloatMin: []float64{0.5}, FloatMax: []float64{2.5}, FloatPure: []bool{true},
	})
	f.Add(floatSum, uint8(1), 1)
	denseSum := encodeSummary(engine.KindString, engine.SummaryData{
		DictLen:  3,
		CodeBits: [][]uint64{{0b101}, {0b010}},
	})
	f.Add(denseSum, uint8(2), 2)
	sparseSum := encodeSummary(engine.KindString, engine.SummaryData{
		DictLen:      5000,
		CodeList:     [][]uint32{{1, 9}, nil},
		CodeOverflow: []bool{false, true},
	})
	f.Add(sparseSum, uint8(2), 2)
	boolSum := encodeSummary(engine.KindBool, engine.SummaryData{
		BoolHasTrue: []bool{true}, BoolHasFalse: []bool{false},
	})
	f.Add(boolSum, uint8(3), 1)

	kinds := []engine.Kind{engine.KindInt, engine.KindFloat, engine.KindString, engine.KindBool, engine.KindDate}
	f.Fuzz(func(t *testing.T, data []byte, kindSel uint8, numChunks int) {
		if numChunks < 0 || numChunks > 1<<12 {
			return
		}
		if _, err := decodeDict(data); err != nil && err.Error() == "" {
			t.Fatal("decodeDict returned an empty error")
		}
		kind := kinds[int(kindSel)%len(kinds)]
		if _, err := decodeSummary(kind, data, numChunks); err != nil && err.Error() == "" {
			t.Fatal("decodeSummary returned an empty error")
		}
	})
}
