package colfile

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"sync"
	"unsafe"

	"charles/internal/engine"
	"charles/internal/fault"
)

// File is an opened columnar file: an engine.ColumnBackend whose
// column vectors are zero-copy views into the file's memory mapping,
// so opening reads metadata plus the validity scans over boolean and
// string pages (§5.3, §5.4); other pages fault in from the page
// cache only when a scan touches them. A File must stay open for as
// long as any table built over it is in use; Close unmaps it.
type File struct {
	path  string
	data  []byte
	unmap func() error

	ft        footer
	cols      []engine.Column
	sums      []*engine.ChunkSummary
	rows      int
	chunkRows int

	closeOnce sync.Once
	closeErr  error
}

// Open maps path and validates its structure (§11): magic and
// version at both ends, checksummed footer, region bounds,
// alignment and lengths, dictionary and summary integrity, and the
// validity of boolean bytes and string dictionary codes — everything
// the engine's zero-copy views would otherwise trust blindly. It
// does not checksum value pages — that reads the whole file; call
// Verify for a full integrity pass. Errors are descriptive and wrap
// no panic: a truncated, corrupt or wrong-version file is reported
// as such.
func Open(path string) (*File, error) {
	if !hostLittleEndian() {
		return nil, fmt.Errorf("colfile: zero-copy reads require a little-endian host (§2)")
	}
	if err := fault.Inject("colfile.open"); err != nil {
		return nil, fmt.Errorf("colfile: opening %s: %w", path, err)
	}
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("colfile: opening %s: %w", path, err)
	}
	f := &File{path: path, data: data, unmap: unmap}
	if err := f.parse(); err != nil {
		unmap()
		return nil, fmt.Errorf("colfile: %s: %w", path, err)
	}
	return f, nil
}

// OpenTable opens path and builds an engine table over it. Closing
// the table closes the file.
func OpenTable(path string) (*engine.Table, error) {
	f, err := Open(path)
	if err != nil {
		return nil, err
	}
	t, err := engine.NewTableFromBackend(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

// parse validates the container and materializes columns and
// summaries. The validation order follows §11: fixed trailer and
// header first, then the checksummed footer, then every region the
// footer declares.
func (f *File) parse() error {
	data := f.data
	if len(data) < headerSize+trailerSize {
		return fmt.Errorf("file is %d bytes, smaller than the %d-byte fixed framing (§3)",
			len(data), headerSize+trailerSize)
	}
	if string(data[:8]) != Magic {
		return fmt.Errorf("bad header magic %q, want %q (§4.1) — not a colfile", data[:8], Magic)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != Version {
		return fmt.Errorf("format version %d, this reader supports only version %d (§10)", v, Version)
	}
	if flags := binary.LittleEndian.Uint32(data[12:16]); flags != 0 {
		return fmt.Errorf("unknown header flags %#x (§4.1)", flags)
	}
	tr := data[len(data)-trailerSize:]
	if string(tr[16:24]) != Magic {
		return fmt.Errorf("bad trailer magic %q, want %q (§4.2) — file is truncated or not a colfile", tr[16:24], Magic)
	}
	footerLen := binary.LittleEndian.Uint64(tr[0:8])
	bodyAndFooter := uint64(len(data) - headerSize - trailerSize)
	if footerLen > bodyAndFooter {
		return fmt.Errorf("trailer claims a %d-byte footer but only %d bytes precede it (§4.2)", footerLen, bodyAndFooter)
	}
	footerStart := int64(len(data)) - trailerSize - int64(footerLen)
	fb := data[footerStart : footerStart+int64(footerLen)]
	if got, want := crc32.ChecksumIEEE(fb), binary.LittleEndian.Uint32(tr[8:12]); got != want {
		return fmt.Errorf("footer checksum mismatch: computed %#x, trailer says %#x (§9)", got, want)
	}
	if err := json.Unmarshal(fb, &f.ft); err != nil {
		return fmt.Errorf("decoding footer JSON: %w (§8)", err)
	}
	if f.ft.Version != Version {
		return fmt.Errorf("footer version %d disagrees with header version %d (§10)", f.ft.Version, Version)
	}
	if f.ft.Rows < 0 || f.ft.Rows > math.MaxInt32 {
		return fmt.Errorf("row count %d outside the engine's 31-bit row addressing (§8)", f.ft.Rows)
	}
	f.rows = int(f.ft.Rows)
	if f.ft.ChunkRows != int64(engine.NormalizeChunkRows(int(f.ft.ChunkRows))) {
		return fmt.Errorf("chunk width %d is not a power of two in [64, 2^30] (§8)", f.ft.ChunkRows)
	}
	f.chunkRows = int(f.ft.ChunkRows)
	if len(f.ft.Columns) == 0 {
		return fmt.Errorf("footer declares no columns (§8)")
	}

	nChunks := 0
	if f.rows > 0 {
		nChunks = (f.rows + f.chunkRows - 1) / f.chunkRows
	}
	type span struct{ off, length int64 }
	spans := []span{{0, headerSize}, {footerStart, int64(len(data)) - footerStart}}
	checkRegion := func(what string, r region, align, wantLen int64) error {
		// The end-of-region comparison is phrased as a subtraction so a
		// hostile footer cannot wrap Offset+Length past MaxInt64 into a
		// negative sum that passes the bound (§3, §11).
		if r.Offset < headerSize || r.Length < 0 || r.Offset > footerStart || r.Length > footerStart-r.Offset {
			return fmt.Errorf("%s region at offset %d, length %d falls outside the file body (§3)", what, r.Offset, r.Length)
		}
		if r.Offset%align != 0 {
			return fmt.Errorf("%s region offset %d is not %d-byte aligned (§2)", what, r.Offset, align)
		}
		if wantLen >= 0 && r.Length != wantLen {
			return fmt.Errorf("%s region is %d bytes, want %d (§5)", what, r.Length, wantLen)
		}
		spans = append(spans, span{r.Offset, r.Length})
		return nil
	}

	seen := make(map[string]bool, len(f.ft.Columns))
	f.cols = make([]engine.Column, len(f.ft.Columns))
	f.sums = make([]*engine.ChunkSummary, len(f.ft.Columns))
	for i, cm := range f.ft.Columns {
		what := fmt.Sprintf("column %q data", cm.Name)
		if cm.Name == "" {
			return fmt.Errorf("column %d has an empty name (§8)", i)
		}
		if seen[cm.Name] {
			return fmt.Errorf("duplicate column %q (§8)", cm.Name)
		}
		seen[cm.Name] = true
		kind, err := engine.ParseKind(cm.Kind)
		if err != nil {
			return fmt.Errorf("column %q has unknown kind %q (§8)", cm.Name, cm.Kind)
		}
		if err := checkRegion(what, cm.Data, elemAlign(kind), int64(f.rows)*elemSize(kind)); err != nil {
			return err
		}
		if len(cm.PageCRCs) != nChunks {
			return fmt.Errorf("column %q carries %d page checksums, want one per chunk (%d) (§9)",
				cm.Name, len(cm.PageCRCs), nChunks)
		}
		if err := fault.Inject("colfile.readPage"); err != nil {
			return fmt.Errorf("column %q: reading value pages: %w", cm.Name, err)
		}
		raw := data[cm.Data.Offset : cm.Data.Offset+cm.Data.Length]

		switch kind {
		case engine.KindInt:
			f.cols[i] = engine.NewIntColumn(cm.Name, viewInt64(raw))
		case engine.KindDate:
			f.cols[i] = engine.NewDateColumn(cm.Name, viewInt64(raw))
		case engine.KindFloat:
			f.cols[i] = engine.NewFloatColumn(cm.Name, viewFloat64(raw))
		case engine.KindString:
			if cm.Dict == nil {
				return fmt.Errorf("string column %q has no dictionary region (§6)", cm.Name)
			}
			if err := checkRegion(fmt.Sprintf("column %q dictionary", cm.Name), *cm.Dict, 1, -1); err != nil {
				return err
			}
			db := data[cm.Dict.Offset : cm.Dict.Offset+cm.Dict.Length]
			if got := crc32.ChecksumIEEE(db); got != cm.Dict.CRC {
				return fmt.Errorf("column %q dictionary checksum mismatch: computed %#x, footer says %#x (§9)",
					cm.Name, got, cm.Dict.CRC)
			}
			dict, err := decodeDict(db)
			if err != nil {
				return fmt.Errorf("column %q: %w", cm.Name, err)
			}
			if int64(len(dict)) != cm.DictCount {
				return fmt.Errorf("column %q dictionary holds %d entries, footer says %d (§6)",
					cm.Name, len(dict), cm.DictCount)
			}
			// Codes are validated eagerly for the same reason boolean
			// bytes are (§5.3): the engine indexes dict[code] without a
			// bounds check, so an out-of-range code in an otherwise
			// structurally valid file would panic at scan time — after
			// Open promised the file was safe to query. A u32 per row,
			// the scan costs the same as the boolean one.
			codes := viewUint32(raw)
			for row, code := range codes {
				if int64(code) >= cm.DictCount {
					return fmt.Errorf("column %q row %d: dictionary code %d beyond the %d-entry dictionary (§5.3)",
						cm.Name, row, code, cm.DictCount)
				}
			}
			sc, err := engine.NewStringColumnFromDict(cm.Name, codes, dict)
			if err != nil {
				return fmt.Errorf("column %q: %w", cm.Name, err)
			}
			f.cols[i] = sc
		case engine.KindBool:
			// A Go []bool view cannot tolerate bytes other than 0/1
			// (§5.4), so boolean pages are validated eagerly for the
			// same reason string codes are; bool columns are a byte
			// per row, so the scan stays cheap.
			for off, b := range raw {
				if b > 1 {
					return fmt.Errorf("column %q row %d: boolean byte 0x%02x, want 0 or 1 (§5.4)", cm.Name, off, b)
				}
			}
			f.cols[i] = engine.NewBoolColumn(cm.Name, viewBool(raw))
		default:
			return fmt.Errorf("column %q has unstorable kind %v (§8)", cm.Name, kind)
		}

		if cm.Summary != nil && nChunks > 0 {
			if err := checkRegion(fmt.Sprintf("column %q summary", cm.Name), *cm.Summary, 1, -1); err != nil {
				return err
			}
			sb := data[cm.Summary.Offset : cm.Summary.Offset+cm.Summary.Length]
			if got := crc32.ChecksumIEEE(sb); got != cm.Summary.CRC {
				return fmt.Errorf("column %q summary checksum mismatch: computed %#x, footer says %#x (§9)",
					cm.Name, got, cm.Summary.CRC)
			}
			s, err := decodeSummary(kind, sb, nChunks)
			if err != nil {
				return fmt.Errorf("column %q: %w", cm.Name, err)
			}
			f.sums[i] = s
		}
	}

	// No two regions may overlap (§3): a footer crafted to alias one
	// column's pages into another's would otherwise read cleanly.
	sort.Slice(spans, func(a, b int) bool { return spans[a].off < spans[b].off })
	for i := 1; i < len(spans); i++ {
		prev := spans[i-1]
		if prev.off+prev.length > spans[i].off {
			return fmt.Errorf("regions [%d, %d) and [%d, %d) overlap (§3)",
				prev.off, prev.off+prev.length, spans[i].off, spans[i].off+spans[i].length)
		}
	}
	return nil
}

// TableName implements engine.ColumnBackend.
func (f *File) TableName() string { return f.ft.Table }

// NumRows implements engine.ColumnBackend.
func (f *File) NumRows() int { return f.rows }

// NumCols implements engine.ColumnBackend.
func (f *File) NumCols() int { return len(f.cols) }

// Column implements engine.ColumnBackend.
func (f *File) Column(i int) engine.Column { return f.cols[i] }

// ChunkSummary implements engine.ColumnBackend: the persisted zone
// maps are valid only at the file's native chunk width; at any other
// width the table falls back to its lazy scan-time build.
func (f *File) ChunkSummary(col, chunkRows int) (*engine.ChunkSummary, bool) {
	if chunkRows != f.chunkRows || f.sums[col] == nil {
		return nil, false
	}
	return f.sums[col], true
}

// NativeChunkRows implements engine.ColumnBackend.
func (f *File) NativeChunkRows() int { return f.chunkRows }

// ClusterBy returns the column the rows were reordered by at ingest,
// or "" when the file preserves source order.
func (f *File) ClusterBy() string { return f.ft.ClusterBy }

// Path returns the file's path.
func (f *File) Path() string { return f.path }

// Size returns the mapped file size in bytes.
func (f *File) Size() int64 { return int64(len(f.data)) }

// Close unmaps the file. Every column handed out becomes invalid;
// close only after nothing advises on the table anymore.
func (f *File) Close() error {
	f.closeOnce.Do(func() { f.closeErr = f.unmap() })
	return f.closeErr
}

// Verify checksums every value page against the footer's page table
// (§9, §11). It reads the entire file — this is the explicit deep
// check behind charles-ingest -verify, not part of Open. String
// codes need no separate pass here: Open range-checks them (§5.3),
// and any post-open bit damage to a code page shows up as a page
// checksum mismatch.
func (f *File) Verify() error {
	for _, cm := range f.ft.Columns {
		if err := fault.Inject("colfile.verify"); err != nil {
			return fmt.Errorf("colfile: column %q: verifying pages: %w", cm.Name, err)
		}
		raw := f.data[cm.Data.Offset : cm.Data.Offset+cm.Data.Length]
		kind, _ := engine.ParseKind(cm.Kind)
		pageBytes := int64(f.chunkRows) * elemSize(kind)
		for c, want := range cm.PageCRCs {
			lo := int64(c) * pageBytes
			hi := lo + pageBytes
			if hi > int64(len(raw)) {
				hi = int64(len(raw))
			}
			if got := crc32.ChecksumIEEE(raw[lo:hi]); got != want {
				return fmt.Errorf("colfile: column %q page %d checksum mismatch: computed %#x, footer says %#x (§9)",
					cm.Name, c, got, want)
			}
		}
	}
	return nil
}

// Zero-copy typed views over mapped bytes (§5). The offsets were
// alignment-checked in parse, and the mapping base is page-aligned
// (the read-everything fallback allocates 8-aligned), so the
// reinterpretations are well-defined.

func viewInt64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func viewFloat64(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func viewUint32(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func viewBool(b []byte) []bool {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*bool)(unsafe.Pointer(&b[0])), len(b))
}
