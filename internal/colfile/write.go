package colfile

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"unsafe"

	"charles/internal/engine"
)

// WriteOptions parameterizes an ingest.
type WriteOptions struct {
	// ChunkRows is the chunk width to persist pages and summaries
	// at; 0 keeps the table's current width. Other values normalize
	// the way engine.SetChunkRows does (power of two in [64, 2^30]).
	ChunkRows int
	// ClusterBy, when non-empty, reorders rows by this column before
	// writing (a stable sort, NaN floats last), so that zone-map and
	// code-presence pruning on the clustered column — and anything
	// correlated with it — skips whole chunks at query time.
	ClusterBy string
}

// Write persists a table to path in the colfile format
// (docs/FORMAT.md), writing to a temporary sibling first and
// renaming into place so a crashed ingest never leaves a partial
// file under the real name.
func Write(path string, t *engine.Table, opts WriteOptions) error {
	if !hostLittleEndian() {
		return fmt.Errorf("colfile: writing requires a little-endian host (§2)")
	}
	chunkRows := opts.ChunkRows
	if chunkRows == 0 {
		chunkRows = t.ChunkRows()
	}
	chunkRows = engine.NormalizeChunkRows(chunkRows)

	cols := t.Columns()
	if opts.ClusterBy != "" {
		var err error
		if cols, err = clusterColumns(t, opts.ClusterBy); err != nil {
			return err
		}
	}
	// A shadow table over the (possibly reordered) columns owns the
	// chunk layout and summary build for the write, leaving the
	// caller's table layout untouched.
	shadow, err := engine.NewTable(t.Name(), cols...)
	if err != nil {
		return fmt.Errorf("colfile: assembling table for write: %w", err)
	}
	shadow.SetChunkRows(chunkRows)
	shadow.WarmSummaries()

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer os.Remove(tmp)
	if err := writeFile(f, shadow, opts.ClusterBy); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// countingWriter tracks the absolute file offset and sticks at the
// first error, so the region bookkeeping above it stays linear.
type countingWriter struct {
	w   *bufio.Writer
	off int64
	err error
}

func (cw *countingWriter) write(b []byte) {
	if cw.err != nil {
		return
	}
	n, err := cw.w.Write(b)
	cw.off += int64(n)
	cw.err = err
}

// pad8 advances to the next multiple of 8 with zero bytes (§3).
func (cw *countingWriter) pad8() {
	var zeros [8]byte
	if rem := cw.off & 7; rem != 0 {
		cw.write(zeros[:8-rem])
	}
}

// writeFile emits header, per-column regions, footer and trailer.
func writeFile(f *os.File, t *engine.Table, clusterBy string) error {
	cw := &countingWriter{w: bufio.NewWriterSize(f, 1<<20)}

	// Header (§4.1).
	var hdr [headerSize]byte
	copy(hdr[:8], Magic)
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	binary.LittleEndian.PutUint32(hdr[12:16], 0) // flags
	cw.write(hdr[:])

	ft := footer{
		Version:   Version,
		Table:     t.Name(),
		Rows:      int64(t.NumRows()),
		ChunkRows: int64(t.ChunkRows()),
		ClusterBy: clusterBy,
	}
	nc := t.NumChunks()
	for i, col := range t.Columns() {
		cm := columnMeta{Name: col.Name(), Kind: col.Kind().String()}

		// Value pages (§5): the column's raw vector, viewed as bytes,
		// is exactly the concatenation of its chunk pages.
		data, dict, err := columnBytes(col)
		if err != nil {
			return err
		}
		cw.pad8()
		cm.Data = region{Offset: cw.off, Length: int64(len(data))}
		cm.PageCRCs = make([]uint32, 0, nc)
		pageBytes := int64(t.ChunkRows()) * elemSize(col.Kind())
		for c := 0; c < nc; c++ {
			lo := int64(c) * pageBytes
			hi := lo + pageBytes
			if hi > int64(len(data)) {
				hi = int64(len(data))
			}
			cm.PageCRCs = append(cm.PageCRCs, crc32.ChecksumIEEE(data[lo:hi]))
		}
		cw.write(data)

		// Dictionary region (§6).
		if dict != nil {
			enc := encodeDict(dict)
			cw.pad8()
			cm.Dict = &region{Offset: cw.off, Length: int64(len(enc)), CRC: crc32.ChecksumIEEE(enc)}
			cm.DictCount = int64(len(dict))
			cw.write(enc)
		}

		// Summary region (§7): the zone map the engine just built at
		// the file's chunk width, serialized for the reader to serve
		// back without scanning.
		if s := t.Summary(i); s != nil && nc > 0 {
			enc := encodeSummary(col.Kind(), s.Export())
			cw.pad8()
			cm.Summary = &region{Offset: cw.off, Length: int64(len(enc)), CRC: crc32.ChecksumIEEE(enc)}
			cw.write(enc)
		}
		ft.Columns = append(ft.Columns, cm)
	}

	// Footer (§8) + trailer (§4.2).
	cw.pad8()
	fj, err := json.Marshal(ft)
	if err != nil {
		return fmt.Errorf("colfile: encoding footer: %w", err)
	}
	cw.write(fj)
	var tr [trailerSize]byte
	binary.LittleEndian.PutUint64(tr[0:8], uint64(len(fj)))
	binary.LittleEndian.PutUint32(tr[8:12], crc32.ChecksumIEEE(fj))
	binary.LittleEndian.PutUint32(tr[12:16], 0) // reserved
	copy(tr[16:24], Magic)
	cw.write(tr[:])

	if cw.err != nil {
		return cw.err
	}
	return cw.w.Flush()
}

// columnBytes returns the little-endian byte image of a column's
// value vector (§5) — a zero-copy view of its backing slice — plus
// the dictionary of a string column.
func columnBytes(col engine.Column) (data []byte, dict []string, err error) {
	switch col := col.(type) {
	case *engine.IntColumn:
		return int64Bytes(col.Int64s()), nil, nil
	case *engine.DateColumn:
		return int64Bytes(col.Int64s()), nil, nil
	case *engine.FloatColumn:
		return float64Bytes(col.Float64s()), nil, nil
	case *engine.StringColumn:
		dict = make([]string, col.Cardinality())
		for i := range dict {
			dict[i] = col.DictValue(uint32(i))
		}
		return uint32Bytes(col.Codes()), dict, nil
	case *engine.BoolColumn:
		return boolBytes(col.Bools()), nil, nil
	default:
		return nil, nil, fmt.Errorf("colfile: cannot persist column %q of type %T", col.Name(), col)
	}
}

// clusterColumns returns the table's columns reordered by a stable
// sort on the named column: ints/dates/floats ascending with NaN
// floats last, strings in byte order, bools false before true.
func clusterColumns(t *engine.Table, by string) ([]engine.Column, error) {
	key, ok := t.ColumnByName(by)
	if !ok {
		return nil, fmt.Errorf("colfile: cluster column %q does not exist", by)
	}
	rows := t.NumRows()
	perm := make([]int, rows)
	for i := range perm {
		perm[i] = i
	}
	var less func(a, b int) bool
	switch key := key.(type) {
	case engine.IntValued:
		less = func(a, b int) bool { return key.Int64(a) < key.Int64(b) }
	case engine.FloatValued:
		less = func(a, b int) bool {
			av, bv := key.Float64(a), key.Float64(b)
			if av != av || bv != bv { // NaN sorts after every number
				return av == av && bv != bv
			}
			return av < bv
		}
	case *engine.StringColumn:
		less = func(a, b int) bool { return key.Str(a) < key.Str(b) }
	case *engine.BoolColumn:
		less = func(a, b int) bool { return !key.Bool(a) && key.Bool(b) }
	default:
		return nil, fmt.Errorf("colfile: cannot cluster by column %q of type %T", by, key)
	}
	sort.SliceStable(perm, func(i, j int) bool { return less(perm[i], perm[j]) })

	out := make([]engine.Column, t.NumCols())
	for ci, col := range t.Columns() {
		switch col := col.(type) {
		case *engine.IntColumn:
			vals := make([]int64, rows)
			for i, r := range perm {
				vals[i] = col.Int64(r)
			}
			out[ci] = engine.NewIntColumn(col.Name(), vals)
		case *engine.DateColumn:
			vals := make([]int64, rows)
			for i, r := range perm {
				vals[i] = col.Int64(r)
			}
			out[ci] = engine.NewDateColumn(col.Name(), vals)
		case *engine.FloatColumn:
			vals := make([]float64, rows)
			for i, r := range perm {
				vals[i] = col.Float64(r)
			}
			out[ci] = engine.NewFloatColumn(col.Name(), vals)
		case *engine.StringColumn:
			codes := make([]uint32, rows)
			for i, r := range perm {
				codes[i] = col.Code(r)
			}
			dict := make([]string, col.Cardinality())
			for i := range dict {
				dict[i] = col.DictValue(uint32(i))
			}
			sc, err := engine.NewStringColumnFromDict(col.Name(), codes, dict)
			if err != nil {
				return nil, err
			}
			out[ci] = sc
		case *engine.BoolColumn:
			vals := make([]bool, rows)
			for i, r := range perm {
				vals[i] = col.Bool(r)
			}
			out[ci] = engine.NewBoolColumn(col.Name(), vals)
		default:
			return nil, fmt.Errorf("colfile: cannot persist column %q of type %T", col.Name(), col)
		}
	}
	return out, nil
}

// Zero-copy little-endian byte views of value vectors (§5). Valid
// only on little-endian hosts, which Write checks up front.

func int64Bytes(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

func float64Bytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

func uint32Bytes(v []uint32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)
}

func boolBytes(v []bool) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v))
}
