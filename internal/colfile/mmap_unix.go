//go:build linux || darwin

package colfile

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile memory-maps path read-only. The returned bytes alias the
// page cache: nothing is read until touched, which is what makes
// Open O(metadata) on tables far larger than RAM. The closer unmaps.
// An empty file cannot be mapped (and cannot be a colfile); it is
// reported as truncated rather than as an mmap errno.
func mapFile(path string) ([]byte, func() error, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer fd.Close() // the mapping outlives the descriptor
	st, err := fd.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size < headerSize+trailerSize {
		return nil, nil, fmt.Errorf("file is %d bytes, smaller than the %d-byte fixed framing (§3)",
			size, headerSize+trailerSize)
	}
	if int64(int(size)) != size {
		return nil, nil, fmt.Errorf("file is %d bytes, beyond this platform's address space", size)
	}
	data, err := syscall.Mmap(int(fd.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("mmap: %w", err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
