// Package colfile reads and writes the Charles columnar file format
// (.chc): a footer-indexed binary file of per-chunk column pages —
// raw values, string dictionaries, and precomputed zone-map and
// code-presence summaries — designed to be opened by memory-mapping
// so a server starts in milliseconds on tables far larger than RAM.
//
// The format is specified normatively in docs/FORMAT.md; section
// references below (§N) point into that document. The reader
// implements engine.ColumnBackend: Open maps the file and hands the
// engine zero-copy column vectors that alias the mapping, plus the
// persisted chunk summaries at the file's native chunk width, so no
// row is touched until a scan actually needs it.
//
// Structural validation (magic, version, checksummed footer, region
// bounds and alignment) happens at Open and costs O(columns), not
// O(rows). Full page-checksum verification is a separate, explicit
// pass (File.Verify, charles-ingest -verify) because it faults in
// every byte of the file.
package colfile

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"charles/internal/engine"
)

// Magic opens and closes every colfile (§4): eight fixed bytes that
// identify the format before any length field is trusted.
const Magic = "CHARLCOL"

// Version is the format version this package writes and the only
// one it accepts (§10).
const Version = 1

// headerSize is the fixed byte length of the file header (§4.1):
// magic, u32 version, u32 flags.
const headerSize = 16

// trailerSize is the fixed byte length of the file trailer (§4.2):
// u64 footer length, u32 footer CRC, u32 reserved, magic.
const trailerSize = 24

// Extension is the conventional file suffix.
const Extension = ".chc"

// overflowLen is the sentinel in a sparse code-presence summary
// marking a chunk that held too many distinct codes to list (§7.3).
const overflowLen = 0xFFFFFFFF

// footer is the file's table of contents, serialized as UTF-8 JSON
// immediately before the trailer (§8). Offsets are absolute file
// offsets; readers must treat them as the only source of region
// placement and must ignore unknown fields (§10).
type footer struct {
	Version   uint32       `json:"version"`
	Table     string       `json:"table"`
	Rows      int64        `json:"rows"`
	ChunkRows int64        `json:"chunk_rows"`
	ClusterBy string       `json:"cluster_by,omitempty"`
	Columns   []columnMeta `json:"columns"`
}

// region locates one contiguous byte range of the file (§3). CRC is
// the IEEE CRC-32 of the region's bytes (§9); zero in the data
// region, whose integrity is tracked per page instead.
type region struct {
	Offset int64  `json:"offset"`
	Length int64  `json:"length"`
	CRC    uint32 `json:"crc32,omitempty"`
}

// columnMeta describes one column (§8): its value-page region, page
// checksums, and — for string columns — the dictionary region, plus
// an optional summary region holding the persisted zone map.
type columnMeta struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Data holds the column's value pages, concatenated in chunk
	// order with no padding between pages (§5).
	Data region `json:"data"`
	// PageCRCs[i] is the IEEE CRC-32 of chunk i's page bytes (§9).
	PageCRCs []uint32 `json:"page_crc32s"`
	// Dict locates the dictionary region of a string column (§6).
	Dict *region `json:"dict,omitempty"`
	// DictCount is the number of dictionary entries.
	DictCount int64 `json:"dict_count,omitempty"`
	// Summary locates the column's persisted zone map (§7).
	Summary *region `json:"summary,omitempty"`
}

// elemSize returns the fixed per-row byte width of a kind's value
// encoding (§5), or 0 for kinds the format does not store.
func elemSize(k engine.Kind) int64 {
	switch k {
	case engine.KindInt, engine.KindDate:
		return 8
	case engine.KindFloat:
		return 8
	case engine.KindString:
		return 4
	case engine.KindBool:
		return 1
	default:
		return 0
	}
}

// elemAlign returns the required 2^n byte alignment of a kind's data
// region (§2): the natural alignment of its element type, so a
// memory-mapped region can be viewed as a typed slice directly.
func elemAlign(k engine.Kind) int64 {
	if k == engine.KindBool {
		return 1
	}
	return elemSize(k)
}

// hostLittleEndian reports whether this machine stores integers the
// way the format does (§2). The zero-copy mmap views require it;
// big-endian hosts get a descriptive error instead of garbage.
func hostLittleEndian() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}

// byteReader is a bounds-checked little-endian cursor over a region.
// Every decode path in the package goes through it so corrupt or
// truncated regions produce errors, never panics.
type byteReader struct {
	b   []byte
	off int
	err error
}

func (r *byteReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *byteReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail("colfile: region truncated: need %d bytes at offset %d of %d", n, r.off, len(r.b))
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *byteReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *byteReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *byteReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// done reports any accumulated error, and flags trailing garbage:
// a region must be consumed exactly.
func (r *byteReader) done(what string) error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("colfile: %s region has %d trailing bytes", what, len(r.b)-r.off)
	}
	return nil
}

// encodeDict serializes a string dictionary (§6): u32 entry count,
// then for each entry a u32 byte length and the UTF-8 bytes.
func encodeDict(dict []string) []byte {
	size := 4
	for _, s := range dict {
		size += 4 + len(s)
	}
	out := make([]byte, 0, size)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(dict)))
	for _, s := range dict {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(s)))
		out = append(out, s...)
	}
	return out
}

// decodeDict parses a dictionary region (§6).
func decodeDict(b []byte) ([]string, error) {
	r := &byteReader{b: b}
	n := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	// Every entry costs at least its 4-byte length prefix, so the
	// count is bounded by the region size; checking before the
	// allocation keeps a hostile count from sizing the slice.
	if int64(n)*4 > int64(len(b)-4) {
		return nil, fmt.Errorf("colfile: dictionary claims %d entries in a %d-byte region (§6)", n, len(b))
	}
	dict := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		slen := r.u32()
		sb := r.take(int(slen))
		if r.err != nil {
			return nil, fmt.Errorf("colfile: dictionary entry %d: %w", i, r.err)
		}
		dict = append(dict, string(sb))
	}
	if err := r.done("dictionary"); err != nil {
		return nil, err
	}
	return dict, nil
}

// Summary form tags (§7.3).
const (
	summaryFormDenseBits  = 1
	summaryFormSparseList = 2
)

// encodeSummary serializes a column's zone map (§7). The layout is
// keyed by the column kind, which the footer already records, so the
// region itself carries only the string-presence form tag.
func encodeSummary(k engine.Kind, d engine.SummaryData) []byte {
	var out []byte
	switch k {
	case engine.KindInt, engine.KindDate:
		out = make([]byte, 0, 16*len(d.IntMin))
		for _, v := range d.IntMin {
			out = binary.LittleEndian.AppendUint64(out, uint64(v))
		}
		for _, v := range d.IntMax {
			out = binary.LittleEndian.AppendUint64(out, uint64(v))
		}
	case engine.KindFloat:
		out = make([]byte, 0, 17*len(d.FloatMin))
		for _, v := range d.FloatMin {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
		for _, v := range d.FloatMax {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
		out = appendBools(out, d.FloatPure)
	case engine.KindString:
		out = binary.LittleEndian.AppendUint32(out, uint32(d.DictLen))
		if d.CodeBits != nil {
			out = append(out, summaryFormDenseBits)
			for _, words := range d.CodeBits {
				for _, w := range words {
					out = binary.LittleEndian.AppendUint64(out, w)
				}
			}
		} else {
			out = append(out, summaryFormSparseList)
			for c, list := range d.CodeList {
				if d.CodeOverflow[c] {
					out = binary.LittleEndian.AppendUint32(out, overflowLen)
					continue
				}
				out = binary.LittleEndian.AppendUint32(out, uint32(len(list)))
				for _, code := range list {
					out = binary.LittleEndian.AppendUint32(out, code)
				}
			}
		}
	case engine.KindBool:
		out = appendBools(nil, d.BoolHasTrue)
		out = appendBools(out, d.BoolHasFalse)
	}
	return out
}

// decodeSummary parses a summary region (§7) for a column of kind k
// spanning numChunks chunks, and validates it via the engine's
// importer so a corrupt summary is rejected, not served.
func decodeSummary(k engine.Kind, b []byte, numChunks int) (*engine.ChunkSummary, error) {
	r := &byteReader{b: b}
	var d engine.SummaryData
	switch k {
	case engine.KindInt, engine.KindDate:
		if int64(len(b)) != int64(numChunks)*16 {
			return nil, fmt.Errorf("colfile: int summary region is %d bytes, want %d for %d chunks (§7.1)", len(b), numChunks*16, numChunks)
		}
		d.IntMin = make([]int64, numChunks)
		d.IntMax = make([]int64, numChunks)
		for i := range d.IntMin {
			d.IntMin[i] = int64(r.u64())
		}
		for i := range d.IntMax {
			d.IntMax[i] = int64(r.u64())
		}
	case engine.KindFloat:
		if int64(len(b)) != int64(numChunks)*17 {
			return nil, fmt.Errorf("colfile: float summary region is %d bytes, want %d for %d chunks (§7.2)", len(b), numChunks*17, numChunks)
		}
		d.FloatMin = make([]float64, numChunks)
		d.FloatMax = make([]float64, numChunks)
		for i := range d.FloatMin {
			d.FloatMin[i] = math.Float64frombits(r.u64())
		}
		for i := range d.FloatMax {
			d.FloatMax[i] = math.Float64frombits(r.u64())
		}
		var err error
		if d.FloatPure, err = takeBools(r, numChunks); err != nil {
			return nil, err
		}
	case engine.KindString:
		d.DictLen = int(r.u32())
		form := r.u8()
		switch {
		case r.err != nil:
		case form == summaryFormDenseBits:
			if d.DictLen <= 0 {
				return nil, fmt.Errorf("colfile: dense code summary with dictionary length %d", d.DictLen)
			}
			words := (d.DictLen + 63) / 64
			// The per-chunk word count derives from the in-region
			// DictLen, so bound the total against the region size
			// before any chunk's bitset is allocated.
			if int64(words)*8*int64(numChunks) != int64(len(b))-5 {
				return nil, fmt.Errorf("colfile: dense code summary region is %d bytes, want %d for %d chunks of %d words (§7.3)",
					len(b), 5+words*8*numChunks, numChunks, words)
			}
			d.CodeBits = make([][]uint64, numChunks)
			for c := range d.CodeBits {
				bits := make([]uint64, words)
				for w := range bits {
					bits[w] = r.u64()
				}
				d.CodeBits[c] = bits
			}
		case form == summaryFormSparseList:
			d.CodeList = make([][]uint32, numChunks)
			d.CodeOverflow = make([]bool, numChunks)
			for c := range d.CodeList {
				n := r.u32()
				if n == overflowLen {
					d.CodeOverflow[c] = true
					continue
				}
				if int64(n)*4 > int64(len(b)) {
					return nil, fmt.Errorf("colfile: chunk %d code list claims %d entries in a %d-byte region", c, n, len(b))
				}
				list := make([]uint32, n)
				for i := range list {
					list[i] = r.u32()
				}
				d.CodeList[c] = list
			}
		default:
			return nil, fmt.Errorf("colfile: unknown code summary form %d", form)
		}
	case engine.KindBool:
		var err error
		if d.BoolHasTrue, err = takeBools(r, numChunks); err != nil {
			return nil, err
		}
		if d.BoolHasFalse, err = takeBools(r, numChunks); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("colfile: summary for unsummarized kind %v", k)
	}
	if err := r.done("summary"); err != nil {
		return nil, err
	}
	return engine.ImportSummary(d, numChunks)
}

// appendBools encodes a bool slice as one byte per value (§2).
func appendBools(out []byte, vals []bool) []byte {
	for _, v := range vals {
		if v {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	return out
}

// takeBools decodes n one-byte booleans, rejecting bytes other than
// 0 and 1 (§2).
func takeBools(r *byteReader, n int) ([]bool, error) {
	b := r.take(n)
	if r.err != nil {
		return nil, r.err
	}
	out := make([]bool, n)
	for i, v := range b {
		if v > 1 {
			return nil, fmt.Errorf("colfile: boolean byte 0x%02x at index %d, want 0 or 1", v, i)
		}
		out[i] = v == 1
	}
	return out, nil
}
