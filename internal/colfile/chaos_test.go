// Chaos tests for the storage failpoints: every injected I/O fault
// must surface as a descriptive error — never a panic, never a
// half-open file — and once the fault is disarmed the same path must
// open clean and verify clean.
package colfile

import (
	"errors"
	"strings"
	"testing"

	"charles/internal/fault"
)

// armChaos resets the global fault registry, arms one site, and
// guarantees a clean registry for whichever test runs next.
func armChaos(t *testing.T, site, spec string) {
	t.Helper()
	fault.Reset()
	t.Cleanup(fault.Reset)
	if err := fault.Enable(site, spec); err != nil {
		t.Fatal(err)
	}
}

func TestChaosOpenFault(t *testing.T) {
	path, _ := writeTestFile(t)
	armChaos(t, "colfile.open", "error(disk cable wiggled loose)")

	_, err := Open(path)
	if err == nil {
		t.Fatal("open succeeded under an injected open fault")
	}
	var inj *fault.InjectedError
	if !errors.As(err, &inj) || inj.Site != "colfile.open" {
		t.Fatalf("err = %v, want a wrapped InjectedError from colfile.open", err)
	}
	for _, want := range []string{"colfile: opening", path, "disk cable wiggled loose"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}

	// Disarmed, the identical path opens and verifies clean.
	fault.Reset()
	f, err := Open(path)
	if err != nil {
		t.Fatalf("open after disarm: %v", err)
	}
	defer f.Close()
	if err := f.Verify(); err != nil {
		t.Fatalf("verify after disarm: %v", err)
	}
}

func TestChaosReadPageFault(t *testing.T) {
	path, _ := writeTestFile(t)
	armChaos(t, "colfile.readPage", "error(torn page)")

	_, err := Open(path)
	if err == nil {
		t.Fatal("open succeeded under an injected page-read fault")
	}
	for _, want := range []string{"reading value pages", "torn page", "column"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}

	fault.Reset()
	if f, err := Open(path); err != nil {
		t.Fatalf("open after disarm: %v", err)
	} else {
		f.Close()
	}
}

func TestChaosReadPageBudgetedFault(t *testing.T) {
	path, _ := writeTestFile(t)
	// A one-shot fault: the first page read fails, the retry succeeds
	// — the transient-error shape real storage produces.
	armChaos(t, "colfile.readPage", "1*error(transient)")

	if _, err := Open(path); err == nil {
		t.Fatal("first open ignored the budgeted fault")
	}
	f, err := Open(path)
	if err != nil {
		t.Fatalf("retry after budget exhausted: %v", err)
	}
	f.Close()
	if got := fault.Triggered("colfile.readPage"); got != 1 {
		t.Fatalf("trigger count = %d, want 1", got)
	}
}

func TestChaosVerifyFault(t *testing.T) {
	path, _ := writeTestFile(t)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	armChaos(t, "colfile.verify", "error(checksum engine on fire)")
	verr := f.Verify()
	if verr == nil {
		t.Fatal("verify passed under an injected fault")
	}
	for _, want := range []string{"verifying pages", "checksum engine on fire"} {
		if !strings.Contains(verr.Error(), want) {
			t.Fatalf("error %q does not mention %q", verr, want)
		}
	}
	fault.Reset()
	if err := f.Verify(); err != nil {
		t.Fatalf("verify after disarm: %v", err)
	}
}

func TestChaosBackendColumnFault(t *testing.T) {
	path, _ := writeTestFile(t)
	armChaos(t, "engine.backendColumn", "error(backend hiccup)")

	_, err := OpenTable(path)
	if err == nil {
		t.Fatal("OpenTable succeeded under an injected backend fault")
	}
	for _, want := range []string{"fetching column", "backend hiccup"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}

	fault.Reset()
	tab, err := OpenTable(path)
	if err != nil {
		t.Fatalf("OpenTable after disarm: %v", err)
	}
	tab.Close()
}

// TestChaosOpenNeverPanics drives every storage failpoint in sequence
// against one file: whatever is armed, Open either succeeds or
// returns an error — the process never dies. The deferred recover
// turns any escape into a test failure with the site name attached.
func TestChaosOpenNeverPanics(t *testing.T) {
	path, _ := writeTestFile(t)
	for _, site := range []string{"colfile.open", "colfile.readPage", "engine.backendColumn"} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("site %s: panic escaped Open: %v", site, r)
				}
			}()
			armChaos(t, site, "error(chaos)")
			if tab, err := OpenTable(path); err == nil {
				tab.Close()
				t.Errorf("site %s: fault did not fire", site)
			}
		}()
	}
	fault.Reset()
	tab, err := OpenTable(path)
	if err != nil {
		t.Fatalf("clean reopen after the chaos sweep: %v", err)
	}
	tab.Close()
}
