//go:build !(linux || darwin)

package colfile

import (
	"fmt"
	"io"
	"os"
	"unsafe"
)

// mapFile on platforms without the syscall.Mmap path reads the whole
// file into memory instead — correctness-preserving, but without the
// lazy-faulting property of the real mapping. The buffer is backed
// by a []uint64 allocation so the 8-byte-aligned typed views in
// read.go stay well-defined.
func mapFile(path string) ([]byte, func() error, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer fd.Close()
	st, err := fd.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size < headerSize+trailerSize {
		return nil, nil, fmt.Errorf("file is %d bytes, smaller than the %d-byte fixed framing (§3)",
			size, headerSize+trailerSize)
	}
	if int64(int(size)) != size {
		return nil, nil, fmt.Errorf("file is %d bytes, beyond this platform's address space", size)
	}
	words := make([]uint64, (size+7)/8)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	if _, err := io.ReadFull(fd, buf); err != nil {
		return nil, nil, err
	}
	return buf, func() error { return nil }, nil
}
