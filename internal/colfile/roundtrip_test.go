package colfile

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"charles/internal/engine"
)

// testTable builds a deterministic table exercising every storable
// kind (§5): ints, dates, floats with NaN rows, a small-dictionary
// string column (dense presence form, §7.3), a high-cardinality
// string column (sparse presence form), and bools.
func testTable(t *testing.T, rows int, seed int64) *engine.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ints := make([]int64, rows)
	days := make([]int64, rows)
	floats := make([]float64, rows)
	small := make([]string, rows)
	wide := make([]string, rows)
	bools := make([]bool, rows)
	cities := []string{"amsterdam", "batavia", "cape town", "galle", "texel"}
	for i := 0; i < rows; i++ {
		ints[i] = rng.Int63n(2000) - 500
		days[i] = 10000 + rng.Int63n(4000)
		if rng.Intn(17) == 0 {
			floats[i] = math.NaN()
		} else {
			floats[i] = rng.NormFloat64() * 40
		}
		small[i] = cities[rng.Intn(len(cities))]
		wide[i] = "v" + string(rune('a'+rng.Intn(26))) + string(rune('a'+rng.Intn(26))) + string(rune('a'+rng.Intn(26)))
		bools[i] = rng.Intn(3) == 0
	}
	tab, err := engine.NewTable("roundtrip",
		engine.NewIntColumn("tonnage", ints),
		engine.NewDateColumn("departure", days),
		engine.NewFloatColumn("latitude", floats),
		engine.NewStringColumn("harbour", small),
		engine.NewStringColumn("captain", wide),
		engine.NewBoolColumn("lost", bools),
	)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// writeOpen writes tab and reopens it through the mmap path.
func writeOpen(t *testing.T, tab *engine.Table, opts WriteOptions) (*File, *engine.Table) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "table"+Extension)
	if err := Write(path, tab, opts); err != nil {
		t.Fatalf("write: %v", err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	got, err := engine.NewTableFromBackend(f)
	if err != nil {
		t.Fatalf("table from backend: %v", err)
	}
	return f, got
}

// sameValue compares values with NaN-aware float equality.
func sameValue(a, b engine.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	if a.Kind() == engine.KindFloat {
		af, bf := a.AsFloat(), b.AsFloat()
		return af == bf || (math.IsNaN(af) && math.IsNaN(bf))
	}
	return a.Equal(b)
}

// TestRoundTripValues pins §5 (value pages), §6 (dictionary) and §8
// (footer schema): every cell read back through the mmap view must
// equal the cell that was written, at several chunk widths including
// ones that leave a partial tail chunk.
func TestRoundTripValues(t *testing.T) {
	const rows = 5000
	want := testTable(t, rows, 1)
	for _, chunkRows := range []int{0, 512, 4096} {
		f, got := writeOpen(t, want, WriteOptions{ChunkRows: chunkRows})
		if got.Name() != want.Name() {
			t.Fatalf("chunkRows=%d: table name %q, want %q", chunkRows, got.Name(), want.Name())
		}
		if got.NumRows() != rows || got.NumCols() != want.NumCols() {
			t.Fatalf("chunkRows=%d: got %dx%d, want %dx%d",
				chunkRows, got.NumRows(), got.NumCols(), rows, want.NumCols())
		}
		wantWidth := engine.NormalizeChunkRows(chunkRows)
		if chunkRows == 0 {
			wantWidth = want.ChunkRows()
		}
		if f.NativeChunkRows() != wantWidth {
			t.Fatalf("chunkRows=%d: file width %d, want %d", chunkRows, f.NativeChunkRows(), wantWidth)
		}
		for ci := 0; ci < want.NumCols(); ci++ {
			wc, gc := want.Column(ci), got.Column(ci)
			if wc.Name() != gc.Name() || wc.Kind() != gc.Kind() {
				t.Fatalf("column %d: got %q/%v, want %q/%v", ci, gc.Name(), gc.Kind(), wc.Name(), wc.Kind())
			}
			for r := 0; r < rows; r++ {
				if !sameValue(wc.Value(r), gc.Value(r)) {
					t.Fatalf("chunkRows=%d: column %q row %d: got %v, want %v",
						chunkRows, wc.Name(), r, gc.Value(r), wc.Value(r))
				}
			}
		}
		if err := f.Verify(); err != nil {
			t.Fatalf("verify clean file: %v", err)
		}
	}
}

// TestRoundTripSummaries pins §7: the zone maps persisted at write
// time and served back through the backend must be byte-identical,
// under encodeSummary, to the ones the engine builds by scanning the
// reopened columns — same bounds, same NaN purity, same presence
// form and contents.
func TestRoundTripSummaries(t *testing.T) {
	want := testTable(t, 3000, 2)
	f, got := writeOpen(t, want, WriteOptions{ChunkRows: 256})
	for ci := 0; ci < got.NumCols(); ci++ {
		kind := got.Column(ci).Kind()
		served, ok := f.ChunkSummary(ci, f.NativeChunkRows())
		if !ok {
			t.Fatalf("column %d: no persisted summary at native width", ci)
		}
		if _, ok := f.ChunkSummary(ci, f.NativeChunkRows()*2); ok {
			t.Fatalf("column %d: summary served at a foreign chunk width", ci)
		}
		// Rebuild by scanning the mapped columns via a fresh memory
		// table — the ground truth the persisted summary must match.
		mem, err := engine.NewTable(got.Name(), got.Columns()...)
		if err != nil {
			t.Fatal(err)
		}
		mem.SetChunkRows(256)
		built := mem.Summary(ci)
		if !bytes.Equal(encodeSummary(kind, served.Export()), encodeSummary(kind, built.Export())) {
			t.Fatalf("column %d (%v): persisted summary differs from scan-built summary", ci, kind)
		}
		// And the table over the backend must actually serve the
		// persisted one rather than rebuilding.
		if got.Summary(ci) != served {
			t.Fatalf("column %d: table built its own summary instead of serving the persisted one", ci)
		}
	}
}

// TestClusterByReorders pins WriteOptions.ClusterBy: the clustered
// file holds the same multiset of rows sorted by the cluster column
// (NaN floats last), and records the column in its footer.
func TestClusterByReorders(t *testing.T) {
	want := testTable(t, 4000, 3)
	f, got := writeOpen(t, want, WriteOptions{ChunkRows: 512, ClusterBy: "tonnage"})
	if f.ClusterBy() != "tonnage" {
		t.Fatalf("footer cluster_by = %q, want tonnage", f.ClusterBy())
	}
	key := got.MustColumn("tonnage").(*engine.IntColumn).Int64s()
	for i := 1; i < len(key); i++ {
		if key[i-1] > key[i] {
			t.Fatalf("cluster column not sorted at row %d: %d > %d", i, key[i-1], key[i])
		}
	}
	// Every column must hold the same multiset as the source.
	for ci := 0; ci < want.NumCols(); ci++ {
		wc, gc := want.Column(ci), got.Column(ci)
		ws := make([]string, want.NumRows())
		gs := make([]string, want.NumRows())
		for r := range ws {
			ws[r] = wc.Value(r).String()
			gs[r] = gc.Value(r).String()
		}
		sort.Strings(ws)
		sort.Strings(gs)
		for r := range ws {
			if ws[r] != gs[r] {
				t.Fatalf("column %q: clustered multiset diverged at sorted position %d: %q vs %q",
					wc.Name(), r, gs[r], ws[r])
			}
		}
	}
}

// TestClusterByFloatNaNLast pins the cluster ordering rule for float
// keys: finite values ascend, NaN rows sink to the end.
func TestClusterByFloatNaNLast(t *testing.T) {
	vals := []float64{3, math.NaN(), -1, 2.5, math.NaN(), 0}
	tab, err := engine.NewTable("nan",
		engine.NewFloatColumn("x", vals),
		engine.NewIntColumn("id", []int64{0, 1, 2, 3, 4, 5}),
	)
	if err != nil {
		t.Fatal(err)
	}
	_, got := writeOpen(t, tab, WriteOptions{ClusterBy: "x"})
	x := got.MustColumn("x").(*engine.FloatColumn).Float64s()
	wantOrder := []float64{-1, 0, 2.5, 3, math.NaN(), math.NaN()}
	for i, w := range wantOrder {
		if math.IsNaN(w) != math.IsNaN(x[i]) || (!math.IsNaN(w) && w != x[i]) {
			t.Fatalf("clustered floats[%d] = %v, want %v (full: %v)", i, x[i], w, x)
		}
	}
}

// TestRoundTripEmptyTable pins the zero-row edge: a rows=0 file has
// no pages and no summaries (§5, §7) but must round-trip its schema.
func TestRoundTripEmptyTable(t *testing.T) {
	tab, err := engine.NewTable("empty",
		engine.NewIntColumn("a", nil),
		engine.NewStringColumn("b", nil),
	)
	if err != nil {
		t.Fatal(err)
	}
	f, got := writeOpen(t, tab, WriteOptions{})
	if got.NumRows() != 0 || got.NumCols() != 2 {
		t.Fatalf("got %dx%d, want 0x2", got.NumRows(), got.NumCols())
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("verify empty table: %v", err)
	}
}
