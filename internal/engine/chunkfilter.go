package engine

import "charles/internal/par"

// reserveSegSlots reserves extra scan-pool goroutines for a
// per-chunk fan-out over cs: nothing for selections too small to
// parallelize, and never more than chunks−1 — slots beyond that
// would idle while starving concurrent scans. The paired release
// must always be called. This is the single reservation policy for
// every chunked operation (filters, gathers, reductions, the
// order-statistic sorts), so the sequential-threshold and cap rules
// cannot drift between them.
func reserveSegSlots(cs *ChunkedSelection) (extra int, release func()) {
	workers := ScanWorkers()
	nc := cs.NumChunks()
	if workers <= 1 || nc <= 1 || cs.Len() < parallelScanMinRows {
		return 0, func() {}
	}
	want := workers - 1
	if want > nc-1 {
		want = nc - 1
	}
	extra = grabScanSlots(want, workers)
	return extra, func() { releaseScanSlots(extra) }
}

// forEachSeg runs fn(c) once per chunk of cs, fanning chunks out
// across the scan worker pool. Unlike the flat statChunks splitter —
// which cuts a selection into exactly worker-count pieces — a
// chunked selection usually has far more chunks than workers, so the
// chunks stream through par.ForEach's shared work queue. Small
// selections and slot-exhausted processes stay on the calling
// goroutine, exactly like the flat path. Callers assemble results by
// chunk index, so scheduling never influences output.
func forEachSeg(cs *ChunkedSelection, fn func(c int)) {
	n := cs.NumChunks()
	if n == 0 {
		return
	}
	extra, release := reserveSegSlots(cs)
	defer release()
	if extra == 0 {
		for c := 0; c < n; c++ {
			fn(c)
		}
		return
	}
	_ = par.ForEach(extra+1, n, func(c int) error {
		fn(c)
		return nil
	})
}

// chunkVerdict is a zone-map decision for one chunk.
type chunkVerdict uint8

const (
	// chunkScan: the predicate must be evaluated row by row.
	chunkScan chunkVerdict = iota
	// chunkSkip: no row of the chunk can match; the segment is
	// dropped without a scan.
	chunkSkip
	// chunkTake: every row of the chunk matches; the parent segment
	// passes through by reference without a scan.
	chunkTake
)

// filterSegs is the shared chunked-filter driver: verdict prunes or
// passes whole chunks from the zone map, scan narrows the rest
// through the same typed kernels the flat filters use, and the
// per-chunk outputs are reassembled in chunk order.
func filterSegs(cs *ChunkedSelection, verdict func(c int) chunkVerdict, scan func(seg Selection) Selection) *ChunkedSelection {
	m := metricsHook.Load()
	m.VectorKernels.Inc()
	out := make([]Selection, cs.NumChunks())
	forEachSeg(cs, func(c int) {
		seg := cs.Seg(c)
		if len(seg) == 0 {
			return
		}
		v := verdict(c)
		m.countVerdict(v)
		switch v {
		case chunkSkip:
		case chunkTake:
			out[c] = seg
		default:
			out[c] = scan(seg)
		}
	})
	return NewChunkedSelection(cs.nRows, cs.chunkRows, out)
}

// emptyLike returns the all-empty selection in cs's layout.
func emptyLike(cs *ChunkedSelection) *ChunkedSelection {
	return NewChunkedSelection(cs.nRows, cs.chunkRows, make([]Selection, cs.NumChunks()))
}

// scanAlways is the verdict for predicates without a zone map.
func scanAlways(int) chunkVerdict { return chunkScan }

// intRangeVerdict classifies a chunk against a range predicate: skip
// when the chunk's value interval misses [r.Lo, r.Hi] entirely, take
// when the range covers it, scan otherwise. The skip test compares
// against the closed hull of r, which is conservative for exclusive
// bounds; the take test uses r.Contains on both extremes, which is
// exact because Contains is monotone over an interval.
func intRangeVerdict(sum *ChunkSummary, r IntRange) func(c int) chunkVerdict {
	if sum == nil {
		return scanAlways
	}
	return func(c int) chunkVerdict {
		lo, hi := sum.IntBounds(c)
		if hi < r.Lo || lo > r.Hi {
			return chunkSkip
		}
		if r.Contains(lo) && r.Contains(hi) {
			return chunkTake
		}
		return chunkScan
	}
}

// floatRangeVerdict is intRangeVerdict over floats, complicated by
// NaN: FloatRange.Contains(NaN) is true (NaN fails both exclusion
// comparisons), so the flat filter keeps NaN rows in every range and
// the chunked path must match it exactly. Skipping therefore needs
// the zone map's proof that the chunk is NaN-free — its finite
// bounds say nothing about NaN rows, which would always match.
// Taking needs no such proof: if the NaN-ignoring bounds fall inside
// the range then every finite row matches, and the NaN rows match by
// the Contains convention (an all-NaN chunk takes too: its NaN
// bounds make Contains true).
func floatRangeVerdict(sum *ChunkSummary, r FloatRange) func(c int) chunkVerdict {
	if sum == nil {
		return scanAlways
	}
	return func(c int) chunkVerdict {
		lo, hi, pure := sum.FloatBounds(c)
		if pure && (hi < r.Lo || lo > r.Hi) {
			return chunkSkip
		}
		if r.Contains(lo) && r.Contains(hi) {
			return chunkTake
		}
		return chunkScan
	}
}

// FilterIntRangeChunked narrows cs to rows whose column value lies
// in r, chunk by chunk, skipping chunks the zone map rules out and
// passing through chunks it proves fully inside.
func FilterIntRangeChunked(col IntValued, cs *ChunkedSelection, r IntRange, sum *ChunkSummary) *ChunkedSelection {
	return filterSegs(cs, intRangeVerdict(sum, r), func(seg Selection) Selection {
		return scanIntRange(col, seg, r)
	})
}

// FilterFloatRangeChunked is FilterIntRangeChunked over floats.
func FilterFloatRangeChunked(col FloatValued, cs *ChunkedSelection, r FloatRange, sum *ChunkSummary) *ChunkedSelection {
	return filterSegs(cs, floatRangeVerdict(sum, r), func(seg Selection) Selection {
		return scanFloatRange(col, seg, r)
	})
}

// FilterIntSetChunked narrows cs to rows whose int64 value appears
// in values. The zone map prunes chunks whose value interval misses
// the set's hull [min(values), max(values)].
func FilterIntSetChunked(col IntValued, cs *ChunkedSelection, values []int64, sum *ChunkSummary) *ChunkedSelection {
	if len(values) == 0 {
		return emptyLike(cs)
	}
	want, wmin, wmax := int64Set(values)
	verdict := scanAlways
	if sum != nil {
		verdict = func(c int) chunkVerdict {
			lo, hi := sum.IntBounds(c)
			if hi < wmin || lo > wmax {
				return chunkSkip
			}
			return chunkScan
		}
	}
	return filterSegs(cs, verdict, func(seg Selection) Selection {
		return scanIntSet(col, seg, want)
	})
}

// FilterFloatSetChunked is FilterIntSetChunked over floats. NaN rows
// never match a set (map lookups cannot find NaN keys), so — unlike
// the float range filter — hull skipping needs no NaN-free proof.
func FilterFloatSetChunked(col FloatValued, cs *ChunkedSelection, values []float64, sum *ChunkSummary) *ChunkedSelection {
	if len(values) == 0 {
		return emptyLike(cs)
	}
	want, wmin, wmax := float64Set(values)
	verdict := scanAlways
	if sum != nil {
		verdict = func(c int) chunkVerdict {
			lo, hi, _ := sum.FloatBounds(c)
			if hi < wmin || lo > wmax {
				return chunkSkip
			}
			return chunkScan
		}
	}
	return filterSegs(cs, verdict, func(seg Selection) Selection {
		return scanFloatSet(col, seg, want)
	})
}

// codeSetVerdict classifies a chunk against a wanted dictionary-code
// set using the column's presence summary: skip when the chunk holds
// none of the wanted codes, take when every distinct code it holds
// is wanted (so the whole segment passes through by reference), scan
// otherwise. Chunks whose sparse code list overflowed always scan.
func codeSetVerdict(sum *ChunkSummary, want map[uint32]struct{}) func(c int) chunkVerdict {
	if sum == nil || (sum.codeBits == nil && sum.codeList == nil) {
		return scanAlways
	}
	if sum.codeBits != nil {
		wantBits := make([]uint64, (sum.dictLen+63)/64)
		for code := range want {
			if int(code) < sum.dictLen {
				wantBits[code>>6] |= 1 << (code & 63)
			}
		}
		return func(c int) chunkVerdict {
			anyWanted, allWanted := false, true
			for i, present := range sum.codeBits[c] {
				if present&wantBits[i] != 0 {
					anyWanted = true
				}
				if present&^wantBits[i] != 0 {
					allWanted = false
				}
			}
			switch {
			case !anyWanted:
				return chunkSkip
			case allWanted:
				return chunkTake
			default:
				return chunkScan
			}
		}
	}
	return func(c int) chunkVerdict {
		if sum.codeOverflow[c] {
			return chunkScan
		}
		anyWanted, allWanted := false, true
		for _, code := range sum.codeList[c] {
			if _, ok := want[code]; ok {
				anyWanted = true
			} else {
				allWanted = false
			}
			if anyWanted && !allWanted {
				return chunkScan
			}
		}
		switch {
		case !anyWanted:
			return chunkSkip
		case allWanted:
			return chunkTake
		default:
			return chunkScan
		}
	}
}

// boolSetVerdict is codeSetVerdict for the two-value bool domain.
func boolSetVerdict(sum *ChunkSummary, wantTrue, wantFalse bool) func(c int) chunkVerdict {
	if sum == nil || sum.boolHasTrue == nil {
		return scanAlways
	}
	return func(c int) chunkVerdict {
		hasTrue, hasFalse := sum.boolHasTrue[c], sum.boolHasFalse[c]
		anyWanted := (wantTrue && hasTrue) || (wantFalse && hasFalse)
		allWanted := (!hasTrue || wantTrue) && (!hasFalse || wantFalse)
		switch {
		case !anyWanted:
			return chunkSkip
		case allWanted:
			return chunkTake
		default:
			return chunkScan
		}
	}
}

// FilterStringSetChunked narrows cs to rows whose string value is
// one of values, testing membership on dictionary codes. The nominal
// zone map prunes chunks holding no wanted code and passes chunks
// wholesale when every code they hold is wanted.
func FilterStringSetChunked(col *StringColumn, cs *ChunkedSelection, values []string, sum *ChunkSummary) *ChunkedSelection {
	if len(values) == 0 {
		return emptyLike(cs)
	}
	want := stringCodeSet(col, values)
	if len(want) == 0 {
		return emptyLike(cs)
	}
	codes := col.Codes()
	return filterSegs(cs, codeSetVerdict(sum, want), func(seg Selection) Selection {
		return scanCodeSet(codes, seg, want)
	})
}

// FilterStringRangeChunked narrows cs to rows whose string value
// lies in the lexicographic interval [lo, hi]. With a presence
// summary the range is resolved to the set of dictionary codes it
// covers — one pass over the dictionary, not the rows — which both
// turns the per-row test into a dense code probe and lets the same
// verdicts prune and pass chunks exactly like an explicit value set.
// Without one that can actually prune (pruning ablated, a
// summary-less caller, or a sparse summary every chunk of which
// overflowed) the per-row string comparison scan runs directly:
// paying O(dictionary) to build a code set no verdict will profit
// from would make narrow selections over high-cardinality columns
// *slower* than the scan.
func FilterStringRangeChunked(col *StringColumn, cs *ChunkedSelection, lo, hi string, loIncl, hiIncl bool, sum *ChunkSummary) *ChunkedSelection {
	if sum == nil || !sum.canPruneCodes() {
		return filterSegs(cs, scanAlways, func(seg Selection) Selection {
			return scanStringRange(col, seg, lo, hi, loIncl, hiIncl)
		})
	}
	want := stringRangeCodeSet(col, lo, hi, loIncl, hiIncl)
	if len(want) == 0 {
		return emptyLike(cs)
	}
	codes := col.Codes()
	return filterSegs(cs, codeSetVerdict(sum, want), func(seg Selection) Selection {
		return scanCodeSet(codes, seg, want)
	})
}

// FilterBoolSetChunked narrows cs to rows whose boolean value
// appears in values, skipping chunks that hold no wanted value and
// passing chunks every row of which must match.
func FilterBoolSetChunked(col *BoolColumn, cs *ChunkedSelection, values []bool, sum *ChunkSummary) *ChunkedSelection {
	wantTrue, wantFalse := boolWants(values)
	if !wantTrue && !wantFalse {
		return emptyLike(cs)
	}
	return filterSegs(cs, boolSetVerdict(sum, wantTrue, wantFalse), func(seg Selection) Selection {
		return scanBoolSet(col, seg, wantTrue, wantFalse)
	})
}
