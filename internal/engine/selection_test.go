package engine

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllRows(t *testing.T) {
	s := AllRows(5)
	if len(s) != 5 || s[0] != 0 || s[4] != 4 || !s.IsSorted() {
		t.Fatalf("AllRows(5) = %v", s)
	}
	if s := AllRows(0); len(s) != 0 {
		t.Fatalf("AllRows(0) = %v", s)
	}
}

func TestIntersect(t *testing.T) {
	a := Selection{1, 3, 5, 7, 9}
	b := Selection{2, 3, 4, 7, 10}
	got := Intersect(a, b)
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("Intersect = %v, want [3 7]", got)
	}
	if n := IntersectCount(a, b); n != 2 {
		t.Fatalf("IntersectCount = %d, want 2", n)
	}
	if got := Intersect(a, Selection{}); len(got) != 0 {
		t.Fatalf("Intersect with empty = %v", got)
	}
}

func TestIntersectCommutesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSelection(rng, 200)
		b := randomSelection(rng, 200)
		ab := Intersect(a, b)
		ba := Intersect(b, a)
		if len(ab) != len(ba) || len(ab) != IntersectCount(a, b) {
			return false
		}
		for i := range ab {
			if ab[i] != ba[i] {
				return false
			}
		}
		return ab.IsSorted() || len(ab) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectSubsetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSelection(rng, 300)
		// a ∩ a == a, and a ∩ all == a.
		if IntersectCount(a, a) != len(a) {
			return false
		}
		all := AllRows(400)
		got := Intersect(a, all)
		if len(got) != len(a) {
			return false
		}
		for i := range got {
			if got[i] != a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func randomSelection(rng *rand.Rand, universe int) Selection {
	out := Selection{}
	for i := 0; i < universe; i++ {
		if rng.Intn(3) == 0 {
			out = append(out, int32(i))
		}
	}
	return out
}

func TestSelectionClone(t *testing.T) {
	a := Selection{1, 2, 3}
	b := a.Clone()
	b[0] = 9
	if a[0] != 1 {
		t.Fatal("Clone aliased its input")
	}
}

func TestIsSorted(t *testing.T) {
	if !(Selection{}).IsSorted() || !(Selection{1}).IsSorted() || !(Selection{1, 2}).IsSorted() {
		t.Fatal("sorted selections misreported")
	}
	if (Selection{2, 1}).IsSorted() || (Selection{1, 1}).IsSorted() {
		t.Fatal("unsorted/duplicated selections misreported")
	}
}
