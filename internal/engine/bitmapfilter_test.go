package engine

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// bmEqual asserts a fused filter's bitmap equals the pack of the
// corresponding chunked filter's selection: same ones count, same
// materialized rows, and the empty-chunk invariant (nil words where
// no row is selected).
func bmEqual(t *testing.T, name string, got *Bitmap, wantCS *ChunkedSelection) {
	t.Helper()
	want := NewBitmapChunked(wantCS)
	if got.Count() != want.Count() {
		t.Fatalf("%s: fused Count() = %d, packed = %d", name, got.Count(), want.Count())
	}
	if !reflect.DeepEqual(got.Selection(), want.Selection()) {
		t.Fatalf("%s: fused bitmap materializes differently", name)
	}
	for c := 0; c < wantCS.NumChunks(); c++ {
		if len(wantCS.Seg(c)) == 0 && got.chunks[c] != nil {
			t.Fatalf("%s: chunk %d empty but fused bitmap allocated words", name, c)
		}
	}
}

// TestFusedBitmapFiltersMatchChunked is the fused-path equivalence
// property: every Filter*ChunkedBitmap must produce exactly the
// bitmap that packing the corresponding Filter*Chunked result
// produces, over adversarial parent shapes, with and without zone
// maps.
func TestFusedBitmapFiltersMatchChunked(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, nRows := range []int{1, 130, 1000} {
		chunkRows := 64
		tab := chunkTestTable(t, nRows, chunkRows, rng)
		ton := tab.MustColumn("ton").(*IntColumn)
		speed := tab.MustColumn("speed").(*FloatColumn)
		typ := tab.MustColumn("type").(*StringColumn)
		armed := tab.MustColumn("armed").(*BoolColumn)
		tonSum := tab.SummaryByName("ton")
		speedSum := tab.SummaryByName("speed")
		typSum := tab.SummaryByName("type")
		armedSum := tab.SummaryByName("armed")
		ranges := []IntRange{
			{Lo: 0, Hi: int64(nRows * 2), LoIncl: true, HiIncl: true},
			{Lo: int64(nRows * 3), Hi: int64(nRows * 4), LoIncl: true},
			{Lo: 100, Hi: 300, LoIncl: true, HiIncl: false},
		}
		for _, sel := range adversarialSelections(nRows, chunkRows, rng) {
			cs := ChunkSelection(sel, nRows, chunkRows)
			for _, sum := range []*ChunkSummary{tonSum, nil} {
				for _, r := range ranges {
					bmEqual(t, "FilterIntRangeChunkedBitmap",
						FilterIntRangeChunkedBitmap(ton, cs, r, sum),
						FilterIntRangeChunked(ton, cs, r, sum))
				}
				bmEqual(t, "FilterIntSetChunkedBitmap",
					FilterIntSetChunkedBitmap(ton, cs, []int64{0, 17, 100, 999}, sum),
					FilterIntSetChunked(ton, cs, []int64{0, 17, 100, 999}, sum))
			}
			fr := FloatRange{Lo: 5, Hi: 30, LoIncl: true, HiIncl: true}
			bmEqual(t, "FilterFloatRangeChunkedBitmap",
				FilterFloatRangeChunkedBitmap(speed, cs, fr, speedSum),
				FilterFloatRangeChunked(speed, cs, fr, speedSum))
			frAll := FloatRange{Lo: math.Inf(-1), Hi: math.Inf(1), LoIncl: true, HiIncl: true}
			bmEqual(t, "FilterFloatRangeChunkedBitmap all",
				FilterFloatRangeChunkedBitmap(speed, cs, frAll, speedSum),
				FilterFloatRangeChunked(speed, cs, frAll, speedSum))
			bmEqual(t, "FilterFloatSetChunkedBitmap",
				FilterFloatSetChunkedBitmap(speed, cs, []float64{3, 20}, speedSum),
				FilterFloatSetChunked(speed, cs, []float64{3, 20}, speedSum))
			for _, sum := range []*ChunkSummary{typSum, nil} {
				bmEqual(t, "FilterStringSetChunkedBitmap",
					FilterStringSetChunkedBitmap(typ, cs, []string{"fluit", "galjoot"}, sum),
					FilterStringSetChunked(typ, cs, []string{"fluit", "galjoot"}, sum))
				bmEqual(t, "FilterStringRangeChunkedBitmap",
					FilterStringRangeChunkedBitmap(typ, cs, "g", "k", true, false, sum),
					FilterStringRangeChunked(typ, cs, "g", "k", true, false, sum))
			}
			bmEqual(t, "FilterBoolSetChunkedBitmap",
				FilterBoolSetChunkedBitmap(armed, cs, []bool{true}, armedSum),
				FilterBoolSetChunked(armed, cs, []bool{true}, armedSum))
			bmEqual(t, "FilterBoolSetChunkedBitmap both",
				FilterBoolSetChunkedBitmap(armed, cs, []bool{true, false}, armedSum),
				FilterBoolSetChunked(armed, cs, []bool{true, false}, armedSum))
		}
	}
}

// TestFusedBitmapEmptySets pins the degenerate inputs: empty or
// unresolvable value sets produce the all-empty bitmap in the
// parent's layout.
func TestFusedBitmapEmptySets(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tab := chunkTestTable(t, 300, 64, rng)
	typ := tab.MustColumn("type").(*StringColumn)
	ton := tab.MustColumn("ton").(*IntColumn)
	all := tab.AllChunked()
	for name, bm := range map[string]*Bitmap{
		"string empty":      FilterStringSetChunkedBitmap(typ, all, nil, tab.SummaryByName("type")),
		"string unresolved": FilterStringSetChunkedBitmap(typ, all, []string{"nope"}, tab.SummaryByName("type")),
		"int empty":         FilterIntSetChunkedBitmap(ton, all, nil, tab.SummaryByName("ton")),
		"bool empty":        FilterBoolSetChunkedBitmap(tab.MustColumn("armed").(*BoolColumn), all, nil, tab.SummaryByName("armed")),
	} {
		if bm.Count() != 0 || len(bm.Selection()) != 0 {
			t.Fatalf("%s: expected empty bitmap, got %d rows", name, bm.Count())
		}
		if bm.NumRows() != 300 {
			t.Fatalf("%s: universe %d, want 300", name, bm.NumRows())
		}
	}
}
