package engine

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// selEqual compares a chunked selection's flat view to a flat one.
func selEqual(t *testing.T, name string, got *ChunkedSelection, want Selection) {
	t.Helper()
	flat := got.Flat()
	if len(flat) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(flat, want) {
		t.Fatalf("%s: chunked %v != monolithic %v", name, flat, want)
	}
	if got.Len() != len(want) {
		t.Fatalf("%s: Len() = %d, want %d", name, got.Len(), len(want))
	}
}

// adversarialSelections generates the shapes the chunk math can get
// wrong: empty, single row, runs straddling chunk edges, exactly one
// chunk, final partial chunk, rows only in the first and last chunk
// (every middle chunk empty), and dense random selections.
func adversarialSelections(nRows, chunkRows int, rng *rand.Rand) []Selection {
	sels := []Selection{
		{},
		{0},
		{int32(nRows - 1)},
		AllRows(nRows),
	}
	// A run straddling every chunk boundary.
	var straddle Selection
	for b := chunkRows; b < nRows; b += chunkRows {
		for d := -2; d <= 1; d++ {
			r := b + d
			if r >= 0 && r < nRows {
				straddle = append(straddle, int32(r))
			}
		}
	}
	if len(straddle) > 0 {
		sels = append(sels, straddle)
	}
	// First and last chunk only: middle chunks all empty.
	var sparse Selection
	for r := 0; r < nRows && r < 3; r++ {
		sparse = append(sparse, int32(r))
	}
	for r := nRows - 3; r < nRows; r++ {
		if r >= 3 {
			sparse = append(sparse, int32(r))
		}
	}
	sels = append(sels, sparse)
	// Random selections at several densities.
	for _, p := range []float64{0.01, 0.3, 0.9} {
		var s Selection
		for r := 0; r < nRows; r++ {
			if rng.Float64() < p {
				s = append(s, int32(r))
			}
		}
		sels = append(sels, s)
	}
	return sels
}

func TestChunkSelectionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, nRows := range []int{0, 1, 63, 64, 100, 1000} {
		for _, chunkRows := range []int{64, 128, 448, 1024} {
			for _, sel := range adversarialSelections(nRows, chunkRows, rng) {
				cs := ChunkSelection(sel, nRows, chunkRows)
				selEqual(t, "roundtrip", cs, sel)
				// Every segment's rows must fall inside its chunk.
				for c := 0; c < cs.NumChunks(); c++ {
					for _, row := range cs.Seg(c) {
						if int(row)/chunkRows != c {
							t.Fatalf("row %d filed under chunk %d (chunkRows=%d)", row, c, chunkRows)
						}
					}
				}
			}
		}
	}
}

func TestAllRowsChunkedMatchesAllRows(t *testing.T) {
	for _, nRows := range []int{0, 1, 64, 65, 1000} {
		cs := AllRowsChunked(nRows, 64)
		selEqual(t, "allrows", cs, AllRows(nRows))
	}
}

// chunkTestTable builds a table whose columns exercise every filter
// kind, with values arranged so zone maps both skip and take chunks.
func chunkTestTable(t *testing.T, nRows, chunkRows int, rng *rand.Rand) *Table {
	ints := make([]int64, nRows)
	floats := make([]float64, nRows)
	strs := make([]string, nRows)
	bools := make([]bool, nRows)
	dict := []string{"fluit", "jacht", "pinas", "galjoot"}
	for i := range ints {
		// Increasing-by-region ints make whole chunks skippable and
		// takable; the jitter keeps boundaries honest.
		ints[i] = int64(i/10*10) + rng.Int63n(7)
		floats[i] = float64(rng.Intn(50))
		if rng.Intn(97) == 0 {
			floats[i] = math.NaN()
		}
		strs[i] = dict[rng.Intn(len(dict))]
		bools[i] = rng.Intn(2) == 0
	}
	tab := MustNewTable("chunked",
		NewIntColumn("ton", ints),
		NewFloatColumn("speed", floats),
		NewStringColumn("type", strs),
		NewBoolColumn("armed", bools),
	)
	tab.SetChunkRows(chunkRows)
	return tab
}

// TestChunkedFiltersMatchMonolithic is the central equivalence
// property: every chunked filter must produce exactly the selection
// its monolithic counterpart produces, for every adversarial parent
// selection shape, with and without the zone map.
func TestChunkedFiltersMatchMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, nRows := range []int{1, 130, 1000} {
		chunkRows := 64
		tab := chunkTestTable(t, nRows, chunkRows, rng)
		ton := tab.MustColumn("ton").(*IntColumn)
		speed := tab.MustColumn("speed").(*FloatColumn)
		typ := tab.MustColumn("type").(*StringColumn)
		armed := tab.MustColumn("armed").(*BoolColumn)
		tonSum := tab.SummaryByName("ton")
		speedSum := tab.SummaryByName("speed")
		if tonSum == nil || speedSum == nil {
			t.Fatal("numeric columns must have zone maps")
		}
		typSum := tab.SummaryByName("type")
		armedSum := tab.SummaryByName("armed")
		if typSum == nil || armedSum == nil {
			t.Fatal("nominal columns must have presence zone maps")
		}
		ranges := []IntRange{
			{Lo: 0, Hi: int64(nRows * 2), LoIncl: true, HiIncl: true},  // covers all: take path
			{Lo: int64(nRows * 3), Hi: int64(nRows * 4), LoIncl: true}, // misses all: skip path
			{Lo: 100, Hi: 300, LoIncl: true, HiIncl: false},            // mixed
			{Lo: 42, Hi: 42, LoIncl: true, HiIncl: true},               // point
			{Lo: 0, Hi: int64(nRows), LoIncl: false, HiIncl: false},    // exclusive bounds
		}
		for _, sel := range adversarialSelections(nRows, chunkRows, rng) {
			cs := ChunkSelection(sel, nRows, chunkRows)
			for _, r := range ranges {
				want := FilterIntRange(ton, sel, r)
				selEqual(t, "FilterIntRangeChunked+zonemap", FilterIntRangeChunked(ton, cs, r, tonSum), want)
				selEqual(t, "FilterIntRangeChunked", FilterIntRangeChunked(ton, cs, r, nil), want)
			}
			fr := FloatRange{Lo: 5, Hi: 30, LoIncl: true, HiIncl: true}
			selEqual(t, "FilterFloatRangeChunked+zonemap",
				FilterFloatRangeChunked(speed, cs, fr, speedSum), FilterFloatRange(speed, sel, fr))
			frAll := FloatRange{Lo: math.Inf(-1), Hi: math.Inf(1), LoIncl: true, HiIncl: true}
			selEqual(t, "FilterFloatRangeChunked NaN-excluding take",
				FilterFloatRangeChunked(speed, cs, frAll, speedSum), FilterFloatRange(speed, sel, frAll))
			selEqual(t, "FilterIntSetChunked",
				FilterIntSetChunked(ton, cs, []int64{0, 17, 100, 999}, tonSum),
				FilterIntSet(ton, sel, []int64{0, 17, 100, 999}))
			selEqual(t, "FilterFloatSetChunked",
				FilterFloatSetChunked(speed, cs, []float64{3, 20}, speedSum),
				FilterFloatSet(speed, sel, []float64{3, 20}))
			selEqual(t, "FilterStringSetChunked+zonemap",
				FilterStringSetChunked(typ, cs, []string{"fluit", "galjoot"}, typSum),
				FilterStringSet(typ, sel, []string{"fluit", "galjoot"}))
			selEqual(t, "FilterStringSetChunked",
				FilterStringSetChunked(typ, cs, []string{"fluit", "galjoot"}, nil),
				FilterStringSet(typ, sel, []string{"fluit", "galjoot"}))
			selEqual(t, "FilterStringRangeChunked+zonemap",
				FilterStringRangeChunked(typ, cs, "g", "k", true, false, typSum),
				FilterStringRange(typ, sel, "g", "k", true, false))
			selEqual(t, "FilterStringRangeChunked",
				FilterStringRangeChunked(typ, cs, "g", "k", true, false, nil),
				FilterStringRange(typ, sel, "g", "k", true, false))
			selEqual(t, "FilterBoolSetChunked+zonemap",
				FilterBoolSetChunked(armed, cs, []bool{true}, armedSum),
				FilterBoolSet(armed, sel, []bool{true}))
			selEqual(t, "FilterBoolSetChunked",
				FilterBoolSetChunked(armed, cs, []bool{true}, nil),
				FilterBoolSet(armed, sel, []bool{true}))
		}
	}
}

// TestChunkedStatsMatchMonolithic pins the chunked reductions and
// cut-point calculations to their flat counterparts over the same
// adversarial selection shapes.
func TestChunkedStatsMatchMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	nRows, chunkRows := 1000, 64
	tab := chunkTestTable(t, nRows, chunkRows, rng)
	ton := tab.MustColumn("ton").(*IntColumn)
	typ := tab.MustColumn("type").(*StringColumn)
	armed := tab.MustColumn("armed").(*BoolColumn)
	// A NaN-free float column: the flat median path (quickselect)
	// does not tolerate NaN, chunked or not.
	pure := make([]float64, nRows)
	for i := range pure {
		pure[i] = float64(rng.Intn(200)) / 4
	}
	speed := NewFloatColumn("speed", pure)
	for _, sel := range adversarialSelections(nRows, chunkRows, rng) {
		cs := ChunkSelection(sel, nRows, chunkRows)
		wantMin, wantMax, wantOK := IntMinMax(ton, sel)
		gotMin, gotMax, gotOK := IntMinMaxChunked(ton, cs)
		if gotMin != wantMin || gotMax != wantMax || gotOK != wantOK {
			t.Fatalf("IntMinMaxChunked = (%d,%d,%v), want (%d,%d,%v)", gotMin, gotMax, gotOK, wantMin, wantMax, wantOK)
		}
		fMin, fMax, fOK := FloatMinMax(speed, sel)
		cMin, cMax, cOK := FloatMinMaxChunked(speed, cs)
		if cMin != fMin || cMax != fMax || cOK != fOK {
			t.Fatalf("FloatMinMaxChunked = (%v,%v,%v), want (%v,%v,%v)", cMin, cMax, cOK, fMin, fMax, fOK)
		}
		if wm, wok := IntMedian(ton, sel.Clone()); true {
			gm, gok := IntMedianChunked(ton, cs)
			if gm != wm || gok != wok {
				t.Fatalf("IntMedianChunked = (%d,%v), want (%d,%v)", gm, gok, wm, wok)
			}
		}
		if wm, wok := FloatMedian(speed, sel.Clone()); true {
			gm, gok := FloatMedianChunked(speed, cs)
			if gm != wm || gok != wok {
				t.Fatalf("FloatMedianChunked = (%v,%v), want (%v,%v)", gm, gok, wm, wok)
			}
		}
		for _, arity := range []int{2, 3, 7} {
			want := IntCutPoints(ton, sel.Clone(), arity)
			got := IntCutPointsChunked(ton, cs, arity)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("IntCutPointsChunked(arity=%d) = %v, want %v", arity, got, want)
			}
			wantF := FloatCutPoints(speed, sel.Clone(), arity)
			gotF := FloatCutPointsChunked(speed, cs, arity)
			if !reflect.DeepEqual(gotF, wantF) {
				t.Fatalf("FloatCutPointsChunked(arity=%d) = %v, want %v", arity, gotF, wantF)
			}
		}
		if !reflect.DeepEqual(StringValueCountsChunked(typ, cs), StringValueCounts(typ, sel)) {
			t.Fatal("StringValueCountsChunked diverged")
		}
		if !reflect.DeepEqual(BoolValueCountsChunked(armed, cs), BoolValueCounts(armed, sel)) {
			t.Fatal("BoolValueCountsChunked diverged")
		}
		wantG := GatherInt(ton, sel)
		var gotG []int64
		for _, ch := range GatherIntChunked(ton, cs) {
			gotG = append(gotG, ch...)
		}
		if len(gotG) != len(wantG) || (len(wantG) > 0 && !reflect.DeepEqual(gotG, wantG)) {
			t.Fatal("GatherIntChunked diverged")
		}
	}
}

// TestChunkedBitmapMatchesFlat pins the chunk-segmented bitmap to
// the selection semantics: build, count, contains, intersection
// count and materialization agree with the row-id vector paths, and
// empty chunks stay unallocated.
func TestChunkedBitmapMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	nRows, chunkRows := 1000, 128
	for _, a := range adversarialSelections(nRows, chunkRows, rng) {
		ca := ChunkSelection(a, nRows, chunkRows)
		ba := NewBitmapChunked(ca)
		if ba.Count() != len(a) {
			t.Fatalf("Count = %d, want %d", ba.Count(), len(a))
		}
		back := ba.Selection()
		if len(back) != len(a) {
			t.Fatalf("Selection() has %d rows, want %d", len(back), len(a))
		}
		for i := range back {
			if back[i] != a[i] {
				t.Fatalf("Selection()[%d] = %d, want %d", i, back[i], a[i])
			}
		}
		for c := 0; c < ca.NumChunks(); c++ {
			if len(ca.Seg(c)) == 0 && ba.chunks[c] != nil {
				t.Fatalf("empty chunk %d allocated words", c)
			}
		}
		for _, b := range adversarialSelections(nRows, chunkRows, rng) {
			cb := ChunkSelection(b, nRows, chunkRows)
			bb := NewBitmapChunked(cb)
			want := IntersectCount(a, b)
			if got := ba.AndCount(bb); got != want {
				t.Fatalf("AndCount = %d, want %d", got, want)
			}
			if got := AndCountSelection(ba, b); got != want {
				t.Fatalf("AndCountSelection = %d, want %d", got, want)
			}
			and := ba.And(bb)
			if and.Count() != want {
				t.Fatalf("And().Count() = %d, want %d", and.Count(), want)
			}
		}
	}
}

// TestBitmapMismatchedLayouts covers the off-path: bitmaps packed at
// different chunk widths still intersect correctly.
func TestBitmapMismatchedLayouts(t *testing.T) {
	a := Selection{1, 5, 64, 65, 700, 901}
	b := Selection{5, 64, 200, 901}
	ba := NewBitmapChunked(ChunkSelection(a, 1000, 128))
	bb := NewBitmapChunked(ChunkSelection(b, 1000, 256))
	if got, want := ba.AndCount(bb), IntersectCount(a, b); got != want {
		t.Fatalf("mismatched AndCount = %d, want %d", got, want)
	}
	if got := ba.And(bb).Count(); got != 3 {
		t.Fatalf("mismatched And().Count() = %d, want 3", got)
	}
}

// TestChunkedParallelLoopsRace drives the chunked filter, stat and
// bitmap loops with a selection large enough to fan out across scan
// workers; run under -race it proves the per-chunk slots are
// disjoint. The outputs are compared against the sequential path, so
// it doubles as a determinism check at width > 1.
func TestChunkedParallelLoopsRace(t *testing.T) {
	SetScanWorkers(4)
	defer SetScanWorkers(0)
	rng := rand.New(rand.NewSource(19))
	nRows := 1 << 17 // 128K rows: above parallelScanMinRows
	chunkRows := 1 << 12
	vals := make([]int64, nRows)
	for i := range vals {
		vals[i] = rng.Int63n(1000)
	}
	tab := MustNewTable("race", NewIntColumn("v", vals))
	tab.SetChunkRows(chunkRows)
	col := tab.MustColumn("v").(*IntColumn)
	sum := tab.SummaryByName("v")
	cs := tab.AllChunked()
	r := IntRange{Lo: 100, Hi: 800, LoIncl: true, HiIncl: false}
	wantSel := FilterIntRange(col, AllRows(nRows), r)
	got := FilterIntRangeChunked(col, cs, r, sum)
	selEqual(t, "parallel FilterIntRangeChunked", got, wantSel)
	wantMed, _ := IntMedian(col, AllRows(nRows))
	if med, _ := IntMedianChunked(col, got); med == 0 && wantMed != 0 {
		t.Fatal("parallel median degenerated")
	}
	bm := NewBitmapChunked(got)
	if bm.Count() != got.Len() {
		t.Fatalf("parallel bitmap count %d != %d", bm.Count(), got.Len())
	}
}

// TestFloatOrderStatsDeterministicWithNaN pins the NaN convention of
// the chunked float order statistics: NaN values carry no rank and
// are excluded — deterministically, in the sequential and parallel
// branches alike — so cut points depend only on the finite values,
// never on scan-slot availability. An all-NaN extent has no median.
func TestFloatOrderStatsDeterministicWithNaN(t *testing.T) {
	vals := []float64{math.NaN(), 5, 1, 9, 3, 7}
	col := NewFloatColumn("v", vals)
	finite := []float64{1, 3, 5, 7, 9}
	wantMed := finite[len(finite)/2] // upper median of the finite values
	for _, chunkRows := range []int{64, 128} {
		cs := AllRowsChunked(len(vals), chunkRows)
		got, ok := FloatMedianChunked(col, cs)
		if !ok || got != wantMed {
			t.Fatalf("chunkRows=%d: FloatMedianChunked = (%v,%v), want (%v,true)", chunkRows, got, ok, wantMed)
		}
		points := FloatCutPointsChunked(col, cs, 2)
		if len(points) != 1 || points[0] != wantMed {
			t.Fatalf("chunkRows=%d: FloatCutPointsChunked = %v, want [%v]", chunkRows, points, wantMed)
		}
	}
	allNaN := NewFloatColumn("n", []float64{math.NaN(), math.NaN()})
	if _, ok := FloatMedianChunked(allNaN, AllRowsChunked(2, 64)); ok {
		t.Fatal("all-NaN extent reported a median")
	}
	if pts := FloatCutPointsChunked(allNaN, AllRowsChunked(2, 64), 2); pts != nil {
		t.Fatalf("all-NaN extent produced cut points %v", pts)
	}
}

// TestSetChunkRowsSameWidthIsNoOp pins the re-shard guard: setting
// the width a table already has must keep its zone maps.
func TestSetChunkRowsSameWidthIsNoOp(t *testing.T) {
	tab := MustNewTable("t", NewIntColumn("v", []int64{1, 2, 3}))
	tab.SetChunkRows(128)
	before := tab.SummaryByName("v")
	tab.SetChunkRows(128)
	if tab.SummaryByName("v") != before {
		t.Fatal("same-width SetChunkRows rebuilt the zone maps")
	}
	tab.SetChunkRows(256)
	if tab.SummaryByName("v") == before {
		t.Fatal("re-shard kept stale zone maps")
	}
}

// TestFloatRangeChunkedKeepsNaNInSkippedChunks is the regression
// test for the zone-map NaN hazard: FloatRange.Contains(NaN) is true
// (the flat filter keeps NaN rows in every range), so a chunk whose
// finite bounds miss the range entirely may only be skipped when the
// zone map proves it NaN-free.
func TestFloatRangeChunkedKeepsNaNInSkippedChunks(t *testing.T) {
	const chunkRows = 64
	vals := make([]float64, 2*chunkRows)
	for i := 0; i < chunkRows; i++ {
		vals[i] = 1.0 // chunk 0: finite bounds [1,1], outside [10,30]
	}
	vals[7] = math.NaN() // ...but one NaN row the range must keep
	for i := chunkRows; i < 2*chunkRows; i++ {
		vals[i] = 20.0 // chunk 1: fully inside the range
	}
	tab := MustNewTable("nan", NewFloatColumn("v", vals))
	tab.SetChunkRows(chunkRows)
	col := tab.MustColumn("v").(*FloatColumn)
	r := FloatRange{Lo: 10, Hi: 30, LoIncl: true, HiIncl: true}
	want := FilterFloatRange(col, AllRows(len(vals)), r)
	got := FilterFloatRangeChunked(col, tab.AllChunked(), r, tab.SummaryByName("v"))
	selEqual(t, "NaN in skip-candidate chunk", got, want)
	if got.Len() != chunkRows+1 { // chunk 1 plus the NaN row
		t.Fatalf("kept %d rows, want %d (the NaN row must survive)", got.Len(), chunkRows+1)
	}
	// An all-NaN chunk is taken wholesale, like the flat filter.
	allNaN := make([]float64, chunkRows)
	for i := range allNaN {
		allNaN[i] = math.NaN()
	}
	tab2 := MustNewTable("nan2", NewFloatColumn("v", allNaN))
	tab2.SetChunkRows(chunkRows)
	col2 := tab2.MustColumn("v").(*FloatColumn)
	want2 := FilterFloatRange(col2, AllRows(chunkRows), r)
	got2 := FilterFloatRangeChunked(col2, tab2.AllChunked(), r, tab2.SummaryByName("v"))
	selEqual(t, "all-NaN chunk", got2, want2)
	if got2.Len() != chunkRows {
		t.Fatalf("all-NaN chunk kept %d rows, want %d", got2.Len(), chunkRows)
	}
}

// TestFloatCutPointCanonicalZero pins branch-independent zero
// canonicalization at the engine level: whether the median runs
// through the parallel rank selection or the sequential quickselect
// fallback, a zero cut point is +0.0 ("0"), never -0.0 ("-0").
func TestFloatCutPointCanonicalZero(t *testing.T) {
	negZero := math.Copysign(0, -1)
	col := NewFloatColumn("v", []float64{-1, negZero, 5, negZero})
	cs := AllRowsChunked(4, 64)
	med, ok := FloatMedianChunked(col, cs)
	if !ok || med != 0 || math.Signbit(med) {
		t.Fatalf("median = %v (signbit %v), want canonical +0", med, math.Signbit(med))
	}
	for _, p := range FloatCutPointsChunked(col, cs, 3) {
		if p == 0 && math.Signbit(p) {
			t.Fatal("cut point rendered as -0")
		}
	}
}

// TestNormalizeChunkRowsClamped pins the width normalization: powers
// of two within [64, 2^30], automatic default below 1, and absurd
// widths clamp instead of overflowing.
func TestNormalizeChunkRowsClamped(t *testing.T) {
	cases := map[int]int{
		-5:            DefaultChunkRows,
		0:             DefaultChunkRows,
		1:             64,
		65:            128,
		448:           512,
		1 << 16:       1 << 16,
		maxChunkRows:  maxChunkRows,
		1<<62 + 1:     maxChunkRows,
		math.MaxInt64: maxChunkRows,
	}
	for in, want := range cases {
		if got := normalizeChunkRows(in); got != want {
			t.Fatalf("normalizeChunkRows(%d) = %d, want %d", in, got, want)
		}
	}
}
