package engine

// Selection is a sorted, duplicate-free vector of row ids — the
// candidate list produced by a predicate scan. It is MonetDB's
// candidate-list idiom: operators consume a selection and produce a
// narrower one, so conjunctions evaluate column-at-a-time without
// materializing rows.
type Selection []int32

// AllRows returns the identity selection 0..n−1.
func AllRows(n int) Selection {
	s := make(Selection, n)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}

// Intersect returns the sorted intersection of two selections. Both
// inputs must be sorted ascending; the result is a fresh slice.
func Intersect(a, b Selection) Selection {
	if len(a) > len(b) {
		a, b = b, a
	}
	out := make(Selection, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// IntersectCount returns |a ∩ b| without materializing the result;
// this is the hot operation behind SDL products and INDEP.
func IntersectCount(a, b Selection) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// IsSorted reports whether the selection is sorted strictly
// ascending (the invariant all operators rely on).
func (s Selection) IsSorted() bool {
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return false
		}
	}
	return true
}

// Clone returns a fresh copy of the selection.
func (s Selection) Clone() Selection {
	out := make(Selection, len(s))
	copy(out, s)
	return out
}
