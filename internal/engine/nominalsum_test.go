package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// clusteredStringTable lays values out in contiguous runs so whole
// chunks hold a single value: the shape nominal zone maps exist for.
func clusteredStringTable(nRows, chunkRows, runLen int) *Table {
	vals := make([]string, nRows)
	for i := range vals {
		vals[i] = fmt.Sprintf("v%02d", i/runLen)
	}
	tab := MustNewTable("clustered", NewStringColumn("region", vals))
	tab.SetChunkRows(chunkRows)
	return tab
}

// TestNominalVerdictSkipTakeScan pins the presence verdicts chunk by
// chunk on a clustered layout: chunks holding none of the wanted
// values skip, chunks holding only wanted values take, mixed chunks
// scan.
func TestNominalVerdictSkipTakeScan(t *testing.T) {
	// 4 chunks of 64 rows; runs of 32 rows → 2 values per chunk:
	// chunk 0 = {v00,v01}, chunk 1 = {v02,v03}, ...
	tab := clusteredStringTable(256, 64, 32)
	col := tab.MustColumn("region").(*StringColumn)
	sum := tab.SummaryByName("region")
	if sum == nil || !sum.HasNominal() {
		t.Fatal("string column must have a nominal summary")
	}
	want := stringCodeSet(col, []string{"v02", "v03", "v04"})
	verdict := codeSetVerdict(sum, want)
	expect := []chunkVerdict{chunkSkip, chunkTake, chunkScan, chunkSkip}
	for c, v := range expect {
		if got := verdict(c); got != v {
			t.Fatalf("chunk %d verdict = %d, want %d", c, got, v)
		}
	}
}

// TestNominalTakePassesSegmentByReference pins the take fast path:
// a fully covered chunk's segment must flow into the result without
// being rescanned or copied.
func TestNominalTakePassesSegmentByReference(t *testing.T) {
	tab := clusteredStringTable(256, 64, 64) // one value per chunk
	col := tab.MustColumn("region").(*StringColumn)
	sum := tab.SummaryByName("region")
	all := tab.AllChunked()
	out := FilterStringSetChunked(col, all, []string{"v01"}, sum)
	if out.Len() != 64 {
		t.Fatalf("selected %d rows, want 64", out.Len())
	}
	parent, got := all.Seg(1), out.Seg(1)
	if len(got) != len(parent) || &got[0] != &parent[0] {
		t.Fatal("take verdict did not pass the parent segment through by reference")
	}
	for _, c := range []int{0, 2, 3} {
		if len(out.Seg(c)) != 0 {
			t.Fatalf("chunk %d should be empty", c)
		}
	}
}

// TestNominalEdgeCases covers the boundary shapes of the presence
// summaries: empty dictionary (zero-row table), a single-value
// column, a value present in the dictionary but absent from probed
// chunks, and an all-covered chunk under the bool summary.
func TestNominalEdgeCases(t *testing.T) {
	t.Run("EmptyDictionary", func(t *testing.T) {
		tab := MustNewTable("empty", NewStringColumn("s", nil))
		col := tab.MustColumn("s").(*StringColumn)
		if col.Cardinality() != 0 {
			t.Fatal("empty column must have an empty dictionary")
		}
		sum := tab.SummaryByName("s")
		out := FilterStringSetChunked(col, tab.AllChunked(), []string{"anything"}, sum)
		if out.Len() != 0 {
			t.Fatalf("selected %d rows from an empty table", out.Len())
		}
	})
	t.Run("SingleValueColumn", func(t *testing.T) {
		tab := clusteredStringTable(200, 64, 200) // all rows "v00"
		col := tab.MustColumn("region").(*StringColumn)
		sum := tab.SummaryByName("region")
		all := tab.AllChunked()
		hit := FilterStringSetChunked(col, all, []string{"v00"}, sum)
		if hit.Len() != 200 {
			t.Fatalf("single-value take selected %d rows, want 200", hit.Len())
		}
		// Every chunk is fully covered: all segments alias the parent.
		for c := 0; c < all.NumChunks(); c++ {
			p, g := all.Seg(c), hit.Seg(c)
			if len(p) > 0 && &g[0] != &p[0] {
				t.Fatalf("chunk %d not passed by reference", c)
			}
		}
		miss := FilterStringSetChunked(col, all, []string{"v99"}, sum)
		if miss.Len() != 0 {
			t.Fatalf("absent value selected %d rows", miss.Len())
		}
	})
	t.Run("ValueAbsentFromEveryProbedChunk", func(t *testing.T) {
		// "v03" lives only in chunk 3; a selection confined to chunks
		// 0-2 must come back empty with every chunk skipped.
		tab := clusteredStringTable(256, 64, 64)
		col := tab.MustColumn("region").(*StringColumn)
		sum := tab.SummaryByName("region")
		verdict := codeSetVerdict(sum, stringCodeSet(col, []string{"v03"}))
		for c := 0; c < 3; c++ {
			if got := verdict(c); got != chunkSkip {
				t.Fatalf("chunk %d verdict = %d, want skip", c, got)
			}
		}
		if got := verdict(3); got != chunkTake {
			t.Fatalf("chunk 3 verdict = %d, want take", got)
		}
	})
	t.Run("BoolVerdicts", func(t *testing.T) {
		vals := make([]bool, 192) // chunk 0 all false, chunk 1 all true, chunk 2 mixed
		for i := 64; i < 128; i++ {
			vals[i] = true
		}
		vals[130] = true
		tab := MustNewTable("flags", NewBoolColumn("armed", vals))
		tab.SetChunkRows(64)
		sum := tab.SummaryByName("armed")
		if sum == nil {
			t.Fatal("bool column must have a presence summary")
		}
		verdict := boolSetVerdict(sum, true, false) // want {true}
		expect := []chunkVerdict{chunkSkip, chunkTake, chunkScan}
		for c, v := range expect {
			if got := verdict(c); got != v {
				t.Fatalf("chunk %d verdict = %d, want %d", c, got, v)
			}
		}
		col := tab.MustColumn("armed").(*BoolColumn)
		out := FilterBoolSetChunked(col, tab.AllChunked(), []bool{true}, sum)
		if out.Len() != 65 {
			t.Fatalf("selected %d rows, want 65", out.Len())
		}
	})
}

// TestNominalSparseSummaryAndOverflow exercises the large-dictionary
// form: sorted per-chunk code lists when chunks are low-diversity,
// the overflow mark (always scan) when a chunk's distinct count
// exceeds the list cap, and end-to-end equivalence with the flat
// filter either way.
func TestNominalSparseSummaryAndOverflow(t *testing.T) {
	// 5000 distinct values (> denseCodeDictMax) in runs of 4: with
	// 64-row chunks every chunk holds 16 distinct codes — well under
	// the list cap, so every chunk gets a sparse sorted list.
	const values = 5000
	vals := make([]string, values*4)
	for i := range vals {
		vals[i] = fmt.Sprintf("u%04d", i/4)
	}
	tab := MustNewTable("sparse", NewStringColumn("id", vals))
	tab.SetChunkRows(64) // 16 values per chunk — well under the list cap
	col := tab.MustColumn("id").(*StringColumn)
	sum := tab.SummaryByName("id")
	if sum == nil || sum.codeList == nil {
		t.Fatal("large dictionary must use the sparse code-list summary")
	}
	for c := range sum.codeOverflow {
		if sum.codeOverflow[c] {
			t.Fatalf("chunk %d overflowed with only 16 distinct codes", c)
		}
	}
	all := tab.AllChunked()
	flatAll := tab.All()
	wantVals := []string{"u0000", "u2500", "u4999"}
	selEqual(t, "sparse set filter",
		FilterStringSetChunked(col, all, wantVals, sum),
		FilterStringSet(col, flatAll, wantVals))
	verdict := codeSetVerdict(sum, stringCodeSet(col, wantVals))
	if got := verdict(1); got != chunkSkip {
		t.Fatalf("uninvolved chunk verdict = %d, want skip", got)
	}

	// All-distinct rows push every full chunk past the list cap:
	// overflow chunks must scan, and results must still match flat.
	big := make([]string, 4992)
	for i := range big {
		big[i] = fmt.Sprintf("w%05d", i)
	}
	otab := MustNewTable("overflow", NewStringColumn("id", big))
	otab.SetChunkRows(512) // 512 distinct codes per chunk > maxCodeListLen
	ocol := otab.MustColumn("id").(*StringColumn)
	osum := otab.SummaryByName("id")
	if osum == nil || osum.codeList == nil {
		t.Fatal("overflow table must use the sparse summary")
	}
	overflowed := 0
	for c := range osum.codeOverflow {
		if osum.codeOverflow[c] {
			overflowed++
		}
	}
	if overflowed == 0 {
		t.Fatal("no chunk overflowed despite 512 distinct codes per chunk")
	}
	over := codeSetVerdict(osum, stringCodeSet(ocol, []string{"w00000"}))
	if got := over(0); got != chunkScan {
		t.Fatalf("overflowed chunk verdict = %d, want scan", got)
	}
	selEqual(t, "overflow set filter",
		FilterStringSetChunked(ocol, otab.AllChunked(), []string{"w00000", "w04000"}, osum),
		FilterStringSet(ocol, otab.All(), []string{"w00000", "w04000"}))
	// An all-overflowed summary cannot prune: the string-range filter
	// must refuse the O(dictionary) code-set resolution and take the
	// direct comparison scan — with identical results.
	if overflowed == len(osum.codeOverflow) && osum.canPruneCodes() {
		t.Fatal("all-overflow summary claims it can prune")
	}
	if !sum.canPruneCodes() {
		t.Fatal("healthy sparse summary claims it cannot prune")
	}
	selEqual(t, "overflow string range",
		FilterStringRangeChunked(ocol, otab.AllChunked(), "w00100", "w00300", true, true, osum),
		FilterStringRange(ocol, otab.All(), "w00100", "w00300", true, true))
}

// TestNominalSummaryReShard pins the layout-snapshot contract: a
// re-shard swaps in fresh summaries sized to the new chunk count,
// the old snapshot stays internally consistent, and filters after
// the re-shard agree with the flat scan.
func TestNominalSummaryReShard(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	vals := make([]string, 1000)
	dict := []string{"a", "b", "c", "d", "e"}
	for i := range vals {
		vals[i] = dict[rng.Intn(len(dict))]
	}
	tab := MustNewTable("reshard", NewStringColumn("x", vals))
	tab.SetChunkRows(64)
	col := tab.MustColumn("x").(*StringColumn)

	oldLayout := tab.Layout()
	oldSum := oldLayout.Summary(0)
	if oldSum == nil || len(oldSum.codeBits) != tab.NumChunks() {
		t.Fatalf("old summary has %d chunks, want %d", len(oldSum.codeBits), tab.NumChunks())
	}

	tab.SetChunkRows(256)
	newSum := tab.SummaryByName("x")
	if newSum == oldSum {
		t.Fatal("re-shard did not invalidate the nominal summary")
	}
	wantChunks := tab.NumChunks()
	if len(newSum.codeBits) != wantChunks {
		t.Fatalf("new summary has %d chunks, want %d", len(newSum.codeBits), wantChunks)
	}
	// The old snapshot still describes the old layout coherently:
	// filtering an old-layout selection with the old summary is
	// correct (the evaluator guarantees it never mixes layouts).
	oldCS := AllRowsChunked(1000, 64)
	selEqual(t, "old layout + old summary",
		FilterStringSetChunked(col, oldCS, []string{"b", "d"}, oldSum),
		FilterStringSet(col, tab.All(), []string{"b", "d"}))
	// And the new layout with the new summary agrees too.
	selEqual(t, "new layout + new summary",
		FilterStringSetChunked(col, tab.AllChunked(), []string{"b", "d"}, newSum),
		FilterStringSet(col, tab.All(), []string{"b", "d"}))
	if !reflect.DeepEqual(
		FilterStringSetChunked(col, oldCS, []string{"b", "d"}, oldSum).Flat(),
		FilterStringSetChunked(col, tab.AllChunked(), []string{"b", "d"}, newSum).Flat()) {
		t.Fatal("old and new layouts disagree on the same predicate")
	}
}
