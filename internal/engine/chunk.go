package engine

import (
	"math"
	"sort"
	"sync/atomic"

	"charles/internal/fault"
	"charles/internal/par"
)

// DefaultChunkRows is the automatic row-range chunk width: 64K rows
// per chunk. Chunks are the unit of parallelism (one chunk scans on
// one goroutine) and of skipping (per-chunk min/max summaries prune
// chunks a range predicate cannot match), so the width trades
// scheduling granularity against summary overhead. 64K keeps a
// chunk's row ids within one L2-sized working set while a 10M-row
// table still splits into ~150 independently schedulable pieces.
const DefaultChunkRows = 1 << 16

// minChunkRows is the smallest permitted chunk width: one bitmap
// word's worth of rows.
const minChunkRows = 64

// maxChunkRows caps the chunk width at 2^30 rows: wider chunks are
// indistinguishable from "one chunk" for any table the engine can
// address with int32 row ids, and the cap keeps the power-of-two
// rounding below from overflowing on absurd configured values.
const maxChunkRows = 1 << 30

// NormalizeChunkRows resolves a configured chunk width the way
// SetChunkRows does: values < 1 mean the automatic default,
// everything else is clamped to [64, 2^30] and rounded up to the
// next power of two. Storage backends that persist per-chunk state
// use it to agree with the table on the width before writing.
func NormalizeChunkRows(n int) int { return normalizeChunkRows(n) }

// normalizeChunkRows resolves a configured chunk width: values < 1
// mean the automatic default, everything else is clamped to
// [64, 2^30] and rounded up to the next power of two. Power-of-two
// widths keep the per-row chunk addressing — the Bitmap.Contains
// hot path — a shift+mask instead of a hardware divide.
func normalizeChunkRows(n int) int {
	if n < 1 {
		return DefaultChunkRows
	}
	if n > maxChunkRows {
		return maxChunkRows
	}
	p := minChunkRows
	for p < n {
		p <<= 1
	}
	return p
}

// tableLayout bundles a chunk width with the zone maps built for it.
// The table swaps the whole bundle atomically on re-shard, so a
// reader holding one snapshot can never pair one layout's width with
// another layout's summaries.
type tableLayout struct {
	chunkRows int
	summaries []atomic.Pointer[ChunkSummary]
}

func newTableLayout(chunkRows, numCols int) *tableLayout {
	return &tableLayout{
		chunkRows: chunkRows,
		summaries: make([]atomic.Pointer[ChunkSummary], numCols),
	}
}

// SetChunkRows fixes the table's row-range chunk width. n < 1
// restores the automatic default; other values are rounded up to a
// power of two (minimum 64, the bitmap word size). Setting a width
// the table already has is a no-op, so advisors sharing a table with
// the same configuration never churn its zone maps. Re-sharding
// swaps the layout and its zone maps as one atomic unit, and
// evaluators re-chunk selections cached under the old layout on use
// — but a re-shard concurrent with serving still wastes the caches
// it obsoletes, so fix the layout before the table serves queries.
func (t *Table) SetChunkRows(n int) {
	n = normalizeChunkRows(n)
	if cur := t.layout.Load(); cur != nil && cur.chunkRows == n {
		return
	}
	t.layout.Store(newTableLayout(n, len(t.cols)))
	// Epoch history is addressed by chunk, so it restarts at the new
	// width; the version carries over (the data did not change).
	t.resetStamp(n)
}

// ChunkRows returns the table's row-range chunk width.
func (t *Table) ChunkRows() int { return t.layout.Load().chunkRows }

// NumChunks returns the number of row-range chunks the table splits
// into: ceil(rows / chunkRows), 0 for an empty table.
func (t *Table) NumChunks() int { return numChunksFor(t.rows, t.ChunkRows()) }

// numChunksFor is the chunk count for an nRows universe at the given
// chunk width.
func numChunksFor(nRows, chunkRows int) int {
	if nRows <= 0 {
		return 0
	}
	return (nRows + chunkRows - 1) / chunkRows
}

// ChunkBounds returns chunk c's half-open global row interval
// [lo, hi) under the current layout.
func (t *Table) ChunkBounds(c int) (lo, hi int) {
	return t.chunkBounds(t.layout.Load(), c)
}

func (t *Table) chunkBounds(lay *tableLayout, c int) (lo, hi int) {
	lo = c * lay.chunkRows
	hi = lo + lay.chunkRows
	if hi > t.rows {
		hi = t.rows
	}
	return lo, hi
}

// AllChunked returns the identity selection over the table in
// chunked form.
func (t *Table) AllChunked() *ChunkedSelection {
	return AllRowsChunked(t.rows, t.ChunkRows())
}

// Layout returns a consistent snapshot of the table's chunk design:
// its width and the zone maps built for that width. Callers that
// consult both — the evaluator pairing re-chunked selections with
// zone-map verdicts — must read them through one snapshot, so a
// concurrent re-shard can never mix layouts.
func (t *Table) Layout() Layout { return Layout{t: t, lay: t.layout.Load()} }

// Layout is one immutable chunk-design snapshot of a table.
type Layout struct {
	t   *Table
	lay *tableLayout
}

// ChunkRows returns the snapshot's chunk width.
func (l Layout) ChunkRows() int { return l.lay.chunkRows }

// Summary returns the snapshot's lazily built zone map for column i,
// or nil for column kinds that have none.
func (l Layout) Summary(i int) *ChunkSummary { return l.t.summaryIn(l.lay, i) }

// SummaryByName is Summary addressed by column name; nil when the
// column does not exist or has no zone map.
func (l Layout) SummaryByName(name string) *ChunkSummary {
	i, ok := l.t.byName[name]
	if !ok {
		return nil
	}
	return l.t.summaryIn(l.lay, i)
}

// denseCodeDictMax is the dictionary cardinality at or below which a
// string column's presence summary is a dense per-chunk code bitset:
// dictLen bits per chunk, at most 512 bytes at this cap. Above it
// the bitset would cost more to scan than it saves, so chunks record
// a short sorted distinct-code list instead.
const denseCodeDictMax = 4096

// maxCodeListLen caps the sparse per-chunk code list. A chunk of a
// high-cardinality column that holds more distinct codes than this
// is marked overflowed and always scans: a presence list approaching
// the wanted-set size would make the verdict as expensive as the
// scan it tries to avoid.
const maxCodeListLen = 128

// ChunkSummary is one column's per-chunk zone map, computed over the
// raw column (not a selection). Numeric columns (int, date, float)
// record the min/max of every row-range chunk: range filters consult
// them to skip chunks no row of which can match, and to pass chunks
// wholesale when every row must. Nominal columns (string, bool)
// record per-chunk value presence — which dictionary codes occur in
// the chunk — so set predicates get the same skip/take/scan verdicts
// from set algebra: skip when the chunk holds none of the wanted
// codes, take when every code it holds is wanted.
type ChunkSummary struct {
	intMin, intMax     []int64
	floatMin, floatMax []float64
	// floatPure[c] is true when chunk c holds no NaN: only then may a
	// disjoint range skip the chunk, because NaN rows match every
	// range (FloatRange.Contains(NaN) is true) regardless of the
	// finite bounds.
	floatPure []bool

	// String-column presence, in exactly one of two forms. dictLen is
	// the dictionary cardinality the summary was built for (the
	// column is immutable, so it cannot drift).
	dictLen int
	// codeBits[c] is chunk c's dense presence bitset over dictionary
	// codes; used when dictLen ≤ denseCodeDictMax.
	codeBits [][]uint64
	// codeList[c] is chunk c's sorted distinct-code list for larger
	// dictionaries; meaningless when codeOverflow[c] is set (the
	// chunk held more than maxCodeListLen distinct codes and must
	// scan).
	codeList     [][]uint32
	codeOverflow []bool

	// Bool-column presence: which of the two values each chunk holds.
	boolHasTrue, boolHasFalse []bool

	// stamp is the table epoch stamp the summary was built under; nil
	// marks a backend-persisted summary, which describes the unmutated
	// file contents (version 0). A summary is fresh while its stamp's
	// version matches the table's; after a mutation only the chunks
	// whose epochs moved are recomputed.
	stamp *EpochStamp
}

// IntBounds returns chunk c's [min, max] over the raw column.
func (s *ChunkSummary) IntBounds(c int) (lo, hi int64) {
	return s.intMin[c], s.intMax[c]
}

// FloatBounds returns chunk c's NaN-ignoring [min, max] and whether
// the chunk is NaN-free. On an all-NaN chunk the bounds are NaN.
func (s *ChunkSummary) FloatBounds(c int) (lo, hi float64, pure bool) {
	return s.floatMin[c], s.floatMax[c], s.floatPure[c]
}

// HasNominal reports whether the summary carries nominal presence
// information (built over a string or bool column).
func (s *ChunkSummary) HasNominal() bool {
	return s.codeBits != nil || s.codeList != nil || s.boolHasTrue != nil
}

// BoolPresence returns which boolean values chunk c holds.
func (s *ChunkSummary) BoolPresence(c int) (hasTrue, hasFalse bool) {
	return s.boolHasTrue[c], s.boolHasFalse[c]
}

// canPruneCodes reports whether the code-presence summary can give a
// non-scan verdict for at least one chunk: always for the dense
// bitset form, and for the sparse form only when some chunk stayed
// under the list cap. Callers that must pay to translate a predicate
// into code space (string ranges resolving the dictionary interval)
// consult this first — against an all-overflowed summary that
// translation buys nothing.
func (s *ChunkSummary) canPruneCodes() bool {
	if s.codeBits != nil {
		return true
	}
	if s.codeList == nil {
		return false
	}
	for _, overflowed := range s.codeOverflow {
		if !overflowed {
			return true
		}
	}
	return false
}

// Summary returns the current layout's lazily built zone map of
// column i, or nil for column kinds that have none. Building fans
// the chunks out across the scan worker pool; concurrent first calls
// may build twice, and the identical results make either winner
// correct.
func (t *Table) Summary(i int) *ChunkSummary {
	return t.summaryIn(t.layout.Load(), i)
}

// SummaryByName is Summary addressed by column name; nil when the
// column does not exist or has no zone map.
func (t *Table) SummaryByName(name string) *ChunkSummary {
	i, ok := t.byName[name]
	if !ok {
		return nil
	}
	return t.Summary(i)
}

func (t *Table) summaryIn(lay *tableLayout, i int) *ChunkSummary {
	switch t.cols[i].(type) {
	case IntValued, FloatValued, *StringColumn, *BoolColumn:
	default:
		return nil
	}
	cur := t.stamp.Load()
	if s := lay.summaries[i].Load(); s != nil {
		if summaryFresh(s, cur) {
			return s
		}
		// Stale: recompute only the chunks whose epochs moved, keeping
		// the clean chunks' entries. Store, not CAS — a fresher summary
		// must replace the stale one even though a slot is occupied.
		s = t.refreshSummary(lay, t.cols[i], s, cur)
		lay.summaries[i].Store(s)
		return s
	}
	// Precomputed summaries first: a file-backed table ships zone
	// maps for its native chunk width, which beats re-scanning the
	// column (and faulting its pages in) just to rediscover them.
	// They describe the file's contents, so only an unmutated table
	// (version 0 — the only version a file-backed table can have) may
	// serve them.
	// The failpoint models a backend whose persisted summaries are
	// unreadable: the consult is skipped and the lazy scan-time build
	// below serves instead — same answers, just slower. Degradation,
	// not failure, is the contract chaos tests pin here.
	if t.backend != nil && cur.version == 0 && fault.Inject("engine.backendSummary") == nil {
		if s, ok := t.backend.ChunkSummary(i, lay.chunkRows); ok && s != nil {
			lay.summaries[i].CompareAndSwap(nil, s)
			return lay.summaries[i].Load()
		}
	}
	s := t.buildSummary(lay, t.cols[i])
	s.stamp = cur
	lay.summaries[i].CompareAndSwap(nil, s)
	return lay.summaries[i].Load()
}

// summaryFresh reports whether a cached summary still describes the
// table at stamp cur. Equal versions mean identical data; a nil
// summary stamp marks a backend-persisted summary, which is the
// version-0 contents.
func summaryFresh(s *ChunkSummary, cur *EpochStamp) bool {
	if s.stamp == nil {
		return cur.version == 0
	}
	return s.stamp.version == cur.version
}

// WarmSummaries eagerly builds every column's zone map under the
// current layout — numeric min/max bounds and nominal presence sets
// alike — so a server's first queries never pay the lazy build.
// It returns the number of summarized columns.
func (t *Table) WarmSummaries() int {
	n := 0
	for i := range t.cols {
		if t.Summary(i) != nil {
			n++
		}
	}
	return n
}

// intChunkBounds scans one chunk's [lo, hi) rows for min/max.
func intChunkBounds(col IntValued, lo, hi int) (mn, mx int64) {
	mn = col.Int64(lo)
	mx = mn
	for r := lo + 1; r < hi; r++ {
		v := col.Int64(r)
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

// floatChunkBounds scans one chunk for NaN-ignoring min/max and
// NaN-freedom.
func floatChunkBounds(col FloatValued, lo, hi int) (mn, mx float64, pure bool) {
	mn, mx = math.NaN(), math.NaN()
	pure = true
	for r := lo; r < hi; r++ {
		v := col.Float64(r)
		if v != v { // NaN
			pure = false
			continue
		}
		if mn != mn || v < mn {
			mn = v
		}
		if mx != mx || v > mx {
			mx = v
		}
	}
	return mn, mx, pure
}

// boolChunkPresence scans one chunk for which boolean values occur.
func boolChunkPresence(col *BoolColumn, lo, hi int) (hasTrue, hasFalse bool) {
	for r := lo; r < hi; r++ {
		if col.Bool(r) {
			hasTrue = true
		} else {
			hasFalse = true
		}
		if hasTrue && hasFalse {
			break
		}
	}
	return hasTrue, hasFalse
}

// stringChunkBits builds one chunk's dense code-presence bitset.
func stringChunkBits(codes []uint32, lo, hi, words int) []uint64 {
	bits := make([]uint64, words)
	for r := lo; r < hi; r++ {
		code := codes[r]
		bits[code>>6] |= 1 << (code & 63)
	}
	return bits
}

// stringChunkList builds one chunk's sorted distinct-code list, or
// reports overflow past the list cap.
func stringChunkList(codes []uint32, lo, hi int) (list []uint32, overflow bool) {
	seen := make(map[uint32]struct{}, maxCodeListLen+1)
	for r := lo; r < hi; r++ {
		if _, ok := seen[codes[r]]; ok {
			continue
		}
		if len(seen) == maxCodeListLen {
			return nil, true
		}
		seen[codes[r]] = struct{}{}
	}
	list = make([]uint32, 0, len(seen))
	for code := range seen {
		list = append(list, code)
	}
	sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	return list, false
}

// buildSummary computes the zone map, one chunk per worker-pool
// task. The caller stamps the result.
func (t *Table) buildSummary(lay *tableLayout, col Column) *ChunkSummary {
	nc := numChunksFor(t.rows, lay.chunkRows)
	s := &ChunkSummary{}
	switch col := col.(type) {
	case IntValued:
		s.intMin = make([]int64, nc)
		s.intMax = make([]int64, nc)
		_ = par.ForEach(ScanWorkers(), nc, func(c int) error {
			lo, hi := t.chunkBounds(lay, c)
			s.intMin[c], s.intMax[c] = intChunkBounds(col, lo, hi)
			return nil
		})
	case FloatValued:
		s.floatMin = make([]float64, nc)
		s.floatMax = make([]float64, nc)
		s.floatPure = make([]bool, nc)
		_ = par.ForEach(ScanWorkers(), nc, func(c int) error {
			lo, hi := t.chunkBounds(lay, c)
			s.floatMin[c], s.floatMax[c], s.floatPure[c] = floatChunkBounds(col, lo, hi)
			return nil
		})
	case *StringColumn:
		t.buildNominalSummary(lay, s, col, nc)
	case *BoolColumn:
		s.boolHasTrue = make([]bool, nc)
		s.boolHasFalse = make([]bool, nc)
		_ = par.ForEach(ScanWorkers(), nc, func(c int) error {
			lo, hi := t.chunkBounds(lay, c)
			s.boolHasTrue[c], s.boolHasFalse[c] = boolChunkPresence(col, lo, hi)
			return nil
		})
	}
	return s
}

// buildNominalSummary computes a string column's per-chunk presence
// summary: a dense code bitset for small dictionaries, a short
// sorted distinct-code list (or an overflow mark) for large ones.
func (t *Table) buildNominalSummary(lay *tableLayout, s *ChunkSummary, col *StringColumn, nc int) {
	s.dictLen = col.Cardinality()
	codes := col.Codes()
	if s.dictLen <= denseCodeDictMax {
		s.codeBits = make([][]uint64, nc)
		words := (s.dictLen + 63) / 64
		_ = par.ForEach(ScanWorkers(), nc, func(c int) error {
			lo, hi := t.chunkBounds(lay, c)
			s.codeBits[c] = stringChunkBits(codes, lo, hi, words)
			return nil
		})
		return
	}
	s.codeList = make([][]uint32, nc)
	s.codeOverflow = make([]bool, nc)
	_ = par.ForEach(ScanWorkers(), nc, func(c int) error {
		lo, hi := t.chunkBounds(lay, c)
		s.codeList[c], s.codeOverflow[c] = stringChunkList(codes, lo, hi)
		return nil
	})
}

// refreshSummary brings a stale summary up to stamp cur, rescanning
// only the chunks whose epochs moved and keeping the clean chunks'
// entries. It falls back to a full rebuild when the stamps are not
// chunk-comparable (width change, backend summary after mutation) or
// when a string column's dictionary grew — the presence encoding is
// sized and shaped by the dictionary, so clean chunks' bitsets would
// not line up with the new code space.
func (t *Table) refreshSummary(lay *tableLayout, col Column, old *ChunkSummary, cur *EpochStamp) *ChunkSummary {
	var dirty []bool
	if cur.chunkRows == lay.chunkRows {
		if d, ok := cur.DirtyVs(old.stamp); ok {
			dirty = d
		}
	}
	if sc, isStr := col.(*StringColumn); isStr && sc.Cardinality() != old.dictLen {
		dirty = nil
	}
	if dirty == nil {
		s := t.buildSummary(lay, col)
		s.stamp = cur
		return s
	}
	nc := numChunksFor(t.rows, lay.chunkRows)
	s := &ChunkSummary{stamp: cur}
	switch col := col.(type) {
	case IntValued:
		s.intMin = make([]int64, nc)
		s.intMax = make([]int64, nc)
		_ = par.ForEach(ScanWorkers(), nc, func(c int) error {
			if !dirty[c] {
				s.intMin[c], s.intMax[c] = old.intMin[c], old.intMax[c]
				return nil
			}
			lo, hi := t.chunkBounds(lay, c)
			s.intMin[c], s.intMax[c] = intChunkBounds(col, lo, hi)
			return nil
		})
	case FloatValued:
		s.floatMin = make([]float64, nc)
		s.floatMax = make([]float64, nc)
		s.floatPure = make([]bool, nc)
		_ = par.ForEach(ScanWorkers(), nc, func(c int) error {
			if !dirty[c] {
				s.floatMin[c], s.floatMax[c], s.floatPure[c] = old.floatMin[c], old.floatMax[c], old.floatPure[c]
				return nil
			}
			lo, hi := t.chunkBounds(lay, c)
			s.floatMin[c], s.floatMax[c], s.floatPure[c] = floatChunkBounds(col, lo, hi)
			return nil
		})
	case *StringColumn:
		s.dictLen = old.dictLen
		codes := col.Codes()
		if old.codeBits != nil {
			s.codeBits = make([][]uint64, nc)
			words := (s.dictLen + 63) / 64
			_ = par.ForEach(ScanWorkers(), nc, func(c int) error {
				if !dirty[c] {
					s.codeBits[c] = old.codeBits[c]
					return nil
				}
				lo, hi := t.chunkBounds(lay, c)
				s.codeBits[c] = stringChunkBits(codes, lo, hi, words)
				return nil
			})
		} else {
			s.codeList = make([][]uint32, nc)
			s.codeOverflow = make([]bool, nc)
			_ = par.ForEach(ScanWorkers(), nc, func(c int) error {
				if !dirty[c] {
					s.codeList[c], s.codeOverflow[c] = old.codeList[c], old.codeOverflow[c]
					return nil
				}
				lo, hi := t.chunkBounds(lay, c)
				s.codeList[c], s.codeOverflow[c] = stringChunkList(codes, lo, hi)
				return nil
			})
		}
	case *BoolColumn:
		s.boolHasTrue = make([]bool, nc)
		s.boolHasFalse = make([]bool, nc)
		_ = par.ForEach(ScanWorkers(), nc, func(c int) error {
			if !dirty[c] {
				s.boolHasTrue[c], s.boolHasFalse[c] = old.boolHasTrue[c], old.boolHasFalse[c]
				return nil
			}
			lo, hi := t.chunkBounds(lay, c)
			s.boolHasTrue[c], s.boolHasFalse[c] = boolChunkPresence(col, lo, hi)
			return nil
		})
	}
	return s
}
