package engine

import (
	"testing"
	"testing/quick"
)

func TestIntRangeContains(t *testing.T) {
	r := IntRange{Lo: 10, Hi: 20, LoIncl: true, HiIncl: false} // [10, 20)
	cases := map[int64]bool{9: false, 10: true, 15: true, 19: true, 20: false, 21: false}
	for v, want := range cases {
		if r.Contains(v) != want {
			t.Errorf("[10,20).Contains(%d) = %v, want %v", v, !want, want)
		}
	}
	closed := IntRange{Lo: 10, Hi: 20, LoIncl: true, HiIncl: true}
	if !closed.Contains(20) {
		t.Error("[10,20].Contains(20) = false")
	}
	open := IntRange{Lo: 10, Hi: 20, LoIncl: false, HiIncl: false}
	if open.Contains(10) || open.Contains(20) {
		t.Error("(10,20) contains an endpoint")
	}
}

func TestFloatRangeContains(t *testing.T) {
	r := FloatRange{Lo: 1.5, Hi: 2.5, LoIncl: true, HiIncl: false}
	if !r.Contains(1.5) || r.Contains(2.5) || !r.Contains(2.0) || r.Contains(1.4) {
		t.Error("FloatRange.Contains broken")
	}
}

func TestFilterIntRange(t *testing.T) {
	col := NewIntColumn("tonnage", []int64{100, 200, 300, 400, 500})
	sel := AllRows(5)
	got := FilterIntRange(col, sel, IntRange{Lo: 200, Hi: 400, LoIncl: true, HiIncl: false})
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("FilterIntRange = %v, want [1 2]", got)
	}
	// Filtering a narrowed selection only looks at its rows.
	got = FilterIntRange(col, Selection{0, 4}, IntRange{Lo: 0, Hi: 1000, LoIncl: true, HiIncl: true})
	if len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Fatalf("FilterIntRange on subset = %v, want [0 4]", got)
	}
}

func TestFilterFloatRange(t *testing.T) {
	col := NewFloatColumn("speed", []float64{1, 2, 3, 4})
	got := FilterFloatRange(col, AllRows(4), FloatRange{Lo: 2, Hi: 3, LoIncl: true, HiIncl: true})
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("FilterFloatRange = %v", got)
	}
}

func TestFilterStringSet(t *testing.T) {
	col := NewStringColumn("harbour", []string{"bantam", "surat", "zeeland", "bantam", "surat"})
	got := FilterStringSet(col, AllRows(5), []string{"bantam", "zeeland"})
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("FilterStringSet = %v, want [0 2 3]", got)
	}
	if got := FilterStringSet(col, AllRows(5), nil); len(got) != 0 {
		t.Fatalf("empty set selected %v", got)
	}
	if got := FilterStringSet(col, AllRows(5), []string{"amsterdam"}); len(got) != 0 {
		t.Fatalf("unknown value selected %v", got)
	}
}

func TestFilterBoolSet(t *testing.T) {
	col := NewBoolColumn("armed", []bool{true, false, true, false})
	if got := FilterBoolSet(col, AllRows(4), []bool{true}); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("FilterBoolSet(true) = %v", got)
	}
	if got := FilterBoolSet(col, AllRows(4), []bool{true, false}); len(got) != 4 {
		t.Fatalf("FilterBoolSet(both) = %v", got)
	}
	if got := FilterBoolSet(col, AllRows(4), nil); len(got) != 0 {
		t.Fatalf("FilterBoolSet(none) = %v", got)
	}
}

func TestFilterPreservesSortedProperty(t *testing.T) {
	col := NewIntColumn("v", func() []int64 {
		vals := make([]int64, 500)
		for i := range vals {
			vals[i] = int64(i * 7 % 101)
		}
		return vals
	}())
	f := func(lo, hi uint8) bool {
		l, h := int64(lo), int64(hi)
		if l > h {
			l, h = h, l
		}
		got := FilterIntRange(col, AllRows(500), IntRange{Lo: l, Hi: h, LoIncl: true, HiIncl: true})
		return got.IsSorted() || len(got) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterMatchesNaiveScanProperty(t *testing.T) {
	vals := []int64{5, 1, 9, 3, 7, 5, 2, 8, 5, 0}
	col := NewIntColumn("v", vals)
	f := func(lo, hi uint8) bool {
		l, h := int64(lo%12), int64(hi%12)
		if l > h {
			l, h = h, l
		}
		r := IntRange{Lo: l, Hi: h, LoIncl: true, HiIncl: false}
		got := FilterIntRange(col, AllRows(len(vals)), r)
		want := Selection{}
		for i, v := range vals {
			if v >= l && v < h {
				want = append(want, int32(i))
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
