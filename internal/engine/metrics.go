package engine

import (
	"sync/atomic"

	"charles/internal/obs"
)

// Metrics is the engine's instrumentation hook: counters for the
// zone-map verdicts the chunked filter drivers hand down and for
// which kernel family (vector row-id vs fused bitmap) served each
// filter. Fields are nil-safe obs counters, so a partially-populated
// hook records only what it names; the default hook records nothing.
// The hook influences nothing — verdicts and kernels are chosen
// before it is consulted — so installing it can never change output.
type Metrics struct {
	// ZoneSkip / ZoneTake / ZoneScan count per-chunk verdicts:
	// skipped without a scan, passed through whole, scanned row by
	// row.
	ZoneSkip *obs.Counter
	ZoneTake *obs.Counter
	ZoneScan *obs.Counter
	// VectorKernels / FusedKernels count driver invocations by
	// output representation: row-id selections vs fused bitmaps.
	VectorKernels *obs.Counter
	FusedKernels  *obs.Counter
}

// metricsHook is process-global because the filter kernels are free
// functions with no object to hang per-table state on. It always
// holds a non-nil *Metrics (zero value = all-nil counters = no-op).
var metricsHook atomic.Pointer[Metrics]

func init() { metricsHook.Store(&Metrics{}) }

// SetMetrics installs the instrumentation hook; nil restores the
// no-op default. Call once at process start — it is process-global.
func SetMetrics(m *Metrics) {
	if m == nil {
		m = &Metrics{}
	}
	metricsHook.Store(m)
}

// countVerdict records one chunk verdict on the installed hook.
func (m *Metrics) countVerdict(v chunkVerdict) {
	switch v {
	case chunkSkip:
		m.ZoneSkip.Inc()
	case chunkTake:
		m.ZoneTake.Inc()
	default:
		m.ZoneScan.Inc()
	}
}
