package engine

import (
	"fmt"

	"charles/internal/fault"
)

// ColumnBackend is the storage seam under a Table: it supplies the
// physical columns and, when it has them, precomputed per-chunk zone
// maps. The engine's kernels never see the backend — they run on the
// Column vectors it hands out — so a backend chooses the memory the
// vectors live in: heap slices (MemoryBackend) or a read-only mmap
// of an on-disk columnar file (internal/colfile). The interface sits
// exactly at the chunk boundary the scan/gather/zone-map code
// already speaks: a backend that persists summaries does so per
// chunk, for one chunk width, and the table falls back to the lazy
// in-memory build at any other width.
type ColumnBackend interface {
	// TableName returns the stored relation's name.
	TableName() string
	// NumRows returns the row count every column must have.
	NumRows() int
	// NumCols returns the number of stored columns.
	NumCols() int
	// Column returns the i-th column in declaration order.
	Column(i int) Column
	// ChunkSummary returns the backend's precomputed zone map for
	// column i at the given chunk width. ok is false when the backend
	// has none (wrong width, unsummarized kind, or a purely in-memory
	// backend); the table then builds the summary lazily by scanning.
	ChunkSummary(col, chunkRows int) (s *ChunkSummary, ok bool)
	// NativeChunkRows is the chunk width the backend's precomputed
	// summaries were built for, or 0 when it carries none. Tables
	// built over the backend default to this width so the summaries
	// are actually served.
	NativeChunkRows() int
	// Close releases backend resources (file mappings, handles).
	// Columns handed out earlier must not be used after Close.
	Close() error
}

// MemoryBackend is the in-memory ColumnBackend: plain Go slices, no
// precomputed summaries, nothing to close. It is what every table
// built from NewTable, the CSV loader or the dataset generators runs
// on.
type MemoryBackend struct {
	name string
	cols []Column
}

// NewMemoryBackend wraps columns (not copied) as a backend.
func NewMemoryBackend(name string, cols ...Column) *MemoryBackend {
	return &MemoryBackend{name: name, cols: cols}
}

// TableName implements ColumnBackend.
func (b *MemoryBackend) TableName() string { return b.name }

// NumRows implements ColumnBackend.
func (b *MemoryBackend) NumRows() int {
	if len(b.cols) == 0 {
		return 0
	}
	return b.cols[0].Len()
}

// NumCols implements ColumnBackend.
func (b *MemoryBackend) NumCols() int { return len(b.cols) }

// Column implements ColumnBackend.
func (b *MemoryBackend) Column(i int) Column { return b.cols[i] }

// ChunkSummary implements ColumnBackend: memory backends precompute
// nothing, so every summary is built lazily by the table.
func (b *MemoryBackend) ChunkSummary(col, chunkRows int) (*ChunkSummary, bool) {
	return nil, false
}

// NativeChunkRows implements ColumnBackend.
func (b *MemoryBackend) NativeChunkRows() int { return 0 }

// Close implements ColumnBackend; heap slices need no release.
func (b *MemoryBackend) Close() error { return nil }

// NewTableFromBackend builds a table over a storage backend,
// validating the schema it exposes: at least one column, unique
// non-empty names, equal lengths. The chunk width defaults to the
// backend's native width when it has one, so precomputed summaries
// are served rather than rebuilt.
func NewTableFromBackend(b ColumnBackend) (*Table, error) {
	name := b.TableName()
	n := b.NumCols()
	if n == 0 {
		return nil, fmt.Errorf("engine: table %q has no columns", name)
	}
	t := &Table{name: name, backend: b, byName: make(map[string]int, n), id: tableIDs.Add(1)}
	t.cols = make([]Column, n)
	t.rows = b.NumRows()
	for i := 0; i < n; i++ {
		if err := fault.Inject("engine.backendColumn"); err != nil {
			return nil, fmt.Errorf("engine: table %q: fetching column %d from backend: %w", name, i, err)
		}
		c := b.Column(i)
		if err := validateColumn(c); err != nil {
			return nil, err
		}
		if c.Len() != t.rows {
			return nil, fmt.Errorf("engine: column %q has %d rows, want %d", c.Name(), c.Len(), t.rows)
		}
		if _, dup := t.byName[c.Name()]; dup {
			return nil, fmt.Errorf("engine: duplicate column %q", c.Name())
		}
		t.byName[c.Name()] = i
		//lint:mmaplife Table is the sanctioned retainer: Table.Close closes this backend, so the views cannot outlive their mapping
		t.cols[i] = c
	}
	t.SetChunkRows(b.NativeChunkRows())
	return t, nil
}
