package engine

// Fused filter→bitmap scans: the same predicate kernels as the
// chunked filters, but writing the word-packed Bitmap directly
// instead of materializing a row-id Selection first and converting
// it. When the evaluator knows a selection will live as a bitmap
// (dense extents under the auto representation, or RepBitmap
// forced), this halves the passes over the matching rows and skips
// the intermediate row-id allocation entirely. Verdicts behave
// exactly as in filterSegs: skipped chunks stay nil (never
// allocated), taken chunks set every parent bit without running the
// predicate.

// filterSegsBitmap is the fused driver: verdict prunes or passes
// whole chunks from the zone map, scanBits runs the typed predicate
// over the rest setting bits as it goes (returning how many), and
// the per-chunk bitsets assemble into one chunk-segmented Bitmap.
// A chunk whose scan matches nothing stays nil, preserving the
// empty-chunks-never-allocated invariant.
func filterSegsBitmap(cs *ChunkedSelection, verdict func(c int) chunkVerdict, scanBits func(seg Selection, words []uint64, base int32) int) *Bitmap {
	m := metricsHook.Load()
	m.FusedKernels.Inc()
	nc := cs.NumChunks()
	b := newBitmapShell(cs.NumRows(), cs.ChunkRows(), nc)
	ones := make([]int, nc)
	forEachSeg(cs, func(c int) {
		seg := cs.Seg(c)
		if len(seg) == 0 {
			return
		}
		base := int32(c * b.chunkRows)
		v := verdict(c)
		m.countVerdict(v)
		switch v {
		case chunkSkip:
		case chunkTake:
			words := make([]uint64, b.chunkWordCount(c))
			ones[c] = setSegBits(words, seg, base)
			b.chunks[c] = words
		default:
			words := make([]uint64, b.chunkWordCount(c))
			if n := scanBits(seg, words, base); n > 0 {
				ones[c] = n
				b.chunks[c] = words
			}
		}
	})
	for _, n := range ones {
		b.ones += n
	}
	return b
}

// emptyBitmapLike returns the all-empty bitmap in cs's layout.
func emptyBitmapLike(cs *ChunkedSelection) *Bitmap {
	return newBitmapShell(cs.NumRows(), cs.ChunkRows(), cs.NumChunks())
}

// FilterIntRangeChunkedBitmap is FilterIntRangeChunked fused into
// bitmap construction.
func FilterIntRangeChunkedBitmap(col IntValued, cs *ChunkedSelection, r IntRange, sum *ChunkSummary) *Bitmap {
	return filterSegsBitmap(cs, intRangeVerdict(sum, r), func(seg Selection, words []uint64, base int32) int {
		n := 0
		for _, row := range seg {
			if r.Contains(col.Int64(int(row))) {
				local := row - base
				words[local>>6] |= 1 << (uint(local) & 63)
				n++
			}
		}
		return n
	})
}

// FilterFloatRangeChunkedBitmap is FilterFloatRangeChunked fused
// into bitmap construction.
func FilterFloatRangeChunkedBitmap(col FloatValued, cs *ChunkedSelection, r FloatRange, sum *ChunkSummary) *Bitmap {
	return filterSegsBitmap(cs, floatRangeVerdict(sum, r), func(seg Selection, words []uint64, base int32) int {
		n := 0
		for _, row := range seg {
			if r.Contains(col.Float64(int(row))) {
				local := row - base
				words[local>>6] |= 1 << (uint(local) & 63)
				n++
			}
		}
		return n
	})
}

// FilterIntSetChunkedBitmap is FilterIntSetChunked fused into bitmap
// construction.
func FilterIntSetChunkedBitmap(col IntValued, cs *ChunkedSelection, values []int64, sum *ChunkSummary) *Bitmap {
	if len(values) == 0 {
		return emptyBitmapLike(cs)
	}
	want, wmin, wmax := int64Set(values)
	verdict := scanAlways
	if sum != nil {
		verdict = func(c int) chunkVerdict {
			lo, hi := sum.IntBounds(c)
			if hi < wmin || lo > wmax {
				return chunkSkip
			}
			return chunkScan
		}
	}
	return filterSegsBitmap(cs, verdict, func(seg Selection, words []uint64, base int32) int {
		n := 0
		for _, row := range seg {
			if _, ok := want[col.Int64(int(row))]; ok {
				local := row - base
				words[local>>6] |= 1 << (uint(local) & 63)
				n++
			}
		}
		return n
	})
}

// FilterFloatSetChunkedBitmap is FilterFloatSetChunked fused into
// bitmap construction.
func FilterFloatSetChunkedBitmap(col FloatValued, cs *ChunkedSelection, values []float64, sum *ChunkSummary) *Bitmap {
	if len(values) == 0 {
		return emptyBitmapLike(cs)
	}
	want, wmin, wmax := float64Set(values)
	verdict := scanAlways
	if sum != nil {
		verdict = func(c int) chunkVerdict {
			lo, hi, _ := sum.FloatBounds(c)
			if hi < wmin || lo > wmax {
				return chunkSkip
			}
			return chunkScan
		}
	}
	return filterSegsBitmap(cs, verdict, func(seg Selection, words []uint64, base int32) int {
		n := 0
		for _, row := range seg {
			if _, ok := want[col.Float64(int(row))]; ok {
				local := row - base
				words[local>>6] |= 1 << (uint(local) & 63)
				n++
			}
		}
		return n
	})
}

// codeSetBits is the shared fused kernel for string predicates: the
// dictionary-code comparison loop writing bits directly.
func codeSetBits(codes []uint32, want map[uint32]struct{}) func(seg Selection, words []uint64, base int32) int {
	return func(seg Selection, words []uint64, base int32) int {
		n := 0
		for _, row := range seg {
			if _, ok := want[codes[row]]; ok {
				local := row - base
				words[local>>6] |= 1 << (uint(local) & 63)
				n++
			}
		}
		return n
	}
}

// FilterStringSetChunkedBitmap is FilterStringSetChunked fused into
// bitmap construction.
func FilterStringSetChunkedBitmap(col *StringColumn, cs *ChunkedSelection, values []string, sum *ChunkSummary) *Bitmap {
	if len(values) == 0 {
		return emptyBitmapLike(cs)
	}
	want := stringCodeSet(col, values)
	if len(want) == 0 {
		return emptyBitmapLike(cs)
	}
	return filterSegsBitmap(cs, codeSetVerdict(sum, want), codeSetBits(col.Codes(), want))
}

// FilterStringRangeChunkedBitmap is FilterStringRangeChunked fused
// into bitmap construction, with the same summary-gated choice
// between the code-set resolution and the direct string-comparison
// scan.
func FilterStringRangeChunkedBitmap(col *StringColumn, cs *ChunkedSelection, lo, hi string, loIncl, hiIncl bool, sum *ChunkSummary) *Bitmap {
	if sum == nil || !sum.canPruneCodes() {
		return filterSegsBitmap(cs, scanAlways, func(seg Selection, words []uint64, base int32) int {
			n := 0
			for _, row := range seg {
				v := col.Str(int(row))
				if v < lo || (v == lo && !loIncl) {
					continue
				}
				if v > hi || (v == hi && !hiIncl) {
					continue
				}
				local := row - base
				words[local>>6] |= 1 << (uint(local) & 63)
				n++
			}
			return n
		})
	}
	want := stringRangeCodeSet(col, lo, hi, loIncl, hiIncl)
	if len(want) == 0 {
		return emptyBitmapLike(cs)
	}
	return filterSegsBitmap(cs, codeSetVerdict(sum, want), codeSetBits(col.Codes(), want))
}

// FilterBoolSetChunkedBitmap is FilterBoolSetChunked fused into
// bitmap construction.
func FilterBoolSetChunkedBitmap(col *BoolColumn, cs *ChunkedSelection, values []bool, sum *ChunkSummary) *Bitmap {
	wantTrue, wantFalse := boolWants(values)
	if !wantTrue && !wantFalse {
		return emptyBitmapLike(cs)
	}
	return filterSegsBitmap(cs, boolSetVerdict(sum, wantTrue, wantFalse), func(seg Selection, words []uint64, base int32) int {
		n := 0
		for _, row := range seg {
			v := col.Bool(int(row))
			if (v && wantTrue) || (!v && wantFalse) {
				local := row - base
				words[local>>6] |= 1 << (uint(local) & 63)
				n++
			}
		}
		return n
	})
}
