// Package engine is the columnar storage substrate Charles runs on.
// It plays the role MonetDB plays in the paper: it stores one
// relation as typed column vectors and supports the two operations
// the advisor needs — counts over conjunctive predicates and
// medians/quantiles within a selection — with column-at-a-time
// execution over power-of-two row-range chunks and per-chunk zone
// maps. A deliberately naive row-store executor is included so the
// paper's column-vs-row claim (Section 5.1) can be measured.
//
// Where the column bytes live is abstracted behind ColumnBackend:
// MemoryBackend holds ordinary Go slices, and internal/colfile
// serves zero-copy views over a memory-mapped columnar file together
// with its persisted zone maps (docs/FORMAT.md). Everything above
// the backend seam — filters, medians, chunk pruning, the advisor —
// is identical for both, which the round-trip tests pin by comparing
// rendered advise output byte for byte.
package engine

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind enumerates the value types the engine stores.
type Kind uint8

// Supported kinds. Dates are stored as days since the Unix epoch and
// behave like integers for cutting purposes.
const (
	KindInvalid Kind = iota
	KindInt
	KindFloat
	KindString
	KindDate
	KindBool
)

// String returns the lower-case kind name used in schemas.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindDate:
		return "date"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// ParseKind parses a schema kind name as produced by Kind.String.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "int":
		return KindInt, nil
	case "float":
		return KindFloat, nil
	case "string":
		return KindString, nil
	case "date":
		return KindDate, nil
	case "bool":
		return KindBool, nil
	default:
		return KindInvalid, fmt.Errorf("engine: unknown kind %q", s)
	}
}

// Numeric reports whether values of this kind are cut with range
// constraints (as opposed to set constraints on nominal values).
func (k Kind) Numeric() bool {
	return k == KindInt || k == KindFloat || k == KindDate
}

// Value is a dynamically typed scalar. Ints, dates (days since
// epoch) and bools share the integer payload; floats and strings use
// their own. Values are small and passed by value.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String_ returns a string value. The underscore avoids colliding
// with the fmt.Stringer method on Value.
func String_(v string) Value { return Value{kind: KindString, s: v} }

// Date returns a date value from days since the Unix epoch.
func Date(days int64) Value { return Value{kind: KindDate, i: days} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// AsInt returns the integer payload (ints, dates and bools).
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the float payload, converting integer payloads so
// numeric comparisons across int/date work naturally.
func (v Value) AsFloat() float64 {
	if v.kind == KindFloat {
		return v.f
	}
	return float64(v.i)
}

// AsString returns the string payload.
func (v Value) AsString() string { return v.s }

// AsBool returns the boolean payload.
func (v Value) AsBool() bool { return v.i != 0 }

// Compare orders two values of the same kind: −1, 0 or +1. Numeric
// kinds (int, float, date) compare with each other through float64.
// It panics when the kinds are not comparable; the SDL layer
// guarantees kind agreement before values meet.
func (v Value) Compare(o Value) int {
	if v.kind == KindString || o.kind == KindString {
		if v.kind != KindString || o.kind != KindString {
			panic("engine: comparing string with non-string value")
		}
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		default:
			return 0
		}
	}
	if v.kind == KindBool || o.kind == KindBool {
		if v.kind != o.kind {
			panic("engine: comparing bool with non-bool value")
		}
	}
	a, b := v.AsFloat(), o.AsFloat()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports deep equality of kind and payload.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.s == o.s
	case KindFloat:
		return v.f == o.f || (math.IsNaN(v.f) && math.IsNaN(o.f))
	default:
		return v.i == o.i
	}
}

// String renders the value the way SDL prints literals: dates as
// ISO-8601, floats with minimal digits, strings verbatim.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindDate:
		return FormatDays(v.i)
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "<invalid>"
	}
}

// DaysFromDate converts a civil date to days since the Unix epoch.
func DaysFromDate(year int, month time.Month, day int) int64 {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return t.Unix() / 86400
}

// FormatDays renders days since the Unix epoch as YYYY-MM-DD.
func FormatDays(days int64) string {
	return time.Unix(days*86400, 0).UTC().Format("2006-01-02")
}

// ParseDays parses a YYYY-MM-DD date into days since the Unix epoch.
func ParseDays(s string) (int64, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("engine: bad date %q: %w", s, err)
	}
	return t.Unix() / 86400, nil
}
