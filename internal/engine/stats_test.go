package engine

import (
	"testing"

	"charles/internal/stats"
)

func TestGatherInt(t *testing.T) {
	col := NewIntColumn("v", []int64{10, 20, 30, 40})
	got := GatherInt(col, Selection{1, 3})
	if len(got) != 2 || got[0] != 20 || got[1] != 40 {
		t.Fatalf("GatherInt = %v", got)
	}
}

func TestGatherFloat(t *testing.T) {
	col := NewFloatColumn("v", []float64{1.5, 2.5, 3.5})
	got := GatherFloat(col, Selection{0, 2})
	if len(got) != 2 || got[0] != 1.5 || got[1] != 3.5 {
		t.Fatalf("GatherFloat = %v", got)
	}
}

func TestIntMinMax(t *testing.T) {
	col := NewIntColumn("v", []int64{5, -3, 9, 2})
	min, max, ok := IntMinMax(col, AllRows(4))
	if !ok || min != -3 || max != 9 {
		t.Fatalf("IntMinMax = %d %d %v", min, max, ok)
	}
	if _, _, ok := IntMinMax(col, Selection{}); ok {
		t.Fatal("empty selection reported ok")
	}
	// Restricted selection sees only its rows.
	min, max, _ = IntMinMax(col, Selection{0, 3})
	if min != 2 || max != 5 {
		t.Fatalf("restricted IntMinMax = %d %d", min, max)
	}
}

func TestFloatMinMax(t *testing.T) {
	col := NewFloatColumn("v", []float64{2.5, 0.5, 1.5})
	min, max, ok := FloatMinMax(col, AllRows(3))
	if !ok || min != 0.5 || max != 2.5 {
		t.Fatalf("FloatMinMax = %v %v %v", min, max, ok)
	}
}

func TestIntMedian(t *testing.T) {
	col := NewIntColumn("v", []int64{40, 10, 30, 20})
	med, ok := IntMedian(col, AllRows(4))
	if !ok || med != 30 { // upper median of {10,20,30,40}
		t.Fatalf("IntMedian = %d %v, want 30", med, ok)
	}
	if _, ok := IntMedian(col, Selection{}); ok {
		t.Fatal("median of empty selection reported ok")
	}
}

func TestFloatMedian(t *testing.T) {
	col := NewFloatColumn("v", []float64{1, 2, 3})
	med, ok := FloatMedian(col, AllRows(3))
	if !ok || med != 2 {
		t.Fatalf("FloatMedian = %v %v", med, ok)
	}
}

func TestIntCutPoints(t *testing.T) {
	vals := make([]int64, 99)
	for i := range vals {
		vals[i] = int64(i)
	}
	col := NewIntColumn("v", vals)
	points := IntCutPoints(col, AllRows(99), 3)
	if len(points) != 2 || points[0] != 33 || points[1] != 66 {
		t.Fatalf("tertile points = %v, want [33 66]", points)
	}
	if points := IntCutPoints(col, Selection{}, 3); points != nil {
		t.Fatalf("points on empty selection = %v", points)
	}
}

func TestStringValueCounts(t *testing.T) {
	col := NewStringColumn("h", []string{"a", "b", "a", "c", "a", "b"})
	vcs := StringValueCounts(col, AllRows(6))
	got := map[string]int{}
	for _, vc := range vcs {
		got[vc.Value] = vc.Count
	}
	if got["a"] != 3 || got["b"] != 2 || got["c"] != 1 {
		t.Fatalf("counts = %v", got)
	}
	// Counts respect the selection.
	vcs = StringValueCounts(col, Selection{0, 1})
	if len(vcs) != 2 {
		t.Fatalf("restricted counts = %v", vcs)
	}
}

func TestBoolValueCounts(t *testing.T) {
	col := NewBoolColumn("armed", []bool{true, true, false})
	vcs := BoolValueCounts(col, AllRows(3))
	if len(vcs) != 2 || vcs[0].Value != "false" || vcs[0].Count != 1 || vcs[1].Count != 2 {
		t.Fatalf("bool counts = %v", vcs)
	}
	vcs = BoolValueCounts(col, Selection{0})
	if len(vcs) != 1 || vcs[0].Value != "true" {
		t.Fatalf("restricted bool counts = %v", vcs)
	}
}

func TestDistinctCount(t *testing.T) {
	tab := smallTable(t)
	all := tab.All()
	if n := DistinctCount(tab.MustColumn("type"), all); n != 3 {
		t.Fatalf("distinct types = %d, want 3", n)
	}
	if n := DistinctCount(tab.MustColumn("tonnage"), all); n != 4 {
		t.Fatalf("distinct tonnages = %d, want 4", n)
	}
	if n := DistinctCount(tab.MustColumn("speed"), all); n != 4 {
		t.Fatalf("distinct speeds = %d, want 4", n)
	}
	if n := DistinctCount(tab.MustColumn("armed"), all); n != 2 {
		t.Fatalf("distinct armed = %d, want 2", n)
	}
	if n := DistinctCount(tab.MustColumn("armed"), Selection{0}); n != 1 {
		t.Fatalf("distinct armed (one row) = %d, want 1", n)
	}
	if n := DistinctCount(tab.MustColumn("armed"), Selection{}); n != 0 {
		t.Fatalf("distinct armed (empty) = %d, want 0", n)
	}
}

func TestFloatMeanVar(t *testing.T) {
	col := NewFloatColumn("v", []float64{2, 4, 4, 4, 5, 5, 7, 9})
	mean, variance, ok := FloatMeanVar(col, AllRows(8))
	if !ok || mean != 5 || variance != 4 {
		t.Fatalf("mean=%v var=%v ok=%v, want 5 4 true", mean, variance, ok)
	}
	if _, _, ok := FloatMeanVar(col, Selection{}); ok {
		t.Fatal("empty selection reported ok")
	}
}

func TestNominalMedianPipeline(t *testing.T) {
	// End-to-end nominal split the way seg will drive it: counts,
	// frequency order, split point.
	col := NewStringColumn("h", []string{
		"bantam", "bantam", "bantam", "surat", "surat", "zeeland",
	})
	vcs := StringValueCounts(col, AllRows(6))
	stats.OrderByFrequency(vcs)
	if vcs[0].Value != "bantam" {
		t.Fatalf("frequency order = %v", vcs)
	}
	k, ok := stats.NominalSplitPoint(vcs)
	if !ok || k != 1 { // {bantam} vs {surat, zeeland}: 3 vs 3
		t.Fatalf("split = %d %v, want 1 true", k, ok)
	}
}
