package engine

import "testing"

func TestRowTableMatchesColumnar(t *testing.T) {
	tab := smallTable(t)
	rt := NewRowTable(tab)
	if rt.NumRows() != tab.NumRows() {
		t.Fatalf("row count = %d, want %d", rt.NumRows(), tab.NumRows())
	}
	tonIdx := rt.ColumnIndex("tonnage")
	if tonIdx < 0 {
		t.Fatal("tonnage column missing from row table")
	}
	if rt.ColumnIndex("nope") != -1 {
		t.Fatal("phantom column resolved")
	}
	r := IntRange{Lo: 150, Hi: 300, LoIncl: true, HiIncl: true}
	rowCount := rt.CountIntRange(tonIdx, r)
	colCount := len(FilterIntRange(tab.MustColumn("tonnage").(*IntColumn), tab.All(), r))
	if rowCount != colCount {
		t.Fatalf("row count %d != column count %d", rowCount, colCount)
	}
	typeIdx := rt.ColumnIndex("type")
	rowSet := rt.CountStringSet(typeIdx, []string{"fluit"})
	colSet := len(FilterStringSet(tab.MustColumn("type").(*StringColumn), tab.All(), []string{"fluit"}))
	if rowSet != colSet || rowSet != 2 {
		t.Fatalf("string set counts: row %d col %d, want 2", rowSet, colSet)
	}
	rowMed, ok := rt.MedianInt(tonIdx)
	if !ok {
		t.Fatal("row median not ok")
	}
	colMed, _ := IntMedian(tab.MustColumn("tonnage").(*IntColumn), tab.All())
	if rowMed != colMed {
		t.Fatalf("row median %d != column median %d", rowMed, colMed)
	}
}

func TestRowTableEmpty(t *testing.T) {
	tab := MustNewTable("t", NewIntColumn("v", nil))
	rt := NewRowTable(tab)
	if _, ok := rt.MedianInt(0); ok {
		t.Fatal("median of empty row table reported ok")
	}
	if n := rt.CountIntRange(0, IntRange{Lo: 0, Hi: 10, LoIncl: true, HiIncl: true}); n != 0 {
		t.Fatalf("count on empty table = %d", n)
	}
}
