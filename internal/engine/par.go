package engine

import (
	"sync/atomic"

	"charles/internal/par"
)

// scanWorkers caps the goroutines a single column scan may fan out
// to. 0 means one per available CPU.
var scanWorkers atomic.Int32

// parallelScanMinRows is the selection size below which chunked
// scans are not worth the goroutine hand-off: small scans stay on
// the calling goroutine at zero overhead.
const parallelScanMinRows = 1 << 15

// activeScanGoroutines counts the extra goroutines currently running
// chunked scans across the whole process. Scans only fan out while
// this stays under the cap, so nested parallelism — many advise
// workers each triggering large scans — degrades gracefully to
// sequential scanning instead of oversubscribing the scheduler.
var activeScanGoroutines atomic.Int32

// SetScanWorkers caps the number of goroutines one column scan may
// use. n < 1 restores the default of one worker per available CPU.
// It applies process-wide: the engine's tables are shared read-only
// structures, so scan parallelism is a deployment knob, not a
// per-session one.
func SetScanWorkers(n int) {
	if n < 1 {
		n = 0
	}
	scanWorkers.Store(int32(n))
}

// ScanWorkers reports the effective scan worker cap.
func ScanWorkers() int {
	return par.Workers(int(scanWorkers.Load()))
}

// grabScanSlots reserves up to want extra scan goroutines against
// the process-wide cap, returning how many were granted (possibly
// zero). Pair with releaseScanSlots.
func grabScanSlots(want, limit int) int {
	for {
		cur := activeScanGoroutines.Load()
		free := int32(limit) - cur
		if free <= 0 {
			return 0
		}
		grant := int32(want)
		if grant > free {
			grant = free
		}
		if activeScanGoroutines.CompareAndSwap(cur, cur+grant) {
			return int(grant)
		}
	}
}

func releaseScanSlots(n int) {
	if n > 0 {
		activeScanGoroutines.Add(int32(-n))
	}
}

// scanChunks splits sel into at most workers contiguous, equally
// sized pieces. Contiguity preserves the sorted-selection invariant
// when per-chunk outputs are concatenated in order.
func scanChunks(sel Selection, workers int) []Selection {
	if workers > len(sel) {
		workers = len(sel)
	}
	chunks := make([]Selection, 0, workers)
	size := (len(sel) + workers - 1) / workers
	for lo := 0; lo < len(sel); lo += size {
		hi := lo + size
		if hi > len(sel) {
			hi = len(sel)
		}
		chunks = append(chunks, sel[lo:hi])
	}
	return chunks
}

// statChunks splits sel for a chunked scan, reserving scan slots for
// the extra goroutines; release must be called when the scan is
// done. A single-element result means the scan stays sequential —
// because the selection is small, the cap is 1, or the process is
// already scanning at the cap. Chunk boundaries never influence scan
// results, so the adaptive width keeps outputs deterministic.
func statChunks(sel Selection) (chunks []Selection, release func()) {
	workers := ScanWorkers()
	if workers <= 1 || len(sel) < parallelScanMinRows {
		return []Selection{sel}, func() {}
	}
	extra := grabScanSlots(workers-1, workers)
	if extra == 0 {
		return []Selection{sel}, func() {}
	}
	return scanChunks(sel, extra+1), func() { releaseScanSlots(extra) }
}

// runChunks executes fn(i) once per chunk index, across the chunks'
// worth of workers (the calling goroutine included).
func runChunks(chunks []Selection, fn func(i int)) {
	if len(chunks) == 1 {
		fn(0)
		return
	}
	par.ForEach(len(chunks), len(chunks), func(i int) error {
		fn(i)
		return nil
	})
}

// parallelFilter runs a per-chunk filter over sel and concatenates
// the chunk outputs in order. filterChunk is called once per chunk
// with a contiguous sub-selection, so typed inner loops stay free of
// per-row indirection; on small selections it is called exactly once
// with sel itself, making the sequential path identical to the
// pre-parallel code.
func parallelFilter(sel Selection, filterChunk func(Selection) Selection) Selection {
	chunks, release := statChunks(sel)
	defer release()
	if len(chunks) == 1 {
		return filterChunk(sel)
	}
	outs := make([]Selection, len(chunks))
	runChunks(chunks, func(i int) {
		outs[i] = filterChunk(chunks[i])
	})
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	out := make(Selection, 0, total)
	for _, o := range outs {
		out = append(out, o...)
	}
	return out
}
