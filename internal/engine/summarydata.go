package engine

import "fmt"

// SummaryData is the serializable content of a ChunkSummary: the
// same per-chunk arrays with exported fields, so storage backends
// (internal/colfile) can persist zone maps next to the column data
// and hand them back through ColumnBackend.ChunkSummary without the
// table re-scanning anything. Exactly one kind family is populated:
// Int* for int/date columns, Float* for float columns, the code
// fields for string columns, Bool* for bool columns. Slices are
// shared, not copied — summaries are immutable once built.
type SummaryData struct {
	// Int/date columns: per-chunk [min, max].
	IntMin, IntMax []int64

	// Float columns: per-chunk NaN-ignoring [min, max] plus whether
	// the chunk is NaN-free (all-NaN chunks carry NaN bounds).
	FloatMin, FloatMax []float64
	FloatPure          []bool

	// String columns: presence of dictionary codes per chunk, in
	// exactly one of two forms. DictLen is the dictionary
	// cardinality the presence sets are defined over.
	DictLen int
	// CodeBits is the dense form: per chunk, a bitset of
	// ceil(DictLen/64) words.
	CodeBits [][]uint64
	// CodeList is the sparse form: per chunk, a sorted distinct-code
	// list, meaningless where CodeOverflow marks the chunk as
	// holding too many distinct codes to summarize.
	CodeList     [][]uint32
	CodeOverflow []bool

	// Bool columns: which of the two values each chunk holds.
	BoolHasTrue, BoolHasFalse []bool
}

// Export returns the summary's content for serialization.
func (s *ChunkSummary) Export() SummaryData {
	return SummaryData{
		IntMin: s.intMin, IntMax: s.intMax,
		FloatMin: s.floatMin, FloatMax: s.floatMax, FloatPure: s.floatPure,
		DictLen:  s.dictLen,
		CodeBits: s.codeBits, CodeList: s.codeList, CodeOverflow: s.codeOverflow,
		BoolHasTrue: s.boolHasTrue, BoolHasFalse: s.boolHasFalse,
	}
}

// ImportSummary validates deserialized summary content against the
// chunk count it claims to describe and wraps it as a ChunkSummary.
// It accepts either string form regardless of dictionary size, so a
// reader stays compatible with writers that chose the form by
// different thresholds.
func ImportSummary(d SummaryData, numChunks int) (*ChunkSummary, error) {
	lengthsOK := func(family string, lens ...int) error {
		for _, n := range lens {
			if n != numChunks {
				return fmt.Errorf("engine: %s summary describes %d chunks, want %d", family, n, numChunks)
			}
		}
		return nil
	}
	families := 0
	s := &ChunkSummary{}
	if d.IntMin != nil || d.IntMax != nil {
		families++
		if err := lengthsOK("int", len(d.IntMin), len(d.IntMax)); err != nil {
			return nil, err
		}
		s.intMin, s.intMax = d.IntMin, d.IntMax
	}
	if d.FloatMin != nil || d.FloatMax != nil || d.FloatPure != nil {
		families++
		if err := lengthsOK("float", len(d.FloatMin), len(d.FloatMax), len(d.FloatPure)); err != nil {
			return nil, err
		}
		s.floatMin, s.floatMax, s.floatPure = d.FloatMin, d.FloatMax, d.FloatPure
	}
	if d.CodeBits != nil || d.CodeList != nil {
		families++
		if d.DictLen <= 0 {
			return nil, fmt.Errorf("engine: code summary with dictionary length %d", d.DictLen)
		}
		s.dictLen = d.DictLen
		switch {
		case d.CodeBits != nil && d.CodeList != nil:
			return nil, fmt.Errorf("engine: code summary carries both dense and sparse forms")
		case d.CodeBits != nil:
			if err := lengthsOK("code-bitset", len(d.CodeBits)); err != nil {
				return nil, err
			}
			words := (d.DictLen + 63) / 64
			for c, bits := range d.CodeBits {
				if len(bits) != words {
					return nil, fmt.Errorf("engine: chunk %d code bitset has %d words, want %d", c, len(bits), words)
				}
			}
			s.codeBits = d.CodeBits
		default:
			if err := lengthsOK("code-list", len(d.CodeList), len(d.CodeOverflow)); err != nil {
				return nil, err
			}
			for c, list := range d.CodeList {
				for i := 1; i < len(list); i++ {
					if list[i-1] >= list[i] {
						return nil, fmt.Errorf("engine: chunk %d code list is not strictly sorted", c)
					}
				}
				if n := len(list); n > 0 && int(list[n-1]) >= d.DictLen {
					return nil, fmt.Errorf("engine: chunk %d code list holds code %d beyond dictionary length %d",
						c, list[n-1], d.DictLen)
				}
			}
			s.codeList, s.codeOverflow = d.CodeList, d.CodeOverflow
		}
	}
	if d.BoolHasTrue != nil || d.BoolHasFalse != nil {
		families++
		if err := lengthsOK("bool", len(d.BoolHasTrue), len(d.BoolHasFalse)); err != nil {
			return nil, err
		}
		s.boolHasTrue, s.boolHasFalse = d.BoolHasTrue, d.BoolHasFalse
	}
	if families != 1 {
		return nil, fmt.Errorf("engine: summary populates %d kind families, want exactly 1", families)
	}
	return s, nil
}
