package engine

import (
	"testing"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindInt: "int", KindFloat: "float", KindString: "string",
		KindDate: "date", KindBool: "bool", KindInvalid: "invalid",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindInt, KindFloat, KindString, KindDate, KindBool} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("decimal"); err == nil {
		t.Error("ParseKind accepted unknown kind")
	}
}

func TestKindNumeric(t *testing.T) {
	for k, want := range map[Kind]bool{
		KindInt: true, KindFloat: true, KindDate: true,
		KindString: false, KindBool: false,
	} {
		if k.Numeric() != want {
			t.Errorf("%v.Numeric() = %v, want %v", k, k.Numeric(), want)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if v := Int(42); v.Kind() != KindInt || v.AsInt() != 42 || v.AsFloat() != 42 {
		t.Error("Int value broken")
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.AsFloat() != 2.5 {
		t.Error("Float value broken")
	}
	if v := String_("jacht"); v.Kind() != KindString || v.AsString() != "jacht" {
		t.Error("String value broken")
	}
	if v := Bool(true); v.Kind() != KindBool || !v.AsBool() {
		t.Error("Bool value broken")
	}
	if v := Date(0); v.Kind() != KindDate || v.String() != "1970-01-01" {
		t.Errorf("Date(0) = %q, want 1970-01-01", v.String())
	}
}

func TestValueCompare(t *testing.T) {
	if Int(1).Compare(Int(2)) != -1 || Int(2).Compare(Int(1)) != 1 || Int(2).Compare(Int(2)) != 0 {
		t.Error("int compare broken")
	}
	if String_("a").Compare(String_("b")) != -1 {
		t.Error("string compare broken")
	}
	// Numeric kinds interoperate.
	if Int(3).Compare(Float(3.5)) != -1 {
		t.Error("int/float compare broken")
	}
	if Date(10).Compare(Int(10)) != 0 {
		t.Error("date/int compare broken")
	}
}

func TestValueComparePanicsOnMixedString(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic comparing string with int")
		}
	}()
	String_("a").Compare(Int(1))
}

func TestValueEqual(t *testing.T) {
	if !Int(5).Equal(Int(5)) || Int(5).Equal(Int(6)) {
		t.Error("int equality broken")
	}
	if Int(5).Equal(Float(5)) {
		t.Error("cross-kind values must not be equal")
	}
	if !String_("x").Equal(String_("x")) {
		t.Error("string equality broken")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(-7), "-7"},
		{Float(1.25), "1.25"},
		{String_("fluit"), "fluit"},
		{Bool(false), "false"},
		{Date(DaysFromDate(1650, time.March, 15)), "1650-03-15"},
		{Value{}, "<invalid>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestDateRoundTrip(t *testing.T) {
	for _, s := range []string{"1602-03-20", "1970-01-01", "2026-06-10", "1799-12-31"} {
		days, err := ParseDays(s)
		if err != nil {
			t.Fatalf("ParseDays(%q): %v", s, err)
		}
		if got := FormatDays(days); got != s {
			t.Errorf("round trip %q -> %d -> %q", s, days, got)
		}
	}
	if _, err := ParseDays("20-03-1602"); err == nil {
		t.Error("ParseDays accepted non-ISO date")
	}
}

func TestDaysFromDateEpoch(t *testing.T) {
	if d := DaysFromDate(1970, time.January, 1); d != 0 {
		t.Fatalf("epoch days = %d, want 0", d)
	}
	if d := DaysFromDate(1970, time.January, 2); d != 1 {
		t.Fatalf("epoch+1 days = %d, want 1", d)
	}
}
