package engine

import (
	"fmt"
	"sync/atomic"
)

// tableIDs hands every table a process-unique identity so
// fingerprints from different tables can never collide, even when
// the tables hold identical data (two sessions mutating two copies
// must not share cached results).
var tableIDs atomic.Uint64

// EpochStamp is one immutable snapshot of a table's mutation state:
// a monotonically increasing version, the row count and chunk width
// at that version, and one epoch per chunk — the version of the last
// mutation that touched the chunk's rows. Derived state (zone maps,
// cached selections, packed bitmaps) records the stamp it was built
// under; comparing that stamp against the table's current one yields
// exactly the set of chunks whose contribution must be recomputed,
// which is what makes a 1% delta cost ~1% of a cold advise.
//
// Stamps are never mutated after publication: every AppendRows or
// UpdateRows builds a fresh stamp and swaps it in atomically, so a
// reader holding one sees a consistent (version, rows, epochs)
// triple forever.
type EpochStamp struct {
	version   uint64
	nRows     int
	chunkRows int
	epochs    []uint64
}

// Version returns the table version the stamp describes. Version 0
// is the unmutated table as constructed.
func (s *EpochStamp) Version() uint64 { return s.version }

// NumRows returns the row count at the stamp's version.
func (s *EpochStamp) NumRows() int { return s.nRows }

// ChunkRows returns the chunk width the epochs are addressed by.
func (s *EpochStamp) ChunkRows() int { return s.chunkRows }

// NumChunks returns the number of chunks the stamp covers.
func (s *EpochStamp) NumChunks() int { return len(s.epochs) }

// ChunkEpoch returns the version of the last mutation that touched
// chunk c.
func (s *EpochStamp) ChunkEpoch(c int) uint64 { return s.epochs[c] }

// DirtyVs compares the stamp against an older one and returns the
// per-chunk dirty set: dirty[c] is true when chunk c's data changed
// between old and s — its epoch moved, or the chunk did not exist at
// old (rows were appended past it). ok is false when the two stamps
// are not chunk-comparable (different chunk widths, or old is not
// actually older); callers then fall back to a full recomputation.
func (s *EpochStamp) DirtyVs(old *EpochStamp) (dirty []bool, ok bool) {
	if old == nil || old.chunkRows != s.chunkRows || old.nRows > s.nRows || old.version > s.version {
		return nil, false
	}
	dirty = make([]bool, len(s.epochs))
	for c := range s.epochs {
		dirty[c] = c >= len(old.epochs) || s.epochs[c] != old.epochs[c]
	}
	return dirty, true
}

// Stamp returns the table's current epoch stamp. The stamp is
// immutable; pointer equality with a previously observed stamp means
// nothing changed in between.
func (t *Table) Stamp() *EpochStamp { return t.stamp.Load() }

// Version returns the table's mutation version: 0 as constructed,
// +1 per AppendRows/UpdateRows.
func (t *Table) Version() uint64 { return t.stamp.Load().version }

// Fingerprint identifies the table's logical content within this
// process: it changes on every mutation and never collides across
// tables. Derived-state caches that outlive one advise — the pair
// memo a stream holds across Next calls, a server's result LRU —
// fold it into their keys so entries computed over older data miss
// instead of lying. The string is cached per version, so keying a
// warm hot path on it costs a pointer load, not a format call.
func (t *Table) Fingerprint() string {
	if p := t.fp.Load(); p != nil {
		return *p
	}
	s := fmt.Sprintf("t%d@v%d", t.id, t.stamp.Load().version)
	t.fp.Store(&s)
	return s
}

// resetStamp installs a fresh stamp for the current rows at the
// given chunk width, preserving the version and marking every chunk
// as last touched at that version. It runs at construction and on
// re-shard — epoch history is per-width, so a width change restarts
// it (stale-width artifacts are caught by the width check in DirtyVs
// and recomputed in full).
func (t *Table) resetStamp(chunkRows int) {
	var version uint64
	if s := t.stamp.Load(); s != nil {
		version = s.version
	}
	epochs := make([]uint64, numChunksFor(t.rows, chunkRows))
	for c := range epochs {
		epochs[c] = version
	}
	t.stamp.Store(&EpochStamp{version: version, nRows: t.rows, chunkRows: chunkRows, epochs: epochs})
}

// nextStamp clones the current stamp for a table that now holds
// newRows rows, bumps the version, and returns it for dirty-chunk
// marking. Chunks that existed before keep their epochs until the
// caller marks them; brand-new tail chunks start dirty at the new
// version (no prior artifact can cover rows that did not exist).
func (t *Table) nextStamp(newRows int) *EpochStamp {
	old := t.stamp.Load()
	next := &EpochStamp{
		version:   old.version + 1,
		nRows:     newRows,
		chunkRows: old.chunkRows,
		epochs:    make([]uint64, numChunksFor(newRows, old.chunkRows)),
	}
	copy(next.epochs, old.epochs)
	for c := len(old.epochs); c < len(next.epochs); c++ {
		next.epochs[c] = next.version
	}
	return next
}

// commitStamp publishes a mutation: the new stamp, the new row
// count, and an invalidated fingerprint, in an order that keeps
// concurrent readers consistent (they see either the old world or
// the new one in full, because mutations are not concurrent with
// queries — see AppendRows).
func (t *Table) commitStamp(st *EpochStamp) {
	t.rows = st.nRows
	t.stamp.Store(st)
	t.fp.Store(nil)
}

// mutableColumn is implemented by every in-memory column type. The
// table validates kinds and bounds before calling either method, so
// implementations trust their input — a half-applied mutation must
// be impossible.
type mutableColumn interface {
	appendValue(v Value)
	setValue(row int, v Value)
}

func (c *IntColumn) appendValue(v Value)       { c.vals = append(c.vals, v.AsInt()) }
func (c *IntColumn) setValue(row int, v Value) { c.vals[row] = v.AsInt() }

func (c *DateColumn) appendValue(v Value)       { c.days = append(c.days, v.AsInt()) }
func (c *DateColumn) setValue(row int, v Value) { c.days[row] = v.AsInt() }

func (c *FloatColumn) appendValue(v Value)       { c.vals = append(c.vals, v.AsFloat()) }
func (c *FloatColumn) setValue(row int, v Value) { c.vals[row] = v.AsFloat() }

func (c *BoolColumn) appendValue(v Value)       { c.vals = append(c.vals, v.AsBool()) }
func (c *BoolColumn) setValue(row int, v Value) { c.vals[row] = v.AsBool() }

// codeFor returns the dictionary code for s, growing the dictionary
// when the value is new. Growth is append-only: existing codes never
// change meaning, so cached summaries built for a smaller dictionary
// stay decodable (they are rebuilt anyway — the dictionary length is
// part of the summary's identity).
func (c *StringColumn) codeFor(s string) uint32 {
	if code, ok := c.index[s]; ok {
		return code
	}
	code := uint32(len(c.dict))
	c.dict = append(c.dict, s)
	c.index[s] = code
	return code
}

func (c *StringColumn) appendValue(v Value)       { c.codes = append(c.codes, c.codeFor(v.AsString())) }
func (c *StringColumn) setValue(row int, v Value) { c.codes[row] = c.codeFor(v.AsString()) }

// mutable returns the table's columns as mutable columns, or an
// error naming the first column that is not in-memory. Mutation is
// gated to memory-backed tables: a colfile-backed table's columns
// alias a read-only mapping — writing through them would fault, and
// the on-disk format is append-free by design (docs/FORMAT.md; a
// segment-file append scheme is a ROADMAP item). Mutate a file's
// data by loading it into memory or re-running ingest.
func (t *Table) mutable() ([]mutableColumn, error) {
	if _, ok := t.backend.(*MemoryBackend); !ok {
		return nil, fmt.Errorf("engine: table %q is not memory-backed (%T): .chc-backed tables are read-only; reload the data in memory to mutate it", t.name, t.backend)
	}
	out := make([]mutableColumn, len(t.cols))
	for i, c := range t.cols {
		mc, ok := c.(mutableColumn)
		if !ok {
			return nil, fmt.Errorf("engine: column %q (%T) does not support mutation", c.Name(), c)
		}
		out[i] = mc
	}
	return out, nil
}

// AppendRows appends rows to a memory-backed table, each row holding
// one Value per column in declaration order with matching kinds.
// Validation is all-or-nothing: a malformed row leaves the table
// untouched. On success the table's version advances and exactly the
// chunks covering the new rows — including the partial tail chunk
// the first new row lands in — are marked dirty, so epoch-aware
// caches re-evaluate only those chunks.
//
// Mutations must not run concurrently with advises on the same
// table (the same contract SetChunkRows has): the swap of rows,
// stamp and summaries is not one atomic unit. Concurrent mutations
// against each other are serialized internally.
func (t *Table) AppendRows(rows ...[]Value) error {
	if len(rows) == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cols, err := t.mutable()
	if err != nil {
		return err
	}
	for ri, row := range rows {
		if len(row) != len(t.cols) {
			return fmt.Errorf("engine: append row %d has %d values, table %q has %d columns", ri, len(row), t.name, len(t.cols))
		}
		for i, v := range row {
			if v.Kind() != t.cols[i].Kind() {
				return fmt.Errorf("engine: append row %d: column %q wants %v, got %v", ri, t.cols[i].Name(), t.cols[i].Kind(), v.Kind())
			}
		}
	}
	oldRows := t.rows
	for _, row := range rows {
		for i, v := range row {
			cols[i].appendValue(v)
		}
	}
	st := t.nextStamp(oldRows + len(rows))
	for c := oldRows / st.chunkRows; c < len(st.epochs); c++ {
		st.epochs[c] = st.version
	}
	t.commitStamp(st)
	return nil
}

// UpdateRows overwrites one column's values at the selected rows:
// vals[i] replaces the value at row sel[i]. Kinds and row bounds are
// validated before anything is written, so a malformed update leaves
// the table untouched. Only the chunks containing updated rows are
// marked dirty. The concurrency contract is AppendRows'.
func (t *Table) UpdateRows(sel Selection, column string, vals []Value) error {
	if len(sel) == 0 && len(vals) == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cols, err := t.mutable()
	if err != nil {
		return err
	}
	i, ok := t.byName[column]
	if !ok {
		return fmt.Errorf("engine: no column %q in table %q", column, t.name)
	}
	if len(vals) != len(sel) {
		return fmt.Errorf("engine: update of column %q has %d values for %d rows", column, len(vals), len(sel))
	}
	kind := t.cols[i].Kind()
	for j, row := range sel {
		if row < 0 || int(row) >= t.rows {
			return fmt.Errorf("engine: update row %d out of range [0, %d)", row, t.rows)
		}
		if vals[j].Kind() != kind {
			return fmt.Errorf("engine: update of column %q wants %v, got %v at row %d", column, kind, vals[j].Kind(), row)
		}
	}
	for j, row := range sel {
		cols[i].setValue(int(row), vals[j])
	}
	st := t.nextStamp(t.rows)
	for _, row := range sel {
		st.epochs[int(row)/st.chunkRows] = st.version
	}
	t.commitStamp(st)
	return nil
}
