package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Table is one relation: a set of equal-length columns with unique
// names. Charles restricts itself to a single relation (Section 2),
// so the table is the whole database as far as the advisor is
// concerned. The schema is fixed at construction; memory-backed
// tables additionally accept row mutation (AppendRows, UpdateRows),
// tracked per chunk by an epoch stamp so derived state invalidates
// at chunk granularity rather than wholesale.
//
// Physically the table is sharded by row range into fixed-width
// chunks (SetChunkRows): chunks are the unit of parallel scanning
// and of zone-map skipping. The columns stay contiguous — chunking
// is an addressing scheme over them, so row ids remain dense and
// global.
type Table struct {
	name    string
	cols    []Column
	byName  map[string]int
	rows    int
	backend ColumnBackend

	// id is process-unique; it anchors Fingerprint so two tables can
	// never alias each other's cache entries.
	id uint64

	// mu serializes mutations against each other (not against reads:
	// mutation is not concurrent with advising, see AppendRows).
	mu sync.Mutex

	// layout is the current chunk design (width + per-column zone
	// maps), swapped atomically as one unit by SetChunkRows.
	layout atomic.Pointer[tableLayout]

	// stamp is the current epoch stamp (version + per-chunk epochs),
	// swapped as one immutable unit by every mutation; fp caches the
	// fingerprint string for the current version.
	stamp atomic.Pointer[EpochStamp]
	fp    atomic.Pointer[string]
}

// NewTable builds a table from in-memory columns, validating that
// names are unique and non-empty and that all columns have the same
// length. It is NewTableFromBackend over a MemoryBackend.
func NewTable(name string, cols ...Column) (*Table, error) {
	return NewTableFromBackend(NewMemoryBackend(name, cols...))
}

// MustNewTable is NewTable that panics on error, for tests and
// generators whose schemas are static.
func MustNewTable(name string, cols ...Column) *Table {
	t, err := NewTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.rows }

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.cols) }

// Columns returns the column list in declaration order.
func (t *Table) Columns() []Column { return t.cols }

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.cols))
	for i, c := range t.cols {
		names[i] = c.Name()
	}
	return names
}

// Column returns the i-th column.
func (t *Table) Column(i int) Column { return t.cols[i] }

// ColumnByName looks a column up by name.
func (t *Table) ColumnByName(name string) (Column, bool) {
	i, ok := t.byName[name]
	if !ok {
		return nil, false
	}
	return t.cols[i], true
}

// MustColumn returns the named column or panics; for callers that
// have already validated the schema.
func (t *Table) MustColumn(name string) Column {
	c, ok := t.ColumnByName(name)
	if !ok {
		panic(fmt.Sprintf("engine: no column %q in table %q", name, t.name))
	}
	return c
}

// All returns a selection covering every row of the table.
func (t *Table) All() Selection { return AllRows(t.rows) }

// Backend returns the storage backend the table's columns live in.
func (t *Table) Backend() ColumnBackend { return t.backend }

// Close releases the table's storage backend. For memory-backed
// tables it is a no-op; for file-backed tables it unmaps the file,
// after which no column of the table may be touched again. Close a
// table only once nothing is advising on it.
func (t *Table) Close() error {
	if t.backend == nil {
		return nil
	}
	return t.backend.Close()
}
