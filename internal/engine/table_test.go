package engine

import "testing"

func smallTable(t *testing.T) *Table {
	t.Helper()
	tab, err := NewTable("boats",
		NewStringColumn("type", []string{"fluit", "jacht", "fluit", "pinas"}),
		NewIntColumn("tonnage", []int64{300, 120, 280, 200}),
		NewFloatColumn("speed", []float64{4.5, 7.2, 4.8, 5.9}),
		NewDateColumn("built", []int64{-110000, -109000, -108000, -107000}),
		NewBoolColumn("armed", []bool{true, false, true, true}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("empty"); err == nil {
		t.Error("table with no columns accepted")
	}
	if _, err := NewTable("bad",
		NewIntColumn("a", []int64{1, 2}),
		NewIntColumn("b", []int64{1, 2, 3}),
	); err == nil {
		t.Error("ragged columns accepted")
	}
	if _, err := NewTable("dup",
		NewIntColumn("a", []int64{1}),
		NewIntColumn("a", []int64{2}),
	); err == nil {
		t.Error("duplicate column names accepted")
	}
	if _, err := NewTable("anon", NewIntColumn("", []int64{1})); err == nil {
		t.Error("empty column name accepted")
	}
}

func TestTableAccessors(t *testing.T) {
	tab := smallTable(t)
	if tab.Name() != "boats" || tab.NumRows() != 4 || tab.NumCols() != 5 {
		t.Fatalf("basic accessors wrong: %s %d %d", tab.Name(), tab.NumRows(), tab.NumCols())
	}
	names := tab.ColumnNames()
	if names[0] != "type" || names[4] != "armed" {
		t.Fatalf("column names wrong: %v", names)
	}
	if c, ok := tab.ColumnByName("tonnage"); !ok || c.Kind() != KindInt {
		t.Fatal("ColumnByName(tonnage) failed")
	}
	if _, ok := tab.ColumnByName("nope"); ok {
		t.Fatal("ColumnByName found a phantom column")
	}
	if got := tab.All(); len(got) != 4 || !got.IsSorted() {
		t.Fatalf("All() = %v", got)
	}
}

func TestMustColumnPanics(t *testing.T) {
	tab := smallTable(t)
	defer func() {
		if recover() == nil {
			t.Fatal("MustColumn on missing column did not panic")
		}
	}()
	tab.MustColumn("missing")
}

func TestMustNewTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewTable on bad input did not panic")
		}
	}()
	MustNewTable("bad")
}

func TestColumnValues(t *testing.T) {
	tab := smallTable(t)
	sc := tab.MustColumn("type").(*StringColumn)
	if sc.Str(0) != "fluit" || sc.Str(3) != "pinas" {
		t.Fatal("string decode broken")
	}
	if sc.Cardinality() != 3 {
		t.Fatalf("cardinality = %d, want 3", sc.Cardinality())
	}
	if code, ok := sc.CodeOf("jacht"); !ok || sc.DictValue(code) != "jacht" {
		t.Fatal("dictionary lookup broken")
	}
	if _, ok := sc.CodeOf("galjoot"); ok {
		t.Fatal("CodeOf found a phantom value")
	}
	// Same string must share one code (dictionary encoding).
	if sc.Code(0) != sc.Code(2) {
		t.Fatal("duplicate strings got different codes")
	}
	ic := tab.MustColumn("tonnage").(*IntColumn)
	if ic.Int64(1) != 120 || ic.Value(1).AsInt() != 120 {
		t.Fatal("int access broken")
	}
	fc := tab.MustColumn("speed").(*FloatColumn)
	if fc.Float64(2) != 4.8 {
		t.Fatal("float access broken")
	}
	bc := tab.MustColumn("armed").(*BoolColumn)
	if bc.Bool(1) || !bc.Bool(0) {
		t.Fatal("bool access broken")
	}
	dc := tab.MustColumn("built").(*DateColumn)
	if dc.Int64(0) != -110000 || dc.Value(0).Kind() != KindDate {
		t.Fatal("date access broken")
	}
}
