package engine

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// NullPolicy controls how the CSV loader handles empty cells. The
// paper ignores missing values; internally columns are non-nullable
// so Definition 3 partitions stay exact, hence the loader must
// resolve empties at the boundary.
type NullPolicy uint8

// Loader policies for empty cells.
const (
	// NullReject makes the load fail on the first empty cell.
	NullReject NullPolicy = iota
	// NullImpute replaces empty cells with a kind-specific default:
	// 0 for numbers, 1970-01-01 for dates, false for bools and the
	// literal "unknown" for strings.
	NullImpute
)

// ColumnSpec declares one column of an explicit CSV schema.
type ColumnSpec struct {
	Name string
	Kind Kind
}

// CSVOptions configures ReadCSV.
type CSVOptions struct {
	// TableName names the resulting table; defaults to "csv".
	TableName string
	// Schema, when non-nil, overrides type inference. Names must
	// match the header.
	Schema []ColumnSpec
	// Nulls selects the empty-cell policy (default NullReject).
	Nulls NullPolicy
	// Comma is the field separator (default ',').
	Comma rune
}

// ReadCSV loads a headered CSV stream into a columnar table. Without
// an explicit schema, each column's kind is inferred from its values
// in order of preference: int, date (YYYY-MM-DD), float, bool,
// string. An empty input (header only) is an error: Charles needs
// rows to advise on.
func ReadCSV(r io.Reader, opts CSVOptions) (*Table, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.ReuseRecord = false
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("engine: reading csv header: %w", err)
	}
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("engine: reading csv rows: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("engine: csv has no data rows")
	}
	name := opts.TableName
	if name == "" {
		name = "csv"
	}
	kinds := make([]Kind, len(header))
	if opts.Schema != nil {
		if len(opts.Schema) != len(header) {
			return nil, fmt.Errorf("engine: schema has %d columns, csv has %d", len(opts.Schema), len(header))
		}
		for i, spec := range opts.Schema {
			if spec.Name != strings.TrimSpace(header[i]) {
				return nil, fmt.Errorf("engine: schema column %d is %q, header says %q", i, spec.Name, header[i])
			}
			kinds[i] = spec.Kind
		}
	} else {
		for i := range header {
			kinds[i] = inferKind(records, i)
		}
	}
	cols := make([]Column, len(header))
	for i, h := range header {
		col, err := buildColumn(strings.TrimSpace(h), kinds[i], records, i, opts.Nulls)
		if err != nil {
			return nil, err
		}
		cols[i] = col
	}
	return NewTable(name, cols...)
}

// ReadCSVFile is ReadCSV over a file path.
func ReadCSVFile(path string, opts CSVOptions) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if opts.TableName == "" {
		base := path
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		opts.TableName = strings.TrimSuffix(base, ".csv")
	}
	return ReadCSV(f, opts)
}

func inferKind(records [][]string, col int) Kind {
	couldInt, couldDate, couldFloat, couldBool := true, true, true, true
	sawValue := false
	for _, rec := range records {
		cell := strings.TrimSpace(rec[col])
		if cell == "" {
			continue // null cells don't vote
		}
		sawValue = true
		if couldInt {
			if _, err := strconv.ParseInt(cell, 10, 64); err != nil {
				couldInt = false
			}
		}
		if couldDate {
			if _, err := ParseDays(cell); err != nil {
				couldDate = false
			}
		}
		if couldFloat {
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				couldFloat = false
			}
		}
		if couldBool {
			if cell != "true" && cell != "false" {
				couldBool = false
			}
		}
		if !couldInt && !couldDate && !couldFloat && !couldBool {
			return KindString
		}
	}
	switch {
	case !sawValue:
		return KindString
	case couldInt:
		return KindInt
	case couldDate:
		return KindDate
	case couldFloat:
		return KindFloat
	case couldBool:
		return KindBool
	default:
		return KindString
	}
}

func buildColumn(name string, kind Kind, records [][]string, col int, nulls NullPolicy) (Column, error) {
	cellErr := func(row int, cell string, err error) error {
		return fmt.Errorf("engine: csv row %d column %q: bad %s %q: %v", row+2, name, kind, cell, err)
	}
	switch kind {
	case KindInt:
		vals := make([]int64, len(records))
		for r, rec := range records {
			cell := strings.TrimSpace(rec[col])
			if cell == "" {
				if nulls == NullReject {
					return nil, fmt.Errorf("engine: csv row %d column %q: empty cell", r+2, name)
				}
				continue
			}
			v, err := strconv.ParseInt(cell, 10, 64)
			if err != nil {
				return nil, cellErr(r, cell, err)
			}
			vals[r] = v
		}
		return NewIntColumn(name, vals), nil
	case KindDate:
		vals := make([]int64, len(records))
		for r, rec := range records {
			cell := strings.TrimSpace(rec[col])
			if cell == "" {
				if nulls == NullReject {
					return nil, fmt.Errorf("engine: csv row %d column %q: empty cell", r+2, name)
				}
				continue
			}
			v, err := ParseDays(cell)
			if err != nil {
				return nil, cellErr(r, cell, err)
			}
			vals[r] = v
		}
		return NewDateColumn(name, vals), nil
	case KindFloat:
		vals := make([]float64, len(records))
		for r, rec := range records {
			cell := strings.TrimSpace(rec[col])
			if cell == "" {
				if nulls == NullReject {
					return nil, fmt.Errorf("engine: csv row %d column %q: empty cell", r+2, name)
				}
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, cellErr(r, cell, err)
			}
			vals[r] = v
		}
		return NewFloatColumn(name, vals), nil
	case KindBool:
		vals := make([]bool, len(records))
		for r, rec := range records {
			cell := strings.TrimSpace(rec[col])
			if cell == "" {
				if nulls == NullReject {
					return nil, fmt.Errorf("engine: csv row %d column %q: empty cell", r+2, name)
				}
				continue
			}
			switch cell {
			case "true":
				vals[r] = true
			case "false":
				vals[r] = false
			default:
				return nil, cellErr(r, cell, fmt.Errorf("not a bool"))
			}
		}
		return NewBoolColumn(name, vals), nil
	case KindString:
		vals := make([]string, len(records))
		for r, rec := range records {
			cell := strings.TrimSpace(rec[col])
			if cell == "" {
				if nulls == NullReject {
					return nil, fmt.Errorf("engine: csv row %d column %q: empty cell", r+2, name)
				}
				cell = "unknown"
			}
			vals[r] = cell
		}
		return NewStringColumn(name, vals), nil
	default:
		return nil, fmt.Errorf("engine: cannot build column of kind %v", kind)
	}
}

// WriteCSV writes the table as headered CSV, rendering values the
// way Value.String does (dates as YYYY-MM-DD).
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return err
	}
	rec := make([]string, t.NumCols())
	for row := 0; row < t.NumRows(); row++ {
		for c, col := range t.Columns() {
			rec[c] = col.Value(row).String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile is WriteCSV over a file path.
func WriteCSVFile(path string, t *Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
