package engine

import "math/bits"

// Bitmap is the word-packed alternative to the sorted row-id
// Selection: one bit per table row, set when the row is selected.
// For dense selections it turns the sorted-merge intersection —
// the hot operation behind SDL products and INDEP — into word-wise
// AND + popcount, touching 1/64th of the memory per element and no
// branches. Sparse selections stay cheaper as row-id vectors; see
// DenseEnough for the crossover heuristic.
//
// A Bitmap is immutable after construction and therefore safe for
// concurrent readers, matching the Selection contract.
type Bitmap struct {
	words []uint64
	nRows int
	ones  int
}

// bitmapDensityDen is the density crossover denominator: at
// |sel|/nRows ≥ 1/64 the bitmap's nRows/64 words cost no more to
// scan than the selection's row ids, and the word-parallel AND wins.
const bitmapDensityDen = 64

// DenseEnough reports whether a selection of selLen rows out of
// nRows is dense enough (≥ 1/64) for the bitmap representation to
// beat the sorted row-id vector.
func DenseEnough(selLen, nRows int) bool {
	return selLen > 0 && int64(selLen)*bitmapDensityDen >= int64(nRows)
}

// NewBitmap packs a sorted selection over an nRows universe into a
// bitmap. Every row id must be in [0, nRows).
func NewBitmap(sel Selection, nRows int) *Bitmap {
	b := &Bitmap{
		words: make([]uint64, (nRows+63)/64),
		nRows: nRows,
		ones:  len(sel),
	}
	for _, row := range sel {
		b.words[row>>6] |= 1 << (uint(row) & 63)
	}
	return b
}

// NumRows returns the universe size the bitmap was built over.
func (b *Bitmap) NumRows() int { return b.nRows }

// Count returns the number of selected rows (the popcount).
func (b *Bitmap) Count() int { return b.ones }

// Contains reports whether row is selected. Rows outside the
// universe are never selected.
func (b *Bitmap) Contains(row int32) bool {
	if row < 0 || int(row) >= b.nRows {
		return false
	}
	return b.words[row>>6]&(1<<(uint(row)&63)) != 0
}

// AndCount returns |b ∩ o| by word-wise AND + popcount, without
// materializing the intersection — the bitmap counterpart of
// IntersectCount.
func (b *Bitmap) AndCount(o *Bitmap) int {
	w, ow := b.words, o.words
	if len(ow) < len(w) {
		w, ow = ow, w
	}
	n := 0
	for i, x := range w {
		n += bits.OnesCount64(x & ow[i])
	}
	return n
}

// And returns the materialized intersection b ∩ o as a fresh bitmap
// over the smaller universe.
func (b *Bitmap) And(o *Bitmap) *Bitmap {
	small, big := b, o
	if big.nRows < small.nRows {
		small, big = big, small
	}
	out := &Bitmap{
		words: make([]uint64, len(small.words)),
		nRows: small.nRows,
	}
	for i, x := range small.words {
		w := x & big.words[i]
		out.words[i] = w
		out.ones += bits.OnesCount64(w)
	}
	return out
}

// Selection materializes the bitmap back into a sorted row-id
// vector, the exact inverse of NewBitmap.
func (b *Bitmap) Selection() Selection {
	out := make(Selection, 0, b.ones)
	for wi, w := range b.words {
		base := int32(wi) << 6
		for w != 0 {
			out = append(out, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return out
}

// AndCountSelection returns |b ∩ sel| by probing the bitmap with
// each row id — the mixed-representation path a sparse selection
// takes against a dense one: O(|sel|) probes beat both a full merge
// and packing the sparse side.
func AndCountSelection(b *Bitmap, sel Selection) int {
	n := 0
	for _, row := range sel {
		if b.Contains(row) {
			n++
		}
	}
	return n
}
