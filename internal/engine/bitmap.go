package engine

import "math/bits"

// Bitmap is the word-packed alternative to the sorted row-id
// Selection: one bit per table row, set when the row is selected.
// For dense selections it turns the sorted-merge intersection —
// the hot operation behind SDL products and INDEP — into word-wise
// AND + popcount, touching 1/64th of the memory per element and no
// branches. Sparse selections stay cheaper as row-id vectors; see
// DenseEnough for the crossover heuristic.
//
// The words are sharded by the same row-range chunks as the rest of
// the storage layer: chunks[c] holds chunk c's bits, and a chunk
// with no selected rows stays nil — never allocated, skipped by
// every operation. An extent confined to one region of a 10M-row
// table therefore costs words proportional to the region, not the
// table, and AndCount skips disjoint regions chunk-at-a-time.
//
// A Bitmap is immutable after construction and therefore safe for
// concurrent readers, matching the Selection contract.
type Bitmap struct {
	chunks    [][]uint64
	nRows     int
	chunkRows int
	// chunkShift/chunkMask hold the shift+mask form of the chunk
	// addressing when chunkRows is a power of two (every table
	// layout; Contains is a per-row hot path under the mixed
	// sparse-probe-dense intersection). chunkMask is 0 for the
	// off-path non-power-of-two widths, which divide instead.
	chunkShift uint
	chunkMask  int
	ones       int
}

// bitmapDensityDen is the density crossover denominator: at
// |sel|/nRows ≥ 1/64 the bitmap's nRows/64 words cost no more to
// scan than the selection's row ids, and the word-parallel AND wins.
const bitmapDensityDen = 64

// DenseEnough reports whether a selection of selLen rows out of
// nRows is dense enough (≥ 1/64) for the bitmap representation to
// beat the sorted row-id vector.
func DenseEnough(selLen, nRows int) bool {
	return selLen > 0 && int64(selLen)*bitmapDensityDen >= int64(nRows)
}

// NewBitmap packs a sorted selection over an nRows universe into a
// bitmap chunked at the default width. Every row id must be in
// [0, nRows).
func NewBitmap(sel Selection, nRows int) *Bitmap {
	return NewBitmapChunked(ChunkSelection(sel, nRows, DefaultChunkRows))
}

// newBitmapShell returns an all-empty bitmap in the given layout,
// with the shift+mask addressing precomputed. Callers fill chunks
// and the ones count.
func newBitmapShell(nRows, chunkRows, nc int) *Bitmap {
	b := &Bitmap{
		chunks:    make([][]uint64, nc),
		nRows:     nRows,
		chunkRows: chunkRows,
	}
	if b.chunkRows&(b.chunkRows-1) == 0 {
		b.chunkMask = b.chunkRows - 1
		for 1<<b.chunkShift < b.chunkRows {
			b.chunkShift++
		}
	}
	return b
}

// chunkWordCount returns the number of words chunk c's bitset needs
// (the final chunk may cover fewer than chunkRows rows).
func (b *Bitmap) chunkWordCount(c int) int {
	top := b.chunkRows
	if rest := b.nRows - c*b.chunkRows; rest < top {
		top = rest
	}
	return (top + 63) / 64
}

// setSegBits sets every row of seg in words (rows local to base) and
// returns the count set.
func setSegBits(words []uint64, seg Selection, base int32) int {
	for _, row := range seg {
		local := row - base
		words[local>>6] |= 1 << (uint(local) & 63)
	}
	return len(seg)
}

// NewBitmapChunked packs a chunked selection into a bitmap with the
// same chunk layout, one chunk per worker-pool task. Empty chunks
// stay nil.
func NewBitmapChunked(cs *ChunkedSelection) *Bitmap {
	b := newBitmapShell(cs.NumRows(), cs.ChunkRows(), cs.NumChunks())
	b.ones = cs.Len()
	forEachSeg(cs, func(c int) {
		seg := cs.Seg(c)
		if len(seg) == 0 {
			return
		}
		words := make([]uint64, b.chunkWordCount(c))
		setSegBits(words, seg, int32(c*b.chunkRows))
		b.chunks[c] = words
	})
	return b
}

// SpliceBitmap merges a partial re-evaluation into a cached bitmap:
// dirty chunks take fresh's words, clean chunks keep old's. The
// result lives in fresh's layout (whose universe may have grown past
// old's after appends — a clean chunk always existed in old at full
// width, so its word slice carries over unchanged). The popcount is
// recomputed from the kept words.
func SpliceBitmap(old, fresh *Bitmap, dirty []bool) *Bitmap {
	out := newBitmapShell(fresh.nRows, fresh.chunkRows, len(fresh.chunks))
	for c := range out.chunks {
		var words []uint64
		if dirty[c] || c >= len(old.chunks) {
			words = fresh.chunks[c]
		} else {
			words = old.chunks[c]
		}
		if words == nil {
			continue
		}
		out.chunks[c] = words
		for _, w := range words {
			out.ones += bits.OnesCount64(w)
		}
	}
	return out
}

// NumRows returns the universe size the bitmap was built over.
func (b *Bitmap) NumRows() int { return b.nRows }

// ChunkRows returns the chunk width the bitmap's words are sharded
// by.
func (b *Bitmap) ChunkRows() int { return b.chunkRows }

// Count returns the number of selected rows (the popcount).
func (b *Bitmap) Count() int { return b.ones }

// Contains reports whether row is selected. Rows outside the
// universe are never selected.
func (b *Bitmap) Contains(row int32) bool {
	if row < 0 || int(row) >= b.nRows {
		return false
	}
	var c, local int
	if b.chunkMask != 0 {
		c = int(row) >> b.chunkShift
		local = int(row) & b.chunkMask
	} else {
		c = int(row) / b.chunkRows
		local = int(row) - c*b.chunkRows
	}
	words := b.chunks[c]
	if words == nil {
		return false
	}
	return words[local>>6]&(1<<(uint(local)&63)) != 0
}

// sameLayout reports whether two bitmaps shard their words
// identically, making word-wise operations chunk-aligned.
func sameLayout(a, o *Bitmap) bool { return a.chunkRows == o.chunkRows }

// AndCount returns |b ∩ o| by chunk-wise word AND + popcount,
// skipping every chunk either side leaves empty, without
// materializing the intersection — the bitmap counterpart of
// IntersectCount. Universes may differ in size; the count is over
// the shared prefix, as with the row-id merge.
func (b *Bitmap) AndCount(o *Bitmap) int {
	if !sameLayout(b, o) {
		return andCountMismatched(b, o)
	}
	nc := len(b.chunks)
	if len(o.chunks) < nc {
		nc = len(o.chunks)
	}
	n := 0
	for c := 0; c < nc; c++ {
		wa, wb := b.chunks[c], o.chunks[c]
		if wa == nil || wb == nil {
			continue
		}
		if len(wb) < len(wa) {
			wa, wb = wb, wa
		}
		for i, x := range wa {
			n += bits.OnesCount64(x & wb[i])
		}
	}
	return n
}

// andCountMismatched handles the off-path case of bitmaps packed at
// different chunk widths (never produced by one evaluator): probe
// the sparser side's rows against the other.
func andCountMismatched(a, o *Bitmap) int {
	if o.ones < a.ones {
		a, o = o, a
	}
	return AndCountSelection(o, a.Selection())
}

// And returns the materialized intersection b ∩ o as a fresh bitmap
// over the smaller universe. Chunks empty on either side stay nil in
// the result.
func (b *Bitmap) And(o *Bitmap) *Bitmap {
	small, big := b, o
	if big.nRows < small.nRows {
		small, big = big, small
	}
	if !sameLayout(small, big) {
		sel := Intersect(small.Selection(), big.Selection())
		return NewBitmapChunked(ChunkSelection(sel, small.nRows, small.chunkRows))
	}
	out := &Bitmap{
		chunks:     make([][]uint64, len(small.chunks)),
		nRows:      small.nRows,
		chunkRows:  small.chunkRows,
		chunkShift: small.chunkShift,
		chunkMask:  small.chunkMask,
	}
	for c := range small.chunks {
		wa, wb := small.chunks[c], big.chunks[c]
		if wa == nil || wb == nil {
			continue
		}
		if len(wb) < len(wa) {
			wa, wb = wb, wa
		}
		words := make([]uint64, len(wa))
		onesBefore := out.ones
		for i, x := range wa {
			w := x & wb[i]
			words[i] = w
			out.ones += bits.OnesCount64(w)
		}
		if out.ones > onesBefore {
			out.chunks[c] = words
		}
	}
	return out
}

// Selection materializes the bitmap back into a sorted row-id
// vector, the exact inverse of NewBitmap, skipping empty chunks.
func (b *Bitmap) Selection() Selection {
	out := make(Selection, 0, b.ones)
	for c, words := range b.chunks {
		if words == nil {
			continue
		}
		chunkBase := int32(c * b.chunkRows)
		for wi, w := range words {
			base := chunkBase + int32(wi)<<6
			for w != 0 {
				out = append(out, base+int32(bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
	}
	return out
}

// AndCountSelection returns |b ∩ sel| by probing the bitmap with
// each row id — the mixed-representation path a sparse selection
// takes against a dense one: O(|sel|) probes beat both a full merge
// and packing the sparse side.
func AndCountSelection(b *Bitmap, sel Selection) int {
	n := 0
	for _, row := range sel {
		if b.Contains(row) {
			n++
		}
	}
	return n
}
