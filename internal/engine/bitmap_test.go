package engine

import (
	"math/rand"
	"testing"
)

// randSelection draws a sorted, duplicate-free selection where each
// of the nRows rows is kept with probability density.
func randSelection(rng *rand.Rand, nRows int, density float64) Selection {
	out := make(Selection, 0, int(float64(nRows)*density)+1)
	for i := 0; i < nRows; i++ {
		if rng.Float64() < density {
			out = append(out, int32(i))
		}
	}
	return out
}

// bitmapCases enumerates the adversarial shapes every property must
// hold on: empty, single-row at both ends, all-rows, dense, sparse,
// and universes straddling the 64-bit word boundary.
func bitmapCases(rng *rand.Rand) []struct {
	name  string
	nRows int
	sel   Selection
} {
	return []struct {
		name  string
		nRows int
		sel   Selection
	}{
		{"empty", 1000, Selection{}},
		{"single-first", 1000, Selection{0}},
		{"single-last", 1000, Selection{999}},
		{"all-rows", 1000, AllRows(1000)},
		{"all-rows-word-exact", 128, AllRows(128)},
		{"word-minus-one", 63, AllRows(63)},
		{"word-plus-one", 65, Selection{0, 63, 64}},
		{"dense", 10000, randSelection(rng, 10000, 0.5)},
		{"sparse", 10000, randSelection(rng, 10000, 0.01)},
		{"tiny-universe", 1, Selection{0}},
	}
}

func selectionsEqual(a, b Selection) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBitmapRoundTrip pins Selection → Bitmap → Selection identity
// on every adversarial shape.
func TestBitmapRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range bitmapCases(rng) {
		b := NewBitmap(tc.sel, tc.nRows)
		if b.Count() != len(tc.sel) {
			t.Errorf("%s: Count = %d, want %d", tc.name, b.Count(), len(tc.sel))
		}
		if b.NumRows() != tc.nRows {
			t.Errorf("%s: NumRows = %d, want %d", tc.name, b.NumRows(), tc.nRows)
		}
		back := b.Selection()
		if !selectionsEqual(back, tc.sel) {
			t.Errorf("%s: round trip %v != %v", tc.name, back, tc.sel)
		}
		if !back.IsSorted() {
			t.Errorf("%s: materialized selection not sorted", tc.name)
		}
	}
}

// TestBitmapContains checks membership against the source selection.
func TestBitmapContains(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sel := randSelection(rng, 5000, 0.2)
	b := NewBitmap(sel, 5000)
	in := make(map[int32]bool, len(sel))
	for _, r := range sel {
		in[r] = true
	}
	for r := int32(0); r < 5000; r++ {
		if b.Contains(r) != in[r] {
			t.Fatalf("Contains(%d) = %v, want %v", r, b.Contains(r), in[r])
		}
	}
	if b.Contains(-1) || b.Contains(5000) {
		t.Fatal("rows outside the universe must not be contained")
	}
}

// TestBitmapAndCountMatchesIntersectCount is the core equivalence
// property: for every pair of shapes, AndCount must agree with the
// sorted-merge IntersectCount, the mixed bitmap×vector probe must
// agree too, and the materialized And must round-trip to the exact
// sorted intersection.
func TestBitmapAndCountMatchesIntersectCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := bitmapCases(rng)
	for _, ca := range cases {
		for _, cb := range cases {
			if ca.nRows != cb.nRows {
				continue
			}
			want := IntersectCount(ca.sel, cb.sel)
			ba, bb := NewBitmap(ca.sel, ca.nRows), NewBitmap(cb.sel, cb.nRows)
			if got := ba.AndCount(bb); got != want {
				t.Errorf("%s∩%s: AndCount = %d, want %d", ca.name, cb.name, got, want)
			}
			if got := bb.AndCount(ba); got != want {
				t.Errorf("%s∩%s: AndCount not symmetric: %d, want %d", cb.name, ca.name, got, want)
			}
			if got := AndCountSelection(ba, cb.sel); got != want {
				t.Errorf("%s∩%s: AndCountSelection = %d, want %d", ca.name, cb.name, got, want)
			}
			and := ba.And(bb)
			if and.Count() != want {
				t.Errorf("%s∩%s: And().Count = %d, want %d", ca.name, cb.name, and.Count(), want)
			}
			if !selectionsEqual(and.Selection(), Intersect(ca.sel, cb.sel)) {
				t.Errorf("%s∩%s: And().Selection() != Intersect", ca.name, cb.name)
			}
		}
	}
}

// TestBitmapAndCountRandomPairs hammers the equivalence with random
// pairs across the density spectrum.
func TestBitmapAndCountRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	densities := []float64{0.001, 1.0 / 64, 0.1, 0.5, 0.95}
	for trial := 0; trial < 20; trial++ {
		nRows := 100 + rng.Intn(20000)
		da := densities[rng.Intn(len(densities))]
		db := densities[rng.Intn(len(densities))]
		a, b := randSelection(rng, nRows, da), randSelection(rng, nRows, db)
		want := IntersectCount(a, b)
		ba, bb := NewBitmap(a, nRows), NewBitmap(b, nRows)
		if got := ba.AndCount(bb); got != want {
			t.Fatalf("trial %d (n=%d da=%v db=%v): AndCount = %d, want %d", trial, nRows, da, db, got, want)
		}
		if got := AndCountSelection(ba, b); got != want {
			t.Fatalf("trial %d: AndCountSelection = %d, want %d", trial, got, want)
		}
	}
}

// TestDenseEnough pins the 1/64 crossover, including the exact
// boundary and the empty selection.
func TestDenseEnough(t *testing.T) {
	cases := []struct {
		selLen, nRows int
		want          bool
	}{
		{0, 1000, false},    // empty never packs
		{1, 64, true},       // exactly 1/64
		{1, 65, false},      // just under
		{999, 64000, false}, // just under at scale
		{1000, 64000, true}, // exactly 1/64 at scale
		{1000, 1000, true},  // full extent
		{1, 1, true},        // tiny universe
		{5, 0, true},        // degenerate empty table: any row packs
	}
	for _, tc := range cases {
		if got := DenseEnough(tc.selLen, tc.nRows); got != tc.want {
			t.Errorf("DenseEnough(%d, %d) = %v, want %v", tc.selLen, tc.nRows, got, tc.want)
		}
	}
}
