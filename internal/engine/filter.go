package engine

// Range bounds for filters: lo/hi with independent inclusivity, the
// shape Definition 5 cuts produce ([min,med[ and [med,max]).
type IntRange struct {
	Lo, Hi         int64
	LoIncl, HiIncl bool
}

// Contains reports whether v falls inside the range.
func (r IntRange) Contains(v int64) bool {
	if v < r.Lo || (v == r.Lo && !r.LoIncl) {
		return false
	}
	if v > r.Hi || (v == r.Hi && !r.HiIncl) {
		return false
	}
	return true
}

// FloatRange is IntRange over float64.
type FloatRange struct {
	Lo, Hi         float64
	LoIncl, HiIncl bool
}

// Contains reports whether v falls inside the range.
func (r FloatRange) Contains(v float64) bool {
	if v < r.Lo || (v == r.Lo && !r.LoIncl) {
		return false
	}
	if v > r.Hi || (v == r.Hi && !r.HiIncl) {
		return false
	}
	return true
}

// The filters below all narrow a sorted selection by one typed
// predicate. Each routes through parallelFilter: large selections
// are scanned chunk-at-a-time on all scan workers, small ones on the
// calling goroutine, and either way the typed inner loop runs over a
// contiguous sub-selection with no per-row indirection.

// FilterIntRange narrows sel to rows whose column value lies in r.
func FilterIntRange(col IntValued, sel Selection, r IntRange) Selection {
	return parallelFilter(sel, func(part Selection) Selection {
		out := make(Selection, 0, len(part))
		for _, row := range part {
			if r.Contains(col.Int64(int(row))) {
				out = append(out, row)
			}
		}
		return out
	})
}

// FilterFloatRange narrows sel to rows whose column value lies in r.
func FilterFloatRange(col FloatValued, sel Selection, r FloatRange) Selection {
	return parallelFilter(sel, func(part Selection) Selection {
		out := make(Selection, 0, len(part))
		for _, row := range part {
			if r.Contains(col.Float64(int(row))) {
				out = append(out, row)
			}
		}
		return out
	})
}

// FilterStringSet narrows sel to rows whose string value is one of
// values. Membership is tested on dictionary codes: one map lookup
// per distinct value, then a dense code probe per row.
func FilterStringSet(col *StringColumn, sel Selection, values []string) Selection {
	if len(values) == 0 {
		return Selection{}
	}
	want := make(map[uint32]struct{}, len(values))
	for _, v := range values {
		if code, ok := col.CodeOf(v); ok {
			want[code] = struct{}{}
		}
	}
	if len(want) == 0 {
		return Selection{}
	}
	codes := col.Codes()
	return parallelFilter(sel, func(part Selection) Selection {
		out := make(Selection, 0, len(part))
		for _, row := range part {
			if _, ok := want[codes[row]]; ok {
				out = append(out, row)
			}
		}
		return out
	})
}

// FilterIntSet narrows sel to rows whose int64 value appears in
// values (set constraints on integer or date columns).
func FilterIntSet(col IntValued, sel Selection, values []int64) Selection {
	if len(values) == 0 {
		return Selection{}
	}
	want := make(map[int64]struct{}, len(values))
	for _, v := range values {
		want[v] = struct{}{}
	}
	return parallelFilter(sel, func(part Selection) Selection {
		out := make(Selection, 0, len(part))
		for _, row := range part {
			if _, ok := want[col.Int64(int(row))]; ok {
				out = append(out, row)
			}
		}
		return out
	})
}

// FilterFloatSet narrows sel to rows whose float64 value appears in
// values (set constraints on float columns).
func FilterFloatSet(col FloatValued, sel Selection, values []float64) Selection {
	if len(values) == 0 {
		return Selection{}
	}
	want := make(map[float64]struct{}, len(values))
	for _, v := range values {
		want[v] = struct{}{}
	}
	return parallelFilter(sel, func(part Selection) Selection {
		out := make(Selection, 0, len(part))
		for _, row := range part {
			if _, ok := want[col.Float64(int(row))]; ok {
				out = append(out, row)
			}
		}
		return out
	})
}

// FilterStringRange narrows sel to rows whose string value lies in
// the lexicographic interval [lo, hi] with the given inclusivity.
// SDL never generates string ranges from cuts, but users may type
// them; this is the completeness path.
func FilterStringRange(col *StringColumn, sel Selection, lo, hi string, loIncl, hiIncl bool) Selection {
	return parallelFilter(sel, func(part Selection) Selection {
		out := make(Selection, 0, len(part))
		for _, row := range part {
			v := col.Str(int(row))
			if v < lo || (v == lo && !loIncl) {
				continue
			}
			if v > hi || (v == hi && !hiIncl) {
				continue
			}
			out = append(out, row)
		}
		return out
	})
}

// FilterBoolSet narrows sel to rows whose boolean value appears in
// values (a one- or two-element set).
func FilterBoolSet(col *BoolColumn, sel Selection, values []bool) Selection {
	var wantTrue, wantFalse bool
	for _, v := range values {
		if v {
			wantTrue = true
		} else {
			wantFalse = true
		}
	}
	return parallelFilter(sel, func(part Selection) Selection {
		out := make(Selection, 0, len(part))
		for _, row := range part {
			v := col.Bool(int(row))
			if (v && wantTrue) || (!v && wantFalse) {
				out = append(out, row)
			}
		}
		return out
	})
}
