package engine

// Range bounds for filters: lo/hi with independent inclusivity, the
// shape Definition 5 cuts produce ([min,med[ and [med,max]).
type IntRange struct {
	Lo, Hi         int64
	LoIncl, HiIncl bool
}

// Contains reports whether v falls inside the range.
func (r IntRange) Contains(v int64) bool {
	if v < r.Lo || (v == r.Lo && !r.LoIncl) {
		return false
	}
	if v > r.Hi || (v == r.Hi && !r.HiIncl) {
		return false
	}
	return true
}

// FloatRange is IntRange over float64. Note that Contains(NaN) is
// true — NaN fails both exclusion comparisons — so range filters
// keep NaN rows; the zone-map verdicts must honor the same
// convention.
type FloatRange struct {
	Lo, Hi         float64
	LoIncl, HiIncl bool
}

// Contains reports whether v falls inside the range.
func (r FloatRange) Contains(v float64) bool {
	if v < r.Lo || (v == r.Lo && !r.LoIncl) {
		return false
	}
	if v > r.Hi || (v == r.Hi && !r.HiIncl) {
		return false
	}
	return true
}

// The scan kernels below narrow one contiguous sub-selection by one
// typed predicate, with no per-row indirection. They are the single
// implementation of each predicate: the flat filters run them via
// parallelFilter (equal-sized pieces of one selection) and the
// chunked filters via filterSegs (one table chunk per task), so the
// two paths cannot drift apart.

func scanIntRange(col IntValued, part Selection, r IntRange) Selection {
	out := make(Selection, 0, len(part))
	for _, row := range part {
		if r.Contains(col.Int64(int(row))) {
			out = append(out, row)
		}
	}
	return out
}

func scanFloatRange(col FloatValued, part Selection, r FloatRange) Selection {
	out := make(Selection, 0, len(part))
	for _, row := range part {
		if r.Contains(col.Float64(int(row))) {
			out = append(out, row)
		}
	}
	return out
}

func scanCodeSet(codes []uint32, part Selection, want map[uint32]struct{}) Selection {
	out := make(Selection, 0, len(part))
	for _, row := range part {
		if _, ok := want[codes[row]]; ok {
			out = append(out, row)
		}
	}
	return out
}

func scanIntSet(col IntValued, part Selection, want map[int64]struct{}) Selection {
	out := make(Selection, 0, len(part))
	for _, row := range part {
		if _, ok := want[col.Int64(int(row))]; ok {
			out = append(out, row)
		}
	}
	return out
}

func scanFloatSet(col FloatValued, part Selection, want map[float64]struct{}) Selection {
	out := make(Selection, 0, len(part))
	for _, row := range part {
		if _, ok := want[col.Float64(int(row))]; ok {
			out = append(out, row)
		}
	}
	return out
}

func scanStringRange(col *StringColumn, part Selection, lo, hi string, loIncl, hiIncl bool) Selection {
	out := make(Selection, 0, len(part))
	for _, row := range part {
		v := col.Str(int(row))
		if v < lo || (v == lo && !loIncl) {
			continue
		}
		if v > hi || (v == hi && !hiIncl) {
			continue
		}
		out = append(out, row)
	}
	return out
}

func scanBoolSet(col *BoolColumn, part Selection, wantTrue, wantFalse bool) Selection {
	out := make(Selection, 0, len(part))
	for _, row := range part {
		v := col.Bool(int(row))
		if (v && wantTrue) || (!v && wantFalse) {
			out = append(out, row)
		}
	}
	return out
}

// stringCodeSet resolves values to dictionary codes: one map lookup
// per distinct value, then the scans probe dense codes per row.
func stringCodeSet(col *StringColumn, values []string) map[uint32]struct{} {
	want := make(map[uint32]struct{}, len(values))
	for _, v := range values {
		if code, ok := col.CodeOf(v); ok {
			want[code] = struct{}{}
		}
	}
	return want
}

// stringRangeCodeSet resolves a lexicographic interval to the set of
// dictionary codes whose value falls inside it: one string
// comparison per distinct value, so row scans and chunk verdicts
// both work on dense codes.
func stringRangeCodeSet(col *StringColumn, lo, hi string, loIncl, hiIncl bool) map[uint32]struct{} {
	want := make(map[uint32]struct{})
	for code := 0; code < col.Cardinality(); code++ {
		v := col.DictValue(uint32(code))
		if v < lo || (v == lo && !loIncl) {
			continue
		}
		if v > hi || (v == hi && !hiIncl) {
			continue
		}
		want[uint32(code)] = struct{}{}
	}
	return want
}

// int64Set builds the membership set plus its hull [min, max] (for
// zone-map pruning). values must be non-empty.
func int64Set(values []int64) (want map[int64]struct{}, min, max int64) {
	want = make(map[int64]struct{}, len(values))
	min, max = values[0], values[0]
	for _, v := range values {
		want[v] = struct{}{}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return want, min, max
}

// float64Set is int64Set over floats. NaN values enter the map (as
// unreachable entries, matching no row — map lookups never find NaN
// keys, the same convention the flat filter always had) but are
// excluded from the hull.
func float64Set(values []float64) (want map[float64]struct{}, min, max float64) {
	want = make(map[float64]struct{}, len(values))
	first := true
	for _, v := range values {
		want[v] = struct{}{}
		if v != v { // NaN
			continue
		}
		if first {
			min, max, first = v, v, false
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if first { // all NaN: an empty hull that prunes nothing
		min, max = 0, 0
	}
	return want, min, max
}

// boolWants folds a bool set constraint into its two flags.
func boolWants(values []bool) (wantTrue, wantFalse bool) {
	for _, v := range values {
		if v {
			wantTrue = true
		} else {
			wantFalse = true
		}
	}
	return wantTrue, wantFalse
}

// The filters below all narrow a sorted selection by one typed
// predicate. Each routes through parallelFilter: large selections
// are scanned chunk-at-a-time on all scan workers, small ones on the
// calling goroutine, and either way the typed inner loop runs over a
// contiguous sub-selection with no per-row indirection.

// FilterIntRange narrows sel to rows whose column value lies in r.
func FilterIntRange(col IntValued, sel Selection, r IntRange) Selection {
	return parallelFilter(sel, func(part Selection) Selection {
		return scanIntRange(col, part, r)
	})
}

// FilterFloatRange narrows sel to rows whose column value lies in r.
func FilterFloatRange(col FloatValued, sel Selection, r FloatRange) Selection {
	return parallelFilter(sel, func(part Selection) Selection {
		return scanFloatRange(col, part, r)
	})
}

// FilterStringSet narrows sel to rows whose string value is one of
// values. Membership is tested on dictionary codes: one map lookup
// per distinct value, then a dense code probe per row.
func FilterStringSet(col *StringColumn, sel Selection, values []string) Selection {
	if len(values) == 0 {
		return Selection{}
	}
	want := stringCodeSet(col, values)
	if len(want) == 0 {
		return Selection{}
	}
	codes := col.Codes()
	return parallelFilter(sel, func(part Selection) Selection {
		return scanCodeSet(codes, part, want)
	})
}

// FilterIntSet narrows sel to rows whose int64 value appears in
// values (set constraints on integer or date columns).
func FilterIntSet(col IntValued, sel Selection, values []int64) Selection {
	if len(values) == 0 {
		return Selection{}
	}
	want, _, _ := int64Set(values)
	return parallelFilter(sel, func(part Selection) Selection {
		return scanIntSet(col, part, want)
	})
}

// FilterFloatSet narrows sel to rows whose float64 value appears in
// values (set constraints on float columns).
func FilterFloatSet(col FloatValued, sel Selection, values []float64) Selection {
	if len(values) == 0 {
		return Selection{}
	}
	want, _, _ := float64Set(values)
	return parallelFilter(sel, func(part Selection) Selection {
		return scanFloatSet(col, part, want)
	})
}

// FilterStringRange narrows sel to rows whose string value lies in
// the lexicographic interval [lo, hi] with the given inclusivity.
// SDL never generates string ranges from cuts, but users may type
// them; this is the completeness path.
func FilterStringRange(col *StringColumn, sel Selection, lo, hi string, loIncl, hiIncl bool) Selection {
	return parallelFilter(sel, func(part Selection) Selection {
		return scanStringRange(col, part, lo, hi, loIncl, hiIncl)
	})
}

// FilterBoolSet narrows sel to rows whose boolean value appears in
// values (a one- or two-element set).
func FilterBoolSet(col *BoolColumn, sel Selection, values []bool) Selection {
	wantTrue, wantFalse := boolWants(values)
	return parallelFilter(sel, func(part Selection) Selection {
		return scanBoolSet(col, part, wantTrue, wantFalse)
	})
}
