package engine

import "charles/internal/stats"

// RowTable is a deliberately row-at-a-time copy of a Table: every
// row is a materialized []Value. It exists only for the vertical-
// scalability experiment (E7): the paper argues column stores suit
// Charles' workload of medians and predicate counts, and this
// executor is the strawman that lets us measure rather than assert
// that claim. It is not used on any advisory path.
type RowTable struct {
	name   string
	names  []string
	kinds  []Kind
	rows   [][]Value
	byName map[string]int
}

// NewRowTable materializes t row by row.
func NewRowTable(t *Table) *RowTable {
	rt := &RowTable{
		name:   t.Name(),
		names:  t.ColumnNames(),
		kinds:  make([]Kind, t.NumCols()),
		rows:   make([][]Value, t.NumRows()),
		byName: make(map[string]int, t.NumCols()),
	}
	for i, c := range t.Columns() {
		rt.kinds[i] = c.Kind()
		rt.byName[c.Name()] = i
	}
	for r := 0; r < t.NumRows(); r++ {
		row := make([]Value, t.NumCols())
		for c, col := range t.Columns() {
			row[c] = col.Value(r)
		}
		rt.rows[r] = row
	}
	return rt
}

// NumRows returns the row count.
func (rt *RowTable) NumRows() int { return len(rt.rows) }

// ColumnIndex resolves a column name, or −1.
func (rt *RowTable) ColumnIndex(name string) int {
	if i, ok := rt.byName[name]; ok {
		return i
	}
	return -1
}

// CountIntRange counts rows whose col value lies in r — the
// row-at-a-time version of FilterIntRange + len.
func (rt *RowTable) CountIntRange(col int, r IntRange) int {
	n := 0
	for _, row := range rt.rows {
		if r.Contains(row[col].AsInt()) {
			n++
		}
	}
	return n
}

// CountStringSet counts rows whose col value is in values.
func (rt *RowTable) CountStringSet(col int, values []string) int {
	want := make(map[string]struct{}, len(values))
	for _, v := range values {
		want[v] = struct{}{}
	}
	n := 0
	for _, row := range rt.rows {
		if _, ok := want[row[col].AsString()]; ok {
			n++
		}
	}
	return n
}

// MedianInt computes the upper median of an int/date column by
// extracting the attribute from every materialized row.
func (rt *RowTable) MedianInt(col int) (int64, bool) {
	if len(rt.rows) == 0 {
		return 0, false
	}
	vals := make([]int64, len(rt.rows))
	for i, row := range rt.rows {
		vals[i] = row[col].AsInt()
	}
	return stats.MedianInt64(vals), true
}
