package engine

import (
	"fmt"
	"math"
	"testing"
)

// withScanWorkers runs fn under a fixed scan-worker cap and restores
// the default afterwards.
func withScanWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	SetScanWorkers(n)
	defer SetScanWorkers(0)
	fn()
}

// parTable builds a selection large enough to trigger the chunked
// scan path (above parallelScanMinRows).
func parTable(t *testing.T) (*IntColumn, *FloatColumn, *StringColumn, Selection) {
	t.Helper()
	n := parallelScanMinRows * 2
	ints := make([]int64, n)
	floats := make([]float64, n)
	strs := make([]string, n)
	for i := 0; i < n; i++ {
		ints[i] = int64(i*7919) % 1000
		floats[i] = float64(ints[i]) / 3
		strs[i] = fmt.Sprintf("v%d", i%13)
	}
	return NewIntColumn("i", ints), NewFloatColumn("f", floats), NewStringColumn("s", strs), AllRows(n)
}

func TestParallelFiltersMatchSequential(t *testing.T) {
	ic, fc, sc, all := parTable(t)
	var seqInt, parInt, seqFloat, parFloat, seqStr, parStr Selection
	r := IntRange{Lo: 100, Hi: 700, LoIncl: true, HiIncl: false}
	fr := FloatRange{Lo: 50, Hi: 200, LoIncl: true, HiIncl: true}
	want := []string{"v3", "v7", "v11"}
	withScanWorkers(t, 1, func() {
		seqInt = FilterIntRange(ic, all, r)
		seqFloat = FilterFloatRange(fc, all, fr)
		seqStr = FilterStringSet(sc, all, want)
	})
	withScanWorkers(t, 4, func() {
		parInt = FilterIntRange(ic, all, r)
		parFloat = FilterFloatRange(fc, all, fr)
		parStr = FilterStringSet(sc, all, want)
	})
	for name, pair := range map[string][2]Selection{
		"int":    {seqInt, parInt},
		"float":  {seqFloat, parFloat},
		"string": {seqStr, parStr},
	} {
		seq, par := pair[0], pair[1]
		if len(seq) == 0 {
			t.Fatalf("%s: empty sequential baseline, test is vacuous", name)
		}
		if len(seq) != len(par) {
			t.Fatalf("%s: parallel %d rows, sequential %d", name, len(par), len(seq))
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("%s: row %d differs: %d vs %d", name, i, seq[i], par[i])
			}
		}
		if !par.IsSorted() {
			t.Fatalf("%s: parallel output not sorted", name)
		}
	}
}

func TestParallelStatsMatchSequential(t *testing.T) {
	ic, fc, sc, all := parTable(t)
	var seqMin, seqMax, parMin, parMax int64
	var seqGather, parGather []int64
	var seqFMin, seqFMax, parFMin, parFMax float64
	var seqCounts, parCounts map[string]int
	withScanWorkers(t, 1, func() {
		seqMin, seqMax, _ = IntMinMax(ic, all)
		seqFMin, seqFMax, _ = FloatMinMax(fc, all)
		seqGather = GatherInt(ic, all)
		seqCounts = map[string]int{}
		for _, vc := range StringValueCounts(sc, all) {
			seqCounts[vc.Value] = vc.Count
		}
	})
	withScanWorkers(t, 4, func() {
		parMin, parMax, _ = IntMinMax(ic, all)
		parFMin, parFMax, _ = FloatMinMax(fc, all)
		parGather = GatherInt(ic, all)
		parCounts = map[string]int{}
		for _, vc := range StringValueCounts(sc, all) {
			parCounts[vc.Value] = vc.Count
		}
	})
	if seqMin != parMin || seqMax != parMax {
		t.Fatalf("IntMinMax: parallel (%d,%d) vs sequential (%d,%d)", parMin, parMax, seqMin, seqMax)
	}
	if seqFMin != parFMin || seqFMax != parFMax {
		t.Fatalf("FloatMinMax: parallel (%v,%v) vs sequential (%v,%v)", parFMin, parFMax, seqFMin, seqFMax)
	}
	if len(seqGather) != len(parGather) {
		t.Fatalf("GatherInt length mismatch")
	}
	for i := range seqGather {
		if seqGather[i] != parGather[i] {
			t.Fatalf("GatherInt: index %d differs", i)
		}
	}
	if len(seqCounts) != len(parCounts) {
		t.Fatalf("StringValueCounts: %d values vs %d", len(parCounts), len(seqCounts))
	}
	for v, n := range seqCounts {
		if parCounts[v] != n {
			t.Fatalf("StringValueCounts: %q = %d, want %d", v, parCounts[v], n)
		}
	}
}

// TestFloatMinMaxIgnoresNaNAcrossChunkings pins the determinism
// guarantee: NaN values never poison a bound, wherever chunk
// boundaries fall.
func TestFloatMinMaxIgnoresNaNAcrossChunkings(t *testing.T) {
	n := parallelScanMinRows * 2
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i % 997)
	}
	// NaNs at chunk-start positions for common widths, plus scattered.
	for _, i := range []int{0, parallelScanMinRows / 2, parallelScanMinRows, n / 3, n - 1} {
		vals[i] = math.NaN()
	}
	col := NewFloatColumn("f", vals)
	all := AllRows(n)
	var seqMin, seqMax, parMin, parMax float64
	withScanWorkers(t, 1, func() { seqMin, seqMax, _ = FloatMinMax(col, all) })
	withScanWorkers(t, 4, func() { parMin, parMax, _ = FloatMinMax(col, all) })
	if seqMin != parMin || seqMax != parMax {
		t.Fatalf("NaN-laden column: parallel (%v,%v) vs sequential (%v,%v)", parMin, parMax, seqMin, seqMax)
	}
	if seqMin != 0 || seqMax != 996 {
		t.Fatalf("bounds (%v,%v), want (0,996): NaN leaked into a bound", seqMin, seqMax)
	}
}

// TestScanSlotsReleased checks the process-wide scan-goroutine
// budget drains back to zero after parallel scans.
func TestScanSlotsReleased(t *testing.T) {
	_, fc, _, all := parTable(t)
	withScanWorkers(t, 4, func() {
		for i := 0; i < 10; i++ {
			FilterFloatRange(fc, all, FloatRange{Lo: 0, Hi: 100, LoIncl: true, HiIncl: true})
			FloatMinMax(fc, all)
		}
	})
	if n := activeScanGoroutines.Load(); n != 0 {
		t.Fatalf("%d scan slots still held after scans finished", n)
	}
}

func TestScanWorkersKnob(t *testing.T) {
	SetScanWorkers(3)
	if got := ScanWorkers(); got != 3 {
		t.Fatalf("ScanWorkers = %d after SetScanWorkers(3)", got)
	}
	SetScanWorkers(0)
	if got := ScanWorkers(); got < 1 {
		t.Fatalf("default ScanWorkers = %d", got)
	}
}
