package engine

import (
	"sort"
	"sync/atomic"
)

// ChunkedSelection is a Selection sharded by the table's row-range
// chunks: segment c holds exactly the selected row ids that fall in
// chunk c's interval, still as global, sorted int32 ids. The chunked
// form is what the scan layer operates on — each segment filters,
// gathers or counts independently on one worker, empty segments are
// skipped outright, and concatenating the segments in chunk order
// reproduces the flat sorted selection, which is why every chunked
// operator is deterministic at any worker count.
//
// The flat view is materialized lazily: operators that only need
// per-chunk work (filters, counts, min/max) never pay for it, while
// consumers of the old contract (metrics, sampling, validation) get
// it on first request and share it afterwards. Like Selection, a
// ChunkedSelection is immutable once built.
type ChunkedSelection struct {
	nRows     int
	chunkRows int
	count     int
	segs      []Selection
	flat      atomic.Pointer[Selection]
}

// NewChunkedSelection wraps per-chunk segments (global sorted row
// ids, one slice per chunk, len(segs) = ceil(nRows/chunkRows)) into
// a chunked selection. The segments are not copied.
func NewChunkedSelection(nRows, chunkRows int, segs []Selection) *ChunkedSelection {
	cs := &ChunkedSelection{nRows: nRows, chunkRows: chunkRows, segs: segs}
	for _, s := range segs {
		cs.count += len(s)
	}
	return cs
}

// ChunkSelection shards a flat sorted selection by chunk boundaries.
// Segments alias sel (no copy), and sel itself is retained as the
// already-materialized flat view.
func ChunkSelection(sel Selection, nRows, chunkRows int) *ChunkedSelection {
	nc := numChunksFor(nRows, chunkRows)
	segs := make([]Selection, nc)
	rest := sel
	for c := 0; c < nc && len(rest) > 0; c++ {
		// The boundary is compared in int: converting it to int32
		// would overflow for tables within one chunk of the 2^31
		// row-id ceiling and silently file the tail rows nowhere.
		bound := (c + 1) * chunkRows
		cut := sort.Search(len(rest), func(i int) bool { return int(rest[i]) >= bound })
		segs[c] = rest[:cut:cut]
		rest = rest[cut:]
	}
	cs := &ChunkedSelection{nRows: nRows, chunkRows: chunkRows, count: len(sel), segs: segs}
	cs.flat.Store(&sel)
	return cs
}

// AllRowsChunked returns the chunked identity selection 0..nRows−1:
// one backing array, one aliasing segment per chunk.
func AllRowsChunked(nRows, chunkRows int) *ChunkedSelection {
	return ChunkSelection(AllRows(nRows), nRows, chunkRows)
}

// NumRows returns the universe size the selection is over.
func (cs *ChunkedSelection) NumRows() int { return cs.nRows }

// ChunkRows returns the chunk width of the layout.
func (cs *ChunkedSelection) ChunkRows() int { return cs.chunkRows }

// NumChunks returns the number of chunks in the layout (including
// empty ones).
func (cs *ChunkedSelection) NumChunks() int { return len(cs.segs) }

// Len returns the total number of selected rows.
func (cs *ChunkedSelection) Len() int { return cs.count }

// Seg returns chunk c's segment (possibly empty). Must not be
// mutated.
func (cs *ChunkedSelection) Seg(c int) Selection { return cs.segs[c] }

// PartialIdentity returns the chunked selection holding every row of
// the dirty chunks and none of the clean ones: the starting universe
// for re-evaluating a cached query over only the chunks a mutation
// touched. One backing array serves all segments. len(dirty) must be
// ceil(nRows/chunkRows).
func PartialIdentity(nRows, chunkRows int, dirty []bool) *ChunkedSelection {
	nc := numChunksFor(nRows, chunkRows)
	total := 0
	for c := 0; c < nc; c++ {
		if dirty[c] {
			lo := c * chunkRows
			hi := lo + chunkRows
			if hi > nRows {
				hi = nRows
			}
			total += hi - lo
		}
	}
	backing := make(Selection, total)
	segs := make([]Selection, nc)
	at := 0
	for c := 0; c < nc; c++ {
		if !dirty[c] {
			continue
		}
		lo := c * chunkRows
		hi := lo + chunkRows
		if hi > nRows {
			hi = nRows
		}
		seg := backing[at : at+(hi-lo) : at+(hi-lo)]
		for i := range seg {
			seg[i] = int32(lo + i)
		}
		segs[c] = seg
		at += hi - lo
	}
	return &ChunkedSelection{nRows: nRows, chunkRows: chunkRows, count: total, segs: segs}
}

// SpliceChunked merges a partial re-evaluation into a cached result:
// dirty chunks take fresh's segments, clean chunks keep old's. fresh
// must cover the current universe (its nRows may exceed old's after
// appends); a clean chunk is by construction one that existed in old
// with unchanged data, so old's segment for it is still exact.
func SpliceChunked(old, fresh *ChunkedSelection, dirty []bool) *ChunkedSelection {
	nc := fresh.NumChunks()
	segs := make([]Selection, nc)
	for c := 0; c < nc; c++ {
		if dirty[c] || c >= old.NumChunks() {
			segs[c] = fresh.Seg(c)
		} else {
			segs[c] = old.Seg(c)
		}
	}
	return NewChunkedSelection(fresh.NumRows(), fresh.ChunkRows(), segs)
}

// RestrictChunked returns cs with every clean chunk's segment
// emptied: the dirty-chunk portion of a parent selection, for
// narrowing re-evaluation to the rows a mutation could have
// affected. len(dirty) must be cs.NumChunks().
func RestrictChunked(cs *ChunkedSelection, dirty []bool) *ChunkedSelection {
	segs := make([]Selection, cs.NumChunks())
	count := 0
	for c := range segs {
		if dirty[c] {
			segs[c] = cs.Seg(c)
			count += len(segs[c])
		}
	}
	return &ChunkedSelection{nRows: cs.nRows, chunkRows: cs.chunkRows, count: count, segs: segs}
}

// Flat materializes (once) and returns the selection's flat sorted
// view — the concatenation of the segments in chunk order. Must not
// be mutated. Concurrent first calls may both build it; the results
// are identical and either pointer wins.
func (cs *ChunkedSelection) Flat() Selection {
	if p := cs.flat.Load(); p != nil {
		return *p
	}
	var out Selection
	switch {
	case cs.count == 0:
		out = Selection{}
	case len(cs.segs) == 1:
		out = cs.segs[0]
	default:
		out = make(Selection, 0, cs.count)
		for _, seg := range cs.segs {
			out = append(out, seg...)
		}
	}
	cs.flat.CompareAndSwap(nil, &out)
	return *cs.flat.Load()
}
