package engine

import "fmt"

// Column is one attribute of the stored relation: a named, typed,
// immutable vector of values addressed by dense row id.
type Column interface {
	// Name returns the attribute name.
	Name() string
	// Kind returns the column's value kind.
	Kind() Kind
	// Len returns the number of rows.
	Len() int
	// Value returns the value at the given row.
	Value(row int) Value
}

// IntValued is implemented by columns whose values are exposed as
// int64 (integers and dates). Cut logic treats both identically.
type IntValued interface {
	Column
	// Int64 returns the raw integer payload at the given row.
	Int64(row int) int64
}

// FloatValued is implemented by columns whose values are exposed as
// float64.
type FloatValued interface {
	Column
	// Float64 returns the raw float payload at the given row.
	Float64(row int) float64
}

// IntColumn is a dense vector of int64 values.
type IntColumn struct {
	name string
	vals []int64
}

// NewIntColumn wraps vals (not copied) as a column.
func NewIntColumn(name string, vals []int64) *IntColumn {
	return &IntColumn{name: name, vals: vals}
}

// Name implements Column.
func (c *IntColumn) Name() string { return c.name }

// Kind implements Column.
func (c *IntColumn) Kind() Kind { return KindInt }

// Len implements Column.
func (c *IntColumn) Len() int { return len(c.vals) }

// Value implements Column.
func (c *IntColumn) Value(row int) Value { return Int(c.vals[row]) }

// Int64 implements IntValued.
func (c *IntColumn) Int64(row int) int64 { return c.vals[row] }

// Int64s exposes the backing vector for column-at-a-time operators.
func (c *IntColumn) Int64s() []int64 { return c.vals }

// DateColumn is a dense vector of dates stored as days since epoch.
type DateColumn struct {
	name string
	days []int64
}

// NewDateColumn wraps days-since-epoch values (not copied).
func NewDateColumn(name string, days []int64) *DateColumn {
	return &DateColumn{name: name, days: days}
}

// Name implements Column.
func (c *DateColumn) Name() string { return c.name }

// Kind implements Column.
func (c *DateColumn) Kind() Kind { return KindDate }

// Len implements Column.
func (c *DateColumn) Len() int { return len(c.days) }

// Value implements Column.
func (c *DateColumn) Value(row int) Value { return Date(c.days[row]) }

// Int64 implements IntValued.
func (c *DateColumn) Int64(row int) int64 { return c.days[row] }

// Int64s exposes the backing vector for column-at-a-time operators.
func (c *DateColumn) Int64s() []int64 { return c.days }

// FloatColumn is a dense vector of float64 values.
type FloatColumn struct {
	name string
	vals []float64
}

// NewFloatColumn wraps vals (not copied) as a column.
func NewFloatColumn(name string, vals []float64) *FloatColumn {
	return &FloatColumn{name: name, vals: vals}
}

// Name implements Column.
func (c *FloatColumn) Name() string { return c.name }

// Kind implements Column.
func (c *FloatColumn) Kind() Kind { return KindFloat }

// Len implements Column.
func (c *FloatColumn) Len() int { return len(c.vals) }

// Value implements Column.
func (c *FloatColumn) Value(row int) Value { return Float(c.vals[row]) }

// Float64 implements FloatValued.
func (c *FloatColumn) Float64(row int) float64 { return c.vals[row] }

// Float64s exposes the backing vector for column-at-a-time operators.
func (c *FloatColumn) Float64s() []float64 { return c.vals }

// StringColumn is a dictionary-encoded vector of strings: each row
// stores a dense uint32 code into a per-column dictionary, the
// layout a column store uses for nominal attributes.
type StringColumn struct {
	name  string
	codes []uint32
	dict  []string
	index map[string]uint32
}

// NewStringColumn dictionary-encodes vals into a new column.
func NewStringColumn(name string, vals []string) *StringColumn {
	c := &StringColumn{
		name:  name,
		codes: make([]uint32, len(vals)),
		index: make(map[string]uint32),
	}
	for i, v := range vals {
		code, ok := c.index[v]
		if !ok {
			code = uint32(len(c.dict))
			c.dict = append(c.dict, v)
			c.index[v] = code
		}
		c.codes[i] = code
	}
	return c
}

// NewStringColumnFromDict wraps an already dictionary-encoded
// vector: codes index into dict (neither is copied). This is the
// constructor storage backends use to rebuild a column from its
// persisted encoding. Dictionary entries must be distinct; codes are
// trusted to be in range — a file reader validates them via its own
// integrity checks, not by scanning here.
func NewStringColumnFromDict(name string, codes []uint32, dict []string) (*StringColumn, error) {
	index := make(map[string]uint32, len(dict))
	for i, v := range dict {
		if _, dup := index[v]; dup {
			return nil, fmt.Errorf("engine: column %q dictionary repeats value %q", name, v)
		}
		index[v] = uint32(i)
	}
	return &StringColumn{name: name, codes: codes, dict: dict, index: index}, nil
}

// Name implements Column.
func (c *StringColumn) Name() string { return c.name }

// Kind implements Column.
func (c *StringColumn) Kind() Kind { return KindString }

// Len implements Column.
func (c *StringColumn) Len() int { return len(c.codes) }

// Value implements Column.
func (c *StringColumn) Value(row int) Value { return String_(c.dict[c.codes[row]]) }

// Str returns the decoded string at the given row.
func (c *StringColumn) Str(row int) string { return c.dict[c.codes[row]] }

// Code returns the dictionary code at the given row.
func (c *StringColumn) Code(row int) uint32 { return c.codes[row] }

// Codes exposes the backing code vector.
func (c *StringColumn) Codes() []uint32 { return c.codes }

// Cardinality returns the number of distinct values in the whole
// column (the dictionary size).
func (c *StringColumn) Cardinality() int { return len(c.dict) }

// DictValue decodes a dictionary code.
func (c *StringColumn) DictValue(code uint32) string { return c.dict[code] }

// CodeOf returns the dictionary code for s, if present.
func (c *StringColumn) CodeOf(s string) (uint32, bool) {
	code, ok := c.index[s]
	return code, ok
}

// BoolColumn is a dense vector of booleans. For cutting purposes a
// bool behaves as a two-value nominal attribute.
type BoolColumn struct {
	name string
	vals []bool
}

// NewBoolColumn wraps vals (not copied) as a column.
func NewBoolColumn(name string, vals []bool) *BoolColumn {
	return &BoolColumn{name: name, vals: vals}
}

// Name implements Column.
func (c *BoolColumn) Name() string { return c.name }

// Kind implements Column.
func (c *BoolColumn) Kind() Kind { return KindBool }

// Len implements Column.
func (c *BoolColumn) Len() int { return len(c.vals) }

// Value implements Column.
func (c *BoolColumn) Value(row int) Value { return Bool(c.vals[row]) }

// Bool returns the raw boolean at the given row.
func (c *BoolColumn) Bool(row int) bool { return c.vals[row] }

// Bools exposes the backing vector for column-at-a-time operators.
func (c *BoolColumn) Bools() []bool { return c.vals }

// validateColumn sanity-checks a column for table construction.
func validateColumn(c Column) error {
	if c == nil {
		return fmt.Errorf("engine: nil column")
	}
	if c.Name() == "" {
		return fmt.Errorf("engine: column with empty name")
	}
	return nil
}
