package engine

import (
	"math"

	"charles/internal/par"
	"charles/internal/stats"
)

// GatherIntChunked materializes col's int64 values per chunk: one
// output slice per chunk, aligned with cs's segments, gathered
// across the scan worker pool. Unlike GatherInt there is no global
// copy — downstream chunked order statistics consume the shards
// directly.
func GatherIntChunked(col IntValued, cs *ChunkedSelection) [][]int64 {
	out := make([][]int64, cs.NumChunks())
	forEachSeg(cs, func(c int) {
		seg := cs.Seg(c)
		if len(seg) == 0 {
			return
		}
		vals := make([]int64, len(seg))
		for i, row := range seg {
			vals[i] = col.Int64(int(row))
		}
		out[c] = vals
	})
	return out
}

// GatherFloatChunked is GatherIntChunked for float columns.
func GatherFloatChunked(col FloatValued, cs *ChunkedSelection) [][]float64 {
	out := make([][]float64, cs.NumChunks())
	forEachSeg(cs, func(c int) {
		seg := cs.Seg(c)
		if len(seg) == 0 {
			return
		}
		vals := make([]float64, len(seg))
		for i, row := range seg {
			vals[i] = col.Float64(int(row))
		}
		out[c] = vals
	})
	return out
}

// IntMinMaxChunked returns the minimum and maximum of col over cs by
// reducing per-chunk partials in chunk order. ok is false when the
// selection is empty.
func IntMinMaxChunked(col IntValued, cs *ChunkedSelection) (min, max int64, ok bool) {
	if cs.Len() == 0 {
		return 0, 0, false
	}
	nc := cs.NumChunks()
	mins := make([]int64, nc)
	maxs := make([]int64, nc)
	seen := make([]bool, nc)
	forEachSeg(cs, func(c int) {
		seg := cs.Seg(c)
		if len(seg) == 0 {
			return
		}
		lo := col.Int64(int(seg[0]))
		hi := lo
		for _, row := range seg[1:] {
			v := col.Int64(int(row))
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		mins[c], maxs[c], seen[c] = lo, hi, true
	})
	first := true
	for c := 0; c < nc; c++ {
		if !seen[c] {
			continue
		}
		if first {
			min, max, first = mins[c], maxs[c], false
			continue
		}
		if mins[c] < min {
			min = mins[c]
		}
		if maxs[c] > max {
			max = maxs[c]
		}
	}
	return min, max, true
}

// FloatMinMaxChunked is IntMinMaxChunked over floats, ignoring NaN
// exactly like FloatMinMax: NaN rows never seed or move a bound, and
// an all-NaN selection yields NaN bounds.
func FloatMinMaxChunked(col FloatValued, cs *ChunkedSelection) (min, max float64, ok bool) {
	if cs.Len() == 0 {
		return 0, 0, false
	}
	nc := cs.NumChunks()
	mins := make([]float64, nc)
	maxs := make([]float64, nc)
	forEachSeg(cs, func(c int) {
		seg := cs.Seg(c)
		lo, hi := math.NaN(), math.NaN()
		for _, row := range seg {
			v := col.Float64(int(row))
			if v != v { // NaN
				continue
			}
			if lo != lo || v < lo {
				lo = v
			}
			if hi != hi || v > hi {
				hi = v
			}
		}
		mins[c], maxs[c] = lo, hi
	})
	min, max = math.NaN(), math.NaN()
	for c := 0; c < nc; c++ {
		if len(cs.Seg(c)) == 0 {
			continue
		}
		if mins[c] == mins[c] && (min != min || mins[c] < min) {
			min = mins[c]
		}
		if maxs[c] == maxs[c] && (max != max || maxs[c] > max) {
			max = maxs[c]
		}
	}
	return min, max, true
}

// statWorkers reserves scan-pool slots for a chunked order-statistic
// computation (per-chunk sorts), returning the worker count to hand
// to internal/stats and the paired release. Routing the sort through
// the same slot budget (reserveSegSlots) as the scans keeps nested
// parallelism — many advise workers each computing cut points — from
// oversubscribing the scheduler, exactly like the chunked scans
// themselves. Reserve only after the gather phase: the gather takes
// slots of its own, and holding them across it would starve it to
// sequential.
func statWorkers(cs *ChunkedSelection) (workers int, release func()) {
	extra, release := reserveSegSlots(cs)
	return extra + 1, release
}

// gatherIntScratch is GatherIntChunked into pooled scratch buffers:
// the shards feed one order-statistic computation and go straight
// back to the pool via release, so a warm advisor's cut-point math
// stops allocating gather targets. Callers must not retain any shard
// past release.
func gatherIntScratch(col IntValued, cs *ChunkedSelection) (chunks [][]int64, release func()) {
	nc := cs.NumChunks()
	chunks = make([][]int64, nc)
	ptrs := make([]*[]int64, nc)
	forEachSeg(cs, func(c int) {
		seg := cs.Seg(c)
		if len(seg) == 0 {
			return
		}
		p := int64Scratch.Get(len(seg))
		vals := *p
		for i, row := range seg {
			vals[i] = col.Int64(int(row))
		}
		ptrs[c], chunks[c] = p, vals
	})
	return chunks, func() {
		for _, p := range ptrs {
			if p != nil {
				int64Scratch.Put(p)
			}
		}
	}
}

// flattenInt64Scratch concatenates per-chunk shards into one pooled
// vector of exactly n elements.
func flattenInt64Scratch(chunks [][]int64, n int) (*[]int64, []int64) {
	p := int64Scratch.Get(n)
	out := (*p)[:0]
	for _, ch := range chunks {
		out = append(out, ch...)
	}
	//lint:pooledescape deliberate ownership transfer: every caller defers Put(p) before using out
	return p, out
}

func flattenFloat64Scratch(chunks [][]float64, n int) (*[]float64, []float64) {
	p := float64Scratch.Get(n)
	out := (*p)[:0]
	for _, ch := range chunks {
		out = append(out, ch...)
	}
	//lint:pooledescape deliberate ownership transfer: every caller defers Put(p) before using out
	return p, out
}

// posZero canonicalizes -0.0 to +0.0. The chunked rank selection
// always returns +0.0 for a selected zero; the sequential fallbacks
// (quickselect, flat sort) return whichever zero's bit pattern sat
// at the rank, and the two must not render differently ("-0" vs
// "0") based on which branch a call happened to take.
func posZero(v float64) float64 {
	if v == 0 {
		return 0
	}
	return v
}

func posZeros(vals []float64) []float64 {
	for i, v := range vals {
		vals[i] = posZero(v)
	}
	return vals
}

// gatherFloatFinite is GatherFloatChunked minus NaN values, into
// pooled scratch buffers: the order statistics (medians, equi-depth
// points) need a totally ordered multiset, and NaN has no rank.
// Dropping it here — always, in every branch — keeps the cut points
// deterministic: they depend only on the finite values, never on
// which algorithm or worker count a particular call happened to get.
// (This mirrors the NaN convention of FloatMinMax.) n is the
// finite-value total. Callers must not retain any shard past
// release.
func gatherFloatFinite(col FloatValued, cs *ChunkedSelection) (chunks [][]float64, n int, release func()) {
	nc := cs.NumChunks()
	chunks = make([][]float64, nc)
	ptrs := make([]*[]float64, nc)
	forEachSeg(cs, func(c int) {
		seg := cs.Seg(c)
		if len(seg) == 0 {
			return
		}
		p := float64Scratch.Get(len(seg))
		vals := (*p)[:0]
		for _, row := range seg {
			v := col.Float64(int(row))
			if v == v { // not NaN
				vals = append(vals, v)
			}
		}
		ptrs[c], chunks[c] = p, vals
	})
	for _, ch := range chunks {
		n += len(ch)
	}
	return chunks, n, func() {
		for _, p := range ptrs {
			if p != nil {
				float64Scratch.Put(p)
			}
		}
	}
}

// IntMedianChunked returns the upper median of col over cs — the
// Definition 5 cut point. With parallelism granted it never
// materializes a flat vector: per-chunk gather, per-chunk parallel
// sort, then one rank selection across the sorted shards. Sequential
// calls take the O(n) quickselect over the flattened shards instead
// — sorting only pays for itself when the chunks sort concurrently —
// and both algorithms return the same k-th smallest element, so the
// choice never shows in the output. ok is false when the selection
// is empty.
func IntMedianChunked(col IntValued, cs *ChunkedSelection) (int64, bool) {
	if cs.Len() == 0 {
		return 0, false
	}
	chunks, put := gatherIntScratch(col, cs)
	defer put()
	workers, release := statWorkers(cs)
	defer release()
	if workers <= 1 {
		p, flat := flattenInt64Scratch(chunks, cs.Len())
		defer int64Scratch.Put(p)
		return stats.MedianInt64(flat), true
	}
	return stats.MedianInt64Chunks(chunks, workers), true
}

// FloatMedianChunked is IntMedianChunked for float columns. NaN
// values carry no rank and are excluded before selection; an all-NaN
// extent has no median (ok = false).
func FloatMedianChunked(col FloatValued, cs *ChunkedSelection) (float64, bool) {
	if cs.Len() == 0 {
		return 0, false
	}
	chunks, n, put := gatherFloatFinite(col, cs)
	defer put()
	if n == 0 {
		return 0, false
	}
	workers, release := statWorkers(cs)
	defer release()
	if workers <= 1 {
		p, flat := flattenFloat64Scratch(chunks, n)
		defer float64Scratch.Put(p)
		return posZero(stats.MedianFloat64(flat)), true
	}
	return stats.MedianFloat64Chunks(chunks, workers), true
}

// IntCutPointsChunked returns the same strictly increasing
// equi-depth points as IntCutPoints, computed shard-at-a-time.
func IntCutPointsChunked(col IntValued, cs *ChunkedSelection, arity int) []int64 {
	if cs.Len() == 0 {
		return nil
	}
	chunks, put := gatherIntScratch(col, cs)
	defer put()
	workers, release := statWorkers(cs)
	defer release()
	if workers <= 1 {
		p, flat := flattenInt64Scratch(chunks, cs.Len())
		defer int64Scratch.Put(p)
		return stats.EquiDepthPoints(flat, arity)
	}
	return stats.EquiDepthPointsChunks(chunks, arity, workers)
}

// FloatCutPointsChunked is IntCutPointsChunked for float columns,
// with NaN values excluded like FloatMedianChunked.
func FloatCutPointsChunked(col FloatValued, cs *ChunkedSelection, arity int) []float64 {
	if cs.Len() == 0 {
		return nil
	}
	chunks, n, put := gatherFloatFinite(col, cs)
	defer put()
	if n == 0 {
		return nil
	}
	workers, release := statWorkers(cs)
	defer release()
	if workers <= 1 {
		p, flat := flattenFloat64Scratch(chunks, n)
		defer float64Scratch.Put(p)
		return posZeros(stats.EquiDepthPointsFloat64(flat, arity))
	}
	return stats.EquiDepthPointsChunksFloat64(chunks, arity, workers)
}

// StringValueCountsChunked returns the per-value frequencies of col
// over cs. Chunks are grouped into contiguous bands, one histogram
// per band, so the transient memory is worker-count × cardinality —
// not chunk-count × cardinality, which on a 10M-row table with a
// high-cardinality column would dwarf the data scanned. Counts are
// additive, so the band merge is order-independent and the result
// (ordered by dictionary code) matches StringValueCounts exactly.
func StringValueCountsChunked(col *StringColumn, cs *ChunkedSelection) []stats.ValueCount {
	codes := col.Codes()
	nc := cs.NumChunks()
	workers, release := statWorkers(cs)
	defer release()
	if workers > nc {
		workers = nc
	}
	if workers < 1 {
		workers = 1
	}
	bandSize := (nc + workers - 1) / workers
	numBands := 0
	if nc > 0 {
		numBands = (nc + bandSize - 1) / bandSize
	}
	partials := make([][]int, numBands)
	_ = par.ForEach(workers, numBands, func(b int) error {
		counts := make([]int, col.Cardinality())
		hi := (b + 1) * bandSize
		if hi > nc {
			hi = nc
		}
		for c := b * bandSize; c < hi; c++ {
			for _, row := range cs.Seg(c) {
				counts[codes[row]]++
			}
		}
		partials[b] = counts
		return nil
	})
	counts := make([]int, col.Cardinality())
	for _, p := range partials {
		for code, n := range p {
			counts[code] += n
		}
	}
	out := make([]stats.ValueCount, 0, len(counts))
	for code, n := range counts {
		if n > 0 {
			out = append(out, stats.ValueCount{Value: col.DictValue(uint32(code)), Count: n})
		}
	}
	return out
}

// BoolValueCountsChunked is StringValueCountsChunked for bool
// columns.
func BoolValueCountsChunked(col *BoolColumn, cs *ChunkedSelection) []stats.ValueCount {
	nc := cs.NumChunks()
	trues := make([]int, nc)
	falses := make([]int, nc)
	forEachSeg(cs, func(c int) {
		for _, row := range cs.Seg(c) {
			if col.Bool(int(row)) {
				trues[c]++
			} else {
				falses[c]++
			}
		}
	})
	var nTrue, nFalse int
	for c := 0; c < nc; c++ {
		nTrue += trues[c]
		nFalse += falses[c]
	}
	out := make([]stats.ValueCount, 0, 2)
	if nFalse > 0 {
		out = append(out, stats.ValueCount{Value: "false", Count: nFalse})
	}
	if nTrue > 0 {
		out = append(out, stats.ValueCount{Value: "true", Count: nTrue})
	}
	return out
}

// IntSortedRuns gathers col over cs into one freshly allocated sorted
// slice per chunk — the retainable form of the cut-point math that
// the incremental-advise cut cache keeps across advises. Unlike
// gatherIntScratch the shards are owned by the caller and must be
// treated as immutable once returned (they may be shared between an
// old and a spliced cache entry).
func IntSortedRuns(col IntValued, cs *ChunkedSelection) [][]int64 {
	runs := GatherIntChunked(col, cs)
	workers, release := statWorkers(cs)
	defer release()
	stats.SortInt64Chunks(runs, workers)
	return runs
}

// IntSortedRunsSplice refreshes cached sorted runs after a mutation:
// dirty chunks are re-gathered from the current selection and
// re-sorted, clean chunks reuse the old runs unchanged. Sound for the
// same reason selection splicing is — a selection restricted to a
// clean chunk is a pure function of that chunk's unchanged rows, so
// its sorted value multiset cannot have moved. ok is false when a
// clean chunk's cached run does not match the current selection's
// segment length (a structural mismatch; the caller must recompute in
// full).
func IntSortedRunsSplice(col IntValued, cs *ChunkedSelection, old [][]int64, dirty []bool) (runs [][]int64, ok bool) {
	nc := cs.NumChunks()
	if len(dirty) != nc {
		return nil, false
	}
	runs = make([][]int64, nc)
	for c := 0; c < nc; c++ {
		if dirty[c] {
			continue
		}
		if c >= len(old) || len(old[c]) != len(cs.Seg(c)) {
			return nil, false
		}
		runs[c] = old[c]
	}
	fresh := IntSortedRuns(col, RestrictChunked(cs, dirty))
	for c := 0; c < nc; c++ {
		if dirty[c] {
			runs[c] = fresh[c]
		}
	}
	return runs, true
}

// IntRunsBounds returns the minimum and maximum over sorted runs —
// the run endpoints, no scan. ok is false when every run is empty.
func IntRunsBounds(runs [][]int64) (min, max int64, ok bool) {
	for _, r := range runs {
		if len(r) == 0 {
			continue
		}
		if !ok {
			min, max, ok = r[0], r[len(r)-1], true
			continue
		}
		if r[0] < min {
			min = r[0]
		}
		if r[len(r)-1] > max {
			max = r[len(r)-1]
		}
	}
	return min, max, ok
}

// IntCutPointsSorted is IntCutPointsChunked over already-sorted runs:
// pure rank selection, no gather and no sort. The equi-depth points
// of a multiset do not depend on its sharding or on who sorted it, so
// the result is byte-identical to the scratch-based computation.
func IntCutPointsSorted(runs [][]int64, arity int) []int64 {
	return stats.EquiDepthPointsSorted(runs, arity)
}

// StringChunkCounts returns per-chunk value frequencies of col over
// cs, indexed by dictionary code: counts[c][code]. This is the
// splice-friendly decomposition of StringValueCountsChunked — counts
// are additive over chunks, so a mutation only invalidates the dirty
// chunks' vectors. The vectors are owned by the caller and must be
// treated as immutable once returned.
func StringChunkCounts(col *StringColumn, cs *ChunkedSelection) [][]int {
	codes := col.Codes()
	card := col.Cardinality()
	nc := cs.NumChunks()
	counts := make([][]int, nc)
	forEachSeg(cs, func(c int) {
		seg := cs.Seg(c)
		if len(seg) == 0 {
			return
		}
		v := make([]int, card)
		for _, row := range seg {
			v[codes[row]]++
		}
		counts[c] = v
	})
	return counts
}

// StringChunkCountsSplice refreshes cached per-chunk counts after a
// mutation: dirty chunks are recounted (at the current, possibly
// grown cardinality), clean chunks keep their vectors. A clean
// chunk's vector may be shorter than the current cardinality — codes
// minted after it was counted cannot occur in an unchanged chunk, so
// the missing tail is implicitly zero. ok is false on a structural
// mismatch.
func StringChunkCountsSplice(col *StringColumn, cs *ChunkedSelection, old [][]int, dirty []bool) (counts [][]int, ok bool) {
	nc := cs.NumChunks()
	if len(dirty) != nc {
		return nil, false
	}
	counts = make([][]int, nc)
	for c := 0; c < nc; c++ {
		if dirty[c] {
			continue
		}
		if c >= len(old) {
			return nil, false
		}
		n := 0
		for _, k := range old[c] {
			n += k
		}
		if n != len(cs.Seg(c)) {
			return nil, false
		}
		counts[c] = old[c]
	}
	fresh := StringChunkCounts(col, RestrictChunked(cs, dirty))
	for c := 0; c < nc; c++ {
		if dirty[c] {
			counts[c] = fresh[c]
		}
	}
	return counts, true
}

// StringCountsFromChunks reduces per-chunk count vectors to the exact
// []ValueCount StringValueCountsChunked returns: summed per code, in
// dictionary-code order, zero-count values dropped.
func StringCountsFromChunks(col *StringColumn, counts [][]int) []stats.ValueCount {
	totals := make([]int, col.Cardinality())
	for _, v := range counts {
		for code, n := range v {
			totals[code] += n
		}
	}
	out := make([]stats.ValueCount, 0, len(totals))
	for code, n := range totals {
		if n > 0 {
			out = append(out, stats.ValueCount{Value: col.DictValue(uint32(code)), Count: n})
		}
	}
	return out
}
