package engine

import (
	"math"

	"charles/internal/stats"
)

// GatherInt materializes the int64 values of col at the selected
// rows. Works for integer and date columns alike. Large selections
// scatter chunk-at-a-time on all scan workers.
func GatherInt(col IntValued, sel Selection) []int64 {
	out := make([]int64, len(sel))
	chunks, release := statChunks(sel)
	defer release()
	offsets := chunkOffsets(chunks)
	runChunks(chunks, func(c int) {
		base := offsets[c]
		for i, row := range chunks[c] {
			out[base+i] = col.Int64(int(row))
		}
	})
	return out
}

// GatherFloat materializes the float64 values of col at the selected
// rows.
func GatherFloat(col FloatValued, sel Selection) []float64 {
	out := make([]float64, len(sel))
	chunks, release := statChunks(sel)
	defer release()
	offsets := chunkOffsets(chunks)
	runChunks(chunks, func(c int) {
		base := offsets[c]
		for i, row := range chunks[c] {
			out[base+i] = col.Float64(int(row))
		}
	})
	return out
}

// chunkOffsets returns each chunk's starting position within the
// original selection.
func chunkOffsets(chunks []Selection) []int {
	offsets := make([]int, len(chunks))
	pos := 0
	for i, c := range chunks {
		offsets[i] = pos
		pos += len(c)
	}
	return offsets
}

// IntMinMax returns the minimum and maximum of col over sel. ok is
// false when the selection is empty. Large selections reduce
// per-chunk partials computed on all scan workers.
func IntMinMax(col IntValued, sel Selection) (min, max int64, ok bool) {
	if len(sel) == 0 {
		return 0, 0, false
	}
	chunks, release := statChunks(sel)
	defer release()
	mins := make([]int64, len(chunks))
	maxs := make([]int64, len(chunks))
	runChunks(chunks, func(c int) {
		chunk := chunks[c]
		lo := col.Int64(int(chunk[0]))
		hi := lo
		for _, row := range chunk[1:] {
			v := col.Int64(int(row))
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		mins[c], maxs[c] = lo, hi
	})
	min, max = mins[0], maxs[0]
	for c := 1; c < len(chunks); c++ {
		if mins[c] < min {
			min = mins[c]
		}
		if maxs[c] > max {
			max = maxs[c]
		}
	}
	return min, max, true
}

// FloatMinMax returns the minimum and maximum of col over sel,
// ignoring NaN values — NaN compares false against everything, so
// letting one seed a running bound would poison it and make the
// result depend on where chunk boundaries fall. When every value is
// NaN the bounds come back NaN. ok is false when the selection is
// empty.
func FloatMinMax(col FloatValued, sel Selection) (min, max float64, ok bool) {
	if len(sel) == 0 {
		return 0, 0, false
	}
	chunks, release := statChunks(sel)
	defer release()
	mins := make([]float64, len(chunks))
	maxs := make([]float64, len(chunks))
	runChunks(chunks, func(c int) {
		lo, hi := math.NaN(), math.NaN()
		for _, row := range chunks[c] {
			v := col.Float64(int(row))
			if v != v { // NaN
				continue
			}
			if lo != lo || v < lo {
				lo = v
			}
			if hi != hi || v > hi {
				hi = v
			}
		}
		mins[c], maxs[c] = lo, hi
	})
	min, max = math.NaN(), math.NaN()
	for c := range chunks {
		if mins[c] == mins[c] && (min != min || mins[c] < min) {
			min = mins[c]
		}
		if maxs[c] == maxs[c] && (max != max || maxs[c] > max) {
			max = maxs[c]
		}
	}
	return min, max, true
}

// IntMedian returns the upper median of col over sel (the Definition
// 5 cut point). ok is false when the selection is empty.
func IntMedian(col IntValued, sel Selection) (int64, bool) {
	if len(sel) == 0 {
		return 0, false
	}
	return stats.MedianInt64(GatherInt(col, sel)), true
}

// FloatMedian returns the upper median of col over sel. ok is false
// when the selection is empty.
func FloatMedian(col FloatValued, sel Selection) (float64, bool) {
	if len(sel) == 0 {
		return 0, false
	}
	return stats.MedianFloat64(GatherFloat(col, sel)), true
}

// IntCutPoints returns up to arity−1 strictly increasing equi-depth
// cut points of col over sel (Section 5.2's quantile generalization;
// arity 2 is the paper's median cut).
func IntCutPoints(col IntValued, sel Selection, arity int) []int64 {
	if len(sel) == 0 {
		return nil
	}
	return stats.EquiDepthPoints(GatherInt(col, sel), arity)
}

// FloatCutPoints is IntCutPoints for float columns.
func FloatCutPoints(col FloatValued, sel Selection, arity int) []float64 {
	if len(sel) == 0 {
		return nil
	}
	return stats.EquiDepthPointsFloat64(GatherFloat(col, sel), arity)
}

// StringValueCounts returns the per-value frequencies of col over
// sel, unordered. The seg layer orders them by frequency or
// alphabetically per the paper's nominal-median rule. Large
// selections count per chunk on all scan workers and merge the
// per-chunk histograms.
func StringValueCounts(col *StringColumn, sel Selection) []stats.ValueCount {
	codes := col.Codes()
	chunks, release := statChunks(sel)
	defer release()
	partials := make([][]int, len(chunks))
	runChunks(chunks, func(c int) {
		counts := make([]int, col.Cardinality())
		for _, row := range chunks[c] {
			counts[codes[row]]++
		}
		partials[c] = counts
	})
	counts := partials[0]
	for c := 1; c < len(partials); c++ {
		for code, n := range partials[c] {
			counts[code] += n
		}
	}
	out := make([]stats.ValueCount, 0, len(counts))
	for code, n := range counts {
		if n > 0 {
			out = append(out, stats.ValueCount{Value: col.DictValue(uint32(code)), Count: n})
		}
	}
	return out
}

// BoolValueCounts returns frequencies of "false"/"true" over sel,
// letting bool columns participate in nominal cuts.
func BoolValueCounts(col *BoolColumn, sel Selection) []stats.ValueCount {
	var nTrue, nFalse int
	for _, row := range sel {
		if col.Bool(int(row)) {
			nTrue++
		} else {
			nFalse++
		}
	}
	out := make([]stats.ValueCount, 0, 2)
	if nFalse > 0 {
		out = append(out, stats.ValueCount{Value: "false", Count: nFalse})
	}
	if nTrue > 0 {
		out = append(out, stats.ValueCount{Value: "true", Count: nTrue})
	}
	return out
}

// DistinctCount returns the number of distinct values of col over
// sel. For string columns it counts live dictionary codes; for other
// kinds it hashes raw payloads.
func DistinctCount(col Column, sel Selection) int {
	switch c := col.(type) {
	case *StringColumn:
		seen := make([]bool, c.Cardinality())
		n := 0
		codes := c.Codes()
		for _, row := range sel {
			if !seen[codes[row]] {
				seen[codes[row]] = true
				n++
			}
		}
		return n
	case *BoolColumn:
		var sawTrue, sawFalse bool
		for _, row := range sel {
			if c.Bool(int(row)) {
				sawTrue = true
			} else {
				sawFalse = true
			}
			if sawTrue && sawFalse {
				return 2
			}
		}
		if sawTrue || sawFalse {
			return 1
		}
		return 0
	case IntValued:
		seen := make(map[int64]struct{}, 64)
		for _, row := range sel {
			seen[c.Int64(int(row))] = struct{}{}
		}
		return len(seen)
	case FloatValued:
		seen := make(map[float64]struct{}, 64)
		for _, row := range sel {
			seen[c.Float64(int(row))] = struct{}{}
		}
		return len(seen)
	default:
		seen := make(map[string]struct{}, 64)
		for _, row := range sel {
			seen[col.Value(int(row)).String()] = struct{}{}
		}
		return len(seen)
	}
}

// FloatMeanVar returns the mean and population variance of col over
// sel (used by the homogeneity proxy in the baseline comparison).
// ok is false when the selection is empty.
func FloatMeanVar(col FloatValued, sel Selection) (mean, variance float64, ok bool) {
	if len(sel) == 0 {
		return 0, 0, false
	}
	for _, row := range sel {
		mean += col.Float64(int(row))
	}
	mean /= float64(len(sel))
	for _, row := range sel {
		d := col.Float64(int(row)) - mean
		variance += d * d
	}
	variance /= float64(len(sel))
	return mean, variance, true
}
