package engine

import "charles/internal/pool"

// Pooled scratch buffers for the chunked hot paths. The order
// statistics behind every cut point (medians, equi-depth quantiles)
// gather the extent's values into transient buffers, consume them,
// and drop them — on a warm advisor that is the single largest
// source of steady-state garbage, so the gather targets and flatten
// buffers recycle through internal/pool. Anything that escapes to a
// caller (filter results, bitmaps, cached selections) is never
// pooled.
var (
	int64Scratch   pool.Slice[int64]
	float64Scratch pool.Slice[float64]
)
