package engine

import (
	"strings"
	"testing"
)

// mutTable builds a small memory-backed table with every mutable
// column kind, chunked at the minimum width so mutations land in
// interesting chunks.
func mutTable(t *testing.T, rows int) *Table {
	t.Helper()
	ints := make([]int64, rows)
	floats := make([]float64, rows)
	strs := make([]string, rows)
	bools := make([]bool, rows)
	days := make([]int64, rows)
	for i := 0; i < rows; i++ {
		ints[i] = int64(i % 7)
		floats[i] = float64(i%5) / 2
		strs[i] = [3]string{"red", "green", "blue"}[i%3]
		bools[i] = i%2 == 0
		days[i] = int64(1000 + i%11)
	}
	tab := MustNewTable("m",
		NewIntColumn("n", ints),
		NewFloatColumn("x", floats),
		NewStringColumn("color", strs),
		NewBoolColumn("flag", bools),
		NewDateColumn("day", days),
	)
	tab.SetChunkRows(minChunkRows)
	return tab
}

func sampleRow(tab *Table, r int) []Value {
	row := make([]Value, tab.NumCols())
	for i := 0; i < tab.NumCols(); i++ {
		row[i] = tab.Column(i).Value(r)
	}
	return row
}

func TestAppendRowsDirtiesOnlyTail(t *testing.T) {
	tab := mutTable(t, 3*minChunkRows) // 3 full chunks
	before := tab.Stamp()
	if before.Version() != 0 || before.NumChunks() != 3 {
		t.Fatalf("fresh stamp: version=%d chunks=%d", before.Version(), before.NumChunks())
	}
	// Append half a chunk: creates chunk 3, leaves 0..2 untouched.
	rows := make([][]Value, minChunkRows/2)
	for i := range rows {
		rows[i] = sampleRow(tab, i)
	}
	if err := tab.AppendRows(rows...); err != nil {
		t.Fatal(err)
	}
	cur := tab.Stamp()
	if cur.Version() != 1 {
		t.Fatalf("version after append = %d, want 1", cur.Version())
	}
	if got := tab.NumRows(); got != 3*minChunkRows+minChunkRows/2 {
		t.Fatalf("rows = %d", got)
	}
	dirty, ok := cur.DirtyVs(before)
	if !ok {
		t.Fatal("stamps not comparable")
	}
	want := []bool{false, false, false, true}
	if len(dirty) != len(want) {
		t.Fatalf("dirty len = %d, want %d", len(dirty), len(want))
	}
	for c := range want {
		if dirty[c] != want[c] {
			t.Fatalf("dirty[%d] = %v, want %v", c, dirty[c], want[c])
		}
	}
	// Append into the partial tail: only chunk 3 dirties again.
	mid := tab.Stamp()
	if err := tab.AppendRows(sampleRow(tab, 0)); err != nil {
		t.Fatal(err)
	}
	dirty, ok = tab.Stamp().DirtyVs(mid)
	if !ok || dirty[3] != true || dirty[0] || dirty[1] || dirty[2] {
		t.Fatalf("partial-tail append dirty = %v ok=%v", dirty, ok)
	}
}

func TestUpdateRowsDirtiesTouchedChunks(t *testing.T) {
	tab := mutTable(t, 4*minChunkRows)
	before := tab.Stamp()
	// Touch one row in chunk 1 and one in chunk 3.
	sel := Selection{int32(minChunkRows + 5), int32(3*minChunkRows + 7)}
	vals := []Value{Int(99), Int(100)}
	if err := tab.UpdateRows(sel, "n", vals); err != nil {
		t.Fatal(err)
	}
	dirty, ok := tab.Stamp().DirtyVs(before)
	if !ok {
		t.Fatal("stamps not comparable")
	}
	want := []bool{false, true, false, true}
	for c := range want {
		if dirty[c] != want[c] {
			t.Fatalf("dirty = %v, want %v", dirty, want)
		}
	}
	col := tab.MustColumn("n").(*IntColumn)
	if col.Int64(minChunkRows+5) != 99 || col.Int64(3*minChunkRows+7) != 100 {
		t.Fatal("update did not land")
	}
}

func TestMutationValidationIsAllOrNothing(t *testing.T) {
	tab := mutTable(t, minChunkRows)
	before := tab.Stamp()
	fpBefore := tab.Fingerprint()

	// Wrong arity.
	if err := tab.AppendRows([]Value{Int(1)}); err == nil {
		t.Fatal("short row accepted")
	}
	// Wrong kind in the second row: the first must not be applied.
	good := sampleRow(tab, 0)
	bad := sampleRow(tab, 1)
	bad[0] = Float(1.5)
	if err := tab.AppendRows(good, bad); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	// Update: out-of-range row, wrong kind, wrong length, bad column.
	if err := tab.UpdateRows(Selection{int32(tab.NumRows())}, "n", []Value{Int(1)}); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	if err := tab.UpdateRows(Selection{0}, "n", []Value{String_("no")}); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	if err := tab.UpdateRows(Selection{0, 1}, "n", []Value{Int(1)}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := tab.UpdateRows(Selection{0}, "nope", []Value{Int(1)}); err == nil {
		t.Fatal("unknown column accepted")
	}

	if tab.NumRows() != minChunkRows {
		t.Fatalf("failed mutations changed row count to %d", tab.NumRows())
	}
	if tab.Stamp() != before {
		t.Fatal("failed mutations advanced the stamp")
	}
	if tab.Fingerprint() != fpBefore {
		t.Fatal("failed mutations changed the fingerprint")
	}
}

func TestFingerprintChangesPerMutationOnly(t *testing.T) {
	tab := mutTable(t, minChunkRows)
	fp0 := tab.Fingerprint()
	if fp0 != tab.Fingerprint() {
		t.Fatal("fingerprint not stable")
	}
	other := mutTable(t, minChunkRows)
	if other.Fingerprint() == fp0 {
		t.Fatal("distinct tables share a fingerprint")
	}
	if err := tab.AppendRows(sampleRow(tab, 0)); err != nil {
		t.Fatal(err)
	}
	fp1 := tab.Fingerprint()
	if fp1 == fp0 {
		t.Fatal("append did not change the fingerprint")
	}
	if err := tab.UpdateRows(Selection{0}, "n", []Value{Int(42)}); err != nil {
		t.Fatal(err)
	}
	if tab.Fingerprint() == fp1 {
		t.Fatal("update did not change the fingerprint")
	}
	// Empty mutations are no-ops.
	fp2 := tab.Fingerprint()
	if err := tab.AppendRows(); err != nil {
		t.Fatal(err)
	}
	if err := tab.UpdateRows(nil, "n", nil); err != nil {
		t.Fatal(err)
	}
	if tab.Fingerprint() != fp2 {
		t.Fatal("empty mutation changed the fingerprint")
	}
}

// TestSummaryRefreshAfterMutation pins that zone maps rebuilt after
// a mutation describe the new data — and that clean chunks keep
// their entries (pointer equality on the backing slices is not
// observable, so correctness of bounds is what is checked).
func TestSummaryRefreshAfterMutation(t *testing.T) {
	tab := mutTable(t, 2*minChunkRows)
	i := 0 // column "n"
	s := tab.Summary(i)
	if _, hi := s.IntBounds(0); hi != 6 {
		t.Fatalf("initial bounds wrong: hi=%d", hi)
	}
	// Push a new maximum into chunk 0.
	if err := tab.UpdateRows(Selection{3}, "n", []Value{Int(500)}); err != nil {
		t.Fatal(err)
	}
	s = tab.Summary(i)
	if _, hi := s.IntBounds(0); hi != 500 {
		t.Fatalf("chunk 0 bounds not refreshed: hi=%d", hi)
	}
	if _, hi := s.IntBounds(1); hi != 6 {
		t.Fatalf("clean chunk 1 bounds corrupted: hi=%d", hi)
	}
	// Append rows extending the table into a new chunk with a new
	// minimum; the new chunk's bounds must appear.
	row := sampleRow(tab, 0)
	row[0] = Int(-50)
	var rows [][]Value
	for r := 0; r < minChunkRows; r++ {
		rows = append(rows, row)
	}
	if err := tab.AppendRows(rows...); err != nil {
		t.Fatal(err)
	}
	s = tab.Summary(i)
	if lo, _ := s.IntBounds(2); lo != -50 {
		t.Fatalf("appended chunk bounds wrong: lo=%d", lo)
	}
	// String summary: a new dictionary value forces a full nominal
	// rebuild sized to the grown dictionary.
	sc := tab.MustColumn("color").(*StringColumn)
	oldCard := sc.Cardinality()
	row2 := sampleRow(tab, 0)
	row2[2] = String_("chartreuse")
	if err := tab.AppendRows(row2); err != nil {
		t.Fatal(err)
	}
	if sc.Cardinality() != oldCard+1 {
		t.Fatalf("dictionary did not grow: %d", sc.Cardinality())
	}
	if s := tab.Summary(2); s == nil || !s.HasNominal() {
		t.Fatal("nominal summary missing after dict growth")
	}
}

// readonlyBackend wraps MemoryBackend but is a distinct type, so the
// mutation gate must refuse it.
type readonlyBackend struct{ *MemoryBackend }

func TestMutationRefusedOffMemoryBackend(t *testing.T) {
	mb := NewMemoryBackend("ro", NewIntColumn("n", []int64{1, 2, 3}))
	tab, err := NewTableFromBackend(readonlyBackend{mb})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.AppendRows([]Value{Int(4)}); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("append on non-memory backend: err=%v", err)
	}
	if err := tab.UpdateRows(Selection{0}, "n", []Value{Int(9)}); err == nil {
		t.Fatal("update on non-memory backend accepted")
	}
}

func TestSetChunkRowsResetsEpochWidth(t *testing.T) {
	tab := mutTable(t, 4*minChunkRows)
	if err := tab.AppendRows(sampleRow(tab, 0)); err != nil {
		t.Fatal(err)
	}
	before := tab.Stamp()
	tab.SetChunkRows(2 * minChunkRows)
	cur := tab.Stamp()
	if cur.ChunkRows() != 2*minChunkRows {
		t.Fatalf("stamp width = %d", cur.ChunkRows())
	}
	if cur.Version() != before.Version() {
		t.Fatal("re-shard changed the version (data did not change)")
	}
	if _, ok := cur.DirtyVs(before); ok {
		t.Fatal("stamps across a width change must not be chunk-comparable")
	}
	// Same-width SetChunkRows is a no-op and keeps the stamp.
	tab.SetChunkRows(2 * minChunkRows)
	if tab.Stamp() != cur {
		t.Fatal("no-op SetChunkRows replaced the stamp")
	}
}
