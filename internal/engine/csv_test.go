package engine

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const sampleCSV = `type,tonnage,speed,departure,armed,master
fluit,300,4.5,1650-03-15,true,Jan
jacht,120,7.2,1651-07-01,false,Piet
fluit,280,4.8,1652-01-20,true,Klaas
`

func TestReadCSVInference(t *testing.T) {
	tab, err := ReadCSV(strings.NewReader(sampleCSV), CSVOptions{TableName: "voyages"})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name() != "voyages" || tab.NumRows() != 3 || tab.NumCols() != 6 {
		t.Fatalf("shape = %s %d x %d", tab.Name(), tab.NumRows(), tab.NumCols())
	}
	wantKinds := map[string]Kind{
		"type": KindString, "tonnage": KindInt, "speed": KindFloat,
		"departure": KindDate, "armed": KindBool, "master": KindString,
	}
	for name, kind := range wantKinds {
		c, ok := tab.ColumnByName(name)
		if !ok || c.Kind() != kind {
			t.Errorf("column %q kind = %v, want %v", name, c.Kind(), kind)
		}
	}
	if got := tab.MustColumn("departure").Value(0).String(); got != "1650-03-15" {
		t.Errorf("date value = %q", got)
	}
	if got := tab.MustColumn("tonnage").Value(2).AsInt(); got != 280 {
		t.Errorf("tonnage = %d", got)
	}
}

func TestReadCSVExplicitSchema(t *testing.T) {
	// Force tonnage to float despite int-looking values.
	schema := []ColumnSpec{
		{"type", KindString}, {"tonnage", KindFloat}, {"speed", KindFloat},
		{"departure", KindDate}, {"armed", KindBool}, {"master", KindString},
	}
	tab, err := ReadCSV(strings.NewReader(sampleCSV), CSVOptions{Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	if tab.MustColumn("tonnage").Kind() != KindFloat {
		t.Fatal("schema override ignored")
	}
}

func TestReadCSVSchemaMismatch(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(sampleCSV), CSVOptions{
		Schema: []ColumnSpec{{"wrong", KindString}},
	}); err == nil {
		t.Fatal("bad schema accepted")
	}
	schema := []ColumnSpec{
		{"oops", KindString}, {"tonnage", KindInt}, {"speed", KindFloat},
		{"departure", KindDate}, {"armed", KindBool}, {"master", KindString},
	}
	if _, err := ReadCSV(strings.NewReader(sampleCSV), CSVOptions{Schema: schema}); err == nil {
		t.Fatal("misnamed schema column accepted")
	}
}

func TestReadCSVNullPolicies(t *testing.T) {
	withNulls := "a,b\n1,x\n,y\n"
	if _, err := ReadCSV(strings.NewReader(withNulls), CSVOptions{}); err == nil {
		t.Fatal("NullReject accepted an empty cell")
	}
	tab, err := ReadCSV(strings.NewReader(withNulls), CSVOptions{Nulls: NullImpute})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.MustColumn("a").Value(1).AsInt(); got != 0 {
		t.Fatalf("imputed int = %d, want 0", got)
	}
	strNulls := "s,n\nx,1\n,2\n" // empty string cell is a null
	tab, err = ReadCSV(strings.NewReader(strNulls), CSVOptions{Nulls: NullImpute})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.MustColumn("s").Value(1).AsString(); got != "unknown" {
		t.Fatalf("imputed string = %q, want unknown", got)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), CSVOptions{}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n"), CSVOptions{}); err == nil {
		t.Fatal("header-only input accepted")
	}
	bad := "a\n1\nx\n"
	tab, err := ReadCSV(strings.NewReader(bad), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tab.MustColumn("a").Kind() != KindString {
		t.Fatal("mixed column should fall back to string")
	}
	// Explicit schema with unparseable cell must fail loudly.
	if _, err := ReadCSV(strings.NewReader(bad), CSVOptions{
		Schema: []ColumnSpec{{"a", KindInt}},
	}); err == nil {
		t.Fatal("unparseable int accepted under explicit schema")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab, err := ReadCSV(strings.NewReader(sampleCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tab.NumRows() || back.NumCols() != tab.NumCols() {
		t.Fatal("round trip changed shape")
	}
	for c := 0; c < tab.NumCols(); c++ {
		for r := 0; r < tab.NumRows(); r++ {
			a, b := tab.Column(c).Value(r), back.Column(c).Value(r)
			if !a.Equal(b) {
				t.Fatalf("round trip changed cell (%d,%d): %v vs %v", r, c, a, b)
			}
		}
	}
}

func TestReadWriteCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "boats.csv")
	tab, err := ReadCSV(strings.NewReader(sampleCSV), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCSVFile(path, tab); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path, CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "boats" {
		t.Fatalf("table name from path = %q, want boats", back.Name())
	}
	if back.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", back.NumRows())
	}
	if _, err := ReadCSVFile(filepath.Join(dir, "missing.csv"), CSVOptions{}); err == nil {
		t.Fatal("missing file accepted")
	}
}
