// Package sdl implements the Segmentation Description Language of
// Section 2: conjunctive queries whose predicates are range
// constraints, set constraints, or no constraint at all, over the
// columns of a single relation. The package provides the AST, a
// parser and canonical printer (round-trip safe), constraint algebra
// (intersection, containment), schema binding, and translation to
// SQL WHERE clauses — Charles is "a front-end for SQL systems".
package sdl

import (
	"fmt"
	"sort"
	"strings"

	"charles/internal/engine"
)

// ConstraintKind discriminates the three predicate forms of
// Definition 1.
type ConstraintKind uint8

// The three predicate forms.
const (
	// KindAny is "no constraint": Attr : .
	KindAny ConstraintKind = iota
	// KindRange is a range constraint: Attr : [a0, a1].
	KindRange
	// KindSet is a set constraint: Attr : {a0, ..., aK}.
	KindSet
)

// String names the constraint kind.
func (k ConstraintKind) String() string {
	switch k {
	case KindAny:
		return "any"
	case KindRange:
		return "range"
	case KindSet:
		return "set"
	default:
		return "invalid"
	}
}

// Range is an interval with independently inclusive bounds. The
// paper's surface syntax only shows closed ranges [a0, a1]; cuts
// produce half-open ranges [min, med[, so the printed syntax is
// extended with ')' and '(' delimiters (documented deviation).
type Range struct {
	Lo, Hi         engine.Value
	LoIncl, HiIncl bool
}

// Contains reports whether v lies inside the range. Values must be
// comparable with the bounds (same kind family).
func (r Range) Contains(v engine.Value) bool {
	lo := v.Compare(r.Lo)
	if lo < 0 || (lo == 0 && !r.LoIncl) {
		return false
	}
	hi := v.Compare(r.Hi)
	if hi > 0 || (hi == 0 && !r.HiIncl) {
		return false
	}
	return true
}

// Empty reports whether the range provably contains no value of a
// continuous domain: lo > hi, or lo == hi with an exclusive end.
func (r Range) Empty() bool {
	c := r.Lo.Compare(r.Hi)
	if c > 0 {
		return true
	}
	if c == 0 {
		return !(r.LoIncl && r.HiIncl)
	}
	return false
}

// Constraint is one SDL predicate over a named attribute.
type Constraint struct {
	Attr string
	Kind ConstraintKind
	// Range holds the bounds for KindRange constraints.
	Range Range
	// Set holds the admitted values for KindSet constraints, kept
	// sorted and duplicate-free (canonical form).
	Set []engine.Value
}

// Any returns the unconstrained predicate Attr : .
func Any(attr string) Constraint {
	return Constraint{Attr: attr, Kind: KindAny}
}

// RangeC returns the range predicate Attr : lo..hi with the given
// bound inclusivity.
func RangeC(attr string, lo, hi engine.Value, loIncl, hiIncl bool) Constraint {
	return Constraint{Attr: attr, Kind: KindRange, Range: Range{Lo: lo, Hi: hi, LoIncl: loIncl, HiIncl: hiIncl}}
}

// ClosedRange returns the paper's closed range Attr : [lo, hi].
func ClosedRange(attr string, lo, hi engine.Value) Constraint {
	return RangeC(attr, lo, hi, true, true)
}

// SetC returns the set predicate Attr : {vals...}, canonicalized.
func SetC(attr string, vals ...engine.Value) Constraint {
	return Constraint{Attr: attr, Kind: KindSet, Set: canonicalSet(vals)}
}

func canonicalSet(vals []engine.Value) []engine.Value {
	out := make([]engine.Value, 0, len(vals))
	out = append(out, vals...)
	sort.Slice(out, func(i, j int) bool { return valueLess(out[i], out[j]) })
	dedup := out[:0]
	for i, v := range out {
		if i == 0 || !v.Equal(out[i-1]) {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

// valueLess orders values of mixed kinds deterministically: by kind
// family first, then by value. Within a single column all values
// share a kind, so this only matters for canonical sorting.
func valueLess(a, b engine.Value) bool {
	ka, kb := kindFamily(a.Kind()), kindFamily(b.Kind())
	if ka != kb {
		return ka < kb
	}
	switch ka {
	case familyString:
		return a.AsString() < b.AsString()
	default:
		return a.AsFloat() < b.AsFloat()
	}
}

type family uint8

const (
	familyNumeric family = iota
	familyString
	familyBool
)

func kindFamily(k engine.Kind) family {
	switch k {
	case engine.KindString:
		return familyString
	case engine.KindBool:
		return familyBool
	default:
		return familyNumeric
	}
}

// IsAny reports whether the constraint carries no restriction.
func (c Constraint) IsAny() bool { return c.Kind == KindAny }

// Validate checks structural well-formedness.
func (c Constraint) Validate() error {
	if c.Attr == "" {
		return fmt.Errorf("sdl: constraint with empty attribute")
	}
	switch c.Kind {
	case KindAny:
		return nil
	case KindRange:
		if c.Range.Lo.Kind() == engine.KindInvalid || c.Range.Hi.Kind() == engine.KindInvalid {
			return fmt.Errorf("sdl: %s: range with invalid bound", c.Attr)
		}
		if kindFamily(c.Range.Lo.Kind()) == familyString {
			// Ranges over strings are representable but never produced;
			// allow them (lexicographic) for completeness.
			return nil
		}
		return nil
	case KindSet:
		if len(c.Set) == 0 {
			return fmt.Errorf("sdl: %s: empty set constraint", c.Attr)
		}
		return nil
	default:
		return fmt.Errorf("sdl: %s: invalid constraint kind", c.Attr)
	}
}

// Query is a conjunction of predicates (Definition 2), at most one
// per attribute, kept sorted by attribute name. The zero Query has
// no predicates and selects everything. Queries are immutable;
// mutating operations return copies.
type Query struct {
	constraints []Constraint
}

// NewQuery builds a query from predicates, validating each and
// rejecting duplicate attributes.
func NewQuery(cs ...Constraint) (Query, error) {
	sorted := make([]Constraint, len(cs))
	copy(sorted, cs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Attr < sorted[j].Attr })
	for i, c := range sorted {
		if err := c.Validate(); err != nil {
			return Query{}, err
		}
		if i > 0 && sorted[i-1].Attr == c.Attr {
			return Query{}, fmt.Errorf("sdl: duplicate predicate on %q", c.Attr)
		}
	}
	return Query{constraints: sorted}, nil
}

// MustQuery is NewQuery that panics on error, for static queries in
// tests and examples.
func MustQuery(cs ...Constraint) Query {
	q, err := NewQuery(cs...)
	if err != nil {
		panic(err)
	}
	return q
}

// Constraints returns the predicates in canonical (attribute) order.
// The slice must not be mutated.
func (q Query) Constraints() []Constraint { return q.constraints }

// Constraint returns the predicate on attr, if present.
func (q Query) Constraint(attr string) (Constraint, bool) {
	for _, c := range q.constraints {
		if c.Attr == attr {
			return c, true
		}
	}
	return Constraint{}, false
}

// WithConstraint returns a copy of q where the predicate on c.Attr
// is replaced (or added). This is how CUT refines a query.
func (q Query) WithConstraint(c Constraint) Query {
	out := make([]Constraint, 0, len(q.constraints)+1)
	inserted := false
	for _, existing := range q.constraints {
		switch {
		case existing.Attr == c.Attr:
			out = append(out, c)
			inserted = true
		case existing.Attr > c.Attr && !inserted:
			out = append(out, c, existing)
			inserted = true
		default:
			out = append(out, existing)
		}
	}
	if !inserted {
		out = append(out, c)
	}
	return Query{constraints: out}
}

// Attrs returns every attribute the query mentions, constrained or
// not, in canonical order.
func (q Query) Attrs() []string {
	out := make([]string, len(q.constraints))
	for i, c := range q.constraints {
		out[i] = c.Attr
	}
	return out
}

// ConstrainedAttrs returns the attributes carrying a real (non-Any)
// predicate, in canonical order.
func (q Query) ConstrainedAttrs() []string {
	out := make([]string, 0, len(q.constraints))
	for _, c := range q.constraints {
		if !c.IsAny() {
			out = append(out, c.Attr)
		}
	}
	return out
}

// NumConstraints counts the real (non-Any) predicates — the per-
// query ingredient of the simplicity metric P(S) of Section 3.
func (q Query) NumConstraints() int {
	n := 0
	for _, c := range q.constraints {
		if !c.IsAny() {
			n++
		}
	}
	return n
}

// Equal reports whether two queries have identical canonical forms.
func (q Query) Equal(o Query) bool { return q.String() == o.String() }

// Key returns the canonical cache key for the query (its canonical
// string form; constraints and sets are always kept sorted).
func (q Query) Key() string { return q.String() }

var _ fmt.Stringer = Query{}

// String renders the canonical SDL form, e.g.
// (date: [1550-01-01, 1650-12-31], tonnage:, type: {fluit, jacht}).
func (q Query) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range q.constraints {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.String())
	}
	b.WriteByte(')')
	return b.String()
}

// String renders one predicate in SDL surface syntax.
func (c Constraint) String() string {
	var b strings.Builder
	b.WriteString(c.Attr)
	b.WriteByte(':')
	switch c.Kind {
	case KindAny:
		// nothing after the colon
	case KindRange:
		b.WriteByte(' ')
		if c.Range.LoIncl {
			b.WriteByte('[')
		} else {
			b.WriteByte('(')
		}
		b.WriteString(formatLiteral(c.Range.Lo))
		b.WriteString(", ")
		b.WriteString(formatLiteral(c.Range.Hi))
		if c.Range.HiIncl {
			b.WriteByte(']')
		} else {
			b.WriteByte(')')
		}
	case KindSet:
		b.WriteString(" {")
		for i, v := range c.Set {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(formatLiteral(v))
		}
		b.WriteByte('}')
	}
	return b.String()
}

// formatLiteral renders a value as a parseable SDL literal: strings
// are quoted when they could be mistaken for other token types or
// contain delimiters.
func formatLiteral(v engine.Value) string {
	if v.Kind() != engine.KindString {
		return v.String()
	}
	s := v.AsString()
	if needsQuoting(s) {
		return "'" + strings.ReplaceAll(s, "'", "''") + "'"
	}
	return s
}

func needsQuoting(s string) bool {
	if s == "" || s == "true" || s == "false" {
		return true
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9', r == '-', r == '.':
			// allowed inside, but a leading digit/sign/dot lexes as a
			// number or date, so quote those below
		default:
			return true
		}
	}
	r := rune(s[0])
	if (r >= '0' && r <= '9') || r == '-' || r == '.' {
		return true
	}
	return false
}
