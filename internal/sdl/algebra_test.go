package sdl

import (
	"testing"

	"charles/internal/engine"
)

func TestIntersectConstraintsAny(t *testing.T) {
	r := ClosedRange("a", engine.Int(1), engine.Int(5))
	got, ok, err := IntersectConstraints(Any("a"), r)
	if err != nil || !ok || got.Kind != KindRange {
		t.Fatalf("Any ∩ Range = %v %v %v", got, ok, err)
	}
	got, ok, err = IntersectConstraints(r, Any("a"))
	if err != nil || !ok || got.Kind != KindRange {
		t.Fatalf("Range ∩ Any = %v %v %v", got, ok, err)
	}
}

func TestIntersectConstraintsMismatchedAttr(t *testing.T) {
	if _, _, err := IntersectConstraints(Any("a"), Any("b")); err == nil {
		t.Fatal("cross-attribute intersection accepted")
	}
}

func TestIntersectRanges(t *testing.T) {
	a := RangeC("x", engine.Int(0), engine.Int(10), true, false) // [0,10)
	b := RangeC("x", engine.Int(5), engine.Int(20), true, true)  // [5,20]
	got, ok, err := IntersectConstraints(a, b)
	if err != nil || !ok {
		t.Fatalf("intersection failed: %v %v", ok, err)
	}
	want := Range{Lo: engine.Int(5), Hi: engine.Int(10), LoIncl: true, HiIncl: false}
	if got.Range != want {
		t.Fatalf("range = %+v, want %+v", got.Range, want)
	}
	// Disjoint ranges intersect to empty.
	c := RangeC("x", engine.Int(11), engine.Int(20), true, true)
	if _, ok, _ := IntersectConstraints(a, c); ok {
		t.Fatal("disjoint ranges intersected non-empty")
	}
	// Touching at an excluded endpoint is empty.
	d := RangeC("x", engine.Int(10), engine.Int(20), true, true)
	if _, ok, _ := IntersectConstraints(a, d); ok {
		t.Fatal("[0,10) ∩ [10,20] should be empty")
	}
	// Touching at an included endpoint is the point.
	e := RangeC("x", engine.Int(0), engine.Int(5), true, true)
	f := RangeC("x", engine.Int(5), engine.Int(9), true, true)
	got, ok, _ = IntersectConstraints(e, f)
	if !ok || got.Range.Lo.AsInt() != 5 || got.Range.Hi.AsInt() != 5 {
		t.Fatalf("point intersection = %v %v", got, ok)
	}
}

func TestIntersectRangeInclusivityAtEqualBounds(t *testing.T) {
	a := RangeC("x", engine.Int(0), engine.Int(10), true, true)
	b := RangeC("x", engine.Int(0), engine.Int(10), false, false)
	got, ok, _ := IntersectConstraints(a, b)
	if !ok || got.Range.LoIncl || got.Range.HiIncl {
		t.Fatalf("inclusivity AND failed: %+v", got.Range)
	}
}

func TestIntersectSets(t *testing.T) {
	a := SetC("h", engine.String_("bantam"), engine.String_("surat"), engine.String_("zeeland"))
	b := SetC("h", engine.String_("surat"), engine.String_("zeeland"), engine.String_("goa"))
	got, ok, err := IntersectConstraints(a, b)
	if err != nil || !ok || len(got.Set) != 2 {
		t.Fatalf("set intersection = %v %v %v", got, ok, err)
	}
	if got.Set[0].AsString() != "surat" || got.Set[1].AsString() != "zeeland" {
		t.Fatalf("set = %v", got.Set)
	}
	c := SetC("h", engine.String_("goa"))
	if _, ok, _ := IntersectConstraints(a, c); ok {
		t.Fatal("disjoint sets intersected non-empty")
	}
}

func TestIntersectSetWithRange(t *testing.T) {
	set := SetC("ton", engine.Int(100), engine.Int(200), engine.Int(300))
	rng := RangeC("ton", engine.Int(150), engine.Int(300), true, false)
	got, ok, err := IntersectConstraints(set, rng)
	if err != nil || !ok || len(got.Set) != 1 || got.Set[0].AsInt() != 200 {
		t.Fatalf("set∩range = %v %v %v", got, ok, err)
	}
	// Symmetric order.
	got2, ok2, _ := IntersectConstraints(rng, set)
	if !ok2 || len(got2.Set) != 1 || got2.Set[0].AsInt() != 200 {
		t.Fatalf("range∩set = %v %v", got2, ok2)
	}
	empty := RangeC("ton", engine.Int(400), engine.Int(500), true, true)
	if _, ok, _ := IntersectConstraints(set, empty); ok {
		t.Fatal("set∩disjoint-range non-empty")
	}
}

func TestConjoinDistinctAttrs(t *testing.T) {
	a := MustQuery(ClosedRange("tonnage", engine.Int(1000), engine.Int(1150)))
	b := MustQuery(SetC("harbour", engine.String_("bantam")))
	got, ok, err := Conjoin(a, b)
	if err != nil || !ok {
		t.Fatalf("conjoin failed: %v %v", ok, err)
	}
	if got.NumConstraints() != 2 {
		t.Fatalf("conjoined = %s", got)
	}
}

func TestConjoinSharedAttr(t *testing.T) {
	a := MustQuery(RangeC("t", engine.Int(0), engine.Int(10), true, false))
	b := MustQuery(RangeC("t", engine.Int(5), engine.Int(15), true, true))
	got, ok, err := Conjoin(a, b)
	if err != nil || !ok {
		t.Fatalf("conjoin failed: %v %v", ok, err)
	}
	c, _ := got.Constraint("t")
	if c.Range.Lo.AsInt() != 5 || c.Range.Hi.AsInt() != 10 {
		t.Fatalf("conjoined range = %+v", c.Range)
	}
	// Provably empty conjunction.
	c2 := MustQuery(RangeC("t", engine.Int(20), engine.Int(30), true, true))
	if _, ok, _ := Conjoin(a, c2); ok {
		t.Fatal("empty conjunction reported non-empty")
	}
}

func TestConjoinPreservesAnyContext(t *testing.T) {
	ctx := MustQuery(Any("a"), Any("b"))
	cut := MustQuery(ClosedRange("a", engine.Int(1), engine.Int(2)))
	got, ok, err := Conjoin(ctx, cut)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if len(got.Attrs()) != 2 {
		t.Fatalf("context attr lost: %v", got.Attrs())
	}
	if c, _ := got.Constraint("a"); c.Kind != KindRange {
		t.Fatal("Any not replaced by real constraint")
	}
}
