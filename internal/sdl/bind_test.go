package sdl

import (
	"testing"

	"charles/internal/engine"
)

func bindTable(t *testing.T) *engine.Table {
	t.Helper()
	return engine.MustNewTable("voyages",
		engine.NewStringColumn("type", []string{"fluit", "jacht"}),
		engine.NewIntColumn("tonnage", []int64{300, 120}),
		engine.NewFloatColumn("speed", []float64{4.5, 7.2}),
		engine.NewDateColumn("departure", []int64{0, 100}),
		engine.NewBoolColumn("armed", []bool{true, false}),
	)
}

func TestBindUnknownColumn(t *testing.T) {
	tab := bindTable(t)
	if _, err := Bind(MustParse("nope: [1, 2]"), tab); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestBindIntCoercions(t *testing.T) {
	tab := bindTable(t)
	q, err := Bind(MustParse("tonnage: [100.0, 300]"), tab)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := q.Constraint("tonnage")
	if c.Range.Lo.Kind() != engine.KindInt || c.Range.Lo.AsInt() != 100 {
		t.Fatalf("lo = %v", c.Range.Lo)
	}
	if _, err := Bind(MustParse("tonnage: [100.5, 300]"), tab); err == nil {
		t.Fatal("fractional float accepted on int column")
	}
	if _, err := Bind(MustParse("tonnage: {fluit}"), tab); err == nil {
		t.Fatal("string accepted on int column")
	}
}

func TestBindFloatCoercions(t *testing.T) {
	tab := bindTable(t)
	q, err := Bind(MustParse("speed: [4, 8]"), tab)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := q.Constraint("speed")
	if c.Range.Lo.Kind() != engine.KindFloat || c.Range.Lo.AsFloat() != 4 {
		t.Fatalf("lo = %v", c.Range.Lo)
	}
}

func TestBindDateCoercions(t *testing.T) {
	tab := bindTable(t)
	q, err := Bind(MustParse("departure: [1970-01-01, 1970-04-11]"), tab)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := q.Constraint("departure")
	if c.Range.Lo.Kind() != engine.KindDate || c.Range.Lo.AsInt() != 0 {
		t.Fatalf("lo = %v", c.Range.Lo)
	}
	// Ints coerce to day numbers; quoted ISO strings to dates.
	q, err = Bind(MustParse("departure: [0, '1970-04-11']"), tab)
	if err != nil {
		t.Fatal(err)
	}
	c, _ = q.Constraint("departure")
	if c.Range.Lo.Kind() != engine.KindDate || c.Range.Hi.AsInt() != 100 {
		t.Fatalf("bounds = %+v", c.Range)
	}
	if _, err := Bind(MustParse("departure: {notadate}"), tab); err == nil {
		t.Fatal("garbage accepted on date column")
	}
}

func TestBindStringCoercions(t *testing.T) {
	tab := bindTable(t)
	// A numeric-looking literal lands on a string column: coerced to
	// its rendered form.
	q, err := Bind(MustParse("type: {1999, fluit}"), tab)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := q.Constraint("type")
	if len(c.Set) != 2 || c.Set[0].AsString() != "1999" {
		t.Fatalf("set = %v", c.Set)
	}
}

func TestBindBoolCoercions(t *testing.T) {
	tab := bindTable(t)
	q, err := Bind(MustParse("armed: {true}"), tab)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := q.Constraint("armed")
	if c.Set[0].Kind() != engine.KindBool || !c.Set[0].AsBool() {
		t.Fatalf("set = %v", c.Set)
	}
	if _, err := Bind(MustParse("armed: {maybe}"), tab); err == nil {
		t.Fatal("non-bool string accepted on bool column")
	}
}

func TestBindKeepsAny(t *testing.T) {
	tab := bindTable(t)
	q, err := Bind(MustParse("tonnage:, type:"), tab)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumConstraints() != 0 || len(q.Attrs()) != 2 {
		t.Fatalf("bound = %s", q)
	}
}

func TestParseBound(t *testing.T) {
	tab := bindTable(t)
	q, err := ParseBound("(tonnage: [100, 300], type:)", tab)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumConstraints() != 1 {
		t.Fatalf("bound = %s", q)
	}
	if _, err := ParseBound("(((", tab); err == nil {
		t.Fatal("parse error swallowed")
	}
}

func TestContextAll(t *testing.T) {
	tab := bindTable(t)
	q := ContextAll(tab)
	if len(q.Attrs()) != tab.NumCols() || q.NumConstraints() != 0 {
		t.Fatalf("ContextAll = %s", q)
	}
}

func TestContextOn(t *testing.T) {
	tab := bindTable(t)
	q, err := ContextOn(tab, "tonnage", "type")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Attrs()) != 2 {
		t.Fatalf("ContextOn = %s", q)
	}
	if _, err := ContextOn(tab, "ghost"); err == nil {
		t.Fatal("unknown column accepted")
	}
}
