package sdl

import (
	"fmt"
	"math"

	"charles/internal/engine"
)

// Bind validates the query against a table schema and coerces every
// literal to the kind of its column. Coercions are conservative:
//
//   - int column:    int literals; floats only when integral
//   - float column:  int and float literals
//   - date column:   date literals, ISO strings, ints (days)
//   - string column: any literal, rendered to its string form
//   - bool column:   bool literals and the strings true/false
//
// Unknown attributes are errors: the advisor must not silently drop
// a predicate the user typed.
func Bind(q Query, t *engine.Table) (Query, error) {
	out := q
	for _, c := range q.Constraints() {
		col, ok := t.ColumnByName(c.Attr)
		if !ok {
			return Query{}, fmt.Errorf("sdl: no column %q in table %q", c.Attr, t.Name())
		}
		switch c.Kind {
		case KindAny:
			continue
		case KindRange:
			lo, err := coerce(c.Range.Lo, col.Kind(), c.Attr)
			if err != nil {
				return Query{}, err
			}
			hi, err := coerce(c.Range.Hi, col.Kind(), c.Attr)
			if err != nil {
				return Query{}, err
			}
			out = out.WithConstraint(RangeC(c.Attr, lo, hi, c.Range.LoIncl, c.Range.HiIncl))
		case KindSet:
			vals := make([]engine.Value, len(c.Set))
			for i, v := range c.Set {
				cv, err := coerce(v, col.Kind(), c.Attr)
				if err != nil {
					return Query{}, err
				}
				vals[i] = cv
			}
			out = out.WithConstraint(SetC(c.Attr, vals...))
		}
	}
	return out, nil
}

func coerce(v engine.Value, kind engine.Kind, attr string) (engine.Value, error) {
	if v.Kind() == kind {
		return v, nil
	}
	switch kind {
	case engine.KindInt:
		if v.Kind() == engine.KindFloat {
			f := v.AsFloat()
			if f == math.Trunc(f) {
				return engine.Int(int64(f)), nil
			}
		}
	case engine.KindFloat:
		if v.Kind() == engine.KindInt {
			return engine.Float(float64(v.AsInt())), nil
		}
	case engine.KindDate:
		switch v.Kind() {
		case engine.KindInt:
			return engine.Date(v.AsInt()), nil
		case engine.KindString:
			if days, err := engine.ParseDays(v.AsString()); err == nil {
				return engine.Date(days), nil
			}
		}
	case engine.KindString:
		return engine.String_(v.String()), nil
	case engine.KindBool:
		if v.Kind() == engine.KindString {
			switch v.AsString() {
			case "true":
				return engine.Bool(true), nil
			case "false":
				return engine.Bool(false), nil
			}
		}
	}
	return engine.Value{}, fmt.Errorf("sdl: %s: cannot use %s literal %q on a %s column",
		attr, v.Kind(), v.String(), kind)
}

// ParseBound parses and binds in one step — the entry point the CLI
// and the public API use.
func ParseBound(input string, t *engine.Table) (Query, error) {
	q, err := Parse(input)
	if err != nil {
		return Query{}, err
	}
	return Bind(q, t)
}

// ContextAll returns the context query mentioning every column of
// the table with no constraints: "explore the whole database".
func ContextAll(t *engine.Table) Query {
	cs := make([]Constraint, t.NumCols())
	for i, name := range t.ColumnNames() {
		cs[i] = Any(name)
	}
	return MustQuery(cs...)
}

// ContextOn returns an unconstrained context over the given columns.
func ContextOn(t *engine.Table, columns ...string) (Query, error) {
	cs := make([]Constraint, 0, len(columns))
	for _, name := range columns {
		if _, ok := t.ColumnByName(name); !ok {
			return Query{}, fmt.Errorf("sdl: no column %q in table %q", name, t.Name())
		}
		cs = append(cs, Any(name))
	}
	return NewQuery(cs...)
}
