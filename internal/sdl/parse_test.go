package sdl

import (
	"math/rand"
	"strings"
	"testing"

	"charles/internal/engine"
)

func TestParsePaperExample(t *testing.T) {
	// The query from Section 2:
	// (date : [1550,1650], tonnage :, type : {'jacht', 'fluit'})
	q, err := Parse("(date : [1550, 1650], tonnage :, type : {'jacht', 'fluit'})")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Attrs()) != 3 || q.NumConstraints() != 2 {
		t.Fatalf("parsed shape wrong: %s", q)
	}
	d, _ := q.Constraint("date")
	if d.Kind != KindRange || d.Range.Lo.AsInt() != 1550 || !d.Range.HiIncl {
		t.Fatalf("date constraint = %+v", d)
	}
	ty, _ := q.Constraint("type")
	if ty.Kind != KindSet || len(ty.Set) != 2 {
		t.Fatalf("type constraint = %+v", ty)
	}
	if to, _ := q.Constraint("tonnage"); to.Kind != KindAny {
		t.Fatalf("tonnage constraint = %+v", to)
	}
}

func TestParseWithoutParens(t *testing.T) {
	q, err := Parse("tonnage: [1000, 5000], type_of_boat:")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Attrs()) != 2 {
		t.Fatalf("attrs = %v", q.Attrs())
	}
}

func TestParseEmpty(t *testing.T) {
	for _, in := range []string{"", "()", "  "} {
		q, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if len(q.Attrs()) != 0 {
			t.Fatalf("Parse(%q) = %s", in, q)
		}
	}
}

func TestParseLiteralKinds(t *testing.T) {
	q := MustParse("a: {1, 2.5, 1650-03-15, word, 'quoted one', true}")
	c, _ := q.Constraint("a")
	kinds := map[engine.Kind]int{}
	for _, v := range c.Set {
		kinds[v.Kind()]++
	}
	if kinds[engine.KindInt] != 1 || kinds[engine.KindFloat] != 1 ||
		kinds[engine.KindDate] != 1 || kinds[engine.KindString] != 2 ||
		kinds[engine.KindBool] != 1 {
		t.Fatalf("literal kinds = %v", kinds)
	}
}

func TestParseHalfOpenRange(t *testing.T) {
	q := MustParse("ton: [1000, 1150)")
	c, _ := q.Constraint("ton")
	if !c.Range.LoIncl || c.Range.HiIncl {
		t.Fatalf("inclusivity = %+v", c.Range)
	}
	q = MustParse("ton: (1000, 1150]")
	c, _ = q.Constraint("ton")
	if c.Range.LoIncl || !c.Range.HiIncl {
		t.Fatalf("inclusivity = %+v", c.Range)
	}
}

func TestParseNegativeAndFloatNumbers(t *testing.T) {
	q := MustParse("x: [-10, 3.5]")
	c, _ := q.Constraint("x")
	if c.Range.Lo.AsInt() != -10 || c.Range.Hi.AsFloat() != 3.5 {
		t.Fatalf("bounds = %+v", c.Range)
	}
}

func TestParseDates(t *testing.T) {
	q := MustParse("departure: [1650-01-01, 1651-12-31]")
	c, _ := q.Constraint("departure")
	if c.Range.Lo.Kind() != engine.KindDate || c.Range.Lo.String() != "1650-01-01" {
		t.Fatalf("lo = %v", c.Range.Lo)
	}
}

func TestParseQuotedEscapes(t *testing.T) {
	q := MustParse("m: {'O''Neill'}")
	c, _ := q.Constraint("m")
	if c.Set[0].AsString() != "O'Neill" {
		t.Fatalf("escape = %q", c.Set[0].AsString())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"(a:",                 // unclosed paren
		"a: [1, 2",            // unclosed range
		"a: {1, }",            // dangling comma in set
		"a: {}",               // empty set
		"a: [1 2]",            // missing comma
		"a",                   // missing colon
		"a: [1, 2] b: [3, 4]", // missing comma between predicates
		"a: 'unterminated",    // unterminated string
		"a: {1, 2}, a: {3}",   // duplicate attribute
		"1a: {1}",             // bad identifier
		"a: [1-2, 3]",         // malformed literal
		"a: @",                // stray character
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestParseWhitespaceInsensitive(t *testing.T) {
	a := MustParse("(a:[1,2],b:{x,y},c:)")
	b := MustParse(" ( a : [ 1 , 2 ] ,\n b : { x , y } , c : ) ")
	if !a.Equal(b) {
		t.Fatalf("whitespace changed parse: %s vs %s", a, b)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	queries := []Query{
		MustQuery(Any("a")),
		MustQuery(ClosedRange("tonnage", engine.Int(1000), engine.Int(5000)), Any("built")),
		MustQuery(RangeC("t", engine.Float(1.5), engine.Float(2.5), true, false)),
		MustQuery(SetC("h", engine.String_("bantam"), engine.String_("Ram men kens"))),
		MustQuery(RangeC("d", engine.Date(0), engine.Date(1000), false, true)),
		MustQuery(SetC("armed", engine.Bool(true))),
		MustQuery(SetC("weird", engine.String_("3rd-value"), engine.String_("o'brien"), engine.String_(""))),
		{},
	}
	for _, q := range queries {
		back, err := Parse(q.String())
		if err != nil {
			t.Fatalf("round trip parse of %q: %v", q.String(), err)
		}
		if !q.Equal(back) {
			t.Fatalf("round trip changed query: %q -> %q", q.String(), back.String())
		}
	}
}

func TestPrintParseRoundTripRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	words := []string{"fluit", "jacht", "pinas", "de Ruyter", "O'Neill", "x-1", "1999", "true"}
	for trial := 0; trial < 200; trial++ {
		var cs []Constraint
		nAttrs := 1 + rng.Intn(4)
		for i := 0; i < nAttrs; i++ {
			attr := string(rune('a'+i)) + "_col"
			switch rng.Intn(3) {
			case 0:
				cs = append(cs, Any(attr))
			case 1:
				lo := rng.Int63n(1000)
				hi := lo + rng.Int63n(1000)
				cs = append(cs, RangeC(attr, engine.Int(lo), engine.Int(hi), rng.Intn(2) == 0, rng.Intn(2) == 0))
			default:
				n := 1 + rng.Intn(3)
				vals := make([]engine.Value, n)
				for j := range vals {
					vals[j] = engine.String_(words[rng.Intn(len(words))])
				}
				cs = append(cs, SetC(attr, vals...))
			}
		}
		q := MustQuery(cs...)
		back, err := Parse(q.String())
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, q.String(), err)
		}
		if !q.Equal(back) {
			t.Fatalf("trial %d: %q -> %q", trial, q.String(), back.String())
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on bad input")
		}
	}()
	MustParse("(((")
}

func TestParseErrorMessagesCarryOffsets(t *testing.T) {
	_, err := Parse("a: [1, 2")
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error %v lacks offset", err)
	}
}
