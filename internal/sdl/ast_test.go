package sdl

import (
	"testing"

	"charles/internal/engine"
)

func TestRangeContains(t *testing.T) {
	r := Range{Lo: engine.Int(10), Hi: engine.Int(20), LoIncl: true, HiIncl: false}
	if !r.Contains(engine.Int(10)) || !r.Contains(engine.Int(19)) {
		t.Error("range excludes members")
	}
	if r.Contains(engine.Int(20)) || r.Contains(engine.Int(9)) {
		t.Error("range includes non-members")
	}
}

func TestRangeEmpty(t *testing.T) {
	if (Range{Lo: engine.Int(1), Hi: engine.Int(2), LoIncl: true, HiIncl: true}).Empty() {
		t.Error("[1,2] reported empty")
	}
	if !(Range{Lo: engine.Int(2), Hi: engine.Int(1), LoIncl: true, HiIncl: true}).Empty() {
		t.Error("[2,1] not reported empty")
	}
	if (Range{Lo: engine.Int(3), Hi: engine.Int(3), LoIncl: true, HiIncl: true}).Empty() {
		t.Error("[3,3] reported empty")
	}
	if !(Range{Lo: engine.Int(3), Hi: engine.Int(3), LoIncl: true, HiIncl: false}).Empty() {
		t.Error("[3,3) not reported empty")
	}
}

func TestSetCCanonicalizes(t *testing.T) {
	c := SetC("type", engine.String_("jacht"), engine.String_("fluit"), engine.String_("jacht"))
	if len(c.Set) != 2 {
		t.Fatalf("set = %v, want deduped pair", c.Set)
	}
	if c.Set[0].AsString() != "fluit" || c.Set[1].AsString() != "jacht" {
		t.Fatalf("set not sorted: %v", c.Set)
	}
}

func TestConstraintValidate(t *testing.T) {
	if err := Any("a").Validate(); err != nil {
		t.Errorf("Any invalid: %v", err)
	}
	if err := (Constraint{Attr: "", Kind: KindAny}).Validate(); err == nil {
		t.Error("empty attr accepted")
	}
	if err := (Constraint{Attr: "a", Kind: KindSet}).Validate(); err == nil {
		t.Error("empty set accepted")
	}
	if err := (Constraint{Attr: "a", Kind: KindRange}).Validate(); err == nil {
		t.Error("invalid range bounds accepted")
	}
	if err := ClosedRange("a", engine.Int(1), engine.Int(2)).Validate(); err != nil {
		t.Errorf("valid range rejected: %v", err)
	}
}

func TestNewQueryRejectsDuplicates(t *testing.T) {
	if _, err := NewQuery(Any("a"), Any("a")); err == nil {
		t.Fatal("duplicate predicate accepted")
	}
}

func TestQuerySortsConstraints(t *testing.T) {
	q := MustQuery(Any("zulu"), Any("alpha"), Any("mike"))
	attrs := q.Attrs()
	if attrs[0] != "alpha" || attrs[1] != "mike" || attrs[2] != "zulu" {
		t.Fatalf("attrs not canonical: %v", attrs)
	}
}

func TestWithConstraintReplaceAndAdd(t *testing.T) {
	q := MustQuery(Any("a"), Any("c"))
	q2 := q.WithConstraint(ClosedRange("a", engine.Int(1), engine.Int(5)))
	if c, _ := q2.Constraint("a"); c.Kind != KindRange {
		t.Fatal("replace failed")
	}
	if c, _ := q.Constraint("a"); c.Kind != KindAny {
		t.Fatal("WithConstraint mutated the receiver")
	}
	q3 := q2.WithConstraint(SetC("b", engine.String_("x")))
	attrs := q3.Attrs()
	if len(attrs) != 3 || attrs[0] != "a" || attrs[1] != "b" || attrs[2] != "c" {
		t.Fatalf("add kept order wrong: %v", attrs)
	}
	// Appending past the end also works.
	q4 := q3.WithConstraint(Any("zz"))
	if len(q4.Attrs()) != 4 || q4.Attrs()[3] != "zz" {
		t.Fatalf("append failed: %v", q4.Attrs())
	}
}

func TestQueryCounting(t *testing.T) {
	q := MustQuery(
		Any("built"),
		ClosedRange("tonnage", engine.Int(1000), engine.Int(5000)),
		SetC("type", engine.String_("fluit")),
	)
	if q.NumConstraints() != 2 {
		t.Fatalf("NumConstraints = %d, want 2", q.NumConstraints())
	}
	ca := q.ConstrainedAttrs()
	if len(ca) != 2 || ca[0] != "tonnage" || ca[1] != "type" {
		t.Fatalf("ConstrainedAttrs = %v", ca)
	}
}

func TestQueryStringCanonical(t *testing.T) {
	q := MustQuery(
		SetC("type", engine.String_("jacht"), engine.String_("fluit")),
		Any("built"),
		RangeC("tonnage", engine.Int(1000), engine.Int(1150), true, false),
	)
	want := "(built:, tonnage: [1000, 1150), type: {fluit, jacht})"
	if got := q.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if q.Key() != q.String() {
		t.Fatal("Key() must equal canonical string")
	}
}

func TestQueryEqual(t *testing.T) {
	a := MustQuery(Any("x"), ClosedRange("y", engine.Int(1), engine.Int(2)))
	b := MustQuery(ClosedRange("y", engine.Int(1), engine.Int(2)), Any("x"))
	if !a.Equal(b) {
		t.Fatal("order-insensitive equality failed")
	}
	c := MustQuery(Any("x"))
	if a.Equal(c) {
		t.Fatal("different queries reported equal")
	}
}

func TestZeroQuery(t *testing.T) {
	var q Query
	if q.String() != "()" || q.NumConstraints() != 0 || len(q.Attrs()) != 0 {
		t.Fatalf("zero query misbehaves: %q", q.String())
	}
}

func TestStringLiteralQuoting(t *testing.T) {
	q := MustQuery(SetC("master", engine.String_("Jan de Boer"), engine.String_("O'Neill"), engine.String_("true")))
	want := "(master: {'Jan de Boer', 'O''Neill', 'true'})"
	if got := q.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
