package sdl

import (
	"fmt"

	"charles/internal/engine"
)

// IntersectConstraints returns the conjunction of two predicates on
// the same attribute as a single predicate. The boolean is false
// when the conjunction is provably empty (the SDL product of
// Definition 8 then yields an empty segment). Intersecting with Any
// returns the other predicate unchanged.
func IntersectConstraints(a, b Constraint) (Constraint, bool, error) {
	if a.Attr != b.Attr {
		return Constraint{}, false, fmt.Errorf("sdl: intersecting constraints on %q and %q", a.Attr, b.Attr)
	}
	switch {
	case a.IsAny():
		return b, true, nil
	case b.IsAny():
		return a, true, nil
	case a.Kind == KindRange && b.Kind == KindRange:
		r, ok := intersectRanges(a.Range, b.Range)
		if !ok {
			return Constraint{}, false, nil
		}
		return Constraint{Attr: a.Attr, Kind: KindRange, Range: r}, true, nil
	case a.Kind == KindSet && b.Kind == KindSet:
		set := intersectSets(a.Set, b.Set)
		if len(set) == 0 {
			return Constraint{}, false, nil
		}
		return Constraint{Attr: a.Attr, Kind: KindSet, Set: set}, true, nil
	case a.Kind == KindSet && b.Kind == KindRange:
		return filterSetByRange(a, b.Range)
	case a.Kind == KindRange && b.Kind == KindSet:
		return filterSetByRange(b, a.Range)
	default:
		return Constraint{}, false, fmt.Errorf("sdl: cannot intersect %v with %v", a.Kind, b.Kind)
	}
}

func intersectRanges(a, b Range) (Range, bool) {
	out := a
	if c := b.Lo.Compare(a.Lo); c > 0 {
		out.Lo, out.LoIncl = b.Lo, b.LoIncl
	} else if c == 0 {
		out.LoIncl = a.LoIncl && b.LoIncl
	}
	if c := b.Hi.Compare(a.Hi); c < 0 {
		out.Hi, out.HiIncl = b.Hi, b.HiIncl
	} else if c == 0 {
		out.HiIncl = a.HiIncl && b.HiIncl
	}
	if out.Empty() {
		return Range{}, false
	}
	return out, true
}

func intersectSets(a, b []engine.Value) []engine.Value {
	// Both canonical (sorted): merge walk.
	out := make([]engine.Value, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case valueLess(a[i], b[j]):
			i++
		case valueLess(b[j], a[i]):
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func filterSetByRange(set Constraint, r Range) (Constraint, bool, error) {
	out := make([]engine.Value, 0, len(set.Set))
	for _, v := range set.Set {
		if r.Contains(v) {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return Constraint{}, false, nil
	}
	return Constraint{Attr: set.Attr, Kind: KindSet, Set: out}, true, nil
}

// Conjoin returns the conjunction of two queries: predicates on
// distinct attributes are concatenated, predicates on shared
// attributes are intersected. The boolean is false when any shared
// predicate intersects to empty — the query provably selects no
// rows. This implements the query pairing (Q1i, Q2j) of the SDL
// product (Definition 8).
func Conjoin(a, b Query) (Query, bool, error) {
	out := a
	for _, cb := range b.Constraints() {
		ca, ok := out.Constraint(cb.Attr)
		if !ok {
			out = out.WithConstraint(cb)
			continue
		}
		merged, nonEmpty, err := IntersectConstraints(ca, cb)
		if err != nil {
			return Query{}, false, err
		}
		if !nonEmpty {
			return Query{}, false, nil
		}
		out = out.WithConstraint(merged)
	}
	return out, true, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
