package sdl

import (
	"testing"

	"charles/internal/engine"
)

func TestWhereClauseEmpty(t *testing.T) {
	if got := WhereClause(MustQuery(Any("a"), Any("b"))); got != "TRUE" {
		t.Fatalf("WhereClause = %q, want TRUE", got)
	}
	if got := WhereClause(Query{}); got != "TRUE" {
		t.Fatalf("WhereClause(zero) = %q", got)
	}
}

func TestWhereClauseRange(t *testing.T) {
	q := MustQuery(RangeC("tonnage", engine.Int(1000), engine.Int(1150), true, false))
	want := "tonnage >= 1000 AND tonnage < 1150"
	if got := WhereClause(q); got != want {
		t.Fatalf("WhereClause = %q, want %q", got, want)
	}
	q = MustQuery(RangeC("t", engine.Int(1), engine.Int(2), false, true))
	want = "t > 1 AND t <= 2"
	if got := WhereClause(q); got != want {
		t.Fatalf("WhereClause = %q, want %q", got, want)
	}
}

func TestWhereClauseSet(t *testing.T) {
	q := MustQuery(SetC("type", engine.String_("fluit"), engine.String_("jacht")))
	want := "type IN ('fluit', 'jacht')"
	if got := WhereClause(q); got != want {
		t.Fatalf("WhereClause = %q, want %q", got, want)
	}
	q = MustQuery(SetC("type", engine.String_("fluit")))
	want = "type = 'fluit'"
	if got := WhereClause(q); got != want {
		t.Fatalf("singleton set = %q, want %q", got, want)
	}
}

func TestWhereClauseQuotingAndKinds(t *testing.T) {
	q := MustQuery(
		SetC("master", engine.String_("O'Neill")),
		ClosedRange("departure", engine.Date(0), engine.Date(1)),
		SetC("armed", engine.Bool(true)),
	)
	got := WhereClause(q)
	want := "armed = TRUE AND departure >= DATE '1970-01-01' AND departure <= DATE '1970-01-02' AND master = 'O''Neill'"
	if got != want {
		t.Fatalf("WhereClause = %q\nwant          %q", got, want)
	}
}

func TestSelectCountAndStar(t *testing.T) {
	q := MustQuery(ClosedRange("tonnage", engine.Int(1), engine.Int(2)))
	if got := SelectCount(q, "voyages"); got != "SELECT COUNT(*) FROM voyages WHERE tonnage >= 1 AND tonnage <= 2" {
		t.Fatalf("SelectCount = %q", got)
	}
	if got := SelectStar(q, "voyages"); got != "SELECT * FROM voyages WHERE tonnage >= 1 AND tonnage <= 2" {
		t.Fatalf("SelectStar = %q", got)
	}
}

func TestQuoteIdent(t *testing.T) {
	q := MustQuery(ClosedRange("weird col", engine.Int(1), engine.Int(2)))
	got := WhereClause(q)
	want := `"weird col" >= 1 AND "weird col" <= 2`
	if got != want {
		t.Fatalf("WhereClause = %q, want %q", got, want)
	}
	if got := SelectCount(Query{}, "Table"); got != `SELECT COUNT(*) FROM "Table" WHERE TRUE` {
		t.Fatalf("SelectCount = %q", got)
	}
}
