package sdl

import (
	"fmt"
	"strings"

	"charles/internal/engine"
)

// WhereClause translates the query's predicates to a SQL boolean
// expression, the bridge that makes Charles "a front-end for SQL
// systems" (Section 1). Unconstrained predicates contribute nothing;
// a query with no real predicates yields "TRUE". Strings are quoted
// with doubled single quotes, dates as DATE 'YYYY-MM-DD'.
func WhereClause(q Query) string {
	var parts []string
	for _, c := range q.Constraints() {
		if p := predicateSQL(c); p != "" {
			parts = append(parts, p)
		}
	}
	if len(parts) == 0 {
		return "TRUE"
	}
	return strings.Join(parts, " AND ")
}

// SelectCount renders the counting query Charles pushes to the SQL
// back-end for a segment's cover.
func SelectCount(q Query, table string) string {
	return fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s", quoteIdent(table), WhereClause(q))
}

// SelectStar renders the drill-down query a user submits "for
// further exploration" after picking a segment.
func SelectStar(q Query, table string) string {
	return fmt.Sprintf("SELECT * FROM %s WHERE %s", quoteIdent(table), WhereClause(q))
}

func predicateSQL(c Constraint) string {
	switch c.Kind {
	case KindAny:
		return ""
	case KindRange:
		loOp, hiOp := ">=", "<="
		if !c.Range.LoIncl {
			loOp = ">"
		}
		if !c.Range.HiIncl {
			hiOp = "<"
		}
		return fmt.Sprintf("%s %s %s AND %s %s %s",
			quoteIdent(c.Attr), loOp, sqlLiteral(c.Range.Lo),
			quoteIdent(c.Attr), hiOp, sqlLiteral(c.Range.Hi))
	case KindSet:
		if len(c.Set) == 1 {
			return fmt.Sprintf("%s = %s", quoteIdent(c.Attr), sqlLiteral(c.Set[0]))
		}
		vals := make([]string, len(c.Set))
		for i, v := range c.Set {
			vals[i] = sqlLiteral(v)
		}
		return fmt.Sprintf("%s IN (%s)", quoteIdent(c.Attr), strings.Join(vals, ", "))
	default:
		return ""
	}
}

func sqlLiteral(v engine.Value) string {
	switch v.Kind() {
	case engine.KindString:
		return "'" + strings.ReplaceAll(v.AsString(), "'", "''") + "'"
	case engine.KindDate:
		return "DATE '" + v.String() + "'"
	case engine.KindBool:
		if v.AsBool() {
			return "TRUE"
		}
		return "FALSE"
	default:
		return v.String()
	}
}

func quoteIdent(name string) string {
	for i := 0; i < len(name); i++ {
		c := name[i]
		if !(c == '_' || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9' && i > 0)) {
			return `"` + strings.ReplaceAll(name, `"`, `""`) + `"`
		}
	}
	return name
}
