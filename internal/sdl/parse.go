package sdl

import (
	"fmt"
	"strconv"
	"strings"

	"charles/internal/engine"
)

// Parse parses the SDL surface syntax into a Query. The grammar
// (whitespace-insensitive) is:
//
//	query      = [ "(" ] predicates [ ")" ]
//	predicates = predicate { "," predicate }
//	predicate  = ident ":" [ range | set ]
//	range      = ("[" | "(") literal "," literal ("]" | ")")
//	set        = "{" literal { "," literal } "}"
//	literal    = number | date | quoted-string | bare-word
//
// Dates are ISO (1650-03-15), numbers without a dot are integers,
// quoted strings use single quotes with ” escaping. Bare words are
// string literals. The outer parentheses are optional so users can
// type `tonnage:, type: {fluit}` directly. An empty input parses to
// the empty query (no predicates).
func Parse(input string) (Query, error) {
	lx := &lexer{src: input}
	toks, err := lx.run()
	if err != nil {
		return Query{}, err
	}
	p := &parser{toks: toks}
	return p.parseQuery()
}

// MustParse is Parse that panics on error, for static queries.
func MustParse(input string) Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokLBrace
	tokRBrace
	tokColon
	tokComma
	tokWord   // bare word (identifier or string literal)
	tokNumber // integer or float literal
	tokDate   // ISO date literal
	tokString // quoted string literal
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokColon:
		return "':'"
	case tokComma:
		return "','"
	case tokWord:
		return "word"
	case tokNumber:
		return "number"
	case tokDate:
		return "date"
	case tokString:
		return "string"
	default:
		return "unknown token"
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src string
	pos int
}

func (lx *lexer) run() ([]token, error) {
	var toks []token
	for {
		lx.skipSpace()
		if lx.pos >= len(lx.src) {
			toks = append(toks, token{kind: tokEOF, pos: lx.pos})
			return toks, nil
		}
		start := lx.pos
		c := lx.src[lx.pos]
		switch {
		case c == '(':
			lx.pos++
			toks = append(toks, token{tokLParen, "(", start})
		case c == ')':
			lx.pos++
			toks = append(toks, token{tokRParen, ")", start})
		case c == '[':
			lx.pos++
			toks = append(toks, token{tokLBracket, "[", start})
		case c == ']':
			lx.pos++
			toks = append(toks, token{tokRBracket, "]", start})
		case c == '{':
			lx.pos++
			toks = append(toks, token{tokLBrace, "{", start})
		case c == '}':
			lx.pos++
			toks = append(toks, token{tokRBrace, "}", start})
		case c == ':':
			lx.pos++
			toks = append(toks, token{tokColon, ":", start})
		case c == ',':
			lx.pos++
			toks = append(toks, token{tokComma, ",", start})
		case c == '\'':
			text, err := lx.quoted()
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{tokString, text, start})
		case c == '-' || c == '+' || c == '.' || (c >= '0' && c <= '9'):
			tok, err := lx.numberOrDate()
			if err != nil {
				return nil, err
			}
			toks = append(toks, tok)
		case isWordStart(c):
			toks = append(toks, token{tokWord, lx.word(), start})
		default:
			return nil, fmt.Errorf("sdl: unexpected character %q at offset %d", c, lx.pos)
		}
	}
}

func (lx *lexer) skipSpace() {
	for lx.pos < len(lx.src) {
		switch lx.src[lx.pos] {
		case ' ', '\t', '\n', '\r':
			lx.pos++
		default:
			return
		}
	}
}

func (lx *lexer) quoted() (string, error) {
	start := lx.pos
	lx.pos++ // opening quote
	var b strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '\'' {
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '\'' {
				b.WriteByte('\'') // '' escape
				lx.pos += 2
				continue
			}
			lx.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		lx.pos++
	}
	return "", fmt.Errorf("sdl: unterminated string starting at offset %d", start)
}

func isWordStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isWordChar(c byte) bool {
	return isWordStart(c) || (c >= '0' && c <= '9') || c == '-' || c == '.'
}

func (lx *lexer) word() string {
	start := lx.pos
	for lx.pos < len(lx.src) && isWordChar(lx.src[lx.pos]) {
		lx.pos++
	}
	return lx.src[start:lx.pos]
}

// numberOrDate lexes a numeric token, promoting it to a date when it
// matches DDDD-DD-DD.
func (lx *lexer) numberOrDate() (token, error) {
	start := lx.pos
	// Greedily take number-ish characters, including '-' so ISO
	// dates lex as one token.
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
			((c == '-' || c == '+') && lx.pos == start) {
			lx.pos++
			continue
		}
		if c == '-' && looksLikeDateSoFar(lx.src[start:lx.pos]) {
			lx.pos++
			continue
		}
		break
	}
	text := lx.src[start:lx.pos]
	if isISODate(text) {
		return token{tokDate, text, start}, nil
	}
	if strings.Contains(text[1:], "-") {
		return token{}, fmt.Errorf("sdl: malformed literal %q at offset %d", text, start)
	}
	if _, err := strconv.ParseFloat(text, 64); err != nil {
		return token{}, fmt.Errorf("sdl: malformed number %q at offset %d", text, start)
	}
	return token{tokNumber, text, start}, nil
}

func looksLikeDateSoFar(s string) bool {
	// Accept a '-' after 4 digits (year) or after 4+1+2 digits.
	return len(s) == 4 && allDigits(s) || (len(s) == 7 && allDigits(s[:4]) && s[4] == '-' && allDigits(s[5:]))
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

func isISODate(s string) bool {
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return false
	}
	return allDigits(s[:4]) && allDigits(s[5:7]) && allDigits(s[8:])
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.next()
	if t.kind != kind {
		return token{}, fmt.Errorf("sdl: expected %v at offset %d, found %v", kind, t.pos, t.kind)
	}
	return t, nil
}

func (p *parser) parseQuery() (Query, error) {
	wrapped := false
	if p.peek().kind == tokLParen {
		p.next()
		wrapped = true
	}
	var cs []Constraint
	for p.peek().kind == tokWord {
		c, err := p.parsePredicate()
		if err != nil {
			return Query{}, err
		}
		cs = append(cs, c)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if wrapped {
		if _, err := p.expect(tokRParen); err != nil {
			return Query{}, err
		}
	}
	if _, err := p.expect(tokEOF); err != nil {
		return Query{}, err
	}
	return NewQuery(cs...)
}

func (p *parser) parsePredicate() (Constraint, error) {
	name, err := p.expect(tokWord)
	if err != nil {
		return Constraint{}, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return Constraint{}, err
	}
	switch p.peek().kind {
	case tokLBracket, tokLParen:
		return p.parseRange(name.text)
	case tokLBrace:
		return p.parseSet(name.text)
	default:
		return Any(name.text), nil
	}
}

func (p *parser) parseRange(attr string) (Constraint, error) {
	open := p.next()
	loIncl := open.kind == tokLBracket
	lo, err := p.parseLiteral()
	if err != nil {
		return Constraint{}, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return Constraint{}, err
	}
	hi, err := p.parseLiteral()
	if err != nil {
		return Constraint{}, err
	}
	closeTok := p.next()
	var hiIncl bool
	switch closeTok.kind {
	case tokRBracket:
		hiIncl = true
	case tokRParen:
		hiIncl = false
	default:
		return Constraint{}, fmt.Errorf("sdl: expected ']' or ')' at offset %d, found %v", closeTok.pos, closeTok.kind)
	}
	return RangeC(attr, lo, hi, loIncl, hiIncl), nil
}

func (p *parser) parseSet(attr string) (Constraint, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return Constraint{}, err
	}
	var vals []engine.Value
	for {
		v, err := p.parseLiteral()
		if err != nil {
			return Constraint{}, err
		}
		vals = append(vals, v)
		t := p.next()
		switch t.kind {
		case tokComma:
			continue
		case tokRBrace:
			return SetC(attr, vals...), nil
		default:
			return Constraint{}, fmt.Errorf("sdl: expected ',' or '}' at offset %d, found %v", t.pos, t.kind)
		}
	}
}

func (p *parser) parseLiteral() (engine.Value, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		if !strings.ContainsAny(t.text, ".eE") {
			i, err := strconv.ParseInt(t.text, 10, 64)
			if err == nil {
				return engine.Int(i), nil
			}
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return engine.Value{}, fmt.Errorf("sdl: bad number %q at offset %d", t.text, t.pos)
		}
		return engine.Float(f), nil
	case tokDate:
		days, err := engine.ParseDays(t.text)
		if err != nil {
			return engine.Value{}, err
		}
		return engine.Date(days), nil
	case tokString:
		return engine.String_(t.text), nil
	case tokWord:
		switch t.text {
		case "true":
			return engine.Bool(true), nil
		case "false":
			return engine.Bool(false), nil
		}
		return engine.String_(t.text), nil
	default:
		return engine.Value{}, fmt.Errorf("sdl: expected a literal at offset %d, found %v", t.pos, t.kind)
	}
}
