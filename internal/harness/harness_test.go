package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// quick runs every experiment at a small scale; this is both the
// correctness test of the harness and a smoke test of the full
// pipeline.
var quick = Options{Scale: 0.02, Seed: 1}

func TestExperimentsList(t *testing.T) {
	ids := Experiments()
	if len(ids) != 12 || ids[0] != "E1" || ids[11] != "E12" {
		t.Fatalf("experiments = %v", ids)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("E99", quick); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunAllProducesTables(t *testing.T) {
	tables, err := RunAll(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) < 12 {
		t.Fatalf("tables = %d, want ≥ 12 (E7 and E9 emit two)", len(tables))
	}
	for _, tab := range tables {
		if tab.ID == "" || tab.Title == "" || tab.Expectation == "" {
			t.Fatalf("table %q lacks metadata", tab.Title)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("table %s has no rows", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Fatalf("table %s: row width %d != header %d", tab.ID, len(row), len(tab.Header))
			}
		}
		md := tab.Markdown()
		if !strings.Contains(md, "### "+tab.ID) || !strings.Contains(md, "|") {
			t.Fatalf("markdown for %s malformed", tab.ID)
		}
	}
}

func TestE3TraceMatchesFigure(t *testing.T) {
	tables, err := Run("E3", Options{Scale: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := tables[0]
	if len(tr.Rows) != 3 {
		t.Fatalf("trace rows = %d, want 3 compositions", len(tr.Rows))
	}
	wantPairs := []string{"att2+att3", "att4+att5", "att1+att2+att3"}
	for i, row := range tr.Rows {
		if !strings.Contains(row[1], wantPairs[i][strings.LastIndex(wantPairs[i], "+")+1:]) {
			t.Fatalf("trace step %d = %q", i, row[1])
		}
	}
	if !strings.Contains(tr.Finding, "8 segmentations") {
		t.Fatalf("finding = %q", tr.Finding)
	}
}

func TestE5IndepMonotone(t *testing.T) {
	tables, err := Run("E5", quick)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	prev := 2.0
	for _, row := range rows {
		ind, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if ind > prev+0.02 {
			t.Fatalf("INDEP not (weakly) decreasing: %v", rows)
		}
		prev = ind
	}
	first, _ := strconv.ParseFloat(rows[0][3], 64)
	last, _ := strconv.ParseFloat(rows[len(rows)-1][3], 64)
	if first < 0.98 || last > 0.9 {
		t.Fatalf("INDEP endpoints: %v .. %v", first, last)
	}
}

func TestE10MiddleThird(t *testing.T) {
	tables, err := Run("E10", quick)
	if err != nil {
		t.Fatal(err)
	}
	var arity3 []string
	for _, row := range tables[0].Rows {
		if row[0] == "3" {
			arity3 = row
		}
	}
	if arity3 == nil || arity3[3] != "yes" {
		t.Fatalf("arity-3 row = %v", arity3)
	}
}

func TestWriteReport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, quick, "E2", "E12"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "### E2") || !strings.Contains(out, "### E12") {
		t.Fatalf("report = %q", out[:200])
	}
	if strings.Contains(out, "### E1 ") {
		t.Fatal("report ran experiments it was not asked for")
	}
	if err := WriteReport(&buf, quick, "bogus"); err == nil {
		t.Fatal("bogus id accepted")
	}
}

func TestOptionsNormalization(t *testing.T) {
	o := Options{}.normalize()
	if o.Scale != 1 || o.Seed != 1 {
		t.Fatalf("defaults = %+v", o)
	}
	if got := (Options{Scale: 0.001}).rows(1000); got != 64 {
		t.Fatalf("rows floor = %d", got)
	}
	if got := (Options{Scale: 2}).rows(1000); got != 2000 {
		t.Fatalf("rows scale = %d", got)
	}
}
