// Package harness runs the reproduction experiments E1–E12 of
// DESIGN.md: one per paper figure plus one per quantitative claim in
// the text. Every experiment emits a markdown table carrying the
// paper's qualitative expectation next to the measured result, so
// `charles-bench` regenerates the material recorded in
// EXPERIMENTS.md. All experiments are deterministic under a fixed
// seed; Options.Scale shrinks row counts for quick runs.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies every experiment's row counts (default 1).
	// Benchmarks and CI use small scales; the recorded EXPERIMENTS.md
	// numbers use 1.
	Scale float64
	// Seed drives all generators (default 1).
	Seed int64
}

func (o Options) normalize() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) rows(n int) int {
	scaled := int(float64(n) * o.Scale)
	if scaled < 64 {
		scaled = 64
	}
	return scaled
}

// Table is one experiment's output.
type Table struct {
	// ID is the experiment identifier (E1..E12).
	ID string
	// Title names the experiment.
	Title string
	// Expectation states what the paper predicts, verbatim where
	// possible.
	Expectation string
	// Header and Rows hold the measured table.
	Header []string
	Rows   [][]string
	// Finding summarizes the measured outcome in one sentence.
	Finding string
}

// Markdown renders the table as a markdown section.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "*Paper expectation:* %s\n\n", t.Expectation)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Finding != "" {
		fmt.Fprintf(&b, "\n*Measured:* %s\n", t.Finding)
	}
	return b.String()
}

// runner produces the tables of one experiment.
type runner struct {
	id   string
	name string
	run  func(Options) ([]*Table, error)
}

var runners = []runner{
	{"E1", "Figure 1 end-to-end session on VOC voyages", runE1},
	{"E2", "Figure 2 primitives: CUT, COMPOSE, PRODUCT", runE2},
	{"E3", "Figure 3 HB-cuts execution trace", runE3},
	{"E4", "Figure 4 stopping-criteria sweep", runE4},
	{"E5", "Proposition 1: INDEP vs dependence", runE5},
	{"E6", "Horizontal scalability (attribute count)", runE6},
	{"E7", "Vertical scalability (row count, column vs row store)", runE7},
	{"E8", "Sampled medians (Section 5.2)", runE8},
	{"E9", "Baseline comparison (Section 6)", runE9},
	{"E10", "Quantile cuts (Section 5.2)", runE10},
	{"E11", "Lazy generation (Section 5.2)", runE11},
	{"E12", "Metric sanity (Sections 2-3)", runE12},
}

// Experiments lists the available experiment ids in order.
func Experiments() []string {
	out := make([]string, len(runners))
	for i, r := range runners {
		out[i] = r.id
	}
	return out
}

// Run executes one experiment by id.
func Run(id string, opt Options) ([]*Table, error) {
	opt = opt.normalize()
	for _, r := range runners {
		if strings.EqualFold(r.id, id) {
			return r.run(opt)
		}
	}
	return nil, fmt.Errorf("harness: unknown experiment %q (want one of %s)",
		id, strings.Join(Experiments(), ", "))
}

// RunAll executes every experiment in order.
func RunAll(opt Options) ([]*Table, error) {
	opt = opt.normalize()
	var out []*Table
	for _, r := range runners {
		tables, err := r.run(opt)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", r.id, err)
		}
		out = append(out, tables...)
	}
	return out, nil
}

// WriteReport runs experiments (all when ids is empty) and writes
// the markdown report to w.
func WriteReport(w io.Writer, opt Options, ids ...string) error {
	opt = opt.normalize()
	var tables []*Table
	if len(ids) == 0 {
		var err error
		tables, err = RunAll(opt)
		if err != nil {
			return err
		}
	} else {
		for _, id := range ids {
			ts, err := Run(id, opt)
			if err != nil {
				return err
			}
			tables = append(tables, ts...)
		}
	}
	fmt.Fprintf(w, "# Charles reproduction report (scale %.2f, seed %d)\n\n", opt.Scale, opt.Seed)
	for _, t := range tables {
		fmt.Fprintln(w, t.Markdown())
	}
	return nil
}

// --- small shared helpers ---

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func joinAttrs(attrs []string) string {
	out := make([]string, len(attrs))
	copy(out, attrs)
	sort.Strings(out)
	return strings.Join(out, "+")
}
