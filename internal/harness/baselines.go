package harness

import (
	"fmt"
	"time"

	"charles/internal/baseline"
	"charles/internal/core"
	"charles/internal/dataset"
	"charles/internal/sdl"
	"charles/internal/seg"
	"charles/internal/stats"
)

// runE9 compares HB-cuts against the Section 6 contenders on the
// VOC and Gaussian workloads.
func runE9(opt Options) ([]*Table, error) {
	voc, err := e9OnVOC(opt)
	if err != nil {
		return nil, err
	}
	gauss, err := e9OnGaussian(opt)
	if err != nil {
		return nil, err
	}
	return []*Table{voc, gauss}, nil
}

func e9OnVOC(opt Options) (*Table, error) {
	tab := dataset.VOC(opt.rows(20000), opt.Seed)
	ev := seg.NewEvaluator(tab)
	ctx, err := sdl.ContextOn(tab, "type_of_boat", "tonnage", "departure_harbour", "trip")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E9",
		Title: "Baseline comparison on VOC voyages",
		Expectation: "HB-cuts answers are broader than facets (breadth 1 by " +
			"construction) and better balanced than random composition; CLIQUE " +
			"finds dense regions but neither partitions nor ranks.",
		Header: []string{"method", "best entropy", "breadth", "simplicity", "balance", "answers", "time (ms)"},
	}
	addScored := func(name string, scored []core.Scored, elapsed time.Duration) {
		if len(scored) == 0 {
			t.Rows = append(t.Rows, []string{name, "-", "-", "-", "-", "0", ms(elapsed)})
			return
		}
		best := scored[0]
		for _, sc := range scored {
			if sc.Metrics.Entropy > best.Metrics.Entropy {
				best = sc
			}
		}
		t.Rows = append(t.Rows, []string{
			name, f3(best.Metrics.Entropy), itoa(best.Metrics.Breadth),
			itoa(best.Metrics.Simplicity), f3(best.Metrics.Balance),
			itoa(len(scored)), ms(elapsed),
		})
	}

	start := time.Now()
	hb, err := core.HBCuts(ev, ctx, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	addScored("HB-cuts", hb.Segmentations, time.Since(start))

	start = time.Now()
	adaptive, err := core.AdaptiveCuts(ev, ctx, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	addScored("adaptive (greedy tree)", adaptive, time.Since(start))

	cfg := core.DefaultConfig()
	cfg.Pairing = core.PairRandom
	cfg.Seed = opt.Seed
	start = time.Now()
	random, err := core.HBCuts(ev, ctx, cfg)
	if err != nil {
		return nil, err
	}
	addScored("random composition", random.Segmentations, time.Since(start))

	start = time.Now()
	facets, err := baseline.Facets(ev, ctx, 12)
	if err != nil {
		return nil, err
	}
	facetElapsed := time.Since(start)
	var facetScored []core.Scored
	for _, f := range facets {
		facetScored = append(facetScored, core.Scored{Seg: f, Metrics: f.ComputeMetrics()})
	}
	addScored("facets", facetScored, facetElapsed)

	start = time.Now()
	clique, err := baseline.Clique(tab, tab.All(),
		[]string{"type_of_boat", "tonnage", "departure_harbour", "trip"},
		baseline.DefaultCliqueConfig())
	if err != nil {
		return nil, err
	}
	// Clusters overlap across subspaces, so summing coverage double-
	// counts; report the largest single 2-dim+ cluster instead.
	maxCover := 0
	for _, c := range clique.Clusters {
		if len(c.Subspace) >= 2 && c.Coverage > maxCover {
			maxCover = c.Coverage
		}
	}
	t.Rows = append(t.Rows, []string{
		"CLIQUE (2-dim+ clusters)", "-", "-", "-",
		fmt.Sprintf("best cluster %.0f%%", 100*float64(maxCover)/float64(tab.NumRows())),
		itoa(len(clique.Clusters)), ms(time.Since(start)),
	})
	t.Finding = "HB-cuts dominates facets on breadth and random composition on balance; " +
		"CLIQUE reports overlapping dense regions rather than a ranked partition."
	return t, nil
}

func e9OnGaussian(opt Options) (*Table, error) {
	tab := dataset.GaussianMixture(opt.rows(20000), 2, 4, opt.Seed)
	ev := seg.NewEvaluator(tab)
	ctx, err := sdl.ContextOn(tab, "x0", "x1")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E9b",
		Title: "Homogeneity proxy on a Gaussian mixture",
		Expectation: "Section 3 declines to optimize homogeneity; the heuristic should " +
			"still produce \"good enough\" groups — tighter than the whole context, " +
			"looser than k-means, which optimizes it directly but cannot output SDL.",
		Header: []string{"method", "within-variance ratio (↓ tighter)", "expressible as SDL"},
	}
	// Disable the independence stop: the point here is to measure
	// homogeneity at a useful depth, and the 2×2 marginals of the
	// blob layout can look independent even though the blobs are
	// real.
	cfg := core.DefaultConfig()
	cfg.MaxIndep = 1.000001
	res, err := core.HBCuts(ev, ctx, cfg)
	if err != nil {
		return nil, err
	}
	deepest := res.Segmentations[0]
	for _, sc := range res.Segmentations {
		if sc.Metrics.Depth > deepest.Metrics.Depth {
			deepest = sc
		}
	}
	hbHom, err := baseline.SegmentationHomogeneity(ev, ctx, deepest.Seg, []string{"x0", "x1"})
	if err != nil {
		return nil, err
	}
	// Best of several restarts so the baseline is not handicapped by
	// one unlucky seeding.
	var km *baseline.KMeansResult
	for restart := int64(0); restart < 5; restart++ {
		cand, err := baseline.KMeans(tab, tab.All(), []string{"x0", "x1"},
			deepest.Metrics.Depth, 50, opt.Seed+restart)
		if err != nil {
			return nil, err
		}
		if km == nil || cand.WithinSS < km.WithinSS {
			km = cand
		}
	}
	// Normalize k-means within-SS by the total SS for comparability
	// with the segmentation ratio.
	base, err := baseline.KMeans(tab, tab.All(), []string{"x0", "x1"}, 1, 1, opt.Seed)
	if err != nil {
		return nil, err
	}
	kmRatio := km.WithinSS / base.WithinSS
	t.Rows = append(t.Rows,
		[]string{fmt.Sprintf("HB-cuts (depth %d)", deepest.Metrics.Depth), f3(hbHom), "yes"},
		[]string{fmt.Sprintf("k-means (k=%d)", deepest.Metrics.Depth), f3(kmRatio), "no"},
		[]string{"whole context (no split)", "1.000", "-"},
	)
	t.Finding = fmt.Sprintf("HB-cuts reaches %.0f%% of the variance reduction k-means gets "+
		"while staying fully query-expressible.", 100*(1-hbHom)/(1-kmRatio))
	return t, nil
}

// runE10 demonstrates the quantile extension: median-only cuts
// cannot isolate the dense middle of a Gaussian; tertile cuts can.
func runE10(opt Options) ([]*Table, error) {
	tab := dataset.GaussianMixture(opt.rows(100000), 1, 1, opt.Seed)
	ev := seg.NewEvaluator(tab)
	ctx, err := sdl.ContextOn(tab, "x0")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E10",
		Title: "Quantile cuts (Section 5.2)",
		Expectation: "\"There is no way to obtain a pie-chart displaying the second " +
			"third of the population\" with median cuts; arity-3 equi-depth cuts " +
			"isolate it directly and the pieces stay balanced.",
		Header: []string{"arity", "pieces", "piece shares", "middle third isolated"},
	}
	for _, arity := range []int{2, 3, 4} {
		cfg := seg.DefaultCutOptions()
		cfg.Arity = arity
		s, ok, err := seg.InitialCut(ev, ctx, "x0", cfg)
		if err != nil || !ok {
			return nil, fmt.Errorf("cut arity %d: %v", arity, err)
		}
		shares := make([]string, len(s.Counts))
		isolated := "no"
		for i, c := range s.Counts {
			share := float64(c) / float64(s.Total())
			shares[i] = fmt.Sprintf("%.1f%%", 100*share)
			if arity == 3 && i == 1 && share > 0.30 && share < 0.37 {
				isolated = "yes"
			}
		}
		t.Rows = append(t.Rows, []string{
			itoa(arity), itoa(s.Depth()), fmt.Sprintf("%v", shares), isolated,
		})
	}
	t.Finding = "arity-3 cuts expose the second third as one segment; binary cuts cannot."
	return []*Table{t}, nil
}

// runE11 measures lazy generation: time to first/k-th answer versus
// the eager run.
func runE11(opt Options) ([]*Table, error) {
	tab := dataset.VOC(opt.rows(100000), opt.Seed)
	ctx, err := sdl.ContextOn(tab,
		"type_of_boat", "tonnage", "built", "departure_harbour", "trip")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E11",
		Title: "Lazy generation (Section 5.2)",
		Expectation: "\"It may be beneficial to spread the computation time: the system " +
			"would only generate a small set of queries, and create more upon " +
			"request\": first answers should arrive well before the eager run completes.",
		Header: []string{"mode", "time to 1st answer (ms)", "time to 5th (ms)", "time to all (ms)", "answers"},
	}
	start := time.Now()
	eager, err := core.HBCuts(seg.NewEvaluator(tab), ctx, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	eagerTotal := time.Since(start)
	t.Rows = append(t.Rows, []string{
		"eager", ms(eagerTotal), ms(eagerTotal), ms(eagerTotal), itoa(len(eager.Segmentations)),
	})
	start = time.Now()
	st, err := core.NewStream(seg.NewEvaluator(tab), ctx, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	var first, fifth, all time.Duration
	n := 0
	for {
		_, ok, err := st.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			all = time.Since(start)
			break
		}
		n++
		switch n {
		case 1:
			first = time.Since(start)
		case 5:
			fifth = time.Since(start)
		}
	}
	if fifth == 0 {
		fifth = all
	}
	t.Rows = append(t.Rows, []string{"lazy stream", ms(first), ms(fifth), ms(all), itoa(n)})
	t.Finding = "the stream serves its first answers as soon as the initial cuts exist; " +
		"total work matches the eager run."
	return []*Table{t}, nil
}

// runE12 verifies the metric definitions on constructed cases.
func runE12(opt Options) ([]*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "Metric sanity (Sections 2-3)",
		Expectation: "Entropy is 0 for one piece and log M for M balanced pieces; " +
			"simplicity counts the largest predicate set; breadth counts distinct " +
			"columns; the principles trade off rather than coincide.",
		Header: []string{"case", "entropy (bits)", "expected"},
	}
	for k := 1; k <= 12; k++ {
		counts := make([]int, k)
		for i := range counts {
			counts[i] = 100
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("balanced %d-way", k),
			f4(stats.Entropy(counts)),
			f4(stats.MaxEntropy(k)),
		})
	}
	t.Rows = append(t.Rows, []string{"skewed 90/10", f4(stats.Entropy([]int{90, 10})), "< 1.0000"})
	t.Finding = "measured entropies match log2(M) exactly on balanced splits and drop under skew."
	return []*Table{t}, nil
}
