package harness

import (
	"fmt"
	"time"

	"charles/internal/core"
	"charles/internal/dataset"
	"charles/internal/engine"
	"charles/internal/sdl"
	"charles/internal/seg"
	"charles/internal/stats"
)

// runE5 validates Proposition 1: INDEP(S1,S2) = 1 iff the segment
// variables are independent, and decreases with dependence.
func runE5(opt Options) ([]*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "Proposition 1: INDEP vs dependence",
		Expectation: "E(S1×S2) = E(S1)+E(S2) iff independent; the quotient " +
			"INDEP decreases with the degree of dependence between the variables.",
		Header: []string{"dependence ρ", "E(S1)+E(S2)", "E(S1×S2)", "INDEP", "chi² p-value"},
	}
	n := opt.rows(50000)
	for _, rho := range []float64{0, 0.25, 0.5, 0.75, 0.95} {
		tab := dataset.CorrelatedPair(n, rho, opt.Seed)
		ev := seg.NewEvaluator(tab)
		ctx := sdl.ContextAll(tab)
		sx, ok1, err := seg.InitialCut(ev, ctx, "x", seg.DefaultCutOptions())
		if err != nil || !ok1 {
			return nil, fmt.Errorf("cut x: %v", err)
		}
		sy, ok2, err := seg.InitialCut(ev, ctx, "y", seg.DefaultCutOptions())
		if err != nil || !ok2 {
			return nil, fmt.Errorf("cut y: %v", err)
		}
		cells, err := seg.CellCounts(ev, sx, sy)
		if err != nil {
			return nil, err
		}
		ind := seg.IndepFromCells(cells)
		joint := make([]int, 0, 4)
		for _, row := range cells {
			joint = append(joint, row...)
		}
		stat, dof := stats.ChiSquare(cells)
		t.Rows = append(t.Rows, []string{
			f3(rho),
			f4(sx.Entropy() + sy.Entropy()),
			f4(stats.Entropy(joint)),
			f4(ind),
			fmt.Sprintf("%.2e", stats.ChiSquarePValue(stat, dof)),
		})
	}
	t.Finding = "INDEP is ≈1 at ρ=0 and decreases monotonically with ρ, matching Proposition 1."
	return []*Table{t}, nil
}

// runE6 measures horizontal scalability: runtime and INDEP-cache
// effectiveness as the attribute count grows on a dependency chain
// (the worst case: everything composes).
func runE6(opt Options) ([]*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "Horizontal scalability (attribute count)",
		Expectation: "\"The search space grows exponentially\" with attributes, but " +
			"caching (\"calculations of SDL products and entropy can be reused\") and " +
			"the dozen-slice bound keep interaction time; INDEP evaluations grow " +
			"quadratically per iteration without reuse.",
		Header: []string{"attributes", "answers", "compositions", "INDEP evals", "cache hits", "uncached would be", "time (ms)"},
	}
	n := opt.rows(20000)
	for _, attrs := range []int{2, 4, 6, 8, 10, 12} {
		tab := dataset.Chain(n, attrs, 150, opt.Seed)
		ev := seg.NewEvaluator(tab)
		ctx := sdl.ContextAll(tab)
		start := time.Now()
		res, err := core.HBCuts(ev, ctx, core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		// Without pair-cache reuse, iteration i re-evaluates all
		// C(k_i, 2) pairs.
		uncached, k := 0, attrs
		for i := 0; i <= res.Iterations; i++ {
			uncached += k * (k - 1) / 2
			k--
		}
		t.Rows = append(t.Rows, []string{
			itoa(attrs), itoa(len(res.Segmentations)), itoa(res.Iterations),
			itoa(res.IndepEvals), itoa(res.IndepCacheHits), itoa(uncached), ms(elapsed),
		})
	}
	t.Finding = "INDEP evaluations stay near the theoretical minimum thanks to pair caching; " +
		"wall time grows smoothly with attribute count because the depth bound caps composition."
	return []*Table{t}, nil
}

// runE7 measures vertical scalability: the cost split between
// medians and predicate counts, and column-at-a-time versus
// row-at-a-time execution.
func runE7(opt Options) ([]*Table, error) {
	scal := &Table{
		ID:    "E7",
		Title: "Vertical scalability (row count)",
		Expectation: "\"Two types of operations are performed: median calculations and " +
			"counts over predicates\"; medians dominate (sorting beats scanning), and " +
			"both scale near-linearly with the table size.",
		Header: []string{"rows", "median (ms)", "count (ms)", "full advise (ms)", "answers"},
	}
	for _, n := range []int{1000, 10000, 100000, 1000000} {
		rows := opt.rows(n)
		tab := dataset.VOC(rows, opt.Seed)
		ton := tab.MustColumn("tonnage").(*engine.IntColumn)
		all := tab.All()
		start := time.Now()
		if _, ok := engine.IntMedian(ton, all); !ok {
			return nil, fmt.Errorf("median failed")
		}
		medianTime := time.Since(start)
		r := engine.IntRange{Lo: 200, Hi: 600, LoIncl: true, HiIncl: true}
		start = time.Now()
		_ = engine.FilterIntRange(ton, all, r)
		countTime := time.Since(start)
		ev := seg.NewEvaluator(tab)
		ctx, err := sdl.ContextOn(tab, "type_of_boat", "tonnage", "departure_harbour", "trip")
		if err != nil {
			return nil, err
		}
		start = time.Now()
		res, err := core.HBCuts(ev, ctx, core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		adviseTime := time.Since(start)
		scal.Rows = append(scal.Rows, []string{
			itoa(rows), ms(medianTime), ms(countTime), ms(adviseTime), itoa(len(res.Segmentations)),
		})
	}
	scal.Finding = "advise time scales near-linearly with rows; the median (sort-based) " +
		"costs more than the count (single scan) at every size, matching the bottleneck claim."

	cvr := &Table{
		ID:    "E7b",
		Title: "Column-at-a-time vs row-at-a-time execution",
		Expectation: "\"Column-based systems such as MonetDB are well suited for " +
			"Charles' workloads\": the two back-end operations touch one attribute, " +
			"so a row store pays for materializing whole tuples.",
		Header: []string{"operation", "column store (ms)", "row store (ms)", "row/column"},
	}
	tab := dataset.VOC(opt.rows(200000), opt.Seed)
	rt := engine.NewRowTable(tab)
	ton := tab.MustColumn("tonnage").(*engine.IntColumn)
	all := tab.All()
	r := engine.IntRange{Lo: 200, Hi: 600, LoIncl: true, HiIncl: true}

	start := time.Now()
	colCount := len(engine.FilterIntRange(ton, all, r))
	colCountTime := time.Since(start)
	tonIdx := rt.ColumnIndex("tonnage")
	start = time.Now()
	rowCount := rt.CountIntRange(tonIdx, r)
	rowCountTime := time.Since(start)
	if colCount != rowCount {
		return nil, fmt.Errorf("executors disagree: %d vs %d", colCount, rowCount)
	}
	start = time.Now()
	colMed, _ := engine.IntMedian(ton, all)
	colMedTime := time.Since(start)
	start = time.Now()
	rowMed, _ := rt.MedianInt(tonIdx)
	rowMedTime := time.Since(start)
	if colMed != rowMed {
		return nil, fmt.Errorf("medians disagree: %d vs %d", colMed, rowMed)
	}
	ratio := func(row, col time.Duration) string {
		if col == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", float64(row)/float64(col))
	}
	cvr.Rows = append(cvr.Rows,
		[]string{"count over predicate", ms(colCountTime), ms(rowCountTime), ratio(rowCountTime, colCountTime)},
		[]string{"median", ms(colMedTime), ms(rowMedTime), ratio(rowMedTime, colMedTime)},
	)
	cvr.Finding = "the column layout wins both operations; the gap is larger for counts, " +
		"where the row store streams 9 attributes to use 1."
	return []*Table{scal, cvr}, nil
}

// runE8 measures the sampling strategy: cut-point estimation on a
// systematic sample versus exact medians.
func runE8(opt Options) ([]*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "Sampled medians (Section 5.2)",
		Expectation: "\"The calculation of medians is a major bottleneck. However, not " +
			"all tuples are necessary to give good results\": sampling should cut " +
			"advise time with negligible quality loss.",
		Header: []string{"sample size", "advise (ms)", "speedup", "top-1 entropy", "entropy drift", "answers"},
	}
	tab := dataset.VOC(opt.rows(1000000), opt.Seed)
	ctx, err := sdl.ContextOn(tab, "type_of_boat", "tonnage", "built", "trip")
	if err != nil {
		return nil, err
	}
	var exactTime time.Duration
	var exactEntropy float64
	for _, sample := range []int{0, 16384, 4096, 1024, 256} {
		cfg := core.DefaultConfig()
		cfg.Cut.SampleSize = sample
		ev := seg.NewEvaluator(tab)
		start := time.Now()
		res, err := core.HBCuts(ev, ctx, cfg)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		top := res.Segmentations[0].Metrics.Entropy
		label, speedup, drift := "exact", "1.0x", "0.000"
		if sample == 0 {
			exactTime, exactEntropy = elapsed, top
		} else {
			label = itoa(sample)
			speedup = fmt.Sprintf("%.1fx", float64(exactTime)/float64(elapsed))
			drift = f3(top - exactEntropy)
		}
		t.Rows = append(t.Rows, []string{
			label, ms(elapsed), speedup, f3(top), drift, itoa(len(res.Segmentations)),
		})
	}
	t.Finding = "sampled cut points keep the top answer's entropy within a few millibits " +
		"of exact while reducing advise time; counts stay exact so partitions remain valid."
	return []*Table{t}, nil
}
