package harness

import (
	"fmt"
	"time"

	"charles/internal/core"
	"charles/internal/dataset"
	"charles/internal/sdl"
	"charles/internal/seg"
)

// runE1 reproduces the Figure 1 session: the Figure 1 context
// columns over the VOC voyages table, default configuration, ranked
// answers with all metrics.
func runE1(opt Options) ([]*Table, error) {
	tab := dataset.VOC(opt.rows(50000), opt.Seed)
	ev := seg.NewEvaluator(tab)
	ctx, err := sdl.ContextOn(tab,
		"type_of_boat", "tonnage", "built", "departure_date",
		"departure_harbour", "trip")
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := core.HBCuts(ev, ctx, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	t := &Table{
		ID:    "E1",
		Title: "Figure 1 end-to-end session on VOC voyages",
		Expectation: "Charles returns a ranked list of segmentations over the " +
			"user's columns; dependent attributes such as departure_harbour " +
			"and tonnage appear together in composed answers, in interaction time.",
		Header: []string{"rank", "cut attributes", "entropy (bits)", "depth", "breadth", "simplicity", "balance"},
	}
	multi := 0
	for i, sc := range res.Segmentations {
		if len(sc.Seg.CutAttrs) > 1 {
			multi++
		}
		t.Rows = append(t.Rows, []string{
			itoa(i + 1), joinAttrs(sc.Seg.CutAttrs), f3(sc.Metrics.Entropy),
			itoa(sc.Metrics.Depth), itoa(sc.Metrics.Breadth),
			itoa(sc.Metrics.Simplicity), f3(sc.Metrics.Balance),
		})
	}
	t.Finding = fmt.Sprintf("%d answers (%d multi-attribute) in %s ms on %d rows; stop: %s.",
		len(res.Segmentations), multi, ms(elapsed), tab.NumRows(), res.StopReason)
	return []*Table{t}, nil
}

// runE2 reproduces the Figure 2 worked examples on the literal
// 8-row boats table.
func runE2(opt Options) ([]*Table, error) {
	tab := dataset.Figure2Boats()
	ev := seg.NewEvaluator(tab)
	ctx, err := sdl.ContextOn(tab, "type", "tonnage", "date")
	if err != nil {
		return nil, err
	}
	cutOpt := seg.DefaultCutOptions()
	a, ok, err := seg.InitialCut(ev, ctx, "type", cutOpt)
	if err != nil || !ok {
		return nil, fmt.Errorf("initial cut on type failed: %v", err)
	}
	b, ok, err := seg.InitialCut(ev, ctx, "date", cutOpt)
	if err != nil || !ok {
		return nil, fmt.Errorf("initial cut on date failed: %v", err)
	}
	cutTon, err := seg.Cut(ev, a, "tonnage", cutOpt)
	if err != nil {
		return nil, err
	}
	composed, err := seg.Compose(ev, a, b, cutOpt)
	if err != nil {
		return nil, err
	}
	prod, err := seg.Product(ev, a, b)
	if err != nil {
		return nil, err
	}
	ind, err := seg.Indep(ev, a, b)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E2",
		Title: "Figure 2 primitives: CUT, COMPOSE, PRODUCT",
		Expectation: "CUT_tonnage(A) splits fluits at 2000 and jachts at 3000; " +
			"COMPOSE(A,B) uses per-type date medians (1744 fluit, 1760 jacht); " +
			"A×B uses global boundaries, revealing the type↔date dependence " +
			"(INDEP < 1).",
		Header: []string{"operation", "segment", "rows", "SDL"},
	}
	addSeg := func(name string, s *seg.Segmentation) {
		for i, q := range s.Queries {
			t.Rows = append(t.Rows, []string{name, itoa(i), itoa(s.Counts[i]), "`" + q.String() + "`"})
		}
	}
	addSeg("A = CUT_type(ctx)", a)
	addSeg("CUT_tonnage(A)", cutTon)
	addSeg("B = CUT_date(ctx)", b)
	addSeg("COMPOSE(A,B)", composed)
	addSeg("A × B", prod)
	t.Finding = fmt.Sprintf("all pieces match the figure; INDEP(A,B) = %s < 1 detects the type↔date dependence.", f4(ind))
	return []*Table{t}, nil
}

// runE3 reproduces the Figure 3 execution trace on the planted
// 5-attribute table.
func runE3(opt Options) ([]*Table, error) {
	tab := dataset.Figure3(opt.rows(20000), opt.Seed)
	ev := seg.NewEvaluator(tab)
	ctx := sdl.ContextAll(tab)
	res, err := core.HBCuts(ev, ctx, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E3",
		Title: "Figure 3 HB-cuts execution trace",
		Expectation: "5 attributes with dependencies att2↔att3 (strong), att4↔att5 " +
			"(medium), att1↔(att2,att3) (weak): the procedure composes exactly those " +
			"three pairs in that order, returns 8 segmentations, and performs no " +
			"top-level split between the independent groups.",
		Header: []string{"iteration", "composed pair", "INDEP", "resulting depth"},
	}
	for i, step := range res.Trace {
		t.Rows = append(t.Rows, []string{
			itoa(i + 1),
			joinAttrs(step.Left) + " × " + joinAttrs(step.Right),
			f4(step.Indep),
			itoa(step.Depth),
		})
	}
	t.Finding = fmt.Sprintf("%d segmentations returned after %d compositions; stop: %s.",
		len(res.Segmentations), res.Iterations, res.StopReason)
	return []*Table{t}, nil
}

// runE4 sweeps the two stopping criteria of Figure 4 and also runs
// the chi-squared variant the paper suggests. The Figure 3 dataset
// is used because its dependence ladder (0.62, 0.77, 0.88, ≈1.0)
// makes each threshold stop at a different point.
func runE4(opt Options) ([]*Table, error) {
	tab := dataset.Figure3(opt.rows(20000), opt.Seed)
	ev := seg.NewEvaluator(tab)
	ctx := sdl.ContextAll(tab)
	t := &Table{
		ID:    "E4",
		Title: "Figure 4 stopping-criteria sweep",
		Expectation: "\"A threshold of 0.99 gave satisfying results with most data " +
			"sets\"; the depth bound keeps answers legible (a dozen slices). Lower " +
			"maxIndep stops earlier (fewer compositions); larger maxDepth admits " +
			"deeper answers.",
		Header: []string{"maxIndep", "maxDepth", "answers", "compositions", "max answer depth", "stop reason", "time (ms)"},
	}
	for _, maxIndep := range []float64{0.70, 0.85, 0.99, 1.000001} {
		for _, maxDepth := range []int{4, 8, 12, 16} {
			cfg := core.DefaultConfig()
			cfg.MaxIndep = maxIndep
			cfg.MaxDepth = maxDepth
			start := time.Now()
			res, err := core.HBCuts(ev, ctx, cfg)
			if err != nil {
				return nil, err
			}
			maxD := 0
			for _, sc := range res.Segmentations {
				if sc.Metrics.Depth > maxD {
					maxD = sc.Metrics.Depth
				}
			}
			label := f3(maxIndep)
			if maxIndep > 1 {
				label = "off"
			}
			t.Rows = append(t.Rows, []string{
				label, itoa(maxDepth), itoa(len(res.Segmentations)),
				itoa(res.Iterations), itoa(maxD), res.StopReason.String(), ms(time.Since(start)),
			})
		}
	}
	// Chi-squared variant on the same context.
	cfg := core.DefaultConfig()
	cfg.UseChiSquare = true
	res, err := core.HBCuts(ev, ctx, cfg)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"chi² α=0.05", itoa(cfg.MaxDepth), itoa(len(res.Segmentations)),
		itoa(res.Iterations), "-", res.StopReason.String(), "-",
	})
	t.Finding = "each threshold stops one rung later on the dependence ladder " +
		"(0.70 composes only the strong pair, 0.99 all three); the depth bound takes " +
		"over once compositions would exceed it; the chi-squared rule behaves like a " +
		"data-driven threshold."
	return []*Table{t}, nil
}
