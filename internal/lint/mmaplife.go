package lint

import (
	"go/ast"
	"go/types"
)

// MmapLife guards the zero-copy lifetime contract of the out-of-core
// storage (PR 6): column vectors handed out by a colfile-backed
// ColumnBackend alias a read-only memory mapping and become invalid
// the instant the backend is closed — touching one afterwards is a
// SIGSEGV, not an error. Local use is fine; what this analyzer
// forbids is *retention*: storing a backend-provided column into a
// struct field, package-level variable or composite literal, where
// nothing ties its lifetime to the mapping. The one sanctioned
// retainer is engine.Table, whose Close closes the backend — that
// site carries the reviewed `//lint:mmaplife` justification.
var MmapLife = &Analyzer{
	Name: "mmaplife",
	Doc: "columns handed out by a ColumnBackend alias an mmap and must " +
		"not be retained in long-lived structs past Close",
	Applies: func(pkgPath string) bool {
		return pkgPath != "charles/internal/colfile"
	},
	Run: runMmapLife,
}

// viewSources are the methods whose results alias backend storage.
// The interface method covers every implementation, so a new
// mmap-backed backend is guarded the day it is written.
var viewSources = map[string]bool{
	"(*charles/internal/colfile.File).Column":        true,
	"(charles/internal/engine.ColumnBackend).Column": true,
}

func runMmapLife(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkMmapFunc(pass, fd)
			}
		}
	}
	return nil
}

func checkMmapFunc(pass *Pass, fd *ast.FuncDecl) {
	isViewCall := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		return ok && viewSources[fn.FullName()]
	}

	tracked := map[types.Object]bool{}
	trackAliases(pass, fd.Body, tracked, isViewCall)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if !isViewCall(rhs) && len(aliasObjects(pass, rhs, tracked)) == 0 {
					continue
				}
				for _, lhs := range n.Lhs {
					if desc, bad := longLivedLHS(pass, lhs); bad {
						pass.Reportf(n.Pos(),
							"backend column view retained in %s: the view aliases an mmap and dies with the backend's Close; justify with //lint:mmaplife if the struct's lifetime is tied to the backend", desc)
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isViewCall(v) {
					pass.Reportf(v.Pos(),
						"backend column view stored into a composite literal: the view aliases an mmap and dies with the backend's Close")
					continue
				}
				for _, obj := range aliasObjects(pass, v, tracked) {
					pass.Reportf(v.Pos(),
						"backend column view %q stored into a composite literal: the view aliases an mmap and dies with the backend's Close", obj.Name())
				}
			}
		}
		return true
	})
}
