package lint_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"charles/internal/lint"
)

// The fixture harness mirrors x/tools' analysistest: every fixture
// file under testdata/src/<analyzer> marks each expected finding
// with a trailing `// want "regexp"` comment, and the test fails on
// missing findings, unexpected findings, and mismatched messages
// alike. Suppression sites carry a //lint: comment and no want —
// proving the justification escape actually silences the analyzer.

// sharedLoader type-checks all fixtures through one source importer
// so the standard library and the module's own packages are checked
// once per test binary, not once per fixture.
var sharedLoader = sync.OnceValue(lint.NewLoader)

type want struct {
	rx      *regexp.Regexp
	line    int
	file    string
	matched bool
}

// parseWants scans a fixture directory for `// want "rx"` comments.
func parseWants(t *testing.T, dir string) []*want {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	rxWant := regexp.MustCompile(`// want ("(?:[^"\\]|\\.)*")`)
	var wants []*want
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := rxWant.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			quoted, err := strconv.Unquote(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want %s: %v", e.Name(), line, m[1], err)
			}
			rx, err := regexp.Compile(quoted)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), line, quoted, err)
			}
			wants = append(wants, &want{rx: rx, line: line, file: e.Name()})
		}
		f.Close()
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
	}
	return wants
}

// runFixture loads testdata/src/<name>, runs the analyzer, and
// checks its diagnostics against the fixture's wants exactly.
func runFixture(t *testing.T, a *lint.Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := sharedLoader().Load(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags, err := lint.RunAnalyzer(a, pkg)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants := parseWants(t, dir)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments: it cannot prove the analyzer fires", name)
	}
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == base && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s:%d: %s", base, d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.rx)
		}
	}
}

func TestCtxFlowFixture(t *testing.T)        { runFixture(t, lint.CtxFlow, "ctxflow") }
func TestNoPanicFixture(t *testing.T)        { runFixture(t, lint.NoPanic, "nopanic") }
func TestPooledEscapeFixture(t *testing.T)   { runFixture(t, lint.PooledEscape, "pooledescape") }
func TestMapDeterminismFixture(t *testing.T) { runFixture(t, lint.MapDeterminism, "mapdeterminism") }
func TestMmapLifeFixture(t *testing.T)       { runFixture(t, lint.MmapLife, "mmaplife") }
func TestEpochKeyFixture(t *testing.T)       { runFixture(t, lint.EpochKey, "epochkey") }
func TestObsNamesFixture(t *testing.T)       { runFixture(t, lint.ObsNames, "obsnames") }

// TestFixtureForEveryAnalyzer pins the suite non-vacuous as it
// grows: an analyzer without a fixture directory cannot prove it
// ever fires.
func TestFixtureForEveryAnalyzer(t *testing.T) {
	for _, a := range lint.All() {
		if _, err := os.Stat(filepath.Join("testdata", "src", a.Name)); err != nil {
			t.Errorf("analyzer %s has no fixture under testdata/src: %v", a.Name, err)
		}
	}
}

// TestAnalyzerScopes pins each analyzer's package applicability: the
// invariants guard specific layers, and a scoping regression would
// silently stop checking them.
func TestAnalyzerScopes(t *testing.T) {
	cases := []struct {
		analyzer *lint.Analyzer
		pkg      string
		applies  bool
	}{
		{lint.CtxFlow, "charles/internal/core", true},
		{lint.CtxFlow, "charles/internal/jobs", true},
		{lint.CtxFlow, "charles/cmd/charles-server", false}, // binaries own their root ctx
		{lint.NoPanic, "charles/internal/colfile", true},
		{lint.NoPanic, "charles/internal/engine", false},
		{lint.PooledEscape, "charles/internal/engine", true},
		{lint.PooledEscape, "charles/internal/pool", false}, // the wrapper defines the contract
		{lint.MapDeterminism, "charles", true},
		{lint.MapDeterminism, "charles/internal/seg", true},
		{lint.MapDeterminism, "charles/internal/harness", false},
		{lint.MmapLife, "charles/internal/engine", true},
		{lint.MmapLife, "charles/cmd/charles-server", true},
		{lint.MmapLife, "charles/internal/colfile", false}, // it hands the views out
		{lint.EpochKey, "charles/internal/seg", true},
		{lint.EpochKey, "charles", true},
		{lint.EpochKey, "charles/internal/engine", false}, // it defines the stamps and their nil sentinels
		{lint.ObsNames, "charles/cmd/charles-server", true},
		{lint.ObsNames, "charles/internal/core", true},
		{lint.ObsNames, "charles/internal/obs", false}, // it defines the contract its tests deliberately break
	}
	for _, c := range cases {
		if got := c.analyzer.Applies(c.pkg); got != c.applies {
			t.Errorf("%s.Applies(%q) = %v, want %v", c.analyzer.Name, c.pkg, got, c.applies)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := lint.Diagnostic{Analyzer: "ctxflow", Message: "dropped ctx"}
	d.Pos.Filename = "a.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	if got, wanted := d.String(), "a.go:3:7: ctxflow: dropped ctx"; got != wanted {
		t.Errorf("Diagnostic.String() = %q, want %q", got, wanted)
	}
}

func TestModulePackagesFindsTheModule(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.ModulePackages(root)
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]bool{}
	for _, ip := range pkgs {
		byPath[ip] = true
	}
	for _, wanted := range []string{"charles", "charles/internal/lint", "charles/internal/colfile", "charles/cmd/charles-lint"} {
		if !byPath[wanted] {
			t.Errorf("ModulePackages missed %s (got %d packages)", wanted, len(pkgs))
		}
	}
	if byPath["charles/internal/lint/testdata/src/ctxflow"] {
		t.Error("ModulePackages must skip testdata")
	}
}

func ExampleDiagnostic() {
	d := lint.Diagnostic{Analyzer: "mapdeterminism", Message: "iteration order of map m can leak into ranked output"}
	d.Pos.Filename = "internal/seg/cut.go"
	d.Pos.Line = 280
	d.Pos.Column = 2
	fmt.Println(d)
	// Output: internal/seg/cut.go:280:2: mapdeterminism: iteration order of map m can leak into ranked output
}
