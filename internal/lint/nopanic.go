package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// NoPanic guards the untrusted-input contract of the .chc reader
// (docs/FORMAT.md §11, pinned by the corruption suite): a corrupt,
// truncated or hostile file must surface as a descriptive error,
// never as a panic. The corruption tests only exercise mutations
// someone thought of; this analyzer closes the gap by proving that
// no explicit panic, log.Fatal* or os.Exit is statically reachable
// from the package's exported API through same-package calls.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc: "no panic/log.Fatal/os.Exit reachable from the exported API of the " +
		".chc read/verify path: untrusted input must fail with errors",
	Applies: func(pkgPath string) bool {
		return pathIn(pkgPath, "charles/internal/colfile")
	},
	Run: runNoPanic,
}

type panicSink struct {
	pos  token.Pos
	desc string
}

type funcFacts struct {
	callees []*types.Func
	sinks   []panicSink
}

func runNoPanic(pass *Pass) error {
	facts := map[*types.Func]*funcFacts{}
	var roots []*types.Func
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			facts[fn] = collectFuncFacts(pass, fd)
			if fd.Name.IsExported() {
				roots = append(roots, fn)
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].FullName() < roots[j].FullName() })

	reported := map[token.Pos]bool{}
	for _, root := range roots {
		seen := map[*types.Func]bool{}
		var visit func(fn *types.Func)
		visit = func(fn *types.Func) {
			if seen[fn] {
				return
			}
			seen[fn] = true
			ff := facts[fn]
			if ff == nil {
				return
			}
			for _, s := range ff.sinks {
				if !reported[s.pos] {
					reported[s.pos] = true
					pass.Reportf(s.pos,
						"%s is reachable from exported %s: the read/verify path handles untrusted input and must return an error",
						s.desc, root.Name())
				}
			}
			for _, callee := range ff.callees {
				visit(callee)
			}
		}
		visit(root)
	}
	return nil
}

// collectFuncFacts records fd's same-package callees and its panic
// sites. Function literals inside fd count as part of fd: a panic in
// a closure the function runs (or registers as a callback) is just
// as reachable.
func collectFuncFacts(pass *Pass, fd *ast.FuncDecl) *funcFacts {
	ff := &funcFacts{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			switch obj := pass.Info.Uses[fun].(type) {
			case *types.Builtin:
				if obj.Name() == "panic" {
					ff.sinks = append(ff.sinks, panicSink{call.Pos(), "panic"})
				}
			case *types.Func:
				if obj.Pkg() == pass.Pkg {
					ff.callees = append(ff.callees, obj)
				}
			}
		case *ast.SelectorExpr:
			fn, ok := pass.Info.Uses[fun.Sel].(*types.Func)
			if !ok {
				return true
			}
			if fn.Pkg() == pass.Pkg {
				ff.callees = append(ff.callees, fn)
				return true
			}
			if desc, bad := fatalCall(fn); bad {
				ff.sinks = append(ff.sinks, panicSink{call.Pos(), desc})
			}
		}
		return true
	})
	return ff
}

// fatalCall reports whether fn is a process-terminating call from
// another package: log.Fatal*, log.Panic* or os.Exit.
func fatalCall(fn *types.Func) (string, bool) {
	if fn.Pkg() == nil {
		return "", false
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "log":
		if len(name) >= 5 && (name[:5] == "Fatal" || name[:5] == "Panic") {
			return "log." + name, true
		}
	case "os":
		if name == "Exit" {
			return "os.Exit", true
		}
	}
	return "", false
}
