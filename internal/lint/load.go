package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Dir   string
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages from source. One Loader is
// shared across a whole lint run so the source importer's cache of
// dependency packages (including the standard library) is built
// once; the importer needs no network or pre-compiled export data,
// which is what lets the suite run in the offline build image.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader with a fresh file set and source
// importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Load parses dir's non-test Go files (honouring build constraints
// for the host platform, so e.g. mmap_unix.go and mmap_fallback.go
// never collide) and type-checks them as importPath.
func (l *Loader) Load(dir, importPath string) (*Package, error) {
	names, err := goSourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{Dir: dir, Path: importPath, Fset: l.fset, Files: files, Types: pkg, Info: info}, nil
}

// goSourceFiles lists dir's non-test Go files that match the host
// build context, sorted for deterministic type-checking order.
func goSourceFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := ctx.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if match {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// ModulePackages enumerates the module under root: every directory
// holding buildable non-test Go files, mapped to its import path.
// testdata and hidden directories are skipped, like the go tool
// does. The returned map is dir → import path.
func ModulePackages(root string) (map[string]string, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	pkgs := make(map[string]string)
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(p)
		if p != root && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		names, err := goSourceFiles(p)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		pkgs[p] = ip
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pkgs, nil
}

// modulePath reads the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}
