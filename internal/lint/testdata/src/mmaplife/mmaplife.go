// Package mmaplife is the analysistest fixture for the mmaplife
// analyzer: retaining a backend-provided column in a struct or
// composite literal is flagged; scoped local use and the justified
// sanctioned-retainer idiom are not.
package mmaplife

import "charles/internal/engine"

type holder struct {
	col engine.Column
}

func retain(b engine.ColumnBackend) *holder {
	h := &holder{}
	h.col = b.Column(0) // want "retained in struct field"
	return h
}

func retainAlias(b engine.ColumnBackend) *holder {
	c := b.Column(0)
	h := &holder{}
	h.col = c // want "retained in struct field"
	return h
}

func retainLit(b engine.ColumnBackend) holder {
	return holder{col: b.Column(0)} // want "stored into a composite literal"
}

func scopedUse(b engine.ColumnBackend) int {
	c := b.Column(0)
	return c.Len()
}

func justified(b engine.ColumnBackend) *holder {
	h := &holder{}
	//lint:mmaplife fixture: holder's Close closes the backend, lifetimes are tied
	h.col = b.Column(0)
	return h
}
