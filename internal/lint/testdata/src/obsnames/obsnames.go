// Package obsnames is the analysistest fixture for the obsnames
// analyzer: non-literal, malformed and duplicate metric names are
// flagged, as are spans that are dropped or never ended; literal
// well-formed names, const names, chained End, deferred End and the
// justified suppression escape are not.
package obsnames

import (
	"time"

	"charles/internal/fault"
	"charles/internal/obs"
)

const goodConst = "charles_const_named_total"

func register(reg *obs.Registry, dynamic string) {
	reg.NewCounter("charles_good_total", "fine")
	reg.NewGauge(goodConst, "named constants are still greppable")
	reg.NewCounter(dynamic, "who knows")                            // want "must be a string literal"
	reg.NewGauge("hits_total", "no prefix")                         // want "charles_ prefix"
	reg.NewHistogram("charles_UpperCase", "bad case", []float64{1}) // want "snake_case"
	reg.NewCounter("charles_good_total", "again")                   // want "registered more than once"
	reg.NewGaugeFunc("charles_depth", "fine", func() int64 { return 0 })
	reg.NewCounterFunc("charles__double", "empty segment", func() int64 { return 0 }) // want "snake_case"
}

func justified(reg *obs.Registry, dynamic string) {
	reg.NewCounter(dynamic, "suppressed site") // want "must be a string literal"
	//lint:obsnames the name is assembled from a reviewed table at boot
	reg.NewCounter(dynamic, "suppressed site")
}

func spans(tr *obs.Trace) {
	sp := tr.Start("good")
	defer sp.End()

	tr.Start("dropped") // want "span result discarded"

	leaked := tr.Start("leaked") // want "never End"
	_ = leaked

	child := sp.Child("child_good")
	child.End()

	sp.Child("chained").End()

	_ = tr.Start("blank") // want "span result discarded"

	tr.Observe("pre_measured", time.Millisecond) // Observe is not Start: nothing to pair
}

const goodSite = "layer.namedSite"

func failpoints(dynamic string) error {
	if err := fault.Inject("colfile.readPage"); err != nil {
		return err
	}
	if err := fault.Inject(goodSite); err != nil { // named constants stay greppable
		return err
	}
	_ = fault.Inject(dynamic)            // want "must be a string literal"
	_ = fault.Inject("nodots")           // want "dotted layer.site path"
	_ = fault.Inject("Upper.site")       // want "dotted layer.site path"
	_ = fault.Enable("x", "error(boom)") // want "dotted layer.site path"
	_ = fault.Triggered("jobs.run")
	fault.Configure(dynamic) // Configure takes a whole spec list, not a site name
	return nil
}
