// Package epochkey is the analysistest fixture for the epochkey
// analyzer: raw selection-valued maps and entry literals that omit
// their epoch stamp are flagged; stamped entries, zero values,
// unkeyed literals and justified sites are not.
package epochkey

import "charles/internal/engine"

// entry is the sanctioned cache-entry shape: the payload plus the
// stamp it was computed under.
type entry struct {
	cs    *engine.ChunkedSelection
	stamp *engine.EpochStamp
}

type caches struct {
	good map[string]entry
	sels map[string]*engine.ChunkedSelection // want "map holds raw \\*engine.ChunkedSelection values"
	bms  map[string]*engine.Bitmap           // want "map holds raw \\*engine.Bitmap values"
}

func makeRaw() map[string]*engine.Bitmap { // want "map holds raw \\*engine.Bitmap values"
	m := make(map[string]*engine.Bitmap) // want "map holds raw \\*engine.Bitmap values"
	return m
}

func storeStamped(cs *engine.ChunkedSelection, st *engine.EpochStamp) entry {
	return entry{cs: cs, stamp: st}
}

func storeUnstamped(cs *engine.ChunkedSelection) entry {
	return entry{cs: cs} // want "omits its epoch stamp field \"stamp\""
}

func storeUnkeyed(cs *engine.ChunkedSelection, st *engine.EpochStamp) entry {
	return entry{cs, st} // unkeyed literals list every field
}

func zeroValue() entry {
	return entry{} // a zero value, not a cache insert
}

func justified(cs *engine.ChunkedSelection) entry {
	//lint:epochkey fixture: sentinel entry, the caller stamps it before store
	return entry{cs: cs}
}
