// Package nopanic is the analysistest fixture for the nopanic
// analyzer: panics reachable from exported functions are flagged,
// orphaned panics are not, and Must-style helpers show the
// justification escape.
package nopanic

import (
	"fmt"
	"log"
	"os"
)

func Open(path string) error {
	if path == "" {
		return fmt.Errorf("empty path")
	}
	return parse(path)
}

func parse(path string) error {
	if len(path) > 99 {
		panic("path too long") // want "panic is reachable from exported Open"
	}
	return nil
}

type Reader struct{ n int }

func (r *Reader) Verify() {
	r.check()
}

func (r *Reader) check() {
	if r.n < 0 {
		log.Fatalf("bad n %d", r.n) // want "log.Fatalf is reachable from exported Verify"
	}
}

func Quit() {
	os.Exit(2) // want "os.Exit is reachable from exported Quit"
}

// orphan is unreachable from any exported function, so its panic is
// not on an untrusted-input path.
func orphan() {
	panic("orphan")
}

func MustParse(path string) {
	if path == "" {
		//lint:nopanic fixture: Must* helpers are documented to panic on programmer error
		panic("empty path")
	}
}
