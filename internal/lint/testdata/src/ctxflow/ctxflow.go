// Package ctxflow is the analysistest fixture for the ctxflow
// analyzer: flagged sites carry `// want`, clean idioms carry
// nothing, and one site demonstrates the justification escape.
package ctxflow

import "context"

func detach() context.Context {
	return context.Background() // want "call to context.Background"
}

func todo() context.Context {
	ctx := context.TODO() // want "call to context.TODO"
	return ctx
}

func dropped(ctx context.Context, n int) int { // want "accepted but never used"
	return n * 2
}

func threaded(ctx context.Context) error {
	return work(ctx)
}

func work(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

func blankIsFine(_ context.Context, n int) int {
	return n + 1
}

func justified() context.Context {
	//lint:ctxflow fixture: deliberate detach, lifecycle owned by this component
	return context.Background()
}
