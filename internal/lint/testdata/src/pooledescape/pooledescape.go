// Package pooledescape is the analysistest fixture for the
// pooledescape analyzer: leaks, return escapes, struct stores and
// composite-literal escapes are flagged; the defer-Put idiom and the
// justified ownership transfer are not.
package pooledescape

import (
	"sync"

	"charles/internal/pool"
)

var ints pool.Slice[int64]

var raw sync.Pool

type keeper struct{ buf *[]int64 }

func leak(n int) int64 {
	p := ints.Get(n) // want "never Put back"
	return (*p)[0]
}

func rawLeak() {
	v := raw.Get() // want "never Put back"
	_ = v
}

func transfer(n int) *[]int64 {
	p := ints.Get(n)
	return p // want "escapes via return value"
}

func store(k *keeper, n int) {
	p := ints.Get(n)
	defer ints.Put(p)
	k.buf = p // want "stored into struct field"
}

func lit(n int) {
	p := ints.Get(n)
	defer ints.Put(p)
	_ = keeper{buf: p} // want "escapes into a composite literal"
}

func clean(n int) int64 {
	p := ints.Get(n)
	defer ints.Put(p)
	v := *p
	return v[0]
}

func justified(n int) *[]int64 {
	p := ints.Get(n)
	//lint:pooledescape fixture: documented ownership transfer, caller Puts
	return p
}
