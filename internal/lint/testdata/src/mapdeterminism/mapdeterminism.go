// Package mapdeterminism is the analysistest fixture for the
// mapdeterminism analyzer: order-leaking map walks are flagged;
// sorted collection, commutative merges, map-to-map copies and
// justified sites are not.
package mapdeterminism

import "sort"

func unsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "iteration order of map"
		keys = append(keys, k)
	}
	return keys
}

func sorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func commutative(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func histogram(m map[string]int, limit int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		if v < limit {
			out[k] += v
		}
	}
	return out
}

func firstMatch(m map[string]int) string {
	best := ""
	for k, v := range m { // want "iteration order of map"
		if v > 3 {
			best = k
		}
	}
	return best
}

func justified(m map[string]int) []string {
	var keys []string
	//lint:deterministic fixture: the consumer re-sorts before ranking
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
