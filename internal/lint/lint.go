// Package lint is the repo's custom static-analysis suite: a small
// stdlib-only framework (go/parser + go/types, no external modules —
// the build environment is offline) plus the analyzers that encode
// this codebase's load-bearing invariants. Each analyzer machine-
// checks a guarantee that previously lived only in prose and pinned
// tests:
//
//	ctxflow         — cancellation is threaded end to end (PR 4)
//	nopanic         — untrusted .chc input fails with errors (PR 6)
//	pooledescape    — pooled scratch never leaks or escapes (PR 5)
//	mapdeterminism  — ranked output is byte-identical (PR 2)
//	mmaplife        — mmap views are not retained past Close (PR 6)
//	epochkey        — cache entries carry their epoch stamp (PR 8)
//	obsnames        — metric names literal and unique; spans End (PR 9)
//
// The framework deliberately mirrors the golang.org/x/tools
// go/analysis shape (Analyzer, Pass, Reportf, testdata fixtures with
// `// want` expectations) so the suite can be ported onto the real
// multichecker wholesale if the dependency ever becomes available.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. It is the stdlib mirror of
// x/tools' analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// comments.
	Name string
	// Doc is the one-paragraph description shown by charles-lint.
	Doc string
	// Suppress lists the comment tokens that silence a finding at a
	// site: a `//lint:<token> <why>` comment on the flagged line or
	// the line above. The analyzer's own name is always accepted;
	// entries here add aliases (mapdeterminism accepts the
	// historically-promised `//lint:deterministic`).
	Suppress []string
	// Applies reports whether the analyzer runs on a package, by
	// import path. Nil means every package.
	Applies func(pkgPath string) bool
	// Run performs the analysis, reporting findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos unless a suppression comment
// covers the site. Suppressions are deliberate, reviewed escapes:
// `//lint:<name> <justification>` on the same line or the line
// immediately above.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.suppressed(pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressed reports whether a `//lint:<token>` comment for this
// analyzer sits on pos's line or the line above it.
func (p *Pass) suppressed(pos token.Pos) bool {
	tokens := append([]string{p.Analyzer.Name}, p.Analyzer.Suppress...)
	target := p.Fset.Position(pos)
	for _, f := range p.Files {
		if p.Fset.Position(f.Pos()).Filename != target.Filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				line := p.Fset.Position(c.Pos()).Line
				if line != target.Line && line != target.Line-1 {
					continue
				}
				if tok, ok := suppressToken(c.Text); ok {
					for _, want := range tokens {
						if tok == want {
							return true
						}
					}
				}
			}
		}
	}
	return false
}

// suppressToken extracts the token of a `//lint:<token> ...` comment.
func suppressToken(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, "//lint:")
	if !ok {
		return "", false
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest, rest != ""
}

// RunAnalyzer executes one analyzer over a loaded package and
// returns its findings sorted by position.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		diags:    &diags,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// All returns the full analyzer suite in reporting order. cmd/
// charles-lint registers exactly this list; the registry test pins
// it against the set of invariants docs/ARCHITECTURE.md documents.
func All() []*Analyzer {
	return []*Analyzer{CtxFlow, NoPanic, PooledEscape, MapDeterminism, MmapLife, EpochKey, ObsNames}
}

// pathIn reports whether pkgPath is one of (or a child of) the given
// module-relative package paths.
func pathIn(pkgPath string, paths ...string) bool {
	for _, p := range paths {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}
