package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapDeterminism guards the byte-identical-output guarantee (PR 2):
// advise output is pinned identical at every worker count, and map
// iteration order is the classic way nondeterminism sneaks back in.
// In the packages that feed ranked output, a `range` over a map is
// flagged unless one of three things holds: the loop body is a pure
// commutative merge (counters, `+=` accumulators, map-to-map
// copies), the enclosing function sorts its results after the loop,
// or the site carries a reviewed `//lint:deterministic`
// justification.
var MapDeterminism = &Analyzer{
	Name:     "mapdeterminism",
	Suppress: []string{"deterministic"},
	Doc: "map iteration in ranked-output packages must be sorted, " +
		"commutative, or justified with //lint:deterministic",
	Applies: func(pkgPath string) bool {
		return pathIn(pkgPath,
			"charles",
			"charles/internal/core",
			"charles/internal/seg",
			"charles/internal/stats",
			"charles/internal/engine",
			"charles/internal/ui",
		) && !pathIn(pkgPath, "charles/internal/lint", "charles/cmd", "charles/examples",
			"charles/internal/harness", "charles/internal/dataset", "charles/internal/baseline")
	},
	Run: runMapDeterminism,
}

func runMapDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, found := pass.Info.Types[rng.X]
				if !found {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if commutativeBody(pass, rng) || sortsAfter(pass, fd, rng.End()) {
					return true
				}
				pass.Reportf(rng.Pos(),
					"iteration order of map %s can leak into ranked output: sort the loop's results or justify with //lint:deterministic",
					types.ExprString(rng.X))
				return true
			})
		}
	}
	return nil
}

// commutativeBody reports whether every statement in the range body
// is order-independent: counters, commutative compound assignments
// (`+=`, `-=`, `*=`, `|=`, `&=`, `^=`), map-entry writes whose value
// depends only on the iteration variables, deletes from another map,
// and ifs over the iteration variables wrapping more of the same.
func commutativeBody(pass *Pass, rng *ast.RangeStmt) bool {
	rangeVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				rangeVars[obj] = true
			}
			if obj := pass.Info.Uses[id]; obj != nil {
				rangeVars[obj] = true
			}
		}
	}
	// Variables written inside the body are loop-carried state: an
	// expression reading one is order-dependent. Everything else a
	// body expression reads is loop-invariant and therefore safe.
	mutated := map[types.Object]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.Info.Defs[id]; obj != nil {
						mutated[obj] = true
					}
					if obj := pass.Info.Uses[id]; obj != nil {
						mutated[obj] = true
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := n.X.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					mutated[obj] = true
				}
			}
		}
		return true
	})
	orderFree := func(e ast.Expr) bool {
		return onlyOrderFreeRefs(pass, e, rangeVars, mutated)
	}
	var okStmt func(s ast.Stmt) bool
	okStmt = func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.IncDecStmt:
			return true
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
				token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
				return true
			case token.ASSIGN:
				// m[k] = f(range vars): same final map whatever the
				// order, as long as the value can't see loop state.
				for i, lhs := range s.Lhs {
					ix, ok := lhs.(*ast.IndexExpr)
					if !ok {
						return false
					}
					tv, found := pass.Info.Types[ix.X]
					if !found {
						return false
					}
					if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
						return false
					}
					if i < len(s.Rhs) && !orderFree(s.Rhs[i]) {
						return false
					}
					if !orderFree(ix.Index) {
						return false
					}
				}
				return true
			}
			return false
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return false
			}
			b, ok := pass.Info.Uses[id].(*types.Builtin)
			return ok && b.Name() == "delete"
		case *ast.IfStmt:
			if s.Init != nil || !orderFree(s.Cond) {
				return false
			}
			if !okStmt(s.Body) {
				return false
			}
			return s.Else == nil || okStmt(s.Else)
		case *ast.BlockStmt:
			for _, inner := range s.List {
				if !okStmt(inner) {
					return false
				}
			}
			return true
		case *ast.BranchStmt:
			return s.Tok == token.CONTINUE && s.Label == nil
		default:
			return false
		}
	}
	return okStmt(rng.Body)
}

// onlyOrderFreeRefs reports whether e's value is the same whichever
// iteration order delivers (k, v): it may read the iteration
// variables, constants, types and loop-invariant variables, but not
// loop-carried (mutated) state, and may not call functions — except
// type conversions, which are pure.
func onlyOrderFreeRefs(pass *Pass, e ast.Expr, rangeVars, mutated map[types.Object]bool) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := pass.Info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion: pure, keep inspecting args
			}
			pure = false
			return false
		case *ast.Ident:
			obj := pass.Info.Uses[n]
			if obj == nil {
				return true
			}
			switch obj := obj.(type) {
			case *types.Var:
				if mutated[obj] && !rangeVars[obj] {
					pure = false
				}
			case *types.Const, *types.TypeName, *types.Nil, *types.PkgName, *types.Builtin:
				_ = obj
			case *types.Func:
				pure = false
			}
		}
		return pure
	})
	return pure
}

// sortsAfter reports whether fd calls a sort.* or slices.Sort* /
// slices.Compact* style ordering function positioned after end — the
// "collect then sort" idiom that makes a map walk deterministic.
func sortsAfter(pass *Pass, fd *ast.FuncDecl, end token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < end {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort":
			found = true
		case "slices":
			if strings.HasPrefix(fn.Name(), "Sort") {
				found = true
			}
		}
		return true
	})
	return found
}
