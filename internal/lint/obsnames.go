package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// ObsNames guards the PR 9 observability surface. Metric names are an
// external API — dashboards and alerts grep for them — so every name
// handed to an obs.Registry must be a string literal (greppable), in
// the charles_-prefixed snake_case grammar the registry enforces at
// runtime, and registered only once per package (a duplicate panics
// at boot, which this catches at lint time instead). Trace spans are
// the other half: a Trace.Start or Span.Child whose result is
// dropped, or bound to a variable that never has End() called on it,
// silently loses the stage's time — the trace reads as if the stage
// never ran.
var ObsNames = &Analyzer{
	Name: "obsnames",
	Doc: "obs metric names must be literal charles_-prefixed snake_case " +
		"strings registered once per package; every started span must End; " +
		"fault failpoint sites must be literal dotted layer.site names",
	Applies: func(pkgPath string) bool {
		// internal/obs defines the contract (and its tests exercise
		// deliberately bad names); everything else must obey it.
		return pkgPath != "charles/internal/obs" && pathIn(pkgPath, "charles")
	},
	Run: runObsNames,
}

// obsMetricNameRx mirrors the registry's boot-time grammar check.
var obsMetricNameRx = regexp.MustCompile(`^charles(_[a-z0-9]+)+$`)

// obsRegisterMethods are the Registry methods whose first argument is
// a metric family name.
var obsRegisterMethods = map[string]bool{
	"NewCounter":     true,
	"NewGauge":       true,
	"NewGaugeFunc":   true,
	"NewCounterFunc": true,
	"NewHistogram":   true,
}

// faultSiteRx mirrors internal/fault's site-name grammar: a dotted
// layer.site path. Failpoint names are the chaos suite's external
// API — docs/ROBUSTNESS.md catalogues them and operators pass them
// to -failpoints — so like metric names they must be greppable
// literals, not assembled strings.
var faultSiteRx = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-zA-Z][a-zA-Z0-9]*)+$`)

// faultSiteFuncs are the internal/fault functions whose first
// argument names a failpoint site.
var faultSiteFuncs = map[string]bool{
	"Inject":    true,
	"Enable":    true,
	"Disable":   true,
	"Triggered": true,
}

func runObsNames(pass *Pass) error {
	// Registered names accumulate across the whole package: two files
	// registering the same family is exactly the boot-time panic this
	// analyzer front-runs.
	seen := map[string]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkObsRegistration(pass, call, seen)
			checkFaultSite(pass, call)
			return true
		})
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkSpanFunc(pass, fd)
			}
		}
	}
	return nil
}

// isObsNamed reports whether t is (a pointer to) the named obs type.
func isObsNamed(t types.Type, name string) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Origin().Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "charles/internal/obs" && obj.Name() == name
}

// checkObsRegistration flags non-literal, malformed, or duplicate
// metric names at Registry registration sites.
func checkObsRegistration(pass *Pass, call *ast.CallExpr, seen map[string]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !obsRegisterMethods[sel.Sel.Name] || len(call.Args) == 0 {
		return
	}
	tv, found := pass.Info.Types[sel.X]
	if !found || !isObsNamed(tv.Type, "Registry") {
		return
	}
	name, ok := stringLiteral(pass, call.Args[0])
	if !ok {
		pass.Reportf(call.Args[0].Pos(),
			"metric name passed to %s must be a string literal: names are an external, greppable API", sel.Sel.Name)
		return
	}
	if !obsMetricNameRx.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(),
			"metric name %q must be snake_case with a charles_ prefix", name)
		return
	}
	if seen[name] {
		pass.Reportf(call.Args[0].Pos(),
			"metric %q is registered more than once in this package: the registry panics on duplicates at boot", name)
		return
	}
	seen[name] = true
}

// checkFaultSite flags non-literal or malformed failpoint names at
// internal/fault call sites.
func checkFaultSite(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !faultSiteFuncs[sel.Sel.Name] || len(call.Args) == 0 {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "charles/internal/fault" {
		return
	}
	name, ok := stringLiteral(pass, call.Args[0])
	if !ok {
		pass.Reportf(call.Args[0].Pos(),
			"failpoint name passed to fault.%s must be a string literal: sites are a greppable chaos API", sel.Sel.Name)
		return
	}
	if !faultSiteRx.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(),
			"failpoint name %q must be a dotted layer.site path like \"colfile.readPage\"", name)
	}
}

// stringLiteral resolves e to a compile-time string constant — a
// quoted literal or a named string constant both qualify.
func stringLiteral(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// spanStartCall classifies call as Trace.Start or Span.Child.
func spanStartCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Start", "Child":
	default:
		return false
	}
	tv, found := pass.Info.Types[sel.X]
	if !found {
		return false
	}
	return isObsNamed(tv.Type, "Trace") || isObsNamed(tv.Type, "Span")
}

// checkSpanFunc applies the pooledescape-style pairing approximation
// within one function: a span bound to a variable needs an End() call
// on that variable somewhere in the body (defer included — what the
// analyzer wants is that the author wrote the End, not path-sensitive
// proof); a span whose result is discarded can never end.
func checkSpanFunc(pass *Pass, fd *ast.FuncDecl) {
	type startSite struct {
		key  string // "" = result discarded
		call *ast.CallExpr
	}
	var starts []startSite
	ended := map[string]bool{}
	chainEnded := map[*ast.CallExpr]bool{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && spanStartCall(pass, call) {
				starts = append(starts, startSite{"", call})
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != len(n.Lhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !spanStartCall(pass, call) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					starts = append(starts, startSite{id.Name, call})
				} else {
					starts = append(starts, startSite{"", call})
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "End" || len(n.Args) != 0 {
				return true
			}
			tv, found := pass.Info.Types[sel.X]
			if !found || !isObsNamed(tv.Type, "Span") {
				return true
			}
			if inner, ok := sel.X.(*ast.CallExpr); ok {
				// Chained tr.Start("x").End() — ends the start it wraps.
				chainEnded[inner] = true
				return true
			}
			ended[types.ExprString(sel.X)] = true
		}
		return true
	})

	for _, s := range starts {
		switch {
		case chainEnded[s.call]:
		case s.key == "":
			pass.Reportf(s.call.Pos(),
				"span result discarded: bind the Start/Child result and call End() or the stage's time is lost")
		case !ended[s.key]:
			pass.Reportf(s.call.Pos(),
				"span %q is started but never End()ed in this function: the stage's time is lost", s.key)
		}
	}
}
