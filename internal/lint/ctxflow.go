package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow guards the PR 4 cancellation plumbing: library packages
// must propagate the caller's context, not mint their own. A
// `context.Background()` call deep in the engine silently detaches a
// subtree of work from the cancel signal `charles.AdviseCtx`
// promises to honour, and a context parameter that a function
// accepts but never consults is the same bug one refactor later.
// Detaching is occasionally correct (the jobs manager deliberately
// outlives its submitters) — such sites carry a `//lint:ctxflow`
// justification.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "library packages must thread the incoming context: no " +
		"context.Background()/TODO() calls, no accepted-but-unused ctx parameters",
	Applies: func(pkgPath string) bool {
		return pathIn(pkgPath,
			"charles/internal/core",
			"charles/internal/seg",
			"charles/internal/engine",
			"charles/internal/jobs",
			"charles/internal/par",
			"charles/internal/stats",
			"charles/internal/colfile",
			"charles/internal/pool",
		)
	},
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name, ok := contextConstructor(pass, n); ok {
					pass.Reportf(n.Pos(),
						"call to context.%s in a library package detaches work from the caller's cancel signal; thread the incoming ctx instead", name)
				}
			case *ast.FuncDecl:
				checkDroppedCtx(pass, n)
			}
			return true
		})
	}
	return nil
}

// contextConstructor reports whether call is context.Background() or
// context.TODO().
func contextConstructor(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		return name, true
	}
	return "", false
}

// checkDroppedCtx flags a named context.Context parameter that the
// function body never reads: the caller handed over a cancel signal
// and the function dropped it on the floor.
func checkDroppedCtx(pass *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil || fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj, ok := pass.Info.Defs[name].(*types.Var)
			if !ok || !isContextType(obj.Type()) {
				continue
			}
			if !identUsed(pass, fd.Body, obj) {
				pass.Reportf(name.Pos(),
					"context.Context parameter %q is accepted but never used: the cancel signal stops here", name.Name)
			}
		}
	}
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func identUsed(pass *Pass, body ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			used = true
		}
		return true
	})
	return used
}
