package lint

import (
	"go/ast"
	"go/types"
)

// PooledEscape guards the PR 5 alloc budget: scratch buffers drawn
// from a pool (internal/pool.Slice or a raw sync.Pool) are only a
// win if every Get is matched by a Put and no pooled memory leaks
// into state that outlives the call. Within each function it checks
// three things: a Get whose buffer is neither Put back nor handed to
// the caller is a leak (the pool silently degrades to make); a
// pooled pointer escaping via a return value is an ownership
// transfer that must be a reviewed, justified idiom; and a pooled
// pointer stored into a struct field, package-level variable or
// composite literal is retained state that a later Put will
// corrupt. internal/pool itself is exempt — it is the wrapper that
// defines the contract.
var PooledEscape = &Analyzer{
	Name: "pooledescape",
	Doc: "pool.Get results must be Put back; pooled buffers must not " +
		"escape via returns, struct stores or globals without justification",
	Applies: func(pkgPath string) bool {
		return pkgPath != "charles/internal/pool" && pathIn(pkgPath, "charles/internal", "charles")
	},
	Run: runPooledEscape,
}

func runPooledEscape(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkPoolFunc(pass, fd)
			}
		}
	}
	return nil
}

// poolCall classifies call as a Get or Put on a pool, returning the
// receiver's textual key ("int64Scratch", "sp.p") used to pair them.
func poolCall(pass *Pass, call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	method = sel.Sel.Name
	if method != "Get" && method != "Put" {
		return "", "", false
	}
	tv, found := pass.Info.Types[sel.X]
	if !found || !isPoolType(tv.Type) {
		return "", "", false
	}
	return types.ExprString(sel.X), method, true
}

// isPoolType reports whether t is sync.Pool, internal/pool.Slice, or
// a pointer to either.
func isPoolType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Origin().Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Pkg().Path() == "sync" && obj.Name() == "Pool":
		return true
	case obj.Pkg().Path() == "charles/internal/pool" && obj.Name() == "Slice":
		return true
	}
	return false
}

func checkPoolFunc(pass *Pass, fd *ast.FuncDecl) {
	type getSite struct {
		key  string
		call *ast.CallExpr
	}
	var gets []getSite
	puts := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if key, method, ok := poolCall(pass, call); ok {
				if method == "Get" {
					gets = append(gets, getSite{key, call})
				} else {
					puts[key] = true
				}
			}
		}
		return true
	})
	if len(gets) == 0 && len(puts) == 0 {
		return
	}

	// Variables aliasing pooled memory: bound from Get directly or
	// through aliasing expressions (b := v.(*[]T), vals := (*p)[:0]).
	tracked := map[types.Object]bool{}
	isGet := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		_, method, ok := poolCall(pass, call)
		return ok && method == "Get"
	}
	trackAliases(pass, fd.Body, tracked, isGet)

	// Escapes: pooled aliases in return values, long-lived stores,
	// and composite literals.
	returned := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				for _, obj := range aliasObjects(pass, res, tracked) {
					returned = true
					pass.Reportf(n.Pos(),
						"pooled buffer %q escapes via return value: ownership transfer to the caller must be a justified idiom", obj.Name())
				}
				if isGet(res) {
					returned = true
					pass.Reportf(n.Pos(), "pool Get result returned directly: ownership transfer to the caller must be a justified idiom")
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if len(aliasObjects(pass, rhs, tracked)) == 0 && !isGet(rhs) {
					continue
				}
				for _, lhs := range n.Lhs {
					if desc, bad := longLivedLHS(pass, lhs); bad {
						pass.Reportf(n.Pos(),
							"pooled buffer stored into %s: pooled scratch must not outlive the call", desc)
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				for _, obj := range aliasObjects(pass, v, tracked) {
					pass.Reportf(v.Pos(),
						"pooled buffer %q escapes into a composite literal: pooled scratch must not outlive the call", obj.Name())
				}
			}
		}
		return true
	})

	// Leak check: a Get on a pool with no Put anywhere in the body is
	// only fine when the function's contract is to hand the buffer
	// back to the caller (some pooled alias is returned).
	for _, g := range gets {
		if !puts[g.key] && !returned {
			pass.Reportf(g.call.Pos(),
				"pool %s is Get from but never Put back in this function, and no pooled buffer is returned: the buffer leaks and the pool degrades to make", g.key)
		}
	}
}
