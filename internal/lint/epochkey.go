package lint

import (
	"go/ast"
	"go/types"
)

// EpochKey guards the incremental-advise invalidation contract
// (PR 8): every evaluator-level cache entry must carry the epoch
// stamp it was computed under, because the stamp is the only thing
// that lets a later lookup distinguish "still valid", "refreshable
// chunk-by-chunk" and "recompute". Two shapes violate it. A map
// whose values are raw *engine.ChunkedSelection or *engine.Bitmap is
// a cache with no stamp at all — after a mutation it serves stale
// selections with no way to notice (store a stamp-carrying entry
// struct instead). And a keyed composite literal of a stamp-carrying
// entry struct that omits the stamp field builds an entry that can
// never be validated — it would read as permanently fresh or
// permanently stale depending on the nil-handling of the check.
// The engine package itself is out of scope: it defines the stamp
// machinery and documents nil-stamp sentinels (ChunkSummary).
var EpochKey = &Analyzer{
	Name: "epochkey",
	Doc: "evaluator cache entries must carry their epoch stamp: no raw " +
		"selection maps, no entry literals that omit the stamp field",
	Applies: func(pkgPath string) bool {
		return pkgPath == "charles" || pathIn(pkgPath, "charles/internal/seg")
	},
	Run: runEpochKey,
}

func runEpochKey(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.MapType:
				if tv, ok := pass.Info.Types[n.Value]; ok {
					if name, raw := rawSelectionType(tv.Type); raw {
						pass.Reportf(n.Pos(),
							"map holds raw *engine.%s values: a cache without an epoch stamp serves stale selections after a mutation; store a stamp-carrying entry struct", name)
					}
				}
			case *ast.CompositeLit:
				checkStampLiteral(pass, n)
			}
			return true
		})
	}
	return nil
}

// rawSelectionType reports whether t is a pointer to one of the
// engine's selection representations.
func rawSelectionType(t types.Type) (string, bool) {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "charles/internal/engine" {
		return "", false
	}
	switch obj.Name() {
	case "ChunkedSelection", "Bitmap":
		return obj.Name(), true
	}
	return "", false
}

// isStampPtr reports whether t is *engine.EpochStamp.
func isStampPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "charles/internal/engine" && obj.Name() == "EpochStamp"
}

// checkStampLiteral flags keyed composite literals of stamp-carrying
// structs that omit the stamp field. Empty literals are zero values,
// not cache inserts, and unkeyed literals necessarily list every
// field — both pass.
func checkStampLiteral(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	stampField := ""
	for i := 0; i < st.NumFields(); i++ {
		if isStampPtr(st.Field(i).Type()) {
			stampField = st.Field(i).Name()
			break
		}
	}
	if stampField == "" || len(lit.Elts) == 0 {
		return
	}
	if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
		return
	}
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == stampField {
				return
			}
		}
	}
	pass.Reportf(lit.Pos(),
		"%s literal omits its epoch stamp field %q: an unstamped cache entry can never be validated or refreshed", types.TypeString(tv.Type, func(p *types.Package) string { return p.Name() }), stampField)
}
