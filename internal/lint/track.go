package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Alias tracking shared by pooledescape and mmaplife: both follow a
// "tainted" value (a pooled pointer, an mmap-backed column) through
// the expressions that genuinely alias its memory, and report when
// an alias lands somewhere that outlives the call. A field selection
// breaks the chain — copying a struct field out of a pooled element
// copies the value, not the backing array — and so does an ordinary
// function call, which consumes the buffer's contents rather than
// the buffer.

// aliasObjects returns the tracked variables whose memory e aliases:
// the identifier itself, or a chain of parens, dereferences,
// address-ofs, slicings, indexings and type assertions over one,
// plus append() whose destination or elements alias one.
func aliasObjects(pass *Pass, e ast.Expr, tracked map[types.Object]bool) []types.Object {
	// A value of basic type cannot alias pooled or mapped memory:
	// (*p)[0] copies an element out, it does not retain the buffer.
	if tv, ok := pass.Info.Types[e]; ok && tv.Type != nil {
		if _, isBasic := tv.Type.Underlying().(*types.Basic); isBasic {
			return nil
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := pass.Info.Uses[e]; obj != nil && tracked[obj] {
			return []types.Object{obj}
		}
	case *ast.ParenExpr:
		return aliasObjects(pass, e.X, tracked)
	case *ast.StarExpr:
		return aliasObjects(pass, e.X, tracked)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return aliasObjects(pass, e.X, tracked)
		}
	case *ast.SliceExpr:
		return aliasObjects(pass, e.X, tracked)
	case *ast.IndexExpr:
		return aliasObjects(pass, e.X, tracked)
	case *ast.TypeAssertExpr:
		return aliasObjects(pass, e.X, tracked)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				var objs []types.Object
				for _, arg := range e.Args {
					objs = append(objs, aliasObjects(pass, arg, tracked)...)
				}
				return objs
			}
		}
	}
	return nil
}

// trackAliases walks body once in source order, marking every
// variable bound (via `:=`, `=` or multi-assign) to an expression
// that aliases a tracked value — or that isSource reports as a fresh
// source — as tracked itself.
func trackAliases(pass *Pass, body ast.Node, tracked map[types.Object]bool, isSource func(ast.Expr) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(asg.Lhs) == len(asg.Rhs) {
			for i, rhs := range asg.Rhs {
				if isSource(rhs) || len(aliasObjects(pass, rhs, tracked)) > 0 {
					trackLHS(pass, asg.Lhs[i], tracked)
				}
			}
		} else if len(asg.Rhs) == 1 && isSource(asg.Rhs[0]) {
			// x, ok := <source> — bind every target; aliasing through
			// a multi-value call is not aliasing (calls consume).
			for _, l := range asg.Lhs {
				trackLHS(pass, l, tracked)
			}
		}
		return true
	})
}

// trackLHS marks a plain identifier assignment target as holding a
// tracked value.
func trackLHS(pass *Pass, lhs ast.Expr, tracked map[types.Object]bool) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if obj := pass.Info.Defs[id]; obj != nil {
		tracked[obj] = true
		return
	}
	if obj := pass.Info.Uses[id]; obj != nil {
		tracked[obj] = true
	}
}

// longLivedLHS reports whether an assignment target is storage that
// outlives the enclosing call: a struct field (directly or through
// an index chain) or a package-level variable.
func longLivedLHS(pass *Pass, lhs ast.Expr) (string, bool) {
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				return "struct field " + types.ExprString(e), true
			}
			if obj, ok := pass.Info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return "package-level variable " + types.ExprString(e), true
			}
			return "", false
		case *ast.Ident:
			obj := pass.Info.Uses[e]
			if obj == nil {
				obj = pass.Info.Defs[e]
			}
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return "package-level variable " + e.Name, true
			}
			return "", false
		default:
			return "", false
		}
	}
}
