// Package fault is a stdlib-only failpoint registry: named injection
// sites compiled into the serving stack that chaos tests (and a
// deliberate operator) can arm to return errors, panic, or add
// latency at exactly the I/O and execution boundaries production
// failures hit. The error paths PR 6–7 wrote for the .chc reader and
// the containment PR 10 adds around job execution are only worth
// trusting if something exercises them; failpoints make that a test
// suite instead of an outage.
//
// A site is one call at the boundary it models:
//
//	if err := fault.Inject("colfile.readPage"); err != nil {
//		return fmt.Errorf("column %q: reading value pages: %w", name, err)
//	}
//
// Disabled — the default, and the only state production should run
// in — Inject costs a single atomic load, so sites are free to live
// on serving paths. Sites are armed by name with an action spec:
//
//	fault.Enable("colfile.readPage", "error(simulated I/O error)")
//	fault.Enable("jobs.run", "panic(chaos)")
//	fault.Enable("engine.backendSummary", "sleep(50ms)")
//	fault.Enable("jobs.run", "2*error(flaky twice, then clean)")
//
// or in bulk ("site=spec;site=spec") via Configure, which is what
// charles-server's -failpoints flag and the CHARLES_FAILPOINTS
// environment variable feed. docs/ROBUSTNESS.md catalogues every
// site the tree defines; the obsnames analyzer keeps the names
// literal and greppable.
package fault

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// action is what an armed failpoint does when its site executes.
type action uint8

const (
	actError action = iota // Inject returns an *InjectedError
	actPanic               // Inject panics with a descriptive string
	actSleep               // Inject sleeps, then reports no fault
)

// point is one armed failpoint.
type point struct {
	name  string
	act   action
	msg   string
	delay time.Duration
	// remaining is how many more triggers the spec allows; -1 is
	// unlimited. A point at 0 stays registered (its trigger count
	// remains readable) but injects nothing.
	remaining int
	triggered int
}

var (
	// armed counts enabled failpoints. Inject's fast path is this one
	// atomic load: zero means the registry is empty and no lock is
	// ever taken on a serving path.
	armed atomic.Int64

	mu     sync.Mutex
	points = map[string]*point{}
)

// nameRx is the site-name grammar: a dotted layer.site path, lower
// camelCase segments — "colfile.readPage", "jobs.run". The obsnames
// analyzer enforces the same grammar at lint time so the catalogue
// in docs/ROBUSTNESS.md stays greppable.
var nameRx = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-zA-Z][a-zA-Z0-9]*)+$`)

// specRx parses an action spec: an optional "N*" trigger budget, an
// action verb, and its parenthesized argument.
var specRx = regexp.MustCompile(`^(?:(\d+)\*)?(error|panic|sleep)\((.*)\)$`)

// InjectedError is the error an armed error-action failpoint
// returns. Sites wrap it with their own context, so a surfaced
// failure reads like the real one it models while errors.As still
// identifies it as injected.
type InjectedError struct {
	// Site is the failpoint name that fired.
	Site string
	// Msg is the spec's error text.
	Msg string
}

func (e *InjectedError) Error() string {
	return "injected fault at " + e.Site + ": " + e.Msg
}

// Inject executes the failpoint name: nil when the site is unarmed
// (the overwhelmingly common case — one atomic load), an
// *InjectedError for an error action, a panic for a panic action,
// or a sleep followed by nil for a latency action.
func Inject(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	return inject(name)
}

// inject is the slow path: at least one failpoint is armed somewhere.
func inject(name string) error {
	mu.Lock()
	p, ok := points[name]
	if !ok || p.remaining == 0 {
		mu.Unlock()
		return nil
	}
	if p.remaining > 0 {
		p.remaining--
	}
	p.triggered++
	act, msg, delay := p.act, p.msg, p.delay
	mu.Unlock()
	switch act {
	case actPanic:
		panic(fmt.Sprintf("injected panic at %s: %s", name, msg))
	case actSleep:
		time.Sleep(delay)
		return nil
	default:
		return &InjectedError{Site: name, Msg: msg}
	}
}

// Enable arms the failpoint name with an action spec:
//
//	error(<message>)   Inject returns an *InjectedError
//	panic(<message>)   Inject panics
//	sleep(<duration>)  Inject sleeps a time.ParseDuration value
//
// optionally prefixed "N*" to fire only the first N times
// ("2*error(x)"). Re-enabling a name replaces its previous spec.
func Enable(name, spec string) error {
	if !nameRx.MatchString(name) {
		return fmt.Errorf("fault: site %q is not a dotted layer.site name", name)
	}
	m := specRx.FindStringSubmatch(strings.TrimSpace(spec))
	if m == nil {
		return fmt.Errorf("fault: spec %q for %s: want [N*]error(msg) | [N*]panic(msg) | [N*]sleep(duration)", spec, name)
	}
	p := &point{name: name, msg: m[3], remaining: -1}
	if m[1] != "" {
		n, err := strconv.Atoi(m[1])
		if err != nil || n <= 0 {
			return fmt.Errorf("fault: spec %q for %s: bad trigger budget %q", spec, name, m[1])
		}
		p.remaining = n
	}
	switch m[2] {
	case "error":
		p.act = actError
	case "panic":
		p.act = actPanic
	case "sleep":
		d, err := time.ParseDuration(m[3])
		if err != nil {
			return fmt.Errorf("fault: spec %q for %s: %v", spec, name, err)
		}
		p.act, p.delay = actSleep, d
	}
	mu.Lock()
	if prev, ok := points[name]; ok {
		p.triggered = prev.triggered
	} else {
		armed.Add(1)
	}
	points[name] = p
	mu.Unlock()
	return nil
}

// Disable disarms one failpoint. Unknown names are a no-op.
func Disable(name string) {
	mu.Lock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every failpoint and forgets all trigger counts —
// the test-teardown call that restores the production state.
func Reset() {
	mu.Lock()
	armed.Add(-int64(len(points)))
	points = map[string]*point{}
	mu.Unlock()
}

// Configure arms failpoints in bulk from a "name=spec;name=spec"
// string — the -failpoints flag / CHARLES_FAILPOINTS format. Empty
// input arms nothing. On a malformed entry nothing before it is
// rolled back; the caller treats the whole string as a boot error.
func Configure(s string) error {
	for _, ent := range strings.Split(s, ";") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		name, spec, ok := strings.Cut(ent, "=")
		if !ok {
			return fmt.Errorf("fault: entry %q: want name=spec", ent)
		}
		if err := Enable(strings.TrimSpace(name), spec); err != nil {
			return err
		}
	}
	return nil
}

// Triggered reports how many times the failpoint has fired since it
// was (first) enabled. Zero for unknown names.
func Triggered(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.triggered
	}
	return 0
}

// Enabled lists the armed failpoint names, sorted.
func Enabled() []string {
	mu.Lock()
	names := make([]string, 0, len(points))
	for n := range points {
		names = append(names, n)
	}
	mu.Unlock()
	sort.Strings(names)
	return names
}
