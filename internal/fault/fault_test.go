package fault

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func reset(t *testing.T) {
	t.Helper()
	Reset()
	t.Cleanup(Reset)
}

func TestDisabledInjectIsNil(t *testing.T) {
	reset(t)
	if err := Inject("colfile.readPage"); err != nil {
		t.Fatalf("unarmed Inject = %v, want nil", err)
	}
	if got := armed.Load(); got != 0 {
		t.Fatalf("armed = %d, want 0", got)
	}
}

func TestErrorAction(t *testing.T) {
	reset(t)
	if err := Enable("colfile.readPage", "error(simulated I/O error)"); err != nil {
		t.Fatal(err)
	}
	err := Inject("colfile.readPage")
	if err == nil {
		t.Fatal("armed Inject = nil, want error")
	}
	var inj *InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("error %T is not *InjectedError", err)
	}
	if inj.Site != "colfile.readPage" || inj.Msg != "simulated I/O error" {
		t.Fatalf("InjectedError = %+v", inj)
	}
	if want := "injected fault at colfile.readPage: simulated I/O error"; err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
	// Other sites stay unarmed.
	if err := Inject("colfile.open"); err != nil {
		t.Fatalf("unrelated site injected %v", err)
	}
	if got := Triggered("colfile.readPage"); got != 1 {
		t.Fatalf("Triggered = %d, want 1", got)
	}
}

func TestPanicAction(t *testing.T) {
	reset(t)
	if err := Enable("jobs.run", "panic(chaos)"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Inject did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "injected panic at jobs.run: chaos") {
			t.Fatalf("panic value = %v", r)
		}
	}()
	Inject("jobs.run")
}

func TestSleepAction(t *testing.T) {
	reset(t)
	if err := Enable("engine.backendSummary", "sleep(20ms)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject("engine.backendSummary"); err != nil {
		t.Fatalf("sleep action returned error %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("Inject returned after %v, want >= 20ms", d)
	}
}

func TestTriggerBudget(t *testing.T) {
	reset(t)
	if err := Enable("jobs.run", "2*error(flaky)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := Inject("jobs.run"); err == nil {
			t.Fatalf("trigger %d: nil, want error", i)
		}
	}
	if err := Inject("jobs.run"); err != nil {
		t.Fatalf("after budget exhausted: %v, want nil", err)
	}
	if got := Triggered("jobs.run"); got != 2 {
		t.Fatalf("Triggered = %d, want 2", got)
	}
}

func TestDisableAndReset(t *testing.T) {
	reset(t)
	if err := Enable("colfile.open", "error(x)"); err != nil {
		t.Fatal(err)
	}
	Disable("colfile.open")
	Disable("never.armed") // no-op, must not corrupt the armed count
	if err := Inject("colfile.open"); err != nil {
		t.Fatalf("after Disable: %v", err)
	}
	if got := armed.Load(); got != 0 {
		t.Fatalf("armed = %d after Disable, want 0", got)
	}
	if err := Enable("colfile.open", "error(x)"); err != nil {
		t.Fatal(err)
	}
	Inject("colfile.open")
	Reset()
	if got := Triggered("colfile.open"); got != 0 {
		t.Fatalf("Triggered after Reset = %d, want 0", got)
	}
	if got := armed.Load(); got != 0 {
		t.Fatalf("armed = %d after Reset, want 0", got)
	}
}

func TestReEnableReplacesSpecKeepsCount(t *testing.T) {
	reset(t)
	if err := Enable("jobs.run", "error(first)"); err != nil {
		t.Fatal(err)
	}
	Inject("jobs.run")
	if err := Enable("jobs.run", "error(second)"); err != nil {
		t.Fatal(err)
	}
	err := Inject("jobs.run")
	if err == nil || !strings.Contains(err.Error(), "second") {
		t.Fatalf("after re-enable: %v, want the second spec's message", err)
	}
	if got := Triggered("jobs.run"); got != 2 {
		t.Fatalf("Triggered = %d, want 2 (count survives re-enable)", got)
	}
	if got := armed.Load(); got != 1 {
		t.Fatalf("armed = %d, want 1 (re-enable must not double-count)", got)
	}
}

func TestEnableRejectsBadInput(t *testing.T) {
	reset(t)
	bad := []struct{ name, spec string }{
		{"noDots", "error(x)"},
		{"Upper.start", "error(x)"},
		{"has space.x", "error(x)"},
		{"jobs.run", "explode(x)"},
		{"jobs.run", "error"},
		{"jobs.run", "0*error(x)"},
		{"jobs.run", "sleep(not-a-duration)"},
	}
	for _, c := range bad {
		if err := Enable(c.name, c.spec); err == nil {
			t.Errorf("Enable(%q, %q) = nil, want error", c.name, c.spec)
		}
	}
	if got := armed.Load(); got != 0 {
		t.Fatalf("armed = %d after rejected specs, want 0", got)
	}
}

func TestConfigure(t *testing.T) {
	reset(t)
	cfg := "colfile.readPage=error(disk gone); jobs.run=3*sleep(1ms) ;"
	if err := Configure(cfg); err != nil {
		t.Fatal(err)
	}
	got := Enabled()
	want := []string{"colfile.readPage", "jobs.run"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Enabled() = %v, want %v", got, want)
	}
	if err := Inject("colfile.readPage"); err == nil {
		t.Fatal("configured site did not inject")
	}
	if err := Configure(""); err != nil {
		t.Fatalf("empty Configure = %v", err)
	}
	if err := Configure("missing-equals"); err == nil {
		t.Fatal("malformed entry accepted")
	}
	if err := Configure("jobs.run=nonsense()"); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestConcurrentInject(t *testing.T) {
	reset(t)
	if err := Enable("jobs.run", "error(racy)"); err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := Inject("jobs.run"); err == nil {
					t.Error("armed Inject returned nil")
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := Triggered("jobs.run"); got != goroutines*per {
		t.Fatalf("Triggered = %d, want %d", got, goroutines*per)
	}
}

func ExampleInject() {
	defer Reset()
	Enable("colfile.readPage", "error(simulated I/O error)")
	fmt.Println(Inject("colfile.readPage"))
	// Output: injected fault at colfile.readPage: simulated I/O error
}
