package jobs

import (
	"fmt"
	"sync"

	"charles/internal/core"
)

// Group is the jobs layer's coalescing helper in synchronous form: a
// minimal single-flight for callers that block on the result instead
// of polling a job. The server's synchronous advise path shares it,
// so N concurrent cache misses on one (context, config) key run one
// advise and N-1 waiters — the same dedup the Manager applies to
// queued jobs, without the queue.
//
// Unlike a cache, a Group holds a key only while its call is in
// flight: the result is handed to the waiters and forgotten, so
// error results are never retained (callers decide what to cache).
type Group struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	res *core.Result
	err error
}

// Do executes fn under key, returning its result. Concurrent Do
// calls with the same key wait for the first caller's fn instead of
// running their own; the boolean reports whether the result was
// shared from another caller's flight.
func (g *Group) Do(key string, fn func() (*core.Result, error)) (*core.Result, error, bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.res, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	// The flight is released even when fn panics: waiters get a
	// descriptive error instead of blocking forever on a WaitGroup
	// nobody will ever Done, and the key is freed for the next
	// caller. The panic itself is re-raised — containment policy
	// (fail the job, answer 500) belongs to this caller's recover,
	// not to the coalescing helper.
	defer func() {
		if r := recover(); r != nil {
			c.err = fmt.Errorf("jobs: panic in single-flight call: %v", r)
			c.wg.Done()
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
			panic(r)
		}
		c.wg.Done()
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
	}()
	c.res, c.err = fn()
	return c.res, c.err, false
}
