package jobs

import (
	"sync"
	"time"
)

// Quota is per-client token-bucket admission control for the advise
// plane. Each client id owns a bucket refilled at rate tokens/second
// up to burst; a submission spends one token. Allow answers the
// admission question and, on refusal, how long until a token exists —
// the Retry-After the API layer sends with its 429.
//
// Quota answers a different question than the queue bound: ErrQueueFull
// means "the server is saturated" (503 — everyone's problem), an
// exhausted bucket means "you specifically are over quota" (429 —
// your problem). Conflating them teaches aggressive clients that
// hammering harder sometimes works.
//
// A nil *Quota admits everything, so callers thread it unconditionally
// and the disabled configuration costs nothing.
type Quota struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds the client table: adversarial client-id churn
// must not grow server memory without bound. At the cap, the table is
// dropped wholesale — momentarily over-admitting a burst per client
// is a far better failure mode than OOM.
const maxBuckets = 8192

// NewQuota builds a quota admitting rate submissions/second with the
// given burst per client. rate <= 0 returns nil: quota disabled.
func NewQuota(rate float64, burst int) *Quota {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &Quota{rate: rate, burst: float64(burst), buckets: make(map[string]*bucket)}
}

// Allow spends one token from client's bucket. When the bucket is
// empty it reports false plus how long until the next token refills —
// always at least a second, so it rounds to a usable Retry-After
// header value.
func (q *Quota) Allow(client string) (bool, time.Duration) {
	if q == nil {
		return true, 0
	}
	return q.allowAt(client, time.Now())
}

// allowAt is Allow at an explicit instant, for deterministic tests.
func (q *Quota) allowAt(client string, now time.Time) (bool, time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.buckets[client]
	if !ok {
		if len(q.buckets) >= maxBuckets {
			q.buckets = make(map[string]*bucket)
		}
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[client] = b
	} else if el := now.Sub(b.last).Seconds(); el > 0 {
		b.tokens = min(q.burst, b.tokens+el*q.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / q.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return false, wait
}
