// Package jobs is the asynchronous advise layer: a bounded FIFO job
// queue with its own worker pool, per-job progress snapshots,
// cooperative cancellation, single-flight coalescing of identical
// submissions, and TTL'd retention of finished results.
//
// Charles advises interactively, but one advise over a large table
// takes seconds — too long to hold an HTTP request (and a goroutine
// per request) open for. The Manager decouples submission from
// execution: clients enqueue work, poll its progress, cancel it, and
// fetch the result when done, while a fixed worker pool bounds how
// many advises run at once regardless of how many are queued. When
// the queue is full new work is rejected immediately (backpressure
// beats unbounded buffering), and identical concurrent submissions —
// the thundering-herd case of many users opening the same landing
// exploration — coalesce onto one running job.
//
// The Manager is generic over what a job does: it runs RunFuncs and
// threads a context plus a core.ProgressFunc into them. The server
// wraps Advisor.AdviseCtx; tests wrap stubs.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime/debug"
	"sync"
	"time"

	"charles/internal/core"
	"charles/internal/fault"
	"charles/internal/obs"
)

// State is a job's lifecycle position: Queued → Running → one of
// Done, Failed, Cancelled, TimedOut. Terminal jobs are retained (with
// their result or error) for Options.TTL, then forgotten.
type State uint8

// Job states.
const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateFailed
	StateCancelled
	// StateTimedOut is a job stopped by its own deadline rather than
	// a caller's cancel — the operator-facing difference between "the
	// client gave up" and "the server's patience ran out".
	StateTimedOut
)

// String names the state for JSON payloads and logs.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	case StateTimedOut:
		return "timed_out"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s >= StateDone }

// Errors returned by Submit and the lookup methods.
var (
	// ErrQueueFull rejects a submission when the FIFO is saturated —
	// the backpressure signal (HTTP 503 at the API layer).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed rejects submissions after Shutdown began.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrNotFound reports an unknown (or TTL-expired) job id.
	ErrNotFound = errors.New("jobs: no such job")
)

// RunFunc is the work one job performs. It must honor ctx (return
// promptly with ctx.Err() once cancelled) and may report progress;
// both are threaded straight into Advisor.AdviseCtx by the server.
type RunFunc func(ctx context.Context, progress core.ProgressFunc) (*core.Result, error)

// Options parameterizes a Manager. The zero value gets sensible
// defaults; the queue depth and worker count are deliberately
// independent of the per-advise Config.Workers fan-out — Workers
// here bounds how many advises run at once, Config.Workers bounds
// how many goroutines each of them uses.
type Options struct {
	// QueueDepth bounds the FIFO of jobs waiting for a worker;
	// submissions beyond it fail with ErrQueueFull. Default 64.
	QueueDepth int
	// Workers is the size of the job worker pool. Default 2.
	Workers int
	// TTL is how long a finished job (and its result) stays
	// pollable; expired jobs vanish lazily on the next Manager call.
	// Default 5 minutes.
	TTL time.Duration
	// Timeout is the default deadline applied to every job's run
	// context. Zero means no deadline. A job that exceeds it turns
	// StateTimedOut (not StateCancelled) with a descriptive error.
	Timeout time.Duration
	// Metrics, when set, receives queue-wait and run-duration
	// observations for every executed job. Nil (the default) records
	// nothing.
	Metrics *Metrics
}

// Metrics is the manager's instrumentation hook. All fields are
// nil-safe obs instruments; histograms observe seconds.
type Metrics struct {
	// QueueWait is the time from submission to a worker picking the
	// job up.
	QueueWait *obs.Histogram
	// Run is the time the RunFunc executed (queue wait excluded).
	Run *obs.Histogram
	// PanicsRecovered counts panics a worker contained into a failed
	// job. Any value above zero is a bug report; the point of the
	// counter is that the process was still alive to increment it.
	PanicsRecovered *obs.Counter
}

func (o Options) normalize() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.TTL <= 0 {
		o.TTL = 5 * time.Minute
	}
	return o
}

// Job is one unit of queued work. All mutable fields sit behind its
// own mutex so pollers never contend with the manager lock.
type Job struct {
	id      string
	key     string
	run     RunFunc
	cctx    context.Context
	abort   context.CancelFunc
	done    chan struct{}
	timeout time.Duration // effective deadline; 0 = none

	// trace accumulates per-stage timings for this job: queue wait,
	// total run time, and the advise phases the core layer reports
	// through the context. Created at submission, so even a queued
	// job snapshots a (still empty) trace.
	trace *obs.Trace

	mu       sync.Mutex
	state    State
	prog     core.Progress
	res      *core.Result
	err      error
	created  time.Time
	started  time.Time
	finished time.Time
}

// ID returns the job's manager-unique id.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal
// state — the no-polling wait for in-process callers.
func (j *Job) Done() <-chan struct{} { return j.done }

// Snapshot returns a consistent copy of the job's current state,
// progress and (when terminal) result or error.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID:       j.id,
		Key:      j.key,
		State:    j.state,
		Progress: j.prog,
		Result:   j.res,
		Err:      j.err,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
		Trace:    j.trace.Summary(),
	}
}

// setProgress is the core.ProgressFunc threaded into the RunFunc.
func (j *Job) setProgress(p core.Progress) {
	j.mu.Lock()
	j.prog = p
	j.mu.Unlock()
}

// Snapshot is one point-in-time view of a job.
type Snapshot struct {
	ID       string
	Key      string
	State    State
	Progress core.Progress
	Result   *core.Result
	Err      error
	Created  time.Time
	Started  time.Time
	Finished time.Time
	// Trace is the job's accumulated stage timings: queue_wait and
	// run at the top, advise phases reported by the core layer
	// alongside them. Empty until the job starts moving.
	Trace []obs.StageSummary
}

// Stats summarizes the manager for health endpoints.
type Stats struct {
	// Queued is the number of jobs waiting in the FIFO.
	Queued int
	// QueueCap is the FIFO bound (Options.QueueDepth).
	QueueCap int
	// Running is the number of jobs currently executing.
	Running int
	// Workers is the pool size (Options.Workers).
	Workers int
	// Retained counts every tracked job, terminal ones included.
	Retained int
	// Submitted counts Submit calls that created a new job.
	Submitted int
	// Coalesced counts Submit calls answered by an existing job —
	// the single-flight savings.
	Coalesced int
}

// Manager owns the queue, the worker pool and the job table. The
// FIFO is a slice under the manager lock rather than a channel:
// cancelling a queued job must free its queue slot immediately (a
// channel cannot give a buffered element back), or a client that
// cancels its backlog would keep seeing queue-full until a worker
// happens to drain the corpses.
type Manager struct {
	opt Options
	wg  sync.WaitGroup

	mu        sync.Mutex
	cond      *sync.Cond // signals workers: fifo non-empty or closed
	fifo      []*Job     // jobs awaiting a worker, oldest first
	closed    bool
	seq       int
	jobs      map[string]*Job
	byKey     map[string]*Job // latest live-or-successful job per key
	order     []*Job          // creation order, for List
	running   int
	submitted int
	coalesced int
}

// NewManager starts a manager with its worker pool. Call Shutdown to
// stop it.
func NewManager(opt Options) *Manager {
	opt = opt.normalize()
	m := &Manager{
		opt:   opt,
		jobs:  make(map[string]*Job),
		byKey: make(map[string]*Job),
	}
	m.cond = sync.NewCond(&m.mu)
	m.wg.Add(opt.Workers)
	for i := 0; i < opt.Workers; i++ {
		go m.worker()
	}
	return m
}

// Submit enqueues run under the coalescing key and returns its job.
// If a job with the same key is already queued, running, or done
// within the TTL, that job is returned instead and run never
// executes — M identical concurrent submissions cost exactly one
// execution. Failed and cancelled jobs never coalesce: resubmitting
// after a failure runs fresh. A full queue returns ErrQueueFull, a
// shut-down manager ErrClosed.
func (m *Manager) Submit(key string, run RunFunc) (*Job, error) {
	return m.SubmitTimeout(key, run, 0)
}

// SubmitTimeout is Submit with a per-job deadline override. The
// override can only tighten the manager's Options.Timeout, never
// extend it — a client may ask for less patience than the operator
// configured, not more; zero (or negative) means "use the default".
// A coalesced submission joins the existing job with the existing
// job's deadline.
func (m *Manager) SubmitTimeout(key string, run RunFunc, timeout time.Duration) (*Job, error) {
	if timeout <= 0 || (m.opt.Timeout > 0 && timeout > m.opt.Timeout) {
		timeout = m.opt.Timeout
	}
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	m.purgeLocked(now)
	if j, ok := m.byKey[key]; ok {
		m.coalesced++
		return j, nil
	}
	if len(m.fifo) >= m.opt.QueueDepth {
		return nil, ErrQueueFull
	}
	//lint:ctxflow deliberate detach: a queued job outlives its submitting request; cancellation arrives via Job.Cancel/Manager.Shutdown driving abort
	cctx, abort := context.WithCancel(context.Background())
	m.seq++
	j := &Job{
		id:      fmt.Sprintf("job-%d", m.seq),
		key:     key,
		run:     run,
		cctx:    cctx,
		abort:   abort,
		done:    make(chan struct{}),
		timeout: timeout,
		created: now,
		trace:   obs.NewTrace(),
	}
	m.fifo = append(m.fifo, j)
	m.jobs[j.id] = j
	m.byKey[key] = j
	m.order = append(m.order, j)
	m.submitted++
	m.cond.Signal()
	return j, nil
}

// Peek returns the job currently registered under key — queued,
// running, or successfully done within the TTL — without submitting
// anything. Synchronous callers use it to join work the async side
// already has in flight.
func (m *Manager) Peek(key string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.purgeLocked(time.Now())
	j, ok := m.byKey[key]
	return j, ok
}

// Get returns a snapshot of the job, or ErrNotFound once it expired.
func (m *Manager) Get(id string) (Snapshot, error) {
	m.mu.Lock()
	m.purgeLocked(time.Now())
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	return j.Snapshot(), nil
}

// Cancel requests cancellation of the job: a queued job becomes
// Cancelled immediately; a running job's context is cancelled and
// the job turns Cancelled when its RunFunc unwinds (the advise stops
// at its next task boundary). Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	m.cancelJob(j)
	return nil
}

// cancelJob cancels one non-terminal job: its context is aborted,
// its coalescing entry is dropped at once — new submissions of the
// key must run fresh, not join a doomed job — and, when it never
// started running, it is finalized in place and its queue slot
// freed.
func (m *Manager) cancelJob(j *Job) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	wasQueued := j.state == StateQueued
	if wasQueued {
		j.state = StateCancelled
		j.err = context.Canceled
		j.finished = time.Now()
		close(j.done)
	}
	j.mu.Unlock()
	j.abort()
	m.mu.Lock()
	if wasQueued {
		for i, q := range m.fifo {
			if q == j {
				m.fifo = append(m.fifo[:i], m.fifo[i+1:]...)
				break
			}
		}
	}
	if m.byKey[j.key] == j {
		delete(m.byKey, j.key)
	}
	m.mu.Unlock()
}

// dropKeyFor unmaps a failed or cancelled job from the coalescing
// index so the next submission of its key runs fresh.
func (m *Manager) dropKeyFor(j *Job) {
	m.mu.Lock()
	if m.byKey[j.key] == j {
		delete(m.byKey, j.key)
	}
	m.mu.Unlock()
}

// List returns a snapshot of every tracked job in creation order.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	m.purgeLocked(time.Now())
	js := make([]*Job, len(m.order))
	copy(js, m.order)
	m.mu.Unlock()
	out := make([]Snapshot, len(js))
	for i, j := range js {
		out[i] = j.Snapshot()
	}
	return out
}

// Stats returns queue and pool gauges for health reporting.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.purgeLocked(time.Now())
	return Stats{
		Queued:    len(m.fifo),
		QueueCap:  m.opt.QueueDepth,
		Running:   m.running,
		Workers:   m.opt.Workers,
		Retained:  len(m.jobs),
		Submitted: m.submitted,
		Coalesced: m.coalesced,
	}
}

// Shutdown stops the manager gracefully: new submissions fail with
// ErrClosed, still-queued jobs are cancelled, and running jobs drain
// — Shutdown returns once every worker is idle, or with ctx's error
// if the deadline expires first (workers keep draining regardless).
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
	} else {
		m.closed = true
		pending := make([]*Job, len(m.fifo))
		copy(pending, m.fifo)
		m.cond.Broadcast()
		m.mu.Unlock()
		// Queued jobs are cancelled; running jobs are left to finish
		// (that is the drain).
		for _, j := range pending {
			m.cancelJob(j)
		}
	}
	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// purgeLocked forgets terminal jobs older than the TTL. Caller holds
// m.mu.
func (m *Manager) purgeLocked(now time.Time) {
	kept := m.order[:0]
	for _, j := range m.order {
		s := j.Snapshot()
		if s.State.Terminal() && !s.Finished.IsZero() && now.Sub(s.Finished) > m.opt.TTL {
			delete(m.jobs, j.id)
			if m.byKey[j.key] == j {
				delete(m.byKey, j.key)
			}
			continue
		}
		kept = append(kept, j)
	}
	m.order = kept
}

// worker pops FIFO jobs until the manager is closed and drained.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.fifo) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.fifo) == 0 {
			m.mu.Unlock()
			return
		}
		j := m.fifo[0]
		m.fifo[0] = nil
		m.fifo = m.fifo[1:]
		m.mu.Unlock()
		m.execute(j)
	}
}

// execute runs one job to a terminal state.
func (m *Manager) execute(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	started, created := j.started, j.created
	j.mu.Unlock()

	wait := started.Sub(created)
	j.trace.Observe("queue_wait", wait)
	if m.opt.Metrics != nil {
		m.opt.Metrics.QueueWait.Observe(wait.Seconds())
	}

	m.mu.Lock()
	m.running++
	m.mu.Unlock()

	// The run context is the job's cancel context, tightened by the
	// job's deadline when one is set. The two are distinguishable
	// afterwards: a fired deadline leaves j.cctx clean.
	rctx := j.cctx
	cancel := context.CancelFunc(func() {})
	if j.timeout > 0 {
		rctx, cancel = context.WithTimeout(rctx, j.timeout)
	}

	// The job's trace rides the run context so the advise core can
	// report its stages (obs.TraceFrom) without the jobs layer
	// knowing what a stage is.
	spRun := j.trace.Start("run")
	res, err := m.runContained(j, obs.ContextWithTrace(rctx, j.trace))
	spRun.End()
	timedOut := j.timeout > 0 && rctx.Err() == context.DeadlineExceeded && j.cctx.Err() == nil
	cancel()
	if m.opt.Metrics != nil {
		m.opt.Metrics.Run.Observe(time.Since(started).Seconds())
	}

	m.mu.Lock()
	m.running--
	m.mu.Unlock()

	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		// A run that completed wins over a cancel that raced in at
		// the finish line: the result exists, discarding it would
		// only desynchronize the job from the caches it already fed.
		j.state = StateDone
		j.res = res
	case timedOut && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)):
		j.state = StateTimedOut
		j.err = fmt.Errorf("jobs: job %s exceeded its %v deadline: %w", j.id, j.timeout, context.DeadlineExceeded)
	case errors.Is(err, context.Canceled) || j.cctx.Err() != nil:
		j.state = StateCancelled
		j.err = err
	default:
		j.state = StateFailed
		j.err = err
	}
	terminal := j.state
	close(j.done)
	j.mu.Unlock()
	if terminal != StateDone {
		// Only successful results may serve future submissions of
		// the same key.
		m.dropKeyFor(j)
	}
}

// runContained invokes the job's RunFunc with panic containment: a
// panicking advise marks its own job failed with a descriptive error
// and the worker (and process) live on. The stack goes to the log —
// the panic is still a bug to fix — and PanicsRecovered counts it so
// dashboards see containment events even when nobody reads logs.
func (m *Manager) runContained(j *Job, ctx context.Context) (res *core.Result, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if m.opt.Metrics != nil {
			m.opt.Metrics.PanicsRecovered.Inc()
		}
		log.Printf("jobs: panic recovered in job %s: %v\n%s", j.id, r, debug.Stack())
		res, err = nil, fmt.Errorf("jobs: panic recovered in job %s: %v", j.id, r)
	}()
	if ferr := fault.Inject("jobs.run"); ferr != nil {
		return nil, fmt.Errorf("jobs: job %s: %w", j.id, ferr)
	}
	return j.run(ctx, j.setProgress)
}
