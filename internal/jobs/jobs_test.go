// Tests for the async job subsystem: lifecycle states, FIFO
// backpressure, single-flight coalescing, TTL retention,
// cancellation of queued and running jobs, graceful drain, and a
// concurrent submit/cancel/poll hammer for the -race job.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"charles/internal/core"
	"charles/internal/obs"
)

// blockingRun returns a RunFunc that parks until release is closed
// (or its context is cancelled), counting executions.
func blockingRun(runs *atomic.Int64, release <-chan struct{}) RunFunc {
	return func(ctx context.Context, progress core.ProgressFunc) (*core.Result, error) {
		runs.Add(1)
		if progress != nil {
			progress(core.Progress{Phase: core.PhaseCuts, Done: 1, Total: 1})
		}
		select {
		case <-release:
			return &core.Result{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// instantRun completes immediately.
func instantRun(runs *atomic.Int64) RunFunc {
	return func(ctx context.Context, progress core.ProgressFunc) (*core.Result, error) {
		runs.Add(1)
		return &core.Result{}, nil
	}
}

// waitState polls the job until it reaches want or the deadline
// expires.
func waitState(t *testing.T, m *Manager, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if snap.State == want {
			return snap
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %v", id, want)
	return Snapshot{}
}

func shutdown(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestJobLifecycle(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer shutdown(t, m)
	var runs atomic.Int64
	release := make(chan struct{})
	j, err := m.Submit("k", blockingRun(&runs, release))
	if err != nil {
		t.Fatal(err)
	}
	snap := waitState(t, m, j.ID(), StateRunning)
	if snap.Started.IsZero() || snap.Created.IsZero() {
		t.Fatal("running job missing timestamps")
	}
	if snap.Progress.Phase != core.PhaseCuts {
		t.Fatalf("progress not threaded: %+v", snap.Progress)
	}
	close(release)
	<-j.Done()
	snap = waitState(t, m, j.ID(), StateDone)
	if snap.Result == nil || snap.Err != nil {
		t.Fatalf("done job: result=%v err=%v", snap.Result, snap.Err)
	}
	if snap.Finished.Before(snap.Started) {
		t.Fatal("finished before started")
	}
	if runs.Load() != 1 {
		t.Fatalf("runs = %d", runs.Load())
	}
}

func TestQueueBackpressure(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 1})
	defer shutdown(t, m)
	var runs atomic.Int64
	release := make(chan struct{})
	a, err := m.Submit("a", blockingRun(&runs, release))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, a.ID(), StateRunning) // worker occupied, queue empty
	b, err := m.Submit("b", blockingRun(&runs, release))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("c", blockingRun(&runs, release)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submission: err = %v, want ErrQueueFull", err)
	}
	st := m.Stats()
	if st.Queued != 1 || st.Running != 1 || st.QueueCap != 1 {
		t.Fatalf("stats = %+v", st)
	}
	close(release)
	waitState(t, m, a.ID(), StateDone)
	waitState(t, m, b.ID(), StateDone)
	// Capacity freed: submissions flow again.
	if _, err := m.Submit("d", instantRun(&runs)); err != nil {
		t.Fatalf("post-drain submission: %v", err)
	}
}

// TestSingleFlightCoalesce pins the acceptance criterion: M
// identical concurrent submissions execute exactly one run and share
// one job id.
func TestSingleFlightCoalesce(t *testing.T) {
	m := NewManager(Options{Workers: 2})
	defer shutdown(t, m)
	var runs atomic.Int64
	release := make(chan struct{})
	const M = 8
	ids := make([]string, M)
	var wg sync.WaitGroup
	wg.Add(M)
	for i := 0; i < M; i++ {
		go func(i int) {
			defer wg.Done()
			j, err := m.Submit("same", blockingRun(&runs, release))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = j.ID()
		}(i)
	}
	wg.Wait()
	for i := 1; i < M; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("submission %d got job %s, want %s", i, ids[i], ids[0])
		}
	}
	close(release)
	waitState(t, m, ids[0], StateDone)
	if runs.Load() != 1 {
		t.Fatalf("%d identical submissions ran %d advises, want exactly 1", M, runs.Load())
	}
	st := m.Stats()
	if st.Submitted != 1 || st.Coalesced != M-1 {
		t.Fatalf("submitted/coalesced = %d/%d, want 1/%d", st.Submitted, st.Coalesced, M-1)
	}
}

func TestHotHitAndTTLExpiry(t *testing.T) {
	m := NewManager(Options{Workers: 1, TTL: 80 * time.Millisecond})
	defer shutdown(t, m)
	var runs atomic.Int64
	j, err := m.Submit("k", instantRun(&runs))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID(), StateDone)
	// Within the TTL the done job itself answers resubmission.
	j2, err := m.Submit("k", instantRun(&runs))
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID() != j.ID() || runs.Load() != 1 {
		t.Fatalf("hot hit re-ran: id %s vs %s, runs %d", j2.ID(), j.ID(), runs.Load())
	}
	time.Sleep(160 * time.Millisecond)
	if _, err := m.Get(j.ID()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired job still pollable: err = %v", err)
	}
	j3, err := m.Submit("k", instantRun(&runs))
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID() == j.ID() {
		t.Fatal("expired job reused")
	}
	waitState(t, m, j3.ID(), StateDone)
	if runs.Load() != 2 {
		t.Fatalf("post-expiry submission did not run fresh: runs = %d", runs.Load())
	}
}

func TestCancelQueued(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 2})
	defer shutdown(t, m)
	var runs atomic.Int64
	release := make(chan struct{})
	a, _ := m.Submit("a", blockingRun(&runs, release))
	waitState(t, m, a.ID(), StateRunning)
	b, err := m.Submit("b", blockingRun(&runs, release))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(b.ID()); err != nil {
		t.Fatal(err)
	}
	snap := waitState(t, m, b.ID(), StateCancelled)
	if !errors.Is(snap.Err, context.Canceled) {
		t.Fatalf("cancelled job err = %v", snap.Err)
	}
	select {
	case <-b.Done():
	default:
		t.Fatal("cancelled queued job's Done channel still open")
	}
	close(release)
	waitState(t, m, a.ID(), StateDone)
	if runs.Load() != 1 {
		t.Fatalf("cancelled queued job ran anyway: runs = %d", runs.Load())
	}
	// A fresh submission of the cancelled key runs.
	c, err := m.Submit("b", instantRun(&runs))
	if err != nil {
		t.Fatal(err)
	}
	if c.ID() == b.ID() {
		t.Fatal("cancelled job coalesced a new submission")
	}
}

func TestCancelRunning(t *testing.T) {
	m := NewManager(Options{Workers: 2})
	defer shutdown(t, m)
	var runs atomic.Int64
	release := make(chan struct{})
	defer close(release)
	j, _ := m.Submit("k", blockingRun(&runs, release))
	waitState(t, m, j.ID(), StateRunning)
	if err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	// A cancelled running job is unmapped at once: a new submission
	// of the key must run fresh, not join the doomed job.
	j2, err := m.Submit("k", instantRun(&runs))
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID() == j.ID() {
		t.Fatal("new submission coalesced onto a cancelled running job")
	}
	waitState(t, m, j2.ID(), StateDone)
	snap := waitState(t, m, j.ID(), StateCancelled)
	if snap.Result != nil {
		t.Fatal("cancelled job has a result")
	}
	// Cancelling a terminal job is a no-op, not an error.
	if err := m.Cancel(j.ID()); err != nil {
		t.Fatalf("re-cancel: %v", err)
	}
}

// TestCancelQueuedFreesSlot pins the backpressure fix: a cancelled
// queued job releases its queue slot immediately, rather than
// holding queue-full until a worker drains the corpse.
func TestCancelQueuedFreesSlot(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 1})
	defer shutdown(t, m)
	var runs atomic.Int64
	release := make(chan struct{})
	a, _ := m.Submit("a", blockingRun(&runs, release))
	waitState(t, m, a.ID(), StateRunning)
	b, _ := m.Submit("b", blockingRun(&runs, release))
	if _, err := m.Submit("c", instantRun(&runs)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue should be full: %v", err)
	}
	if err := m.Cancel(b.ID()); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Queued != 0 {
		t.Fatalf("cancelled queued job still counted: Queued = %d", st.Queued)
	}
	// The slot is free while the worker is still busy with a.
	c, err := m.Submit("c", instantRun(&runs))
	if err != nil {
		t.Fatalf("slot not reclaimed after cancel: %v", err)
	}
	close(release)
	waitState(t, m, c.ID(), StateDone)
	if snap, _ := m.Get(b.ID()); snap.State != StateCancelled {
		t.Fatalf("b = %v", snap.State)
	}
	if runs.Load() != 2 { // a and c ran; b never did
		t.Fatalf("runs = %d, want 2", runs.Load())
	}
}

// TestLateCancelKeepsCompletedResult pins the finish-line race: a
// run that returned successfully stays done (with its result) even
// when a cancel landed during its last instants.
func TestLateCancelKeepsCompletedResult(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer shutdown(t, m)
	finishing := make(chan struct{})
	proceed := make(chan struct{})
	j, _ := m.Submit("k", func(ctx context.Context, p core.ProgressFunc) (*core.Result, error) {
		close(finishing)
		<-proceed // the cancel lands here, after the work is done
		return &core.Result{}, nil
	})
	<-finishing
	if err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	close(proceed)
	<-j.Done()
	snap, err := m.Get(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateDone || snap.Result == nil {
		t.Fatalf("late-cancelled completed job: state=%v result=%v", snap.State, snap.Result)
	}
}

func TestFailedJobsNeverCoalesceOrServe(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer shutdown(t, m)
	var runs atomic.Int64
	failing := func(ctx context.Context, progress core.ProgressFunc) (*core.Result, error) {
		runs.Add(1)
		return nil, errors.New("boom")
	}
	a, _ := m.Submit("k", failing)
	snap := waitState(t, m, a.ID(), StateFailed)
	if snap.Err == nil || snap.Result != nil {
		t.Fatalf("failed job: err=%v result=%v", snap.Err, snap.Result)
	}
	b, err := m.Submit("k", failing)
	if err != nil {
		t.Fatal(err)
	}
	if b.ID() == a.ID() {
		t.Fatal("failed job answered a resubmission")
	}
	waitState(t, m, b.ID(), StateFailed)
	if runs.Load() != 2 {
		t.Fatalf("runs = %d, want 2", runs.Load())
	}
}

func TestShutdownDrainsRunningCancelsQueued(t *testing.T) {
	m := NewManager(Options{Workers: 1, QueueDepth: 2})
	var runs atomic.Int64
	release := make(chan struct{})
	a, _ := m.Submit("a", blockingRun(&runs, release))
	waitState(t, m, a.ID(), StateRunning)
	b, _ := m.Submit("b", blockingRun(&runs, release))

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- m.Shutdown(ctx)
	}()
	// The queued job is cancelled promptly, while a is still running.
	waitState(t, m, b.ID(), StateCancelled)
	if _, err := m.Submit("c", instantRun(&runs)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after shutdown: err = %v, want ErrClosed", err)
	}
	select {
	case err := <-done:
		t.Fatalf("shutdown returned before the running job drained: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release) // let a finish
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if s, _ := m.Get(a.ID()); s.State != StateDone {
		t.Fatalf("running job was not drained to completion: %v", s.State)
	}
}

func TestShutdownDeadline(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	var runs atomic.Int64
	release := make(chan struct{})
	defer close(release)
	a, _ := m.Submit("a", blockingRun(&runs, release))
	waitState(t, m, a.ID(), StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown with stuck job: err = %v, want DeadlineExceeded", err)
	}
}

// TestConcurrentSubmitCancelPoll is the -race hammer: many
// goroutines submitting, cancelling, polling and listing against one
// manager must neither race nor deadlock.
func TestConcurrentSubmitCancelPoll(t *testing.T) {
	m := NewManager(Options{Workers: 4, QueueDepth: 64, TTL: 20 * time.Millisecond})
	defer shutdown(t, m)
	var runs atomic.Int64
	const goroutines = 8
	const iters = 60
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("k%d", (g+i)%5)
				j, err := m.Submit(key, instantRun(&runs))
				if err != nil && !errors.Is(err, ErrQueueFull) {
					t.Errorf("submit: %v", err)
					return
				}
				if j != nil {
					switch i % 3 {
					case 0:
						m.Cancel(j.ID())
					case 1:
						m.Get(j.ID())
					default:
						<-j.Done()
					}
				}
				if i%10 == 0 {
					m.List()
					m.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestGroupSingleFlight pins the synchronous coalescing helper the
// server's result-cache path shares: concurrent calls under one key
// run fn once, and nothing is retained afterwards (a later call runs
// fresh — errors are never cached).
func TestGroupSingleFlight(t *testing.T) {
	var g Group
	var runs atomic.Int64
	release := make(chan struct{})
	const M = 6
	var wg sync.WaitGroup
	wg.Add(M)
	shared := make([]bool, M)
	for i := 0; i < M; i++ {
		go func(i int) {
			defer wg.Done()
			res, err, sh := g.Do("k", func() (*core.Result, error) {
				runs.Add(1)
				<-release
				return &core.Result{}, nil
			})
			if err != nil || res == nil {
				t.Errorf("Do: res=%v err=%v", res, err)
			}
			shared[i] = sh
		}(i)
	}
	// Let the leader register and give the others time to join its
	// flight before releasing it.
	for runs.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	// Every caller either ran fn itself or shared a flight; with the
	// join window above, all but the leader share. A caller that
	// raced past the flight re-runs legitimately, so pin the
	// invariant and that coalescing actually happened.
	nShared := 0
	for _, sh := range shared {
		if sh {
			nShared++
		}
	}
	if got := int(runs.Load()); got != M-nShared {
		t.Fatalf("runs = %d with %d sharers, want %d", got, nShared, M-nShared)
	}
	if nShared < 1 {
		t.Fatal("no caller shared the flight — nothing coalesced")
	}
	// The flight is forgotten once done: a new call runs again, and
	// its error is handed out, not retained.
	before := runs.Load()
	if _, err, sh := g.Do("k", func() (*core.Result, error) {
		runs.Add(1)
		return nil, errors.New("boom")
	}); sh || err == nil {
		t.Fatalf("completed flight was retained (shared=%v err=%v)", sh, err)
	}
	if runs.Load() != before+1 {
		t.Fatalf("second flight did not run: runs = %d", runs.Load())
	}
}

// TestJobMetricsAndTrace pins the jobs-layer observability: the
// manager's histograms see every executed job, and each job carries a
// trace whose queue_wait and run stages land in its snapshot — with
// the job's context carrying the trace so the advisor core's stages
// nest into the same tree.
func TestJobMetricsAndTrace(t *testing.T) {
	jm := &Metrics{
		QueueWait: obs.NewHistogram(obs.DefaultLatencyBuckets()),
		Run:       obs.NewHistogram(obs.DefaultLatencyBuckets()),
	}
	m := NewManager(Options{Workers: 1, Metrics: jm})
	defer shutdown(t, m)
	run := func(ctx context.Context, progress core.ProgressFunc) (*core.Result, error) {
		// The core would do exactly this with the request's ctx.
		sp := obs.TraceFrom(ctx).Start("core_stage")
		defer sp.End()
		return &core.Result{}, nil
	}
	j, err := m.Submit("k", run)
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	snap := waitState(t, m, j.ID(), StateDone)
	stages := map[string]int64{}
	var walk func([]obs.StageSummary)
	walk = func(sts []obs.StageSummary) {
		for _, st := range sts {
			stages[st.Name] = st.Count
			walk(st.Children)
		}
	}
	walk(snap.Trace)
	for _, want := range []string{"queue_wait", "run", "core_stage"} {
		if stages[want] == 0 {
			t.Errorf("job trace missing stage %q: %+v", want, snap.Trace)
		}
	}
	if got := jm.QueueWait.Count(); got != 1 {
		t.Errorf("queue-wait histogram saw %d jobs, want 1", got)
	}
	if got := jm.Run.Count(); got != 1 {
		t.Errorf("run histogram saw %d jobs, want 1", got)
	}
}
