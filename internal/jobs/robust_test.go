// Tests for the survivability layer: panic containment, job
// deadlines (timed_out vs cancelled), the jobs.run failpoint, and
// per-client quota admission.
package jobs

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"charles/internal/core"
	"charles/internal/fault"
	"charles/internal/leakcheck"
	"charles/internal/obs"
)

func TestPanicContained(t *testing.T) {
	leakcheck.Check(t)
	reg := obs.NewRegistry()
	panics := reg.NewCounter("charles_panics_recovered_total", "test")
	m := NewManager(Options{Workers: 1, Metrics: &Metrics{PanicsRecovered: panics}})
	defer shutdown(t, m)

	j, err := m.Submit("boom", func(ctx context.Context, progress core.ProgressFunc) (*core.Result, error) {
		panic("synthetic advise bug")
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	snap := waitState(t, m, j.ID(), StateFailed)
	if snap.Err == nil || !strings.Contains(snap.Err.Error(), "panic recovered") || !strings.Contains(snap.Err.Error(), "synthetic advise bug") {
		t.Fatalf("panic error = %v, want descriptive panic-recovered error", snap.Err)
	}
	if got := panics.Value(); got != 1 {
		t.Fatalf("charles_panics_recovered_total = %d, want 1", got)
	}

	// The worker that contained the panic is still alive: the next
	// job on the same single-worker pool must run normally.
	var runs atomic.Int64
	j2, err := m.Submit("after", instantRun(&runs))
	if err != nil {
		t.Fatal(err)
	}
	<-j2.Done()
	if snap := waitState(t, m, j2.ID(), StateDone); snap.Err != nil {
		t.Fatalf("job after panic: %v", snap.Err)
	}
}

func TestJobTimeoutIsTimedOutNotCancelled(t *testing.T) {
	leakcheck.Check(t)
	m := NewManager(Options{Workers: 1, Timeout: 30 * time.Millisecond})
	defer shutdown(t, m)

	var runs atomic.Int64
	j, err := m.Submit("slow", blockingRun(&runs, make(chan struct{})))
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	snap := waitState(t, m, j.ID(), StateTimedOut)
	if snap.State.String() != "timed_out" {
		t.Fatalf("state string = %q", snap.State.String())
	}
	if !snap.State.Terminal() {
		t.Fatal("timed_out must be terminal")
	}
	if snap.Err == nil || !strings.Contains(snap.Err.Error(), "deadline") || !errors.Is(snap.Err, context.DeadlineExceeded) {
		t.Fatalf("timeout error = %v, want a descriptive DeadlineExceeded", snap.Err)
	}

	// An explicit cancel on an identical run stays cancelled — the
	// two terminal states must not blur.
	j2, err := m.Submit("slow2", blockingRun(&runs, make(chan struct{})))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j2.ID(), StateRunning)
	if err := m.Cancel(j2.ID()); err != nil {
		t.Fatal(err)
	}
	<-j2.Done()
	if snap := waitState(t, m, j2.ID(), StateCancelled); snap.State == StateTimedOut {
		t.Fatal("cancelled job reported timed_out")
	}
}

func TestSubmitTimeoutTightensNeverExtends(t *testing.T) {
	m := NewManager(Options{Workers: 1, Timeout: time.Hour})
	defer shutdown(t, m)
	var runs atomic.Int64
	release := make(chan struct{})
	defer close(release)

	j, err := m.SubmitTimeout("a", blockingRun(&runs, release), 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if j.timeout != 10*time.Millisecond {
		t.Fatalf("override timeout = %v, want 10ms", j.timeout)
	}
	j2, err := m.SubmitTimeout("b", blockingRun(&runs, release), 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if j2.timeout != time.Hour {
		t.Fatalf("timeout = %v: an override must not extend the manager deadline", j2.timeout)
	}
	j3, err := m.SubmitTimeout("c", blockingRun(&runs, release), 0)
	if err != nil {
		t.Fatal(err)
	}
	if j3.timeout != time.Hour {
		t.Fatalf("timeout = %v, want the manager default", j3.timeout)
	}
}

func TestTimedOutJobsNeverCoalesce(t *testing.T) {
	m := NewManager(Options{Workers: 1, Timeout: 20 * time.Millisecond})
	defer shutdown(t, m)
	var runs atomic.Int64
	j, err := m.Submit("k", blockingRun(&runs, make(chan struct{})))
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	waitState(t, m, j.ID(), StateTimedOut)

	release := make(chan struct{})
	close(release)
	j2, err := m.Submit("k", blockingRun(&runs, release))
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID() == j.ID() {
		t.Fatal("new submission coalesced onto a timed-out job")
	}
	<-j2.Done()
	waitState(t, m, j2.ID(), StateDone)
}

func TestRunFailpoint(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	if err := fault.Enable("jobs.run", "error(chaos says no)"); err != nil {
		t.Fatal(err)
	}
	m := NewManager(Options{Workers: 1})
	defer shutdown(t, m)
	var runs atomic.Int64
	j, err := m.Submit("k", instantRun(&runs))
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	snap := waitState(t, m, j.ID(), StateFailed)
	var inj *fault.InjectedError
	if !errors.As(snap.Err, &inj) || !strings.Contains(snap.Err.Error(), "chaos says no") {
		t.Fatalf("err = %v, want wrapped InjectedError", snap.Err)
	}
	if runs.Load() != 0 {
		t.Fatal("RunFunc executed despite injected fault")
	}

	// Disarm; the same key must run clean (failed jobs don't coalesce).
	fault.Reset()
	j2, err := m.Submit("k", instantRun(&runs))
	if err != nil {
		t.Fatal(err)
	}
	<-j2.Done()
	waitState(t, m, j2.ID(), StateDone)
}

func TestShutdownLeaksNothing(t *testing.T) {
	leakcheck.Check(t)
	m := NewManager(Options{Workers: 4, QueueDepth: 16})
	var runs atomic.Int64
	release := make(chan struct{})
	for i := 0; i < 8; i++ {
		if _, err := m.Submit(string(rune('a'+i)), blockingRun(&runs, release)); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	shutdown(t, m)
}

func TestGroupPanicReleasesWaiters(t *testing.T) {
	var g Group
	entered := make(chan struct{})
	waited := make(chan error, 1)
	go func() {
		// The waiter joins the flight the panicking caller opened.
		<-entered
		_, err, shared := g.Do("k", func() (*core.Result, error) {
			t.Error("waiter ran its own fn: flight was not joined")
			return nil, nil
		})
		if !shared {
			waited <- errors.New("waiter did not share the flight")
			return
		}
		waited <- err
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic was swallowed by Group.Do")
			}
		}()
		g.Do("k", func() (*core.Result, error) {
			close(entered)
			time.Sleep(20 * time.Millisecond) // let the waiter join
			panic("boom in flight")
		})
	}()
	select {
	case err := <-waited:
		if err == nil || !strings.Contains(err.Error(), "panic in single-flight") {
			t.Fatalf("waiter error = %v, want a descriptive panic error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter still blocked: the flight was never released")
	}
	// The key is free again.
	if _, err, shared := g.Do("k", func() (*core.Result, error) { return &core.Result{}, nil }); err != nil || shared {
		t.Fatalf("key not released after panic: err=%v shared=%v", err, shared)
	}
}

func TestQuotaAllowAndRefill(t *testing.T) {
	q := NewQuota(1, 2) // 1 token/s, burst 2
	now := time.Unix(0, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := q.allowAt("alice", now); !ok {
			t.Fatalf("burst token %d refused", i)
		}
	}
	ok, retry := q.allowAt("alice", now)
	if ok {
		t.Fatal("third immediate token allowed past burst")
	}
	if retry < time.Second {
		t.Fatalf("retry-after = %v, want >= 1s", retry)
	}
	// A different client has its own bucket.
	if ok, _ := q.allowAt("bob", now); !ok {
		t.Fatal("independent client refused")
	}
	// After a refill interval, alice is admitted again.
	if ok, _ := q.allowAt("alice", now.Add(1100*time.Millisecond)); !ok {
		t.Fatal("refilled token refused")
	}
	// Refill caps at burst: a long idle does not bank unlimited tokens.
	later := now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := q.allowAt("alice", later); !ok {
			t.Fatalf("post-idle token %d refused", i)
		}
	}
	if ok, _ := q.allowAt("alice", later); ok {
		t.Fatal("idle banked more than burst")
	}
}

func TestQuotaNilAdmitsEverything(t *testing.T) {
	var q *Quota
	if q != NewQuota(0, 8) {
		t.Fatal("NewQuota(0, _) must be nil (disabled)")
	}
	for i := 0; i < 1000; i++ {
		if ok, retry := q.Allow("anyone"); !ok || retry != 0 {
			t.Fatal("nil quota refused a request")
		}
	}
}

func TestQuotaBucketTableBounded(t *testing.T) {
	q := NewQuota(1, 1)
	now := time.Unix(0, 0)
	for i := 0; i < maxBuckets+10; i++ {
		q.allowAt(string(rune(i))+"-client", now)
	}
	q.mu.Lock()
	n := len(q.buckets)
	q.mu.Unlock()
	if n > maxBuckets {
		t.Fatalf("bucket table grew to %d, bound is %d", n, maxBuckets)
	}
}
