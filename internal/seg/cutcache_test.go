package seg

import (
	"fmt"
	"testing"

	"charles/internal/engine"
	"charles/internal/sdl"
)

// cutCacheTable is large enough (≥ cutStateMinRows) that cut entries
// retain refreshable state, chunked small enough that mutations dirty
// a strict subset of chunks.
func cutCacheTable(t *testing.T) *engine.Table {
	t.Helper()
	const rows = 2 * cutStateMinRows
	ints := make([]int64, rows)
	strs := make([]string, rows)
	for i := range ints {
		ints[i] = int64(i % 1000)
		strs[i] = [4]string{"fluit", "jacht", "pinas", "galjoot"}[i%4]
	}
	tab := engine.MustNewTable("t",
		engine.NewIntColumn("v", ints),
		engine.NewStringColumn("s", strs),
	)
	tab.SetChunkRows(1024)
	return tab
}

// childKeys renders a cut result in comparable form.
func childKeys(t *testing.T, ev *Evaluator, q sdl.Query, attr string) []string {
	t.Helper()
	children, err := CutQuery(ev, q, attr, DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(children))
	for i, c := range children {
		keys[i] = c.Key()
	}
	return keys
}

// TestCutCacheVersionEqualHit pins that a repeated cut on an
// unmutated table is served from the cache: identical pieces, no new
// cut-point computation.
func TestCutCacheVersionEqualHit(t *testing.T) {
	tab := cutCacheTable(t)
	ev := NewEvaluator(tab)
	ctx := sdl.ContextAll(tab)
	first := childKeys(t, ev, ctx, "v")
	calcs := ev.Counters().CutPointCalcs
	if calcs == 0 {
		t.Fatal("priming cut computed no points")
	}
	second := childKeys(t, ev, ctx, "v")
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("cached cut diverged: %v vs %v", first, second)
	}
	after := ev.Counters()
	if after.CutPointCalcs != calcs {
		t.Fatalf("version-equal hit recomputed points: %d -> %d", calcs, after.CutPointCalcs)
	}
	if after.CutRefreshes != 0 {
		t.Fatalf("unmutated table took %d cut refreshes", after.CutRefreshes)
	}
}

// TestCutCacheRefreshAfterMutation pins the incremental path: after
// mutations that move the median and grow the string dictionary, a
// warm evaluator's cuts go through the splice refresh (CutRefreshes
// advances) and match a cold evaluator's cuts exactly.
func TestCutCacheRefreshAfterMutation(t *testing.T) {
	tab := cutCacheTable(t)
	ev := NewEvaluator(tab)
	ctx := sdl.ContextAll(tab)
	childKeys(t, ev, ctx, "v")
	childKeys(t, ev, ctx, "s")

	// Shift the upper half of one chunk far right (moves the median)
	// and append rows with a brand-new string value (grows the dict).
	sel := make(engine.Selection, 512)
	vals := make([]engine.Value, len(sel))
	for i := range sel {
		sel[i] = int32(3*1024 + i)
		vals[i] = engine.Int(int64(100000 + i))
	}
	if err := tab.UpdateRows(sel, "v", vals); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := tab.AppendRows([]engine.Value{engine.Int(7), engine.String_("kof")}); err != nil {
			t.Fatal(err)
		}
	}

	cold := NewEvaluator(tab)
	for _, attr := range []string{"v", "s"} {
		warmKeys := childKeys(t, ev, ctx, attr)
		coldKeys := childKeys(t, cold, ctx, attr)
		if fmt.Sprint(warmKeys) != fmt.Sprint(coldKeys) {
			t.Fatalf("%s: warm refresh diverged from cold cut:\nwarm %v\ncold %v", attr, warmKeys, coldKeys)
		}
	}
	if got := ev.Counters().CutRefreshes; got < 2 {
		t.Fatalf("CutRefreshes = %d, want ≥2 (int and string cuts)", got)
	}
	if got := cold.Counters().CutRefreshes; got != 0 {
		t.Fatalf("cold evaluator took %d cut refreshes", got)
	}
}

// TestCutCacheWidthChangeRecomputes pins the bail-out: a re-shard
// makes stamps chunk-incomparable, so the stale entry recomputes in
// full — and still matches a cold evaluator.
func TestCutCacheWidthChangeRecomputes(t *testing.T) {
	tab := cutCacheTable(t)
	ev := NewEvaluator(tab)
	ctx := sdl.ContextAll(tab)
	childKeys(t, ev, ctx, "v")
	if err := tab.AppendRows([]engine.Value{engine.Int(999999), engine.String_("kof")}); err != nil {
		t.Fatal(err)
	}
	tab.SetChunkRows(2048)
	warmKeys := childKeys(t, ev, ctx, "v")
	coldKeys := childKeys(t, NewEvaluator(tab), ctx, "v")
	if fmt.Sprint(warmKeys) != fmt.Sprint(coldKeys) {
		t.Fatalf("post-reshard cut diverged:\nwarm %v\ncold %v", warmKeys, coldKeys)
	}
	if got := ev.Counters().CutRefreshes; got != 0 {
		t.Fatalf("chunk-incomparable stamps took the refresh path (%d)", got)
	}
}

// TestCutCacheCachingOff pins that the ablation path bypasses the cut
// cache entirely and still answers identically.
func TestCutCacheCachingOff(t *testing.T) {
	tab := cutCacheTable(t)
	on := NewEvaluator(tab)
	off := NewEvaluator(tab)
	off.SetCaching(false)
	ctx := sdl.ContextAll(tab)
	for _, attr := range []string{"v", "s"} {
		a := childKeys(t, on, ctx, attr)
		b := childKeys(t, off, ctx, attr)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("%s: cached and uncached cuts diverged:\n%v\n%v", attr, a, b)
		}
	}
	if off.CacheLen() != 0 {
		t.Fatal("uncached evaluator stored selections")
	}
}
