package seg

import (
	"testing"

	"charles/internal/dataset"
	"charles/internal/engine"
	"charles/internal/obs"
	"charles/internal/sdl"
)

// TestWarmPairwiseAllocBudget is the allocation-regression guard for
// the steady-state pairwise path: on a warm server — selections
// cached, bitmaps packed, pair sides memoized, scratch pools primed —
// a CellCounts/INDEP/chi-squared evaluation must cost a handful of
// allocations (slice headers, memo keys, closures), never anything
// proportional to the cell grid or the table. The budgets are pinned
// with ~2× headroom over the measured steady state; if this test
// fails, some hot-loop buffer stopped being pooled or a conversion
// started materializing per call.
func TestWarmPairwiseAllocBudget(t *testing.T) {
	tab := dataset.VOC(20000, 7)
	ev := NewEvaluator(tab)
	// The budgets hold with a live recorder attached: instrumentation
	// is one atomic load plus atomic adds, never an allocation. A
	// no-op-recorder-only budget would let the /metrics path regress
	// unwatched.
	engine.SetMetrics(&engine.Metrics{
		ZoneSkip: &obs.Counter{}, ZoneTake: &obs.Counter{}, ZoneScan: &obs.Counter{},
		VectorKernels: &obs.Counter{}, FusedKernels: &obs.Counter{},
	})
	defer engine.SetMetrics(nil)
	em := &EvalMetrics{
		FullEvals: &obs.Counter{}, NarrowEvals: &obs.Counter{}, CacheHits: &obs.Counter{},
		CutPointCalcs: &obs.Counter{}, CutCacheHits: &obs.Counter{},
		DeltaRefreshes: &obs.Counter{}, CutRefreshes: &obs.Counter{},
		PairMemoHits: &obs.Counter{}, PairMemoMisses: &obs.Counter{},
	}
	ev.SetEvalMetrics(em)
	ctx, err := sdl.ContextOn(tab, "tonnage", "built")
	if err != nil {
		t.Fatal(err)
	}
	cutOpt := DefaultCutOptions()
	cutOpt.Arity = 4
	s1, ok, err := InitialCut(ev, ctx, "tonnage", cutOpt)
	if err != nil || !ok {
		t.Fatalf("InitialCut(tonnage): %v ok=%v", err, ok)
	}
	s2, ok, err := InitialCut(ev, ctx, "built", cutOpt)
	if err != nil || !ok {
		t.Fatalf("InitialCut(built): %v ok=%v", err, ok)
	}
	po := PairOptions{Workers: 1, Memo: NewPairMemo()}

	// Warm everything once: sides into the memo, packed bitmaps into
	// the evaluator cache, scratch buffers into the pools.
	if _, err := CellCountsOpt(ev, s1, s2, po); err != nil {
		t.Fatal(err)
	}
	if _, err := IndepOpt(ev, s1, s2, po); err != nil {
		t.Fatal(err)
	}
	if _, err := ChiSquareIndependentOpt(ev, s1, s2, 0.05, po); err != nil {
		t.Fatal(err)
	}

	checks := []struct {
		name   string
		budget float64
		run    func() error
	}{
		// CellCounts hands the table to the caller, so it legitimately
		// allocates the flat vector and the row headers — and nothing
		// else.
		{"CellCounts", 12, func() error {
			_, err := CellCountsOpt(ev, s1, s2, po)
			return err
		}},
		// Indep and ChiSquare consume the table internally and work
		// entirely in pooled scratch.
		{"Indep", 8, func() error {
			_, err := IndepOpt(ev, s1, s2, po)
			return err
		}},
		{"ChiSquare", 8, func() error {
			_, err := ChiSquareIndependentOpt(ev, s1, s2, 0.05, po)
			return err
		}},
	}
	for _, c := range checks {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var runErr error
			avg := testing.AllocsPerRun(200, func() {
				if err := c.run(); err != nil {
					runErr = err
				}
			})
			if runErr != nil {
				t.Fatal(runErr)
			}
			if avg > c.budget {
				t.Fatalf("warm %s averaged %.1f allocs/op, budget %.0f", c.name, avg, c.budget)
			}
			t.Logf("warm %s: %.1f allocs/op (budget %.0f)", c.name, avg, c.budget)
		})
	}
	if em.PairMemoHits.Value() == 0 {
		t.Error("live recorder saw no pair-memo hits on the warm path: the counters are not wired")
	}
}
