package seg

import (
	"reflect"
	"testing"

	"charles/internal/dataset"
	"charles/internal/engine"
	"charles/internal/sdl"
)

// selectBitmapQueries builds a spread of query shapes over VOC: the
// unconstrained context, single nominal and numeric predicates, and
// a multi-constraint conjunction (whose final predicate is the one
// the fused path scans).
func selectBitmapQueries(t *testing.T, tab *engine.Table) []sdl.Query {
	t.Helper()
	ctx := sdl.ContextAll(tab)
	qString := ctx.WithConstraint(sdl.SetC("type_of_boat", engine.String_("fluit"), engine.String_("jacht")))
	qRange := ctx.WithConstraint(sdl.RangeC("tonnage", engine.Int(100), engine.Int(700), true, false))
	qConj := qRange.WithConstraint(sdl.SetC("departure_harbour", engine.String_("Texel")))
	qEmpty := ctx.WithConstraint(sdl.SetC("type_of_boat", engine.String_("no-such-boat")))
	return []sdl.Query{ctx, qString, qRange, qConj, qEmpty}
}

// TestSelectBitmapMatchesPacked pins the fused evaluation tier to
// the pack-a-cached-selection tier: for every query shape,
// SelectBitmap on a cold evaluator (fused scan), on a warm one
// (cache hits), and with caching off must all equal packing the
// chunked selection, bit for bit.
func TestSelectBitmapMatchesPacked(t *testing.T) {
	tab := dataset.VOC(3000, 5)
	ref := NewEvaluator(tab)
	for _, q := range selectBitmapQueries(t, tab) {
		cs, err := ref.SelectChunked(q)
		if err != nil {
			t.Fatal(err)
		}
		want := engine.NewBitmapChunked(cs)

		cold := NewEvaluator(tab)
		fused, err := cold.SelectBitmap(q) // miss on both caches: fused scan
		if err != nil {
			t.Fatal(err)
		}
		if fused.Count() != want.Count() || !reflect.DeepEqual(fused.Selection(), want.Selection()) {
			t.Fatalf("%s: fused bitmap differs from packed selection", q)
		}
		hit, err := cold.SelectBitmap(q) // bitmap cache hit
		if err != nil {
			t.Fatal(err)
		}
		if hit != fused {
			t.Fatalf("%s: repeated SelectBitmap did not serve the cached bitmap", q)
		}

		warm := NewEvaluator(tab)
		if _, err := warm.SelectChunked(q); err != nil { // selection cached, bitmap not
			t.Fatal(err)
		}
		packed, err := warm.SelectBitmap(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(packed.Selection(), want.Selection()) {
			t.Fatalf("%s: pack-from-selection tier differs", q)
		}

		off := NewEvaluator(tab)
		off.SetCaching(false)
		uncached, err := off.SelectBitmap(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(uncached.Selection(), want.Selection()) {
			t.Fatalf("%s: caching-off fused bitmap differs", q)
		}
	}
}

// TestSelectBitmapErrors mirrors the vector path's error contract.
func TestSelectBitmapErrors(t *testing.T) {
	tab := dataset.VOC(500, 5)
	ev := NewEvaluator(tab)
	bad := sdl.ContextAll(tab).WithConstraint(sdl.SetC("ghost", engine.String_("x")))
	if _, err := ev.SelectBitmap(bad); err == nil {
		t.Fatal("SelectBitmap on unknown column did not error")
	}
}
