package seg

import (
	"fmt"
	"sync"
	"testing"

	"charles/internal/engine"
	"charles/internal/sdl"
)

// pairFixture builds two multi-segment segmentations over a 4096-row
// table plus a hand-built third whose segments straddle the bitmap
// density crossover: one dense majority segment and two sparse tail
// segments, so RepAuto exercises the mixed bitmap×vector cell path.
func pairFixture(t testing.TB) (*Evaluator, *Segmentation, *Segmentation, *Segmentation) {
	const n = 4096
	xs := make([]int64, n)
	ys := make([]int64, n)
	zs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i % 16)
		ys[i] = int64((i / 3) % 11)
		switch {
		case i%409 == 0: // ~10 rows: density ≈ 1/409, well under 1/64
			zs[i] = 1
		case i%487 == 1: // ~8 rows
			zs[i] = 2
		default:
			zs[i] = 0
		}
	}
	tab := engine.MustNewTable("pairs",
		engine.NewIntColumn("x", xs),
		engine.NewIntColumn("y", ys),
		engine.NewIntColumn("z", zs),
	)
	ev := NewEvaluator(tab)
	ctx, err := sdl.ContextOn(tab, "x", "y", "z")
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultCutOptions()
	opt.Arity = 4
	s1, ok, err := InitialCut(ev, ctx, "x", opt)
	if err != nil || !ok {
		t.Fatalf("InitialCut(x): %v ok=%v", err, ok)
	}
	s2, ok, err := InitialCut(ev, ctx, "y", opt)
	if err != nil || !ok {
		t.Fatalf("InitialCut(y): %v ok=%v", err, ok)
	}
	s3 := &Segmentation{CutAttrs: []string{"z"}}
	for v := int64(0); v < 3; v++ {
		q := ctx.WithConstraint(sdl.SetC("z", engine.Int(v)))
		count, err := ev.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		s3.Queries = append(s3.Queries, q)
		s3.Counts = append(s3.Counts, count)
	}
	return ev, s1, s2, s3
}

// pairGrid is the worker × representation sweep every equivalence
// test runs over.
func pairGrid() []PairOptions {
	var out []PairOptions
	for _, workers := range []int{1, 2, 4, 8} {
		for _, rep := range []SelectionRep{RepVector, RepBitmap, RepAuto} {
			out = append(out, PairOptions{Workers: workers, Rep: rep})
		}
	}
	return out
}

// TestCellCountsParallelMatchesSequential pins the tentpole
// guarantee cell-for-cell: the contingency table is identical at
// every worker count and representation. Run with -race, this also
// exercises the parallel cell loop for data races.
func TestCellCountsParallelMatchesSequential(t *testing.T) {
	ev, s1, s2, s3 := pairFixture(t)
	pairs := []struct {
		name string
		a, b *Segmentation
	}{
		{"dense×dense", s1, s2},
		{"dense×mixed", s1, s3},
		{"mixed×dense", s3, s2},
	}
	for _, pair := range pairs {
		want, err := CellCountsOpt(ev, pair.a, pair.b, PairOptions{Workers: 1, Rep: RepVector})
		if err != nil {
			t.Fatal(err)
		}
		if len(want) < 2 || len(want[0]) < 2 {
			t.Fatalf("%s: table %dx%d is too small to be meaningful", pair.name, len(want), len(want[0]))
		}
		for _, opt := range pairGrid() {
			got, err := CellCountsOpt(ev, pair.a, pair.b, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s %+v: %d rows, want %d", pair.name, opt, len(got), len(want))
			}
			for i := range want {
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("%s %+v: cell[%d][%d] = %d, want %d",
							pair.name, opt, i, j, got[i][j], want[i][j])
					}
				}
			}
		}
	}
}

// TestProductParallelMatchesSequential pins that the parallel
// product merges in (i, j) order: queries and counts are identical
// to the sequential nested loop at every width and representation.
func TestProductParallelMatchesSequential(t *testing.T) {
	ev, s1, _, s3 := pairFixture(t)
	want, err := ProductOpt(ev, s1, s3, PairOptions{Workers: 1, Rep: RepVector})
	if err != nil {
		t.Fatal(err)
	}
	if want.Depth() < 4 {
		t.Fatalf("product depth %d is too small to be meaningful", want.Depth())
	}
	for _, opt := range pairGrid() {
		got, err := ProductOpt(ev, s1, s3, opt)
		if err != nil {
			t.Fatal(err)
		}
		if got.Key() != want.Key() {
			t.Fatalf("%+v: product queries differ:\n got %s\nwant %s", opt, got.Key(), want.Key())
		}
		for i := range want.Counts {
			if got.Counts[i] != want.Counts[i] {
				t.Fatalf("%+v: count[%d] = %d, want %d", opt, i, got.Counts[i], want.Counts[i])
			}
		}
	}
}

// TestIndepAndChiSquareInvariantAcrossOptions pins exact float
// equality of INDEP (counts are integers, so entropy inputs are
// identical) and agreement of the chi-squared stopping rule.
func TestIndepAndChiSquareInvariantAcrossOptions(t *testing.T) {
	ev, s1, s2, s3 := pairFixture(t)
	for _, pair := range [][2]*Segmentation{{s1, s2}, {s1, s3}} {
		want, err := IndepOpt(ev, pair[0], pair[1], PairOptions{Workers: 1, Rep: RepVector})
		if err != nil {
			t.Fatal(err)
		}
		wantChi, err := ChiSquareIndependentOpt(ev, pair[0], pair[1], 0.05, PairOptions{Workers: 1, Rep: RepVector})
		if err != nil {
			t.Fatal(err)
		}
		for _, opt := range pairGrid() {
			got, err := IndepOpt(ev, pair[0], pair[1], opt)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%+v: INDEP = %v, want exactly %v", opt, got, want)
			}
			gotChi, err := ChiSquareIndependentOpt(ev, pair[0], pair[1], 0.05, opt)
			if err != nil {
				t.Fatal(err)
			}
			if gotChi != wantChi {
				t.Fatalf("%+v: chi-squared verdict %v, want %v", opt, gotChi, wantChi)
			}
		}
	}
}

// TestCellCountsConcurrentCallers drives the parallel cell loop from
// many goroutines sharing one evaluator — the multi-session shape —
// under -race.
func TestCellCountsConcurrentCallers(t *testing.T) {
	ev, s1, s2, s3 := pairFixture(t)
	want, err := CellCountsOpt(ev, s1, s2, PairOptions{Workers: 1, Rep: RepVector})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			opt := PairOptions{Workers: 1 + g%4, Rep: SelectionRep(g % 3)}
			got, err := CellCountsOpt(ev, s1, s2, opt)
			if err != nil {
				errs <- err
				return
			}
			for i := range want {
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						errs <- fmt.Errorf("goroutine %d: cell[%d][%d] = %d, want %d", g, i, j, got[i][j], want[i][j])
						return
					}
				}
			}
			if _, err := ProductOpt(ev, s1, s3, opt); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
