package seg

import (
	"testing"

	"charles/internal/engine"
	"charles/internal/sdl"
)

func TestSelectConjunction(t *testing.T) {
	tab, ev := figure2Table(t)
	_ = tab
	q := sdl.MustQuery(
		sdl.SetC("type", engine.String_("fluit")),
		sdl.ClosedRange("tonnage", engine.Int(1500), engine.Int(3000)),
	)
	sel, err := ev.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 { // fluit rows with tonnage 1800, 2000
		t.Fatalf("selection = %v, want 2 rows", sel)
	}
	if !sel.IsSorted() {
		t.Fatal("selection not sorted")
	}
}

func TestSelectCaches(t *testing.T) {
	_, ev := figure2Table(t)
	q := sdl.MustQuery(sdl.SetC("type", engine.String_("jacht")))
	if _, err := ev.Select(q); err != nil {
		t.Fatal(err)
	}
	before := ev.Counters()
	if _, err := ev.Select(q); err != nil {
		t.Fatal(err)
	}
	after := ev.Counters()
	if after.CacheHits != before.CacheHits+1 {
		t.Fatalf("second select did not hit cache: %+v -> %+v", before, after)
	}
	if after.FullEvals != before.FullEvals {
		t.Fatal("second select re-evaluated")
	}
}

func TestSetCachingOff(t *testing.T) {
	_, ev := figure2Table(t)
	ev.SetCaching(false)
	q := sdl.MustQuery(sdl.SetC("type", engine.String_("jacht")))
	if _, err := ev.Select(q); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Select(q); err != nil {
		t.Fatal(err)
	}
	c := ev.Counters()
	if c.CacheHits != 0 || c.FullEvals != 2 {
		t.Fatalf("caching off but counters = %+v", c)
	}
	if ev.CacheLen() != 0 {
		t.Fatal("cache populated while off")
	}
}

func TestNarrowMatchesFullEval(t *testing.T) {
	tab, ev := figure2Table(t)
	_ = tab
	parent := sdl.MustQuery(sdl.SetC("type", engine.String_("fluit")))
	parentSel, err := ev.Select(parent)
	if err != nil {
		t.Fatal(err)
	}
	c := sdl.ClosedRange("tonnage", engine.Int(0), engine.Int(2000))
	child := parent.WithConstraint(c)
	narrowed, err := ev.Narrow(parentSel, child, c)
	if err != nil {
		t.Fatal(err)
	}
	ev2 := NewEvaluator(tab)
	full, err := ev2.Select(child)
	if err != nil {
		t.Fatal(err)
	}
	if len(narrowed) != len(full) {
		t.Fatalf("narrow %v != full %v", narrowed, full)
	}
	for i := range narrowed {
		if narrowed[i] != full[i] {
			t.Fatalf("narrow %v != full %v", narrowed, full)
		}
	}
}

func TestSelectUnknownColumn(t *testing.T) {
	_, ev := figure2Table(t)
	q := sdl.MustQuery(sdl.ClosedRange("ghost", engine.Int(0), engine.Int(1)))
	if _, err := ev.Select(q); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestSelectRangeOnBoolRejected(t *testing.T) {
	tab := engine.MustNewTable("t", engine.NewBoolColumn("b", []bool{true, false}))
	ev := NewEvaluator(tab)
	q := sdl.MustQuery(sdl.RangeC("b", engine.Bool(false), engine.Bool(true), true, true))
	if _, err := ev.Select(q); err == nil {
		t.Fatal("range on bool accepted")
	}
}

func TestSelectStringRange(t *testing.T) {
	tab := engine.MustNewTable("t", engine.NewStringColumn("s", []string{"apple", "banana", "cherry"}))
	ev := NewEvaluator(tab)
	q := sdl.MustQuery(sdl.RangeC("s", engine.String_("b"), engine.String_("c"), true, false))
	sel, err := ev.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 1 || sel[0] != 1 {
		t.Fatalf("string range selected %v", sel)
	}
}

func TestSelectIntSetAndFloatSet(t *testing.T) {
	tab := engine.MustNewTable("t",
		engine.NewIntColumn("i", []int64{1, 2, 3, 2}),
		engine.NewFloatColumn("f", []float64{1.5, 2.5, 3.5, 2.5}),
	)
	ev := NewEvaluator(tab)
	q := sdl.MustQuery(sdl.SetC("i", engine.Int(2)))
	sel, err := ev.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("int set selected %v", sel)
	}
	q = sdl.MustQuery(sdl.SetC("f", engine.Float(2.5), engine.Float(9.9)))
	sel, err = ev.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("float set selected %v", sel)
	}
}

func TestCountersAndReset(t *testing.T) {
	_, ev := figure2Table(t)
	q := sdl.MustQuery(sdl.SetC("type", engine.String_("fluit")))
	if _, err := ev.Count(q); err != nil {
		t.Fatal(err)
	}
	if ev.Counters().FullEvals != 1 {
		t.Fatalf("counters = %+v", ev.Counters())
	}
	ev.ResetCounters()
	if ev.Counters().FullEvals != 0 {
		t.Fatal("ResetCounters did not reset")
	}
}

func TestCacheLimitBoundsEntries(t *testing.T) {
	tab, ev := figure2Table(t)
	_ = tab
	const limit = 8
	ev.SetCacheLimit(limit)
	// Far more distinct queries than the limit allows.
	for lo := int64(0); lo < 200; lo++ {
		q := sdl.MustQuery(sdl.ClosedRange("tonnage", engine.Int(lo), engine.Int(lo+100)))
		if _, err := ev.Select(q); err != nil {
			t.Fatal(err)
		}
	}
	// Per-shard rounding allows at most ceil(limit/shards) per shard.
	if n := ev.CacheLen(); n > limit+cacheShards {
		t.Fatalf("cache holds %d entries, limit %d", n, limit)
	}
	// Cached queries still answer correctly after evictions.
	q := sdl.MustQuery(sdl.ClosedRange("tonnage", engine.Int(0), engine.Int(100)))
	sel, err := ev.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range sel {
		if !sel.IsSorted() {
			t.Fatalf("row %d: unsorted selection after eviction", row)
		}
	}
}
