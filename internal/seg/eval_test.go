package seg

import (
	"fmt"
	"testing"

	"charles/internal/engine"
	"charles/internal/sdl"
)

func TestSelectConjunction(t *testing.T) {
	tab, ev := figure2Table(t)
	_ = tab
	q := sdl.MustQuery(
		sdl.SetC("type", engine.String_("fluit")),
		sdl.ClosedRange("tonnage", engine.Int(1500), engine.Int(3000)),
	)
	sel, err := ev.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 { // fluit rows with tonnage 1800, 2000
		t.Fatalf("selection = %v, want 2 rows", sel)
	}
	if !sel.IsSorted() {
		t.Fatal("selection not sorted")
	}
}

func TestSelectCaches(t *testing.T) {
	_, ev := figure2Table(t)
	q := sdl.MustQuery(sdl.SetC("type", engine.String_("jacht")))
	if _, err := ev.Select(q); err != nil {
		t.Fatal(err)
	}
	before := ev.Counters()
	if _, err := ev.Select(q); err != nil {
		t.Fatal(err)
	}
	after := ev.Counters()
	if after.CacheHits != before.CacheHits+1 {
		t.Fatalf("second select did not hit cache: %+v -> %+v", before, after)
	}
	if after.FullEvals != before.FullEvals {
		t.Fatal("second select re-evaluated")
	}
}

func TestSetCachingOff(t *testing.T) {
	_, ev := figure2Table(t)
	ev.SetCaching(false)
	q := sdl.MustQuery(sdl.SetC("type", engine.String_("jacht")))
	if _, err := ev.Select(q); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Select(q); err != nil {
		t.Fatal(err)
	}
	c := ev.Counters()
	if c.CacheHits != 0 || c.FullEvals != 2 {
		t.Fatalf("caching off but counters = %+v", c)
	}
	if ev.CacheLen() != 0 {
		t.Fatal("cache populated while off")
	}
}

func TestNarrowMatchesFullEval(t *testing.T) {
	tab, ev := figure2Table(t)
	_ = tab
	parent := sdl.MustQuery(sdl.SetC("type", engine.String_("fluit")))
	parentSel, err := ev.Select(parent)
	if err != nil {
		t.Fatal(err)
	}
	c := sdl.ClosedRange("tonnage", engine.Int(0), engine.Int(2000))
	child := parent.WithConstraint(c)
	narrowed, err := ev.Narrow(parentSel, child, c)
	if err != nil {
		t.Fatal(err)
	}
	ev2 := NewEvaluator(tab)
	full, err := ev2.Select(child)
	if err != nil {
		t.Fatal(err)
	}
	if len(narrowed) != len(full) {
		t.Fatalf("narrow %v != full %v", narrowed, full)
	}
	for i := range narrowed {
		if narrowed[i] != full[i] {
			t.Fatalf("narrow %v != full %v", narrowed, full)
		}
	}
}

func TestSelectUnknownColumn(t *testing.T) {
	_, ev := figure2Table(t)
	q := sdl.MustQuery(sdl.ClosedRange("ghost", engine.Int(0), engine.Int(1)))
	if _, err := ev.Select(q); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestSelectRangeOnBoolRejected(t *testing.T) {
	tab := engine.MustNewTable("t", engine.NewBoolColumn("b", []bool{true, false}))
	ev := NewEvaluator(tab)
	q := sdl.MustQuery(sdl.RangeC("b", engine.Bool(false), engine.Bool(true), true, true))
	if _, err := ev.Select(q); err == nil {
		t.Fatal("range on bool accepted")
	}
}

func TestSelectStringRange(t *testing.T) {
	tab := engine.MustNewTable("t", engine.NewStringColumn("s", []string{"apple", "banana", "cherry"}))
	ev := NewEvaluator(tab)
	q := sdl.MustQuery(sdl.RangeC("s", engine.String_("b"), engine.String_("c"), true, false))
	sel, err := ev.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 1 || sel[0] != 1 {
		t.Fatalf("string range selected %v", sel)
	}
}

func TestSelectIntSetAndFloatSet(t *testing.T) {
	tab := engine.MustNewTable("t",
		engine.NewIntColumn("i", []int64{1, 2, 3, 2}),
		engine.NewFloatColumn("f", []float64{1.5, 2.5, 3.5, 2.5}),
	)
	ev := NewEvaluator(tab)
	q := sdl.MustQuery(sdl.SetC("i", engine.Int(2)))
	sel, err := ev.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("int set selected %v", sel)
	}
	q = sdl.MustQuery(sdl.SetC("f", engine.Float(2.5), engine.Float(9.9)))
	sel, err = ev.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("float set selected %v", sel)
	}
}

func TestCountersAndReset(t *testing.T) {
	_, ev := figure2Table(t)
	q := sdl.MustQuery(sdl.SetC("type", engine.String_("fluit")))
	if _, err := ev.Count(q); err != nil {
		t.Fatal(err)
	}
	if ev.Counters().FullEvals != 1 {
		t.Fatalf("counters = %+v", ev.Counters())
	}
	ev.ResetCounters()
	if ev.Counters().FullEvals != 0 {
		t.Fatal("ResetCounters did not reset")
	}
}

func TestCacheLimitBoundsEntries(t *testing.T) {
	tab, ev := figure2Table(t)
	_ = tab
	const limit = 8
	ev.SetCacheLimit(limit)
	// Far more distinct queries than the limit allows.
	for lo := int64(0); lo < 200; lo++ {
		q := sdl.MustQuery(sdl.ClosedRange("tonnage", engine.Int(lo), engine.Int(lo+100)))
		if _, err := ev.Select(q); err != nil {
			t.Fatal(err)
		}
	}
	// Per-shard rounding allows at most ceil(limit/shards) per shard.
	if n := ev.CacheLen(); n > limit+cacheShards {
		t.Fatalf("cache holds %d entries, limit %d", n, limit)
	}
	// Cached queries still answer correctly after evictions.
	q := sdl.MustQuery(sdl.ClosedRange("tonnage", engine.Int(0), engine.Int(100)))
	sel, err := ev.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range sel {
		if !sel.IsSorted() {
			t.Fatalf("row %d: unsorted selection after eviction", row)
		}
	}
}

// TestStoreAtLimitKeepsExistingKey is the regression test for the
// re-store eviction bug: overwriting a key that is already cached in
// a full shard must not evict an unrelated entry — the store does
// not grow the shard, so there is nothing to make room for. The old
// code evicted first and overwrote second, shrinking the cache by
// one on every re-store at the limit.
func TestStoreAtLimitKeepsExistingKey(t *testing.T) {
	tab, ev := figure2Table(t)
	sel := tab.AllChunked()
	// perShard = ceil(limit/shards) = 2.
	ev.SetCacheLimit(2 * cacheShards)
	// Find two keys that land in the same shard, then fill it.
	keyA := "key-a"
	shard := ev.shard(keyA)
	keyB := ""
	for i := 0; keyB == ""; i++ {
		k := fmt.Sprintf("key-b-%d", i)
		if ev.shard(k) == shard {
			keyB = k
		}
	}
	ev.store(keyA, sel, tab.Stamp())
	ev.store(keyB, sel, tab.Stamp())
	if len(shard.m) != 2 {
		t.Fatalf("shard holds %d entries after filling, want 2", len(shard.m))
	}
	// Re-store an existing key ten times: the shard must keep both.
	for i := 0; i < 10; i++ {
		ev.store(keyA, sel, tab.Stamp())
	}
	if _, ok := ev.cached(keyB); !ok {
		t.Fatal("re-storing an existing key evicted an unrelated entry")
	}
	if len(shard.m) != 2 {
		t.Fatalf("shard shrank to %d entries after re-stores, want 2", len(shard.m))
	}
	// A genuinely new key at the limit still evicts exactly one.
	keyC := ""
	for i := 0; keyC == ""; i++ {
		k := fmt.Sprintf("key-c-%d", i)
		if ev.shard(k) == shard {
			keyC = k
		}
	}
	ev.store(keyC, sel, tab.Stamp())
	if len(shard.m) != 2 {
		t.Fatalf("shard holds %d entries after eviction, want 2", len(shard.m))
	}
	if _, ok := ev.cached(keyC); !ok {
		t.Fatal("new key was not stored at the limit")
	}
}

// TestPackedSelectionMemoized pins the bitmap cache: repeated packs
// of the same query return the identical (immutable) bitmap when
// caching is on, and fresh ones when it is off.
func TestPackedSelectionMemoized(t *testing.T) {
	tab, ev := figure2Table(t)
	q := sdl.MustQuery(sdl.SetC("type", engine.String_("fluit")))
	sel, err := ev.SelectChunked(q)
	if err != nil {
		t.Fatal(err)
	}
	a := ev.packedSelection(q, sel)
	b := ev.packedSelection(q, sel)
	if a != b {
		t.Fatal("caching on: repeated pack returned a fresh bitmap")
	}
	if a.Count() != sel.Len() || a.NumRows() != tab.NumRows() {
		t.Fatalf("packed bitmap shape %d/%d, want %d/%d", a.Count(), a.NumRows(), sel.Len(), tab.NumRows())
	}
	ev.SetCaching(false)
	c := ev.packedSelection(q, sel)
	d := ev.packedSelection(q, sel)
	if c == a || c == d {
		t.Fatal("caching off: packs must not be shared")
	}
}
