package seg

import (
	"math"
	"testing"

	"charles/internal/engine"
	"charles/internal/sdl"
)

// figure2Table realizes the boats example of Figure 2: two boat
// types whose per-type tonnage medians (2000 for fluit, 3000 for
// jacht) and per-type date medians (1744 for fluit, 1760 for jacht)
// match the numbers printed in the figure.
func figure2Table(t *testing.T) (*engine.Table, *Evaluator) {
	t.Helper()
	tab := engine.MustNewTable("boats",
		engine.NewStringColumn("type", []string{
			"fluit", "fluit", "fluit", "fluit",
			"jacht", "jacht", "jacht", "jacht",
		}),
		engine.NewIntColumn("tonnage", []int64{
			1000, 1800, 2000, 5000,
			1000, 2900, 3000, 5000,
		}),
		engine.NewIntColumn("date", []int64{
			1700, 1740, 1744, 1780,
			1700, 1755, 1760, 1780,
		}),
	)
	return tab, NewEvaluator(tab)
}

func context2(t *testing.T, tab *engine.Table) sdl.Query {
	t.Helper()
	q, err := sdl.ContextOn(tab, "type", "tonnage", "date")
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// setA is the figure's segmentation A: {fluit} | {jacht}.
func setA(t *testing.T, ev *Evaluator, ctx sdl.Query) *Segmentation {
	t.Helper()
	a, ok, err := InitialCut(ev, ctx, "type", DefaultCutOptions())
	if err != nil || !ok {
		t.Fatalf("InitialCut(type): %v ok=%v", err, ok)
	}
	return a
}

// setB is the figure's segmentation B: two date intervals.
func setB(t *testing.T, ev *Evaluator, ctx sdl.Query) *Segmentation {
	t.Helper()
	b, ok, err := InitialCut(ev, ctx, "date", DefaultCutOptions())
	if err != nil || !ok {
		t.Fatalf("InitialCut(date): %v ok=%v", err, ok)
	}
	return b
}

func TestFigure2SetA(t *testing.T) {
	tab, ev := figure2Table(t)
	ctx := context2(t, tab)
	a := setA(t, ev, ctx)
	if a.Depth() != 2 {
		t.Fatalf("A has %d segments, want 2", a.Depth())
	}
	if a.Counts[0] != 4 || a.Counts[1] != 4 {
		t.Fatalf("A counts = %v, want [4 4]", a.Counts)
	}
	// Perfectly balanced binary split: entropy = 1 bit.
	if got := a.Entropy(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("E(A) = %v, want 1", got)
	}
	types := map[string]bool{}
	for _, q := range a.Queries {
		c, ok := q.Constraint("type")
		if !ok || c.Kind != sdl.KindSet || len(c.Set) != 1 {
			t.Fatalf("segment constraint = %+v", c)
		}
		types[c.Set[0].AsString()] = true
	}
	if !types["fluit"] || !types["jacht"] {
		t.Fatalf("A types = %v", types)
	}
}

func TestFigure2CutTonnageOfA(t *testing.T) {
	tab, ev := figure2Table(t)
	ctx := context2(t, tab)
	a := setA(t, ev, ctx)
	cut, err := Cut(ev, a, "tonnage", DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cut.Depth() != 4 {
		t.Fatalf("CUT_tonnage(A) has %d segments, want 4", cut.Depth())
	}
	// Collect the per-type tonnage boundaries: the figure shows the
	// fluit pieces splitting at 2000 and the jacht pieces at 3000.
	splits := map[string]int64{}
	for _, q := range cut.Queries {
		ty, _ := q.Constraint("type")
		ton, ok := q.Constraint("tonnage")
		if !ok || ton.Kind != sdl.KindRange {
			t.Fatalf("tonnage constraint missing: %s", q)
		}
		name := ty.Set[0].AsString()
		// Left piece [min, med): record med; right piece [med, max]:
		// record med.
		if !ton.Range.HiIncl {
			splits[name] = ton.Range.Hi.AsInt()
		}
	}
	if splits["fluit"] != 2000 {
		t.Errorf("fluit split at %d, want 2000", splits["fluit"])
	}
	if splits["jacht"] != 3000 {
		t.Errorf("jacht split at %d, want 3000", splits["jacht"])
	}
	// Each piece has 2 rows: the cut is balanced within each type.
	for i, c := range cut.Counts {
		if c != 2 {
			t.Errorf("segment %d count = %d, want 2", i, c)
		}
	}
	if err := ValidatePartition(ev, ctx, cut); err != nil {
		t.Fatal(err)
	}
}

func TestFigure2ComposeAB(t *testing.T) {
	tab, ev := figure2Table(t)
	ctx := context2(t, tab)
	a := setA(t, ev, ctx)
	b := setB(t, ev, ctx)
	composed, err := Compose(ev, a, b, DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	if composed.Depth() != 4 {
		t.Fatalf("COMPOSE(A,B) has %d segments, want 4", composed.Depth())
	}
	// The figure shows per-type date medians: fluit splits at 1744,
	// jacht at 1760 — each type is cut with its own median, which is
	// exactly what distinguishes COMPOSE from PRODUCT.
	splits := map[string]int64{}
	for _, q := range composed.Queries {
		ty, _ := q.Constraint("type")
		d, ok := q.Constraint("date")
		if !ok {
			t.Fatalf("date constraint missing: %s", q)
		}
		if !d.Range.HiIncl {
			splits[ty.Set[0].AsString()] = d.Range.Hi.AsInt()
		}
	}
	if splits["fluit"] != 1744 {
		t.Errorf("fluit date split at %d, want 1744", splits["fluit"])
	}
	if splits["jacht"] != 1760 {
		t.Errorf("jacht date split at %d, want 1760", splits["jacht"])
	}
	if err := ValidatePartition(ev, ctx, composed); err != nil {
		t.Fatal(err)
	}
}

func TestFigure2ProductAB(t *testing.T) {
	tab, ev := figure2Table(t)
	ctx := context2(t, tab)
	a := setA(t, ev, ctx)
	b := setB(t, ev, ctx)
	prod, err := Product(ev, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Depth() != 4 {
		t.Fatalf("A×B has %d segments, want 4", prod.Depth())
	}
	// Unlike COMPOSE, the product uses B's global boundaries, so the
	// cell sizes are skewed: fluits are early, jachts late.
	counts := map[int]int{}
	for _, c := range prod.Counts {
		counts[c]++
	}
	if counts[3] != 2 || counts[1] != 2 {
		t.Fatalf("A×B counts = %v, want two 3s and two 1s", prod.Counts)
	}
	if err := ValidatePartition(ev, ctx, prod); err != nil {
		t.Fatal(err)
	}
}

func TestFigure2IndepDetectsDependence(t *testing.T) {
	tab, ev := figure2Table(t)
	ctx := context2(t, tab)
	a := setA(t, ev, ctx)
	b := setB(t, ev, ctx)
	// "The example of Figure 2 shows a dependence between the type
	// of boat and the departure date": INDEP must be strictly < 1.
	ind, err := Indep(ev, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ind >= 1 || ind <= 0 {
		t.Fatalf("INDEP(A,B) = %v, want in (0,1)", ind)
	}
	// And it must equal E(A×B)/(E(A)+E(B)) by definition.
	prod, err := Product(ev, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := prod.Entropy() / (a.Entropy() + b.Entropy())
	if math.Abs(ind-want) > 1e-12 {
		t.Fatalf("INDEP = %v, definition gives %v", ind, want)
	}
}
