// The cut-point cache: the incremental-advise counterpart of the
// selection cache for the CUT primitive's order statistics. Section
// 5.1 calls the median/quantile math the vertical-scalability
// bottleneck, and unlike selections it cannot be spliced — the k-th
// smallest of a multiset is a global property. What can be reused is
// the per-chunk SORTED RUNS the chunked rank selection works over: a
// mutation invalidates only the dirty chunks' runs, so a warm
// re-advise re-sorts ~1% of the data and resolves the ranks over the
// spliced runs, byte-identical to a cold computation by the
// order-statistic argument (chunked.go). Nominal cuts cache per-chunk
// count vectors the same way; counts are additive over chunks.
//
// Entries are keyed by (query, attribute, cut options) and stamped
// with the table epoch exactly like cachedSel: equal versions serve
// the cached pieces outright, comparable stamps refresh dirty chunks
// only, anything else recomputes in full. Sampled cut points, float
// and bool columns, and the numeric-nominal fallback cache their
// pieces for version-equal reuse but always recompute when stale —
// floats deliberately so: a sorted run cannot reproduce the scan-order
// tie between -0.0 and +0.0 that FloatMinMaxChunked's bounds carry.
package seg

import (
	"strconv"

	"charles/internal/engine"
	"charles/internal/sdl"
)

// cutStateMinRows is the selection size below which refreshable state
// (sorted runs, count vectors) is not retained: tiny extents resort
// in microseconds, and the long tail of small segments would
// otherwise dominate entry count. Pieces are still cached for
// version-equal reuse.
const cutStateMinRows = 1 << 12

// cachedCut is one cut-point cache entry: the computed pieces plus
// the epoch stamp they were computed under, and — for exact cuts over
// int-valued and string columns — the per-chunk state a stale entry
// refreshes from. Runs and count vectors are immutable once stored:
// a splice shares the clean chunks' slices between the old and new
// entry.
type cachedCut struct {
	pieces []sdl.Constraint
	stamp  *engine.EpochStamp
	// intRuns holds per-chunk sorted values (IntColumn, DateColumn).
	intRuns [][]int64
	// strCounts holds per-chunk value frequencies by dictionary code.
	strCounts [][]int
}

// cutKey names a cut computation: the query's canonical key, the cut
// attribute, and the (normalized) options that parameterize the
// points. \x00 cannot occur in canonical query strings or column
// names, so the key is unambiguous.
func cutKey(q sdl.Query, attr string, opt CutOptions) string {
	return q.Key() + "\x00" + attr + "\x00" +
		strconv.Itoa(opt.Arity) + "," + strconv.Itoa(opt.NominalOrderThreshold) + "," + strconv.Itoa(opt.SampleSize)
}

func (e *Evaluator) cachedCutEntry(key string) (cachedCut, bool) {
	e.cutMu.RLock()
	ent, ok := e.cuts[key]
	e.cutMu.RUnlock()
	return ent, ok
}

// storeCut records a cut entry under the same bounded
// random-replacement policy as the selection stores: concurrent
// computations of the same key produce identical pieces, so last
// write wins.
func (e *Evaluator) storeCut(key string, ent cachedCut) {
	limit := int(e.limit.Load())
	e.cutMu.Lock()
	if limit > 0 && len(e.cuts) >= limit {
		if _, exists := e.cuts[key]; !exists {
			//lint:deterministic random-replacement eviction is deliberately arbitrary: cache contents affect reuse, never results
			for k := range e.cuts {
				delete(e.cuts, k)
				break
			}
		}
	}
	e.cuts[key] = ent
	e.cutMu.Unlock()
}

// cutPieces computes (or reuses) the piece constraints CUT splits q
// into along attr — the single entry point CutQuery dispatches
// through, so cached and uncached runs produce identical pieces by
// construction. pointSel, when non-nil, is the systematic sample the
// points are estimated from (Section 5.2); sampled points are cached
// but never refreshed incrementally.
func (e *Evaluator) cutPieces(q sdl.Query, attr string, col engine.Column, cs *engine.ChunkedSelection, pointSel engine.Selection, opt CutOptions) ([]sdl.Constraint, error) {
	if !e.caching.Load() {
		pieces, _, err := e.computeCut(attr, col, cs, pointSel, opt, false)
		if err == nil && len(pieces) >= 2 {
			e.countCutPointCalc()
		}
		return pieces, err
	}
	key := cutKey(q, attr, opt)
	cur := e.tab.Stamp()
	if ent, ok := e.cachedCutEntry(key); ok {
		if ent.stamp.Version() == cur.Version() {
			e.countCutCacheHit()
			return ent.pieces, nil
		}
		if pieces, ok := e.refreshCut(key, ent, attr, col, cs, pointSel, opt, cur); ok {
			return pieces, nil
		}
	}
	pieces, state, err := e.computeCut(attr, col, cs, pointSel, opt, cs.Len() >= cutStateMinRows)
	if err != nil {
		return nil, err
	}
	if len(pieces) >= 2 {
		e.countCutPointCalc()
	}
	e.storeCut(key, cachedCut{pieces: pieces, stamp: cur, intRuns: state.intRuns, strCounts: state.strCounts})
	return pieces, nil
}

// cutState carries the refreshable per-chunk state a computation
// chose to retain.
type cutState struct {
	intRuns   [][]int64
	strCounts [][]int
}

// computeCut runs the full cut-point computation for one column kind.
// With retain set, the exact int and string paths go through the
// retainable per-chunk forms (sorted runs, count vectors) so the
// entry can be refreshed chunk-at-a-time later; the results are
// pinned byte-identical to the scratch-based forms. Everything else —
// sampled points, floats, bools, the degenerate fallback — takes
// exactly the code path the uncached evaluator takes.
func (e *Evaluator) computeCut(attr string, col engine.Column, cs *engine.ChunkedSelection, pointSel engine.Selection, opt CutOptions, retain bool) ([]sdl.Constraint, cutState, error) {
	var state cutState
	var pieces []sdl.Constraint
	var err error
	switch col := col.(type) {
	case *engine.StringColumn:
		if retain && pointSel == nil {
			state.strCounts = engine.StringChunkCounts(col, cs)
			pieces, err = nominalPieces(attr, engine.StringCountsFromChunks(col, state.strCounts), stringSetValue, opt)
		} else {
			pieces, err = nominalPieces(attr, engine.StringValueCountsChunked(col, cs), stringSetValue, opt)
		}
	case *engine.BoolColumn:
		pieces, err = nominalPieces(attr, engine.BoolValueCountsChunked(col, cs), boolSetValue, opt)
	case *engine.FloatColumn:
		pieces, err = floatPieces(attr, col, cs, pointSel, opt)
		if err == nil && len(pieces) < 2 {
			pieces = numericNominalFallback(attr, col, cs.Flat(), opt)
		}
	case engine.IntValued:
		if retain && pointSel == nil {
			state.intRuns = engine.IntSortedRuns(col, cs)
			pieces = intPiecesFromRuns(attr, col, state.intRuns, opt)
		} else {
			pieces, err = intPieces(attr, col, cs, pointSel, opt)
		}
		if err == nil && len(pieces) < 2 {
			pieces = numericNominalFallback(attr, col, cs.Flat(), opt)
		}
	default:
		return nil, state, errCutKind(attr, col)
	}
	return pieces, state, err
}

// refreshCut brings a stale cut entry up to stamp cur by splicing:
// dirty chunks are re-gathered and re-sorted (or recounted) from the
// query's current selection, clean chunks reuse the cached runs.
// Sound for the same reason selection splicing is — a selection
// restricted to a clean chunk, and hence its value multiset, is a
// pure function of that chunk's unchanged rows. Entries with no
// retained state, structural mismatches, and sampled points all
// return false and recompute in full.
func (e *Evaluator) refreshCut(key string, ent cachedCut, attr string, col engine.Column, cs *engine.ChunkedSelection, pointSel engine.Selection, opt CutOptions, cur *engine.EpochStamp) ([]sdl.Constraint, bool) {
	if pointSel != nil {
		return nil, false
	}
	if cs.NumRows() != cur.NumRows() || cs.ChunkRows() != cur.ChunkRows() {
		return nil, false
	}
	dirty, ok := cur.DirtyVs(ent.stamp)
	if !ok {
		return nil, false
	}
	var pieces []sdl.Constraint
	var state cutState
	switch col := col.(type) {
	case *engine.StringColumn:
		if ent.strCounts == nil {
			return nil, false
		}
		counts, ok := engine.StringChunkCountsSplice(col, cs, ent.strCounts, dirty)
		if !ok {
			return nil, false
		}
		var err error
		pieces, err = nominalPieces(attr, engine.StringCountsFromChunks(col, counts), stringSetValue, opt)
		if err != nil {
			return nil, false
		}
		state.strCounts = counts
	case engine.IntValued:
		if ent.intRuns == nil {
			return nil, false
		}
		runs, ok := engine.IntSortedRunsSplice(col, cs, ent.intRuns, dirty)
		if !ok {
			return nil, false
		}
		pieces = intPiecesFromRuns(attr, col, runs, opt)
		if len(pieces) < 2 {
			pieces = numericNominalFallback(attr, col, cs.Flat(), opt)
		}
		state.intRuns = runs
	default:
		return nil, false
	}
	e.countCutRefresh()
	if len(pieces) >= 2 {
		e.countCutPointCalc()
	}
	e.storeCut(key, cachedCut{pieces: pieces, stamp: cur, intRuns: state.intRuns, strCounts: state.strCounts})
	return pieces, true
}

// intPiecesFromRuns is intPieces over cached sorted runs: bounds from
// the run endpoints, points by rank selection — no gather, no sort,
// no scan. Identical output to intPieces by the order-statistic
// argument.
func intPiecesFromRuns(attr string, col engine.IntValued, runs [][]int64, opt CutOptions) []sdl.Constraint {
	min, max, ok := engine.IntRunsBounds(runs)
	if !ok || min == max {
		return nil
	}
	points := clampIntPoints(engine.IntCutPointsSorted(runs, opt.Arity), min, max)
	if len(points) == 0 {
		return nil
	}
	return intRangePieces(attr, col, min, max, points)
}
