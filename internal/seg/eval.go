// Package seg implements segmentations (Definition 3) and everything
// that operates on them: an evaluator that turns SDL queries into
// row selections with caching, the three primitives CUT, COMPOSE and
// PRODUCT of Section 4.1, and the quality metrics of Section 3 —
// entropy, simplicity, breadth — plus the INDEP dependence quotient
// of Proposition 1.
package seg

import (
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"charles/internal/engine"
	"charles/internal/obs"
	"charles/internal/sdl"
)

// Counters instruments the evaluator for the scalability experiments
// (E6/E7): how often work was reused versus recomputed.
type Counters struct {
	// FullEvals counts constraint-by-constraint query evaluations.
	FullEvals int
	// NarrowEvals counts incremental child evaluations (filtering a
	// parent's selection by one new constraint), the cheap path cuts
	// take.
	NarrowEvals int
	// CacheHits counts selections served from the query cache.
	CacheHits int
	// CutPointCalcs counts median/quantile computations, the
	// operation Section 5.1 calls the vertical-scalability
	// bottleneck.
	CutPointCalcs int
	// DeltaRefreshes counts cached selections brought up to date by
	// re-evaluating only the mutation-dirtied chunks and splicing
	// them into the cached clean segments — the incremental-advise
	// path, neither a full eval nor a plain hit.
	DeltaRefreshes int
	// CutRefreshes counts cached cut points brought up to date the
	// same way: dirty chunks re-gathered and re-sorted (or
	// recounted), clean chunks' sorted runs and count vectors reused.
	CutRefreshes int
	// CutCacheHits counts cut-point sets served straight from the cut
	// cache without recomputation.
	CutCacheHits int
	// PairMemoHits / PairMemoMisses count pairwise-operand sides
	// served from (or built into) a PairMemo.
	PairMemoHits   int
	PairMemoMisses int
}

// EvalMetrics is the evaluator's external instrumentation hook:
// nil-safe obs counters mirroring the Counters fields, bumped at the
// same sites, so a server can expose live totals without polling.
// Cache misses are the evaluations themselves — FullEvals and
// NarrowEvals count exactly the lookups that missed. The default
// hook (all-nil fields) records nothing and costs one atomic load.
type EvalMetrics struct {
	FullEvals      *obs.Counter
	NarrowEvals    *obs.Counter
	CacheHits      *obs.Counter
	CutPointCalcs  *obs.Counter
	DeltaRefreshes *obs.Counter
	CutRefreshes   *obs.Counter
	CutCacheHits   *obs.Counter
	PairMemoHits   *obs.Counter
	PairMemoMisses *obs.Counter
}

// cacheShards is the number of independent lock stripes of the
// selection cache. 32 keeps contention negligible for any realistic
// worker count while the per-shard maps stay dense.
const cacheShards = 32

// cachedSel is one selection cache entry: the result plus the table
// epoch stamp it was evaluated under. The stamp is what keeps a
// cache correct across table mutation — equal versions mean the
// entry is exact, and a moved version tells the evaluator precisely
// which chunks to re-evaluate (DirtyVs) before serving it again.
// Never cache a bare selection: without its stamp a stale entry is
// indistinguishable from a fresh one.
type cachedSel struct {
	cs    *engine.ChunkedSelection
	stamp *engine.EpochStamp
}

// cachedBitmap is cachedSel for the word-packed form.
type cachedBitmap struct {
	bm    *engine.Bitmap
	stamp *engine.EpochStamp
}

// cacheShard is one lock stripe of the selection cache. Selections
// are cached in their chunked form; the flat view every chunked
// selection lazily carries means vector consumers share the same
// cache entries.
type cacheShard struct {
	mu sync.RWMutex
	m  map[string]cachedSel
}

// bitmapShard is one lock stripe of the packed-selection cache.
type bitmapShard struct {
	mu sync.RWMutex
	m  map[string]cachedBitmap
}

// cacheSeed keys the shard hash; shared by all evaluators so shard
// assignment is stable within a process.
var cacheSeed = maphash.MakeSeed()

// Evaluator binds SDL queries to a table and caches the resulting
// selections by canonical query string, implementing the reuse
// opportunity Section 5.1 points out ("the calculations ... can be
// reused from one iteration to the next"). Selections are evaluated
// and cached chunk-at-a-time over the table's row-range layout:
// every predicate narrows the per-chunk segments independently
// across the scan worker pool, zone maps skip chunks a range cannot
// match, and narrow (parent→child) evaluations touch only the chunks
// where the parent selection has rows. The cache is sharded behind
// fine-grained reader/writer locks and the counters are atomic, so
// one Evaluator safely serves many goroutines — the foundation of
// the parallel advisor core and the multi-session server.
type Evaluator struct {
	tab      *engine.Table
	shards   [cacheShards]cacheShard
	bmShards [cacheShards]bitmapShard
	// cutMu guards cuts, the cut-point cache (cutcache.go). Cut
	// entries are far fewer and far larger than selections — sorted
	// value runs, not row ids — so one stripe suffices.
	cutMu   sync.RWMutex
	cuts    map[string]cachedCut
	caching atomic.Bool
	// zonePruning gates the zone-map verdicts (numeric bounds and
	// nominal presence alike). On by default; the off position is the
	// equivalence ablation — output must be byte-identical either
	// way, only chunks scanned may differ.
	zonePruning atomic.Bool
	// identity is the lazily built chunked all-rows selection every
	// full evaluation starts from; building it once per evaluator
	// keeps cold full evaluations from each allocating an
	// |table|-sized identity vector.
	identity atomic.Pointer[engine.ChunkedSelection]
	// limit bounds the total cached selections (0 = unbounded).
	// Long-lived shared evaluators — the multi-session server — set
	// it so user-supplied contexts cannot grow memory without bound.
	limit atomic.Int64

	fullEvals      atomic.Int64
	narrowEvals    atomic.Int64
	cacheHits      atomic.Int64
	cutPointCalcs  atomic.Int64
	deltaRefreshes atomic.Int64
	cutRefreshes   atomic.Int64
	cutCacheHits   atomic.Int64
	pairMemoHits   atomic.Int64
	pairMemoMisses atomic.Int64

	// em is the installed EvalMetrics hook; always non-nil (zero
	// value = no-op), swapped atomically by SetEvalMetrics.
	em atomic.Pointer[EvalMetrics]
}

// NewEvaluator returns a caching evaluator over t.
func NewEvaluator(t *engine.Table) *Evaluator {
	e := &Evaluator{tab: t, cuts: make(map[string]cachedCut)}
	for i := range e.shards {
		e.shards[i].m = make(map[string]cachedSel)
	}
	for i := range e.bmShards {
		e.bmShards[i].m = make(map[string]cachedBitmap)
	}
	e.caching.Store(true)
	e.zonePruning.Store(true)
	e.em.Store(&EvalMetrics{})
	return e
}

// SetEvalMetrics installs the instrumentation hook; nil restores the
// no-op default. Hook counters only ever accumulate — they never
// influence evaluation — so installing one cannot change results.
func (e *Evaluator) SetEvalMetrics(m *EvalMetrics) {
	if m == nil {
		m = &EvalMetrics{}
	}
	e.em.Store(m)
}

// The count* helpers bump an internal counter and its hook mirror
// together, so Counters() snapshots and live obs totals cannot
// drift. All are alloc-free: two atomic adds and a pointer load.
func (e *Evaluator) countFullEval()     { e.fullEvals.Add(1); e.em.Load().FullEvals.Inc() }
func (e *Evaluator) countNarrowEval()   { e.narrowEvals.Add(1); e.em.Load().NarrowEvals.Inc() }
func (e *Evaluator) countCacheHit()     { e.cacheHits.Add(1); e.em.Load().CacheHits.Inc() }
func (e *Evaluator) countCutPointCalc() { e.cutPointCalcs.Add(1); e.em.Load().CutPointCalcs.Inc() }
func (e *Evaluator) countDeltaRefresh() { e.deltaRefreshes.Add(1); e.em.Load().DeltaRefreshes.Inc() }
func (e *Evaluator) countCutRefresh()   { e.cutRefreshes.Add(1); e.em.Load().CutRefreshes.Inc() }
func (e *Evaluator) countCutCacheHit()  { e.cutCacheHits.Add(1); e.em.Load().CutCacheHits.Inc() }
func (e *Evaluator) countPairMemoHit()  { e.pairMemoHits.Add(1); e.em.Load().PairMemoHits.Inc() }
func (e *Evaluator) countPairMemoMiss() { e.pairMemoMisses.Add(1); e.em.Load().PairMemoMisses.Inc() }

// SetZonePruning toggles zone-map chunk pruning (numeric min/max and
// nominal presence verdicts). Pruning never changes results — only
// which chunks are scanned — so the off position exists for the
// equivalence property tests and for measuring the pruning win.
func (e *Evaluator) SetZonePruning(on bool) { e.zonePruning.Store(on) }

// Table returns the relation the evaluator is bound to.
func (e *Evaluator) Table() *engine.Table { return e.tab }

// allRows returns the shared chunked identity selection, rebuilding
// it when the table was re-sharded — or grew — since it was built.
func (e *Evaluator) allRows() *engine.ChunkedSelection {
	if cs := e.identity.Load(); cs != nil && cs.ChunkRows() == e.tab.ChunkRows() && cs.NumRows() == e.tab.NumRows() {
		return cs
	}
	cs := e.tab.AllChunked()
	e.identity.Store(cs)
	return cs
}

// SetCacheLimit bounds the number of cached selections; at the
// limit an arbitrary entry per shard is evicted to make room.
// n <= 0 means unbounded (the default, right for one-shot advisory
// runs and the paper experiments).
func (e *Evaluator) SetCacheLimit(n int) {
	if n < 0 {
		n = 0
	}
	e.limit.Store(int64(n))
}

// SetCaching toggles the selection cache (the E6 ablation). Turning
// caching off also drops the current cache. The toggle applies to
// evaluations that start afterwards; flip it while the evaluator is
// quiescent when exact ablation counters matter.
func (e *Evaluator) SetCaching(on bool) {
	e.caching.Store(on)
	if !on {
		for i := range e.shards {
			s := &e.shards[i]
			s.mu.Lock()
			s.m = make(map[string]cachedSel)
			s.mu.Unlock()
		}
		for i := range e.bmShards {
			s := &e.bmShards[i]
			s.mu.Lock()
			s.m = make(map[string]cachedBitmap)
			s.mu.Unlock()
		}
		e.cutMu.Lock()
		e.cuts = make(map[string]cachedCut)
		e.cutMu.Unlock()
	}
}

// Counters returns a snapshot of the instrumentation counters.
func (e *Evaluator) Counters() Counters {
	return Counters{
		FullEvals:      int(e.fullEvals.Load()),
		NarrowEvals:    int(e.narrowEvals.Load()),
		CacheHits:      int(e.cacheHits.Load()),
		CutPointCalcs:  int(e.cutPointCalcs.Load()),
		DeltaRefreshes: int(e.deltaRefreshes.Load()),
		CutRefreshes:   int(e.cutRefreshes.Load()),
		CutCacheHits:   int(e.cutCacheHits.Load()),
		PairMemoHits:   int(e.pairMemoHits.Load()),
		PairMemoMisses: int(e.pairMemoMisses.Load()),
	}
}

// ResetCounters zeroes the instrumentation counters.
func (e *Evaluator) ResetCounters() {
	e.fullEvals.Store(0)
	e.narrowEvals.Store(0)
	e.cacheHits.Store(0)
	e.cutPointCalcs.Store(0)
	e.deltaRefreshes.Store(0)
	e.cutRefreshes.Store(0)
	e.cutCacheHits.Store(0)
	e.pairMemoHits.Store(0)
	e.pairMemoMisses.Store(0)
}

// CacheLen returns the number of cached selections.
func (e *Evaluator) CacheLen() int {
	n := 0
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// shard returns the lock stripe responsible for key.
func (e *Evaluator) shard(key string) *cacheShard {
	return &e.shards[maphash.String(cacheSeed, key)%cacheShards]
}

// cached looks key up in its shard. The caller must check the
// entry's stamp against the table's before serving it.
func (e *Evaluator) cached(key string) (cachedSel, bool) {
	s := e.shard(key)
	s.mu.RLock()
	ent, ok := s.m[key]
	s.mu.RUnlock()
	return ent, ok
}

// store records key → sel. Concurrent evaluators may compute the
// same selection twice; the results are identical, so last write
// wins and both callers' values stay valid (selections are
// immutable by contract). Over the cache limit, one arbitrary entry
// of the shard makes room — random-replacement is crude but keeps
// the hot path lock-cheap and bounds memory. Overwriting a key that
// is already present never evicts: the store does not grow the
// shard, so there is nothing to make room for (evicting anyway
// would shrink the cache by one on every re-store at the limit).
func (e *Evaluator) store(key string, sel *engine.ChunkedSelection, stamp *engine.EpochStamp) {
	perShard := 0
	if limit := e.limit.Load(); limit > 0 {
		perShard = int((limit + cacheShards - 1) / cacheShards)
	}
	s := e.shard(key)
	s.mu.Lock()
	if perShard > 0 && len(s.m) >= perShard {
		if _, exists := s.m[key]; !exists {
			//lint:deterministic random-replacement eviction is deliberately arbitrary: cache contents affect reuse, never results
			for k := range s.m {
				delete(s.m, k)
				break
			}
		}
	}
	s.m[key] = cachedSel{cs: sel, stamp: stamp}
	s.mu.Unlock()
}

// cachedPacked looks key up in the packed-selection cache. The
// caller must check the entry's stamp against the table's before
// serving it.
func (e *Evaluator) cachedPacked(key string) (cachedBitmap, bool) {
	s := &e.bmShards[maphash.String(cacheSeed, key)%cacheShards]
	s.mu.RLock()
	ent, ok := s.m[key]
	s.mu.RUnlock()
	return ent, ok
}

// storeBitmap records key → bm in the packed-selection cache, with
// the same bounded random-replacement policy as the selection store.
func (e *Evaluator) storeBitmap(key string, bm *engine.Bitmap, stamp *engine.EpochStamp) {
	perShard := 0
	if limit := e.limit.Load(); limit > 0 {
		perShard = int((limit + cacheShards - 1) / cacheShards)
	}
	s := &e.bmShards[maphash.String(cacheSeed, key)%cacheShards]
	s.mu.Lock()
	if perShard > 0 && len(s.m) >= perShard {
		if _, exists := s.m[key]; !exists {
			//lint:deterministic random-replacement eviction is deliberately arbitrary: cache contents affect reuse, never results
			for k := range s.m {
				delete(s.m, k)
				break
			}
		}
	}
	s.m[key] = cachedBitmap{bm: bm, stamp: stamp}
	s.mu.Unlock()
}

// packedSelection returns the word-packed form of q's selection,
// serving repeats from a per-query cache: HB-cuts evaluates each
// candidate against O(n) partners per step, and without the cache
// every pairwise operator call would re-pack the same bitmaps. The
// caller decides whether packing pays (the representation knob and
// density heuristic live in the pairwise operators); this only
// memoizes the result of that decision, so cached and uncached runs
// take identical code paths. Bitmaps inherit the table's chunk
// layout — chunks with no selected rows are never allocated — and
// are immutable by contract, like selections.
func (e *Evaluator) packedSelection(q sdl.Query, cs *engine.ChunkedSelection) *engine.Bitmap {
	if !e.caching.Load() {
		return engine.NewBitmapChunked(cs)
	}
	key := q.Key()
	cur := e.tab.Stamp()
	if ent, ok := e.cachedPacked(key); ok {
		if ent.stamp.Version() == cur.Version() {
			return ent.bm
		}
		// Stale after mutation: cs is the query's current selection,
		// so only the dirty chunks need re-packing — splice their
		// fresh words into the cached clean ones.
		if dirty, ok := cur.DirtyVs(ent.stamp); ok &&
			ent.bm.NumRows() == ent.stamp.NumRows() && ent.bm.ChunkRows() == cur.ChunkRows() &&
			cs.NumRows() == cur.NumRows() && cs.ChunkRows() == cur.ChunkRows() {
			bm := engine.SpliceBitmap(ent.bm, engine.NewBitmapChunked(engine.RestrictChunked(cs, dirty)), dirty)
			e.countDeltaRefresh()
			e.storeBitmap(key, bm, cur)
			return bm
		}
	}
	bm := engine.NewBitmapChunked(cs)
	e.storeBitmap(key, bm, cur)
	return bm
}

// SelectBitmap returns R(Q) word-packed, the form the dense side of
// the pairwise operators consumes. Cached forms are served in
// cheapest-first order: the packed cache directly, then the chunked
// selection cache (one packing pass). Only when neither holds the
// query does it evaluate — and then the final predicate runs as a
// fused filter→bitmap scan (engine.Filter*ChunkedBitmap) that writes
// the bitmap words straight from the typed comparison loop, never
// materializing the row-id selection it would otherwise build and
// immediately discard. The returned bitmap must not be mutated.
func (e *Evaluator) SelectBitmap(q sdl.Query) (*engine.Bitmap, error) {
	key := q.Key()
	caching := e.caching.Load()
	cur := e.tab.Stamp()
	if caching {
		if ent, ok := e.cachedPacked(key); ok {
			if ent.stamp.Version() == cur.Version() {
				e.countCacheHit()
				return ent.bm, nil
			}
			if bm, ok := e.refreshBitmap(q, ent, cur); ok {
				e.countDeltaRefresh()
				e.storeBitmap(key, bm, cur)
				return bm, nil
			}
		}
		if ent, ok := e.cached(key); ok {
			if ent.stamp.Version() == cur.Version() {
				e.countCacheHit()
				bm := engine.NewBitmapChunked(ent.cs)
				e.storeBitmap(key, bm, ent.stamp)
				return bm, nil
			}
			if cs, ok := e.refreshChunked(q, ent, cur); ok {
				e.countDeltaRefresh()
				e.store(key, cs, cur)
				bm := engine.NewBitmapChunked(cs)
				e.storeBitmap(key, bm, cur)
				return bm, nil
			}
		}
	}
	cs := e.allRows()
	last := -1
	cons := q.Constraints()
	for i, c := range cons {
		if !c.IsAny() {
			last = i
		}
	}
	if last < 0 {
		// Unconstrained context: pack the identity selection.
		bm := engine.NewBitmapChunked(cs)
		e.countFullEval()
		if caching {
			e.storeBitmap(key, bm, cur)
		}
		return bm, nil
	}
	for _, c := range cons[:last] {
		if c.IsAny() {
			continue
		}
		var err error
		cs, err = e.applyConstraint(cs, c)
		if err != nil {
			return nil, err
		}
	}
	bm, err := e.applyConstraintBitmap(cs, cons[last])
	if err != nil {
		return nil, err
	}
	e.countFullEval()
	if caching {
		e.storeBitmap(key, bm, cur)
	}
	return bm, nil
}

// deltaDirty decides whether a stale cache entry qualifies for a
// chunk-granular refresh against stamp cur: the stamps must be
// chunk-comparable and the cached result must structurally match the
// stamp it claims to be from and the current layout. Anything else —
// a re-shard, a shrink, a foreign layout — returns nil and the
// caller re-evaluates in full.
func (e *Evaluator) deltaDirty(old *engine.EpochStamp, nRows, chunkRows int, cur *engine.EpochStamp) []bool {
	if old == nil || nRows != old.NumRows() || chunkRows != cur.ChunkRows() {
		return nil
	}
	dirty, ok := cur.DirtyVs(old)
	if !ok {
		return nil
	}
	return dirty
}

// refreshChunked brings a stale cached selection up to stamp cur by
// running q's constraint chain over only the dirty chunks — the
// partial identity's empty clean segments are skipped by every
// filter kernel, so the work is proportional to the mutated rows —
// and splicing the result into the cached clean segments. This is
// sound because SDL constraints are per-row predicates: R(Q)
// restricted to a chunk depends on that chunk's rows alone, so a
// clean chunk's cached segment is still exact.
func (e *Evaluator) refreshChunked(q sdl.Query, old cachedSel, cur *engine.EpochStamp) (*engine.ChunkedSelection, bool) {
	dirty := e.deltaDirty(old.stamp, old.cs.NumRows(), old.cs.ChunkRows(), cur)
	if dirty == nil {
		return nil, false
	}
	cs := engine.PartialIdentity(cur.NumRows(), cur.ChunkRows(), dirty)
	for _, c := range q.Constraints() {
		if c.IsAny() {
			continue
		}
		var err error
		cs, err = e.applyConstraint(cs, c)
		if err != nil {
			return nil, false
		}
	}
	return engine.SpliceChunked(old.cs, cs, dirty), true
}

// refreshBitmap is refreshChunked for the packed cache: the dirty
// chunks re-evaluate with the final predicate fused into bitmap
// construction, then splice word-slices with the cached clean
// chunks.
func (e *Evaluator) refreshBitmap(q sdl.Query, old cachedBitmap, cur *engine.EpochStamp) (*engine.Bitmap, bool) {
	dirty := e.deltaDirty(old.stamp, old.bm.NumRows(), old.bm.ChunkRows(), cur)
	if dirty == nil {
		return nil, false
	}
	cs := engine.PartialIdentity(cur.NumRows(), cur.ChunkRows(), dirty)
	cons := q.Constraints()
	last := -1
	for i, c := range cons {
		if !c.IsAny() {
			last = i
		}
	}
	var fresh *engine.Bitmap
	if last < 0 {
		fresh = engine.NewBitmapChunked(cs)
	} else {
		for _, c := range cons[:last] {
			if c.IsAny() {
				continue
			}
			var err error
			cs, err = e.applyConstraint(cs, c)
			if err != nil {
				return nil, false
			}
		}
		var err error
		fresh, err = e.applyConstraintBitmap(cs, cons[last])
		if err != nil {
			return nil, false
		}
	}
	return engine.SpliceBitmap(old.bm, fresh, dirty), true
}

// Select returns the sorted row selection R(Q) as a flat vector —
// the lazily materialized view of the chunked evaluation. The
// returned selection must not be mutated.
func (e *Evaluator) Select(q sdl.Query) (engine.Selection, error) {
	cs, err := e.SelectChunked(q)
	if err != nil {
		return nil, err
	}
	return cs.Flat(), nil
}

// SelectChunked returns R(Q) sharded by the table's row-range
// chunks. Results are cached under the query's canonical key. The
// returned selection must not be mutated.
func (e *Evaluator) SelectChunked(q sdl.Query) (*engine.ChunkedSelection, error) {
	key := q.Key()
	// One snapshot per evaluation: a concurrent SetCaching flip
	// cannot make lookup and store disagree within one call.
	caching := e.caching.Load()
	cur := e.tab.Stamp()
	if caching {
		if ent, ok := e.cached(key); ok {
			if ent.stamp.Version() == cur.Version() {
				e.countCacheHit()
				return ent.cs, nil
			}
			if cs, ok := e.refreshChunked(q, ent, cur); ok {
				e.countDeltaRefresh()
				e.store(key, cs, cur)
				return cs, nil
			}
		}
	}
	cs := e.allRows()
	for _, c := range q.Constraints() {
		if c.IsAny() {
			continue
		}
		var err error
		cs, err = e.applyConstraint(cs, c)
		if err != nil {
			return nil, err
		}
	}
	e.countFullEval()
	if caching {
		e.store(key, cs, cur)
	}
	return cs, nil
}

// Count returns |R(Q)|.
func (e *Evaluator) Count(q sdl.Query) (int, error) {
	cs, err := e.SelectChunked(q)
	if err != nil {
		return 0, err
	}
	return cs.Len(), nil
}

// Narrow filters a parent query's selection by one additional (or
// refined) constraint and caches the result under the child query's
// key. child must equal parent.WithConstraint(c). It is the flat
// compatibility form of NarrowChunked.
func (e *Evaluator) Narrow(parentSel engine.Selection, child sdl.Query, c sdl.Constraint) (engine.Selection, error) {
	cs, err := e.NarrowChunked(engine.ChunkSelection(parentSel, e.tab.NumRows(), e.tab.ChunkRows()), child, c)
	if err != nil {
		return nil, err
	}
	return cs.Flat(), nil
}

// NarrowChunked filters a parent query's chunked selection by one
// additional (or refined) constraint and caches the result under the
// child query's key. It is the incremental path CUT takes: the
// child's extent is a subset of the parent's, so only the changed
// predicate is applied — and only over the chunks where the parent
// has rows, since empty parent segments are skipped outright.
func (e *Evaluator) NarrowChunked(parentCS *engine.ChunkedSelection, child sdl.Query, c sdl.Constraint) (*engine.ChunkedSelection, error) {
	key := child.Key()
	caching := e.caching.Load()
	cur := e.tab.Stamp()
	if caching {
		if ent, ok := e.cached(key); ok {
			if ent.stamp.Version() == cur.Version() {
				e.countCacheHit()
				return ent.cs, nil
			}
			// Stale after mutation: parentCS is the child's current
			// parent selection, so re-filtering just its dirty-chunk
			// segments and splicing reproduces the child exactly —
			// cheaper than refreshChunked's full constraint chain.
			if dirty := e.deltaDirty(ent.stamp, ent.cs.NumRows(), ent.cs.ChunkRows(), cur); dirty != nil &&
				parentCS.NumRows() == cur.NumRows() && parentCS.ChunkRows() == cur.ChunkRows() {
				fresh, err := e.applyConstraint(engine.RestrictChunked(parentCS, dirty), c)
				if err != nil {
					return nil, err
				}
				cs := engine.SpliceChunked(ent.cs, fresh, dirty)
				e.countDeltaRefresh()
				e.store(key, cs, cur)
				return cs, nil
			}
		}
	}
	cs, err := e.applyConstraint(parentCS, c)
	if err != nil {
		return nil, err
	}
	e.countNarrowEval()
	if caching {
		e.store(key, cs, cur)
	}
	return cs, nil
}

// resolveConstraint prepares one predicate application: it takes a
// consistent layout snapshot, re-chunks a selection cached under an
// older layout (zone maps index the snapshot layout's chunks, so a
// verdict must never see mismatched addressing), resolves the
// column, and fetches its zone map when pruning is on.
func (e *Evaluator) resolveConstraint(cs *engine.ChunkedSelection, attr string) (*engine.ChunkedSelection, engine.Column, *engine.ChunkSummary, error) {
	// One layout snapshot per constraint: the selection's chunking
	// and the zone map consulted for it must describe the same
	// layout, even while another advisor concurrently re-shards the
	// table.
	layout := e.tab.Layout()
	if cs.ChunkRows() != layout.ChunkRows() {
		// The selection was built (and possibly cached) under an
		// older layout — the table has been re-sharded since. The
		// flat row ids are layout-independent, making this a pure
		// re-addressing.
		cs = engine.ChunkSelection(cs.Flat(), e.tab.NumRows(), layout.ChunkRows())
	}
	col, ok := e.tab.ColumnByName(attr)
	if !ok {
		return nil, nil, nil, fmt.Errorf("seg: no column %q in table %q", attr, e.tab.Name())
	}
	var sum *engine.ChunkSummary
	if e.zonePruning.Load() {
		sum = layout.SummaryByName(attr)
	}
	return cs, col, sum, nil
}

// applyConstraint dispatches one predicate to the engine's typed
// chunked column filters, handing every predicate the column's zone
// map so provably disjoint chunks are skipped and provably covered
// ones pass through untouched — numeric bounds for ranges, nominal
// presence sets for string/bool predicates.
func (e *Evaluator) applyConstraint(cs *engine.ChunkedSelection, c sdl.Constraint) (*engine.ChunkedSelection, error) {
	if c.IsAny() {
		return cs, nil
	}
	cs, col, sum, err := e.resolveConstraint(cs, c.Attr)
	if err != nil {
		return nil, err
	}
	switch col := col.(type) {
	case *engine.StringColumn:
		switch c.Kind {
		case sdl.KindSet:
			vals := make([]string, len(c.Set))
			for i, v := range c.Set {
				vals[i] = v.AsString()
			}
			return engine.FilterStringSetChunked(col, cs, vals, sum), nil
		case sdl.KindRange:
			return engine.FilterStringRangeChunked(col, cs,
				c.Range.Lo.AsString(), c.Range.Hi.AsString(),
				c.Range.LoIncl, c.Range.HiIncl, sum), nil
		}
	case *engine.BoolColumn:
		if c.Kind == sdl.KindSet {
			vals := make([]bool, len(c.Set))
			for i, v := range c.Set {
				vals[i] = v.AsBool()
			}
			return engine.FilterBoolSetChunked(col, cs, vals, sum), nil
		}
		return nil, fmt.Errorf("seg: %s: range constraint on bool column", c.Attr)
	case *engine.FloatColumn:
		switch c.Kind {
		case sdl.KindRange:
			return engine.FilterFloatRangeChunked(col, cs, engine.FloatRange{
				Lo: c.Range.Lo.AsFloat(), Hi: c.Range.Hi.AsFloat(),
				LoIncl: c.Range.LoIncl, HiIncl: c.Range.HiIncl,
			}, sum), nil
		case sdl.KindSet:
			vals := make([]float64, len(c.Set))
			for i, v := range c.Set {
				vals[i] = v.AsFloat()
			}
			return engine.FilterFloatSetChunked(col, cs, vals, sum), nil
		}
	case engine.IntValued: // IntColumn and DateColumn
		switch c.Kind {
		case sdl.KindRange:
			return engine.FilterIntRangeChunked(col, cs, engine.IntRange{
				Lo: c.Range.Lo.AsInt(), Hi: c.Range.Hi.AsInt(),
				LoIncl: c.Range.LoIncl, HiIncl: c.Range.HiIncl,
			}, sum), nil
		case sdl.KindSet:
			vals := make([]int64, len(c.Set))
			for i, v := range c.Set {
				vals[i] = v.AsInt()
			}
			return engine.FilterIntSetChunked(col, cs, vals, sum), nil
		}
	}
	return nil, fmt.Errorf("seg: %s: unsupported %v constraint on %v column", c.Attr, c.Kind, col.Kind())
}

// applyConstraintBitmap is applyConstraint fused into bitmap
// construction: the same verdicts and typed kernels, but the
// predicate loop writes the word-packed bitmap directly instead of
// materializing a selection that would only be packed and dropped.
// The dispatch must mirror applyConstraint case for case — the two
// are the vector and bitmap forms of one evaluation.
func (e *Evaluator) applyConstraintBitmap(cs *engine.ChunkedSelection, c sdl.Constraint) (*engine.Bitmap, error) {
	if c.IsAny() {
		return engine.NewBitmapChunked(cs), nil
	}
	cs, col, sum, err := e.resolveConstraint(cs, c.Attr)
	if err != nil {
		return nil, err
	}
	switch col := col.(type) {
	case *engine.StringColumn:
		switch c.Kind {
		case sdl.KindSet:
			vals := make([]string, len(c.Set))
			for i, v := range c.Set {
				vals[i] = v.AsString()
			}
			return engine.FilterStringSetChunkedBitmap(col, cs, vals, sum), nil
		case sdl.KindRange:
			return engine.FilterStringRangeChunkedBitmap(col, cs,
				c.Range.Lo.AsString(), c.Range.Hi.AsString(),
				c.Range.LoIncl, c.Range.HiIncl, sum), nil
		}
	case *engine.BoolColumn:
		if c.Kind == sdl.KindSet {
			vals := make([]bool, len(c.Set))
			for i, v := range c.Set {
				vals[i] = v.AsBool()
			}
			return engine.FilterBoolSetChunkedBitmap(col, cs, vals, sum), nil
		}
		return nil, fmt.Errorf("seg: %s: range constraint on bool column", c.Attr)
	case *engine.FloatColumn:
		switch c.Kind {
		case sdl.KindRange:
			return engine.FilterFloatRangeChunkedBitmap(col, cs, engine.FloatRange{
				Lo: c.Range.Lo.AsFloat(), Hi: c.Range.Hi.AsFloat(),
				LoIncl: c.Range.LoIncl, HiIncl: c.Range.HiIncl,
			}, sum), nil
		case sdl.KindSet:
			vals := make([]float64, len(c.Set))
			for i, v := range c.Set {
				vals[i] = v.AsFloat()
			}
			return engine.FilterFloatSetChunkedBitmap(col, cs, vals, sum), nil
		}
	case engine.IntValued: // IntColumn and DateColumn
		switch c.Kind {
		case sdl.KindRange:
			return engine.FilterIntRangeChunkedBitmap(col, cs, engine.IntRange{
				Lo: c.Range.Lo.AsInt(), Hi: c.Range.Hi.AsInt(),
				LoIncl: c.Range.LoIncl, HiIncl: c.Range.HiIncl,
			}, sum), nil
		case sdl.KindSet:
			vals := make([]int64, len(c.Set))
			for i, v := range c.Set {
				vals[i] = v.AsInt()
			}
			return engine.FilterIntSetChunkedBitmap(col, cs, vals, sum), nil
		}
	}
	return nil, fmt.Errorf("seg: %s: unsupported %v constraint on %v column", c.Attr, c.Kind, col.Kind())
}
