// Package seg implements segmentations (Definition 3) and everything
// that operates on them: an evaluator that turns SDL queries into
// row selections with caching, the three primitives CUT, COMPOSE and
// PRODUCT of Section 4.1, and the quality metrics of Section 3 —
// entropy, simplicity, breadth — plus the INDEP dependence quotient
// of Proposition 1.
package seg

import (
	"fmt"

	"charles/internal/engine"
	"charles/internal/sdl"
)

// Counters instruments the evaluator for the scalability experiments
// (E6/E7): how often work was reused versus recomputed.
type Counters struct {
	// FullEvals counts constraint-by-constraint query evaluations.
	FullEvals int
	// NarrowEvals counts incremental child evaluations (filtering a
	// parent's selection by one new constraint), the cheap path cuts
	// take.
	NarrowEvals int
	// CacheHits counts selections served from the query cache.
	CacheHits int
	// CutPointCalcs counts median/quantile computations, the
	// operation Section 5.1 calls the vertical-scalability
	// bottleneck.
	CutPointCalcs int
}

// Evaluator binds SDL queries to a table and caches the resulting
// selections by canonical query string, implementing the reuse
// opportunity Section 5.1 points out ("the calculations ... can be
// reused from one iteration to the next"). An Evaluator is not safe
// for concurrent use; each advisory session owns one.
type Evaluator struct {
	tab     *engine.Table
	cache   map[string]engine.Selection
	caching bool
	count   Counters
}

// NewEvaluator returns a caching evaluator over t.
func NewEvaluator(t *engine.Table) *Evaluator {
	return &Evaluator{
		tab:     t,
		cache:   make(map[string]engine.Selection),
		caching: true,
	}
}

// Table returns the relation the evaluator is bound to.
func (e *Evaluator) Table() *engine.Table { return e.tab }

// SetCaching toggles the selection cache (the E6 ablation). Turning
// caching off also drops the current cache.
func (e *Evaluator) SetCaching(on bool) {
	e.caching = on
	if !on {
		e.cache = make(map[string]engine.Selection)
	}
}

// Counters returns a copy of the instrumentation counters.
func (e *Evaluator) Counters() Counters { return e.count }

// ResetCounters zeroes the instrumentation counters.
func (e *Evaluator) ResetCounters() { e.count = Counters{} }

// CacheLen returns the number of cached selections.
func (e *Evaluator) CacheLen() int { return len(e.cache) }

// Select returns the sorted row selection R(Q). Results are cached
// under the query's canonical key. The returned selection must not
// be mutated.
func (e *Evaluator) Select(q sdl.Query) (engine.Selection, error) {
	key := q.Key()
	if e.caching {
		if sel, ok := e.cache[key]; ok {
			e.count.CacheHits++
			return sel, nil
		}
	}
	sel := e.tab.All()
	for _, c := range q.Constraints() {
		if c.IsAny() {
			continue
		}
		var err error
		sel, err = e.applyConstraint(sel, c)
		if err != nil {
			return nil, err
		}
	}
	e.count.FullEvals++
	if e.caching {
		e.cache[key] = sel
	}
	return sel, nil
}

// Count returns |R(Q)|.
func (e *Evaluator) Count(q sdl.Query) (int, error) {
	sel, err := e.Select(q)
	if err != nil {
		return 0, err
	}
	return len(sel), nil
}

// Narrow filters a parent query's selection by one additional (or
// refined) constraint and caches the result under the child query's
// key. It is the incremental path CUT uses: the child's extent is a
// subset of the parent's, so only the changed predicate needs to be
// applied. child must equal parent.WithConstraint(c).
func (e *Evaluator) Narrow(parentSel engine.Selection, child sdl.Query, c sdl.Constraint) (engine.Selection, error) {
	key := child.Key()
	if e.caching {
		if sel, ok := e.cache[key]; ok {
			e.count.CacheHits++
			return sel, nil
		}
	}
	sel, err := e.applyConstraint(parentSel, c)
	if err != nil {
		return nil, err
	}
	e.count.NarrowEvals++
	if e.caching {
		e.cache[key] = sel
	}
	return sel, nil
}

// applyConstraint dispatches one predicate to the engine's typed
// column filters.
func (e *Evaluator) applyConstraint(sel engine.Selection, c sdl.Constraint) (engine.Selection, error) {
	if c.IsAny() {
		return sel, nil
	}
	col, ok := e.tab.ColumnByName(c.Attr)
	if !ok {
		return nil, fmt.Errorf("seg: no column %q in table %q", c.Attr, e.tab.Name())
	}
	switch col := col.(type) {
	case *engine.StringColumn:
		switch c.Kind {
		case sdl.KindSet:
			vals := make([]string, len(c.Set))
			for i, v := range c.Set {
				vals[i] = v.AsString()
			}
			return engine.FilterStringSet(col, sel, vals), nil
		case sdl.KindRange:
			return engine.FilterStringRange(col, sel,
				c.Range.Lo.AsString(), c.Range.Hi.AsString(),
				c.Range.LoIncl, c.Range.HiIncl), nil
		}
	case *engine.BoolColumn:
		if c.Kind == sdl.KindSet {
			vals := make([]bool, len(c.Set))
			for i, v := range c.Set {
				vals[i] = v.AsBool()
			}
			return engine.FilterBoolSet(col, sel, vals), nil
		}
		return nil, fmt.Errorf("seg: %s: range constraint on bool column", c.Attr)
	case *engine.FloatColumn:
		switch c.Kind {
		case sdl.KindRange:
			return engine.FilterFloatRange(col, sel, engine.FloatRange{
				Lo: c.Range.Lo.AsFloat(), Hi: c.Range.Hi.AsFloat(),
				LoIncl: c.Range.LoIncl, HiIncl: c.Range.HiIncl,
			}), nil
		case sdl.KindSet:
			vals := make([]float64, len(c.Set))
			for i, v := range c.Set {
				vals[i] = v.AsFloat()
			}
			return engine.FilterFloatSet(col, sel, vals), nil
		}
	case engine.IntValued: // IntColumn and DateColumn
		switch c.Kind {
		case sdl.KindRange:
			return engine.FilterIntRange(col, sel, engine.IntRange{
				Lo: c.Range.Lo.AsInt(), Hi: c.Range.Hi.AsInt(),
				LoIncl: c.Range.LoIncl, HiIncl: c.Range.HiIncl,
			}), nil
		case sdl.KindSet:
			vals := make([]int64, len(c.Set))
			for i, v := range c.Set {
				vals[i] = v.AsInt()
			}
			return engine.FilterIntSet(col, sel, vals), nil
		}
	}
	return nil, fmt.Errorf("seg: %s: unsupported %v constraint on %v column", c.Attr, c.Kind, col.Kind())
}
