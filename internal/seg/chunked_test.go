package seg

import (
	"math/rand"
	"reflect"
	"testing"

	"charles/internal/dataset"
	"charles/internal/engine"
	"charles/internal/sdl"
)

// vocQueries builds a spread of conjunctive queries over the VOC
// schema: nominal sets, numeric ranges with mixed inclusivity, and
// multi-constraint conjunctions.
func vocQueries() []sdl.Query {
	return []sdl.Query{
		sdl.MustQuery(sdl.SetC("type_of_boat", engine.String_("fluit"))),
		sdl.MustQuery(sdl.ClosedRange("tonnage", engine.Int(200), engine.Int(700))),
		sdl.MustQuery(
			sdl.SetC("type_of_boat", engine.String_("fluit"), engine.String_("jacht")),
			sdl.RangeC("tonnage", engine.Int(100), engine.Int(900), true, false),
		),
		sdl.MustQuery(
			sdl.RangeC("tonnage", engine.Int(0), engine.Int(450), true, true),
			sdl.SetC("departure_harbour", engine.String_("texel")),
		),
	}
}

// TestSelectChunkedMatchesAcrossLayouts is the evaluator-level
// equivalence property: the same query must produce the identical
// flat selection at every chunk width, including widths that leave
// most chunks empty and a partial final chunk.
func TestSelectChunkedMatchesAcrossLayouts(t *testing.T) {
	tab := dataset.VOC(3001, 5) // 3001: partial final chunk at every width
	reference := make(map[string]engine.Selection)
	for _, q := range vocQueries() {
		ev := NewEvaluator(tab) // default layout
		sel, err := ev.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		reference[q.Key()] = sel
	}
	for _, chunkRows := range []int{64, 448, 1 << 12} {
		tab := dataset.VOC(3001, 5)
		tab.SetChunkRows(chunkRows) // 448 normalizes up to 512
		ev := NewEvaluator(tab)
		for _, q := range vocQueries() {
			cs, err := ev.SelectChunked(q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cs.Flat(), reference[q.Key()]) {
				t.Fatalf("chunkRows=%d: selection for %s diverged from default layout", chunkRows, q)
			}
			if cs.ChunkRows() != tab.ChunkRows() {
				t.Fatalf("selection carries chunkRows=%d, want %d", cs.ChunkRows(), tab.ChunkRows())
			}
		}
	}
}

// TestNarrowChunkedTouchesOnlyParentChunks pins the narrow-eval
// skipping: a parent confined to a few chunks must produce a child
// whose segments are empty wherever the parent's were.
func TestNarrowChunkedTouchesOnlyParentChunks(t *testing.T) {
	tab := dataset.VOC(4000, 7)
	tab.SetChunkRows(256)
	ev := NewEvaluator(tab)
	// A parent confined to the first chunk by construction.
	parentSel := engine.Selection{}
	for r := int32(0); r < 200; r++ {
		parentSel = append(parentSel, r)
	}
	parentCS := engine.ChunkSelection(parentSel, tab.NumRows(), tab.ChunkRows())
	parent := sdl.MustQuery(sdl.Any("tonnage"))
	c := sdl.ClosedRange("tonnage", engine.Int(0), engine.Int(10000))
	child := parent.WithConstraint(c)
	childCS, err := ev.NarrowChunked(parentCS, child, c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < childCS.NumChunks(); i++ {
		if len(childCS.Seg(i)) != 0 {
			t.Fatalf("chunk %d has rows although the parent was confined to chunk 0", i)
		}
	}
	if childCS.Len() == 0 {
		t.Fatal("covering range should keep the whole parent")
	}
}

// TestCutMatchesAcrossChunkLayouts runs the full CUT primitive at
// several chunk widths and requires identical pieces and counts —
// the cut-point math must not see chunk boundaries.
func TestCutMatchesAcrossChunkLayouts(t *testing.T) {
	type cutResult struct {
		keys   []string
		counts []int
	}
	run := func(chunkRows int) cutResult {
		tab := dataset.VOC(2777, 3)
		if chunkRows > 0 {
			tab.SetChunkRows(chunkRows)
		}
		ev := NewEvaluator(tab)
		ctx, err := sdl.ContextOn(tab, "type_of_boat", "tonnage", "departure_harbour")
		if err != nil {
			t.Fatal(err)
		}
		s, ok, err := InitialCut(ev, ctx, "tonnage", DefaultCutOptions())
		if err != nil || !ok {
			t.Fatalf("initial cut: %v ok=%v", err, ok)
		}
		s, err = Cut(ev, s, "type_of_boat", DefaultCutOptions())
		if err != nil {
			t.Fatal(err)
		}
		s, err = Cut(ev, s, "departure_harbour", CutOptions{Arity: 3})
		if err != nil {
			t.Fatal(err)
		}
		var res cutResult
		for i, q := range s.Queries {
			res.keys = append(res.keys, q.Key())
			res.counts = append(res.counts, s.Counts[i])
		}
		return res
	}
	want := run(0)
	for _, chunkRows := range []int{64, 1000, 1 << 13} {
		got := run(chunkRows)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunkRows=%d: cut result diverged\n got %+v\nwant %+v", chunkRows, got, want)
		}
	}
}

// TestPairMemoSharesSides pins the satellite reuse claim: with a
// memo in the options, repeated pairwise operator calls over the
// same segmentations stop re-fetching their selections — the
// cache-hit counter stays flat after the first call.
func TestPairMemoSharesSides(t *testing.T) {
	tab := dataset.VOC(2000, 9)
	ev := NewEvaluator(tab)
	ctx, err := sdl.ContextOn(tab, "type_of_boat", "tonnage", "departure_harbour")
	if err != nil {
		t.Fatal(err)
	}
	s1, ok, err := InitialCut(ev, ctx, "type_of_boat", DefaultCutOptions())
	if err != nil || !ok {
		t.Fatalf("cut: %v", err)
	}
	s2, ok, err := InitialCut(ev, ctx, "tonnage", DefaultCutOptions())
	if err != nil || !ok {
		t.Fatalf("cut: %v", err)
	}
	memo := NewPairMemo()
	opt := PairOptions{Workers: 1, Memo: memo}
	base, err := IndepOpt(ev, s1, s2, opt)
	if err != nil {
		t.Fatal(err)
	}
	hitsAfterFirst := ev.Counters().CacheHits
	// Product + CellCounts + Indep + ChiSquare over the same pair:
	// all sides come from the memo, no further selection lookups.
	if _, err := ProductOpt(ev, s1, s2, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := CellCountsOpt(ev, s1, s2, opt); err != nil {
		t.Fatal(err)
	}
	again, err := IndepOpt(ev, s1, s2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ChiSquareIndependentOpt(ev, s1, s2, 0.05, opt); err != nil {
		t.Fatal(err)
	}
	if got := ev.Counters().CacheHits; got != hitsAfterFirst {
		t.Fatalf("memoized operator calls still hit the selection cache: %d -> %d", hitsAfterFirst, got)
	}
	if again != base {
		t.Fatalf("memoized INDEP = %v, want %v", again, base)
	}
	// Without a memo the same calls do re-fetch selections.
	plain := PairOptions{Workers: 1}
	if _, err := IndepOpt(ev, s1, s2, plain); err != nil {
		t.Fatal(err)
	}
	if got := ev.Counters().CacheHits; got == hitsAfterFirst {
		t.Fatal("memo-less operator call did not consult the selection cache (test premise broken)")
	}
}

// TestPairMemoMatchesUnmemoized proves the memo is purely a
// performance artifact: INDEP values with and without it agree on
// random segmentation pairs.
func TestPairMemoMatchesUnmemoized(t *testing.T) {
	tab := dataset.VOC(1500, 11)
	ev := NewEvaluator(tab)
	ctx, err := sdl.ContextOn(tab, "type_of_boat", "tonnage", "departure_harbour", "trip")
	if err != nil {
		t.Fatal(err)
	}
	attrs := []string{"type_of_boat", "tonnage", "departure_harbour", "trip"}
	var segs []*Segmentation
	for _, a := range attrs {
		s, ok, err := InitialCut(ev, ctx, a, DefaultCutOptions())
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			segs = append(segs, s)
		}
	}
	memo := NewPairMemo()
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		i, j := rng.Intn(len(segs)), rng.Intn(len(segs))
		with, err := IndepOpt(ev, segs[i], segs[j], PairOptions{Workers: 2, Memo: memo})
		if err != nil {
			t.Fatal(err)
		}
		without, err := IndepOpt(ev, segs[i], segs[j], PairOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if with != without {
			t.Fatalf("INDEP(%d,%d) with memo %v != without %v", i, j, with, without)
		}
	}
}
