package seg

import (
	"fmt"
	"math"

	"charles/internal/engine"
	"charles/internal/sdl"
	"charles/internal/stats"
)

// CutOptions parameterizes the CUT primitive.
type CutOptions struct {
	// Arity is the number of pieces per cut. 2 is the paper's median
	// cut; higher arities implement the Section 5.2 quantile
	// extension ("we have to develop support for other quantiles").
	Arity int
	// NominalOrderThreshold is the distinct-value count at or below
	// which nominal values are ordered by descending frequency; above
	// it they are ordered alphabetically (Section 4.1's rule for
	// "low cardinality" columns). Zero means the default of 12.
	NominalOrderThreshold int
	// SampleSize, when positive, computes cut points (medians,
	// quantiles, nominal frequencies) on a deterministic systematic
	// sample of at most this many rows instead of the full extent —
	// the Section 5.2 sampling strategy. Segment extents and counts
	// stay exact; only the cut point estimation is approximate.
	SampleSize int
}

// DefaultCutOptions returns the paper's configuration: binary median
// cuts, frequency ordering up to 12 distinct values, exact medians.
func DefaultCutOptions() CutOptions {
	return CutOptions{Arity: 2, NominalOrderThreshold: 12}
}

func (o CutOptions) normalize() CutOptions {
	if o.Arity < 2 {
		o.Arity = 2
	}
	if o.NominalOrderThreshold <= 0 {
		o.NominalOrderThreshold = 12
	}
	return o
}

// CutQuery splits one query into up to Arity pieces along attr
// (Definition 5). The pieces partition R(q): numeric attributes are
// split at equi-depth points into ranges [min,p0), [p0,p1), ...,
// [p_last,max]; nominal attributes are split on the ordered value
// list at the accumulated-frequency points. A query whose attribute
// is constant within its extent cannot be split and is returned
// unchanged as a single piece (documented deviation: the paper is
// silent on degenerate cuts).
func CutQuery(ev *Evaluator, q sdl.Query, attr string, opt CutOptions) ([]sdl.Query, error) {
	opt = opt.normalize()
	col, ok := ev.Table().ColumnByName(attr)
	if !ok {
		return nil, fmt.Errorf("seg: cut on unknown column %q", attr)
	}
	cs, err := ev.SelectChunked(q)
	if err != nil {
		return nil, err
	}
	if cs.Len() < 2 {
		return []sdl.Query{q}, nil // nothing to split
	}
	// Sampled cut points draw a systematic sample from the flat view;
	// exact ones run shard-at-a-time on the chunked selection and
	// never materialize it. (Nominal cuts always see the full extent
	// regardless: a sampled dictionary could miss rare values, and
	// rows holding them would fall outside every piece, breaking
	// Definition 3. Counting is a single O(n) pass, so there is
	// nothing to save anyway — sampling targets the sort-based
	// medians.)
	var pointSel engine.Selection
	if opt.SampleSize > 0 && cs.Len() > opt.SampleSize {
		pointSel = stats.StridedInt32(cs.Flat(), opt.SampleSize)
	}
	// All piece computation routes through the evaluator's cut-point
	// cache: version-equal entries are served outright, stale exact
	// entries refresh only the mutation-dirtied chunks.
	pieces, err := ev.cutPieces(q, attr, col, cs, pointSel, opt)
	if err != nil {
		return nil, err
	}
	if len(pieces) < 2 {
		return []sdl.Query{q}, nil // degenerate: constant within extent
	}
	out := make([]sdl.Query, 0, len(pieces))
	for _, piece := range pieces {
		child, nonEmpty, err := childQuery(q, piece)
		if err != nil {
			return nil, err
		}
		if !nonEmpty {
			continue
		}
		out = append(out, child)
	}
	if len(out) < 2 {
		return []sdl.Query{q}, nil
	}
	return out, nil
}

// childQuery conjoins the piece constraint with the query's existing
// predicate on the same attribute, so a cut on an attribute that is
// already constrained narrows rather than replaces (e.g. a second
// cut on tonnage inside a tonnage range, or a range cut over a set
// constraint).
func childQuery(q sdl.Query, piece sdl.Constraint) (sdl.Query, bool, error) {
	existing, ok := q.Constraint(piece.Attr)
	if !ok || existing.IsAny() {
		return q.WithConstraint(piece), true, nil
	}
	merged, nonEmpty, err := sdl.IntersectConstraints(existing, piece)
	if err != nil {
		return sdl.Query{}, false, err
	}
	if !nonEmpty {
		return sdl.Query{}, false, nil
	}
	return q.WithConstraint(merged), true, nil
}

func intPieces(attr string, col engine.IntValued, cs *engine.ChunkedSelection, pointSel engine.Selection, opt CutOptions) ([]sdl.Constraint, error) {
	min, max, _ := engine.IntMinMaxChunked(col, cs)
	if min == max {
		return nil, nil
	}
	var points []int64
	if pointSel != nil {
		points = engine.IntCutPoints(col, pointSel, opt.Arity)
	} else {
		points = engine.IntCutPointsChunked(col, cs, opt.Arity)
	}
	points = clampIntPoints(points, min, max)
	if len(points) == 0 {
		return nil, nil
	}
	return intRangePieces(attr, col, min, max, points), nil
}

// intRangePieces assembles the half-open range constraints for the
// bounds [min, p0), [p0, p1), ..., [p_last, max] — the shared tail of
// the scratch-based and cached-run int cut paths.
func intRangePieces(attr string, col engine.IntValued, min, max int64, points []int64) []sdl.Constraint {
	mk := func(days int64) engine.Value {
		if col.Kind() == engine.KindDate {
			return engine.Date(days)
		}
		return engine.Int(days)
	}
	bounds := append([]int64{min}, points...)
	out := make([]sdl.Constraint, 0, len(bounds))
	for i := range bounds {
		lo := bounds[i]
		var c sdl.Constraint
		if i == len(bounds)-1 {
			c = sdl.RangeC(attr, mk(lo), mk(max), true, true)
		} else {
			c = sdl.RangeC(attr, mk(lo), mk(bounds[i+1]), true, false)
		}
		out = append(out, c)
	}
	return out
}

// errCutKind is the uncuttable-column error both the cached and
// uncached dispatch return.
func errCutKind(attr string, col engine.Column) error {
	return fmt.Errorf("seg: cannot cut column %q of kind %v", attr, col.Kind())
}

// clampIntPoints drops sampled cut points that fall outside the
// exact (min, max] interior — possible when the sample missed the
// extremes.
func clampIntPoints(points []int64, min, max int64) []int64 {
	out := points[:0]
	for _, p := range points {
		if p > min && p <= max {
			out = append(out, p)
		}
	}
	return out
}

func floatPieces(attr string, col engine.FloatValued, cs *engine.ChunkedSelection, pointSel engine.Selection, opt CutOptions) ([]sdl.Constraint, error) {
	min, max, _ := engine.FloatMinMaxChunked(col, cs)
	if min == max {
		return nil, nil
	}
	var points []float64
	if pointSel != nil {
		points = engine.FloatCutPoints(col, pointSel, opt.Arity)
	} else {
		points = engine.FloatCutPointsChunked(col, cs, opt.Arity)
	}
	clamped := points[:0]
	for _, p := range points {
		if p > min && p <= max {
			clamped = append(clamped, p)
		}
	}
	if len(clamped) == 0 {
		return nil, nil
	}
	bounds := append([]float64{min}, clamped...)
	out := make([]sdl.Constraint, 0, len(bounds))
	for i := range bounds {
		lo := bounds[i]
		var c sdl.Constraint
		if i == len(bounds)-1 {
			c = sdl.RangeC(attr, engine.Float(lo), engine.Float(max), true, true)
		} else {
			c = sdl.RangeC(attr, engine.Float(lo), engine.Float(bounds[i+1]), true, false)
		}
		out = append(out, c)
	}
	return out, nil
}

// numericNominalFallback rescues numeric columns the median cut
// degenerates on: when one value holds the majority, the upper
// median equals the minimum and every equi-depth point collapses
// (e.g. an HTTP status column that is 92% the value 200). If the
// column still has at least two distinct values, it is cut
// nominally — frequency-ordered set constraints — exactly like a
// categorical column. Documented deviation: the paper's Definition 5
// simply cannot split such a column.
//
// Counting iterates the typed values and keys the map on the raw
// 64-bit payload: one integer map op per row, no Value boxing and no
// string formatting in the loop. Values are formatted once per
// distinct value at the end, where nominalPieces needs the canonical
// strings for ordering; the ordering itself is deterministic (ties
// broken on the value string) regardless of map iteration order,
// which TestNumericNominalFallbackDeterministic pins.
func numericNominalFallback(attr string, col engine.Column, sel engine.Selection, opt CutOptions) []sdl.Constraint {
	// The fallback only fires on near-constant extents, so the
	// distinct count is small; a modest size hint avoids both rehash
	// churn and a |sel|-sized over-allocation.
	counts := make(map[uint64]int, 16)
	var toValue func(bits uint64) engine.Value
	switch col := col.(type) {
	case engine.IntValued:
		for _, row := range sel {
			counts[uint64(col.Int64(int(row)))]++
		}
		if col.Kind() == engine.KindDate {
			toValue = func(bits uint64) engine.Value { return engine.Date(int64(bits)) }
		} else {
			toValue = func(bits uint64) engine.Value { return engine.Int(int64(bits)) }
		}
	case engine.FloatValued:
		for _, row := range sel {
			v := col.Float64(int(row))
			if v != v {
				// Canonicalize NaN: every payload renders as the one
				// string "NaN", so distinct NaN bit patterns must
				// count as one value exactly like the string-keyed
				// counting always did.
				v = math.NaN()
			}
			counts[math.Float64bits(v)]++
		}
		toValue = func(bits uint64) engine.Value { return engine.Float(math.Float64frombits(bits)) }
	default:
		return nil
	}
	if len(counts) < 2 {
		return nil
	}
	byKey := make(map[string]engine.Value, len(counts))
	vcs := make([]stats.ValueCount, 0, len(counts))
	//lint:deterministic vcs and byKey are value-keyed accumulators; nominalPieces fully re-orders vcs before anything ranked sees it
	for bits, n := range counts {
		v := toValue(bits)
		key := v.String()
		byKey[key] = v
		vcs = append(vcs, stats.ValueCount{Value: key, Count: n})
	}
	pieces, err := nominalPieces(attr, vcs, func(key string) engine.Value {
		return byKey[key]
	}, opt)
	if err != nil {
		return nil
	}
	return pieces
}

func stringSetValue(s string) engine.Value { return engine.String_(s) }

func boolSetValue(s string) engine.Value { return engine.Bool(s == "true") }

// nominalPieces implements the Section 4.1 nominal median: order the
// values (by occurrence for low-cardinality columns, alphabetically
// otherwise), then split where the accumulated frequency is closest
// to the quantile targets.
func nominalPieces(attr string, vcs []stats.ValueCount, mk func(string) engine.Value, opt CutOptions) ([]sdl.Constraint, error) {
	if len(vcs) < 2 {
		return nil, nil
	}
	if len(vcs) <= opt.NominalOrderThreshold {
		stats.OrderByFrequency(vcs)
	} else {
		stats.OrderAlphabetically(vcs)
	}
	points := stats.NominalSplitPoints(vcs, opt.Arity)
	if len(points) == 0 {
		return nil, nil
	}
	bounds := append([]int{0}, points...)
	bounds = append(bounds, len(vcs))
	out := make([]sdl.Constraint, 0, len(bounds)-1)
	for i := 0; i+1 < len(bounds); i++ {
		part := vcs[bounds[i]:bounds[i+1]]
		vals := make([]engine.Value, len(part))
		for j, vc := range part {
			vals[j] = mk(vc.Value)
		}
		out = append(out, sdl.SetC(attr, vals...))
	}
	return out, nil
}

// Cut applies CUT to a whole segmentation (Definition 6): every
// query is cut on attr with its own cut points. Queries that cannot
// be split are kept whole, so the result is always a valid partition
// of the same context.
func Cut(ev *Evaluator, s *Segmentation, attr string, opt CutOptions) (*Segmentation, error) {
	out := &Segmentation{CutAttrs: addAttr(s.CutAttrs, attr)}
	anySplit := false
	for i, q := range s.Queries {
		children, err := CutQuery(ev, q, attr, opt)
		if err != nil {
			return nil, err
		}
		if len(children) == 1 {
			// Degenerate cut: the query survives whole and its count
			// is already known, so the parent selection is never
			// needed — fetching it anyway would be a wasted full
			// evaluation with caching off and would skew the E6/E7
			// FullEvals counters.
			if s.Counts[i] > 0 {
				out.Queries = append(out.Queries, children[0])
				out.Counts = append(out.Counts, s.Counts[i])
			}
			continue
		}
		anySplit = true
		parentCS, err := ev.SelectChunked(q)
		if err != nil {
			return nil, err
		}
		for _, child := range children {
			c, ok := child.Constraint(attr)
			if !ok {
				return nil, fmt.Errorf("seg: cut child lost its %q constraint", attr)
			}
			childCS, err := ev.NarrowChunked(parentCS, child, c)
			if err != nil {
				return nil, err
			}
			count := childCS.Len()
			if count == 0 {
				continue
			}
			out.Queries = append(out.Queries, child)
			out.Counts = append(out.Counts, count)
		}
	}
	if !anySplit {
		// Nothing split: the attribute is constant in every piece.
		// Keep the original attribute set so callers can detect the
		// no-op.
		return &Segmentation{Queries: s.Queries, CutAttrs: s.CutAttrs, Counts: s.Counts}, nil
	}
	return out, nil
}

// InitialCut builds the binary segmentation CUT_attr(context), the
// seed candidates of HB-cuts (Figure 4, lines 3-5). The boolean is
// false when the attribute cannot be split (constant within the
// context).
func InitialCut(ev *Evaluator, context sdl.Query, attr string, opt CutOptions) (*Segmentation, bool, error) {
	count, err := ev.Count(context)
	if err != nil {
		return nil, false, err
	}
	if count == 0 {
		return nil, false, fmt.Errorf("seg: context %s selects no rows", context)
	}
	s, err := Cut(ev, singleton(context, count), attr, opt)
	if err != nil {
		return nil, false, err
	}
	if s.Depth() < 2 {
		return nil, false, nil
	}
	return s, true, nil
}

// Compose implements COMPOSE(S1, S2) (Definition 7): S1 is cut
// successively on each attribute S2 is based on, innermost last
// (CUT_att1(CUT_att2(...CUT_attN(S1)))).
func Compose(ev *Evaluator, s1, s2 *Segmentation, opt CutOptions) (*Segmentation, error) {
	out := s1
	attrs := s2.CutAttrs
	for i := len(attrs) - 1; i >= 0; i-- {
		var err error
		out, err = Cut(ev, out, attrs[i], opt)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
