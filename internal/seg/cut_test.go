package seg

import (
	"fmt"
	"math/rand"
	"testing"

	"charles/internal/engine"
	"charles/internal/sdl"
)

func evalFor(t *testing.T, tab *engine.Table) *Evaluator {
	t.Helper()
	return NewEvaluator(tab)
}

func TestCutQueryIntBalanced(t *testing.T) {
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i)
	}
	tab := engine.MustNewTable("t", engine.NewIntColumn("v", vals))
	ev := evalFor(t, tab)
	ctx := sdl.ContextAll(tab)
	children, err := CutQuery(ev, ctx, "v", DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 2 {
		t.Fatalf("children = %d, want 2", len(children))
	}
	left, _ := children[0].Constraint("v")
	right, _ := children[1].Constraint("v")
	if left.Range.Lo.AsInt() != 0 || left.Range.Hi.AsInt() != 50 || left.Range.HiIncl {
		t.Fatalf("left = %+v, want [0, 50)", left.Range)
	}
	if right.Range.Lo.AsInt() != 50 || right.Range.Hi.AsInt() != 99 || !right.Range.HiIncl {
		t.Fatalf("right = %+v, want [50, 99]", right.Range)
	}
}

func TestCutQueryConstantColumn(t *testing.T) {
	tab := engine.MustNewTable("t",
		engine.NewIntColumn("v", []int64{7, 7, 7, 7}),
		engine.NewIntColumn("w", []int64{1, 2, 3, 4}),
	)
	ev := evalFor(t, tab)
	children, err := CutQuery(ev, sdl.ContextAll(tab), "v", DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 1 {
		t.Fatalf("constant column split into %d pieces", len(children))
	}
}

func TestCutQueryUnknownColumn(t *testing.T) {
	tab := engine.MustNewTable("t", engine.NewIntColumn("v", []int64{1, 2}))
	ev := evalFor(t, tab)
	if _, err := CutQuery(ev, sdl.ContextAll(tab), "ghost", DefaultCutOptions()); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestCutQueryTinyExtent(t *testing.T) {
	tab := engine.MustNewTable("t", engine.NewIntColumn("v", []int64{42}))
	ev := evalFor(t, tab)
	children, err := CutQuery(ev, sdl.ContextAll(tab), "v", DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 1 {
		t.Fatalf("single row split into %d pieces", len(children))
	}
}

func TestCutQueryFloat(t *testing.T) {
	tab := engine.MustNewTable("t", engine.NewFloatColumn("v", []float64{1.5, 2.5, 3.5, 4.5}))
	ev := evalFor(t, tab)
	children, err := CutQuery(ev, sdl.ContextAll(tab), "v", DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 2 {
		t.Fatalf("children = %d", len(children))
	}
	left, _ := children[0].Constraint("v")
	if left.Range.Hi.AsFloat() != 3.5 {
		t.Fatalf("float median = %v, want 3.5", left.Range.Hi)
	}
}

func TestCutQueryDatePreservesKind(t *testing.T) {
	tab := engine.MustNewTable("t", engine.NewDateColumn("d", []int64{0, 100, 200, 300}))
	ev := evalFor(t, tab)
	children, err := CutQuery(ev, sdl.ContextAll(tab), "d", DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	left, _ := children[0].Constraint("d")
	if left.Range.Lo.Kind() != engine.KindDate {
		t.Fatalf("date cut produced %v bounds", left.Range.Lo.Kind())
	}
}

func TestCutQueryBool(t *testing.T) {
	tab := engine.MustNewTable("t", engine.NewBoolColumn("armed", []bool{true, false, true, true}))
	ev := evalFor(t, tab)
	children, err := CutQuery(ev, sdl.ContextAll(tab), "armed", DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 2 {
		t.Fatalf("children = %d", len(children))
	}
	for _, q := range children {
		c, _ := q.Constraint("armed")
		if c.Kind != sdl.KindSet || c.Set[0].Kind() != engine.KindBool {
			t.Fatalf("bool piece constraint = %+v", c)
		}
	}
}

func TestCutQueryNominalFrequencyOrder(t *testing.T) {
	// Low cardinality (≤ threshold): most frequent value first, so
	// the dominant value is isolated in the first piece.
	vals := append(append(append([]string{},
		repeat("fluit", 60)...),
		repeat("jacht", 25)...),
		repeat("pinas", 15)...)
	tab := engine.MustNewTable("t", engine.NewStringColumn("type", vals))
	ev := evalFor(t, tab)
	children, err := CutQuery(ev, sdl.ContextAll(tab), "type", DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 2 {
		t.Fatalf("children = %d", len(children))
	}
	first, _ := children[0].Constraint("type")
	if len(first.Set) != 1 || first.Set[0].AsString() != "fluit" {
		t.Fatalf("first piece = %v, want {fluit}", first.Set)
	}
	second, _ := children[1].Constraint("type")
	if len(second.Set) != 2 {
		t.Fatalf("second piece = %v, want {jacht, pinas}", second.Set)
	}
}

func TestCutQueryNominalAlphabeticalOrder(t *testing.T) {
	// High cardinality (> threshold): alphabetical order, so pieces
	// are contiguous alphabetical slices.
	var vals []string
	for i := 0; i < 26; i++ {
		vals = append(vals, repeat(fmt.Sprintf("%c-town", 'a'+i), 4)...)
	}
	tab := engine.MustNewTable("t", engine.NewStringColumn("harbour", vals))
	ev := evalFor(t, tab)
	opt := DefaultCutOptions() // threshold 12 < 26 distinct
	children, err := CutQuery(ev, sdl.ContextAll(tab), "harbour", opt)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := children[0].Constraint("harbour")
	second, _ := children[1].Constraint("harbour")
	// All values in the first piece precede all values in the second.
	maxFirst := first.Set[len(first.Set)-1].AsString()
	minSecond := second.Set[0].AsString()
	if maxFirst >= minSecond {
		t.Fatalf("alphabetical pieces overlap: %q vs %q", maxFirst, minSecond)
	}
	if len(first.Set)+len(second.Set) != 26 {
		t.Fatalf("pieces cover %d values, want 26", len(first.Set)+len(second.Set))
	}
}

func TestCutQueryRespectsExistingRange(t *testing.T) {
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i)
	}
	tab := engine.MustNewTable("t", engine.NewIntColumn("v", vals))
	ev := evalFor(t, tab)
	ctx := sdl.MustQuery(sdl.RangeC("v", engine.Int(0), engine.Int(50), true, false))
	children, err := CutQuery(ev, ctx, "v", DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Cutting inside [0,50) must stay inside it.
	for _, q := range children {
		c, _ := q.Constraint("v")
		if c.Range.Lo.AsInt() < 0 || c.Range.Hi.AsInt() > 50 {
			t.Fatalf("child range %+v escapes parent [0,50)", c.Range)
		}
	}
	left, _ := children[0].Constraint("v")
	if left.Range.Hi.AsInt() != 25 {
		t.Fatalf("nested median = %d, want 25", left.Range.Hi.AsInt())
	}
}

func TestCutQueryRespectsExistingSet(t *testing.T) {
	// Cut on a numeric attribute already constrained by a set: the
	// children's constraints must not admit values outside the set.
	tab := engine.MustNewTable("t", engine.NewIntColumn("v", []int64{10, 20, 30, 40, 50, 20, 40}))
	ev := evalFor(t, tab)
	ctx := sdl.MustQuery(sdl.SetC("v", engine.Int(20), engine.Int(40)))
	children, err := CutQuery(ev, ctx, "v", DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 2 {
		t.Fatalf("children = %d", len(children))
	}
	total := 0
	for _, q := range children {
		c, _ := q.Constraint("v")
		if c.Kind != sdl.KindSet {
			t.Fatalf("child constraint kind = %v, want set (intersection)", c.Kind)
		}
		n, err := ev.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != 4 { // rows with v in {20, 40}
		t.Fatalf("children cover %d rows, want 4", total)
	}
}

func TestCutQuerySkewedIntNominalFallback(t *testing.T) {
	// 92% of the rows share one value: the upper median equals the
	// minimum, so the range cut degenerates and the nominal fallback
	// must kick in with set constraints.
	vals := make([]int64, 100)
	for i := range vals {
		switch {
		case i < 92:
			vals[i] = 200
		case i < 96:
			vals[i] = 404
		default:
			vals[i] = 500
		}
	}
	tab := engine.MustNewTable("t", engine.NewIntColumn("status", vals))
	ev := evalFor(t, tab)
	ctx := sdl.ContextAll(tab)
	children, err := CutQuery(ev, ctx, "status", DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 2 {
		t.Fatalf("children = %d, want 2 (nominal fallback)", len(children))
	}
	first, _ := children[0].Constraint("status")
	if first.Kind != sdl.KindSet || len(first.Set) != 1 || first.Set[0].AsInt() != 200 {
		t.Fatalf("first piece = %+v, want {200}", first)
	}
	s := &Segmentation{Queries: children, CutAttrs: []string{"status"}}
	for _, q := range children {
		n, _ := ev.Count(q)
		s.Counts = append(s.Counts, n)
	}
	if err := ValidatePartition(ev, ctx, s); err != nil {
		t.Fatal(err)
	}
}

func TestCutQuerySkewedFloatNominalFallback(t *testing.T) {
	vals := make([]float64, 50)
	for i := range vals {
		if i < 45 {
			vals[i] = 1.5
		} else {
			vals[i] = 9.5
		}
	}
	tab := engine.MustNewTable("t", engine.NewFloatColumn("v", vals))
	ev := evalFor(t, tab)
	children, err := CutQuery(ev, sdl.ContextAll(tab), "v", DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 2 {
		t.Fatalf("children = %d, want 2", len(children))
	}
	c, _ := children[0].Constraint("v")
	if c.Kind != sdl.KindSet {
		t.Fatalf("fallback kind = %v, want set", c.Kind)
	}
}

func TestCutQueryArity3(t *testing.T) {
	vals := make([]int64, 90)
	for i := range vals {
		vals[i] = int64(i)
	}
	tab := engine.MustNewTable("t", engine.NewIntColumn("v", vals))
	ev := evalFor(t, tab)
	opt := DefaultCutOptions()
	opt.Arity = 3
	children, err := CutQuery(ev, sdl.ContextAll(tab), "v", opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 3 {
		t.Fatalf("children = %d, want 3 (tertiles)", len(children))
	}
	for _, q := range children {
		n, _ := ev.Count(q)
		if n != 30 {
			t.Fatalf("tertile size = %d, want 30", n)
		}
	}
}

func TestCutQuerySampledStaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = rng.Int63n(1000)
	}
	tab := engine.MustNewTable("t", engine.NewIntColumn("v", vals))
	ev := evalFor(t, tab)
	opt := DefaultCutOptions()
	opt.SampleSize = 256
	ctx := sdl.ContextAll(tab)
	children, err := CutQuery(ev, ctx, "v", opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 2 {
		t.Fatalf("children = %d", len(children))
	}
	// Sampled cut point may be off-median but the pieces must still
	// partition the context.
	s := &Segmentation{Queries: children, CutAttrs: []string{"v"}}
	for _, q := range children {
		n, _ := ev.Count(q)
		s.Counts = append(s.Counts, n)
	}
	if err := ValidatePartition(ev, ctx, s); err != nil {
		t.Fatal(err)
	}
	// And the split should still be roughly balanced (within 20%).
	if bal := s.Balance(); bal < 0.9 {
		t.Fatalf("sampled cut badly unbalanced: %v", bal)
	}
}

func TestCutSegmentationDoublesDepth(t *testing.T) {
	tab, ev := figure2Table(t)
	ctx := context2(t, tab)
	a := setA(t, ev, ctx)
	cut, err := Cut(ev, a, "date", DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cut.Depth() != 4 {
		t.Fatalf("depth = %d, want 4 (Definition 6 doubles partitions)", cut.Depth())
	}
	if len(cut.CutAttrs) != 2 {
		t.Fatalf("CutAttrs = %v", cut.CutAttrs)
	}
}

func TestCutSegmentationNoOpKeepsAttrs(t *testing.T) {
	tab := engine.MustNewTable("t",
		engine.NewIntColumn("v", []int64{1, 2, 3, 4}),
		engine.NewIntColumn("c", []int64{7, 7, 7, 7}),
	)
	ev := evalFor(t, tab)
	ctx := sdl.ContextAll(tab)
	a, ok, err := InitialCut(ev, ctx, "v", DefaultCutOptions())
	if err != nil || !ok {
		t.Fatal(err)
	}
	noop, err := Cut(ev, a, "c", DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	if noop.Depth() != a.Depth() {
		t.Fatalf("no-op cut changed depth to %d", noop.Depth())
	}
	if len(noop.CutAttrs) != 1 || noop.CutAttrs[0] != "v" {
		t.Fatalf("no-op cut changed attrs: %v", noop.CutAttrs)
	}
}

func TestInitialCutConstantColumn(t *testing.T) {
	tab := engine.MustNewTable("t", engine.NewIntColumn("c", []int64{7, 7}))
	ev := evalFor(t, tab)
	_, ok, err := InitialCut(ev, sdl.ContextAll(tab), "c", DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("constant column produced an initial cut")
	}
}

func TestInitialCutEmptyContext(t *testing.T) {
	tab := engine.MustNewTable("t", engine.NewIntColumn("v", []int64{1, 2}))
	ev := evalFor(t, tab)
	ctx := sdl.MustQuery(sdl.ClosedRange("v", engine.Int(100), engine.Int(200)))
	if _, _, err := InitialCut(ev, ctx, "v", DefaultCutOptions()); err == nil {
		t.Fatal("empty context accepted")
	}
}

func TestComposeOnEmptyAttrSetIsIdentity(t *testing.T) {
	tab, ev := figure2Table(t)
	ctx := context2(t, tab)
	a := setA(t, ev, ctx)
	count, _ := ev.Count(ctx)
	id, err := Compose(ev, a, singleton(ctx, count), DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	if id.Depth() != a.Depth() {
		t.Fatalf("compose with attribute-free segmentation changed depth")
	}
}

func repeat(s string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = s
	}
	return out
}

// TestDegenerateCutSkipsParentEval is the regression test for the
// wasted-evaluation fix: when a query cannot be split (the attribute
// is constant within its extent), Cut must not fetch the parent
// selection it never uses. With caching off, that wasted fetch was a
// full evaluation per degenerate cut, skewing the E6/E7 FullEvals
// counters.
func TestDegenerateCutSkipsParentEval(t *testing.T) {
	tab := engine.MustNewTable("t",
		engine.NewIntColumn("v", []int64{1, 2, 3, 4}),
		engine.NewIntColumn("c", []int64{7, 7, 7, 7}),
	)
	ev := evalFor(t, tab)
	ctx := sdl.ContextAll(tab)
	a, ok, err := InitialCut(ev, ctx, "v", DefaultCutOptions())
	if err != nil || !ok {
		t.Fatal(err)
	}
	// With caching off every Select is a full evaluation, so the
	// counter exposes exactly how many selections the cut fetched.
	ev.SetCaching(false)
	ev.ResetCounters()
	noop, err := Cut(ev, a, "c", DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	if noop.Depth() != a.Depth() {
		t.Fatalf("no-op cut changed depth to %d", noop.Depth())
	}
	// CutQuery needs one Select per query to find the (degenerate)
	// cut points; the unused parent selection must not add a second.
	if got := ev.Counters().FullEvals; got != a.Depth() {
		t.Fatalf("degenerate cut cost %d full evals, want %d (one per query)", got, a.Depth())
	}
}

// TestMixedCutSkipsParentEvalForDegeneratePieces covers the mixed
// case: one query splits, another is degenerate; only the split one
// may fetch its parent selection a second time.
func TestMixedCutSkipsParentEvalForDegeneratePieces(t *testing.T) {
	// "c" is constant inside the v<=2 half but splits in the other.
	tab := engine.MustNewTable("t",
		engine.NewIntColumn("v", []int64{1, 2, 3, 4}),
		engine.NewIntColumn("c", []int64{7, 7, 8, 9}),
	)
	ev := evalFor(t, tab)
	ctx := sdl.ContextAll(tab)
	a, ok, err := InitialCut(ev, ctx, "v", DefaultCutOptions())
	if err != nil || !ok {
		t.Fatal(err)
	}
	ev.SetCaching(false)
	ev.ResetCounters()
	cut, err := Cut(ev, a, "c", DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	if cut.Depth() != 3 {
		t.Fatalf("depth = %d, want 3 (one degenerate piece, one split)", cut.Depth())
	}
	// Two CutQuery selects + one parent re-select for the split
	// query only. (Narrow evaluations are counted separately.)
	if got := ev.Counters().FullEvals; got != 3 {
		t.Fatalf("mixed cut cost %d full evals, want 3", got)
	}
}
