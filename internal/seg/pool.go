package seg

import "charles/internal/pool"

// Pooled scratch for the pairwise hot path. Every INDEP and
// chi-squared evaluation fills an n1×n2 contingency table, reduces
// it to marginals and entropies, and drops it; HB-cuts runs O(n²)
// of those per advise. Recycling the flat cell buffer and the
// marginal scratch makes the warm pairwise loop allocation-free up
// to the slice headers — the budget TestWarmPairwiseAllocBudget
// pins. Only operators that consume the table internally draw from
// the pools; CellCountsOpt returns caller-owned memory and must
// keep allocating.
var (
	cellScratch     pool.Slice[int]
	marginalScratch pool.Slice[float64]
	prodCellScratch pool.Slice[prodCell]
)
