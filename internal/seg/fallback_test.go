package seg

import (
	"math"
	"testing"

	"charles/internal/engine"
	"charles/internal/sdl"
)

// skewedStatusTable builds the fallback's motivating shape: a
// majority value that collapses every equi-depth point, plus a tail
// of rarer values — as an int column and as a float column (with
// NaN rows, which the fallback must count as one value).
func skewedStatusTable(t *testing.T) *engine.Table {
	t.Helper()
	n := 1000
	ints := make([]int64, n)
	floats := make([]float64, n)
	for i := range ints {
		switch {
		case i%100 == 0:
			ints[i], floats[i] = 500, 5.5
		case i%25 == 0:
			ints[i], floats[i] = 404, 4.25
		case i%200 == 3:
			ints[i], floats[i] = 302, math.NaN()
		default:
			ints[i], floats[i] = 200, 2.0
		}
	}
	return engine.MustNewTable("status",
		engine.NewIntColumn("code", ints),
		engine.NewFloatColumn("latency", floats),
	)
}

// TestNumericNominalFallbackDeterministic pins the fallback's
// ordering: the counting map iterates in random order, so only the
// frequency sort's value tie-break keeps the produced set
// constraints stable. Any run disagreeing with the first is a
// determinism regression.
func TestNumericNominalFallbackDeterministic(t *testing.T) {
	tab := skewedStatusTable(t)
	for _, attr := range []string{"code", "latency"} {
		var baseline []sdl.Query
		for run := 0; run < 25; run++ {
			ev := NewEvaluator(tab)
			children, err := CutQuery(ev, sdl.ContextAll(tab), attr, DefaultCutOptions())
			if err != nil {
				t.Fatal(err)
			}
			if len(children) < 2 {
				t.Fatalf("%s: fallback did not split (%d children)", attr, len(children))
			}
			if baseline == nil {
				baseline = children
				continue
			}
			if len(children) != len(baseline) {
				t.Fatalf("%s run %d: %d children, first run had %d", attr, run, len(children), len(baseline))
			}
			for i := range children {
				if children[i].Key() != baseline[i].Key() {
					t.Fatalf("%s run %d child %d: %s, first run had %s",
						attr, run, i, children[i].Key(), baseline[i].Key())
				}
			}
		}
	}
}

// TestNumericNominalFallbackMatchesStringKeyed pins the bits-keyed
// counting to the observable contract of the old string-keyed
// implementation: the produced pieces partition the extent, the
// majority value leads the frequency order, and all NaN rows land in
// one piece together.
func TestNumericNominalFallbackMatchesStringKeyed(t *testing.T) {
	tab := skewedStatusTable(t)
	ev := NewEvaluator(tab)
	children, err := CutQuery(ev, sdl.ContextAll(tab), "code", DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, q := range children {
		n, err := ev.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatalf("empty piece %s", q)
		}
		total += n
	}
	if total != tab.NumRows() {
		t.Fatalf("pieces cover %d rows, table has %d", total, tab.NumRows())
	}
	// The majority value (200) must sit in the first piece: values
	// order by descending frequency at this cardinality.
	first, ok := children[0].Constraint("code")
	if !ok || first.Kind != sdl.KindSet {
		t.Fatalf("first piece is not a set constraint: %+v", first)
	}
	found := false
	for _, v := range first.Set {
		if v.AsInt() == 200 {
			found = true
		}
	}
	if !found {
		t.Fatalf("majority value 200 not in first piece %s", children[0])
	}

	// Float fallback: NaN matches no set constraint (the documented
	// float64Set convention, unchanged from the string-keyed
	// implementation), so the pieces partition exactly the non-NaN
	// extent — finding more or fewer rows than that means the
	// bits-keyed counting drifted.
	latChildren, err := CutQuery(ev, sdl.ContextAll(tab), "latency", DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	latTotal := 0
	for _, q := range latChildren {
		n, err := ev.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		latTotal += n
	}
	nonNaN := 0
	lat := tab.MustColumn("latency").(*engine.FloatColumn)
	for _, v := range lat.Float64s() {
		if v == v {
			nonNaN++
		}
	}
	if latTotal != nonNaN {
		t.Fatalf("float pieces cover %d rows, non-NaN extent is %d", latTotal, nonNaN)
	}
}
