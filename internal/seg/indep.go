package seg

import (
	"context"
	"fmt"
	"sync"

	"charles/internal/engine"
	"charles/internal/par"
	"charles/internal/sdl"
	"charles/internal/stats"
)

// SelectionRep selects the physical representation of segment
// selections inside the pairwise operators (PRODUCT, CellCounts,
// INDEP). Section 5.1 names segment-pair evaluation as the vertical
// bottleneck: every INDEP costs a full |S1|×|S2| contingency table,
// one intersection count per cell. Dense selections count faster as
// word-packed bitmaps (AND + popcount); sparse ones stay cheaper as
// sorted row-id vectors.
type SelectionRep uint8

// Selection representations.
const (
	// RepAuto picks per selection: bitmap when the extent covers at
	// least 1/64 of the table (engine.DenseEnough), row-id vector
	// otherwise. Mixed cells probe the sparse vector against the
	// dense bitmap.
	RepAuto SelectionRep = iota
	// RepVector forces sorted row-id vectors everywhere (the
	// pre-bitmap behavior, and the ablation baseline).
	RepVector
	// RepBitmap forces word-packed bitmaps everywhere.
	RepBitmap
)

// String names the representation for benchmarks and logs.
func (r SelectionRep) String() string {
	switch r {
	case RepAuto:
		return "auto"
	case RepVector:
		return "vector"
	case RepBitmap:
		return "bitmap"
	default:
		return fmt.Sprintf("rep(%d)", uint8(r))
	}
}

// PairOptions parameterizes the pairwise segmentation operators.
// The zero value — all CPUs, automatic representation, no memo — is
// the right default for direct callers; the advisor core threads
// Config.Workers, Config.Selection and a per-advise memo through
// instead.
type PairOptions struct {
	// Workers bounds the fan-out of the cell loop and the per-query
	// selection gather. Values below 1 mean one worker per available
	// CPU; 1 keeps everything on the calling goroutine.
	Workers int
	// Rep selects the selection representation.
	Rep SelectionRep
	// Memo, when non-nil, caches built pair sides — one segmentation's
	// gathered selections plus their packed bitmaps — across operator
	// calls. HB-cuts evaluates every candidate against O(n) partners
	// per step, and without the memo each Product/CellCounts/Indep/
	// ChiSquare call rebuilds the same sides; the advisor core shares
	// one memo per advise so each segmentation is assembled exactly
	// once per query.
	Memo *PairMemo
	// Ctx cancels the pairwise operator mid-flight: the selection
	// gather and the contingency cell loop — the per-pair cost drivers
	// — re-check it at every task boundary, so a cancelled advise
	// releases its workers within one cell's worth of work. Nil means
	// "never cancelled".
	Ctx context.Context
}

func (o PairOptions) normalize() PairOptions {
	o.Workers = par.Workers(o.Workers)
	return o
}

// PairMemo caches built pair sides by segmentation key within one
// advise. It is safe for concurrent use: the pair evaluations of one
// HB-cuts step fan out across workers and may request the same
// segmentation at once — both build, one wins, and the identical
// immutable results make either correct.
type PairMemo struct {
	mu sync.RWMutex
	m  map[string]*pairSide
}

// NewPairMemo returns an empty pair-side memo for one advise run.
func NewPairMemo() *PairMemo {
	return &PairMemo{m: make(map[string]*pairSide)}
}

func (m *PairMemo) get(key string) (*pairSide, bool) {
	m.mu.RLock()
	s, ok := m.m[key]
	m.mu.RUnlock()
	return s, ok
}

func (m *PairMemo) put(key string, s *pairSide) {
	m.mu.Lock()
	m.m[key] = s
	m.mu.Unlock()
}

// pairSide holds one segmentation's selections, each in exactly the
// representation the options chose for it: segment i is either
// bitmap-packed (bms[i] non-nil) or a flat row-id vector (sels[i]
// non-nil), never materialized as both.
type pairSide struct {
	sels []engine.Selection
	bms  []*engine.Bitmap
}

// buildSide gathers a segmentation's selections across the worker
// pool, each in exactly the representation the options choose for
// it; the cell loop then reuses them |other| times each. Segment
// counts are already recorded on the segmentation, so the density
// decision needs no evaluation — a segment destined for the bitmap
// representation is fetched through SelectBitmap, whose cache-miss
// path fuses the final predicate scan into bitmap construction and
// never materializes the row-id selection. The flat row-id view only
// materializes for segments that stay vectors: the cell loop never
// reads the vector side of a bitmap-packed segment, so flattening it
// would be a pure O(|sel|) copy wasted. With a memo in the options
// the assembled side is shared across every operator call of the
// advise that mentions the same segmentation. Task errors are rare
// but cancellation is not, and it must surface — or a half-built
// side would be memoized as complete.
func buildSide(ev *Evaluator, s *Segmentation, opt PairOptions) (*pairSide, error) {
	var memoKey string
	if opt.Memo != nil {
		// The representation knob changes which segments get packed,
		// so sides built under different reps never alias. The table
		// fingerprint keys out sides built before a mutation: a memo
		// can outlive one advise (a Stream holds its across Next
		// calls), and a stale side would silently miscount cells.
		// The fingerprint is cached per table version, so this stays
		// a single concatenation on the warm path.
		memoKey = ev.Table().Fingerprint() + "\x00" + opt.Rep.String() + "\x00" + s.Key()
		if side, ok := opt.Memo.get(memoKey); ok {
			ev.countPairMemoHit()
			return side, nil
		}
		ev.countPairMemoMiss()
	}
	n := len(s.Queries)
	sels := make([]engine.Selection, n)
	bms := make([]*engine.Bitmap, n)
	nRows := ev.Table().NumRows()
	// Counts normally mirror |R(Q_i)| by construction (Cut and
	// Product record them); a hand-built segmentation without them
	// falls back to evaluating before deciding the representation.
	countsKnown := len(s.Counts) == n
	err := par.ForEachCtx(opt.Ctx, opt.Workers, n, func(i int) error {
		wantBitmap := opt.Rep == RepBitmap
		if opt.Rep == RepAuto && countsKnown {
			wantBitmap = engine.DenseEnough(s.Counts[i], nRows)
		}
		if wantBitmap {
			bm, err := ev.SelectBitmap(s.Queries[i])
			if err != nil {
				return err
			}
			bms[i] = bm
			return nil
		}
		cs, err := ev.SelectChunked(s.Queries[i])
		if err != nil {
			return err
		}
		if opt.Rep == RepAuto && !countsKnown && engine.DenseEnough(cs.Len(), nRows) {
			bms[i] = ev.packedSelection(s.Queries[i], cs)
		} else {
			sels[i] = cs.Flat()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	side := &pairSide{sels: sels, bms: bms}
	if opt.Memo != nil {
		opt.Memo.put(memoKey, side)
	}
	return side, nil
}

// cellCount returns |R(Q1i) ∩ R(Q2j)| using the fastest path the
// chosen representations allow. All three paths return identical
// counts, so the representation knob never changes advisor output.
func cellCount(a *pairSide, i int, b *pairSide, j int) int {
	switch {
	case a.bms[i] != nil && b.bms[j] != nil:
		return a.bms[i].AndCount(b.bms[j])
	case a.bms[i] != nil:
		return engine.AndCountSelection(a.bms[i], b.sels[j])
	case b.bms[j] != nil:
		return engine.AndCountSelection(b.bms[j], a.sels[i])
	default:
		return engine.IntersectCount(a.sels[i], b.sels[j])
	}
}

// Product implements the SDL product S1 × S2 (Definition 8) with the
// default options (all-CPU fan-out, automatic representation).
func Product(ev *Evaluator, s1, s2 *Segmentation) (*Segmentation, error) {
	return ProductOpt(ev, s1, s2, PairOptions{})
}

// prodCell is one (i, j) conjunction of the product's positional
// merge buffer.
type prodCell struct {
	q     sdl.Query
	count int
}

// ProductOpt implements the SDL product S1 × S2 (Definition 8):
// every pairwise conjunction (Q1i, Q2j). Provably empty conjunctions
// and pairs whose extents do not overlap are dropped, so the result
// is a partition of the common context with strictly positive
// counts. The cell loop fans out across opt.Workers; cells land in a
// pooled positional buffer and are merged in (i, j) order, so the
// output is byte-identical to the sequential nested loop at every
// width.
func ProductOpt(ev *Evaluator, s1, s2 *Segmentation, opt PairOptions) (*Segmentation, error) {
	opt = opt.normalize()
	a, err := buildSide(ev, s1, opt)
	if err != nil {
		return nil, err
	}
	b, err := buildSide(ev, s2, opt)
	if err != nil {
		return nil, err
	}
	n1, n2 := len(s1.Queries), len(s2.Queries)
	cellsPtr := prodCellScratch.Get(n1 * n2)
	cells := *cellsPtr
	// The loop below relies on zeroed cells (count == 0 means "pair
	// dropped") and the queries parked in a recycled buffer must not
	// outlive the call, so every buffer is cleared on its way back to
	// the pool — which also means every get hands out zeroed memory
	// (fresh allocations already are).
	defer func() {
		clear(cells)
		prodCellScratch.Put(cellsPtr)
	}()
	err = par.ForEachCtx(opt.Ctx, opt.Workers, n1*n2, func(k int) error {
		i, j := k/n2, k%n2
		q, nonEmpty, err := sdl.Conjoin(s1.Queries[i], s2.Queries[j])
		if err != nil {
			return err
		}
		if !nonEmpty {
			return nil
		}
		count := cellCount(a, i, b, j)
		if count == 0 {
			return nil
		}
		cells[k] = prodCell{q: q, count: count}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &Segmentation{CutAttrs: mergeAttrs(s1.CutAttrs, s2.CutAttrs)}
	for k := range cells {
		if cells[k].count == 0 {
			continue
		}
		out.Queries = append(out.Queries, cells[k].q)
		out.Counts = append(out.Counts, cells[k].count)
	}
	return out, nil
}

// CellCounts returns the |S1| × |S2| joint contingency table with
// the default options (all-CPU fan-out, automatic representation).
func CellCounts(ev *Evaluator, s1, s2 *Segmentation) ([][]int, error) {
	return CellCountsOpt(ev, s1, s2, PairOptions{})
}

// cellCountsInto fills flat (row-major, length n1×n2) with the joint
// contingency table — the shared core of CellCounts, INDEP and the
// chi-squared rule. Each segmentation's selections are gathered and
// packed once, then the cell loop fans out across opt.Workers; every
// cell writes its own slot, so the table is deterministic at every
// width. Cell errors are impossible once both sides are built; only
// cancellation can surface, and a cancelled table must not be read
// as all-zero counts.
func cellCountsInto(ev *Evaluator, s1, s2 *Segmentation, opt PairOptions, flat []int) error {
	a, err := buildSide(ev, s1, opt)
	if err != nil {
		return err
	}
	b, err := buildSide(ev, s2, opt)
	if err != nil {
		return err
	}
	n2 := len(s2.Queries)
	return par.ForEachCtx(opt.Ctx, opt.Workers, len(flat), func(k int) error {
		flat[k] = cellCount(a, k/n2, b, k%n2)
		return nil
	})
}

// CellCountsOpt returns the joint contingency table cells[i][j] =
// |R(Q1i) ∩ R(Q2j)| — the raw material for both INDEP and the
// chi-squared stopping rule. The returned table is caller-owned
// fresh memory (never pooled); operators that consume the table
// internally go through cellCountsInto with pooled scratch instead.
func CellCountsOpt(ev *Evaluator, s1, s2 *Segmentation, opt PairOptions) ([][]int, error) {
	opt = opt.normalize()
	n1, n2 := len(s1.Queries), len(s2.Queries)
	flat := make([]int, n1*n2)
	if err := cellCountsInto(ev, s1, s2, opt, flat); err != nil {
		return nil, err
	}
	cells := make([][]int, n1)
	for i := range cells {
		cells[i] = flat[i*n2 : (i+1)*n2 : (i+1)*n2]
	}
	return cells, nil
}

// Indep returns INDEP(S1, S2) with the default options.
func Indep(ev *Evaluator, s1, s2 *Segmentation) (float64, error) {
	return IndepOpt(ev, s1, s2, PairOptions{})
}

// IndepOpt returns INDEP(S1, S2) = E(S1×S2) / (E(S1) + E(S2)), the
// dependence quotient of Proposition 1: 1 when the segment variables
// are independent, decreasing with the degree of dependence. By
// convention it is 1 when both segmentations are degenerate
// (E(S1)+E(S2) = 0), so degenerate candidates never win the
// most-dependent-pair selection. The contingency table and its
// marginals live in pooled scratch: a warm advise's INDEP loop
// allocates nothing proportional to the cell grid.
func IndepOpt(ev *Evaluator, s1, s2 *Segmentation, opt PairOptions) (float64, error) {
	opt = opt.normalize()
	n1, n2 := len(s1.Queries), len(s2.Queries)
	flatPtr := cellScratch.Get(n1 * n2)
	defer cellScratch.Put(flatPtr)
	flat := *flatPtr
	if err := cellCountsInto(ev, s1, s2, opt, flat); err != nil {
		return 0, err
	}
	return indepFromFlat(flat, n1, n2), nil
}

// indepFromFlat computes the INDEP quotient from a row-major flat
// table, accumulating marginals in pooled scratch.
func indepFromFlat(flat []int, n1, n2 int) float64 {
	if n1 == 0 || n2 == 0 {
		return 1
	}
	margPtr := cellScratch.Get(n1 + n2)
	defer cellScratch.Put(margPtr)
	marg := *margPtr
	clear(marg)
	rows, cols := marg[:n1], marg[n1:]
	for i := 0; i < n1; i++ {
		for j, c := range flat[i*n2 : (i+1)*n2] {
			rows[i] += c
			cols[j] += c
		}
	}
	denom := stats.Entropy(rows) + stats.Entropy(cols)
	if denom == 0 {
		return 1
	}
	return stats.Entropy(flat) / denom
}

// IndepFromCells computes the INDEP quotient from a precomputed
// contingency table.
func IndepFromCells(cells [][]int) float64 {
	if len(cells) == 0 {
		return 1
	}
	n1, n2 := len(cells), len(cells[0])
	flatPtr := cellScratch.Get(n1 * n2)
	defer cellScratch.Put(flatPtr)
	flat := *flatPtr
	clear(flat) // recycled scratch; a short input row must read as zeros
	for i, row := range cells {
		copy(flat[i*n2:(i+1)*n2], row)
	}
	return indepFromFlat(flat, n1, n2)
}

// ChiSquareIndependent applies the Section 4.2 stopping rule with
// the default options.
func ChiSquareIndependent(ev *Evaluator, s1, s2 *Segmentation, alpha float64) (bool, error) {
	return ChiSquareIndependentOpt(ev, s1, s2, alpha, PairOptions{})
}

// ChiSquareIndependentOpt applies the Section 4.2 suggestion of
// statistical hypothesis testing as a stopping rule: it reports
// whether the joint distribution of two segmentations is consistent
// with independence at significance alpha. Like IndepOpt it works in
// pooled scratch end to end — the flat table and the float marginals
// the chi-squared statistic needs.
func ChiSquareIndependentOpt(ev *Evaluator, s1, s2 *Segmentation, alpha float64, opt PairOptions) (bool, error) {
	opt = opt.normalize()
	n1, n2 := len(s1.Queries), len(s2.Queries)
	flatPtr := cellScratch.Get(n1 * n2)
	defer cellScratch.Put(flatPtr)
	flat := *flatPtr
	if err := cellCountsInto(ev, s1, s2, opt, flat); err != nil {
		return false, err
	}
	margPtr := marginalScratch.Get(n1 + n2)
	defer marginalScratch.Put(margPtr)
	marg := *margPtr
	return stats.ChiSquareIndependentFlat(flat, n1, n2, marg[:n1], marg[n1:], alpha), nil
}

// ValidatePartition checks Definition 3 exactly: the segments are
// pairwise disjoint and their union is the context's extent. It is
// the workhorse of the property-based tests and costs O(|D| + Σ|Qi|).
func ValidatePartition(ev *Evaluator, context sdl.Query, s *Segmentation) error {
	ctxSel, err := ev.Select(context)
	if err != nil {
		return err
	}
	covered := make(map[int32]int, len(ctxSel))
	for i, q := range s.Queries {
		sel, err := ev.Select(q)
		if err != nil {
			return err
		}
		if len(sel) != s.Counts[i] {
			return fmt.Errorf("seg: segment %d count %d does not match extent %d", i, s.Counts[i], len(sel))
		}
		for _, row := range sel {
			if prev, dup := covered[row]; dup {
				return fmt.Errorf("seg: row %d covered by segments %d and %d: not disjoint", row, prev, i)
			}
			covered[row] = i
		}
	}
	if len(covered) != len(ctxSel) {
		return fmt.Errorf("seg: segments cover %d rows, context has %d: not exhaustive", len(covered), len(ctxSel))
	}
	for _, row := range ctxSel {
		if _, ok := covered[row]; !ok {
			return fmt.Errorf("seg: context row %d not covered by any segment", row)
		}
	}
	return nil
}
