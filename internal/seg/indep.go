package seg

import (
	"fmt"

	"charles/internal/engine"
	"charles/internal/sdl"
	"charles/internal/stats"
)

// Product implements the SDL product S1 × S2 (Definition 8): every
// pairwise conjunction (Q1i, Q2j). Provably empty conjunctions and
// pairs whose extents do not overlap are dropped, so the result is a
// partition of the common context with strictly positive counts.
func Product(ev *Evaluator, s1, s2 *Segmentation) (*Segmentation, error) {
	sel1, err := selections(ev, s1)
	if err != nil {
		return nil, err
	}
	sel2, err := selections(ev, s2)
	if err != nil {
		return nil, err
	}
	out := &Segmentation{CutAttrs: mergeAttrs(s1.CutAttrs, s2.CutAttrs)}
	for i, q1 := range s1.Queries {
		for j, q2 := range s2.Queries {
			q, nonEmpty, err := sdl.Conjoin(q1, q2)
			if err != nil {
				return nil, err
			}
			if !nonEmpty {
				continue
			}
			count := engine.IntersectCount(sel1[i], sel2[j])
			if count == 0 {
				continue
			}
			out.Queries = append(out.Queries, q)
			out.Counts = append(out.Counts, count)
		}
	}
	return out, nil
}

// CellCounts returns the |S1| × |S2| joint contingency table:
// cells[i][j] = |R(Q1i) ∩ R(Q2j)|. This is the raw material for both
// INDEP and the chi-squared stopping rule.
func CellCounts(ev *Evaluator, s1, s2 *Segmentation) ([][]int, error) {
	sel1, err := selections(ev, s1)
	if err != nil {
		return nil, err
	}
	sel2, err := selections(ev, s2)
	if err != nil {
		return nil, err
	}
	cells := make([][]int, len(sel1))
	for i := range sel1 {
		cells[i] = make([]int, len(sel2))
		for j := range sel2 {
			cells[i][j] = engine.IntersectCount(sel1[i], sel2[j])
		}
	}
	return cells, nil
}

// Indep returns INDEP(S1, S2) = E(S1×S2) / (E(S1) + E(S2)), the
// dependence quotient of Proposition 1: 1 when the segment variables
// are independent, decreasing with the degree of dependence. By
// convention it is 1 when both segmentations are degenerate
// (E(S1)+E(S2) = 0), so degenerate candidates never win the
// most-dependent-pair selection.
func Indep(ev *Evaluator, s1, s2 *Segmentation) (float64, error) {
	cells, err := CellCounts(ev, s1, s2)
	if err != nil {
		return 0, err
	}
	return IndepFromCells(cells), nil
}

// IndepFromCells computes the INDEP quotient from a precomputed
// contingency table.
func IndepFromCells(cells [][]int) float64 {
	if len(cells) == 0 {
		return 1
	}
	rows := make([]int, len(cells))
	cols := make([]int, len(cells[0]))
	flat := make([]int, 0, len(cells)*len(cells[0]))
	for i, row := range cells {
		for j, c := range row {
			rows[i] += c
			cols[j] += c
			flat = append(flat, c)
		}
	}
	denom := stats.Entropy(rows) + stats.Entropy(cols)
	if denom == 0 {
		return 1
	}
	return stats.Entropy(flat) / denom
}

// ChiSquareIndependent applies the Section 4.2 suggestion of
// statistical hypothesis testing as a stopping rule: it reports
// whether the joint distribution of two segmentations is consistent
// with independence at significance alpha.
func ChiSquareIndependent(ev *Evaluator, s1, s2 *Segmentation, alpha float64) (bool, error) {
	cells, err := CellCounts(ev, s1, s2)
	if err != nil {
		return false, err
	}
	return stats.ChiSquareIndependent(cells, alpha), nil
}

func selections(ev *Evaluator, s *Segmentation) ([]engine.Selection, error) {
	out := make([]engine.Selection, len(s.Queries))
	for i, q := range s.Queries {
		sel, err := ev.Select(q)
		if err != nil {
			return nil, err
		}
		out[i] = sel
	}
	return out, nil
}

// ValidatePartition checks Definition 3 exactly: the segments are
// pairwise disjoint and their union is the context's extent. It is
// the workhorse of the property-based tests and costs O(|D| + Σ|Qi|).
func ValidatePartition(ev *Evaluator, context sdl.Query, s *Segmentation) error {
	ctxSel, err := ev.Select(context)
	if err != nil {
		return err
	}
	covered := make(map[int32]int, len(ctxSel))
	for i, q := range s.Queries {
		sel, err := ev.Select(q)
		if err != nil {
			return err
		}
		if len(sel) != s.Counts[i] {
			return fmt.Errorf("seg: segment %d count %d does not match extent %d", i, s.Counts[i], len(sel))
		}
		for _, row := range sel {
			if prev, dup := covered[row]; dup {
				return fmt.Errorf("seg: row %d covered by segments %d and %d: not disjoint", row, prev, i)
			}
			covered[row] = i
		}
	}
	if len(covered) != len(ctxSel) {
		return fmt.Errorf("seg: segments cover %d rows, context has %d: not exhaustive", len(covered), len(ctxSel))
	}
	for _, row := range ctxSel {
		if _, ok := covered[row]; !ok {
			return fmt.Errorf("seg: context row %d not covered by any segment", row)
		}
	}
	return nil
}
