package seg

import (
	"math"
	"math/rand"
	"testing"

	"charles/internal/engine"
	"charles/internal/sdl"
)

func TestMetricsOnKnownSegmentation(t *testing.T) {
	tab, ev := figure2Table(t)
	ctx := context2(t, tab)
	a := setA(t, ev, ctx)
	m := a.ComputeMetrics()
	if m.Depth != 2 || m.Simplicity != 1 || m.Breadth != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if math.Abs(m.Entropy-1) > 1e-12 || math.Abs(m.Balance-1) > 1e-12 {
		t.Fatalf("entropy/balance = %v/%v", m.Entropy, m.Balance)
	}
	cut, err := Cut(ev, a, "tonnage", DefaultCutOptions())
	if err != nil {
		t.Fatal(err)
	}
	m = cut.ComputeMetrics()
	if m.Depth != 4 || m.Simplicity != 2 || m.Breadth != 2 {
		t.Fatalf("cut metrics = %+v", m)
	}
	if math.Abs(m.Entropy-2) > 1e-12 {
		t.Fatalf("balanced 4-way entropy = %v, want 2", m.Entropy)
	}
}

func TestCoverSumsToOne(t *testing.T) {
	tab, ev := figure2Table(t)
	ctx := context2(t, tab)
	a := setA(t, ev, ctx)
	sum := 0.0
	for i := range a.Queries {
		sum += a.Cover(i)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("covers sum to %v", sum)
	}
}

func TestSegmentationKeyAndString(t *testing.T) {
	s := &Segmentation{
		Queries:  []sdl.Query{{}, {}},
		CutAttrs: []string{"a", "b"},
		Counts:   []int{1, 2},
	}
	if s.Key() != "a,b#()|()" {
		t.Fatalf("Key = %q", s.Key())
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
	if s.Total() != 3 {
		t.Fatalf("Total = %d", s.Total())
	}
}

// TestSegmentationKeyDistinguishesCutPoints is the regression test
// for the ranking-determinism fix: two segmentations on the same
// attributes at the same depth but with different cut points (or
// contexts) must not share a key, or the final ranking tie-break
// becomes unstable among tied candidates.
func TestSegmentationKeyDistinguishesCutPoints(t *testing.T) {
	mk := func(lo, hi int64) *Segmentation {
		return &Segmentation{
			Queries: []sdl.Query{
				sdl.MustQuery(sdl.ClosedRange("tonnage", engine.Int(0), engine.Int(lo))),
				sdl.MustQuery(sdl.ClosedRange("tonnage", engine.Int(lo+1), engine.Int(hi))),
			},
			CutAttrs: []string{"tonnage"},
			Counts:   []int{1, 1},
		}
	}
	a, b := mk(100, 500), mk(250, 500)
	if a.Key() == b.Key() {
		t.Fatalf("distinct cut points share key %q", a.Key())
	}
	if a.Key() != mk(100, 500).Key() {
		t.Fatal("identical segmentations disagree on key")
	}
}

func TestEmptySegmentationMetrics(t *testing.T) {
	s := &Segmentation{}
	if s.Entropy() != 0 || s.Depth() != 0 || s.Breadth() != 0 || s.Simplicity() != 0 {
		t.Fatal("empty segmentation has non-zero metrics")
	}
	if s.Cover(0) != 0 {
		// Cover on empty total must not divide by zero; index 0 would
		// panic on Counts access, so only check total-zero behavior
		// via a one-element Counts.
		t.Fatal("unreachable")
	}
}

// TestPartitionInvariantRandomized is the central property test of
// the package: random tables, random cut/compose/product pipelines,
// and the Definition 3 invariant must hold at every step.
func TestPartitionInvariantRandomized(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(400)
		ints := make([]int64, n)
		floats := make([]float64, n)
		strs := make([]string, n)
		dates := make([]int64, n)
		words := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		for i := 0; i < n; i++ {
			ints[i] = rng.Int63n(40)
			floats[i] = float64(rng.Intn(100)) / 3
			strs[i] = words[rng.Intn(len(words))]
			dates[i] = rng.Int63n(3650)
		}
		tab := engine.MustNewTable("rand",
			engine.NewIntColumn("i", ints),
			engine.NewFloatColumn("f", floats),
			engine.NewStringColumn("s", strs),
			engine.NewDateColumn("d", dates),
		)
		ev := NewEvaluator(tab)
		ctx := sdl.ContextAll(tab)
		attrs := []string{"i", "f", "s", "d"}

		// Pipeline: initial cut, then 2 more random operations.
		cur, ok, err := InitialCut(ev, ctx, attrs[rng.Intn(4)], DefaultCutOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ok {
			continue
		}
		if err := ValidatePartition(ev, ctx, cur); err != nil {
			t.Fatalf("seed %d initial: %v", seed, err)
		}
		for step := 0; step < 2; step++ {
			switch rng.Intn(3) {
			case 0:
				cur, err = Cut(ev, cur, attrs[rng.Intn(4)], DefaultCutOptions())
			case 1:
				other, ok2, err2 := InitialCut(ev, ctx, attrs[rng.Intn(4)], DefaultCutOptions())
				if err2 != nil || !ok2 {
					err = err2
					break
				}
				cur, err = Compose(ev, cur, other, DefaultCutOptions())
			default:
				other, ok2, err2 := InitialCut(ev, ctx, attrs[rng.Intn(4)], DefaultCutOptions())
				if err2 != nil || !ok2 {
					err = err2
					break
				}
				cur, err = Product(ev, cur, other)
			}
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if err := ValidatePartition(ev, ctx, cur); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			// Entropy bound: E(S) ≤ log2(depth).
			if e := cur.Entropy(); e > cur.MaxEntropy()+1e-9 {
				t.Fatalf("seed %d: entropy %v exceeds bound %v", seed, e, cur.MaxEntropy())
			}
		}
	}
}

func TestIndepBoundsRandomized(t *testing.T) {
	// INDEP is in (0, 1] and subadditivity makes the numerator at
	// most the denominator.
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		n := 100 + rng.Intn(300)
		a := make([]int64, n)
		b := make([]int64, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Int63n(50)
			if rng.Intn(2) == 0 {
				b[i] = a[i] + rng.Int63n(5) // correlated half the time
			} else {
				b[i] = rng.Int63n(50)
			}
		}
		tab := engine.MustNewTable("rand",
			engine.NewIntColumn("a", a),
			engine.NewIntColumn("b", b),
		)
		ev := NewEvaluator(tab)
		ctx := sdl.ContextAll(tab)
		sa, ok1, err1 := InitialCut(ev, ctx, "a", DefaultCutOptions())
		sb, ok2, err2 := InitialCut(ev, ctx, "b", DefaultCutOptions())
		if err1 != nil || err2 != nil || !ok1 || !ok2 {
			continue
		}
		ind, err := Indep(ev, sa, sb)
		if err != nil {
			t.Fatal(err)
		}
		if ind <= 0 || ind > 1+1e-9 {
			t.Fatalf("seed %d: INDEP = %v out of (0,1]", seed, ind)
		}
	}
}

func TestIndepDegenerateIsOne(t *testing.T) {
	if got := IndepFromCells(nil); got != 1 {
		t.Fatalf("IndepFromCells(nil) = %v", got)
	}
	// Single-cell table: both marginals degenerate → 1.
	if got := IndepFromCells([][]int{{10}}); got != 1 {
		t.Fatalf("IndepFromCells(single) = %v", got)
	}
}

func TestChiSquareIndependentOnSegmentations(t *testing.T) {
	// Perfectly dependent columns: chi-squared must reject.
	n := 400
	a := make([]int64, n)
	b := make([]int64, n)
	for i := 0; i < n; i++ {
		a[i] = int64(i % 2)
		b[i] = a[i]
	}
	tab := engine.MustNewTable("t",
		engine.NewIntColumn("a", a), engine.NewIntColumn("b", b))
	ev := NewEvaluator(tab)
	ctx := sdl.ContextAll(tab)
	sa, _, _ := InitialCut(ev, ctx, "a", DefaultCutOptions())
	sb, _, _ := InitialCut(ev, ctx, "b", DefaultCutOptions())
	indep, err := ChiSquareIndependent(ev, sa, sb, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if indep {
		t.Fatal("chi-squared accepted perfect dependence as independent")
	}
}

func TestValidatePartitionCatchesBadCounts(t *testing.T) {
	tab, ev := figure2Table(t)
	ctx := context2(t, tab)
	a := setA(t, ev, ctx)
	broken := &Segmentation{Queries: a.Queries, CutAttrs: a.CutAttrs, Counts: []int{1, 1}}
	if err := ValidatePartition(ev, ctx, broken); err == nil {
		t.Fatal("bad counts accepted")
	}
}

func TestValidatePartitionCatchesOverlap(t *testing.T) {
	tab, ev := figure2Table(t)
	ctx := context2(t, tab)
	all := sdl.MustQuery(sdl.Any("type"))
	sel, _ := ev.Select(all)
	overlap := &Segmentation{
		Queries:  []sdl.Query{all, all},
		CutAttrs: nil,
		Counts:   []int{len(sel), len(sel)},
	}
	if err := ValidatePartition(ev, ctx, overlap); err == nil {
		t.Fatal("overlapping segments accepted")
	}
}

func TestValidatePartitionCatchesGaps(t *testing.T) {
	tab, ev := figure2Table(t)
	ctx := context2(t, tab)
	onlyFluit := sdl.MustQuery(sdl.SetC("type", engine.String_("fluit")))
	sel, _ := ev.Select(onlyFluit)
	gappy := &Segmentation{
		Queries:  []sdl.Query{onlyFluit},
		CutAttrs: []string{"type"},
		Counts:   []int{len(sel)},
	}
	if err := ValidatePartition(ev, ctx, gappy); err == nil {
		t.Fatal("non-exhaustive segmentation accepted")
	}
}
