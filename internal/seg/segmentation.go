package seg

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"charles/internal/sdl"
	"charles/internal/stats"
)

// Segmentation is a set of SDL queries partitioning a context's
// extent (Definition 3). Invariants maintained by the constructors
// in this package:
//
//   - Queries are pairwise disjoint and cover the context.
//   - All queries are cut on the same attribute set CutAttrs (the
//     restriction Section 5.2 acknowledges; the adaptive extension
//     in internal/core relaxes it).
//   - Counts[i] == |R(Queries[i])| and every count is positive.
//   - A segmentation is immutable once built: Key caches the
//     canonical identity on first computation, so fields must not be
//     reassigned afterwards (build a new segmentation instead).
type Segmentation struct {
	// Queries are the segments, in deterministic order.
	Queries []sdl.Query
	// CutAttrs lists the attributes the segmentation is based on, in
	// canonical order.
	CutAttrs []string
	// Counts holds each segment's extent size, aligned with Queries.
	Counts []int

	// key is the lazily built canonical identity. The pair-side memo
	// looks segmentations up by key once per operator call — O(n²)
	// times per advise step — and rebuilding the concatenated query
	// strings each time was the single largest steady-state
	// allocation of the warm pairwise path.
	key atomic.Pointer[string]
}

// Depth returns the number of segments — the "amount of information"
// bounded by maxDepth in HB-cuts (a pie chart with more than a dozen
// slices is hard to read).
func (s *Segmentation) Depth() int { return len(s.Queries) }

// Total returns the context size |D| (the sum of segment counts).
func (s *Segmentation) Total() int {
	t := 0
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// Entropy returns E(S) of Definition 4 in bits, with segment masses
// normalized by the context size |D| rather than |T| so that
// Proposition 1 holds exactly (documented deviation; the two agree
// when the context is the whole table).
func (s *Segmentation) Entropy() float64 { return stats.Entropy(s.Counts) }

// MaxEntropy returns log2(Depth), the entropy of a perfectly
// balanced segmentation of the same depth.
func (s *Segmentation) MaxEntropy() float64 { return stats.MaxEntropy(len(s.Queries)) }

// Balance returns Entropy/MaxEntropy in (0, 1]: 1 for perfectly
// equal segment sizes.
func (s *Segmentation) Balance() float64 { return stats.BalanceRatio(s.Counts) }

// Simplicity returns P(S) of Section 3: the maximum number of
// predicates among the segmentation's queries (lower is simpler).
func (s *Segmentation) Simplicity() int {
	max := 0
	for _, q := range s.Queries {
		if n := q.NumConstraints(); n > max {
			max = n
		}
	}
	return max
}

// Breadth returns the number of distinct constrained columns across
// the segmentation's queries (Principle 2: broad segmentations are
// more informative).
func (s *Segmentation) Breadth() int {
	seen := map[string]struct{}{}
	for _, q := range s.Queries {
		for _, a := range q.ConstrainedAttrs() {
			seen[a] = struct{}{}
		}
	}
	return len(seen)
}

// Cover returns |R(Qi)| / |D| for segment i.
func (s *Segmentation) Cover(i int) float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return float64(s.Counts[i]) / float64(t)
}

// Metrics bundles the Section 3 criteria for ranking and reporting.
type Metrics struct {
	Entropy    float64
	MaxEntropy float64
	Balance    float64
	Depth      int
	Simplicity int
	Breadth    int
}

// ComputeMetrics evaluates all criteria at once.
func (s *Segmentation) ComputeMetrics() Metrics {
	return Metrics{
		Entropy:    s.Entropy(),
		MaxEntropy: s.MaxEntropy(),
		Balance:    s.Balance(),
		Depth:      s.Depth(),
		Simplicity: s.Simplicity(),
		Breadth:    s.Breadth(),
	}
}

// Key returns a canonical identity string: the sorted cut-attribute
// list plus every segment's canonical query string. Two
// segmentations share a key iff they hold the same queries in the
// same order, so the final ranking tie-break in internal/core is
// total and stable. (The previous attrs+depth key collided for
// distinct segmentations with the same attributes and depth —
// different cut points or contexts — leaving ranked order among
// tied candidates to chance.)
// Concurrent first calls may build the key twice; the results are
// identical and either pointer wins.
func (s *Segmentation) Key() string {
	if p := s.key.Load(); p != nil {
		return *p
	}
	var b strings.Builder
	b.WriteString(strings.Join(s.CutAttrs, ","))
	b.WriteByte('#')
	for i, q := range s.Queries {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(q.Key())
	}
	key := b.String()
	s.key.CompareAndSwap(nil, &key)
	return *s.key.Load()
}

// String summarizes the segmentation for logs and errors.
func (s *Segmentation) String() string {
	return fmt.Sprintf("segmentation on [%s] with %d segments", strings.Join(s.CutAttrs, ", "), len(s.Queries))
}

// singleton wraps a context query as a 1-segment segmentation, the
// unit COMPOSE and CUT build from.
func singleton(q sdl.Query, count int) *Segmentation {
	return &Segmentation{Queries: []sdl.Query{q}, CutAttrs: nil, Counts: []int{count}}
}

// mergeAttrs returns the sorted union of two attribute sets.
func mergeAttrs(a, b []string) []string {
	seen := make(map[string]struct{}, len(a)+len(b))
	out := make([]string, 0, len(a)+len(b))
	for _, s := range a {
		if _, ok := seen[s]; !ok {
			seen[s] = struct{}{}
			out = append(out, s)
		}
	}
	for _, s := range b {
		if _, ok := seen[s]; !ok {
			seen[s] = struct{}{}
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// addAttr returns the sorted union of attrs and one more attribute.
func addAttr(attrs []string, attr string) []string {
	return mergeAttrs(attrs, []string{attr})
}
