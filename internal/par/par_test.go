package par

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		const n = 100
		var visits [n]atomic.Int32
		if err := ForEach(workers, n, func(i int) error {
			visits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range visits {
			if v := visits[i].Load(); v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 50, func(i int) error {
			switch i {
			case 7:
				return errA
			case 31:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: err = %v, want the index-7 error", workers, err)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}
