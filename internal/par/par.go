// Package par provides the bounded fan-out primitive shared by the
// advisor core and the engine: run n independent index-addressed
// tasks on at most w goroutines, collect results positionally, and
// report the error of the lowest-numbered failing task so callers
// stay deterministic regardless of scheduling.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a configured worker count: values below 1 mean
// "one worker per available CPU" (runtime.GOMAXPROCS).
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) using at most workers
// goroutines, the calling one included: workers-1 are spawned and
// the caller works alongside them, so a fan-out of w costs w-1
// goroutines. With workers <= 1 (or n <= 1) it degenerates to a
// plain loop on the calling goroutine, so the sequential path pays
// no synchronization cost. All tasks run even when some fail; the
// returned error is the one from the lowest index, matching what a
// sequential loop that continued past errors would report first.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachCtx(nil, workers, n, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: every worker
// re-checks ctx before claiming the next index, so a cancelled
// context stops the fan-out at the next task boundary — in-flight
// tasks finish, unstarted ones never run, and all workers are
// released before the call returns. When the context is cancelled
// the return value is ctx.Err() (cancellation outranks task errors:
// with tasks skipped, "lowest failing index" is no longer
// meaningful). A nil ctx means "never cancelled" and costs nothing
// extra.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		var first error
		for i := 0; i < n; i++ {
			if ctx != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		if ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	work := func() {
		for {
			if ctx != nil && ctx.Err() != nil {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			errs[i] = fn(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
