package ui

import (
	"fmt"
	"sort"
	"strings"

	"charles/internal/engine"
	"charles/internal/sdl"
	"charles/internal/seg"
	"charles/internal/stats"
)

// sparkRunes are the eight block heights of a text sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders counts as a fixed-height text histogram, one
// rune per bucket, scaled to the maximum count.
func Sparkline(counts []int) string {
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return strings.Repeat(string(sparkRunes[0]), len(counts))
	}
	var b strings.Builder
	for _, c := range counts {
		idx := c * (len(sparkRunes) - 1) / max
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// HistogramBuckets computes a fixed-width histogram of a numeric
// column over a selection: bucket counts plus the [lo, hi] range.
// ok is false when the selection is empty or the column constant.
func HistogramBuckets(col engine.Column, sel engine.Selection, buckets int) (counts []int, lo, hi float64, ok bool) {
	if len(sel) == 0 || buckets < 1 {
		return nil, 0, 0, false
	}
	vals := make([]float64, len(sel))
	switch c := col.(type) {
	case *engine.FloatColumn:
		for i, row := range sel {
			vals[i] = c.Float64(int(row))
		}
	case engine.IntValued:
		for i, row := range sel {
			vals[i] = float64(c.Int64(int(row)))
		}
	default:
		return nil, 0, 0, false
	}
	lo, hi = vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == hi {
		return nil, lo, hi, false
	}
	counts = make([]int, buckets)
	w := (hi - lo) / float64(buckets)
	for _, v := range vals {
		b := int((v - lo) / w)
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	return counts, lo, hi, true
}

// RenderSegmentDetail implements the Section 5.2 wish that Charles
// display more than counts about a segment: for every context
// attribute it plots the value distribution inside the segment —
// sparkline histograms for numeric columns, top-value shares for
// nominal ones.
func RenderSegmentDetail(ev *seg.Evaluator, q sdl.Query, attrs []string) (string, error) {
	sel, err := ev.Select(q)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "segment %s — %d rows\n", q, len(sel))
	if len(sel) == 0 {
		return b.String(), nil
	}
	for _, attr := range attrs {
		col, ok := ev.Table().ColumnByName(attr)
		if !ok {
			return "", fmt.Errorf("ui: no column %q", attr)
		}
		switch c := col.(type) {
		case *engine.StringColumn:
			renderNominalDetail(&b, attr, engine.StringValueCounts(c, sel), len(sel))
		case *engine.BoolColumn:
			renderNominalDetail(&b, attr, engine.BoolValueCounts(c, sel), len(sel))
		default:
			counts, lo, hi, ok := HistogramBuckets(col, sel, 16)
			if !ok {
				fmt.Fprintf(&b, "  %-20s (constant: %s)\n", attr, col.Value(int(sel[0])).String())
				continue
			}
			loV, hiV := formatBound(col, lo), formatBound(col, hi)
			fmt.Fprintf(&b, "  %-20s %s  [%s .. %s]\n", attr, Sparkline(counts), loV, hiV)
		}
	}
	return b.String(), nil
}

func formatBound(col engine.Column, v float64) string {
	if col.Kind() == engine.KindDate {
		return engine.FormatDays(int64(v))
	}
	if col.Kind() == engine.KindInt {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

func renderNominalDetail(b *strings.Builder, attr string, vcs []stats.ValueCount, total int) {
	sort.Slice(vcs, func(i, j int) bool {
		if vcs[i].Count != vcs[j].Count {
			return vcs[i].Count > vcs[j].Count
		}
		return vcs[i].Value < vcs[j].Value
	})
	const topK = 5
	var parts []string
	for i, vc := range vcs {
		if i >= topK {
			parts = append(parts, fmt.Sprintf("… +%d more", len(vcs)-topK))
			break
		}
		parts = append(parts, fmt.Sprintf("%s %.0f%%", vc.Value, 100*float64(vc.Count)/float64(total)))
	}
	fmt.Fprintf(b, "  %-20s %s\n", attr, strings.Join(parts, ", "))
}
