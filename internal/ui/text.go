// Package ui renders Charles' output for humans: a text rendering of
// the three-panel interface of Figure 1 (context, ranked answer
// list, segment detail) for the terminal, and an HTML/SVG rendering
// with pie charts for the web front-end — the paper notes the GUI
// "can be turned into a fancy web-application readily".
package ui

import (
	"fmt"
	"strings"

	"charles/internal/core"
	"charles/internal/sdl"
	"charles/internal/seg"
)

// BarWidth is the character width of proportion bars.
const BarWidth = 24

// Bar renders a proportion in [0,1] as a filled bar of BarWidth
// cells.
func Bar(fraction float64) string {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	filled := int(fraction*BarWidth + 0.5)
	return strings.Repeat("█", filled) + strings.Repeat("░", BarWidth-filled)
}

// FormatMetrics renders the Section 3 criteria on one line.
func FormatMetrics(m seg.Metrics) string {
	return fmt.Sprintf("entropy=%.3f bits  depth=%d  breadth=%d  simplicity=%d  balance=%.2f",
		m.Entropy, m.Depth, m.Breadth, m.Simplicity, m.Balance)
}

// RenderSegmentation renders one segmentation's segments as
// proportion bars with their SDL descriptions — the main panel of
// Figure 1.
func RenderSegmentation(s *seg.Segmentation) string {
	var b strings.Builder
	total := s.Total()
	for i, q := range s.Queries {
		frac := 0.0
		if total > 0 {
			frac = float64(s.Counts[i]) / float64(total)
		}
		fmt.Fprintf(&b, "  %s %5.1f%%  %6d rows  %s\n",
			Bar(frac), frac*100, s.Counts[i], describeQuery(q, s.CutAttrs))
	}
	return b.String()
}

// describeQuery prints only the predicates the segmentation is based
// on, the way Figure 1 labels pie slices (the inherited context
// predicates are shown once, in the context panel).
func describeQuery(q sdl.Query, cutAttrs []string) string {
	if len(cutAttrs) == 0 {
		return q.String()
	}
	parts := make([]string, 0, len(cutAttrs))
	for _, attr := range cutAttrs {
		if c, ok := q.Constraint(attr); ok && !c.IsAny() {
			parts = append(parts, c.String())
		}
	}
	if len(parts) == 0 {
		return q.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// RenderContext renders the left panel of Figure 1: the columns of
// interest and any a-priori value constraints.
func RenderContext(q sdl.Query, totalRows int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Context (%d rows):\n", totalRows)
	for _, c := range q.Constraints() {
		if c.IsAny() {
			fmt.Fprintf(&b, "  %s\n", c.Attr)
		} else {
			fmt.Fprintf(&b, "  %s\n", c.String())
		}
	}
	return b.String()
}

// RenderRanked renders the ranked answer list — the top panel of
// Figure 1 — showing up to top segmentations with their attribute
// sets and metrics, followed by the detailed view of each.
func RenderRanked(res *core.Result, top int) string {
	var b strings.Builder
	n := len(res.Segmentations)
	if top > 0 && top < n {
		n = top
	}
	fmt.Fprintf(&b, "Charles proposes %d segmentations (showing %d), stop: %s\n",
		len(res.Segmentations), n, res.StopReason)
	if len(res.SkippedAttrs) > 0 {
		fmt.Fprintf(&b, "skipped constant attributes: %s\n", strings.Join(res.SkippedAttrs, ", "))
	}
	for i := 0; i < n; i++ {
		sc := res.Segmentations[i]
		fmt.Fprintf(&b, "\n#%d  on [%s]  %s\n", i+1,
			strings.Join(sc.Seg.CutAttrs, ", "), FormatMetrics(sc.Metrics))
		b.WriteString(RenderSegmentation(sc.Seg))
	}
	return b.String()
}

// RenderSQL shows the drill-down query for a selected segment — the
// "submit it for further exploration" step.
func RenderSQL(q sdl.Query, table string) string {
	return sdl.SelectStar(q, table)
}
