package ui

import (
	"strings"
	"testing"

	"charles/internal/core"
	"charles/internal/dataset"
	"charles/internal/sdl"
	"charles/internal/seg"
)

func sampleResult(t *testing.T) (*core.Result, sdl.Query, *seg.Evaluator) {
	t.Helper()
	tab := dataset.Figure3(2000, 1)
	ev := seg.NewEvaluator(tab)
	ctx := sdl.ContextAll(tab)
	res, err := core.HBCuts(ev, ctx, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res, ctx, ev
}

func TestBar(t *testing.T) {
	if got := Bar(0); strings.Contains(got, "█") {
		t.Fatalf("Bar(0) = %q", got)
	}
	if got := Bar(1); strings.Contains(got, "░") {
		t.Fatalf("Bar(1) = %q", got)
	}
	if got := Bar(0.5); strings.Count(got, "█") != BarWidth/2 {
		t.Fatalf("Bar(0.5) = %q", got)
	}
	// Clamped outside [0,1].
	if Bar(-1) != Bar(0) || Bar(2) != Bar(1) {
		t.Fatal("Bar not clamped")
	}
}

func TestRenderSegmentation(t *testing.T) {
	res, _, _ := sampleResult(t)
	out := RenderSegmentation(res.Segmentations[0].Seg)
	if !strings.Contains(out, "%") || !strings.Contains(out, "rows") {
		t.Fatalf("render = %q", out)
	}
	if n := strings.Count(out, "\n"); n != res.Segmentations[0].Seg.Depth() {
		t.Fatalf("rendered %d lines for %d segments", n, res.Segmentations[0].Seg.Depth())
	}
	// Only the cut attributes appear in slice labels, not the whole
	// context (Figure 1 labels slices compactly).
	if strings.Contains(out, "att4") && !contains(res.Segmentations[0].Seg.CutAttrs, "att4") {
		t.Fatal("label leaks non-cut attributes")
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func TestRenderContext(t *testing.T) {
	_, ctx, _ := sampleResult(t)
	out := RenderContext(ctx, 2000)
	if !strings.Contains(out, "2000 rows") || !strings.Contains(out, "att1") {
		t.Fatalf("context render = %q", out)
	}
}

func TestRenderRanked(t *testing.T) {
	res, _, _ := sampleResult(t)
	out := RenderRanked(res, 3)
	if !strings.Contains(out, "#1") || !strings.Contains(out, "#3") {
		t.Fatalf("ranked render missing entries: %q", out)
	}
	if strings.Contains(out, "#4") {
		t.Fatal("ranked render exceeded top limit")
	}
	if !strings.Contains(out, "entropy=") {
		t.Fatal("metrics line missing")
	}
	// top=0 means all.
	all := RenderRanked(res, 0)
	if !strings.Contains(all, "#8") {
		t.Fatalf("top=0 did not render all %d answers", len(res.Segmentations))
	}
}

func TestRenderSQL(t *testing.T) {
	res, _, _ := sampleResult(t)
	q := res.Segmentations[0].Seg.Queries[0]
	out := RenderSQL(q, "figure3")
	if !strings.HasPrefix(out, "SELECT * FROM figure3 WHERE ") {
		t.Fatalf("sql = %q", out)
	}
}

func TestFormatMetricsStable(t *testing.T) {
	m := seg.Metrics{Entropy: 1.5, Depth: 4, Breadth: 2, Simplicity: 2, Balance: 0.75}
	want := "entropy=1.500 bits  depth=4  breadth=2  simplicity=2  balance=0.75"
	if got := FormatMetrics(m); got != want {
		t.Fatalf("FormatMetrics = %q, want %q", got, want)
	}
}
