package ui

import (
	"strings"
	"testing"

	"charles/internal/dataset"
	"charles/internal/engine"
	"charles/internal/sdl"
	"charles/internal/seg"
)

func TestSparkline(t *testing.T) {
	out := Sparkline([]int{0, 1, 2, 4, 8})
	if len([]rune(out)) != 5 {
		t.Fatalf("sparkline length = %d", len([]rune(out)))
	}
	runes := []rune(out)
	if runes[0] != '▁' || runes[4] != '█' {
		t.Fatalf("sparkline = %q", out)
	}
	if got := Sparkline([]int{0, 0}); got != "▁▁" {
		t.Fatalf("all-zero sparkline = %q", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i)
	}
	col := engine.NewIntColumn("v", vals)
	counts, lo, hi, ok := HistogramBuckets(col, engine.AllRows(100), 10)
	if !ok || lo != 0 || hi != 99 {
		t.Fatalf("bounds = %v %v ok=%v", lo, hi, ok)
	}
	total := 0
	for _, c := range counts {
		if c == 0 {
			t.Fatalf("uniform data left an empty bucket: %v", counts)
		}
		total += c
	}
	if total != 100 {
		t.Fatalf("bucket total = %d", total)
	}
}

func TestHistogramBucketsDegenerate(t *testing.T) {
	col := engine.NewIntColumn("v", []int64{7, 7, 7})
	if _, _, _, ok := HistogramBuckets(col, engine.AllRows(3), 8); ok {
		t.Fatal("constant column produced a histogram")
	}
	if _, _, _, ok := HistogramBuckets(col, engine.Selection{}, 8); ok {
		t.Fatal("empty selection produced a histogram")
	}
	str := engine.NewStringColumn("s", []string{"a", "b"})
	if _, _, _, ok := HistogramBuckets(str, engine.AllRows(2), 8); ok {
		t.Fatal("nominal column produced a histogram")
	}
}

func TestRenderSegmentDetail(t *testing.T) {
	tab := dataset.VOC(2000, 1)
	ev := seg.NewEvaluator(tab)
	q := sdl.MustQuery(sdl.SetC("type_of_boat", engine.String_("fluit")))
	out, err := RenderSegmentDetail(ev, q, []string{"type_of_boat", "tonnage", "departure_date", "departure_harbour"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tonnage") || !strings.Contains(out, "▁") && !strings.Contains(out, "█") {
		t.Fatalf("detail = %q", out)
	}
	// Nominal attrs show value shares; the constrained one is 100%.
	if !strings.Contains(out, "fluit 100%") {
		t.Fatalf("detail lacks nominal share: %q", out)
	}
	// Dates render as ISO bounds.
	if !strings.Contains(out, "16") && !strings.Contains(out, "17") {
		t.Fatalf("detail lacks date bounds: %q", out)
	}
}

func TestRenderSegmentDetailErrors(t *testing.T) {
	tab := dataset.VOC(100, 2)
	ev := seg.NewEvaluator(tab)
	q := sdl.MustQuery(sdl.Any("tonnage"))
	if _, err := RenderSegmentDetail(ev, q, []string{"ghost"}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	// Empty segments render a header and nothing else.
	empty := sdl.MustQuery(sdl.ClosedRange("tonnage", engine.Int(-5), engine.Int(-1)))
	out, err := RenderSegmentDetail(ev, empty, []string{"tonnage"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0 rows") {
		t.Fatalf("empty detail = %q", out)
	}
}

func TestRenderSegmentDetailConstantAttr(t *testing.T) {
	tab := engine.MustNewTable("t",
		engine.NewIntColumn("c", []int64{5, 5, 5}),
		engine.NewIntColumn("v", []int64{1, 2, 3}),
	)
	ev := seg.NewEvaluator(tab)
	out, err := RenderSegmentDetail(ev, sdl.ContextAll(tab), []string{"c"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "constant: 5") {
		t.Fatalf("constant detail = %q", out)
	}
}
