package ui

import (
	"fmt"
	"html/template"
	"math"
	"strings"

	"charles/internal/core"
	"charles/internal/sdl"
)

// pieColors cycles through slice fills.
var pieColors = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948",
	"#b07aa1", "#ff9da7", "#9c755f", "#bab0ac", "#86bcb6", "#d37295",
}

// PieSVG renders a pie chart of the fractions (normalized to their
// sum) as a self-contained SVG string of the given pixel size. A
// single slice renders as a full disc.
func PieSVG(fractions []float64, size int) template.HTML {
	var b strings.Builder
	r := float64(size) / 2
	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d">`, size, size, size, size)
	total := 0.0
	for _, f := range fractions {
		if f > 0 {
			total += f
		}
	}
	if total <= 0 {
		b.WriteString("</svg>")
		return template.HTML(b.String())
	}
	angle := -math.Pi / 2 // start at 12 o'clock
	for i, f := range fractions {
		if f <= 0 {
			continue
		}
		frac := f / total
		color := pieColors[i%len(pieColors)]
		if frac >= 0.999999 {
			fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s"/>`, r, r, r, color)
			break
		}
		end := angle + frac*2*math.Pi
		x1, y1 := r+r*math.Cos(angle), r+r*math.Sin(angle)
		x2, y2 := r+r*math.Cos(end), r+r*math.Sin(end)
		large := 0
		if frac > 0.5 {
			large = 1
		}
		fmt.Fprintf(&b, `<path d="M%.2f,%.2f L%.2f,%.2f A%.2f,%.2f 0 %d 1 %.2f,%.2f Z" fill="%s"/>`,
			r, r, x1, y1, r, r, large, x2, y2, color)
		angle = end
	}
	b.WriteString("</svg>")
	return template.HTML(b.String())
}

// SliceColor returns the color used for slice i, so legends match
// the pie.
func SliceColor(i int) string { return pieColors[i%len(pieColors)] }

// PageData feeds the Figure 1 page template.
type PageData struct {
	Table      string
	Context    string
	ContextSQL string
	Rows       int
	Answers    []AnswerView
	Selected   int
	Detail     *DetailView
	Error      string
}

// AnswerView is one pie in the ranked top panel.
type AnswerView struct {
	Index   int
	Attrs   string
	Metrics string
	Pie     template.HTML
}

// DetailView is the main panel: the selected segmentation.
type DetailView struct {
	Index    int
	Attrs    string
	Metrics  string
	Pie      template.HTML
	Segments []SegmentView
}

// SegmentView is one slice of the selected segmentation.
type SegmentView struct {
	Index   int
	Color   string
	Percent string
	Count   int
	SDL     string
	SQL     string
}

// BuildPage assembles the template data for a result. selected is
// the index of the opened answer (−1 for none).
func BuildPage(table string, context sdl.Query, rows int, res *core.Result, selected int) PageData {
	pd := PageData{
		Table:      table,
		Context:    context.String(),
		ContextSQL: sdl.SelectStar(context, table),
		Rows:       rows,
		Selected:   selected,
	}
	for i, sc := range res.Segmentations {
		fracs := make([]float64, len(sc.Seg.Counts))
		total := sc.Seg.Total()
		for j, c := range sc.Seg.Counts {
			fracs[j] = float64(c) / float64(total)
		}
		pd.Answers = append(pd.Answers, AnswerView{
			Index:   i,
			Attrs:   strings.Join(sc.Seg.CutAttrs, ", "),
			Metrics: FormatMetrics(sc.Metrics),
			Pie:     PieSVG(fracs, 96),
		})
	}
	if selected >= 0 && selected < len(res.Segmentations) {
		sc := res.Segmentations[selected]
		total := sc.Seg.Total()
		fracs := make([]float64, len(sc.Seg.Counts))
		dv := &DetailView{
			Index:   selected,
			Attrs:   strings.Join(sc.Seg.CutAttrs, ", "),
			Metrics: FormatMetrics(sc.Metrics),
		}
		for j, c := range sc.Seg.Counts {
			fracs[j] = float64(c) / float64(total)
			dv.Segments = append(dv.Segments, SegmentView{
				Index:   j,
				Color:   SliceColor(j),
				Percent: fmt.Sprintf("%.1f%%", fracs[j]*100),
				Count:   c,
				SDL:     describeQuery(sc.Seg.Queries[j], sc.Seg.CutAttrs),
				SQL:     sdl.SelectStar(sc.Seg.Queries[j], table),
			})
		}
		dv.Pie = PieSVG(fracs, 220)
		pd.Detail = dv
	}
	return pd
}

// PageTemplate is the single-file HTML rendering of Figure 1's
// three panels, served by cmd/charles-server.
var PageTemplate = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>Charles — {{.Table}}</title>
<style>
body { font-family: sans-serif; margin: 0; background: #fafafa; color: #222; }
header { background: #2b3a55; color: #fff; padding: 10px 16px; }
header h1 { margin: 0; font-size: 20px; }
.layout { display: flex; }
.context { width: 280px; padding: 12px 16px; border-right: 1px solid #ddd; }
.context h2, .answers h2, .detail h2 { font-size: 14px; text-transform: uppercase; color: #666; }
.main { flex: 1; padding: 12px 16px; }
.answers { display: flex; flex-wrap: wrap; gap: 12px; }
.answer { text-align: center; padding: 8px; border: 1px solid #ddd; border-radius: 6px; background: #fff; }
.answer.selected { border-color: #2b3a55; box-shadow: 0 0 4px #2b3a55; }
.answer a { text-decoration: none; color: #222; }
.answer .attrs { font-weight: bold; font-size: 13px; max-width: 140px; }
.answer .metrics { font-size: 10px; color: #777; max-width: 150px; }
.segments { border-collapse: collapse; width: 100%; background: #fff; }
.segments td, .segments th { border: 1px solid #e0e0e0; padding: 6px 8px; font-size: 13px; text-align: left; }
.swatch { display: inline-block; width: 12px; height: 12px; border-radius: 2px; margin-right: 6px; }
code { background: #f0f0f0; padding: 1px 4px; border-radius: 3px; font-size: 12px; }
.zoom { font-size: 12px; }
.error { color: #b00; padding: 8px 16px; }
form.ctx input[type=text] { width: 100%; font-family: monospace; }
</style></head>
<body>
<header><h1>Charles — big data query advisor</h1></header>
{{if .Error}}<div class="error">{{.Error}}</div>{{end}}
<div class="layout">
  <div class="context">
    <h2>Context</h2>
    <form class="ctx" method="get" action="/">
      <input type="text" name="context" value="{{.Context}}">
      <input type="submit" value="Go!">
    </form>
    <p>{{.Rows}} rows in <b>{{.Table}}</b></p>
    <p><code>{{.ContextSQL}}</code></p>
  </div>
  <div class="main">
    <h2>Proposed segmentations</h2>
    <div class="answers">
      {{range .Answers}}
      <div class="answer{{if eq .Index $.Selected}} selected{{end}}">
        <a href="/?context={{$.Context}}&open={{.Index}}">
          {{.Pie}}
          <div class="attrs">{{.Attrs}}</div>
          <div class="metrics">{{.Metrics}}</div>
        </a>
      </div>
      {{end}}
    </div>
    {{with .Detail}}
    <h2>Segmentation on {{.Attrs}}</h2>
    <p>{{.Metrics}}</p>
    {{.Pie}}
    <table class="segments">
      <tr><th></th><th>share</th><th>rows</th><th>SDL</th><th>SQL</th><th></th></tr>
      {{range .Segments}}
      <tr>
        <td><span class="swatch" style="background:{{.Color}}"></span>{{.Index}}</td>
        <td>{{.Percent}}</td>
        <td>{{.Count}}</td>
        <td><code>{{.SDL}}</code></td>
        <td><code>{{.SQL}}</code></td>
        <td class="zoom"><a href="/zoom?open={{$.Detail.Index}}&segment={{.Index}}">explore ➜</a></td>
      </tr>
      {{end}}
    </table>
    {{end}}
  </div>
</div>
</body></html>`))
