package ui

import (
	"bytes"
	"strings"
	"testing"
)

func TestPieSVGShape(t *testing.T) {
	svg := string(PieSVG([]float64{0.5, 0.3, 0.2}, 100))
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatalf("svg = %q", svg)
	}
	if strings.Count(svg, "<path") != 3 {
		t.Fatalf("want 3 slices, svg = %q", svg)
	}
}

func TestPieSVGSingleSlice(t *testing.T) {
	svg := string(PieSVG([]float64{1}, 50))
	if !strings.Contains(svg, "<circle") {
		t.Fatalf("full pie should be a circle: %q", svg)
	}
}

func TestPieSVGDegenerate(t *testing.T) {
	if svg := string(PieSVG(nil, 50)); strings.Contains(svg, "path") {
		t.Fatalf("empty pie has slices: %q", svg)
	}
	if svg := string(PieSVG([]float64{0, 0}, 50)); strings.Contains(svg, "path") {
		t.Fatalf("zero pie has slices: %q", svg)
	}
	// Negative fractions are ignored, not rendered.
	svg := string(PieSVG([]float64{-1, 1}, 50))
	if strings.Count(svg, "<path")+strings.Count(svg, "<circle") != 1 {
		t.Fatalf("negative fraction rendered: %q", svg)
	}
}

func TestPieSVGMajoritySliceUsesLargeArc(t *testing.T) {
	svg := string(PieSVG([]float64{0.8, 0.2}, 100))
	if !strings.Contains(svg, " 1 1 ") {
		t.Fatalf("majority slice must set the large-arc flag: %q", svg)
	}
}

func TestSliceColorCycles(t *testing.T) {
	if SliceColor(0) != SliceColor(len(pieColors)) {
		t.Fatal("colors do not cycle")
	}
}

func TestBuildPageAndTemplate(t *testing.T) {
	res, ctx, _ := sampleResult(t)
	pd := BuildPage("figure3", ctx, 2000, res, 0)
	if len(pd.Answers) != len(res.Segmentations) {
		t.Fatalf("answers = %d", len(pd.Answers))
	}
	if pd.Detail == nil || len(pd.Detail.Segments) != res.Segmentations[0].Seg.Depth() {
		t.Fatal("detail view missing or wrong size")
	}
	var buf bytes.Buffer
	if err := PageTemplate.Execute(&buf, pd); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, want := range []string{"Charles", "figure3", "<svg", "explore ➜", "SELECT * FROM"} {
		if !strings.Contains(html, want) {
			t.Fatalf("page missing %q", want)
		}
	}
}

func TestBuildPageNoSelection(t *testing.T) {
	res, ctx, _ := sampleResult(t)
	pd := BuildPage("figure3", ctx, 2000, res, -1)
	if pd.Detail != nil {
		t.Fatal("detail rendered without selection")
	}
	var buf bytes.Buffer
	if err := PageTemplate.Execute(&buf, pd); err != nil {
		t.Fatal(err)
	}
}

func TestBuildPageSelectionOutOfRange(t *testing.T) {
	res, ctx, _ := sampleResult(t)
	pd := BuildPage("figure3", ctx, 2000, res, 999)
	if pd.Detail != nil {
		t.Fatal("out-of-range selection produced a detail view")
	}
}
