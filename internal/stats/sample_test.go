package stats

import (
	"math/rand"
	"testing"
)

func TestReservoirInt32Size(t *testing.T) {
	ids := make([]int32, 1000)
	for i := range ids {
		ids[i] = int32(i)
	}
	rng := rand.New(rand.NewSource(3))
	sample := ReservoirInt32(ids, 100, rng)
	if len(sample) != 100 {
		t.Fatalf("sample size = %d, want 100", len(sample))
	}
	seen := map[int32]bool{}
	for _, id := range sample {
		if seen[id] {
			t.Fatalf("duplicate id %d in sample", id)
		}
		seen[id] = true
		if id < 0 || id >= 1000 {
			t.Fatalf("id %d outside population", id)
		}
	}
}

func TestReservoirInt32WholePopulation(t *testing.T) {
	ids := []int32{5, 6, 7}
	rng := rand.New(rand.NewSource(1))
	sample := ReservoirInt32(ids, 10, rng)
	if len(sample) != 3 {
		t.Fatalf("sample size = %d, want 3", len(sample))
	}
	sample[0] = 99 // must be a copy, not an alias
	if ids[0] == 99 {
		t.Fatal("ReservoirInt32 aliased its input")
	}
}

func TestReservoirInt32RoughlyUniform(t *testing.T) {
	// Each of 10 ids should be picked ~500 times over 1000 draws of 5.
	hits := make([]int, 10)
	rng := rand.New(rand.NewSource(42))
	ids := []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	for trial := 0; trial < 1000; trial++ {
		for _, id := range ReservoirInt32(ids, 5, rng) {
			hits[id]++
		}
	}
	for id, h := range hits {
		if h < 400 || h > 600 {
			t.Fatalf("id %d hit %d times, want ≈500", id, h)
		}
	}
}

func TestStridedInt32(t *testing.T) {
	ids := make([]int32, 100)
	for i := range ids {
		ids[i] = int32(i)
	}
	sample := StridedInt32(ids, 10)
	if len(sample) != 10 {
		t.Fatalf("sample size = %d, want 10", len(sample))
	}
	for i := 1; i < len(sample); i++ {
		if sample[i] <= sample[i-1] {
			t.Fatalf("strided sample not increasing: %v", sample)
		}
	}
	if got := StridedInt32(ids, 200); len(got) != 100 {
		t.Fatalf("oversized request returned %d ids, want all 100", len(got))
	}
	if got := StridedInt32(ids, 0); got != nil {
		t.Fatalf("k=0 returned %v, want nil", got)
	}
}

func TestStridedInt32Deterministic(t *testing.T) {
	ids := make([]int32, 57)
	for i := range ids {
		ids[i] = int32(i * 3)
	}
	a := StridedInt32(ids, 7)
	b := StridedInt32(ids, 7)
	if len(a) != len(b) {
		t.Fatal("non-deterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic sample")
		}
	}
}
