package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestEntropyEmpty(t *testing.T) {
	if got := Entropy(nil); got != 0 {
		t.Fatalf("Entropy(nil) = %v, want 0", got)
	}
	if got := Entropy([]int{0, 0, 0}); got != 0 {
		t.Fatalf("Entropy(zeros) = %v, want 0", got)
	}
}

func TestEntropySinglePiece(t *testing.T) {
	if got := Entropy([]int{42}); got != 0 {
		t.Fatalf("Entropy(single) = %v, want 0", got)
	}
}

func TestEntropyBalancedSplit(t *testing.T) {
	for k := 2; k <= 16; k++ {
		counts := make([]int, k)
		for i := range counts {
			counts[i] = 100
		}
		if got, want := Entropy(counts), math.Log2(float64(k)); !almostEqual(got, want, 1e-12) {
			t.Errorf("Entropy(balanced %d-way) = %v, want %v", k, got, want)
		}
	}
}

func TestEntropyIgnoresZeroCells(t *testing.T) {
	a := Entropy([]int{10, 20, 30})
	b := Entropy([]int{10, 0, 20, 0, 30, 0})
	if !almostEqual(a, b, 1e-12) {
		t.Fatalf("zero cells changed entropy: %v vs %v", a, b)
	}
}

func TestEntropySkewLowersEntropy(t *testing.T) {
	balanced := Entropy([]int{50, 50})
	skewed := Entropy([]int{90, 10})
	if skewed >= balanced {
		t.Fatalf("skewed entropy %v not below balanced %v", skewed, balanced)
	}
}

func TestEntropyBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int, len(raw))
		k := 0
		for i, r := range raw {
			counts[i] = int(r)
			if r > 0 {
				k++
			}
		}
		h := Entropy(counts)
		return h >= 0 && h <= MaxEntropy(k)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEntropyFloatMatchesInt(t *testing.T) {
	counts := []int{3, 5, 8, 13}
	masses := []float64{3, 5, 8, 13}
	if a, b := Entropy(counts), EntropyFloat(masses); !almostEqual(a, b, 1e-12) {
		t.Fatalf("int %v vs float %v", a, b)
	}
}

func TestEntropyFloatNegativeMassIgnored(t *testing.T) {
	if got, want := EntropyFloat([]float64{-1, 2, 2}), 1.0; !almostEqual(got, want, 1e-12) {
		t.Fatalf("EntropyFloat = %v, want %v", got, want)
	}
}

func TestMaxEntropy(t *testing.T) {
	if MaxEntropy(0) != 0 || MaxEntropy(1) != 0 {
		t.Fatal("MaxEntropy of degenerate k must be 0")
	}
	if got := MaxEntropy(8); !almostEqual(got, 3, 1e-12) {
		t.Fatalf("MaxEntropy(8) = %v, want 3", got)
	}
}

func TestBalanceRatio(t *testing.T) {
	if got := BalanceRatio([]int{25, 25, 25, 25}); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("balanced ratio = %v, want 1", got)
	}
	if got := BalanceRatio([]int{97, 1, 1, 1}); got >= 0.5 {
		t.Fatalf("skewed ratio = %v, want < 0.5", got)
	}
	if got := BalanceRatio([]int{100}); got != 1 {
		t.Fatalf("single-piece ratio = %v, want 1", got)
	}
}

func TestMutualInformationIndependent(t *testing.T) {
	// Perfectly independent 2x2: cells proportional to product of
	// marginals.
	cells := [][]int{{40, 60}, {40, 60}}
	if got := MutualInformation(cells); !almostEqual(got, 0, 1e-9) {
		t.Fatalf("MI of independent table = %v, want 0", got)
	}
}

func TestMutualInformationPerfectDependence(t *testing.T) {
	cells := [][]int{{50, 0}, {0, 50}}
	if got := MutualInformation(cells); !almostEqual(got, 1, 1e-9) {
		t.Fatalf("MI of diagonal table = %v, want 1 bit", got)
	}
}

func TestMutualInformationNonNegativeProperty(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		cells := [][]int{{int(a), int(b)}, {int(c), int(d)}}
		return MutualInformation(cells) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMutualInformationEmpty(t *testing.T) {
	if got := MutualInformation(nil); got != 0 {
		t.Fatalf("MI(nil) = %v, want 0", got)
	}
}
