package stats

import "sort"

// ordered covers the element types Charles selects over.
type ordered interface {
	~int64 | ~float64
}

// quickSelect returns the k-th smallest element (0-based) of v,
// reordering v in place. Expected O(n): iterative quickselect with a
// median-of-three pivot and three-way (Dutch national flag)
// partitioning, which stays linear on inputs with heavy duplicates.
func quickSelect[T ordered](v []T, k int) T {
	if k < 0 || k >= len(v) {
		panic("stats: quickselect index out of range")
	}
	lo, hi := 0, len(v)-1
	for lo < hi {
		p := pivotValue(v, lo, hi)
		// Partition [lo..hi] into [<p | ==p | >p].
		lt, gt, i := lo, hi, lo
		for i <= gt {
			switch {
			case v[i] < p:
				v[i], v[lt] = v[lt], v[i]
				lt++
				i++
			case v[i] > p:
				v[i], v[gt] = v[gt], v[i]
				gt--
			default:
				i++
			}
		}
		switch {
		case k < lt:
			hi = lt - 1
		case k > gt:
			lo = gt + 1
		default:
			return p
		}
	}
	return v[lo]
}

// pivotValue returns the median of v[lo], v[mid], v[hi] by value.
func pivotValue[T ordered](v []T, lo, hi int) T {
	mid := lo + (hi-lo)/2
	a, b, c := v[lo], v[mid], v[hi]
	switch {
	case a < b:
		switch {
		case b < c:
			return b
		case a < c:
			return c
		default:
			return a
		}
	default: // b <= a
		switch {
		case a < c:
			return a
		case b < c:
			return c
		default:
			return b
		}
	}
}

// QuickSelectInt64 returns the k-th smallest element (0-based) of
// vals, reordering vals in place. It panics if k is out of range;
// callers own the bounds check.
func QuickSelectInt64(vals []int64, k int) int64 {
	return quickSelect(vals, k)
}

// QuickSelectFloat64 returns the k-th smallest element (0-based) of
// vals, reordering vals in place. NaN values must not be present.
func QuickSelectFloat64(vals []float64, k int) float64 {
	return quickSelect(vals, k)
}

// MedianInt64 returns the upper median vals[n/2] (the cut point used
// by Definition 5: the left piece takes values strictly below it).
// vals is reordered in place. It panics on empty input.
func MedianInt64(vals []int64) int64 {
	return quickSelect(vals, len(vals)/2)
}

// MedianFloat64 returns the upper median vals[n/2], reordering vals
// in place. It panics on empty input.
func MedianFloat64(vals []float64) float64 {
	return quickSelect(vals, len(vals)/2)
}

// QuantilesInt64 returns the values at the given quantile fractions
// (each in (0,1)), computed as the element at index floor(q*n)
// clamped to [0, n-1]. vals is reordered in place. The result
// preserves the order of qs.
func QuantilesInt64(vals []int64, qs []float64) []int64 {
	out := make([]int64, len(qs))
	for i, q := range qs {
		out[i] = quickSelect(vals, quantileIndex(len(vals), q))
	}
	return out
}

// QuantilesFloat64 is QuantilesInt64 for float64 data.
func QuantilesFloat64(vals []float64, qs []float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = quickSelect(vals, quantileIndex(len(vals), q))
	}
	return out
}

func quantileIndex(n int, q float64) int {
	if n == 0 {
		panic("stats: quantile of empty input")
	}
	k := int(q * float64(n))
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return k
}

// EquiDepthPoints returns arity−1 split points dividing vals into
// arity pieces of (approximately) equal depth, i.e. the quantiles at
// i/arity for i in 1..arity−1. The points are strictly increasing:
// duplicate quantile values (heavy duplicates in the data) are
// collapsed, so fewer than arity−1 points may be returned. vals is
// reordered in place.
func EquiDepthPoints(vals []int64, arity int) []int64 {
	if arity < 2 || len(vals) == 0 {
		return nil
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	points := make([]int64, 0, arity-1)
	for i := 1; i < arity; i++ {
		p := vals[quantileIndex(len(vals), float64(i)/float64(arity))]
		if len(points) == 0 || p > points[len(points)-1] {
			if p > vals[0] { // a point equal to the minimum splits off nothing
				points = append(points, p)
			}
		}
	}
	return points
}

// EquiDepthPointsFloat64 is EquiDepthPoints for float64 data.
func EquiDepthPointsFloat64(vals []float64, arity int) []float64 {
	if arity < 2 || len(vals) == 0 {
		return nil
	}
	sort.Float64s(vals)
	points := make([]float64, 0, arity-1)
	for i := 1; i < arity; i++ {
		p := vals[quantileIndex(len(vals), float64(i)/float64(arity))]
		if len(points) == 0 || p > points[len(points)-1] {
			if p > vals[0] {
				points = append(points, p)
			}
		}
	}
	return points
}
