package stats

import "math"

// ChiSquare computes Pearson's chi-squared statistic and its degrees
// of freedom for the joint count matrix cells (rows × columns).
// Rows or columns whose marginal is zero are ignored. The second
// return value is 0 when the table is degenerate (fewer than two
// populated rows or columns), in which case the statistic is 0.
func ChiSquare(cells [][]int) (stat float64, dof int) {
	if len(cells) == 0 {
		return 0, 0
	}
	nRows, nCols := len(cells), len(cells[0])
	rowSum := make([]float64, nRows)
	colSum := make([]float64, nCols)
	total := 0.0
	for i := range cells {
		for j, c := range cells[i] {
			rowSum[i] += float64(c)
			colSum[j] += float64(c)
			total += float64(c)
		}
	}
	if total == 0 {
		return 0, 0
	}
	liveRows, liveCols := 0, 0
	for _, s := range rowSum {
		if s > 0 {
			liveRows++
		}
	}
	for _, s := range colSum {
		if s > 0 {
			liveCols++
		}
	}
	if liveRows < 2 || liveCols < 2 {
		return 0, 0
	}
	for i := range cells {
		if rowSum[i] == 0 {
			continue
		}
		for j, c := range cells[i] {
			if colSum[j] == 0 {
				continue
			}
			expected := rowSum[i] * colSum[j] / total
			d := float64(c) - expected
			stat += d * d / expected
		}
	}
	return stat, (liveRows - 1) * (liveCols - 1)
}

// ChiSquarePValue returns P(X ≥ stat) for a chi-squared variable
// with dof degrees of freedom: the upper regularized incomplete
// gamma function Q(dof/2, stat/2). It returns 1 for dof ≤ 0.
func ChiSquarePValue(stat float64, dof int) float64 {
	if dof <= 0 || stat <= 0 {
		return 1
	}
	return upperRegularizedGamma(float64(dof)/2, stat/2)
}

// ChiSquareIndependent reports whether the joint counts are
// consistent with independence at significance level alpha: true
// when the p-value is at least alpha (we fail to reject
// independence).
func ChiSquareIndependent(cells [][]int, alpha float64) bool {
	stat, dof := ChiSquare(cells)
	return ChiSquarePValue(stat, dof) >= alpha
}

// ChiSquareFlat is ChiSquare over a row-major flat nRows×nCols count
// vector — the layout the pairwise cell loop fills — so callers that
// own a flat buffer never materialize the [][]int view. It mirrors
// ChiSquare case for case; rowSum and colSum are caller-provided
// scratch of length nRows and nCols (overwritten), letting hot
// callers pool them.
func ChiSquareFlat(flat []int, nRows, nCols int, rowSum, colSum []float64) (stat float64, dof int) {
	if nRows == 0 || nCols == 0 {
		return 0, 0
	}
	for i := range rowSum {
		rowSum[i] = 0
	}
	for j := range colSum {
		colSum[j] = 0
	}
	total := 0.0
	for i := 0; i < nRows; i++ {
		for j, c := range flat[i*nCols : (i+1)*nCols] {
			rowSum[i] += float64(c)
			colSum[j] += float64(c)
			total += float64(c)
		}
	}
	if total == 0 {
		return 0, 0
	}
	liveRows, liveCols := 0, 0
	for _, s := range rowSum {
		if s > 0 {
			liveRows++
		}
	}
	for _, s := range colSum {
		if s > 0 {
			liveCols++
		}
	}
	if liveRows < 2 || liveCols < 2 {
		return 0, 0
	}
	for i := 0; i < nRows; i++ {
		if rowSum[i] == 0 {
			continue
		}
		for j, c := range flat[i*nCols : (i+1)*nCols] {
			if colSum[j] == 0 {
				continue
			}
			expected := rowSum[i] * colSum[j] / total
			d := float64(c) - expected
			stat += d * d / expected
		}
	}
	return stat, (liveRows - 1) * (liveCols - 1)
}

// ChiSquareIndependentFlat is ChiSquareIndependent over the flat
// layout, with caller-pooled marginal scratch.
func ChiSquareIndependentFlat(flat []int, nRows, nCols int, rowSum, colSum []float64, alpha float64) bool {
	stat, dof := ChiSquareFlat(flat, nRows, nCols, rowSum, colSum)
	return ChiSquarePValue(stat, dof) >= alpha
}

// upperRegularizedGamma computes Q(a, x) = Γ(a, x)/Γ(a) using the
// series expansion for x < a+1 and the continued fraction otherwise
// (Numerical Recipes §6.2 style, stdlib math only).
func upperRegularizedGamma(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return 1
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - lowerGammaSeries(a, x)
	}
	return upperGammaContinuedFraction(a, x)
}

func lowerGammaSeries(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func upperGammaContinuedFraction(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
