package stats

import "sort"

// ValueCount pairs a nominal value with its frequency inside the
// population being split.
type ValueCount struct {
	Value string
	Count int
}

// OrderByFrequency sorts vcs by descending count, breaking ties
// alphabetically so the order is deterministic. This is the ordering
// the paper prescribes for low-cardinality nominal columns ("sort
// the values by order of occurrence").
func OrderByFrequency(vcs []ValueCount) {
	sort.Slice(vcs, func(i, j int) bool {
		if vcs[i].Count != vcs[j].Count {
			return vcs[i].Count > vcs[j].Count
		}
		return vcs[i].Value < vcs[j].Value
	})
}

// OrderAlphabetically sorts vcs by value, the ordering the paper
// prescribes for high-cardinality nominal columns.
func OrderAlphabetically(vcs []ValueCount) {
	sort.Slice(vcs, func(i, j int) bool { return vcs[i].Value < vcs[j].Value })
}

// NominalSplitPoint returns the index k (1 ≤ k ≤ len(vcs)−1) such
// that splitting the ordered value list into vcs[:k] and vcs[k:]
// puts the accumulated frequency of the first part as close to 50%
// as possible — the nominal "median" of Section 4.1. The boolean is
// false when no split is possible (fewer than two values).
func NominalSplitPoint(vcs []ValueCount) (int, bool) {
	if len(vcs) < 2 {
		return 0, false
	}
	total := 0
	for _, vc := range vcs {
		total += vc.Count
	}
	if total == 0 {
		return 0, false
	}
	half := float64(total) / 2
	bestK, bestDist := 1, -1.0
	cum := 0
	for k := 1; k < len(vcs); k++ {
		cum += vcs[k-1].Count
		d := half - float64(cum)
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			bestK, bestDist = k, d
		}
	}
	return bestK, true
}

// NominalSplitPoints generalizes NominalSplitPoint to arity-way
// splits: it returns up to arity−1 increasing indices cutting the
// ordered list so each part's accumulated frequency is as close to
// i/arity as possible. Returned indices are strictly increasing and
// within (0, len(vcs)).
func NominalSplitPoints(vcs []ValueCount, arity int) []int {
	if len(vcs) < 2 || arity < 2 {
		return nil
	}
	total := 0
	for _, vc := range vcs {
		total += vc.Count
	}
	if total == 0 {
		return nil
	}
	cum := make([]int, len(vcs)) // cum[k] = count of vcs[:k+1]
	running := 0
	for i, vc := range vcs {
		running += vc.Count
		cum[i] = running
	}
	points := make([]int, 0, arity-1)
	prev := 0
	for i := 1; i < arity; i++ {
		target := float64(total) * float64(i) / float64(arity)
		bestK, bestDist := 0, -1.0
		for k := prev + 1; k < len(vcs); k++ {
			d := target - float64(cum[k-1])
			if d < 0 {
				d = -d
			}
			if bestDist < 0 || d < bestDist {
				bestK, bestDist = k, d
			}
		}
		if bestK == 0 { // no room left for further split points
			break
		}
		points = append(points, bestK)
		prev = bestK
	}
	return points
}
