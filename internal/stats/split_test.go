package stats

import (
	"testing"
	"testing/quick"
)

func TestOrderByFrequency(t *testing.T) {
	vcs := []ValueCount{{"b", 5}, {"a", 9}, {"c", 5}, {"d", 1}}
	OrderByFrequency(vcs)
	want := []string{"a", "b", "c", "d"} // 9, then 5-ties alphabetical, then 1
	for i, w := range want {
		if vcs[i].Value != w {
			t.Fatalf("order = %v, want values %v", vcs, want)
		}
	}
}

func TestOrderAlphabetically(t *testing.T) {
	vcs := []ValueCount{{"zeeland", 1}, {"bantam", 9}, {"surat", 4}}
	OrderAlphabetically(vcs)
	if vcs[0].Value != "bantam" || vcs[2].Value != "zeeland" {
		t.Fatalf("alphabetical order wrong: %v", vcs)
	}
}

func TestNominalSplitPointBalanced(t *testing.T) {
	vcs := []ValueCount{{"a", 25}, {"b", 25}, {"c", 25}, {"d", 25}}
	k, ok := NominalSplitPoint(vcs)
	if !ok || k != 2 {
		t.Fatalf("split = %d ok=%v, want 2 true", k, ok)
	}
}

func TestNominalSplitPointSkewed(t *testing.T) {
	// One dominant value: the closest-to-half split isolates it.
	vcs := []ValueCount{{"fluit", 60}, {"jacht", 20}, {"pinas", 20}}
	k, ok := NominalSplitPoint(vcs)
	if !ok || k != 1 {
		t.Fatalf("split = %d ok=%v, want 1 true", k, ok)
	}
}

func TestNominalSplitPointDegenerate(t *testing.T) {
	if _, ok := NominalSplitPoint([]ValueCount{{"only", 10}}); ok {
		t.Fatal("single value must not split")
	}
	if _, ok := NominalSplitPoint(nil); ok {
		t.Fatal("empty list must not split")
	}
	if _, ok := NominalSplitPoint([]ValueCount{{"a", 0}, {"b", 0}}); ok {
		t.Fatal("zero total must not split")
	}
}

func TestNominalSplitPointAlwaysInteriorProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		vcs := make([]ValueCount, len(raw))
		total := 0
		for i, r := range raw {
			vcs[i] = ValueCount{Value: string(rune('a' + i%26)), Count: int(r) + 1}
			total += int(r) + 1
		}
		k, ok := NominalSplitPoint(vcs)
		return ok && k >= 1 && k < len(vcs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNominalSplitPointsTertiles(t *testing.T) {
	vcs := []ValueCount{{"a", 10}, {"b", 10}, {"c", 10}, {"d", 10}, {"e", 10}, {"f", 10}}
	points := NominalSplitPoints(vcs, 3)
	if len(points) != 2 || points[0] != 2 || points[1] != 4 {
		t.Fatalf("tertile points = %v, want [2 4]", points)
	}
}

func TestNominalSplitPointsIncreasingProperty(t *testing.T) {
	f := func(raw []uint8, arity uint8) bool {
		a := int(arity%6) + 2
		if len(raw) < 2 {
			return true
		}
		vcs := make([]ValueCount, len(raw))
		for i, r := range raw {
			vcs[i] = ValueCount{Value: string(rune('a' + i%26)), Count: int(r) + 1}
		}
		points := NominalSplitPoints(vcs, a)
		prev := 0
		for _, p := range points {
			if p <= prev || p >= len(vcs) {
				return false
			}
			prev = p
		}
		return len(points) <= a-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNominalSplitPointsMatchesBinaryCase(t *testing.T) {
	vcs := []ValueCount{{"a", 30}, {"b", 30}, {"c", 40}}
	k, _ := NominalSplitPoint(vcs)
	points := NominalSplitPoints(vcs, 2)
	if len(points) != 1 || points[0] != k {
		t.Fatalf("arity-2 points %v disagree with binary split %d", points, k)
	}
}
