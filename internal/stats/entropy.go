// Package stats provides the numerical foundations used throughout
// Charles: entropy, order statistics (medians, quantiles), frequency
// split points for nominal domains, reservoir sampling, and a
// chi-squared independence test. It has no dependencies on the rest
// of the repository.
package stats

import "math"

// Entropy returns the Shannon entropy, in bits, of the empirical
// distribution induced by counts. Zero counts contribute nothing
// (lim p→0 of p·log p). The result is 0 for an empty or single-class
// input and at most log2(k) for k non-zero classes.
func Entropy(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	if h < 0 { // guard against -0 and rounding noise
		h = 0
	}
	return h
}

// EntropyFloat is Entropy over non-negative float64 masses. It is
// used when cell masses are pre-normalized or fractional (for
// example, sampled estimates).
func EntropyFloat(masses []float64) float64 {
	total := 0.0
	for _, m := range masses {
		if m > 0 {
			total += m
		}
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, m := range masses {
		if m <= 0 {
			continue
		}
		p := m / total
		h -= p * math.Log2(p)
	}
	if h < 0 {
		h = 0
	}
	return h
}

// MaxEntropy returns log2(k), the entropy of a perfectly balanced
// k-way split, and 0 for k < 2.
func MaxEntropy(k int) float64 {
	if k < 2 {
		return 0
	}
	return math.Log2(float64(k))
}

// BalanceRatio returns Entropy(counts)/log2(k) where k is the number
// of non-zero classes: 1 for a perfectly balanced split, approaching
// 0 for a degenerate one. It returns 1 when fewer than two classes
// are populated (a single piece is trivially "balanced").
func BalanceRatio(counts []int) float64 {
	k := 0
	for _, c := range counts {
		if c > 0 {
			k++
		}
	}
	if k < 2 {
		return 1
	}
	return Entropy(counts) / MaxEntropy(k)
}

// MutualInformation returns the mutual information, in bits, between
// the row and column variables of the joint count matrix cells
// (cells[i][j] = co-occurrence count of row class i and column class
// j). It equals H(rows) + H(cols) − H(joint) and is never negative
// up to floating-point noise.
func MutualInformation(cells [][]int) float64 {
	if len(cells) == 0 {
		return 0
	}
	rows := make([]int, len(cells))
	cols := make([]int, len(cells[0]))
	flat := make([]int, 0, len(cells)*len(cells[0]))
	for i, row := range cells {
		for j, c := range row {
			rows[i] += c
			cols[j] += c
			flat = append(flat, c)
		}
	}
	mi := Entropy(rows) + Entropy(cols) - Entropy(flat)
	if mi < 0 {
		mi = 0
	}
	return mi
}
