// Chunked order statistics: the cut-point math (medians, equi-depth
// quantiles) over data that arrives as per-chunk slices instead of
// one flat vector. Section 5.1 names exactly these calculations as
// the vertical-scalability bottleneck; the chunked forms sort every
// chunk independently on the worker pool and then resolve the
// requested ranks by value-space binary search over the sorted
// chunks, so no step ever concatenates, copies or re-sorts the whole
// extent. Every function returns exactly what its flat counterpart
// returns on the concatenation of the chunks: the k-th smallest of a
// multiset does not depend on how the multiset is sharded.
package stats

import (
	"math"
	"sort"

	"charles/internal/par"
)

// SortInt64Chunks sorts every chunk ascending in place, one chunk
// per worker-pool task.
func SortInt64Chunks(chunks [][]int64, workers int) {
	_ = par.ForEach(par.Workers(workers), len(chunks), func(c int) error {
		sort.Slice(chunks[c], func(i, j int) bool { return chunks[c][i] < chunks[c][j] })
		return nil
	})
}

// SortFloat64Chunks sorts every chunk ascending in place, one chunk
// per worker-pool task.
func SortFloat64Chunks(chunks [][]float64, workers int) {
	_ = par.ForEach(par.Workers(workers), len(chunks), func(c int) error {
		sort.Float64s(chunks[c])
		return nil
	})
}

// int64Key maps int64 to uint64 preserving order (flip the sign
// bit), so rank binary searches can bisect the value space without
// signed-midpoint overflow.
func int64Key(v int64) uint64 { return uint64(v) ^ (1 << 63) }

func int64FromKey(u uint64) int64 { return int64(u ^ (1 << 63)) }

// float64Key maps a non-NaN float64 to uint64 preserving IEEE-754
// order: non-negative values set the sign bit, negative values are
// bit-complemented. -0.0 is collapsed onto +0.0 first — the two
// compare equal, so counting cannot separate their raw keys, and
// without the collapse the search would converge on the -0.0 key
// and return a "-0" the data may not contain (which renders
// differently in canonical query strings). With it, any selected
// zero comes back as +0.0, deterministically. The map is then
// monotone on the non-NaN range, letting the rank search bisect
// float values through integer midpoints.
func float64Key(v float64) uint64 {
	if v == 0 {
		v = 0 // +0.0, whatever the sign bit said
	}
	b := math.Float64bits(v)
	if b>>63 == 1 {
		return ^b
	}
	return b | 1<<63
}

func float64FromKey(u uint64) float64 {
	if u>>63 == 1 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}

// KthSortedInt64Chunks returns the k-th smallest element (0-based)
// of the multiset union of sorted chunks. It binary-searches the
// value space: the answer is the smallest value v with
// count(≤ v) ≥ k+1, located through O(64) probes of c·log(chunk)
// comparisons each — no merge, no copy. Panics when k is out of
// range.
func KthSortedInt64Chunks(chunks [][]int64, k int) int64 {
	n := 0
	loK, hiK := uint64(math.MaxUint64), uint64(0)
	for _, ch := range chunks {
		n += len(ch)
		if len(ch) == 0 {
			continue
		}
		if f := int64Key(ch[0]); f < loK {
			loK = f
		}
		if l := int64Key(ch[len(ch)-1]); l > hiK {
			hiK = l
		}
	}
	if k < 0 || k >= n {
		panic("stats: chunked rank out of range")
	}
	for loK < hiK {
		mid := loK + (hiK-loK)/2
		v := int64FromKey(mid)
		le := 0
		for _, ch := range chunks {
			le += sort.Search(len(ch), func(i int) bool { return ch[i] > v })
		}
		if le >= k+1 {
			hiK = mid
		} else {
			loK = mid + 1
		}
	}
	return int64FromKey(loK)
}

// KthSortedFloat64Chunks is KthSortedInt64Chunks over floats. The
// chunks must be NaN-free (NaN has no rank). A selected zero is
// always returned as +0.0: -0.0 and +0.0 compare equal, so counting
// cannot tell whose key the search converged on, and the positive
// canonical form keeps downstream renderings ("0", never "-0")
// independent of sharding and branch choice.
func KthSortedFloat64Chunks(chunks [][]float64, k int) float64 {
	n := 0
	loK, hiK := uint64(math.MaxUint64), uint64(0)
	for _, ch := range chunks {
		n += len(ch)
		if len(ch) == 0 {
			continue
		}
		if f := float64Key(ch[0]); f < loK {
			loK = f
		}
		if l := float64Key(ch[len(ch)-1]); l > hiK {
			hiK = l
		}
	}
	if k < 0 || k >= n {
		panic("stats: chunked rank out of range")
	}
	for loK < hiK {
		mid := loK + (hiK-loK)/2
		v := float64FromKey(mid)
		le := 0
		for _, ch := range chunks {
			le += sort.Search(len(ch), func(i int) bool { return ch[i] > v })
		}
		if le >= k+1 {
			hiK = mid
		} else {
			loK = mid + 1
		}
	}
	if v := float64FromKey(loK); v != 0 {
		return v
	}
	return 0 // canonical +0.0 for any selected zero
}

// MedianInt64Chunks returns the upper median (the element at global
// sorted index n/2 — what MedianInt64 returns on the concatenation).
// Chunks are sorted in place. Panics on empty input.
func MedianInt64Chunks(chunks [][]int64, workers int) int64 {
	SortInt64Chunks(chunks, workers)
	n := 0
	for _, ch := range chunks {
		n += len(ch)
	}
	return KthSortedInt64Chunks(chunks, n/2)
}

// MedianFloat64Chunks is MedianInt64Chunks over floats.
func MedianFloat64Chunks(chunks [][]float64, workers int) float64 {
	SortFloat64Chunks(chunks, workers)
	n := 0
	for _, ch := range chunks {
		n += len(ch)
	}
	return KthSortedFloat64Chunks(chunks, n/2)
}

// EquiDepthPointsChunks returns exactly what EquiDepthPoints returns
// on the concatenation of the chunks: up to arity−1 strictly
// increasing equi-depth points, duplicates collapsed and points
// equal to the global minimum dropped. Chunks are sorted in place in
// parallel; each point is then one rank selection.
func EquiDepthPointsChunks(chunks [][]int64, arity, workers int) []int64 {
	n := 0
	for _, ch := range chunks {
		n += len(ch)
	}
	if arity < 2 || n == 0 {
		return nil
	}
	SortInt64Chunks(chunks, workers)
	return EquiDepthPointsSorted(chunks, arity)
}

// EquiDepthPointsSorted is the rank-selection half of
// EquiDepthPointsChunks: the chunks must already be sorted ascending
// (for example, cached sorted runs from an earlier computation). The
// k-th smallest of a multiset does not depend on who sorted it, so
// the result is identical to EquiDepthPointsChunks on the same data.
func EquiDepthPointsSorted(chunks [][]int64, arity int) []int64 {
	n := 0
	for _, ch := range chunks {
		n += len(ch)
	}
	if arity < 2 || n == 0 {
		return nil
	}
	min := KthSortedInt64Chunks(chunks, 0)
	points := make([]int64, 0, arity-1)
	for i := 1; i < arity; i++ {
		p := KthSortedInt64Chunks(chunks, quantileIndex(n, float64(i)/float64(arity)))
		if len(points) == 0 || p > points[len(points)-1] {
			if p > min {
				points = append(points, p)
			}
		}
	}
	return points
}

// EquiDepthPointsChunksFloat64 is EquiDepthPointsChunks for float64
// data.
func EquiDepthPointsChunksFloat64(chunks [][]float64, arity, workers int) []float64 {
	n := 0
	for _, ch := range chunks {
		n += len(ch)
	}
	if arity < 2 || n == 0 {
		return nil
	}
	SortFloat64Chunks(chunks, workers)
	min := KthSortedFloat64Chunks(chunks, 0)
	points := make([]float64, 0, arity-1)
	for i := 1; i < arity; i++ {
		p := KthSortedFloat64Chunks(chunks, quantileIndex(n, float64(i)/float64(arity)))
		if len(points) == 0 || p > points[len(points)-1] {
			if p > min {
				points = append(points, p)
			}
		}
	}
	return points
}
