package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuickSelectInt64MatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(50)) // duplicates on purpose
		}
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		k := rng.Intn(n)
		work := append([]int64(nil), vals...)
		if got, want := QuickSelectInt64(work, k), sorted[k]; got != want {
			t.Fatalf("trial %d: QuickSelect(k=%d) = %d, want %d", trial, k, got, want)
		}
	}
}

func TestQuickSelectFloat64MatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(rng.Intn(40)) / 4
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		k := rng.Intn(n)
		work := append([]float64(nil), vals...)
		if got, want := QuickSelectFloat64(work, k), sorted[k]; got != want {
			t.Fatalf("trial %d: QuickSelect(k=%d) = %v, want %v", trial, k, got, want)
		}
	}
}

func TestQuickSelectPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range k")
		}
	}()
	QuickSelectInt64([]int64{1, 2, 3}, 3)
}

func TestMedianInt64UpperMedian(t *testing.T) {
	// Even length: upper median is element n/2 of the sorted order.
	if got := MedianInt64([]int64{4, 1, 3, 2}); got != 3 {
		t.Fatalf("median of 1..4 = %d, want 3 (upper median)", got)
	}
	if got := MedianInt64([]int64{5}); got != 5 {
		t.Fatalf("median of singleton = %d, want 5", got)
	}
	if got := MedianInt64([]int64{9, 7, 8}); got != 8 {
		t.Fatalf("median of 7..9 = %d, want 8", got)
	}
}

func TestMedianSplitsRoughlyInHalfProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(500)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(1 << 30) // effectively distinct
		}
		med := MedianInt64(append([]int64(nil), vals...))
		below := 0
		for _, v := range vals {
			if v < med {
				below++
			}
		}
		// With distinct values the strict-below count is exactly n/2.
		return below == n/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantilesInt64(t *testing.T) {
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i)
	}
	got := QuantilesInt64(append([]int64(nil), vals...), []float64{0.25, 0.5, 0.75})
	want := []int64{25, 50, 75}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("quantiles = %v, want %v", got, want)
		}
	}
}

func TestEquiDepthPointsUniform(t *testing.T) {
	vals := make([]int64, 90)
	for i := range vals {
		vals[i] = int64(i)
	}
	points := EquiDepthPoints(vals, 3)
	if len(points) != 2 || points[0] != 30 || points[1] != 60 {
		t.Fatalf("tertile points = %v, want [30 60]", points)
	}
}

func TestEquiDepthPointsCollapsesDuplicates(t *testing.T) {
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = 7 // constant column: no split possible
	}
	if points := EquiDepthPoints(vals, 4); len(points) != 0 {
		t.Fatalf("points on constant data = %v, want none", points)
	}
}

func TestEquiDepthPointsDegenerateArity(t *testing.T) {
	if points := EquiDepthPoints([]int64{1, 2, 3}, 1); points != nil {
		t.Fatalf("arity 1 points = %v, want nil", points)
	}
	if points := EquiDepthPoints(nil, 3); points != nil {
		t.Fatalf("empty input points = %v, want nil", points)
	}
}

func TestEquiDepthPointsFloat(t *testing.T) {
	vals := make([]float64, 60)
	for i := range vals {
		vals[i] = float64(i)
	}
	points := EquiDepthPointsFloat64(vals, 2)
	if len(points) != 1 || points[0] != 30 {
		t.Fatalf("median point = %v, want [30]", points)
	}
}
