package stats

import (
	"math"
	"testing"
)

func TestChiSquareIndependentTable(t *testing.T) {
	// Counts exactly proportional to marginal products: stat must be 0.
	cells := [][]int{{20, 30}, {40, 60}}
	stat, dof := ChiSquare(cells)
	if dof != 1 {
		t.Fatalf("dof = %d, want 1", dof)
	}
	if !almostEqual(stat, 0, 1e-9) {
		t.Fatalf("stat = %v, want 0", stat)
	}
	if p := ChiSquarePValue(stat, dof); !almostEqual(p, 1, 1e-9) {
		t.Fatalf("p = %v, want 1", p)
	}
}

func TestChiSquareStrongDependence(t *testing.T) {
	cells := [][]int{{100, 0}, {0, 100}}
	stat, dof := ChiSquare(cells)
	if dof != 1 {
		t.Fatalf("dof = %d, want 1", dof)
	}
	if !almostEqual(stat, 200, 1e-9) {
		t.Fatalf("stat = %v, want 200", stat)
	}
	if p := ChiSquarePValue(stat, dof); p > 1e-20 {
		t.Fatalf("p = %v, want ~0", p)
	}
}

func TestChiSquareIgnoresEmptyRowsCols(t *testing.T) {
	with := [][]int{{10, 20}, {0, 0}, {30, 5}}
	without := [][]int{{10, 20}, {30, 5}}
	s1, d1 := ChiSquare(with)
	s2, d2 := ChiSquare(without)
	if d1 != d2 || !almostEqual(s1, s2, 1e-9) {
		t.Fatalf("empty row changed result: (%v,%d) vs (%v,%d)", s1, d1, s2, d2)
	}
}

func TestChiSquareDegenerate(t *testing.T) {
	if s, d := ChiSquare(nil); s != 0 || d != 0 {
		t.Fatalf("nil table: stat=%v dof=%d", s, d)
	}
	if s, d := ChiSquare([][]int{{5, 7}}); s != 0 || d != 0 {
		t.Fatalf("one-row table: stat=%v dof=%d", s, d)
	}
}

func TestChiSquarePValueKnownValues(t *testing.T) {
	// Chi-squared with 1 dof: P(X >= 3.841) ≈ 0.05.
	if p := ChiSquarePValue(3.841, 1); math.Abs(p-0.05) > 1e-3 {
		t.Fatalf("p(3.841, 1) = %v, want ≈0.05", p)
	}
	// Chi-squared with 2 dof: P(X >= x) = exp(-x/2).
	for _, x := range []float64{0.5, 1, 2, 5, 10} {
		want := math.Exp(-x / 2)
		if p := ChiSquarePValue(x, 2); math.Abs(p-want) > 1e-9 {
			t.Fatalf("p(%v, 2) = %v, want %v", x, p, want)
		}
	}
	// Large stat goes to 0, zero stat to 1.
	if p := ChiSquarePValue(0, 4); p != 1 {
		t.Fatalf("p(0,4) = %v, want 1", p)
	}
	if p := ChiSquarePValue(1e4, 4); p > 1e-100 {
		t.Fatalf("p(1e4,4) = %v, want ~0", p)
	}
}

func TestChiSquareIndependentHelper(t *testing.T) {
	indep := [][]int{{25, 25}, {25, 25}}
	if !ChiSquareIndependent(indep, 0.05) {
		t.Fatal("balanced independent table rejected")
	}
	dep := [][]int{{100, 0}, {0, 100}}
	if ChiSquareIndependent(dep, 0.05) {
		t.Fatal("diagonal table accepted as independent")
	}
}
