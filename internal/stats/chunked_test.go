package stats

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// chunkInt64 splits vals into random-width chunks (including empty
// ones) whose concatenation is vals.
func chunkInt64(vals []int64, rng *rand.Rand) [][]int64 {
	var chunks [][]int64
	for i := 0; i < len(vals); {
		w := rng.Intn(len(vals)-i) + 1
		chunks = append(chunks, append([]int64(nil), vals[i:i+w]...))
		i += w
		if rng.Intn(3) == 0 {
			chunks = append(chunks, []int64{})
		}
	}
	if len(chunks) == 0 {
		chunks = [][]int64{{}}
	}
	return chunks
}

func chunkFloat64(vals []float64, rng *rand.Rand) [][]float64 {
	var chunks [][]float64
	for i := 0; i < len(vals); {
		w := rng.Intn(len(vals)-i) + 1
		chunks = append(chunks, append([]float64(nil), vals[i:i+w]...))
		i += w
	}
	if len(chunks) == 0 {
		chunks = [][]float64{{}}
	}
	return chunks
}

// int64Cases covers the value shapes the rank search bisects badly
// if the midpoint math is wrong: negatives, extremes, and heavy
// duplicates.
func int64Cases(rng *rand.Rand) [][]int64 {
	cases := [][]int64{
		{0},
		{-1, 1},
		{math.MaxInt64, math.MinInt64, 0, -1, 1},
		{5, 5, 5, 5, 5},
	}
	uniq := make([]int64, 200)
	for i := range uniq {
		uniq[i] = rng.Int63n(2000) - 1000
	}
	cases = append(cases, uniq)
	heavy := make([]int64, 300)
	for i := range heavy {
		heavy[i] = int64(rng.Intn(3))
	}
	cases = append(cases, heavy)
	return cases
}

func TestKthSortedInt64ChunksMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, vals := range int64Cases(rng) {
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		chunks := chunkInt64(vals, rng)
		SortInt64Chunks(chunks, 2)
		for k := 0; k < len(vals); k++ {
			if got := KthSortedInt64Chunks(chunks, k); got != sorted[k] {
				t.Fatalf("kth(%d) = %d, want %d (vals %v)", k, got, sorted[k], vals)
			}
		}
	}
}

func TestKthSortedFloat64ChunksMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	cases := [][]float64{
		{0},
		{-1.5, 2.5},
		{math.Inf(-1), math.Inf(1), 0, -0.25, 1e300, -1e300, 1e-300},
		{3.25, 3.25, 3.25},
	}
	mixed := make([]float64, 257)
	for i := range mixed {
		mixed[i] = (rng.Float64() - 0.5) * 1e6
	}
	cases = append(cases, mixed)
	for _, vals := range cases {
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		chunks := chunkFloat64(vals, rng)
		SortFloat64Chunks(chunks, 2)
		for k := 0; k < len(vals); k++ {
			if got := KthSortedFloat64Chunks(chunks, k); got != sorted[k] {
				t.Fatalf("kth(%d) = %v, want %v (vals %v)", k, got, sorted[k], vals)
			}
		}
	}
}

func TestMedianChunksMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, vals := range int64Cases(rng) {
		want := MedianInt64(append([]int64(nil), vals...))
		if got := MedianInt64Chunks(chunkInt64(vals, rng), 3); got != want {
			t.Fatalf("MedianInt64Chunks = %d, want %d", got, want)
		}
	}
	fvals := make([]float64, 101)
	for i := range fvals {
		fvals[i] = float64(rng.Intn(50)) / 2
	}
	want := MedianFloat64(append([]float64(nil), fvals...))
	if got := MedianFloat64Chunks(chunkFloat64(fvals, rng), 3); got != want {
		t.Fatalf("MedianFloat64Chunks = %v, want %v", got, want)
	}
}

func TestEquiDepthPointsChunksMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, vals := range int64Cases(rng) {
		for _, arity := range []int{2, 3, 4, 8, 13} {
			want := EquiDepthPoints(append([]int64(nil), vals...), arity)
			got := EquiDepthPointsChunks(chunkInt64(vals, rng), arity, 2)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("EquiDepthPointsChunks(arity=%d) = %v, want %v (vals %v)", arity, got, want, vals)
			}
		}
	}
	fvals := make([]float64, 173)
	for i := range fvals {
		fvals[i] = float64(rng.Intn(40)) / 4
	}
	for _, arity := range []int{2, 5} {
		want := EquiDepthPointsFloat64(append([]float64(nil), fvals...), arity)
		got := EquiDepthPointsChunksFloat64(chunkFloat64(fvals, rng), arity, 2)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("EquiDepthPointsChunksFloat64(arity=%d) = %v, want %v", arity, got, want)
		}
	}
}

func TestKthChunksPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range rank")
		}
	}()
	KthSortedInt64Chunks([][]int64{{1, 2}}, 2)
}

// TestKthFloatChunksCanonicalZero pins the -0.0 collapse: a selected
// zero always comes back as +0.0 — the rank search cannot tell the
// two apart by counting, and "-0" must never leak into canonical
// renderings — regardless of which zero's bit pattern the data held.
func TestKthFloatChunksCanonicalZero(t *testing.T) {
	negZero := math.Copysign(0, -1)
	for _, chunks := range [][][]float64{
		{{-1, 0}, {5}},
		{{-1, negZero}, {5}},
		{{negZero}, {-1}, {0, 5}},
	} {
		SortFloat64Chunks(chunks, 1)
		got := KthSortedFloat64Chunks(chunks, 1) // rank 1 of {-1, ±0, 5}-shaped data
		if got != 0 || math.Signbit(got) {
			t.Fatalf("kth(1) = %v (signbit %v), want canonical +0", got, math.Signbit(got))
		}
	}
}
