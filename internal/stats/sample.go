package stats

import "math/rand"

// ReservoirInt32 draws a uniform sample without replacement of size
// k from ids using Vitter's algorithm R with the provided source.
// When k ≥ len(ids) a copy of ids is returned. The result order is
// unspecified.
func ReservoirInt32(ids []int32, k int, rng *rand.Rand) []int32 {
	if k >= len(ids) {
		out := make([]int32, len(ids))
		copy(out, ids)
		return out
	}
	out := make([]int32, k)
	copy(out, ids[:k])
	for i := k; i < len(ids); i++ {
		j := rng.Intn(i + 1)
		if j < k {
			out[j] = ids[i]
		}
	}
	return out
}

// StridedInt32 returns a deterministic systematic sample of about k
// elements: every ceil(n/k)-th element of ids. It preserves order
// and requires no randomness, which makes sampled runs exactly
// reproducible. When k ≥ len(ids) a copy of ids is returned.
func StridedInt32(ids []int32, k int) []int32 {
	n := len(ids)
	if k <= 0 {
		return nil
	}
	if k >= n {
		out := make([]int32, n)
		copy(out, ids)
		return out
	}
	stride := (n + k - 1) / k
	out := make([]int32, 0, k)
	for i := 0; i < n; i += stride {
		out = append(out, ids[i])
	}
	return out
}
